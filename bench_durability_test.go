// Benchmarks for the crash-safe durability layer: the same cold
// parallel exploration as BenchmarkExploreColdParallel, but with a live
// checkpoint — every flush CRC-frames the records, fsyncs and renames —
// plus a microbenchmark of the flush itself. The pair quantifies what
// integrity checking costs on the hot path (the acceptance bound is
// <3% on the cold parallel sweep); numbers are recorded in
// BENCH_durability.json.
package repro

import (
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/dse"
	"repro/internal/testcost"
)

// BenchmarkExploreColdCheckpointed is BenchmarkExploreColdParallel with
// checkpoint persistence on: 288 candidates, a flush every 16 entries
// plus the final one, each flush a CRC-framed fsync'd atomic write.
func BenchmarkExploreColdCheckpointed(b *testing.B) {
	cfg := benchCacheConfig(b)
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg.Annotator = testcost.NewAnnotator(cfg.Width, cfg.Seed)
		path := filepath.Join(dir, "bench"+strconv.Itoa(i)+".ckpt")
		ck, err := dse.OpenCheckpoint(path, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Checkpoint = ck
		b.StartTimer()
		if _, err := dse.Explore(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointFlush isolates one flush of a fully populated
// 288-entry checkpoint: snapshot, sorted CRC-framed encode, write,
// fsync, rename, directory sync.
func BenchmarkCheckpointFlush(b *testing.B) {
	cfg := benchCacheConfig(b)
	cfg.Parallelism = runtime.GOMAXPROCS(0)
	cfg.Annotator = testcost.NewAnnotator(cfg.Width, cfg.Seed)
	path := filepath.Join(b.TempDir(), "bench.ckpt")
	ck, err := dse.OpenCheckpoint(path, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Checkpoint = ck
	if _, err := dse.Explore(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ck.FlushErr(); err != nil {
			b.Fatal(err)
		}
	}
}
