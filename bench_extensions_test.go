// Benchmarks for the systems built beyond the paper's core evaluation:
// functional test application (the paper's mechanism, measured), the BIST
// comparator (reference [13]), transition-delay-fault coverage (the
// paper's delay-test claim), instruction encoding, and gate-level
// datapath co-simulation.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bist"
	"repro/internal/crypt"
	"repro/internal/ftest"
	"repro/internal/gatelib"
	"repro/internal/isa"
	"repro/internal/march"
	"repro/internal/power"
	"repro/internal/program"
	"repro/internal/rtl"
	"repro/internal/scan"
	"repro/internal/sched"
	"repro/internal/tta"
	"repro/internal/workloads"
)

// BenchmarkFunctionalTestApplication measures the paper's mechanism
// end-to-end: transporting the ATPG patterns through the MOVE buses into
// the component and validating the analytical f_tfu against the measured
// schedule.
func BenchmarkFunctionalTestApplication(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	fu := tta.NewFU(tta.ALU, "alu")
	fu.Ports[0].Bus = 0
	fu.Ports[1].Bus = 1
	fu.Ports[2].Bus = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp, err := ftest.RunCampaign(alu, &fu, 3, ftest.Sequential, atpg.Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if camp.Coverage() < 0.99 {
			b.Fatalf("functional coverage regressed: %s", camp)
		}
		if i == 0 {
			printFirst("Functional test application (measured vs eq. 11)", func() string {
				pipe, _ := ftest.MeasureTransport(&fu, 3, camp.Timing.Patterns, ftest.Pipelined)
				return fmt.Sprintf("%s\npipelined extension: %s", camp, pipe)
			})
		}
	}
}

// BenchmarkComparisonScanBISTFunctional regenerates the three-way test
// strategy comparison on the 16-bit ALU: full scan, pseudo-random BIST and
// the paper's functional approach.
func BenchmarkComparisonScanBISTFunctional(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := atpg.Run(alu.Seq, atpg.Config{Seed: 7})
		ev, err := bist.Evaluate(alu.Seq, res.Coverage(), 8192, 0xACE1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			nl := scan.ChainLength(alu.Seq)
			printFirst("Strategy comparison: scan vs BIST vs functional (ALU16)", func() string {
				scanCyc := scan.TestCycles(res.NumPatterns(), nl)
				funcCyc := res.NumPatterns() * 3
				bistAt := ev.PatternsToTarget
				bistStr := "not reached in 8192"
				if bistAt >= 0 {
					bistStr = fmt.Sprintf("%d cycles (1/pattern)", bistAt)
				}
				return fmt.Sprintf(
					"full scan  : %6d cycles, +%.0f area (scan FFs), FC %.2f%%\n"+
						"BIST       : %s to match FC, +%.0f area (LFSR+MISR), final FC %.2f%%\n"+
						"functional : %6d cycles, +0 area, FC %.2f%% (the paper's approach)",
					scanCyc, scan.AreaOverhead(alu.Seq), 100*res.Coverage(),
					bistStr, ev.AreaOverhead, 100*ev.FinalCoverage,
					funcCyc, 100*res.Coverage())
			})
		}
	}
}

// BenchmarkTDFCoverage measures the delay-fault side claim: transition
// coverage of the functionally streamed stuck-at set.
func BenchmarkTDFCoverage(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	res := atpg.Run(alu.Comb, atpg.Config{Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tdf := atpg.EvaluateTDF(alu.Comb, res.Patterns)
		if tdf.Coverage() < 0.5 {
			b.Fatalf("TDF coverage collapsed: %.2f", tdf.Coverage())
		}
		if i == 0 {
			printFirst("Delay-fault claim: TDF coverage of the streamed stuck-at set", func() string {
				reordered := atpg.EvaluateTDF(alu.Comb, atpg.OrderForTDF(res.Patterns))
				return fmt.Sprintf("as generated: %d/%d (%.1f%%); max-toggle order: %.1f%%",
					tdf.Detected, tdf.Total, 100*tdf.Coverage(), 100*reordered.Coverage())
			})
		}
	}
}

// BenchmarkISAEncode measures move-program encoding into long instruction
// words.
func BenchmarkISAEncode(b *testing.B) {
	arch := tta.Figure9()
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := isa.Encode(res)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("Instruction encoding (crypt round on figure 9)", func() string {
				return fmt.Sprintf("%d instructions x %d bits = %d bits of code (%d moves)",
					len(p.Instrs), p.Format.InstrBits(), p.CodeBits(), len(res.Moves))
			})
		}
	}
}

// BenchmarkRTLCosim measures gate-level execution of a scheduled program
// on the assembled datapath.
func BenchmarkRTLCosim(b *testing.B) {
	arch := &tta.Architecture{
		Name: "rtlbench", Width: 16, Buses: 2,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewFU(tta.CMP, "CMP"),
			tta.NewRF("RF1", 8, 1, 2),
			tta.NewRF("RF2", 12, 1, 1),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewPC("PC"),
			tta.NewIMM("Immediate"),
		},
	}
	tta.AssignPorts(arch, tta.SpreadFirst)
	m, err := rtl.Build(arch, gatelib.NewLibrary())
	if err != nil {
		b.Fatal(err)
	}
	g := program.NewGraph("bench", 16)
	x := g.In()
	y := g.In()
	acc := g.Add(x, y)
	for i := 0; i < 6; i++ {
		acc = g.Xor(g.Add(acc, x), y)
	}
	g.Output(acc)
	res, err := sched.Schedule(g, arch, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	want, err := program.Evaluate(g, []uint64{0x1234, 0x5678}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := m.RunSchedule(res, []uint64{0x1234, 0x5678}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if out[0] != want[0] {
			b.Fatalf("gates %#x, reference %#x", out[0], want[0])
		}
		if i == 0 {
			printFirst("RTL co-simulation", func() string {
				return fmt.Sprintf("datapath %s; %d cycles through the gates agree with the reference",
					m.Stats(), m.Cycles)
			})
		}
	}
}

// BenchmarkWorkloadProfiles measures scheduling across the application
// kernels with distinct operation mixes (the "application specific" axis).
func BenchmarkWorkloadProfiles(b *testing.B) {
	arch := tta.Figure9()
	kernels := map[string]*program.Graph{}
	if g, err := workloads.CRC16(2, 0x40); err == nil {
		kernels["crc16"] = g
	}
	if g, err := workloads.CountBelow(12); err == nil {
		kernels["countbelow"] = g
	}
	if g, err := workloads.Checksum(8, 0x40); err == nil {
		kernels["checksum"] = g
	}
	for name, g := range kernels {
		name, g := name, g
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sched.Schedule(g, arch, sched.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					printFirst("Workload profile: "+name, func() string {
						return fmt.Sprintf("%v -> %d cycles on figure 9", g.Stats(), res.Cycles)
					})
				}
			}
		})
	}
}

// BenchmarkAblationSCOAPGuidance contrasts plain and testability-guided
// PODEM (references [8]/[9] context).
func BenchmarkAblationSCOAPGuidance(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	for _, guided := range []bool{false, true} {
		guided := guided
		name := "plain"
		if guided {
			name = "scoap-guided"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := atpg.Run(alu.Comb, atpg.Config{Seed: 7, MaxRandomPatterns: -1, SCOAPGuidance: guided})
				if i == 0 {
					printFirst("Ablation: PODEM "+name, func() string {
						return fmt.Sprintf("np=%d aborted=%d FC=%.2f%%", res.NumPatterns(), res.Aborted, 100*res.Coverage())
					})
				}
			}
		})
	}
}

// BenchmarkTwoPortMarch measures the two-port march of reference [15].
func BenchmarkTwoPortMarch(b *testing.B) {
	mem := march.NewTwoPortRAM(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := march.March2PF.Run(mem, 16, 0); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkExtensionEnergyAxis exercises the optional fourth metric: a
// calibrated energy model attached to the exploration.
func BenchmarkExtensionEnergyAxis(b *testing.B) {
	m, err := power.Calibrate(nil, 16, 7)
	if err != nil {
		b.Fatal(err)
	}
	arch := tta.Figure9()
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := m.ScheduleEnergy(res, 8000)
		if e.Total <= 0 {
			b.Fatal("degenerate energy")
		}
		if i == 0 {
			printFirst("Extension: energy axis (crypt round, figure 9)", func() string {
				return fmt.Sprintf("%s per round; ~%.2e per hash", e, e.Total*float64(crypt.RoundsPerHash))
			})
		}
	}
}

// BenchmarkExtensionMultiChainScan regenerates the Table-1 footnote: with
// k scan chains both approaches speed up, and the functional approach
// keeps its advantage.
func BenchmarkExtensionMultiChainScan(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 1; k <= 8; k *= 2 {
			if scan.MultiChainAdvantage(86, 61, 3, 12, k) <= 1 {
				b.Fatalf("advantage lost at k=%d", k)
			}
		}
		if i == 0 {
			printFirst("Extension: multi-chain scan footnote", func() string {
				s := ""
				for k := 1; k <= 8; k *= 2 {
					s += fmt.Sprintf("k=%d: scan=%d cycles, advantage %.1fx\n",
						k, scan.MultiChainCycles(86, 61, k), scan.MultiChainAdvantage(86, 61, 3, 12, k))
				}
				return s
			})
		}
	}
}

// BenchmarkExtensionInstructionCompression measures the dictionary
// compression of the crypt loop's instruction stream.
func BenchmarkExtensionInstructionCompression(b *testing.B) {
	arch := tta.Figure9()
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := isa.Encode(res)
	if err != nil {
		b.Fatal(err)
	}
	// The realistic stream: 400 repetitions of the round.
	rep := &isa.Program{Format: p.Format}
	for it := 0; it < 25; it++ {
		rep.Words = append(rep.Words, p.Words...)
		rep.Instrs = append(rep.Instrs, p.Instrs...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := rep.Compress()
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			printFirst("Extension: instruction-stream compression", func() string {
				return fmt.Sprintf("%d words -> %d dictionary entries, ratio %.2f (%d -> %d bits)",
					len(rep.Words), len(c.Dict), c.Ratio(rep), rep.CodeBits(), c.TotalBits())
			})
		}
	}
}

// BenchmarkExtensionGateLevelDecode measures the complete binary path:
// raw instruction words through the gate-level socket decoder and
// datapath.
func BenchmarkExtensionGateLevelDecode(b *testing.B) {
	arch := &tta.Architecture{
		Name: "decbench", Width: 16, Buses: 2,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewFU(tta.CMP, "CMP"),
			tta.NewRF("RF1", 8, 1, 2),
			tta.NewRF("RF2", 12, 1, 1),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewPC("PC"),
			tta.NewIMM("Immediate"),
		},
	}
	tta.AssignPorts(arch, tta.SpreadFirst)
	m, err := rtl.Build(arch, gatelib.NewLibrary())
	if err != nil {
		b.Fatal(err)
	}
	d, err := rtl.BuildDecoded(m)
	if err != nil {
		b.Fatal(err)
	}
	g := program.NewGraph("bin", 16)
	x := g.In()
	y := g.In()
	g.Output(g.Xor(g.Add(x, y), g.Sll(x, g.ConstV(3))))
	res, err := sched.Schedule(g, arch, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	prog, err := isa.Encode(res)
	if err != nil {
		b.Fatal(err)
	}
	want, err := program.Evaluate(g, []uint64{0x0123, 0x4567}, nil)
	if err != nil {
		b.Fatal(err)
	}
	inLoc, outLoc := rtl.SeedsOf(res)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := d.RunWords(prog, inLoc, []uint64{0x0123, 0x4567}, outLoc, nil)
		if err != nil {
			b.Fatal(err)
		}
		if got[0] != want[0] {
			b.Fatalf("decoded %#x, want %#x", got[0], want[0])
		}
		if i == 0 {
			printFirst("Extension: gate-level instruction decode", func() string {
				return fmt.Sprintf("%d-gate decoder + %d-gate datapath execute %d words correctly",
					d.Dec.Stats().Gates, m.Stats().Gates, len(prog.Words))
			})
		}
	}
}

// BenchmarkExtensionTestAsProgram compiles the ALU's functional test into
// a TTA program, schedules it, and replays it against injected gate
// faults.
func BenchmarkExtensionTestAsProgram(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	arch := tta.Figure9()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp, err := ftest.RunProgramCampaign(arch, 0, alu, atpg.Config{Seed: 7}, 200)
		if err != nil {
			b.Fatal(err)
		}
		if camp.Coverage() < 0.9 {
			b.Fatalf("program campaign coverage regressed: %.3f", camp.Coverage())
		}
		if i == 0 {
			printFirst("Extension: the functional test as a TTA program", func() string {
				return fmt.Sprintf("%d patterns -> %d moves in %d cycles; %d/%d injected gate faults flip the response dump (%.1f%%)",
					camp.Applied, camp.Moves, camp.Cycles, camp.Detected, camp.TotalFaults, 100*camp.Coverage())
			})
		}
	}
}
