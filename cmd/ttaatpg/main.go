// Command ttaatpg runs the stuck-at ATPG flow on a component of the
// gate-level library and reports pattern counts, fault coverage and the
// functional-vs-full-scan cycle comparison for that component.
//
// Usage:
//
//	ttaatpg [-component alu|cmp|rf|ldst|pc|imm|isock|osock] [-width 16]
//	        [-adder ripple|carry-select] [-regs 8] [-rin 1] [-rout 2]
//	        [-seed 7] [-podem-only] [-stats]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/atpg"
	"repro/internal/gatelib"
	"repro/internal/march"
	"repro/internal/scan"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttaatpg: ")
	component := flag.String("component", "alu", "component: alu, cmp, rf, ldst, pc, imm, isock, osock")
	width := flag.Int("width", 16, "datapath width in bits")
	adder := flag.String("adder", "ripple", "ALU adder: ripple or carry-select")
	regs := flag.Int("regs", 8, "RF register count")
	rin := flag.Int("rin", 1, "RF write ports")
	rout := flag.Int("rout", 2, "RF read ports")
	seed := flag.Int64("seed", 7, "ATPG seed")
	podemOnly := flag.Bool("podem-only", false, "skip the random-pattern phase")
	stats := flag.Bool("stats", false, "print netlist statistics")
	verilog := flag.String("verilog", "", "write the component netlist as structural Verilog to this file ('-' for stdout)")
	tdf := flag.Bool("tdf", false, "also evaluate transition-delay-fault coverage of the generated set")
	scoap := flag.Bool("scoap", false, "also print SCOAP testability measures")
	flag.Parse()

	lib := gatelib.NewLibrary()
	var comp *gatelib.Component
	var err error
	switch *component {
	case "alu":
		ak := gatelib.AdderRipple
		if *adder == "carry-select" {
			ak = gatelib.AdderCarrySelect
		}
		comp, err = lib.ALU(gatelib.ALUConfig{Width: *width, Adder: ak})
	case "cmp":
		comp, err = lib.CMP(*width)
	case "rf":
		comp, err = lib.RF(gatelib.RFConfig{Width: *width, NumRegs: *regs, NumIn: *rin, NumOut: *rout})
	case "ldst":
		comp, err = lib.LDST(*width)
	case "pc":
		comp, err = lib.PC(*width)
	case "imm":
		comp, err = lib.IMM(*width)
	case "isock":
		comp, err = lib.InputSocket(6)
	case "osock":
		comp, err = lib.OutputSocket(6)
	default:
		log.Fatalf("unknown component %q", *component)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *verilog != "" {
		out := os.Stdout
		if *verilog != "-" {
			f, err := os.Create(*verilog)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := comp.Seq.WriteVerilog(out, comp.Name); err != nil {
			log.Fatal(err)
		}
		if *verilog != "-" {
			fmt.Printf("wrote %s as Verilog to %s\n", comp.Name, *verilog)
		}
		return
	}

	cfg := atpg.Config{Seed: *seed}
	if *podemOnly {
		cfg.MaxRandomPatterns = -1
	}
	res, err := atpg.RunContext(context.Background(), comp.Seq, cfg)
	if err != nil {
		log.Fatal(err)
	}
	nl := scan.ChainLength(comp.Seq)
	fmt.Printf("component     : %s (%s)\n", comp.Name, comp.Kind)
	if *stats {
		fmt.Printf("netlist       : %s\n", comp.Seq.Stats())
	}
	fmt.Printf("area          : %.1f NAND2-eq (with scan DfT: %.1f, +%.1f%%)\n",
		comp.Seq.Area(), comp.Seq.AreaWithScan(),
		100*scan.AreaOverhead(comp.Seq)/comp.Seq.Area())
	fmt.Printf("critical path : %.1f gate delays\n", comp.Seq.CriticalPath())
	fmt.Printf("faults        : %d collapsed (%d raw), %d redundant, %d aborted\n",
		res.TotalFaults, atpg.NewUniverse(comp.Seq).Uncollapsed, res.Redundant, res.Aborted)
	fmt.Printf("patterns n_p  : %d after compaction (%d faults dropped randomly, %d PODEM patterns)\n",
		res.NumPatterns(), res.RandomDetected, res.PodemPatterns)
	fmt.Printf("fault coverage: %.2f%% (raw %.2f%%)\n", 100*res.Coverage(), 100*res.RawCoverage())
	fmt.Printf("scan chain n_l: %d flip-flops\n", nl)
	fmt.Printf("full-scan test: %d cycles\n", scan.TestCycles(res.NumPatterns(), nl))
	fmt.Printf("functional    : %d cycles at CD=3 (paper eq. 9; no shifting)\n", res.NumPatterns()*3)
	if comp.Kind == gatelib.KindRF {
		np := march.MultiPortPatternCount(march.MarchCMinus, *regs, *rin, *rout)
		fmt.Printf("march C- n_p  : %d word operations (functional RF test)\n", np)
	}
	if *tdf {
		target := comp.Seq
		if comp.Comb != nil {
			target = comp.Comb
			res, err = atpg.RunContext(context.Background(), comp.Comb, cfg)
			if err != nil {
				log.Fatal(err)
			}
		}
		ev := atpg.EvaluateTDF(target, res.Patterns)
		fmt.Printf("delay faults  : %d/%d transition faults covered by streaming the set (%.1f%%)\n",
			ev.Detected, ev.Total, 100*ev.Coverage())
	}
	if *scoap {
		s := atpg.ComputeScoap(comp.Seq)
		sum := s.Summarize()
		fmt.Printf("SCOAP         : maxCC=%d meanCC=%.1f maxCO=%d meanCO=%.1f\n",
			sum.MaxCC, sum.MeanCC, sum.MaxCO, sum.MeanCO)
	}
}
