// Command ttadsed is the exploration daemon: design and test space
// explorations are submitted as jobs over HTTP/JSON, progress is
// streamed live, partial Pareto fronts and final reports are fetchable
// mid-run, and jobs can be cancelled. One process-wide annotation cache
// is shared across jobs, so concurrent explorations warm each other.
//
// Usage:
//
//	ttadsed [-addr :8080] [-max-jobs 2] [-queue 8]
//	        [-cache anno.cache] [-checkpoint-dir /var/lib/ttadsed]
//
// Quick start:
//
//	ttadsed -addr :8080 &
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workload":"crypt"}'
//	curl -Ns localhost:8080/v1/jobs/job-1/events   # live NDJSON stream
//	curl -s localhost:8080/v1/jobs/job-1/front     # partial fronts
//	curl -s localhost:8080/v1/jobs/job-1/result    # 202 mid-run, 200 done
//
// On SIGTERM or SIGINT the daemon drains: intake stops (503), running
// jobs are interrupted and checkpoint their finished prefix (with
// -checkpoint-dir), the warm annotation cache is flushed (with -cache),
// and the process exits. A restarted daemon given the same flags
// resumes resubmitted specs from their checkpoints.
//
// Sharded jobs (spec field "shard") fan out over worker processes of
// this same binary, supervised for hangs as well as crashes: a worker
// silent past shard.stall_timeout (default 2m) is killed and restarted
// from its checkpoint, with deterministic exponential backoff between
// restarts and a budget of shard.max_restarts per worker (optionally
// per shard.restart_window). Checkpoint and cache files are CRC-framed
// and written atomically; a file torn by a kill resumes from its intact
// prefix, an irrecoverably corrupt one is quarantined to *.corrupt.
// Every incident is countable under durability.* and dse.shard.* in
// GET /v1/metrics.
//
// Chaos drills: setting TTADSE_FAULT_INJECT in a worker's environment
// to a faultinject.ParsePlans spec (e.g.
// "dse.checkpoint.write=torn:frac=0.5;shard.worker=stall") arms fault
// injection inside every worker process; TTADSE_FAULT_INJECT_ONCE*
// variables hold "markerfile|spec" pairs armed in exactly one worker
// process per fan-out (the marker file is claimed atomically). See
// internal/service.armWorkerFaults.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	// A sharded job's worker processes are this same binary: the
	// coordinator (internal/service) execs "ttadsed -shard-worker
	// <flags>", dispatched here before the daemon's own flag parsing.
	if len(os.Args) > 1 && os.Args[1] == "-shard-worker" {
		os.Exit(service.ShardWorkerMain(os.Args[2:]))
	}
	log.SetFlags(0)
	log.SetPrefix("ttadsed: ")
	addr := flag.String("addr", ":8080", "listen address")
	maxJobs := flag.Int("max-jobs", 2, "explorations running concurrently")
	queue := flag.Int("queue", 8, "jobs waiting beyond the running ones before 429")
	cache := flag.String("cache", "", "warm annotation cache file (loaded at startup, saved on drain)")
	ckptDir := flag.String("checkpoint-dir", "", "directory for per-spec checkpoint files (enables drain/resume)")
	drainWait := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
	laneWidth := flag.Int("lane-width", 0, "default fault-simulation lanes per block for jobs that leave lane_width unset: 64, 256 or 512 (0 = auto by netlist size; results are identical at any setting)")
	flag.Parse()

	switch *laneWidth {
	case 0, 64, 256, 512:
	default:
		log.Fatalf("-lane-width %d is invalid (use 0 for auto, or 64, 256, 512)", *laneWidth)
	}

	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	srv := service.NewServer(service.Options{
		MaxConcurrent:    *maxJobs,
		QueueDepth:       *queue,
		CachePath:        *cache,
		CheckpointDir:    *ckptDir,
		DefaultLaneWidth: *laneWidth,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	errs := make(chan error, 1)
	go func() { errs <- hs.ListenAndServe() }()
	log.Printf("listening on %s (max %d jobs, queue %d)", *addr, *maxJobs, *queue)

	select {
	case sig := <-stop:
		log.Printf("%v: draining", sig)
	case err := <-errs:
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	log.Print("drained")
}
