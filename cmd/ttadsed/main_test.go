package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain doubles as the daemon binary: re-execing this test binary
// with TTADSED_RUN_MAIN=1 runs the real main() over the re-exec's argv.
func TestMain(m *testing.M) {
	if os.Getenv("TTADSED_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestShardWorkerDispatch checks "ttadsed -shard-worker" lands in the
// worker entry point before daemon flag parsing: with no -spec it must
// exit 1 with the worker's usage error, not try to listen on a socket.
func TestShardWorkerDispatch(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-shard-worker")
	cmd.Env = append(os.Environ(), "TTADSED_RUN_MAIN=1")
	var errb bytes.Buffer
	cmd.Stderr = &errb
	runErr := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(runErr, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("ttadsed -shard-worker without -spec: %v, want exit 1", runErr)
	}
	if !strings.Contains(errb.String(), "-spec") {
		t.Fatalf("worker error does not name the missing flag: %q", errb.String())
	}
}
