// Command ttatest prints the Table-1 test-cost comparison (full scan vs
// the functional approach) for a TTA architecture: by default the paper's
// figure-9 architecture, or a custom template described by flags.
//
// Usage:
//
//	ttatest [-buses 2] [-alus 1] [-cmps 1] [-rfs 8:1:1,12:1:1]
//	        [-assign spread-first|round-robin|packed] [-csv] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/testcost"
	"repro/internal/tta"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttatest: ")
	buses := flag.Int("buses", 2, "MOVE bus count")
	alus := flag.Int("alus", 1, "ALU count")
	cmps := flag.Int("cmps", 1, "comparator count")
	rfs := flag.String("rfs", "8:1:1,12:1:1", "register files as regs:writePorts:readPorts, comma separated")
	assign := flag.String("assign", "spread-first", "port assignment: spread-first, round-robin or packed")
	csv := flag.Bool("csv", false, "emit as CSV")
	seed := flag.Int64("seed", 7, "ATPG seed")
	fig9 := flag.Bool("fig9", false, "use the paper's figure-9 architecture verbatim")
	archFile := flag.String("arch", "", "load the architecture from a JSON file (see ttadse -save)")
	strategies := flag.Bool("strategies", false, "also print the scan/BIST/functional strategy comparison")
	draw := flag.Bool("draw", false, "render the architecture as an ASCII diagram (figure-9 style)")
	flag.Parse()

	var arch *tta.Architecture
	switch {
	case *archFile != "":
		f, err := os.Open(*archFile)
		if err != nil {
			log.Fatal(err)
		}
		arch, err = tta.LoadJSON(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *fig9:
		arch = tta.Figure9()
	default:
		arch = buildArch(*buses, *alus, *cmps, *rfs, *assign)
	}
	ann := testcost.NewAnnotator(arch.Width, *seed)
	tbl, err := core.Table1For(ann, arch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("architecture: %s\n\n", arch)
	if *draw {
		fmt.Println(tta.Draw(arch))
	}
	if *csv {
		err = tbl.WriteCSV(os.Stdout)
	} else {
		err = tbl.Write(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *strategies {
		fmt.Println()
		st, err := core.StrategyTable(arch, *seed, 8192)
		if err != nil {
			log.Fatal(err)
		}
		if *csv {
			err = st.WriteCSV(os.Stdout)
		} else {
			err = st.Write(os.Stdout)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
}

func buildArch(buses, alus, cmps int, rfSpec, assign string) *tta.Architecture {
	a := &tta.Architecture{Name: "custom", Width: 16, Buses: buses}
	for i := 0; i < alus; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.ALU, fmt.Sprintf("ALU%d", i+1)))
	}
	for i := 0; i < cmps; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.CMP, fmt.Sprintf("CMP%d", i+1)))
	}
	for i, spec := range strings.Split(rfSpec, ",") {
		parts := strings.Split(strings.TrimSpace(spec), ":")
		if len(parts) != 3 {
			log.Fatalf("bad RF spec %q (want regs:in:out)", spec)
		}
		regs := atoi(parts[0])
		in := atoi(parts[1])
		out := atoi(parts[2])
		a.Components = append(a.Components, tta.NewRF(fmt.Sprintf("RF%d", i+1), regs, in, out))
	}
	a.Components = append(a.Components,
		tta.NewFU(tta.LDST, "LD/ST"), tta.NewPC("PC"), tta.NewIMM("Immediate"))
	strat := tta.SpreadFirst
	switch assign {
	case "round-robin":
		strat = tta.RoundRobin
	case "packed":
		strat = tta.Packed
	case "spread-first":
	default:
		log.Fatalf("unknown assignment strategy %q", assign)
	}
	tta.AssignPorts(a, strat)
	if err := a.Validate(); err != nil {
		log.Fatal(err)
	}
	return a
}

func atoi(s string) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		log.Fatalf("bad number %q", s)
	}
	return v
}
