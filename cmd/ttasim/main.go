// Command ttasim schedules the Crypt DES-round kernel onto a TTA
// architecture, executes the resulting move program on the cycle-accurate
// simulator, verifies every transported value against the dataflow
// reference, and reports the throughput figures used by the exploration.
//
// Usage:
//
//	ttasim [-rounds 1] [-buses 2] [-alus 1] [-password s3cret] [-trace]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/crypt"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

// runLooped executes crypt(3) as a genuine loop: one fixed instruction
// block, 25 iterations, loop-carried registers chained by epilogue copies.
func runLooped(password string, buses, alus int) {
	arch := tta.Figure9()
	arch.Buses = buses
	for i := 1; i < alus; i++ {
		arch.Components = append(arch.Components, tta.NewFU(tta.ALU, fmt.Sprintf("ALU%d", i+1)))
	}
	tta.AssignPorts(arch, tta.SpreadFirst)
	kernel, err := crypt.BuildCryptIterationKernel()
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.ScheduleContext(context.Background(), kernel, arch, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var inLocs []sched.RegLoc
	for i, op := range kernel.Ops {
		if op.Op == program.Input {
			inLocs = append(inLocs, res.InputLoc[program.ValueID(i)])
		}
	}
	var pairs [][2]sched.RegLoc
	for i, o := range kernel.Outputs {
		pairs = append(pairs, [2]sched.RegLoc{res.RegAlloc[o], inLocs[i]})
	}
	if err := sim.AppendEpilogueCopies(res, pairs); err != nil {
		log.Fatal(err)
	}
	inst, err := sim.NewInstance(res, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ks := crypt.KeySchedule(crypt.KeyFromPassword(password))
	for k, v := range crypt.KeyScheduleMemory(&ks) {
		inst.Mem[k] = v
	}
	for k, v := range crypt.MemoryImage() {
		inst.Mem[k] = v
	}
	if err := inst.SeedInputs([]uint64{0, 0, 0, 0}); err != nil {
		log.Fatal(err)
	}
	for it := 0; it < crypt.Iterations; it++ {
		if err := inst.RunIteration(); err != nil {
			log.Fatal(err)
		}
	}
	rd := func(loc sched.RegLoc) uint64 {
		v, err := inst.PeekRegister(loc)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	nl := uint32(rd(inLocs[0]))<<16 | uint32(rd(inLocs[1]))
	nr := uint32(rd(inLocs[2]))<<16 | uint32(rd(inLocs[3]))
	got := crypt.FinalPermutation(nr, nl)
	var want uint64
	for i := 0; i < crypt.Iterations; i++ {
		want = crypt.EncryptBlock(want, &ks, 0)
	}
	status := "OK (matches software DES core)"
	if got != want {
		status = fmt.Sprintf("MISMATCH (want %016X)", want)
	}
	fmt.Printf("architecture : %s\n", arch)
	fmt.Printf("loop body    : %d cycles, %d moves (16 rounds, keys from memory)\n", res.Cycles, len(res.Moves))
	fmt.Printf("execution    : %d iterations x %d cycles = %d cycles total\n",
		crypt.Iterations, res.Cycles, crypt.Iterations*res.Cycles)
	fmt.Printf("result block : %016X  %s\n", got, status)
	if got != want {
		log.Fatal("verification failed")
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttasim: ")
	rounds := flag.Int("rounds", 1, "DES rounds in the scheduled kernel (1..16)")
	buses := flag.Int("buses", 2, "MOVE bus count")
	alus := flag.Int("alus", 1, "ALU count")
	password := flag.String("password", "s3cret", "password whose key schedule drives the kernel")
	trace := flag.Bool("trace", false, "print the move-by-move transport trace")
	disasm := flag.Bool("disasm", false, "print the encoded long-instruction-word program")
	loop := flag.Bool("loop", false, "execute the full crypt(3) as one looped 16-round instruction block (25 iterations)")
	flag.Parse()
	if *rounds < 1 || *rounds > 16 {
		log.Fatalf("rounds %d out of 1..16", *rounds)
	}
	if *loop {
		runLooped(*password, *buses, *alus)
		return
	}

	arch := tta.Figure9()
	arch.Buses = *buses
	if *alus > 1 {
		for i := 1; i < *alus; i++ {
			arch.Components = append(arch.Components, tta.NewFU(tta.ALU, fmt.Sprintf("ALU%d", i+1)))
		}
	}
	tta.AssignPorts(arch, tta.SpreadFirst)

	kernel, err := crypt.BuildRoundKernel(*rounds)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sched.ScheduleContext(context.Background(), kernel, arch, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}

	ks := crypt.KeySchedule(crypt.KeyFromPassword(*password))
	l, r := uint32(0), uint32(0)
	inputs := crypt.KernelInputs(l, r, ks[:*rounds])
	var tr *sim.Trace
	if *trace {
		tr = &sim.Trace{}
	}
	out, err := sim.Run(res, inputs, crypt.MemoryImage(), sim.Options{Verify: true, Trace: tr})
	if err != nil {
		log.Fatal(err)
	}
	gl, gr := crypt.KernelOutputs(out)
	wl, wr := crypt.GoldenRounds(l, r, ks[:*rounds])
	status := "OK (matches software DES)"
	if gl != wl || gr != wr {
		status = fmt.Sprintf("MISMATCH: got (%08X,%08X) want (%08X,%08X)", gl, gr, wl, wr)
	}

	if tr != nil {
		for _, line := range tr.Lines {
			fmt.Println(line)
		}
		fmt.Println()
	}
	if *disasm {
		prog, err := isa.Encode(res)
		if err != nil {
			log.Fatal(err)
		}
		for _, line := range prog.Disassemble() {
			fmt.Println(line)
		}
		fmt.Printf("\ncode size: %d instructions x %d bits = %d bits\n\n",
			len(prog.Instrs), prog.Format.InstrBits(), prog.CodeBits())
	}
	fmt.Printf("architecture : %s\n", arch)
	fmt.Printf("kernel       : %s (%v)\n", kernel.Name, kernel.Stats())
	fmt.Printf("schedule     : %d cycles, %d moves, peak %d live registers, %d spills/%d reloads\n",
		res.Cycles, len(res.Moves), res.PeakLive, res.Spills, res.Reloads)
	fmt.Printf("result       : L=%08X R=%08X  %s\n", gl, gr, status)
	perHash := crypt.HashCycles(res.Cycles / *rounds)
	fmt.Printf("extrapolated : ~%d cycles per crypt(3) hash (%d DES rounds)\n",
		perHash, crypt.RoundsPerHash)
	if gl != wl || gr != wr {
		log.Fatal("verification failed")
	}
}
