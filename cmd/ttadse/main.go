// Command ttadse runs the design and test space exploration of the Crypt
// application and regenerates the paper's figures 2, 8 and 9 and Table 1.
//
// Usage:
//
//	ttadse [-fig 2|8] [-table1] [-csv] [-buses 1,2,3,4] [-norm euclid|manhattan|chebyshev]
//	       [-wa A] [-wt T] [-wc C]
//
// Without flags the complete study (both figures, the selection and
// Table 1) is printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/pareto"
	"repro/internal/report"
	"repro/internal/tta"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttadse: ")
	fig := flag.Int("fig", 0, "print only one figure (2 or 8)")
	table1 := flag.Bool("table1", false, "print only Table 1 for the selected architecture")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	busesFlag := flag.String("buses", "", "comma-separated bus counts to explore (default 1,2,3,4)")
	normFlag := flag.String("norm", "euclid", "selection norm: euclid, manhattan or chebyshev")
	wa := flag.Float64("wa", 1, "area weight for the selection norm")
	wt := flag.Float64("wt", 1, "execution-time weight")
	wc := flag.Float64("wc", 1, "test-cost weight")
	save := flag.String("save", "", "write the selected architecture as JSON to this file")
	workload := flag.String("workload", "crypt", "application kernel: crypt, crc16, vecmax, countbelow or checksum")
	flag.Parse()

	cfg, err := dse.DefaultConfig()
	if err != nil {
		log.Fatal(err)
	}
	if *busesFlag != "" {
		cfg.Buses = nil
		for _, s := range strings.Split(*busesFlag, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || b < 1 {
				log.Fatalf("invalid bus count %q", s)
			}
			cfg.Buses = append(cfg.Buses, b)
		}
	}
	if err := setWorkload(&cfg, *workload); err != nil {
		log.Fatal(err)
	}
	study := core.NewStudyWithConfig(cfg)
	if err := study.Explore(); err != nil {
		log.Fatal(err)
	}

	// Optional re-selection under custom weights/norm.
	if *normFlag != "euclid" || *wa != 1 || *wt != 1 || *wc != 1 {
		if err := reselect(study, *normFlag, *wa, *wt, *wc); err != nil {
			log.Fatal(err)
		}
	}

	switch {
	case *fig == 2:
		printTable(study, *csv, study.Figure2Table)
		if !*csv {
			mustPrint(study.Figure2Plot())
		}
	case *fig == 8:
		printTable(study, *csv, study.Figure8Table)
		if !*csv {
			mustPrint(study.Figure8Plot())
		}
	case *table1:
		printTable(study, *csv, study.Table1)
	default:
		printTable(study, *csv, study.Figure2Table)
		if !*csv {
			mustPrint(study.Figure2Plot())
		}
		fmt.Println()
		printTable(study, *csv, study.Figure8Table)
		if !*csv {
			mustPrint(study.Figure8Plot())
		}
		fmt.Println()
		printTable(study, *csv, study.Table1)
		fmt.Println()
		mustPrint(study.Summary())
		fmt.Println()
		fmt.Println(tta.Draw(study.SelectedArchitecture()))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tta.SaveJSON(f, study.SelectedArchitecture()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved selected architecture to %s\n", *save)
	}
}

// setWorkload swaps the explored application kernel.
func setWorkload(cfg *dse.Config, name string) error {
	switch name {
	case "crypt", "":
		return nil // the default config already carries the crypt kernel
	case "crc16":
		g, err := workloads.CRC16(4, 0x40)
		if err != nil {
			return err
		}
		cfg.Workload = g
		cfg.WorkloadReps = 1000
	case "vecmax":
		g, err := workloads.VecMax(16, 0x40)
		if err != nil {
			return err
		}
		cfg.Workload = g
		cfg.WorkloadReps = 1000
	case "countbelow":
		g, err := workloads.CountBelow(12)
		if err != nil {
			return err
		}
		cfg.Workload = g
		cfg.WorkloadReps = 1000
	case "checksum":
		g, err := workloads.Checksum(8, 0x40)
		if err != nil {
			return err
		}
		cfg.Workload = g
		cfg.WorkloadReps = 1000
	default:
		return fmt.Errorf("unknown workload %q", name)
	}
	return nil
}

func reselect(study *core.Study, norm string, wa, wt, wc float64) error {
	var n pareto.Norm
	switch norm {
	case "euclid":
		n = pareto.Euclid
	case "manhattan":
		n = pareto.Manhattan
	case "chebyshev":
		n = pareto.Chebyshev
	default:
		return fmt.Errorf("unknown norm %q", norm)
	}
	var pts []pareto.Point
	for _, i := range study.Result.Front3D {
		pts = append(pts, pareto.Point{ID: i, Coords: study.Result.Candidates[i].Coords()})
	}
	best, err := pareto.Select(pts, []float64{wa, wt, wc}, n)
	if err != nil {
		return err
	}
	study.Result.Selected = pts[best].ID
	return nil
}

func printTable(study *core.Study, csv bool, gen func() (*report.Table, error)) {
	_ = study
	t, err := gen()
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func mustPrint(s string, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)
}
