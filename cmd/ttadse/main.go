// Command ttadse runs the design and test space exploration of the Crypt
// application and regenerates the paper's figures 2, 8 and 9 and Table 1.
//
// Usage:
//
//	ttadse [-fig 2|8] [-table1] [-csv] [-buses 1,2,3,4] [-alus 1,2,3] [-cmps 1,2]
//	       [-norm euclid|manhattan|chebyshev] [-wa A] [-wt T] [-wc C]
//	       [-metrics file|-] [-progress] [-timeout 30s]
//
// Without flags the complete study (both figures, the selection and
// Table 1) is printed.
//
// Observability: -metrics dumps the run's full metrics snapshot (span
// durations per stage, scheduler/ATPG counters, annotator cache hit rate,
// worker utilization) as JSON to the given file, or to stdout with "-"
// (which then replaces the default report so the output stays valid
// JSON). -progress streams per-candidate completion events to stderr.
//
// Resilience: -timeout bounds the exploration; on expiry the completed
// evaluations are still reported (with a partial-result summary on
// stderr) and the process exits with code 2 — a hard failure mid-sweep
// exits 1, a clean run 0. -atpg-deadline budgets each gate-level ATPG
// run; an exhausted budget degrades that annotation to an analytical
// upper bound (rows marked "degraded" in the report), and
// -degraded-policy decides whether such points may win the selection.
// -checkpoint persists completed evaluations to a file and resumes from
// it after a kill, producing byte-identical output to an uninterrupted
// run.
//
// Scale: -search switches from the exhaustive sweep to the guided
// GA + successive-halving exploration over the widened parameter space
// (tens of millions of candidate templates): every generation is
// screened on the cheap analytical-bound tier and only the best
// ceil(pop/eta) candidates receive full gate-level evaluation. Tune with
// -search-pop, -search-gens, -search-eta and -search-seed; a fixed seed
// reproduces the identical report at any parallelism.
//
// Process sharding: -shards N -shard-index i runs this invocation as
// worker i of an N-process fan-out — it evaluates only its
// deterministic contiguous slice of the candidate space and persists it
// to -checkpoint (mandatory; the file carries a shard header binding it
// to the slot). A killed worker rerun with the same flags resumes from
// its checkpoint. -merge a.ckpt,b.ckpt,... combines the workers' files
// into the full report, byte-identical to the unsharded run at any
// shard count; with -cache the workers' per-shard caches
// (<cache>.shard<i>of<N>) are unioned back into the base file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/jobspec"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/testcost"
	"repro/internal/tta"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ttadse: ")
	fig := flag.Int("fig", 0, "print only one figure (2 or 8)")
	table1 := flag.Bool("table1", false, "print only Table 1 for the selected architecture")
	csv := flag.Bool("csv", false, "emit tables as CSV")
	busesFlag := flag.String("buses", "", "comma-separated bus counts to explore (default 1,2,3,4)")
	alusFlag := flag.String("alus", "", "comma-separated ALU counts to explore (default 1,2,3)")
	cmpsFlag := flag.String("cmps", "", "comma-separated comparator counts to explore (default 1,2)")
	normFlag := flag.String("norm", "euclid", "selection norm: euclid, manhattan or chebyshev")
	wa := flag.Float64("wa", 1, "area weight for the selection norm")
	wt := flag.Float64("wt", 1, "execution-time weight")
	wc := flag.Float64("wc", 1, "test-cost weight")
	save := flag.String("save", "", "write the selected architecture as JSON to this file")
	workload := flag.String("workload", "crypt", "application kernel: crypt, crc16, vecmax, countbelow or checksum")
	cache := flag.String("cache", "", "warm-start annotation cache file: loaded if present, rewritten after the run")
	metrics := flag.String("metrics", "", "write the metrics snapshot as JSON to this file ('-' = stdout)")
	progress := flag.Bool("progress", false, "stream candidate-completion events to stderr")
	timeout := flag.Duration("timeout", 0, "cancel the exploration after this duration (0 = none); completed evaluations are still reported, exit code 2")
	atpgWorkers := flag.Int("atpg-workers", 0, "workers inside each gate-level ATPG run (0 = split the core budget with the DSE parallelism; results are identical at any setting)")
	laneWidth := flag.Int("lane-width", 0, "fault-simulation pattern lanes per block inside each gate-level ATPG run: 64, 256 or 512 (0 = auto by netlist size; results are identical at any setting)")
	atpgDeadline := flag.Duration("atpg-deadline", 0, "wall-clock budget per gate-level ATPG run; on exhaustion the annotation degrades to an analytical upper bound (0 = none)")
	degradedPolicy := flag.String("degraded-policy", "allow", "how budget-degraded candidates compete in the selection: allow, penalize or exclude")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: completed evaluations are persisted there and restored on the next run")
	search := flag.Bool("search", false, "replace the exhaustive sweep with the guided GA + successive-halving exploration over the widened space (-buses/-alus/-cmps are then ignored)")
	searchPop := flag.Int("search-pop", 0, "guided search: genomes per generation (0 = default 64)")
	searchGens := flag.Int("search-gens", 0, "guided search: number of generations (0 = default 8)")
	searchEta := flag.Int("search-eta", 0, "guided search: successive-halving ratio, top ceil(pop/eta) of each generation get full evaluation (0 = default 4)")
	searchSeed := flag.Int64("search-seed", 0, "guided search: GA random seed (0 = follow the job seed)")
	shards := flag.Int("shards", 0, "run as one worker of an N-process sharded exploration: evaluate only this process's deterministic slice of the candidate space and write it to -checkpoint (0 = unsharded)")
	shardIndex := flag.Int("shard-index", 0, "this worker's shard in [0, shards)")
	merge := flag.String("merge", "", "comma-separated shard checkpoint files: merge them into the full report instead of exploring (byte-identical to the unsharded run)")
	flag.Parse()

	// The flags are a thin veneer over a jobspec.Spec — the same
	// serializable description a ttadsed job submission carries — so CLI
	// and daemon explorations are built by the one dse.FromSpec path.
	if *atpgWorkers < 0 {
		log.Fatalf("-atpg-workers %d is negative (use 0 for the automatic core-budget split)", *atpgWorkers)
	}
	spec := jobspec.Spec{
		Workload:       *workload,
		Norm:           *normFlag,
		WA:             *wa,
		WT:             *wt,
		WC:             *wc,
		DegradedPolicy: *degradedPolicy,
		ATPGWorkers:    *atpgWorkers,
		LaneWidth:      *laneWidth,
	}
	if *search || *searchPop != 0 || *searchGens != 0 || *searchEta != 0 || *searchSeed != 0 {
		spec.Search = &jobspec.SearchSpec{
			Population:  *searchPop,
			Generations: *searchGens,
			Eta:         *searchEta,
			Seed:        *searchSeed,
		}
	}
	for _, lf := range []struct {
		name string
		raw  string
		dst  *[]int
	}{
		{"buses", *busesFlag, &spec.Buses},
		{"alus", *alusFlag, &spec.ALUs},
		{"cmps", *cmpsFlag, &spec.CMPs},
	} {
		if lf.raw == "" {
			continue
		}
		vals, err := parseIntList(lf.name, lf.raw)
		if err != nil {
			log.Fatal(err)
		}
		*lf.dst = vals
	}
	// FromSpec validates everything — workload, lists, norm, weights and
	// degraded policy — before the exploration spends any time.
	cfg, selSpec, err := dse.FromSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	var reg *obs.Registry
	if *metrics != "" || *progress {
		reg = obs.NewRegistry()
		cfg.Obs = reg
	}
	if *metrics != "" {
		// The snapshot should cover every stage, including the final
		// simulator cross-check of the selection.
		cfg.VerifySelected = true
	}

	// Warm-start cache: skip the gate-level ATPG back-annotation when a
	// matching cache file exists. A missing file is an ordinary cold
	// start; a stale file (different format version, library generation,
	// width, seed or march) is ignored with a warning and overwritten
	// after the run; an irrecoverably corrupt file is quarantined to
	// *.corrupt (the warning names the quarantine path) and the run
	// starts cold. A torn tail — a crash mid-save — is not corruption:
	// the intact record prefix still warm-starts.
	if *cache != "" {
		cfg.Annotator = testcost.NewAnnotator(cfg.Width, cfg.Seed)
		cfg.Annotator.Obs = cfg.Obs // count loaded entries when instrumented
		var mismatch *testcost.CacheMismatchError
		var corrupt *testcost.CacheCorruptError
		switch err := cfg.Annotator.LoadFile(*cache); {
		case err == nil:
		case errors.Is(err, fs.ErrNotExist):
		case errors.As(err, &mismatch):
			log.Printf("warning: ignoring stale cache %s: %v", *cache, err)
		case errors.As(err, &corrupt):
			log.Printf("warning: ignoring corrupt cache %s: %v", *cache, err)
		default:
			log.Fatal(err)
		}
	}
	if *atpgDeadline < 0 {
		log.Fatalf("-atpg-deadline %v is negative (use 0 for no budget)", *atpgDeadline)
	}
	if *atpgDeadline > 0 {
		if cfg.Annotator == nil {
			cfg.Annotator = testcost.NewAnnotator(cfg.Width, cfg.Seed)
			cfg.Annotator.Obs = cfg.Obs
		}
		cfg.Annotator.ATPGDeadline = *atpgDeadline
	}

	// Process sharding: -shards/-shard-index makes this invocation one
	// worker of an N-process fan-out. Its product is its shard
	// checkpoint, so -checkpoint is mandatory; the shard slot must be
	// fixed before the checkpoint opens, because the file's shard header
	// binds to it.
	if *shards < 0 {
		log.Fatalf("-shards %d is negative (use 0 for unsharded)", *shards)
	}
	if *shards > 0 {
		if *merge != "" {
			log.Fatal("-shards and -merge are mutually exclusive (workers explore, the merge combines)")
		}
		if *checkpoint == "" {
			log.Fatal("-shards requires -checkpoint: the shard checkpoint file is the worker's product")
		}
		if *shardIndex < 0 || *shardIndex >= *shards {
			log.Fatalf("-shard-index %d out of range [0,%d)", *shardIndex, *shards)
		}
		cfg.Shard = &dse.ShardRange{Count: *shards, Index: *shardIndex}
	}
	if *merge != "" && *checkpoint != "" {
		log.Fatal("-merge ignores -checkpoint (the shard files are the inputs); drop one")
	}

	// Checkpoint/resume: restore completed evaluations from a previous
	// (killed) run of the same exploration. A stale file is ignored with
	// a warning and overwritten; a file with a torn tail (the previous
	// run died mid-flush) resumes from its intact record prefix; an
	// irrecoverably corrupt file is quarantined to *.corrupt and the
	// exploration restarts cold — never a crash, never a silent loss.
	if *checkpoint != "" {
		ck, err := dse.OpenCheckpoint(*checkpoint, cfg)
		if ck == nil {
			log.Fatal(err)
		}
		var mm *dse.CheckpointMismatchError
		var cc *dse.CheckpointCorruptError
		switch {
		case err == nil:
		case errors.As(err, &mm):
			log.Printf("warning: ignoring stale checkpoint %s: %v", *checkpoint, err)
		case errors.As(err, &cc):
			log.Printf("warning: ignoring corrupt checkpoint %s: %v", *checkpoint, err)
		default:
			log.Fatal(err)
		}
		if n := ck.Len(); n > 0 {
			log.Printf("resuming from checkpoint %s: %d completed evaluations", *checkpoint, n)
		}
		cfg.Checkpoint = ck
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -progress consumes the typed event stream. The kinds printed —
	// candidate, panic, degraded, warning — are exactly the obs kinds the
	// flag historically subscribed to, so the stderr text is unchanged;
	// the stream's extra kinds (restored, done) stay internal.
	progressDone := make(chan struct{})
	if *progress {
		events := cfg.Events(ctx)
		go func() {
			defer close(progressDone)
			for ev := range events {
				switch ev.Kind {
				case dse.EventCandidate, dse.EventPanic, dse.EventDegraded, dse.EventWarning:
					fmt.Fprintf(os.Stderr, "ttadse: [%d/%d] %s\n", ev.N, ev.Total, ev.Msg)
				}
			}
		}()
	} else {
		close(progressDone)
	}

	// The merge path evaluates nothing, but the report's tables re-run
	// the annotator on the selected architecture — default it here the
	// way Study.ExploreContext does for an exploring run.
	if *merge != "" && cfg.Annotator == nil {
		cfg.Annotator = testcost.NewAnnotator(cfg.Width, cfg.Seed)
		cfg.Annotator.Obs = cfg.Obs
	}
	study := core.NewStudyWithConfig(cfg)
	exitCode := 0
	var exploreErr error
	if *merge != "" {
		// Canonical merge: validate that the shard checkpoints tile this
		// config's candidate space and rebuild the result in index order.
		// Any gap, overlap or incomplete shard is fatal — resume the
		// offending worker and merge again.
		res, err := dse.MergeExploreContext(ctx, cfg, splitPaths(*merge))
		if err != nil {
			log.Fatal(err)
		}
		study.Result = res
		// Union the workers' annotation caches into the base cache (the
		// existing save below rewrites it), so the next run of any
		// topology warm-starts from the whole fan-out's work.
		if *cache != "" {
			shardCaches, _ := filepath.Glob(*cache + ".shard*")
			if _, err := cfg.Annotator.MergeFiles(shardCaches...); err != nil {
				log.Printf("warning: shard caches not merged: %v", err)
			}
		}
	} else {
		exploreErr = study.ExploreContext(ctx)
	}
	// The exploration flushes its checkpoint on completion; a cut-short
	// one must persist its tail explicitly or the resume loses the last
	// few entries. Safe on nil.
	cfg.Checkpoint.Flush()
	// The exploration has emitted its final ("done") event; wait for the
	// printer to drain so progress lines never interleave with the report.
	<-progressDone
	if err := exploreErr; err != nil {
		var partial *dse.PartialError
		if !errors.As(err, &partial) {
			log.Fatal(err)
		}
		// A cut-short sweep: report what completed, and say why. The exit
		// code separates "ran out of time" (2, rerun with a bigger budget
		// or -checkpoint) from "hit hard failures" (1).
		log.Printf("partial exploration: %d/%d candidates evaluated (%d errors, %d panics)",
			partial.Evaluated, partial.Total, len(partial.Errs), partial.Panics)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			exitCode = 2
			log.Printf("exploration timed out; reporting the completed subset (exit code 2)")
		} else {
			exitCode = 1
			log.Printf("exploration hit hard failures: %v (exit code 1)", partial.Cause)
		}
		if study.Result == nil {
			log.Printf("no usable result to report")
			os.Exit(exitCode)
		}
	}
	// A shard worker's product is its checkpoint, not a report: persist
	// the per-shard annotation cache (the base cache stays read-only —
	// concurrent workers share it) and stop before any printing.
	if cfg.Shard != nil {
		if *cache != "" {
			out := fmt.Sprintf("%s.shard%dof%d", *cache, *shardIndex, *shards)
			if err := cfg.Annotator.SaveFile(out); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("shard %d/%d complete: %s", *shardIndex, *shards, *checkpoint)
		os.Exit(exitCode)
	}
	if *cache != "" {
		if err := cfg.Annotator.SaveFile(*cache); err != nil {
			log.Fatal(err)
		}
	}

	// Optional re-selection under custom weights/norm/degraded policy.
	if *normFlag != "euclid" || *wa != 1 || *wt != 1 || *wc != 1 ||
		(*degradedPolicy != "allow" && *degradedPolicy != "") {
		if err := study.Reselect(selSpec); err != nil {
			log.Fatal(err)
		}
	}

	// With -metrics to stdout the JSON snapshot replaces the default
	// report (explicit -fig/-table1 requests still print).
	printDefault := !(*metrics == "-") || *fig != 0 || *table1

	switch {
	case *fig == 2:
		printTable(study, *csv, study.Figure2Table)
		if !*csv {
			mustPrint(study.Figure2Plot())
		}
	case *fig == 8:
		printTable(study, *csv, study.Figure8Table)
		if !*csv {
			mustPrint(study.Figure8Plot())
		}
	case *table1:
		printTable(study, *csv, study.Table1)
	case printDefault:
		printTable(study, *csv, study.Figure2Table)
		if !*csv {
			mustPrint(study.Figure2Plot())
		}
		fmt.Println()
		printTable(study, *csv, study.Figure8Table)
		if !*csv {
			mustPrint(study.Figure8Plot())
		}
		fmt.Println()
		printTable(study, *csv, study.Table1)
		fmt.Println()
		mustPrint(study.Summary())
		fmt.Println()
		fmt.Println(tta.Draw(study.SelectedArchitecture()))
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := tta.SaveJSON(f, study.SelectedArchitecture()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved selected architecture to %s\n", *save)
	}
	if *metrics != "" {
		if err := writeMetrics(reg, *metrics); err != nil {
			log.Fatal(err)
		}
	}
	if exitCode != 0 {
		os.Exit(exitCode)
	}
}

// splitPaths parses the -merge operand: a comma-separated path list.
func splitPaths(raw string) []string {
	var out []string
	for _, p := range strings.Split(raw, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseIntList parses a comma-separated list of positive ints for the
// named flag, reporting the offending token on error. The result is
// sorted and deduplicated: repeated or unordered values would otherwise
// enumerate (and evaluate) the same candidates twice.
func parseIntList(name, raw string) ([]int, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("flag -%s: empty list (want a positive integer list like 1,2,3)", name)
	}
	seen := make(map[int]bool)
	var out []int
	for _, tok := range strings.Split(raw, ",") {
		s := strings.TrimSpace(tok)
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("flag -%s: invalid count %q (want a positive integer list like 1,2,3)", name, s)
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	sort.Ints(out)
	return out, nil
}

// writeMetrics emits the registry snapshot as JSON to path ("-" = stdout).
func writeMetrics(reg *obs.Registry, path string) error {
	w := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return obs.JSONSink{W: w}.Emit(reg.Snapshot())
}

func printTable(study *core.Study, csv bool, gen func() (*report.Table, error)) {
	_ = study
	t, err := gen()
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.Write(os.Stdout)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func mustPrint(s string, err error) {
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s)
}
