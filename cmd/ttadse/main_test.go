package main

import (
	"strings"
	"testing"
)

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("buses", "1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseIntList = %v", got)
	}
	for _, raw := range []string{"", "   ", "1,x", "0", "1,,2", "-3"} {
		_, err := parseIntList("alus", raw)
		if err == nil {
			t.Fatalf("parseIntList(%q) accepted invalid input", raw)
		}
		if !strings.Contains(err.Error(), "-alus") {
			t.Fatalf("error %q does not name the flag", err)
		}
	}
	// The offending token is reported.
	_, err = parseIntList("buses", "1,2,bogus")
	if err == nil || !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("error %v does not report the offending token", err)
	}
}

func TestParseIntListDedupesAndSorts(t *testing.T) {
	// Duplicates and unsorted input must not produce duplicate candidates
	// downstream: the parsed list is sorted and deduplicated.
	got, err := parseIntList("buses", "3,1,2,3,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("parseIntList = %v, want [1 2 3]", got)
	}
}

func TestParseIntListEmptyMessage(t *testing.T) {
	// The empty string gets its own error, not `invalid count ""`.
	_, err := parseIntList("cmps", "")
	if err == nil {
		t.Fatal("empty list accepted")
	}
	if !strings.Contains(err.Error(), "empty list") || strings.Contains(err.Error(), `""`) {
		t.Fatalf("empty input reported as %q, want a dedicated empty-list message", err)
	}
}
