package main

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestMain doubles as the CLI under test: re-execing this test binary
// with TTADSE_RUN_MAIN=1 runs the real main() over the re-exec's argv,
// so the shard/merge tests drive ttadse as separate OS processes
// without building the command.
func TestMain(m *testing.M) {
	if os.Getenv("TTADSE_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI execs one ttadse invocation, returning stdout, stderr and the
// exit code.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "TTADSE_RUN_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	var ee *exec.ExitError
	switch {
	case err == nil:
	case errors.As(err, &ee):
		code = ee.ExitCode()
	default:
		t.Fatalf("exec %v: %v", args, err)
	}
	return out.String(), errb.String(), code
}

// TestShardMergeCLIByteIdentical is the CLI half of the determinism
// contract: N worker invocations plus one -merge must print exactly the
// unsharded run's bytes, at every shard count and with the worker count
// varying per process (-atpg-workers 1 vs 8 — results are identical at
// any setting, so shards may disagree on it), with the per-shard
// annotation caches unioned back into the base file.
func TestShardMergeCLIByteIdentical(t *testing.T) {
	base := []string{"-buses", "1", "-alus", "1", "-cmps", "1"}
	ref, errText, code := runCLI(t, base...)
	if code != 0 {
		t.Fatalf("unsharded run exited %d: %s", code, errText)
	}
	want := sha256.Sum256([]byte(ref))

	for _, n := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			cache := filepath.Join(dir, "anno.cache")
			var paths []string
			for i := 0; i < n; i++ {
				ckpt := filepath.Join(dir, fmt.Sprintf("s%dof%d.ckpt", i, n))
				paths = append(paths, ckpt)
				workers := "1"
				if i%2 == 0 {
					workers = "8"
				}
				args := append(append([]string(nil), base...),
					"-shards", strconv.Itoa(n), "-shard-index", strconv.Itoa(i),
					"-checkpoint", ckpt, "-cache", cache, "-atpg-workers", workers)
				if _, errText, code := runCLI(t, args...); code != 0 {
					t.Fatalf("shard %d/%d exited %d: %s", i, n, code, errText)
				}
				shardCache := fmt.Sprintf("%s.shard%dof%d", cache, i, n)
				if _, err := os.Stat(shardCache); err != nil {
					t.Fatalf("worker %d wrote no per-shard cache: %v", i, err)
				}
			}
			out, errText, code := runCLI(t, append(append([]string(nil), base...),
				"-merge", strings.Join(paths, ","), "-cache", cache, "-atpg-workers", "8")...)
			if code != 0 {
				t.Fatalf("merge exited %d: %s", code, errText)
			}
			if got := sha256.Sum256([]byte(out)); got != want {
				t.Fatalf("%d-shard merged report differs from the unsharded run", n)
			}
			if _, err := os.Stat(cache); err != nil {
				t.Fatalf("merge left no base cache: %v", err)
			}
		})
	}
}

// TestShardWorkerResumeAfterKill kills worker 0 mid-flight (via an
// immediate -timeout), checks the merge refuses the incomplete fan-out,
// resumes the worker, and checks the merged bytes still match the
// unsharded run exactly.
func TestShardWorkerResumeAfterKill(t *testing.T) {
	base := []string{"-buses", "1", "-alus", "1", "-cmps", "1"}
	ref, errText, code := runCLI(t, base...)
	if code != 0 {
		t.Fatalf("unsharded run exited %d: %s", code, errText)
	}
	dir := t.TempDir()
	ckpt0 := filepath.Join(dir, "s0of2.ckpt")
	ckpt1 := filepath.Join(dir, "s1of2.ckpt")
	worker := func(index int, ckpt string, extra ...string) (string, int) {
		args := append(append([]string(nil), base...),
			"-shards", "2", "-shard-index", strconv.Itoa(index), "-checkpoint", ckpt)
		_, errText, code := runCLI(t, append(args, extra...)...)
		return errText, code
	}
	if errText, code := worker(1, ckpt1); code != 0 {
		t.Fatalf("shard 1 exited %d: %s", code, errText)
	}
	if errText, code := worker(0, ckpt0, "-timeout", "1ns"); code != 2 {
		t.Fatalf("killed shard 0 exited %d, want 2 (timeout): %s", code, errText)
	}
	mergeArgs := append(append([]string(nil), base...), "-merge", ckpt0+","+ckpt1)
	if _, errText, code := runCLI(t, mergeArgs...); code == 0 {
		t.Fatalf("merge accepted an incomplete fan-out: %s", errText)
	}
	if errText, code := worker(0, ckpt0); code != 0 {
		t.Fatalf("resumed shard 0 exited %d: %s", code, errText)
	}
	out, errText, code := runCLI(t, mergeArgs...)
	if code != 0 {
		t.Fatalf("merge after resume exited %d: %s", code, errText)
	}
	if out != ref {
		t.Fatal("merged report after kill + resume differs from the unsharded run")
	}
}

// TestShardFlagValidation pins the CLI-boundary rejections.
func TestShardFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-shards", "2"},                                          // no -checkpoint
		{"-shards", "2", "-shard-index", "2", "-checkpoint", "x"}, // index out of range
		{"-shards", "2", "-checkpoint", "x", "-merge", "a"},       // worker and merge at once
		{"-merge", "a.ckpt", "-checkpoint", "x"},                  // merge ignores -checkpoint
		{"-lane-width", "128"},                                    // invalid lane width
	}
	for _, args := range cases {
		if _, errText, code := runCLI(t, args...); code == 0 {
			t.Fatalf("ttadse %v succeeded, want a flag error (%s)", args, errText)
		}
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("buses", "1, 2,4")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("parseIntList = %v", got)
	}
	for _, raw := range []string{"", "   ", "1,x", "0", "1,,2", "-3"} {
		_, err := parseIntList("alus", raw)
		if err == nil {
			t.Fatalf("parseIntList(%q) accepted invalid input", raw)
		}
		if !strings.Contains(err.Error(), "-alus") {
			t.Fatalf("error %q does not name the flag", err)
		}
	}
	// The offending token is reported.
	_, err = parseIntList("buses", "1,2,bogus")
	if err == nil || !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("error %v does not report the offending token", err)
	}
}

func TestParseIntListDedupesAndSorts(t *testing.T) {
	// Duplicates and unsorted input must not produce duplicate candidates
	// downstream: the parsed list is sorted and deduplicated.
	got, err := parseIntList("buses", "3,1,2,3,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("parseIntList = %v, want [1 2 3]", got)
	}
}

func TestParseIntListEmptyMessage(t *testing.T) {
	// The empty string gets its own error, not `invalid count ""`.
	_, err := parseIntList("cmps", "")
	if err == nil {
		t.Fatal("empty list accepted")
	}
	if !strings.Contains(err.Error(), "empty list") || strings.Contains(err.Error(), `""`) {
		t.Fatalf("empty input reported as %q, want a dedicated empty-list message", err)
	}
}
