// Package repro is a from-scratch reproduction of "Design and Test Space
// Exploration of Transport-Triggered Architectures" (Zivkovic, Tangelder,
// Kerkhoff; DATE 2000).
//
// The library lives under internal/: see internal/core for the top-level
// study API, DESIGN.md for the system inventory, and EXPERIMENTS.md for
// the paper-vs-measured record. The root-level benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation.
package repro
