// Benchmarks for the evaluation caching layers: the single-flight
// annotation cache (cold, where every distinct component runs gate-level
// ATPG), the warm-start cache (where a persisted annotation file skips
// ATPG entirely) and the structural schedule memo — crossed with serial
// and fully parallel exploration. The cold serial/parallel pair measures
// how much of the ATPG-dominated hot path the single-flight cache lets
// run concurrently; the warm pair isolates the remaining scheduling and
// cost-model work. Numbers are recorded in EXPERIMENTS.md.
package repro

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/dse"
	"repro/internal/testcost"
)

// benchCacheConfig is the paper-scale default space (288 candidates, 144
// structures x 2 assign strategies).
func benchCacheConfig(b *testing.B) dse.Config {
	b.Helper()
	cfg, err := dse.DefaultConfig()
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// warmBlob runs one throwaway exploration and serializes its annotator —
// the warm-start file the warm benchmarks load, built outside the timed
// region.
func warmBlob(b *testing.B, cfg dse.Config) []byte {
	b.Helper()
	ann := testcost.NewAnnotator(cfg.Width, cfg.Seed)
	cfg.Annotator = ann
	if _, err := dse.Explore(cfg); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ann.Save(&buf); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchExplore(b *testing.B, parallelism int, warm bool) {
	cfg := benchCacheConfig(b)
	cfg.Parallelism = parallelism
	var blob []byte
	if warm {
		blob = warmBlob(b, cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ann := testcost.NewAnnotator(cfg.Width, cfg.Seed)
		if warm {
			if err := ann.Load(bytes.NewReader(blob)); err != nil {
				b.Fatal(err)
			}
		}
		cfg.Annotator = ann
		b.StartTimer()
		res, err := dse.Explore(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Selected < 0 {
			b.Fatal("no selection")
		}
	}
}

// BenchmarkExploreColdSerial is the seed-equivalent baseline: one worker,
// every annotation runs its ATPG.
func BenchmarkExploreColdSerial(b *testing.B) { benchExplore(b, 1, false) }

// BenchmarkExploreColdParallel is the contended hot path the single-flight
// cache unblocks: GOMAXPROCS workers racing into a cold annotator.
func BenchmarkExploreColdParallel(b *testing.B) { benchExplore(b, runtime.GOMAXPROCS(0), false) }

// BenchmarkExploreWarmSerial explores with a preloaded annotation cache:
// no ATPG at all, serial scheduling.
func BenchmarkExploreWarmSerial(b *testing.B) { benchExplore(b, 1, true) }

// BenchmarkExploreWarmParallel is the fully warmed, fully parallel run —
// the repeated-exploration steady state.
func BenchmarkExploreWarmParallel(b *testing.B) { benchExplore(b, runtime.GOMAXPROCS(0), true) }

// BenchmarkAnnotationColdSingleFlight measures the back-annotation alone
// (no exploration): distinct components annotated concurrently against
// one cold annotator, the workload the per-key latch parallelizes.
func BenchmarkAnnotationColdSingleFlight(b *testing.B) {
	cfg := benchCacheConfig(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ann := testcost.NewAnnotator(cfg.Width, cfg.Seed)
		cfg.Annotator = ann
		cfg.Parallelism = runtime.GOMAXPROCS(0)
		b.StartTimer()
		// Area/delay annotation of every enumerated structure touches each
		// distinct library component exactly once thanks to single-flight.
		if _, err := dse.Explore(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmStartLoad measures deserializing a warm-start cache — the
// cost a warm run pays instead of ATPG.
func BenchmarkWarmStartLoad(b *testing.B) {
	cfg := benchCacheConfig(b)
	blob := warmBlob(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ann := testcost.NewAnnotator(cfg.Width, cfg.Seed)
		if err := ann.Load(bytes.NewReader(blob)); err != nil {
			b.Fatal(err)
		}
	}
}
