// Benchmark harness regenerating every table and figure of the paper's
// evaluation, plus the ablation studies called out in DESIGN.md. Each
// benchmark prints the regenerated rows/series once (on its first
// iteration), so `go test -bench=. -benchmem` doubles as the experiment
// driver recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/dse"
	"repro/internal/gatelib"
	"repro/internal/march"
	"repro/internal/pareto"
	"repro/internal/program"
	"repro/internal/report"
	"repro/internal/scan"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/testcost"
	"repro/internal/tta"
	"repro/internal/vliw"
)

// Shared state so the one-time gate-level ATPG back-annotation is not
// re-measured inside every benchmark loop.
var (
	benchMu    sync.Mutex
	benchAnn   *testcost.Annotator
	benchStudy *core.Study
)

func annotator(b *testing.B) *testcost.Annotator {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchAnn == nil {
		benchAnn = testcost.NewAnnotator(16, 7)
		// Warm the cache outside the timed region.
		if _, err := benchAnn.Evaluate(tta.Figure9()); err != nil {
			b.Fatal(err)
		}
	}
	return benchAnn
}

func exploredStudy(b *testing.B) *core.Study {
	b.Helper()
	ann := annotator(b)
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchStudy == nil {
		cfg, err := dse.DefaultConfig()
		if err != nil {
			b.Fatal(err)
		}
		cfg.Annotator = ann
		s := core.NewStudyWithConfig(cfg)
		if err := s.Explore(); err != nil {
			b.Fatal(err)
		}
		benchStudy = s
	}
	return benchStudy
}

var printOnce sync.Map

func printFirst(key string, gen func() string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, gen())
	}
}

// BenchmarkFigure2AreaTimePareto regenerates figure 2: the 2-D Pareto
// points of the Crypt application in the area/execution-time plane. One
// iteration is a full design space exploration (scheduling the crypt
// round kernel on every candidate).
func BenchmarkFigure2AreaTimePareto(b *testing.B) {
	ann := annotator(b)
	cfg, err := dse.DefaultConfig()
	if err != nil {
		b.Fatal(err)
	}
	cfg.Annotator = ann
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dse.Explore(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Front2D) == 0 {
			b.Fatal("empty front")
		}
		if i == 0 {
			printFirst("Figure 2: area/exec-time Pareto points (Crypt)", func() string {
				s := core.NewStudyWithConfig(cfg)
				s.Result = res
				t, _ := s.Figure2Table()
				p, _ := s.Figure2Plot()
				return t.String() + "\n" + p
			})
		}
	}
}

// BenchmarkFigure8TestSpacePareto regenerates figure 8: the 3-D Pareto
// points with the test-cost axis, including the projection-preservation
// and test-cost-spread observations.
func BenchmarkFigure8TestSpacePareto(b *testing.B) {
	s := exploredStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var pts []pareto.Point
		for _, ci := range s.Result.Feasible {
			c := &s.Result.Candidates[ci]
			pts = append(pts, pareto.Point{ID: ci, Coords: c.Coords()})
		}
		front := pareto.Front(pts)
		if len(front) == 0 {
			b.Fatal("empty 3-D front")
		}
		if i == 0 {
			printFirst("Figure 8: area/exec-time/test-cost Pareto points", func() string {
				t, _ := s.Figure8Table()
				p, _ := s.Figure8Plot()
				lo, hi, _ := s.Result.TestCostSpread(0.01)
				return fmt.Sprintf("%s\n%s\nprojection preserved: %v; test-cost spread among 2D-close designs: %d..%d\n",
					t.String(), p, s.Result.ProjectionPreserved(), lo, hi)
			})
		}
	}
}

// BenchmarkFigure9Selection regenerates figure 9: the equal-weight
// Euclidean-norm selection over the 3-D front.
func BenchmarkFigure9Selection(b *testing.B) {
	s := exploredStudy(b)
	var pts []pareto.Point
	for _, ci := range s.Result.Front3D {
		pts = append(pts, pareto.Point{ID: ci, Coords: s.Result.Candidates[ci].Coords()})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, err := pareto.Select(pts, nil, pareto.Euclid)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			sel := s.Result.Candidates[pts[best].ID]
			printFirst("Figure 9: selected architecture (equal weights)", func() string {
				return fmt.Sprintf("%s\narea=%.0f exec=%.0f test=%d (full scan %d)\n",
					sel.Arch, sel.Area, sel.ExecTime, sel.TestCost, sel.FullScan)
			})
		}
	}
}

// BenchmarkTable1ScanVsFunctional regenerates Table 1: the per-component
// comparison of full scan against the functional approach on the
// figure-9 architecture.
func BenchmarkTable1ScanVsFunctional(b *testing.B) {
	ann := annotator(b)
	arch := tta.Figure9()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cost, err := ann.Evaluate(arch)
		if err != nil {
			b.Fatal(err)
		}
		if cost.Total >= cost.FullScanTotal {
			b.Fatal("functional approach lost to full scan")
		}
		if i == 0 {
			printFirst("Table 1: full scan vs our approach", func() string {
				t, _ := core.Table1For(ann, arch)
				return t.String()
			})
		}
	}
}

// BenchmarkFigure7VLIWTestOrder regenerates the section-3.2 extension:
// test-order exploration on bus-oriented VLIW templates.
func BenchmarkFigure7VLIWTestOrder(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{2, 3, 4} {
			t := vliw.Figure7(n, 86, 80, 60)
			opt, _, err := t.OptimalCost()
			if err != nil {
				b.Fatal(err)
			}
			worst, _, err := t.WorstCost()
			if err != nil {
				b.Fatal(err)
			}
			if worst <= opt {
				b.Fatal("test order made no difference")
			}
			if i == 0 {
				printFirst(fmt.Sprintf("Figure 7 extension: %s", t.Name), func() string {
					return fmt.Sprintf("dependency order %d cycles, naive %d (+%.0f%%)",
						opt, worst, 100*float64(worst-opt)/float64(opt))
				})
			}
		}
	}
}

// BenchmarkTimingRelations measures the transport-timing machinery of
// equations (2)-(10).
func BenchmarkTimingRelations(b *testing.B) {
	fu := tta.NewFU(tta.ALU, "fu")
	fu.Ports[0].Bus = 0
	fu.Ports[1].Bus = 1
	fu.Ports[2].Bus = 2
	ops := []tta.OpTiming{
		{Fin: 0, O: 1, T: 1, R: 2, Fout: 3},
		{Fin: 4, O: 5, T: 5, R: 6, Fout: 7},
		{Fin: 8, O: 9, T: 9, R: 10, Fout: 11},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fu.CD() != tta.MinCD {
			b.Fatal("CD broken")
		}
		if err := tta.CheckRelations(ops); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Core machinery benchmarks ---

// BenchmarkScheduleCryptRound measures list-scheduling the DES round
// kernel onto the figure-9 TTA.
func BenchmarkScheduleCryptRound(b *testing.B) {
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		b.Fatal(err)
	}
	arch := tta.Figure9()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(kernel, arch, sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateCryptRound measures the cycle-accurate simulation with
// full value verification.
func BenchmarkSimulateCryptRound(b *testing.B) {
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		b.Fatal(err)
	}
	arch := tta.Figure9()
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ks := crypt.KeySchedule(0x133457799BBCDFF1)
	inputs := crypt.KernelInputs(0x01234567, 0x89ABCDEF, ks[:1])
	mem := crypt.MemoryImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(res, inputs, mem, sim.Options{Verify: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkATPGALU16 measures the full ATPG flow on the 16-bit ALU.
func BenchmarkATPGALU16(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := atpg.Run(alu.Seq, atpg.Config{Seed: 7})
		if res.Coverage() < 0.99 {
			b.Fatalf("coverage regressed: %s", res)
		}
	}
}

// BenchmarkCryptHash measures the software crypt(3) reference.
func BenchmarkCryptHash(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := crypt.Hash("password", "ab"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationAdderChoice contrasts the ripple and carry-select ALUs
// on area, delay and pattern count.
func BenchmarkAblationAdderChoice(b *testing.B) {
	for _, ak := range []gatelib.AdderKind{gatelib.AdderRipple, gatelib.AdderCarrySelect} {
		ak := ak
		b.Run(ak.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: ak})
				if err != nil {
					b.Fatal(err)
				}
				res := atpg.Run(alu.Seq, atpg.Config{Seed: 7})
				if i == 0 {
					printFirst("Ablation: adder "+ak.String(), func() string {
						return fmt.Sprintf("area=%.0f delay=%.1f np=%d FC=%.2f%%",
							alu.Seq.Area(), alu.Seq.CriticalPath(), res.NumPatterns(), 100*res.Coverage())
					})
				}
			}
		})
	}
}

// BenchmarkAblationATPGStrategy contrasts random+PODEM against PODEM-only
// generation.
func BenchmarkAblationATPGStrategy(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		cfg  atpg.Config
	}{
		{"random+podem", atpg.Config{Seed: 7}},
		{"podem-only", atpg.Config{Seed: 7, MaxRandomPatterns: -1}},
		{"no-compaction", atpg.Config{Seed: 7, SkipCompaction: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := atpg.Run(alu.Seq, c.cfg)
				if i == 0 {
					printFirst("Ablation: ATPG "+c.name, func() string {
						return fmt.Sprintf("np=%d FC=%.2f%%", res.NumPatterns(), 100*res.Coverage())
					})
				}
			}
		})
	}
}

// BenchmarkAblationMarchChoice contrasts the march algorithms on the RF
// pattern counts of equation (12).
func BenchmarkAblationMarchChoice(b *testing.B) {
	tbl := report.NewTable("Ablation: march algorithm", "algorithm", "RF1(8) np", "RF2(12) np")
	for _, alg := range []march.Test{march.MATSPlus, march.MarchCMinus, march.MarchB} {
		tbl.AddRow(alg.String(),
			march.MultiPortPatternCount(alg, 8, 1, 1),
			march.MultiPortPatternCount(alg, 12, 1, 1))
	}
	printFirst("Ablation: march choice", tbl.String)
	mem := march.NewRAM(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := march.MarchCMinus.Run(mem, 16, 0); f != nil {
			b.Fatal(f)
		}
	}
}

// BenchmarkAblationPortAssignment contrasts the assignment strategies'
// effect on CD and test cost for the same structure.
func BenchmarkAblationPortAssignment(b *testing.B) {
	ann := annotator(b)
	strategies := []tta.AssignStrategy{tta.SpreadFirst, tta.RoundRobin, tta.Packed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, strat := range strategies {
			a := tta.Figure9().Clone()
			a.Buses = 3
			tta.AssignPorts(a, strat)
			cost, err := ann.Evaluate(a)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				printFirst("Ablation: assignment "+strat.String(), func() string {
					return fmt.Sprintf("total test cost %d cycles (ALU CD=%d)",
						cost.Total, a.Components[0].CD())
				})
			}
		}
	}
}

// BenchmarkAblationNormChoice contrasts the selection norms over the 3-D
// front.
func BenchmarkAblationNormChoice(b *testing.B) {
	s := exploredStudy(b)
	var pts []pareto.Point
	for _, ci := range s.Result.Front3D {
		pts = append(pts, pareto.Point{ID: ci, Coords: s.Result.Candidates[ci].Coords()})
	}
	norms := []pareto.Norm{pareto.Euclid, pareto.Manhattan, pareto.Chebyshev}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range norms {
			best, err := pareto.Select(pts, nil, n)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				sel := s.Result.Candidates[pts[best].ID]
				printFirst("Ablation: norm "+n.String(), func() string {
					return sel.Arch.Name
				})
			}
		}
	}
}

// BenchmarkScanInsertion measures the scan-chain rewrite of the ALU.
func BenchmarkScanInsertion(b *testing.B) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan.Insert(alu.Seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelEvaluate measures the dataflow reference evaluation of
// one DES round (the golden model every simulation is checked against).
func BenchmarkKernelEvaluate(b *testing.B) {
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		b.Fatal(err)
	}
	ks := crypt.KeySchedule(0x133457799BBCDFF1)
	inputs := crypt.KernelInputs(0x01234567, 0x89ABCDEF, ks[:1])
	mem := crypt.MemoryImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := program.Evaluate(kernel, inputs, mem); err != nil {
			b.Fatal(err)
		}
	}
}
