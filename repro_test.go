// Root-level integration test: one compact end-to-end run asserting the
// paper's headline claims hold together — the smoke test a fresh checkout
// answers with.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/crypt"
	"repro/internal/dse"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

func TestEndToEndStudy(t *testing.T) {
	// A trimmed exploration keeps this under a second while still crossing
	// every subsystem: gate-level ATPG back-annotation, scheduling the
	// crypt kernel, the three-axis evaluation and the selection.
	cfg, err := dse.DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Buses = []int{2, 3}
	cfg.ALUCounts = []int{1, 2}
	cfg.CMPCounts = []int{1}
	cfg.RFSets = cfg.RFSets[1:3]
	cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst, tta.Packed}
	study := core.NewStudyWithConfig(cfg)
	if err := study.Explore(); err != nil {
		t.Fatal(err)
	}
	res := study.Result

	// Claim 1 (figure 8): the area/time front survives the test axis.
	if !res.ProjectionPreserved() {
		t.Error("projection not preserved")
	}
	// Claim 2 (figure 8): 2-D-close designs spread on the test axis.
	if lo, hi, ok := res.TestCostSpread(0.01); !ok || hi <= lo {
		t.Errorf("no test-cost spread among close designs (%d..%d, ok=%v)", lo, hi, ok)
	}
	// Claim 3 (Table 1): functional beats full scan everywhere.
	for _, i := range res.Feasible {
		c := &res.Candidates[i]
		if c.TestCost >= c.FullScan {
			t.Errorf("%s: functional %d not below scan %d", c.Arch.Name, c.TestCost, c.FullScan)
		}
	}
	// Claim 4 (figure 9): a feasible architecture is selected and it
	// actually computes crypt, verified move by move.
	sel := study.SelectedArchitecture()
	if sel == nil {
		t.Fatal("no selection")
	}
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	schedRes, err := sched.Schedule(kernel, sel, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Check(schedRes); err != nil {
		t.Fatal(err)
	}
	ks := crypt.KeySchedule(crypt.KeyFromPassword("integration"))
	out, err := sim.Run(schedRes, crypt.KernelInputs(0, 0, ks[:1]), crypt.MemoryImage(), sim.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	gl, gr := crypt.KernelOutputs(out)
	wl, wr := crypt.GoldenRounds(0, 0, ks[:1])
	if gl != wl || gr != wr {
		t.Fatalf("selected architecture miscomputes crypt: (%08X,%08X) vs (%08X,%08X)", gl, gr, wl, wr)
	}
}

func TestSchedulerPriorityAblation(t *testing.T) {
	// Critical-path list scheduling must not lose to naive source order on
	// the crypt kernel (and usually wins).
	arch := tta.Figure9()
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sched.Schedule(kernel, arch, sched.Options{Priority: sched.CriticalPath})
	if err != nil {
		t.Fatal(err)
	}
	so, err := sched.Schedule(kernel, arch, sched.Options{Priority: sched.SourceOrder})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Check(so); err != nil {
		t.Fatalf("source-order schedule invalid: %v", err)
	}
	t.Logf("crypt round: critical-path %d cycles, source-order %d cycles", cp.Cycles, so.Cycles)
	if cp.Cycles > so.Cycles+5 {
		t.Errorf("critical-path priority markedly worse than source order: %d vs %d", cp.Cycles, so.Cycles)
	}
	if sched.CriticalPath.String() == "" || sched.SourceOrder.String() == "" {
		t.Error("empty priority names")
	}

	// An adversarial graph — the long dependence chain appears last in
	// program order — separates the heuristics decisively.
	g := program.NewGraph("adversarial", 16)
	a := g.In()
	b := g.In()
	var shorts []program.ValueID
	for i := 0; i < 12; i++ {
		shorts = append(shorts, g.Xor(a, g.ConstV(uint64(i))))
	}
	chain := b
	for i := 0; i < 10; i++ {
		chain = g.Add(chain, a)
	}
	acc := chain
	for _, s := range shorts {
		acc = g.Or(acc, s)
	}
	g.Output(acc)
	cp2, err := sched.Schedule(g, arch, sched.Options{Priority: sched.CriticalPath})
	if err != nil {
		t.Fatal(err)
	}
	so2, err := sched.Schedule(g, arch, sched.Options{Priority: sched.SourceOrder})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("adversarial graph: critical-path %d cycles, source-order %d cycles", cp2.Cycles, so2.Cycles)
	if cp2.Cycles > so2.Cycles {
		t.Errorf("critical-path lost on its home turf: %d vs %d", cp2.Cycles, so2.Cycles)
	}
}
