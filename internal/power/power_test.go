package power

import (
	"testing"

	"repro/internal/crypt"
	"repro/internal/gatelib"
	"repro/internal/sched"
	"repro/internal/tta"
	"repro/internal/workloads"
)

var sharedModel *Model

func model(t *testing.T) *Model {
	t.Helper()
	if sharedModel == nil {
		m, err := Calibrate(gatelib.NewLibrary(), 16, 7)
		if err != nil {
			t.Fatal(err)
		}
		sharedModel = m
	}
	return sharedModel
}

func TestCalibrationProducesSaneCosts(t *testing.T) {
	m := model(t)
	for _, k := range []tta.Kind{tta.ALU, tta.CMP, tta.LDST} {
		if m.PerOp[k] <= 0 {
			t.Errorf("%s per-op energy %.1f not positive", k, m.PerOp[k])
		}
	}
	// An ALU op switches far more logic than an RF access (registers only).
	if m.PerOp[tta.ALU] <= m.RFAccess {
		t.Errorf("ALU op %.1f not above RF access %.1f", m.PerOp[tta.ALU], m.RFAccess)
	}
	t.Logf("calibrated: ALU=%.0f CMP=%.0f LDST=%.0f RF=%.0f toggles",
		m.PerOp[tta.ALU], m.PerOp[tta.CMP], m.PerOp[tta.LDST], m.RFAccess)
}

func TestCalibrationDeterministic(t *testing.T) {
	m1, err := Calibrate(nil, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Calibrate(nil, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m1.PerOp[tta.ALU] != m2.PerOp[tta.ALU] || m1.RFAccess != m2.RFAccess {
		t.Fatal("nondeterministic calibration")
	}
}

func TestScheduleEnergyBreakdown(t *testing.T) {
	m := model(t)
	arch := tta.Figure9()
	kernel, err := crypt.BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := m.ScheduleEnergy(res, 8000)
	if e.Total <= 0 || e.Transport <= 0 || e.Compute <= 0 || e.Storage <= 0 || e.Leakage <= 0 {
		t.Fatalf("degenerate estimate: %s", e)
	}
	if got := e.Transport + e.Compute + e.Storage + e.Leakage; got != e.Total {
		t.Fatalf("components %.1f do not sum to total %.1f", got, e.Total)
	}
	t.Logf("crypt round on figure 9: %s", e)
}

func TestEnergyTradeoffMoreUnitsLessTimeMoreLeakPerCycle(t *testing.T) {
	// A second ALU shortens the schedule (less leakage time) but grows the
	// area (more leakage per cycle); dynamic energy stays roughly equal
	// (same work). The model must expose this trade coherently.
	m := model(t)
	g, err := workloads.Checksum(8, 0x40)
	if err != nil {
		t.Fatal(err)
	}
	small := tta.Figure9()
	big := tta.Figure9()
	big.Components = append(big.Components, tta.NewFU(tta.ALU, "ALU2"))
	tta.AssignPorts(big, tta.SpreadFirst)

	resS, err := sched.Schedule(g, small, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := sched.Schedule(g, big, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	areaS, areaB := 8000.0, 9300.0
	eS := m.ScheduleEnergy(resS, areaS)
	eB := m.ScheduleEnergy(resB, areaB)
	// Same computation: dynamic parts must be close.
	dynS := eS.Total - eS.Leakage
	dynB := eB.Total - eB.Leakage
	if dynB > 1.3*dynS || dynS > 1.3*dynB {
		t.Errorf("dynamic energy diverged: %.0f vs %.0f for the same work", dynS, dynB)
	}
	// Leakage per cycle grows with area.
	if eB.Leakage/float64(resB.Cycles) <= eS.Leakage/float64(resS.Cycles) {
		t.Error("larger architecture does not leak more per cycle")
	}
	t.Logf("1 ALU: %d cycles, %s; 2 ALUs: %d cycles, %s", resS.Cycles, eS, resB.Cycles, eB)
}

func TestEnergyScalesWithWork(t *testing.T) {
	m := model(t)
	arch := tta.Figure9()
	one, err := crypt.BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := crypt.BuildRoundKernel(4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sched.Schedule(one, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := sched.Schedule(four, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.ScheduleEnergy(r1, 8000)
	e4 := m.ScheduleEnergy(r4, 8000)
	if e4.Total < 3*e1.Total {
		t.Errorf("4 rounds cost %.0f, less than 3x one round's %.0f", e4.Total, e1.Total)
	}
}
