// Package power adds an energy axis to the exploration: an activity-based
// model whose per-operation costs are calibrated by counting
// fanout-weighted signal toggles in the gate-level component netlists
// (switched capacitance proxy), plus a leakage term proportional to area
// and runtime. The paper optimizes (area, time, test); energy is the
// natural fourth axis a modern reproduction should offer, and the
// calibration reuses the same pre-designed component library.
package power

import (
	"fmt"
	"math/rand"

	"repro/internal/gatelib"
	"repro/internal/netlist"
	"repro/internal/sched"
	"repro/internal/tta"
)

// Model holds calibrated per-event energies in toggle units (one unit =
// one fanout-weighted signal transition).
type Model struct {
	Width int
	// PerOp is the average switched capacitance of one triggered
	// operation per function-unit kind (transport registers included).
	PerOp map[tta.Kind]float64
	// RFAccess is the average cost of one register-file read or write.
	RFAccess float64
	// BusPerBit is the transport cost of one bus line toggling (applied as
	// width/2 expected toggles per move).
	BusPerBit float64
	// LeakPerAreaCycle models static dissipation per NAND2-equivalent
	// area unit per clock cycle.
	LeakPerAreaCycle float64
}

// toggleCounter accumulates fanout-weighted transitions on a netlist.
type toggleCounter struct {
	n      *netlist.Netlist
	st     *netlist.State
	weight []float64
	prev   []uint8
	total  float64
	primed bool
}

func newToggleCounter(n *netlist.Netlist) *toggleCounter {
	tc := &toggleCounter{
		n:      n,
		st:     netlist.NewState(n),
		weight: make([]float64, n.NumNets()),
		prev:   make([]uint8, n.NumNets()),
	}
	fan := n.FanoutTable()
	for net := 0; net < n.NumNets(); net++ {
		tc.weight[net] = 1 + float64(len(fan[net]))
	}
	return tc
}

// cycle clocks the netlist once and accumulates toggles (lane 0).
func (tc *toggleCounter) cycle() {
	tc.st.Eval()
	for net := 0; net < tc.n.NumNets(); net++ {
		bit := uint8(tc.st.Word(netlist.Net(net)) & 1)
		if tc.primed && bit != tc.prev[net] {
			tc.total += tc.weight[net]
		}
		tc.prev[net] = bit
	}
	tc.primed = true
	tc.st.Step()
}

// Calibrate measures the per-event energies on the gate-level library.
func Calibrate(lib *gatelib.Library, width int, seed int64) (*Model, error) {
	if lib == nil {
		lib = gatelib.NewLibrary()
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Width:            width,
		PerOp:            map[tta.Kind]float64{},
		BusPerBit:        2, // one wire toggle charging the shared bus line
		LeakPerAreaCycle: 0.01,
	}

	alu, err := lib.ALU(gatelib.ALUConfig{Width: width, Adder: gatelib.AdderRipple})
	if err != nil {
		return nil, err
	}
	m.PerOp[tta.ALU], err = measureFU(alu, gatelib.ALUOpBits, rng)
	if err != nil {
		return nil, err
	}
	cmp, err := lib.CMP(width)
	if err != nil {
		return nil, err
	}
	m.PerOp[tta.CMP], err = measureFU(cmp, gatelib.CMPOpBits, rng)
	if err != nil {
		return nil, err
	}
	// LD/ST: approximate with the ALU transport registers (its core is
	// thin; the memory array is outside the datapath).
	m.PerOp[tta.LDST] = m.PerOp[tta.ALU] * 0.6

	rf, err := lib.RF(gatelib.RFConfig{Width: width, NumRegs: 8, NumIn: 1, NumOut: 1})
	if err != nil {
		return nil, err
	}
	m.RFAccess, err = measureRF(rf, rng)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// measureFU drives random back-to-back operations through the pipelined
// wrapper and returns average toggles per operation.
func measureFU(comp *gatelib.Component, opBits int, rng *rand.Rand) (float64, error) {
	n := comp.Seq
	tc := newToggleCounter(n)
	pBusO, ok1 := n.InputPort("bus_o")
	pBusT, ok2 := n.InputPort("bus_t")
	pOp, ok3 := n.InputPort("op_in")
	pLdO, ok4 := n.InputPort("load_o")
	pLdT, ok5 := n.InputPort("load_t")
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return 0, fmt.Errorf("power: %s lacks the pipelined wrapper ports", comp.Name)
	}
	const ops = 200
	mask := uint64(1)<<uint(comp.Width) - 1
	for i := 0; i < ops; i++ {
		tc.st.SetInputBus(pBusO, rng.Uint64()&mask)
		tc.st.SetInputBus(pLdO, 1)
		tc.st.SetInputBus(pLdT, 0)
		tc.cycle()
		tc.st.SetInputBus(pBusT, rng.Uint64()&mask)
		tc.st.SetInputBus(pOp, uint64(rng.Intn(1<<uint(opBits))))
		tc.st.SetInputBus(pLdO, 0)
		tc.st.SetInputBus(pLdT, 1)
		tc.cycle()
		tc.st.SetInputBus(pLdT, 0)
		tc.cycle() // result latches
	}
	return tc.total / ops, nil
}

// measureRF drives random writes and reads and returns average toggles per
// access.
func measureRF(comp *gatelib.Component, rng *rand.Rand) (float64, error) {
	n := comp.Seq
	tc := newToggleCounter(n)
	pWA, ok1 := n.InputPort("waddr0")
	pWD, ok2 := n.InputPort("wdata0")
	pWE, ok3 := n.InputPort("we0")
	pRA, ok4 := n.InputPort("raddr0")
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, fmt.Errorf("power: %s lacks RF ports", comp.Name)
	}
	const accesses = 200
	mask := uint64(1)<<uint(comp.Width) - 1
	for i := 0; i < accesses; i++ {
		tc.st.SetInputBus(pWA, uint64(rng.Intn(comp.NumRegs)))
		tc.st.SetInputBus(pWD, rng.Uint64()&mask)
		tc.st.SetInputBus(pWE, 1)
		tc.st.SetInputBus(pRA, uint64(rng.Intn(comp.NumRegs)))
		tc.cycle()
	}
	return tc.total / accesses, nil
}

// Estimate is the energy breakdown of one schedule execution.
type Estimate struct {
	Transport float64 // bus switching
	Compute   float64 // triggered operations
	Storage   float64 // register-file accesses
	Leakage   float64 // area x cycles
	Total     float64
}

func (e Estimate) String() string {
	return fmt.Sprintf("total %.0f (transport %.0f, compute %.0f, storage %.0f, leakage %.0f)",
		e.Total, e.Transport, e.Compute, e.Storage, e.Leakage)
}

// ScheduleEnergy estimates the energy of executing a schedule once on an
// architecture with total cell area `area`.
func (m *Model) ScheduleEnergy(res *sched.Result, area float64) Estimate {
	var e Estimate
	arch := res.Arch
	for _, mv := range res.Moves {
		e.Transport += m.BusPerBit * float64(m.Width) / 2
		src := &arch.Components[mv.Src.Comp]
		if src.Kind == tta.RF {
			e.Storage += m.RFAccess
		}
		dst := &arch.Components[mv.Dst.Comp]
		if dst.Kind == tta.RF {
			e.Storage += m.RFAccess
		}
		if mv.Trigger {
			if c, ok := m.PerOp[dst.Kind]; ok {
				e.Compute += c
			}
		}
	}
	e.Leakage = m.LeakPerAreaCycle * area * float64(res.Cycles)
	e.Total = e.Transport + e.Compute + e.Storage + e.Leakage
	return e
}
