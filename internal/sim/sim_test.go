package sim

import (
	"math/rand"
	"testing"

	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

func arch(buses int) *tta.Architecture {
	a := &tta.Architecture{
		Name: "simarch", Width: 16, Buses: buses,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewFU(tta.CMP, "CMP"),
			tta.NewRF("RF1", 8, 1, 2),
			tta.NewRF("RF2", 12, 1, 1),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewPC("PC"),
			tta.NewIMM("Immediate"),
		},
	}
	tta.AssignPorts(a, tta.SpreadFirst)
	return a
}

func runBoth(t *testing.T, g *program.Graph, a *tta.Architecture, inputs []uint64, mem program.Memory) ([]uint64, []uint64) {
	t.Helper()
	res, err := sched.Schedule(g, a, sched.Options{})
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	memRef := program.Memory{}
	memSim := program.Memory{}
	for k, v := range mem {
		memRef[k] = v
		memSim[k] = v
	}
	want, err := program.Evaluate(g, inputs, memRef)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	got, err := Run(res, inputs, memSim, Options{Verify: true})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return got, want
}

func TestSimpleAddMatchesReference(t *testing.T) {
	g := program.NewGraph("add", 16)
	a := g.In()
	b := g.In()
	g.Output(g.Add(a, b))
	got, want := runBoth(t, g, arch(2), []uint64{0x1111, 0x2222}, nil)
	if got[0] != want[0] || got[0] != 0x3333 {
		t.Fatalf("got %#x want %#x", got, want)
	}
}

func TestAllBinaryOpsThroughTTA(t *testing.T) {
	ops := []program.OpCode{
		program.Add, program.Sub, program.Sll, program.Srl,
		program.And, program.Or, program.Xor,
		program.Eq, program.Ne, program.Ltu, program.Lts,
		program.Geu, program.Ges, program.Gtu, program.Gts,
	}
	rng := rand.New(rand.NewSource(8))
	for _, op := range ops {
		g := program.NewGraph("op_"+op.String(), 16)
		a := g.In()
		b := g.In()
		g.Output(g.Bin(op, a, b))
		in := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16))}
		got, want := runBoth(t, g, arch(2), in, nil)
		if got[0] != want[0] {
			t.Fatalf("%s(%#x,%#x): tta=%#x ref=%#x", op, in[0], in[1], got[0], want[0])
		}
	}
}

func TestMemoryThroughTTA(t *testing.T) {
	g := program.NewGraph("memprog", 16)
	base := g.ConstV(0x100)
	one := g.ConstV(1)
	v := g.Load(base)      // mem[0x100]
	v2 := g.Add(v, one)    // +1
	a2 := g.Add(base, one) // 0x101
	g.Store(a2, v2)        // mem[0x101] = v+1
	g.Output(g.Load(a2))   // read back
	mem := program.Memory{0x100: 0x00FE}
	got, want := runBoth(t, g, arch(2), nil, mem)
	if got[0] != want[0] || got[0] != 0x00FF {
		t.Fatalf("got %#x want %#x (ref %#x)", got[0], 0x00FF, want[0])
	}
}

func TestDiamondDependency(t *testing.T) {
	g := program.NewGraph("diamond", 16)
	a := g.In()
	b := g.In()
	s := g.Add(a, b)
	l := g.Sll(s, g.ConstV(2))
	r := g.Srl(s, g.ConstV(3))
	g.Output(g.Xor(l, r))
	got, want := runBoth(t, g, arch(2), []uint64{0xABCD, 0x1234}, nil)
	if got[0] != want[0] {
		t.Fatalf("diamond: tta=%#x ref=%#x", got[0], want[0])
	}
}

func TestValueReusedManyTimes(t *testing.T) {
	g := program.NewGraph("reuse", 16)
	a := g.In()
	acc := g.Add(a, a)
	for i := 0; i < 6; i++ {
		acc = g.Xor(acc, a)
	}
	g.Output(acc)
	got, want := runBoth(t, g, arch(2), []uint64{0x5A5A}, nil)
	if got[0] != want[0] {
		t.Fatalf("reuse: tta=%#x ref=%#x", got[0], want[0])
	}
}

func TestFuzzSimulationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	binOps := []program.OpCode{
		program.Add, program.Sub, program.Sll, program.Srl,
		program.And, program.Or, program.Xor,
		program.Eq, program.Ltu, program.Lts, program.Gtu,
	}
	for trial := 0; trial < 30; trial++ {
		g := program.NewGraph("fuzz", 16)
		var vals []program.ValueID
		for i := 0; i < 3; i++ {
			vals = append(vals, g.In())
		}
		for i := 0; i < 2; i++ {
			vals = append(vals, g.ConstV(uint64(rng.Intn(1<<16))))
		}
		n := 20 + rng.Intn(40)
		for i := 0; i < n; i++ {
			pick := func() program.ValueID { return vals[rng.Intn(len(vals))] }
			switch rng.Intn(10) {
			case 0:
				vals = append(vals, g.Load(pick()))
			case 1:
				g.Store(pick(), pick())
			default:
				vals = append(vals, g.Bin(binOps[rng.Intn(len(binOps))], pick(), pick()))
			}
		}
		g.Output(vals[len(vals)-1])
		g.Output(vals[len(vals)-2])

		a := arch(1 + rng.Intn(3))
		inputs := []uint64{uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16)), uint64(rng.Intn(1 << 16))}
		mem := program.Memory{}
		for i := 0; i < 8; i++ {
			mem[uint64(rng.Intn(64))] = uint64(rng.Intn(1 << 16))
		}
		got, want := runBoth(t, g, a, inputs, mem)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d output %d: tta=%#x ref=%#x", trial, i, got[i], want[i])
			}
		}
	}
}

func TestVerifyCatchesWrongInputs(t *testing.T) {
	g := program.NewGraph("v", 16)
	a := g.In()
	g.Output(g.Add(a, a))
	res, err := sched.Schedule(g, arch(2), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(res, []uint64{1, 2}, nil, Options{}); err == nil {
		t.Fatal("extra input accepted")
	}
	if _, err := Run(res, nil, nil, Options{}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestTraceProducesLines(t *testing.T) {
	g := program.NewGraph("t", 16)
	a := g.In()
	g.Output(g.Add(a, g.ConstV(1)))
	res, err := sched.Schedule(g, arch(2), sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	if _, err := Run(res, []uint64{5}, nil, Options{Verify: true, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Lines) != len(res.Moves) {
		t.Fatalf("trace has %d lines for %d moves", len(tr.Lines), len(res.Moves))
	}
}
