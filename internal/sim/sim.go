// Package sim executes scheduled move programs cycle by cycle against the
// behavioural semantics of the TTA components: register files, the
// ALU/CMP/LD-ST function units with their O/T/R hybrid-pipeline registers,
// and immediate sourcing. It is the ground truth that demonstrates a
// schedule produced by internal/sched really computes the program — every
// transported value is checked against the dataflow reference evaluation.
package sim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

// fuState is the runtime state of one function unit.
type fuState struct {
	o         uint64
	oValid    bool
	result    uint64
	resultAt  int // earliest bus cycle the result may move out
	hasResult bool
}

// Trace optionally collects per-cycle activity for debugging and the
// examples' pretty-printing.
type Trace struct {
	Lines []string
}

// Options controls a simulation run.
type Options struct {
	// Verify cross-checks every transported value against the reference
	// dataflow evaluation (strongly recommended; small overhead).
	Verify bool
	// Trace collects a human-readable transport log when non-nil.
	Trace *Trace
	// ExecOverride, when non-nil, may take over the execution of a
	// triggered ALU/CMP operation on a specific component — the hook
	// fault-injection campaigns use to substitute a faulty gate-level
	// netlist for the behavioural semantics. Return handled=false to fall
	// back to the normal execution.
	ExecOverride func(comp int, op program.OpCode, o, t uint64) (result uint64, handled bool)
	// Obs, when non-nil, receives simulation metrics: runs, cycles
	// executed and moves transported (counters "sim.*").
	Obs *obs.Registry
}

// Run executes the schedule with the given program inputs and memory
// image, returning the program outputs. The memory map is mutated by
// stores (pass a copy to keep the original).
func Run(res *sched.Result, inputs []uint64, mem program.Memory, opts Options) ([]uint64, error) {
	g := res.Graph
	arch := res.Arch
	if mem == nil {
		mem = program.Memory{}
	}
	mask := uint64(1)<<uint(g.Width) - 1

	var refVals []uint64
	if opts.Verify {
		rv, err := referenceValues(g, inputs, cloneMem(mem))
		if err != nil {
			return nil, err
		}
		refVals = rv
	}

	// Register files.
	rfData := make(map[int][]uint64)
	for ci := range arch.Components {
		if arch.Components[ci].Kind == tta.RF {
			rfData[ci] = make([]uint64, arch.Components[ci].NumRegs)
		}
	}
	// Seed program inputs into their allocated registers.
	inIdx := 0
	for i, op := range g.Ops {
		if op.Op != program.Input {
			continue
		}
		if inIdx >= len(inputs) {
			return nil, fmt.Errorf("sim: %d inputs supplied, program needs more", len(inputs))
		}
		loc, ok := res.InputLoc[program.ValueID(i)]
		if !ok {
			return nil, fmt.Errorf("sim: input %d has no register allocation", i)
		}
		rfData[loc.RF][loc.Reg] = inputs[inIdx] & mask
		inIdx++
	}
	if inIdx != len(inputs) {
		return nil, fmt.Errorf("sim: %d inputs supplied, program declares %d", len(inputs), inIdx)
	}

	fus := make(map[int]*fuState)
	for ci := range arch.Components {
		switch arch.Components[ci].Kind {
		case tta.ALU, tta.CMP, tta.LDST:
			fus[ci] = &fuState{}
		}
	}

	// Group moves by cycle (they arrive sorted).
	byCycle := make(map[int][]sched.Move)
	maxCycle := 0
	for _, m := range res.Moves {
		byCycle[m.Cycle] = append(byCycle[m.Cycle], m)
		if m.Cycle > maxCycle {
			maxCycle = m.Cycle
		}
	}

	type commit struct {
		move  sched.Move
		value uint64
	}
	for cycle := 0; cycle <= maxCycle; cycle++ {
		moves := byCycle[cycle]
		if len(moves) == 0 {
			continue
		}
		if len(moves) > arch.Buses {
			return nil, fmt.Errorf("sim: cycle %d schedules %d moves on %d buses", cycle, len(moves), arch.Buses)
		}
		// Sample all sources against pre-cycle state.
		commits := make([]commit, 0, len(moves))
		for _, m := range moves {
			v, err := sampleSource(arch, rfData, fus, m, cycle)
			if err != nil {
				return nil, err
			}
			if opts.Verify && m.Val != program.NoValue {
				if want := refVals[m.Val]; v != want {
					return nil, fmt.Errorf("sim: cycle %d move %v transports %#x, reference value %d is %#x",
						cycle, m, v, m.Val, want)
				}
			}
			if opts.Trace != nil {
				opts.Trace.Lines = append(opts.Trace.Lines,
					fmt.Sprintf("cycle %4d: %v = %#04x", cycle, m, v))
			}
			commits = append(commits, commit{move: m, value: v})
		}
		// Commit all destinations.
		for _, c := range commits {
			if err := commitDest(g, arch, rfData, fus, mem, c.move, c.value, cycle, mask, opts.ExecOverride); err != nil {
				return nil, err
			}
		}
	}

	if r := opts.Obs; r != nil {
		r.Counter("sim.runs").Inc()
		r.Counter("sim.cycles").Add(int64(maxCycle + 1))
		r.Counter("sim.moves").Add(int64(len(res.Moves)))
	}

	out := make([]uint64, len(g.Outputs))
	for i, o := range g.Outputs {
		loc, ok := res.RegAlloc[o]
		if !ok {
			return nil, fmt.Errorf("sim: output value %d was never written back", o)
		}
		out[i] = rfData[loc.RF][loc.Reg]
	}
	return out, nil
}

func cloneMem(m program.Memory) program.Memory {
	c := make(program.Memory, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// referenceValues evaluates every op of the graph (not only outputs).
func referenceValues(g *program.Graph, inputs []uint64, mem program.Memory) ([]uint64, error) {
	// Re-run the evaluator but capture all intermediate values by making
	// every defining op an output of a shadow graph evaluation.
	shadow := *g
	shadow.Outputs = nil
	for i, op := range g.Ops {
		if op.Defines() {
			shadow.Outputs = append(shadow.Outputs, program.ValueID(i))
		}
	}
	outs, err := program.Evaluate(&shadow, inputs, mem)
	if err != nil {
		return nil, err
	}
	vals := make([]uint64, len(g.Ops))
	k := 0
	for i, op := range g.Ops {
		if op.Defines() {
			vals[i] = outs[k]
			k++
		}
	}
	return vals, nil
}

// commitSpill executes the destination side of compiler-inserted spill
// traffic: the LD/ST unit stores a victim register to the spill region or
// reloads it from there.
func commitSpill(arch *tta.Architecture, rfData map[int][]uint64, fus map[int]*fuState, mem program.Memory, m sched.Move, v uint64, cycle int, mask uint64) error {
	switch m.Spill {
	case sched.SpillStoreAddr:
		fu := fus[m.Dst.Comp]
		fu.o = v & mask
		fu.oValid = true
		return nil
	case sched.SpillStoreData:
		fu := fus[m.Dst.Comp]
		if !fu.oValid {
			return fmt.Errorf("sim: spill store %v with empty address register", m)
		}
		mem[fu.o] = v & mask
		fu.oValid = false
		return nil
	case sched.SpillLoadTrig:
		fu := fus[m.Dst.Comp]
		fu.result = mem[v&mask] & mask
		fu.hasResult = true
		fu.resultAt = cycle + 3
		return nil
	case sched.SpillLoadResult:
		if m.Dst.Reg < 0 || m.Dst.Reg >= len(rfData[m.Dst.Comp]) {
			return fmt.Errorf("sim: spill reload %v writes invalid register", m)
		}
		rfData[m.Dst.Comp][m.Dst.Reg] = v & mask
		return nil
	default:
		return fmt.Errorf("sim: unknown spill kind %d", m.Spill)
	}
}

func sampleSource(arch *tta.Architecture, rfData map[int][]uint64, fus map[int]*fuState, m sched.Move, cycle int) (uint64, error) {
	src := m.Src
	c := &arch.Components[src.Comp]
	switch c.Kind {
	case tta.IMM:
		return src.Imm, nil
	case tta.RF:
		if src.Reg < 0 || src.Reg >= len(rfData[src.Comp]) {
			return 0, fmt.Errorf("sim: move %v reads invalid register", m)
		}
		return rfData[src.Comp][src.Reg], nil
	case tta.ALU, tta.CMP, tta.LDST:
		fu := fus[src.Comp]
		if !fu.hasResult {
			return 0, fmt.Errorf("sim: move %v reads result of idle unit %s", m, c.Name)
		}
		if cycle < fu.resultAt {
			return 0, fmt.Errorf("sim: move %v reads result at cycle %d, ready at %d (relation (8) violated)",
				m, cycle, fu.resultAt)
		}
		return fu.result, nil
	default:
		return 0, fmt.Errorf("sim: move %v has unsupported source kind %s", m, c.Kind)
	}
}

func commitDest(g *program.Graph, arch *tta.Architecture, rfData map[int][]uint64, fus map[int]*fuState, mem program.Memory, m sched.Move, v uint64, cycle int, mask uint64,
	execOverride func(int, program.OpCode, uint64, uint64) (uint64, bool)) error {
	dst := m.Dst
	c := &arch.Components[dst.Comp]
	if m.Spill != sched.SpillNone {
		return commitSpill(arch, rfData, fus, mem, m, v, cycle, mask)
	}
	switch c.Kind {
	case tta.RF:
		if dst.Reg < 0 || dst.Reg >= len(rfData[dst.Comp]) {
			return fmt.Errorf("sim: move %v writes invalid register", m)
		}
		rfData[dst.Comp][dst.Reg] = v & mask
		return nil
	case tta.ALU, tta.CMP, tta.LDST:
		fu := fus[dst.Comp]
		role := c.Ports[dst.Port].Role
		if role == tta.Operand {
			fu.o = v & mask
			fu.oValid = true
			return nil
		}
		if role != tta.Trigger {
			return fmt.Errorf("sim: move %v writes non-input port of %s", m, c.Name)
		}
		// Trigger: execute the operation.
		op := g.Ops[m.Op]
		switch op.Op.Class() {
		case program.ClassALU, program.ClassCMP:
			if !fu.oValid {
				return fmt.Errorf("sim: op %d triggered on %s with empty operand register", m.Op, c.Name)
			}
			var r uint64
			var handled bool
			if execOverride != nil {
				r, handled = execOverride(m.Dst.Comp, op.Op, fu.o, v&mask)
			}
			if !handled {
				var err error
				r, err = program.EvalBinary(op.Op, fu.o, v&mask, g.Width)
				if err != nil {
					return err
				}
			}
			fu.result = r & mask
			fu.hasResult = true
			fu.resultAt = cycle + 3
			fu.oValid = false
		case program.ClassMem:
			if op.Op == program.Load {
				fu.result = mem[v&mask] & mask
				fu.hasResult = true
				fu.resultAt = cycle + 3
			} else { // Store: O holds the address, T the data.
				if !fu.oValid {
					return fmt.Errorf("sim: store %d triggered with empty address register", m.Op)
				}
				mem[fu.o] = v & mask
				fu.hasResult = false
				fu.oValid = false
			}
		default:
			return fmt.Errorf("sim: op %d of class %d cannot execute on %s", m.Op, op.Op.Class(), c.Kind)
		}
		return nil
	default:
		return fmt.Errorf("sim: move %v targets unsupported component kind %s", m, c.Kind)
	}
}
