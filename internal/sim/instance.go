package sim

import (
	"fmt"

	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
)

// Instance is a persistent TTA execution context: register files, function
// units and memory survive across iterations of the same move program.
// This is how a looped application (crypt's 25 DES iterations over one
// instruction block) executes: seed the loop-carried values once, run the
// block repeatedly, and let epilogue copy moves chain each iteration's
// outputs into the next iteration's input registers.
type Instance struct {
	res  *sched.Result
	opts Options

	rfData  map[int][]uint64
	fus     map[int]*fuState
	Mem     program.Memory
	byCycle map[int][]sched.Move
	maxCyc  int
	mask    uint64

	// Iterations counts completed RunIteration calls.
	Iterations int
}

// NewInstance prepares a persistent executor for the schedule. Verify mode
// is not supported (values differ per iteration); pass moves-only options.
func NewInstance(res *sched.Result, opts Options) (*Instance, error) {
	if opts.Verify {
		return nil, fmt.Errorf("sim: Verify is per-run; unsupported on persistent instances")
	}
	in := &Instance{
		res:     res,
		opts:    opts,
		rfData:  map[int][]uint64{},
		fus:     map[int]*fuState{},
		Mem:     program.Memory{},
		byCycle: map[int][]sched.Move{},
		mask:    uint64(1)<<uint(res.Graph.Width) - 1,
	}
	for ci := range res.Arch.Components {
		switch res.Arch.Components[ci].Kind {
		case tta.RF:
			in.rfData[ci] = make([]uint64, res.Arch.Components[ci].NumRegs)
		case tta.ALU, tta.CMP, tta.LDST:
			in.fus[ci] = &fuState{}
		}
	}
	for _, m := range res.Moves {
		in.byCycle[m.Cycle] = append(in.byCycle[m.Cycle], m)
		if m.Cycle > in.maxCyc {
			in.maxCyc = m.Cycle
		}
	}
	return in, nil
}

// SeedInputs writes the program inputs into their registers (once, before
// the first iteration).
func (in *Instance) SeedInputs(inputs []uint64) error {
	idx := 0
	for i, op := range in.res.Graph.Ops {
		if op.Op != program.Input {
			continue
		}
		if idx >= len(inputs) {
			return fmt.Errorf("sim: %d inputs supplied, program needs more", len(inputs))
		}
		loc, ok := in.res.InputLoc[program.ValueID(i)]
		if !ok {
			return fmt.Errorf("sim: input %d has no register allocation", i)
		}
		in.rfData[loc.RF][loc.Reg] = inputs[idx] & in.mask
		idx++
	}
	if idx != len(inputs) {
		return fmt.Errorf("sim: %d inputs supplied, program declares %d", len(inputs), idx)
	}
	return nil
}

// PokeRegister overrides one register (loop-carried state adjustments).
func (in *Instance) PokeRegister(loc sched.RegLoc, v uint64) error {
	regs, ok := in.rfData[loc.RF]
	if !ok || loc.Reg < 0 || loc.Reg >= len(regs) {
		return fmt.Errorf("sim: invalid register %v", loc)
	}
	regs[loc.Reg] = v & in.mask
	return nil
}

// PeekRegister reads one register.
func (in *Instance) PeekRegister(loc sched.RegLoc) (uint64, error) {
	regs, ok := in.rfData[loc.RF]
	if !ok || loc.Reg < 0 || loc.Reg >= len(regs) {
		return 0, fmt.Errorf("sim: invalid register %v", loc)
	}
	return regs[loc.Reg], nil
}

// RunIteration executes the whole move program once against the persistent
// state.
func (in *Instance) RunIteration() error {
	g := in.res.Graph
	arch := in.res.Arch
	type commit struct {
		move  sched.Move
		value uint64
	}
	for cycle := 0; cycle <= in.maxCyc; cycle++ {
		moves := in.byCycle[cycle]
		if len(moves) == 0 {
			continue
		}
		if len(moves) > arch.Buses {
			return fmt.Errorf("sim: cycle %d schedules %d moves on %d buses", cycle, len(moves), arch.Buses)
		}
		commits := make([]commit, 0, len(moves))
		for _, m := range moves {
			v, err := sampleSource(arch, in.rfData, in.fus, m, cycle)
			if err != nil {
				return err
			}
			if in.opts.Trace != nil {
				in.opts.Trace.Lines = append(in.opts.Trace.Lines,
					fmt.Sprintf("iter %3d cycle %4d: %v = %#04x", in.Iterations, cycle, m, v))
			}
			commits = append(commits, commit{move: m, value: v})
		}
		for _, c := range commits {
			if err := commitDest(g, arch, in.rfData, in.fus, in.Mem, c.move, c.value, cycle, in.mask, in.opts.ExecOverride); err != nil {
				return err
			}
		}
	}
	in.Iterations++
	return nil
}

// ReadOutputs returns the program outputs from the current register state.
func (in *Instance) ReadOutputs() ([]uint64, error) {
	out := make([]uint64, len(in.res.Graph.Outputs))
	for i, o := range in.res.Graph.Outputs {
		loc, ok := in.res.RegAlloc[o]
		if !ok {
			return nil, fmt.Errorf("sim: output value %d was never written back", o)
		}
		out[i] = in.rfData[loc.RF][loc.Reg]
	}
	return out, nil
}

// AppendEpilogueCopies appends register-to-register copy moves to a
// schedule so an iteration's outputs land in the next iteration's input
// registers. Copies are packed after the last scheduled cycle under the
// bus and register-file port limits; all copies of one cycle sample their
// sources before any destination commits, so overlapping source/dest sets
// are handled by same-cycle grouping. A copy whose source would be
// clobbered by an earlier epilogue cycle is rejected.
func AppendEpilogueCopies(res *sched.Result, pairs [][2]sched.RegLoc) error {
	arch := res.Arch
	cycle := res.Cycles // first free cycle after the program body
	clobbered := map[sched.RegLoc]bool{}
	remaining := append([][2]sched.RegLoc(nil), pairs...)
	for len(remaining) > 0 {
		busUsed := 0
		reads := map[int]int{}
		writes := map[int]int{}
		var defer2 [][2]sched.RegLoc
		scheduledAny := false
		writtenThisCycle := map[sched.RegLoc]bool{}
		for _, pr := range remaining {
			src, dst := pr[0], pr[1]
			if clobbered[src] {
				return fmt.Errorf("sim: epilogue copy source %v clobbered by an earlier copy", src)
			}
			srcC := &arch.Components[src.RF]
			dstC := &arch.Components[dst.RF]
			if busUsed >= arch.Buses || reads[src.RF] >= srcC.NumOut || writes[dst.RF] >= dstC.NumIn {
				defer2 = append(defer2, pr)
				continue
			}
			busUsed++
			outs := srcC.OutputPorts()
			ins := dstC.InputPorts()
			res.Moves = append(res.Moves, sched.Move{
				Cycle: cycle,
				Src:   sched.Endpoint{Comp: src.RF, Port: outs[reads[src.RF]%len(outs)], Reg: src.Reg},
				Dst:   sched.Endpoint{Comp: dst.RF, Port: ins[writes[dst.RF]%len(ins)], Reg: dst.Reg},
				Val:   program.NoValue, Op: program.NoValue,
			})
			reads[src.RF]++
			writes[dst.RF]++
			writtenThisCycle[dst] = true
			scheduledAny = true
		}
		if !scheduledAny {
			return fmt.Errorf("sim: epilogue copies do not fit the architecture's ports")
		}
		for loc := range writtenThisCycle {
			clobbered[loc] = true
		}
		remaining = defer2
		cycle++
	}
	res.Cycles = cycle
	return nil
}
