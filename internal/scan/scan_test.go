package scan

import (
	"math/rand"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/netlist"
)

func buildCounterish(t *testing.T) *netlist.Netlist {
	t.Helper()
	// 4-bit register whose D is Q xor input — captures are observable.
	b := netlist.NewBuilder("xorreg")
	in := b.InputBus("in", 4)
	q := make([]netlist.Net, 4)
	ffs := make([]int, 4)
	for i := range q {
		q[i], ffs[i] = b.FFDecl("r"+string(rune('0'+i)), false)
	}
	for i := range q {
		b.SetD(ffs[i], b.Xor(q[i], in[i]))
	}
	b.OutputBus("q", q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestTestCyclesFormula(t *testing.T) {
	if got := TestCycles(0, 10); got != 0 {
		t.Errorf("0 patterns cost %d cycles, want 0", got)
	}
	if got := TestCycles(1, 10); got != 21 {
		t.Errorf("1 pattern, nl=10: %d cycles, want 21", got)
	}
	if got := TestCycles(100, 58); got != 100*59+58 {
		t.Errorf("100 patterns nl=58: %d, want %d", got, 100*59+58)
	}
	// Monotone in both arguments.
	if TestCycles(10, 20) <= TestCycles(9, 20) || TestCycles(10, 20) <= TestCycles(10, 19) {
		t.Error("TestCycles not monotone")
	}
}

func TestInsertPreservesFunction(t *testing.T) {
	src := buildCounterish(t)
	ins, err := Insert(src)
	if err != nil {
		t.Fatal(err)
	}
	if ChainLength(ins.N) != ChainLength(src) {
		t.Fatalf("scan insertion changed FF count: %d vs %d", ChainLength(ins.N), ChainLength(src))
	}
	// With scan_en low, the scanned netlist must behave identically.
	stSrc := netlist.NewState(src)
	stIns := netlist.NewState(ins.N)
	pInSrc, _ := src.InputPort("in")
	pInIns, _ := ins.N.InputPort("in")
	pEn, _ := ins.N.InputPort("scan_en")
	pSi, _ := ins.N.InputPort("scan_in")
	pQSrc, _ := src.OutputPort("q")
	pQIns, _ := ins.N.OutputPort("q")
	stIns.SetInputBus(pEn, 0)
	stIns.SetInputBus(pSi, 0)
	rng := rand.New(rand.NewSource(2))
	for cyc := 0; cyc < 20; cyc++ {
		v := uint64(rng.Intn(16))
		stSrc.SetInputBus(pInSrc, v)
		stIns.SetInputBus(pInIns, v)
		stSrc.Eval()
		stIns.Eval()
		if a, b := stSrc.OutputBusValue(pQSrc, 0), stIns.OutputBusValue(pQIns, 0); a != b {
			t.Fatalf("cycle %d: functional mismatch %x vs %x", cyc, a, b)
		}
		stSrc.Step()
		stIns.Step()
	}
}

func TestScanShiftLoadsAndUnloadsChain(t *testing.T) {
	src := buildCounterish(t)
	ins, err := Insert(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Shift a known vector in; reading the chain back must return it.
	vec := []uint8{1, 0, 1, 1}
	h.ShiftIn(vec)
	got := h.ChainState()
	for i := range vec {
		if got[i] != vec[i] {
			t.Fatalf("chain state %v, want %v", got, vec)
		}
	}
}

func TestScanCaptureObservesCombinationalLogic(t *testing.T) {
	src := buildCounterish(t)
	ins, err := Insert(src)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Load state 0101, apply input 0011, capture: D = Q ^ in = 0110.
	h.ShiftIn([]uint8{1, 0, 1, 0}) // r0=1 r1=0 r2=1 r3=0
	pIn, _ := ins.N.InputPort("in")
	h.State().SetInputBus(pIn, 0b1100) // in0=0 in1=0 in2=1 in3=1
	h.Capture()
	got := h.ChainState()
	want := []uint8{1 ^ 0, 0 ^ 0, 1 ^ 1, 0 ^ 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("captured %v, want %v", got, want)
		}
	}
}

func TestInsertOnRealALU(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	ins, err := Insert(alu.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if ChainLength(ins.N) != len(alu.Seq.FFs) {
		t.Fatalf("chain length %d, want %d", ChainLength(ins.N), len(alu.Seq.FFs))
	}
	if AreaOverhead(alu.Seq) <= 0 {
		t.Fatal("scan area overhead must be positive")
	}
	// Round-trip a random chain state through the real ALU's scan chain.
	h, err := NewHarness(ins)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	vec := make([]uint8, ChainLength(ins.N))
	for i := range vec {
		vec[i] = uint8(rng.Intn(2))
	}
	h.ShiftIn(vec)
	got := h.ChainState()
	for i := range vec {
		if got[i] != vec[i] {
			t.Fatalf("ALU chain bit %d: got %d want %d", i, got[i], vec[i])
		}
	}
}

func TestMultiChainCycles(t *testing.T) {
	// One chain reduces to the single-chain formula.
	if MultiChainCycles(100, 58, 1) != TestCycles(100, 58) {
		t.Error("k=1 disagrees with TestCycles")
	}
	// More chains monotonically reduce test time.
	prev := MultiChainCycles(100, 58, 1)
	for k := 2; k <= 8; k *= 2 {
		cur := MultiChainCycles(100, 58, k)
		if cur >= prev {
			t.Errorf("k=%d: %d cycles not below k=%d's %d", k, cur, k/2, prev)
		}
		prev = cur
	}
	if MultiChainCycles(0, 58, 2) != 0 {
		t.Error("zero patterns should cost zero")
	}
	if MultiChainCycles(10, 58, 0) != TestCycles(10, 58) {
		t.Error("k<1 should clamp to one chain")
	}
}

func TestMultiChainAdvantageRetained(t *testing.T) {
	// The paper's Table-1 note: with multiple scan chains both approaches
	// speed up, and the functional approach keeps a >1 advantage for every
	// realistic chain count (ALU-like numbers: np=86, nl=61, CD=3,
	// socket np=12).
	for k := 1; k <= 8; k++ {
		adv := MultiChainAdvantage(86, 61, 3, 12, k)
		if adv <= 1.0 {
			t.Errorf("k=%d chains: advantage %.2f lost", k, adv)
		}
	}
	// The advantage narrows as chains multiply (scan gets cheaper) but
	// remains: compare extremes.
	if MultiChainAdvantage(86, 61, 3, 12, 8) >= MultiChainAdvantage(86, 61, 3, 12, 1) {
		t.Error("advantage should narrow with more chains")
	}
}
