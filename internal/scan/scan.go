// Package scan models full-scan design-for-test: the baseline the paper's
// functional approach is compared against in Table 1. It provides the scan
// test-time cost model and a structural scan-chain insertion transform that
// rebuilds a netlist with muxed-D scan flip-flops, so that scan shifting
// can actually be simulated.
package scan

import (
	"fmt"

	"repro/internal/netlist"
)

// ChainLength returns n_l, the scan-chain length of the circuit: every
// flip-flop joins one chain (the paper's single-chain assumption for
// Table 1).
func ChainLength(n *netlist.Netlist) int { return len(n.FFs) }

// TestCycles returns the number of clock cycles needed to apply np scan
// patterns through a single chain of length nl: each pattern shifts in over
// nl cycles (overlapped with shifting the previous response out), plus one
// capture cycle, plus a final nl-cycle shift-out of the last response.
func TestCycles(np, nl int) int {
	if np <= 0 {
		return 0
	}
	return np*(nl+1) + nl
}

// AreaOverhead returns the extra cell area of replacing every plain
// flip-flop with a scannable one.
func AreaOverhead(n *netlist.Netlist) float64 {
	return n.AreaWithScan() - n.Area()
}

// MultiChainCycles returns the test time with the nl flip-flops balanced
// over k parallel scan chains: the shift depth shrinks to ceil(nl/k) while
// pattern count is unchanged. The paper's Table 1 notes that moving to
// multiple chains changes both its columns equally (the socket test is
// scan-based in the functional approach too), "hence, our method still
// retains the advantage" — MultiChainAdvantage quantifies that.
func MultiChainCycles(np, nl, k int) int {
	if np <= 0 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	depth := (nl + k - 1) / k
	return np*(depth+1) + depth
}

// MultiChainAdvantage returns the full-scan-to-functional cycle ratio for
// a component when both approaches use k scan chains for their scan
// portions: full scan shifts every pattern through the chains, while the
// functional approach shifts only the socket test (npSocket patterns over
// the same chains) and applies the component patterns at cd cycles each.
func MultiChainAdvantage(np, nl, cd, npSocket, k int) float64 {
	scan := MultiChainCycles(np, nl, k)
	functional := np*cd + MultiChainCycles(npSocket, nl, k)
	if functional <= 0 {
		return 0
	}
	return float64(scan) / float64(functional)
}

// Inserted is a netlist rewritten with a scan chain, plus bookkeeping to
// drive it.
type Inserted struct {
	// N is the rewritten netlist with ports scan_in, scan_en (inputs) and
	// scan_out (output) added.
	N *netlist.Netlist
	// Order lists the original flip-flop indices in scan-chain order
	// (scan_in feeds Order[0]; Order[len-1] drives scan_out).
	Order []int
}

// Insert rebuilds the netlist with a muxed-D scan chain threaded through
// every flip-flop in declaration order.
func Insert(src *netlist.Netlist) (*Inserted, error) {
	b := netlist.NewBuilder(src.Name + "_scan")
	remap := make([]netlist.Net, src.NumNets())
	for i := range remap {
		remap[i] = netlist.InvalidNet
	}

	for _, p := range src.InputPorts {
		nets := b.InputBus(p.Name, p.Width())
		for i, orig := range p.Nets {
			remap[orig] = nets[i]
		}
	}
	scanIn := b.Input("scan_in")
	scanEn := b.Input("scan_en")

	// Declare flip-flops first so feedback nets resolve.
	ffIdx := make([]int, len(src.FFs))
	for i, ff := range src.FFs {
		q, idx := b.FFDecl(ff.Name, ff.Init)
		remap[ff.Q] = q
		ffIdx[i] = idx
	}

	for _, gi := range src.TopoOrder() {
		g := src.Gates[gi]
		ins := make([]netlist.Net, len(g.In))
		for k, in := range g.In {
			if remap[in] == netlist.InvalidNet {
				return nil, fmt.Errorf("scan: net %d used before definition", in)
			}
			ins[k] = remap[in]
		}
		out := emitGate(b, g.Type, ins)
		remap[g.Out] = out
	}

	// Thread the chain: FF i's scan input is FF i-1's Q (or scan_in).
	prev := scanIn
	order := make([]int, len(src.FFs))
	for i, ff := range src.FFs {
		d := remap[ff.D]
		if d == netlist.InvalidNet {
			return nil, fmt.Errorf("scan: flip-flop %q D net unmapped", ff.Name)
		}
		b.SetD(ffIdx[i], b.Mux(scanEn, d, prev))
		prev = remap[ff.Q]
		order[i] = i
	}
	b.Output("scan_out", prev)

	for _, p := range src.OutputPorts {
		nets := make([]netlist.Net, p.Width())
		for i, orig := range p.Nets {
			if remap[orig] == netlist.InvalidNet {
				return nil, fmt.Errorf("scan: output %q bit %d unmapped", p.Name, i)
			}
			nets[i] = remap[orig]
		}
		b.OutputBus(p.Name, nets)
	}

	n, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Inserted{N: n, Order: order}, nil
}

func emitGate(b *netlist.Builder, t netlist.GateType, in []netlist.Net) netlist.Net {
	switch t {
	case netlist.Const0:
		return b.Const(false)
	case netlist.Const1:
		return b.Const(true)
	case netlist.Buf:
		return b.Buf(in[0])
	case netlist.Not:
		return b.Not(in[0])
	case netlist.And:
		return b.And(in...)
	case netlist.Or:
		return b.Or(in...)
	case netlist.Nand:
		return b.Nand(in...)
	case netlist.Nor:
		return b.Nor(in...)
	case netlist.Xor:
		return b.Xor(in...)
	case netlist.Xnor:
		return b.Xnor(in...)
	default: // Mux2
		return b.Mux(in[0], in[1], in[2])
	}
}

// Harness drives a scan-inserted netlist: shift in a state, capture, shift
// out. It exists so tests (and the ATPG demo) can exercise real scan
// operation rather than trusting the cycle formula.
type Harness struct {
	ins   *Inserted
	st    *netlist.State
	pSIn  netlist.Port
	pSEn  netlist.Port
	pSOut netlist.Port
}

// NewHarness prepares a single-lane scan driver.
func NewHarness(ins *Inserted) (*Harness, error) {
	h := &Harness{ins: ins, st: netlist.NewState(ins.N)}
	var ok bool
	if h.pSIn, ok = ins.N.InputPort("scan_in"); !ok {
		return nil, fmt.Errorf("scan: missing scan_in")
	}
	if h.pSEn, ok = ins.N.InputPort("scan_en"); !ok {
		return nil, fmt.Errorf("scan: missing scan_en")
	}
	if h.pSOut, ok = ins.N.OutputPort("scan_out"); !ok {
		return nil, fmt.Errorf("scan: missing scan_out")
	}
	return h, nil
}

// State returns the underlying evaluation state (for setting functional
// inputs between scan operations).
func (h *Harness) State() *netlist.State { return h.st }

// ShiftIn loads bits into the chain MSB-last: bits[0] ends up in the first
// flip-flop of the chain after len(bits) shift cycles. It simultaneously
// returns the bits shifted out.
func (h *Harness) ShiftIn(bits []uint8) []uint8 {
	out := make([]uint8, len(bits))
	h.st.SetInputBus(h.pSEn, 1)
	for i := len(bits) - 1; i >= 0; i-- {
		h.st.SetInputBus(h.pSIn, uint64(bits[i]))
		h.st.Eval()
		out[i] = uint8(h.st.OutputBusValue(h.pSOut, 0))
		h.st.Step()
	}
	return out
}

// Capture performs one functional clock (scan_en low).
func (h *Harness) Capture() {
	h.st.SetInputBus(h.pSEn, 0)
	h.st.Cycle()
}

// ChainState reads the current flip-flop contents destructively by
// shifting them out (zeros are shifted in).
func (h *Harness) ChainState() []uint8 {
	nl := len(h.ins.N.FFs)
	zeros := make([]uint8, nl)
	return h.ShiftIn(zeros)
}
