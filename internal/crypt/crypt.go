package crypt

import "fmt"

// b64Alphabet is the crypt(3) radix-64 alphabet ('.' = 0, '/' = 1,
// '0'-'9' = 2-11, 'A'-'Z' = 12-37, 'a'-'z' = 38-63).
const b64Alphabet = "./0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"

// b64Value decodes one alphabet character (-1 if invalid).
func b64Value(c byte) int {
	switch {
	case c == '.':
		return 0
	case c == '/':
		return 1
	case c >= '0' && c <= '9':
		return int(c-'0') + 2
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 12
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 38
	default:
		return -1
	}
}

// KeyFromPassword packs up to 8 password characters into the 64-bit DES
// key: the low 7 bits of each character occupy the high bits of each key
// byte (the parity position is unused by PC-1).
func KeyFromPassword(password string) uint64 {
	var key uint64
	for i := 0; i < 8; i++ {
		var c byte
		if i < len(password) {
			c = password[i]
		}
		key |= uint64(c&0x7F) << 1 << uint(8*(7-i))
	}
	return key
}

// SaltBits decodes the two salt characters into the 12 perturbation bits.
func SaltBits(salt string) (uint32, error) {
	if len(salt) < 2 {
		return 0, fmt.Errorf("crypt: salt %q shorter than 2 characters", salt)
	}
	v0 := b64Value(salt[0])
	v1 := b64Value(salt[1])
	if v0 < 0 || v1 < 0 {
		return 0, fmt.Errorf("crypt: invalid salt %q", salt[:2])
	}
	return uint32(v0) | uint32(v1)<<6, nil
}

// Iterations is the crypt(3) DES iteration count.
const Iterations = 25

// Hash computes the classic DES-based crypt(3) hash: the password-derived
// key encrypts the all-zero block 25 times with the salt-perturbed E
// expansion; the output is the 2 salt characters followed by the 64-bit
// result in radix-64 (11 characters, 2 zero bits of padding).
func Hash(password, salt string) (string, error) {
	bits, err := SaltBits(salt)
	if err != nil {
		return "", err
	}
	ks := KeySchedule(KeyFromPassword(password))
	var block uint64
	for i := 0; i < Iterations; i++ {
		block = EncryptBlock(block, &ks, bits)
	}
	out := make([]byte, 0, 13)
	out = append(out, salt[0], salt[1])
	// 64 bits -> 11 characters, 6 bits each MSB-first, padded with 2 zero
	// bits at the end.
	v := block
	for i := 0; i < 11; i++ {
		shift := 64 - 6*(i+1)
		var six uint64
		if shift >= 0 {
			six = v >> uint(shift) & 63
		} else {
			six = v << uint(-shift) & 63
		}
		out = append(out, b64Alphabet[six])
	}
	return string(out), nil
}
