package crypt

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

// TestDESKnownVectors checks the classic FIPS-era test vectors; any error
// in the permutation or S-box tables fails these.
func TestDESKnownVectors(t *testing.T) {
	cases := []struct{ key, pt, ct uint64 }{
		// The canonical worked example (Trappe/Washington, countless lecture
		// notes): key 133457799BBCDFF1, plaintext 0123456789ABCDEF.
		{0x133457799BBCDFF1, 0x0123456789ABCDEF, 0x85E813540F0AB405},
		// All-zero key and block.
		{0x0000000000000000, 0x0000000000000000, 0x8CA64DE9C1B123A7},
	}
	for _, c := range cases {
		if got := Encrypt(c.key, c.pt, 0); got != c.ct {
			t.Errorf("DES(%016X, %016X) = %016X, want %016X", c.key, c.pt, got, c.ct)
		}
	}
}

func TestDESAvalanche(t *testing.T) {
	// Flipping one plaintext bit must change ~half the ciphertext bits.
	base := Encrypt(0x133457799BBCDFF1, 0x0123456789ABCDEF, 0)
	flip := Encrypt(0x133457799BBCDFF1, 0x0123456789ABCDEF^1, 0)
	diff := popcount64(base ^ flip)
	if diff < 16 || diff > 48 {
		t.Errorf("avalanche too weak: %d differing bits", diff)
	}
}

func popcount64(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

func TestSaltZeroIsPlainDES(t *testing.T) {
	ks := KeySchedule(0x0123456789ABCDEF)
	r := uint32(0xDEADBEEF)
	if Feistel(r, ks[0], 0) != Feistel(r, ks[0], 0) {
		t.Fatal("nondeterministic feistel")
	}
	// With a nonzero salt the function must differ for some input (inputs
	// must be asymmetric: a period-24 expansion makes the swap a no-op).
	differs := false
	for i := 0; i < 32 && !differs; i++ {
		rr := uint32(0x12345678) + uint32(i)*0x01003157
		if Feistel(rr, ks[0], 0x0ABC) != Feistel(rr, ks[0], 0) {
			differs = true
		}
	}
	if !differs {
		t.Error("salt perturbation has no effect")
	}
}

func TestSaltSwapInvolution(t *testing.T) {
	// Applying the salt perturbation twice restores the expansion.
	er := uint64(0x0000FACEB00C)
	salt := uint64(0x5A5)
	t1 := (er>>24 ^ er) & salt
	er1 := er ^ (t1 | t1<<24)
	t2 := (er1>>24 ^ er1) & salt
	er2 := er1 ^ (t2 | t2<<24)
	if er2 != er {
		t.Fatalf("salt swap not an involution: %012X -> %012X", er, er2)
	}
}

func TestHashFormatAndDeterminism(t *testing.T) {
	h1, err := Hash("password", "ab")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash("password", "ab")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("nondeterministic hash: %q vs %q", h1, h2)
	}
	if len(h1) != 13 || !strings.HasPrefix(h1, "ab") {
		t.Fatalf("malformed hash %q", h1)
	}
	for _, c := range []byte(h1) {
		if b64Value(c) < 0 {
			t.Fatalf("hash %q contains non-alphabet byte %q", h1, c)
		}
	}
}

func TestHashSensitivity(t *testing.T) {
	base, _ := Hash("password", "ab")
	diffPw, _ := Hash("passwore", "ab")
	diffSalt, _ := Hash("password", "ac")
	if base == diffPw {
		t.Error("password change did not change hash")
	}
	if base == diffSalt {
		t.Error("salt change did not change hash")
	}
	// Only the first 8 password characters matter (classic crypt).
	long1, _ := Hash("12345678extra", "zz")
	long2, _ := Hash("12345678other", "zz")
	if long1 != long2 {
		t.Error("characters beyond 8 affected the hash")
	}
}

func TestHashMatchesDirectDESIterations(t *testing.T) {
	// With a zero salt ("..") the hash must equal 25 plain-DES encryptions
	// of the zero block — an internal consistency check between the crypt
	// wrapper and the DES core.
	bits, err := SaltBits("..")
	if err != nil {
		t.Fatal(err)
	}
	if bits != 0 {
		t.Fatalf("salt %q decodes to %d, want 0", "..", bits)
	}
	ks := KeySchedule(KeyFromPassword("secret"))
	var block uint64
	for i := 0; i < Iterations; i++ {
		block = EncryptBlock(block, &ks, 0)
	}
	h, err := Hash("secret", "..")
	if err != nil {
		t.Fatal(err)
	}
	// Decode the 11 radix-64 characters back to 64 bits and compare.
	var dec uint64
	for i := 0; i < 11; i++ {
		v := b64Value(h[2+i])
		if v < 0 {
			t.Fatalf("bad hash char %q", h[2+i])
		}
		shift := 64 - 6*(i+1)
		if shift >= 0 {
			dec |= uint64(v) << uint(shift)
		} else {
			dec |= uint64(v) >> uint(-shift)
		}
	}
	if dec != block {
		t.Fatalf("hash encodes %016X, direct iteration gives %016X", dec, block)
	}
}

func TestSaltBitsValidation(t *testing.T) {
	if _, err := SaltBits("a"); err == nil {
		t.Error("1-char salt accepted")
	}
	if _, err := SaltBits("!!"); err == nil {
		t.Error("invalid salt characters accepted")
	}
	v, err := SaltBits("zz")
	if err != nil {
		t.Fatal(err)
	}
	if v != uint32(63|63<<6) {
		t.Fatalf("salt zz = %#x, want %#x", v, 63|63<<6)
	}
}

func TestKeyFromPassword(t *testing.T) {
	// "A" = 0x41; low 7 bits shifted left once in the top key byte.
	k := KeyFromPassword("A")
	if k>>56 != uint64(0x41)<<1 {
		t.Fatalf("key top byte %#x, want %#x", k>>56, uint64(0x41)<<1)
	}
	if KeyFromPassword("") != 0 {
		t.Fatal("empty password key not zero")
	}
}

func TestKernelMatchesGoldenSingleRound(t *testing.T) {
	g, err := BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	mem := MemoryImage()
	for trial := 0; trial < 64; trial++ {
		l := rng.Uint32()
		r := rng.Uint32()
		k := uint64(rng.Uint32())<<16 ^ uint64(rng.Uint32()) // 48-bit-ish
		k &= 0xFFFFFFFFFFFF
		out, err := program.Evaluate(g, KernelInputs(l, r, []uint64{k}), mem)
		if err != nil {
			t.Fatal(err)
		}
		gl, gr := KernelOutputs(out)
		wl, wr := GoldenRounds(l, r, []uint64{k})
		if gl != wl || gr != wr {
			t.Fatalf("round(l=%08X r=%08X k=%012X): kernel (%08X,%08X), want (%08X,%08X)",
				l, r, k, gl, gr, wl, wr)
		}
	}
}

func TestKernelMatchesGoldenSixteenRounds(t *testing.T) {
	g, err := BuildRoundKernel(16)
	if err != nil {
		t.Fatal(err)
	}
	ks := KeySchedule(0x133457799BBCDFF1)
	l := uint32(0x01234567)
	r := uint32(0x89ABCDEF)
	out, err := program.Evaluate(g, KernelInputs(l, r, ks[:]), MemoryImage())
	if err != nil {
		t.Fatal(err)
	}
	gl, gr := KernelOutputs(out)
	wl, wr := GoldenRounds(l, r, ks[:])
	if gl != wl || gr != wr {
		t.Fatalf("16 rounds: kernel (%08X,%08X), want (%08X,%08X)", gl, gr, wl, wr)
	}
}

func TestKernelRunsOnFigure9TTA(t *testing.T) {
	// End-to-end: schedule the crypt round kernel on the paper's selected
	// architecture and simulate it move by move.
	g, err := BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	arch := tta.Figure9()
	res, err := sched.Schedule(g, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ks := KeySchedule(KeyFromPassword("password"))
	l, r := uint32(0), uint32(0)
	inputs := KernelInputs(l, r, ks[:1])
	out, err := sim.Run(res, inputs, MemoryImage(), sim.Options{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	gl, gr := KernelOutputs(out)
	wl, wr := GoldenRounds(l, r, ks[:1])
	if gl != wl || gr != wr {
		t.Fatalf("TTA round: (%08X,%08X), want (%08X,%08X)", gl, gr, wl, wr)
	}
	t.Logf("crypt round on figure-9 TTA: %d cycles, %d moves, %d spills",
		res.Cycles, len(res.Moves), res.Spills)
}

func TestMemoryImageBelowSpillRegion(t *testing.T) {
	for addr := range MemoryImage() {
		if addr >= sched.SpillBase {
			t.Fatalf("SP table address %#x collides with spill region", addr)
		}
	}
}

func TestKernelStats(t *testing.T) {
	g, err := BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.Loads != 16 {
		t.Errorf("round kernel has %d loads, want 16 (8 S-boxes x 2 word planes)", st.Loads)
	}
	if st.ALU < 60 {
		t.Errorf("round kernel has only %d ALU ops; expansion/key mixing missing?", st.ALU)
	}
	if st.Stores != 0 {
		t.Errorf("round kernel should not store, has %d", st.Stores)
	}
}

func TestBuildCryptKernelLoopControl(t *testing.T) {
	g, err := BuildCryptKernel(2)
	if err != nil {
		t.Fatal(err)
	}
	ks := KeySchedule(0x0123456789ABCDEF)
	// Inputs: l, r, counter, then 3 key words per round.
	inputs := []uint64{0x1111, 0x2222, 0x3333, 0x4444, 14}
	for _, k := range ks[:2] {
		inputs = append(inputs, k>>32&0xFFFF, k>>16&0xFFFF, k&0xFFFF)
	}
	out, err := program.Evaluate(g, inputs, MemoryImage())
	if err != nil {
		t.Fatal(err)
	}
	wl, wr := GoldenRounds(0x11112222, 0x33334444, ks[:2])
	gl := uint32(out[0])<<16 | uint32(out[1])
	gr := uint32(out[2])<<16 | uint32(out[3])
	if gl != wl || gr != wr {
		t.Fatalf("loop kernel rounds wrong: (%08X,%08X) vs (%08X,%08X)", gl, gr, wl, wr)
	}
	if out[4] != 16 {
		t.Errorf("counter = %d, want 16 (14 + 2 rounds)", out[4])
	}
	if out[5] != 1 {
		t.Errorf("loop-exit predicate = %d, want 1 at counter 16", out[5])
	}
	if _, err := BuildCryptKernel(0); err == nil {
		t.Error("0-round loop kernel accepted")
	}
}

func TestHashCycles(t *testing.T) {
	if got := HashCycles(100); got != 100*RoundsPerHash {
		t.Fatalf("HashCycles(100)=%d, want %d", got, 100*RoundsPerHash)
	}
}
