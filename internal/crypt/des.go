// Package crypt implements the paper's validation workload: the Unix
// "Crypt" application — crypt(3) password hashing built on 25 iterations
// of a salt-perturbed DES — entirely from scratch, together with a
// lowering of the DES round kernel onto the 16-bit operation IR so the
// same computation can be scheduled and executed on candidate TTAs.
package crypt

// DES tables (FIPS 46). All tables use the standard 1-based, MSB-first bit
// numbering of the specification.

var ipTable = [64]byte{
	58, 50, 42, 34, 26, 18, 10, 2,
	60, 52, 44, 36, 28, 20, 12, 4,
	62, 54, 46, 38, 30, 22, 14, 6,
	64, 56, 48, 40, 32, 24, 16, 8,
	57, 49, 41, 33, 25, 17, 9, 1,
	59, 51, 43, 35, 27, 19, 11, 3,
	61, 53, 45, 37, 29, 21, 13, 5,
	63, 55, 47, 39, 31, 23, 15, 7,
}

var fpTable = [64]byte{
	40, 8, 48, 16, 56, 24, 64, 32,
	39, 7, 47, 15, 55, 23, 63, 31,
	38, 6, 46, 14, 54, 22, 62, 30,
	37, 5, 45, 13, 53, 21, 61, 29,
	36, 4, 44, 12, 52, 20, 60, 28,
	35, 3, 43, 11, 51, 19, 59, 27,
	34, 2, 42, 10, 50, 18, 58, 26,
	33, 1, 41, 9, 49, 17, 57, 25,
}

var eTable = [48]byte{
	32, 1, 2, 3, 4, 5,
	4, 5, 6, 7, 8, 9,
	8, 9, 10, 11, 12, 13,
	12, 13, 14, 15, 16, 17,
	16, 17, 18, 19, 20, 21,
	20, 21, 22, 23, 24, 25,
	24, 25, 26, 27, 28, 29,
	28, 29, 30, 31, 32, 1,
}

var pTable = [32]byte{
	16, 7, 20, 21, 29, 12, 28, 17,
	1, 15, 23, 26, 5, 18, 31, 10,
	2, 8, 24, 14, 32, 27, 3, 9,
	19, 13, 30, 6, 22, 11, 4, 25,
}

var pc1Table = [56]byte{
	57, 49, 41, 33, 25, 17, 9,
	1, 58, 50, 42, 34, 26, 18,
	10, 2, 59, 51, 43, 35, 27,
	19, 11, 3, 60, 52, 44, 36,
	63, 55, 47, 39, 31, 23, 15,
	7, 62, 54, 46, 38, 30, 22,
	14, 6, 61, 53, 45, 37, 29,
	21, 13, 5, 28, 20, 12, 4,
}

var pc2Table = [48]byte{
	14, 17, 11, 24, 1, 5,
	3, 28, 15, 6, 21, 10,
	23, 19, 12, 4, 26, 8,
	16, 7, 27, 20, 13, 2,
	41, 52, 31, 37, 47, 55,
	30, 40, 51, 45, 33, 48,
	44, 49, 39, 56, 34, 53,
	46, 42, 50, 36, 29, 32,
}

var keyShifts = [16]byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

var sBoxes = [8][64]byte{
	{ // S1
		14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
		0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
		4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
		15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
	},
	{ // S2
		15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
		3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
		0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
		13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
	},
	{ // S3
		10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
		13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
		13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
		1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
	},
	{ // S4
		7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
		13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
		10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
		3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
	},
	{ // S5
		2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
		14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
		4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
		11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
	},
	{ // S6
		12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
		10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
		9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
		4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
	},
	{ // S7
		4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
		13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
		1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
		6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
	},
	{ // S8
		13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
		1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
		7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
		2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
	},
}

// spBox[i][v] is the P-permuted S-box output of box i for the 6-bit input
// v, already placed at its position within the 32-bit round function
// result — the classic SP-table optimization, which is also what the TTA
// kernel looks up from data memory.
var spBox [8][64]uint32

func init() {
	for i := 0; i < 8; i++ {
		for v := 0; v < 64; v++ {
			row := (v>>4)&2 | v&1
			col := v >> 1 & 15
			s := uint32(sBoxes[i][row*16+col])
			// Place the 4 S-box output bits at their pre-P positions
			// (bits 4i+1..4i+4, 1-based MSB-first), then apply P.
			var pre uint32
			for b := 0; b < 4; b++ {
				if s>>(3-uint(b))&1 == 1 {
					pre |= 1 << (31 - uint(4*i+b))
				}
			}
			var out uint32
			for j, src := range pTable {
				if pre>>(32-uint(src))&1 == 1 {
					out |= 1 << (31 - uint(j))
				}
			}
			spBox[i][v] = out
		}
	}
}

// permute64 applies a 1-based MSB-first bit-selection table to a 64-bit
// value, producing len(table) output bits (MSB-first).
func permute64(v uint64, table []byte, inBits int) uint64 {
	var out uint64
	for _, src := range table {
		out <<= 1
		out |= v >> uint(inBits-int(src)) & 1
	}
	return out
}

// KeySchedule derives the 16 48-bit round keys from a 64-bit key (parity
// bits ignored, as PC-1 drops them).
func KeySchedule(key uint64) [16]uint64 {
	cd := permute64(key, pc1Table[:], 64) // 56 bits
	c := uint32(cd >> 28 & 0x0FFFFFFF)
	d := uint32(cd & 0x0FFFFFFF)
	var ks [16]uint64
	for r := 0; r < 16; r++ {
		sh := uint(keyShifts[r])
		c = (c<<sh | c>>(28-sh)) & 0x0FFFFFFF
		d = (d<<sh | d>>(28-sh)) & 0x0FFFFFFF
		ks[r] = permute64(uint64(c)<<28|uint64(d), pc2Table[:], 56)
	}
	return ks
}

// expand applies the E expansion to a 32-bit half block, yielding 48 bits.
func expand(r uint32) uint64 {
	return permute64(uint64(r), eTable[:], 32)
}

// Feistel computes the DES round function f(R, K) with the salt
// perturbation of crypt(3): before the S-box lookups, bit i of the 48-bit
// expanded value is swapped with bit i+24 wherever the corresponding salt
// bit (0..11) is set. Salt 0 is plain DES.
func Feistel(r uint32, k48 uint64, salt uint32) uint32 {
	er := expand(r)
	// Salt perturbation (bits counted from the LSB of the 48-bit value).
	t := (er>>24 ^ er) & uint64(salt&0x0FFF)
	er ^= t | t<<24
	x := er ^ k48
	var out uint32
	for i := 0; i < 8; i++ {
		six := x >> uint(42-6*i) & 63
		out ^= spBox[i][six]
	}
	return out
}

// InitialPermutation applies IP to a block, returning the (L, R) halves.
func InitialPermutation(block uint64) (l, r uint32) {
	v := permute64(block, ipTable[:], 64)
	return uint32(v >> 32), uint32(v)
}

// FinalPermutation applies the output permutation FP = IP^-1 to the
// (pre-swapped) halves: DES emits FP(R16 || L16).
func FinalPermutation(l, r uint32) uint64 {
	return permute64(uint64(r)<<32|uint64(l), fpTable[:], 64)
}

// EncryptBlock runs one full 16-round DES encryption (with optional crypt
// salt) over a 64-bit block.
func EncryptBlock(block uint64, ks *[16]uint64, salt uint32) uint64 {
	l, r := InitialPermutation(block)
	for round := 0; round < 16; round++ {
		l, r = r, l^Feistel(r, ks[round], salt)
	}
	// The last round's halves are exchanged before FP.
	return FinalPermutation(l, r)
}

// Encrypt is EncryptBlock with a fresh key schedule (plain DES when
// salt == 0).
func Encrypt(key, block uint64, salt uint32) uint64 {
	ks := KeySchedule(key)
	return EncryptBlock(block, &ks, salt)
}
