package crypt

import (
	"fmt"

	"repro/internal/program"
)

// Lowering of the DES round kernel onto the 16-bit operation IR. The
// 32-bit halves L and R and the 48-bit round keys are split into 16-bit
// words; the S-box+P lookups use the precomputed SP tables placed in data
// memory (high and low word planes). This is the computation the MOVE
// framework would compile out of the Crypt C source: the scheduler maps it
// onto candidate TTAs, and the cycle count per round drives the
// throughput axis of the design space exploration.

// SP table placement in the TTA's data memory (word addresses).
const (
	SPHiBase uint64 = 0x1000 // high 16 bits of spBox[i][v] at SPHiBase+64i+v
	SPLoBase uint64 = 0x3000 // low 16 bits
)

// MemoryImage returns the data-memory contents the kernel expects: both SP
// word planes.
func MemoryImage() program.Memory {
	mem := make(program.Memory, 2*8*64)
	for i := 0; i < 8; i++ {
		for v := 0; v < 64; v++ {
			mem[SPHiBase+uint64(64*i+v)] = uint64(spBox[i][v] >> 16)
			mem[SPLoBase+uint64(64*i+v)] = uint64(spBox[i][v] & 0xFFFF)
		}
	}
	return mem
}

// words represents a 32-bit half block as (hi, lo) 16-bit IR values.
type words struct{ hi, lo program.ValueID }

// buildFeistel emits f(R, K) for one round: E expansion by shift/mask
// chunk extraction, key mixing, SP-table lookups and the XOR
// accumulation. Returns the 32-bit result as two words.
func buildFeistel(g *program.Graph, r words, k [3]program.ValueID) words {
	c := func(v uint64) program.ValueID { return g.ConstV(v) }
	sll := g.Sll
	srl := g.Srl
	and := g.And
	or := g.Or
	xor := g.Xor

	// x = ROR1(R): rotating right by one aligns the E expansion into
	// consecutive 6-bit windows of x at 4-bit strides (row 1 of E is
	// "32 1 2 3 4 5").
	xhi := or(srl(r.hi, c(1)), sll(r.lo, c(15)))
	xlo := or(srl(r.lo, c(1)), sll(r.hi, c(15)))
	m63 := c(63)

	echunk := [8]program.ValueID{
		srl(xhi, c(10)),
		and(srl(xhi, c(6)), m63),
		and(srl(xhi, c(2)), m63),
		and(or(sll(xhi, c(2)), srl(xlo, c(14))), m63),
		srl(xlo, c(10)),
		and(srl(xlo, c(6)), m63),
		and(srl(xlo, c(2)), m63),
		or(sll(and(xlo, c(15)), c(2)), srl(xhi, c(14))),
	}
	khi, kmid, klo := k[0], k[1], k[2]
	kchunk := [8]program.ValueID{
		srl(khi, c(10)),
		and(srl(khi, c(4)), m63),
		and(or(sll(khi, c(2)), srl(kmid, c(14))), m63),
		and(srl(kmid, c(8)), m63),
		and(srl(kmid, c(2)), m63),
		and(or(sll(kmid, c(4)), srl(klo, c(12))), m63),
		and(srl(klo, c(6)), m63),
		and(klo, m63),
	}

	var fhi, flo program.ValueID = program.NoValue, program.NoValue
	for i := 0; i < 8; i++ {
		idx := xor(echunk[i], kchunk[i])
		vhi := g.Load(g.Add(c(SPHiBase+uint64(64*i)), idx))
		vlo := g.Load(g.Add(c(SPLoBase+uint64(64*i)), idx))
		if fhi == program.NoValue {
			fhi, flo = vhi, vlo
		} else {
			fhi = xor(fhi, vhi)
			flo = xor(flo, vlo)
		}
	}
	return words{fhi, flo}
}

// BuildRoundKernel builds the dataflow graph of `rounds` consecutive DES
// rounds. Inputs (in order): L hi/lo, R hi/lo, then 3 key words per round
// (bits 47..32, 31..16, 15..0). Outputs: final L hi/lo, R hi/lo.
func BuildRoundKernel(rounds int) (*program.Graph, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("crypt: kernel needs at least one round")
	}
	g := program.NewGraph(fmt.Sprintf("crypt_round_x%d", rounds), 16)
	l := words{g.In(), g.In()}
	r := words{g.In(), g.In()}
	keys := make([][3]program.ValueID, rounds)
	for i := range keys {
		keys[i] = [3]program.ValueID{g.In(), g.In(), g.In()}
	}
	for i := 0; i < rounds; i++ {
		f := buildFeistel(g, r, keys[i])
		newR := words{g.Xor(l.hi, f.hi), g.Xor(l.lo, f.lo)}
		l, r = r, newR
	}
	g.Output(l.hi)
	g.Output(l.lo)
	g.Output(r.hi)
	g.Output(r.lo)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildCryptKernel builds the compiled shape of crypt's inner loop body:
// `rounds` DES rounds plus the loop bookkeeping the MOVE compiler would
// emit per round (round-counter increment and the loop-exit comparison,
// executed on the CMP unit). Inputs: L hi/lo, R hi/lo, round counter, then
// 3 key words per round. Outputs: final L hi/lo, R hi/lo, updated counter,
// loop-exit predicate.
func BuildCryptKernel(rounds int) (*program.Graph, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("crypt: kernel needs at least one round")
	}
	g := program.NewGraph(fmt.Sprintf("crypt_loop_x%d", rounds), 16)
	l := words{g.In(), g.In()}
	r := words{g.In(), g.In()}
	cnt := g.In()
	keys := make([][3]program.ValueID, rounds)
	for i := range keys {
		keys[i] = [3]program.ValueID{g.In(), g.In(), g.In()}
	}
	one := g.ConstV(1)
	sixteen := g.ConstV(16)
	var done program.ValueID
	for i := 0; i < rounds; i++ {
		f := buildFeistel(g, r, keys[i])
		newR := words{g.Xor(l.hi, f.hi), g.Xor(l.lo, f.lo)}
		l, r = r, newR
		cnt = g.Add(cnt, one)
		done = g.Eq(cnt, sixteen)
	}
	g.Output(l.hi)
	g.Output(l.lo)
	g.Output(r.hi)
	g.Output(r.lo)
	g.Output(cnt)
	g.Output(done)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// KeyScheduleBase is the data-memory address of the 16 round keys (3
// words each: bits 47..32, 31..16, 15..0) used by the loopable iteration
// kernel.
const KeyScheduleBase uint64 = 0x0800

// KeyScheduleMemory lays the key schedule out at KeyScheduleBase.
func KeyScheduleMemory(ks *[16]uint64) program.Memory {
	mem := program.Memory{}
	for r, k := range ks {
		mem[KeyScheduleBase+uint64(3*r)] = k >> 32 & 0xFFFF
		mem[KeyScheduleBase+uint64(3*r)+1] = k >> 16 & 0xFFFF
		mem[KeyScheduleBase+uint64(3*r)+2] = k & 0xFFFF
	}
	return mem
}

// BuildCryptIterationKernel builds one complete DES iteration (16 rounds)
// as a *loopable* program: the round keys come from data memory (so the
// instruction block is identical every iteration) and the outputs carry
// the iteration's final swap folded in — output order (r16hi, r16lo,
// l16hi, l16lo) is exactly the next iteration's (l, r) input order.
// Running this block 25 times with epilogue copies chaining outputs to
// input registers executes the whole crypt(3) core from one fixed piece
// of instruction memory.
func BuildCryptIterationKernel() (*program.Graph, error) {
	g := program.NewGraph("crypt_iteration", 16)
	l := words{g.In(), g.In()}
	r := words{g.In(), g.In()}
	for round := 0; round < 16; round++ {
		base := KeyScheduleBase + uint64(3*round)
		k := [3]program.ValueID{
			g.Load(g.ConstV(base)),
			g.Load(g.ConstV(base + 1)),
			g.Load(g.ConstV(base + 2)),
		}
		f := buildFeistel(g, r, k)
		newR := words{g.Xor(l.hi, f.hi), g.Xor(l.lo, f.lo)}
		l, r = r, newR
	}
	// Folded final swap: emit (r, l) so the outputs are next iteration's
	// (l, r).
	g.Output(r.hi)
	g.Output(r.lo)
	g.Output(l.hi)
	g.Output(l.lo)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// KernelInputs packs (l, r) halves and the round keys into the kernel's
// input vector.
func KernelInputs(l, r uint32, ks []uint64) []uint64 {
	in := []uint64{
		uint64(l >> 16), uint64(l & 0xFFFF),
		uint64(r >> 16), uint64(r & 0xFFFF),
	}
	for _, k := range ks {
		in = append(in, k>>32&0xFFFF, k>>16&0xFFFF, k&0xFFFF)
	}
	return in
}

// KernelOutputs unpacks the kernel's output vector back into halves.
func KernelOutputs(out []uint64) (l, r uint32) {
	l = uint32(out[0])<<16 | uint32(out[1])
	r = uint32(out[2])<<16 | uint32(out[3])
	return
}

// GoldenRounds runs `len(ks)` plain DES rounds in software — the reference
// the kernel is validated against.
func GoldenRounds(l, r uint32, ks []uint64) (uint32, uint32) {
	for _, k := range ks {
		l, r = r, l^Feistel(r, k, 0)
	}
	return l, r
}

// RoundsPerHash is the total DES round count of one crypt(3) evaluation:
// 16 rounds per DES iteration, 25 iterations.
const RoundsPerHash = 16 * Iterations

// HashCycles extrapolates the cycle count of a full crypt(3) hash from a
// measured per-round schedule: the round kernel dominates (IP/FP and the
// key schedule are wiring/precomputation in hardware).
func HashCycles(cyclesPerRound int) int { return cyclesPerRound * RoundsPerHash }
