package crypt

import (
	"testing"

	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

// TestLoopedCryptFromOneInstructionBlock executes the complete crypt(3)
// core as a genuine loop: ONE scheduled instruction block (16 DES rounds,
// keys from data memory) runs 25 times on a persistent simulator instance,
// with epilogue register copies chaining each iteration's outputs into the
// next iteration's inputs. No per-iteration re-seeding, no unrolling —
// the fixed block plus loop-carried registers, as real TTA instruction
// memory would hold it.
func TestLoopedCryptFromOneInstructionBlock(t *testing.T) {
	arch := tta.Figure9()
	kernel, err := BuildCryptIterationKernel()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Chain: outputs (r16, l16) into the input registers of (l, r).
	var pairs [][2]sched.RegLoc
	inIdx := 0
	var inLocs []sched.RegLoc
	for i, op := range kernel.Ops {
		if op.Op == program.Input {
			inLocs = append(inLocs, res.InputLoc[program.ValueID(i)])
			inIdx++
		}
	}
	if inIdx != 4 {
		t.Fatalf("kernel declares %d inputs, want 4", inIdx)
	}
	for i, o := range kernel.Outputs {
		pairs = append(pairs, [2]sched.RegLoc{res.RegAlloc[o], inLocs[i]})
	}
	if err := sim.AppendEpilogueCopies(res, pairs); err != nil {
		t.Fatal(err)
	}

	inst, err := sim.NewInstance(res, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ks := KeySchedule(KeyFromPassword("l00ped"))
	for k, v := range KeyScheduleMemory(&ks) {
		inst.Mem[k] = v
	}
	for k, v := range MemoryImage() {
		inst.Mem[k] = v
	}
	if err := inst.SeedInputs([]uint64{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < Iterations; iter++ {
		if err := inst.RunIteration(); err != nil {
			t.Fatalf("iteration %d: %v", iter, err)
		}
	}
	// After 25 iterations the INPUT registers hold the chained state
	// (nl, nr) = (r25_16, l25_16).
	read := func(loc sched.RegLoc) uint64 {
		v, err := inst.PeekRegister(loc)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	nl := uint32(read(inLocs[0]))<<16 | uint32(read(inLocs[1]))
	nr := uint32(read(inLocs[2]))<<16 | uint32(read(inLocs[3]))
	gotBlock := FinalPermutation(nr, nl)

	var wantBlock uint64
	for i := 0; i < Iterations; i++ {
		wantBlock = EncryptBlock(wantBlock, &ks, 0)
	}
	if gotBlock != wantBlock {
		t.Fatalf("looped crypt produced %016X, software core %016X", gotBlock, wantBlock)
	}
	t.Logf("looped crypt: one %d-cycle block (%d moves incl. epilogue) x %d iterations = %d cycles total",
		res.Cycles, len(res.Moves), Iterations, res.Cycles*Iterations)
}

func TestIterationKernelMatchesGoldenOnce(t *testing.T) {
	kernel, err := BuildCryptIterationKernel()
	if err != nil {
		t.Fatal(err)
	}
	ks := KeySchedule(0x133457799BBCDFF1)
	mem := KeyScheduleMemory(&ks)
	for k, v := range MemoryImage() {
		mem[k] = v
	}
	out, err := program.Evaluate(kernel, []uint64{0x0123, 0x4567, 0x89AB, 0xCDEF}, mem)
	if err != nil {
		t.Fatal(err)
	}
	l := uint32(0x01234567)
	r := uint32(0x89ABCDEF)
	wl, wr := GoldenRounds(l, r, ks[:])
	// Kernel outputs are (r16, l16).
	gotR := uint32(out[0])<<16 | uint32(out[1])
	gotL := uint32(out[2])<<16 | uint32(out[3])
	if gotR != wr || gotL != wl {
		t.Fatalf("iteration kernel gave r=%08X l=%08X, want r=%08X l=%08X", gotR, gotL, wr, wl)
	}
}

func TestEpilogueCopiesRespectPorts(t *testing.T) {
	// The appended copies must not overload buses or RF ports; sched.Check
	// cannot run (copies have no graph ops), so verify the packing rule
	// directly.
	arch := tta.Figure9()
	kernel, err := BuildCryptIterationKernel()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Moves)
	var pairs [][2]sched.RegLoc
	var inLocs []sched.RegLoc
	for i, op := range kernel.Ops {
		if op.Op == program.Input {
			inLocs = append(inLocs, res.InputLoc[program.ValueID(i)])
		}
	}
	for i, o := range kernel.Outputs {
		pairs = append(pairs, [2]sched.RegLoc{res.RegAlloc[o], inLocs[i]})
	}
	if err := sim.AppendEpilogueCopies(res, pairs); err != nil {
		t.Fatal(err)
	}
	perCycle := map[int]int{}
	reads := map[[2]int]int{}
	writes := map[[2]int]int{}
	for _, m := range res.Moves[before:] {
		perCycle[m.Cycle]++
		if perCycle[m.Cycle] > arch.Buses {
			t.Fatalf("epilogue cycle %d overloads buses", m.Cycle)
		}
		reads[[2]int{m.Cycle, m.Src.Comp}]++
		writes[[2]int{m.Cycle, m.Dst.Comp}]++
	}
	for key, n := range reads {
		if n > arch.Components[key[1]].NumOut {
			t.Fatalf("epilogue overloads read ports of component %d", key[1])
		}
	}
	for key, n := range writes {
		if n > arch.Components[key[1]].NumIn {
			t.Fatalf("epilogue overloads write ports of component %d", key[1])
		}
	}
}
