package crypt

import (
	"testing"

	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

// TestFullCryptHashOnTTA is the flagship end-to-end experiment: all 400
// DES rounds of one crypt(3) evaluation (16 rounds x 25 iterations) are
// executed as move programs on the figure-9 TTA, with every transported
// value verified against the dataflow reference. The assembled 64-bit
// result must equal the direct software crypt core, proving the scheduled
// workload *is* the paper's Crypt application, and the summed schedule
// length is the measured (not extrapolated) execution time.
func TestFullCryptHashOnTTA(t *testing.T) {
	arch := tta.Figure9()
	kernel, err := BuildRoundKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sched.Schedule(kernel, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := MemoryImage()
	ks := KeySchedule(KeyFromPassword("s3cret"))

	// crypt(3): 25 iterations of DES over the all-zero block. IP(0) = 0,
	// and between iterations IP cancels FP, so the block only needs the
	// inter-iteration half swap.
	var l, r uint32
	totalCycles := 0
	for iter := 0; iter < Iterations; iter++ {
		for round := 0; round < 16; round++ {
			out, err := sim.Run(res, KernelInputs(l, r, ks[round:round+1]), mem, sim.Options{Verify: true})
			if err != nil {
				t.Fatalf("iter %d round %d: %v", iter, round, err)
			}
			l, r = KernelOutputs(out)
			totalCycles += res.Cycles
		}
		l, r = r, l // the final swap of each DES iteration
	}
	gotBlock := FinalPermutation(r, l) // halves swapped back: FP(swap(l,r))

	var wantBlock uint64
	for i := 0; i < Iterations; i++ {
		wantBlock = EncryptBlock(wantBlock, &ks, 0)
	}
	if gotBlock != wantBlock {
		t.Fatalf("TTA crypt produced %016X, software core %016X", gotBlock, wantBlock)
	}
	t.Logf("full crypt(3) on the figure-9 TTA: %d cycles over %d rounds (%d cycles/round), result %016X",
		totalCycles, RoundsPerHash, res.Cycles, gotBlock)
}

// TestKernelIterationChainingMatchesEncryptBlock pins down the swap
// conventions used above on a single DES iteration.
func TestKernelIterationChainingMatchesEncryptBlock(t *testing.T) {
	ks := KeySchedule(0x0123456789ABCDEF)
	l, r := InitialPermutation(0) // zero block
	if l != 0 || r != 0 {
		t.Fatalf("IP(0) = (%08X,%08X), want zeros", l, r)
	}
	g, err := BuildRoundKernel(16)
	if err != nil {
		t.Fatal(err)
	}
	out, err := program.Evaluate(g, KernelInputs(l, r, ks[:]), MemoryImage())
	if err != nil {
		t.Fatal(err)
	}
	gl, gr := KernelOutputs(out)
	if got, want := FinalPermutation(gl, gr), EncryptBlock(0, &ks, 0); got != want {
		t.Fatalf("FP over kernel halves = %016X, EncryptBlock = %016X", got, want)
	}
}

// TestPermutationsInverse checks FP = IP^-1 through the exported helpers.
func TestPermutationsInverse(t *testing.T) {
	for _, block := range []uint64{0, 0x0123456789ABCDEF, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEF00D} {
		l, r := InitialPermutation(block)
		// FinalPermutation applies FP to (R||L) pre-swapped; to invert IP
		// directly, present the halves swapped.
		if got := FinalPermutation(r, l); got != block {
			t.Fatalf("FP(IP(%016X)) = %016X", block, got)
		}
	}
}
