package gatelib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

func evalComb(t *testing.T, n *netlist.Netlist, in map[string]uint64) map[string]uint64 {
	t.Helper()
	out, err := netlist.EvalFunc(n, in, nil)
	if err != nil {
		t.Fatalf("eval %s: %v", n.Name, err)
	}
	return out
}

func TestALUCombMatchesGoldenExhaustiveOps(t *testing.T) {
	for _, adder := range []AdderKind{AdderRipple, AdderCarrySelect} {
		alu, err := NewALU(ALUConfig{Width: 8, Adder: adder})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for op := 0; op < 8; op++ {
			for trial := 0; trial < 200; trial++ {
				o := uint64(rng.Intn(256))
				x := uint64(rng.Intn(256))
				got := evalComb(t, alu.Comb, map[string]uint64{"o": o, "t": x, "op": uint64(op)})
				want := ALUGolden(op, o, x, 8)
				if got["result"] != want {
					t.Fatalf("%s ALU %s(o=%#x,t=%#x) = %#x, want %#x",
						adder, ALUOpName(op), o, x, got["result"], want)
				}
			}
		}
	}
}

func TestALU16BoundaryCases(t *testing.T) {
	alu, err := NewALU(ALUConfig{Width: 16, Adder: AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ op, o, x uint64 }{
		{ALUOpAdd, 0xFFFF, 1},
		{ALUOpAdd, 0x8000, 0x8000},
		{ALUOpSub, 0, 1},
		{ALUOpSub, 0x8000, 0x7FFF},
		{ALUOpSll, 1, 15},
		{ALUOpSll, 0xFFFF, 16},
		{ALUOpSll, 0xFFFF, 17},
		{ALUOpSrl, 0x8000, 15},
		{ALUOpSrl, 0xFFFF, 31},
		{ALUOpAnd, 0xAAAA, 0x5555},
		{ALUOpOr, 0xAAAA, 0x5555},
		{ALUOpXor, 0xFFFF, 0xAAAA},
		{ALUOpPass, 0x1234, 0xFFFF},
	}
	for _, c := range cases {
		got := evalComb(t, alu.Comb, map[string]uint64{"o": c.o, "t": c.x, "op": c.op})
		want := ALUGolden(int(c.op), c.o, c.x, 16)
		if got["result"] != want {
			t.Errorf("%s(o=%#x,t=%#x) = %#x, want %#x", ALUOpName(int(c.op)), c.o, c.x, got["result"], want)
		}
	}
}

func TestALUQuickProperty(t *testing.T) {
	alu, err := NewALU(ALUConfig{Width: 16, Adder: AdderCarrySelect})
	if err != nil {
		t.Fatal(err)
	}
	f := func(o, x uint16, op uint8) bool {
		opv := uint64(op % 8)
		got := evalComb(t, alu.Comb, map[string]uint64{"o": uint64(o), "t": uint64(x), "op": opv})
		return got["result"] == ALUGolden(int(opv), uint64(o), uint64(x), 16)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCMPCombMatchesGolden(t *testing.T) {
	cmp, err := NewCMP(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// Include adversarial pairs around sign and equality boundaries.
	pairs := [][2]uint64{
		{0, 0}, {0, 1}, {1, 0}, {0x7F, 0x80}, {0x80, 0x7F},
		{0xFF, 0}, {0, 0xFF}, {0x80, 0x80}, {0xFF, 0xFF},
	}
	for i := 0; i < 200; i++ {
		pairs = append(pairs, [2]uint64{uint64(rng.Intn(256)), uint64(rng.Intn(256))})
	}
	for op := 0; op < 8; op++ {
		for _, p := range pairs {
			got := evalComb(t, cmp.Comb, map[string]uint64{"o": p[0], "t": p[1], "op": uint64(op)})
			want := CMPGolden(op, p[0], p[1], 8)
			if got["result"] != want {
				t.Fatalf("CMP %s(%#x,%#x) = %d, want %d", CMPOpName(op), p[0], p[1], got["result"], want)
			}
		}
	}
}

func TestCMPQuick16(t *testing.T) {
	cmp, err := NewCMP(16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(o, x uint16, op uint8) bool {
		opv := uint64(op % 8)
		got := evalComb(t, cmp.Comb, map[string]uint64{"o": uint64(o), "t": uint64(x), "op": opv})
		return got["result"] == CMPGolden(int(opv), uint64(o), uint64(x), 16)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// pipelineDrive loads O then T through the pipelined wrapper and returns
// the result register value once r_valid rises.
func pipelineDrive(t *testing.T, comp *Component, opBits int, op, o, x uint64) uint64 {
	t.Helper()
	n := comp.Seq
	st := netlist.NewState(n)
	pBusO, _ := n.InputPort("bus_o")
	pBusT, _ := n.InputPort("bus_t")
	pOp, _ := n.InputPort("op_in")
	pLoadO, _ := n.InputPort("load_o")
	pLoadT, _ := n.InputPort("load_t")
	pROut, _ := n.OutputPort("r_out")
	pRValid, _ := n.OutputPort("r_valid")

	// Cycle 1: load O.
	st.SetInputBus(pBusO, o)
	st.SetInputBus(pBusT, 0)
	st.SetInputBus(pOp, 0)
	st.SetInputBus(pLoadO, 1)
	st.SetInputBus(pLoadT, 0)
	st.Cycle()
	// Cycle 2: load T with opcode (triggers execution).
	st.SetInputBus(pLoadO, 0)
	st.SetInputBus(pBusT, x)
	st.SetInputBus(pOp, op)
	st.SetInputBus(pLoadT, 1)
	st.Cycle()
	// Cycle 3: result latches into R.
	st.SetInputBus(pLoadT, 0)
	st.Cycle()
	st.Eval()
	if got := st.OutputBusValue(pRValid, 0); got != 1 {
		t.Fatalf("%s: r_valid=%d after trigger+2 cycles, want 1", comp.Name, got)
	}
	return st.OutputBusValue(pROut, 0)
}

func TestPipelinedALUThreeCycleLatency(t *testing.T) {
	alu, err := NewALU(ALUConfig{Width: 16, Adder: AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		op := rng.Intn(8)
		o := uint64(rng.Intn(1 << 16))
		x := uint64(rng.Intn(1 << 16))
		got := pipelineDrive(t, alu, ALUOpBits, uint64(op), o, x)
		want := ALUGolden(op, o, x, 16)
		if got != want {
			t.Fatalf("pipelined %s(o=%#x,t=%#x) = %#x, want %#x", ALUOpName(op), o, x, got, want)
		}
	}
}

func TestPipelinedFFCountMatchesPaperScale(t *testing.T) {
	// The paper's Table 1 reports scan chains of 58 flip-flops for the
	// 16-bit ALU and CMP (O+T+R registers plus control). Our wrapper should
	// land in the same range: 3*16 data FFs + opcode + 2 valid bits = 53.
	alu, err := NewALU(ALUConfig{Width: 16, Adder: AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	if got := alu.SeqFFs(); got < 48 || got > 64 {
		t.Errorf("ALU16 flip-flop count %d outside the expected 48-64 range", got)
	}
	cmp, err := NewCMP(16)
	if err != nil {
		t.Fatal(err)
	}
	if got := cmp.SeqFFs(); got < 48 || got > 64 {
		t.Errorf("CMP16 flip-flop count %d outside the expected 48-64 range", got)
	}
}

func TestRFWriteReadAllPorts(t *testing.T) {
	cfg := RFConfig{Width: 8, NumRegs: 8, NumIn: 2, NumOut: 2}
	rf, err := NewRF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := rf.Seq
	st := netlist.NewState(n)
	set := func(name string, v uint64) {
		p, ok := n.InputPort(name)
		if !ok {
			t.Fatalf("no port %s", name)
		}
		st.SetInputBus(p, v)
	}
	// Write distinct values into every register via alternating ports.
	for r := 0; r < cfg.NumRegs; r++ {
		port := r % 2
		other := 1 - port
		set("waddr0", 0)
		set("wdata0", 0)
		set("we0", 0)
		set("waddr1", 0)
		set("wdata1", 0)
		set("we1", 0)
		set("waddr"+itoa(port), uint64(r))
		set("wdata"+itoa(port), uint64(0x10+r))
		set("we"+itoa(port), 1)
		set("waddr"+itoa(other), 0)
		set("we"+itoa(other), 0)
		st.Cycle()
	}
	set("we0", 0)
	set("we1", 0)
	for r := 0; r < cfg.NumRegs; r++ {
		set("raddr0", uint64(r))
		set("raddr1", uint64(cfg.NumRegs-1-r))
		st.Eval()
		p0, _ := n.OutputPort("rdata0")
		p1, _ := n.OutputPort("rdata1")
		if got := st.OutputBusValue(p0, 0); got != uint64(0x10+r) {
			t.Fatalf("rdata0[r%d]=%#x want %#x", r, got, 0x10+r)
		}
		if got := st.OutputBusValue(p1, 0); got != uint64(0x10+cfg.NumRegs-1-r) {
			t.Fatalf("rdata1[r%d]=%#x want %#x", cfg.NumRegs-1-r, got, 0x10+cfg.NumRegs-1-r)
		}
	}
}

func TestRFWritePortPriority(t *testing.T) {
	rf, err := NewRF(RFConfig{Width: 8, NumRegs: 4, NumIn: 2, NumOut: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := rf.Seq
	st := netlist.NewState(n)
	set := func(name string, v uint64) {
		p, _ := n.InputPort(name)
		st.SetInputBus(p, v)
	}
	// Both ports write register 2 in the same cycle; the later port wins.
	set("waddr0", 2)
	set("wdata0", 0x11)
	set("we0", 1)
	set("waddr1", 2)
	set("wdata1", 0x22)
	set("we1", 1)
	st.Cycle()
	set("we0", 0)
	set("we1", 0)
	set("raddr0", 2)
	st.Eval()
	p, _ := n.OutputPort("rdata0")
	if got := st.OutputBusValue(p, 0); got != 0x22 {
		t.Fatalf("conflict write: got %#x, want later port's 0x22", got)
	}
}

func TestRFConfigValidate(t *testing.T) {
	bad := []RFConfig{
		{Width: 0, NumRegs: 8, NumIn: 1, NumOut: 1},
		{Width: 8, NumRegs: 1, NumIn: 1, NumOut: 1},
		{Width: 8, NumRegs: 8, NumIn: 0, NumOut: 1},
		{Width: 8, NumRegs: 8, NumIn: 1, NumOut: 0},
	}
	for _, cfg := range bad {
		if _, err := NewRF(cfg); err == nil {
			t.Errorf("NewRF(%+v) accepted invalid config", cfg)
		}
	}
}

func TestPCIncrementAndBranch(t *testing.T) {
	pc, err := NewPC(8)
	if err != nil {
		t.Fatal(err)
	}
	n := pc.Seq
	st := netlist.NewState(n)
	set := func(name string, v uint64) {
		p, _ := n.InputPort(name)
		st.SetInputBus(p, v)
	}
	out, _ := n.OutputPort("pc_out")
	set("branch", 0)
	set("stall", 0)
	set("target", 0)
	for i := 0; i < 5; i++ {
		st.Eval()
		if got := st.OutputBusValue(out, 0); got != uint64(i) {
			t.Fatalf("cycle %d: pc=%d want %d", i, got, i)
		}
		st.Step()
	}
	set("branch", 1)
	set("target", 0x42)
	st.Cycle()
	set("branch", 0)
	st.Eval()
	if got := st.OutputBusValue(out, 0); got != 0x42 {
		t.Fatalf("after branch pc=%#x want 0x42", got)
	}
	set("stall", 1)
	st.Cycle()
	st.Eval()
	if got := st.OutputBusValue(out, 0); got != 0x42 {
		t.Fatalf("stalled pc=%#x want 0x42", got)
	}
	// Wraparound: set PC to 0xFF via branch, then increment.
	set("stall", 0)
	set("branch", 1)
	set("target", 0xFF)
	st.Cycle()
	set("branch", 0)
	st.Cycle()
	st.Eval()
	if got := st.OutputBusValue(out, 0); got != 0 {
		t.Fatalf("pc wraparound: got %#x want 0", got)
	}
}

func TestLDSTStoreAndLoad(t *testing.T) {
	ld, err := NewLDST(16)
	if err != nil {
		t.Fatal(err)
	}
	n := ld.Seq
	st := netlist.NewState(n)
	set := func(name string, v uint64) {
		p, _ := n.InputPort(name)
		st.SetInputBus(p, v)
	}
	get := func(name string) uint64 {
		p, _ := n.OutputPort(name)
		return st.OutputBusValue(p, 0)
	}
	// Store: load address, then trigger with store data.
	set("bus_o", 0x100)
	set("load_o", 1)
	set("load_t", 0)
	set("is_store", 0)
	set("mem_rdata", 0)
	st.Cycle()
	set("load_o", 0)
	set("bus_t", 0xBEEF)
	set("is_store", 1)
	set("load_t", 1)
	st.Cycle()
	set("load_t", 0)
	st.Eval()
	if get("mem_we") != 1 || get("mem_addr") != 0x100 || get("mem_wdata") != 0xBEEF {
		t.Fatalf("store cycle: we=%d addr=%#x wdata=%#x", get("mem_we"), get("mem_addr"), get("mem_wdata"))
	}
	st.Step()
	// Load: trigger without store; memory returns data.
	set("is_store", 0)
	set("load_t", 1)
	st.Cycle()
	set("load_t", 0)
	set("mem_rdata", 0xCAFE)
	st.Cycle()
	st.Eval()
	if get("r_valid") != 1 || get("r_out") != 0xCAFE {
		t.Fatalf("load result: valid=%d r=%#x", get("r_valid"), get("r_out"))
	}
}

func TestIMMLoadAndHold(t *testing.T) {
	imm, err := NewIMM(16)
	if err != nil {
		t.Fatal(err)
	}
	n := imm.Seq
	st := netlist.NewState(n)
	pf, _ := n.InputPort("imm_field")
	pl, _ := n.InputPort("load")
	po, _ := n.OutputPort("imm_out")
	st.SetInputBus(pf, 0x7A5)
	st.SetInputBus(pl, 1)
	st.Cycle()
	st.SetInputBus(pl, 0)
	st.SetInputBus(pf, 0xFFF)
	st.Cycle()
	st.Eval()
	if got := st.OutputBusValue(po, 0); got != 0x7A5 {
		t.Fatalf("imm=%#x want 0x7A5 (hold)", got)
	}
}

func TestInputSocketHandshake(t *testing.T) {
	sock, err := NewInputSocket(6)
	if err != nil {
		t.Fatal(err)
	}
	n := sock.Seq
	st := netlist.NewState(n)
	set := func(name string, v uint64) {
		p, _ := n.InputPort(name)
		st.SetInputBus(p, v)
	}
	get := func(name string) uint64 {
		p, _ := n.OutputPort(name)
		return st.OutputBusValue(p, 0)
	}
	id := socketID(6)
	// Non-matching ID never enables.
	set("bus_id", id^1)
	set("bus_valid", 1)
	set("squash", 0)
	for i := 0; i < 4; i++ {
		st.Eval()
		if get("load_en") != 0 {
			t.Fatalf("cycle %d: enable on ID mismatch", i)
		}
		st.Cycle()
	}
	// Matching ID: F_in fires, then armed state issues load_en — at least
	// one cycle between the bus transport and the register load (rel. 6-7).
	st = netlist.NewState(n)
	set("bus_id", id)
	set("bus_valid", 1)
	set("squash", 0)
	st.Eval()
	if get("load_en") != 0 {
		t.Fatal("load_en asserted combinationally; must be staged through F_in")
	}
	st.Step()
	set("bus_valid", 0)
	sawEnable := false
	for i := 0; i < 4; i++ {
		st.Eval()
		if get("load_en") == 1 {
			sawEnable = true
			break
		}
		st.Step()
	}
	if !sawEnable {
		t.Fatal("input socket never issued load_en after a matching move")
	}
}

func TestInputSocketSquash(t *testing.T) {
	sock, err := NewInputSocket(6)
	if err != nil {
		t.Fatal(err)
	}
	n := sock.Seq
	st := netlist.NewState(n)
	set := func(name string, v uint64) {
		p, _ := n.InputPort(name)
		st.SetInputBus(p, v)
	}
	get := func(name string) uint64 {
		p, _ := n.OutputPort(name)
		return st.OutputBusValue(p, 0)
	}
	set("bus_id", socketID(6))
	set("bus_valid", 1)
	set("squash", 1)
	for i := 0; i < 5; i++ {
		st.Eval()
		if get("load_en") != 0 {
			t.Fatalf("cycle %d: load_en asserted under squash", i)
		}
		st.Cycle()
	}
}

func TestOutputSocketDrive(t *testing.T) {
	sock, err := NewOutputSocket(6)
	if err != nil {
		t.Fatal(err)
	}
	n := sock.Seq
	st := netlist.NewState(n)
	set := func(name string, v uint64) {
		p, _ := n.InputPort(name)
		st.SetInputBus(p, v)
	}
	get := func(name string) uint64 {
		p, _ := n.OutputPort(name)
		return st.OutputBusValue(p, 0)
	}
	// Result becomes valid; a later matching move drives the bus.
	set("bus_id", 0)
	set("bus_valid", 0)
	set("r_valid", 1)
	st.Cycle()
	set("r_valid", 0)
	st.Eval()
	if get("stale") != 1 {
		t.Fatal("pending result not reported as stale before transport")
	}
	set("bus_id", socketID(6))
	set("bus_valid", 1)
	st.Cycle()
	st.Eval()
	if get("drive_en") != 1 {
		t.Fatal("output socket did not drive after matching move")
	}
}

func TestLibraryCachesComponents(t *testing.T) {
	lib := NewLibrary()
	a1, err := lib.ALU(ALUConfig{Width: 16, Adder: AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := lib.ALU(ALUConfig{Width: 16, Adder: AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("library did not cache identical ALU configs")
	}
	a3, err := lib.ALU(ALUConfig{Width: 16, Adder: AdderCarrySelect})
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a3 {
		t.Fatal("library conflated distinct adder kinds")
	}
	for _, gen := range []func() (*Component, error){
		func() (*Component, error) { return lib.CMP(16) },
		func() (*Component, error) { return lib.RF(RFConfig{Width: 16, NumRegs: 8, NumIn: 1, NumOut: 2}) },
		func() (*Component, error) { return lib.LDST(16) },
		func() (*Component, error) { return lib.PC(16) },
		func() (*Component, error) { return lib.IMM(16) },
		func() (*Component, error) { return lib.InputSocket(6) },
		func() (*Component, error) { return lib.OutputSocket(6) },
	} {
		c1, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		c2, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("library did not cache %s", c1.Name)
		}
	}
}

func TestAdderAblationAreaDelayTradeoff(t *testing.T) {
	rip, err := NewALU(ALUConfig{Width: 16, Adder: AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	csel, err := NewALU(ALUConfig{Width: 16, Adder: AdderCarrySelect})
	if err != nil {
		t.Fatal(err)
	}
	if csel.Comb.Area() <= rip.Comb.Area() {
		t.Errorf("carry-select area %.1f not larger than ripple %.1f", csel.Comb.Area(), rip.Comb.Area())
	}
	if csel.Comb.CriticalPath() >= rip.Comb.CriticalPath() {
		t.Errorf("carry-select delay %.1f not smaller than ripple %.1f",
			csel.Comb.CriticalPath(), rip.Comb.CriticalPath())
	}
}

func TestComponentConnectors(t *testing.T) {
	alu, _ := NewALU(ALUConfig{Width: 16, Adder: AdderRipple})
	if alu.NumConnectors() != 3 {
		t.Fatalf("ALU n_conn=%d want 3 (O, T, R)", alu.NumConnectors())
	}
	rf, err := NewRF(RFConfig{Width: 16, NumRegs: 8, NumIn: 2, NumOut: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rf.NumConnectors() != 4 {
		t.Fatalf("RF n_conn=%d want 4", rf.NumConnectors())
	}
}

func TestRFAreaScalesWithRegistersAndPorts(t *testing.T) {
	base, err := NewRF(RFConfig{Width: 16, NumRegs: 8, NumIn: 1, NumOut: 1})
	if err != nil {
		t.Fatal(err)
	}
	moreRegs, err := NewRF(RFConfig{Width: 16, NumRegs: 12, NumIn: 1, NumOut: 1})
	if err != nil {
		t.Fatal(err)
	}
	morePorts, err := NewRF(RFConfig{Width: 16, NumRegs: 8, NumIn: 2, NumOut: 2})
	if err != nil {
		t.Fatal(err)
	}
	if moreRegs.Seq.Area() <= base.Seq.Area() {
		t.Error("RF area not monotone in register count")
	}
	if morePorts.Seq.Area() <= base.Seq.Area() {
		t.Error("RF area not monotone in port count")
	}
}
