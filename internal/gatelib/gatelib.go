// Package gatelib generates gate-level netlists for the TTA component
// library used by the design/test space exploration: the ALU, comparator,
// register files, load/store unit, program counter, immediate unit, the
// MOVE input/output sockets and the hybrid-pipelining stage controller of
// the paper's figure 3/4.
//
// Every functional component is produced in two forms sharing the same
// combinational core:
//
//   - Comb: the core alone, with operand/trigger/opcode ports as primary
//     inputs and the result as primary output. This is the circuit the ATPG
//     targets; because the O, T and R registers of a TTA component are
//     directly accessible from the MOVE buses, the same structural patterns
//     can be applied functionally (the paper's central observation).
//   - Seq: the hybrid-pipelined component of the paper's figure 3 — O and T
//     registers at the inputs, the R register at the output, and the valid
//     tracking flip-flop of the stage control. The flip-flop count of Seq
//     (plus the component's sockets) is the scan-chain length n_l used by
//     both the full-scan baseline and the socket test cost f_ts.
//
// Components are pre-designed once per configuration and cached by the
// library (mirroring the paper's flow, where components are synthesized up
// to gate level once and their pattern counts back-annotated).
package gatelib

import (
	"fmt"
	"sync"

	"repro/internal/netlist"
)

// LibraryKey identifies the generation of the component generators. Any
// change to the emitted netlists (gate structure, flip-flop counts, area
// or delay models) must bump it: persisted annotation caches carry the
// key and are invalidated on mismatch, so stale pattern counts can never
// leak into a new exploration.
const LibraryKey = "gatelib/v1"

// Kind identifies a component class of the TTA datapath.
type Kind uint8

// Component kinds. The first six mirror the paper's figure 9 architecture;
// the socket and stage-controller kinds implement its figures 3-5.
const (
	KindALU Kind = iota
	KindCMP
	KindRF
	KindLDST
	KindPC
	KindIMM
	KindInputSocket
	KindOutputSocket
	KindStageCtl
)

var kindNames = map[Kind]string{
	KindALU:          "ALU",
	KindCMP:          "CMP",
	KindRF:           "RF",
	KindLDST:         "LD/ST",
	KindPC:           "PC",
	KindIMM:          "Immediate",
	KindInputSocket:  "InSocket",
	KindOutputSocket: "OutSocket",
	KindStageCtl:     "StageCtl",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Component bundles the generated netlists and interface metadata for one
// library element.
type Component struct {
	Kind Kind
	Name string

	// Comb is the combinational core (nil for pure-register components
	// such as the Immediate unit).
	Comb *netlist.Netlist
	// Seq is the pipelined component including its O/T/R registers and
	// stage-control state.
	Seq *netlist.Netlist

	// Interface shape: number of input data ports (operand+trigger) and
	// output data ports, as seen from the MOVE buses.
	NumIn  int
	NumOut int
	// Width is the data-path width in bits.
	Width int

	// Register-file shape (KindRF only).
	NumRegs int
}

// NumConnectors returns n_conn, the total number of bus connectors
// (input + output data ports) of the component — the quantity in the
// paper's test cost function (1).
func (c *Component) NumConnectors() int { return c.NumIn + c.NumOut }

// SeqFFs returns the number of flip-flops in the pipelined form; together
// with the component's sockets this determines the scan-chain length n_l.
func (c *Component) SeqFFs() int { return len(c.Seq.FFs) }

// AdderKind selects the adder microarchitecture inside the ALU — one of
// the design choices the ablation benchmarks sweep.
type AdderKind uint8

// Adder microarchitectures.
const (
	AdderRipple AdderKind = iota
	AdderCarrySelect
)

func (a AdderKind) String() string {
	switch a {
	case AdderRipple:
		return "ripple"
	case AdderCarrySelect:
		return "carry-select"
	default:
		return fmt.Sprintf("AdderKind(%d)", uint8(a))
	}
}

// ALUConfig parametrizes the ALU generator.
type ALUConfig struct {
	Width int
	Adder AdderKind
}

// RFConfig parametrizes the register-file generator.
type RFConfig struct {
	Width   int
	NumRegs int
	NumIn   int // write ports
	NumOut  int // read ports
}

// Validate reports whether the configuration is buildable.
func (c RFConfig) Validate() error {
	if c.Width < 1 || c.NumRegs < 2 || c.NumIn < 1 || c.NumOut < 1 {
		return fmt.Errorf("gatelib: invalid RF config %+v", c)
	}
	return nil
}

func (c RFConfig) String() string {
	return fmt.Sprintf("RF%dx%d_%dw%dr", c.NumRegs, c.Width, c.NumIn, c.NumOut)
}

// Library caches generated components by configuration so the (expensive)
// generation and downstream ATPG run once per distinct configuration, as in
// the paper's pre-designed component library.
type Library struct {
	mu    sync.Mutex
	cache map[string]*Component
}

// NewLibrary returns an empty component library.
func NewLibrary() *Library {
	return &Library{cache: make(map[string]*Component)}
}

func (l *Library) memo(key string, gen func() (*Component, error)) (*Component, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok := l.cache[key]; ok {
		return c, nil
	}
	c, err := gen()
	if err != nil {
		return nil, err
	}
	l.cache[key] = c
	return c, nil
}

// ALU returns the cached ALU for the configuration.
func (l *Library) ALU(cfg ALUConfig) (*Component, error) {
	key := fmt.Sprintf("alu/w%d/%s", cfg.Width, cfg.Adder)
	return l.memo(key, func() (*Component, error) { return NewALU(cfg) })
}

// CMP returns the cached comparator for the width.
func (l *Library) CMP(width int) (*Component, error) {
	key := fmt.Sprintf("cmp/w%d", width)
	return l.memo(key, func() (*Component, error) { return NewCMP(width) })
}

// RF returns the cached register file for the configuration.
func (l *Library) RF(cfg RFConfig) (*Component, error) {
	key := "rf/" + cfg.String()
	return l.memo(key, func() (*Component, error) { return NewRF(cfg) })
}

// LDST returns the cached load/store unit for the width.
func (l *Library) LDST(width int) (*Component, error) {
	key := fmt.Sprintf("ldst/w%d", width)
	return l.memo(key, func() (*Component, error) { return NewLDST(width) })
}

// PC returns the cached program counter for the width.
func (l *Library) PC(width int) (*Component, error) {
	key := fmt.Sprintf("pc/w%d", width)
	return l.memo(key, func() (*Component, error) { return NewPC(width) })
}

// IMM returns the cached immediate unit for the width.
func (l *Library) IMM(width int) (*Component, error) {
	key := fmt.Sprintf("imm/w%d", width)
	return l.memo(key, func() (*Component, error) { return NewIMM(width) })
}

// InputSocket returns the cached input socket for an ID width.
func (l *Library) InputSocket(idBits int) (*Component, error) {
	key := fmt.Sprintf("isock/id%d", idBits)
	return l.memo(key, func() (*Component, error) { return NewInputSocket(idBits) })
}

// OutputSocket returns the cached output socket for an ID width.
func (l *Library) OutputSocket(idBits int) (*Component, error) {
	key := fmt.Sprintf("osock/id%d", idBits)
	return l.memo(key, func() (*Component, error) { return NewOutputSocket(idBits) })
}
