package gatelib

import (
	"fmt"

	"repro/internal/netlist"
)

// Comparator opcode encodings (3-bit). The result is 0 or 1 in bit 0 of the
// result bus; the remaining bits are zero.
const (
	CMPOpEq  = 0 // O == T
	CMPOpNe  = 1 // O != T
	CMPOpLtu = 2 // O <  T unsigned
	CMPOpLts = 3 // O <  T signed
	CMPOpGeu = 4 // O >= T unsigned
	CMPOpGes = 5 // O >= T signed
	CMPOpGtu = 6 // O >  T unsigned
	CMPOpGts = 7 // O >  T signed

	// CMPOpBits is the opcode field width.
	CMPOpBits = 3
)

// CMPOpName returns a mnemonic for a comparator opcode.
func CMPOpName(op int) string {
	names := []string{"eq", "ne", "ltu", "lts", "geu", "ges", "gtu", "gts"}
	if op >= 0 && op < len(names) {
		return names[op]
	}
	return fmt.Sprintf("cmpop%d", op)
}

// CMPGolden computes the comparator predicate in software.
func CMPGolden(op int, o, t uint64, width int) uint64 {
	mask := uint64(1)<<uint(width) - 1
	o &= mask
	t &= mask
	sign := uint64(1) << uint(width-1)
	so := int64(o)
	st := int64(t)
	if o&sign != 0 {
		so = int64(o) - int64(1)<<uint(width)
	}
	if t&sign != 0 {
		st = int64(t) - int64(1)<<uint(width)
	}
	var p bool
	switch op {
	case CMPOpEq:
		p = o == t
	case CMPOpNe:
		p = o != t
	case CMPOpLtu:
		p = o < t
	case CMPOpLts:
		p = so < st
	case CMPOpGeu:
		p = o >= t
	case CMPOpGes:
		p = so >= st
	case CMPOpGtu:
		p = o > t
	case CMPOpGts:
		p = so > st
	}
	if p {
		return 1
	}
	return 0
}

// buildCMPCore emits the comparator core: equality, unsigned and signed
// less-than chains plus a predicate decoder.
func buildCMPCore(b *netlist.Builder, width int, o, t, op []netlist.Net) []netlist.Net {
	eq := buildEqual(b, o, t)
	ltu := buildLessUnsigned(b, o, t)
	lts := buildLessSigned(b, o, t)

	// Select the base relation from op[1] (eq vs lt) and op[2]+op[1]
	// (gt/ge group), signedness from op[0] within the lt group.
	lt := b.Mux(op[0], ltu, lts)
	// base by op[2:1]: 00 -> eq, 01 -> lt, 10 -> ge = !lt, 11 -> gt = !lt & !eq
	ge := b.Not(lt)
	gt := b.And(ge, b.Not(eq))
	low := b.Mux(op[1], eq, lt)
	high := b.Mux(op[1], ge, gt)
	base := b.Mux(op[2], low, high)
	// eq group: op[0] selects ne = !eq. Only applies when op[2:1] == 00.
	isEqGroup := b.Nor(op[1], op[2])
	inv := b.And(isEqGroup, op[0])
	pred := b.Xor(base, inv)

	res := make([]netlist.Net, width)
	zero := b.Const(false)
	res[0] = pred
	for i := 1; i < width; i++ {
		res[i] = zero
	}
	return res
}

// NewCMP generates the comparator component.
func NewCMP(width int) (*Component, error) {
	if width < 2 {
		return nil, fmt.Errorf("gatelib: CMP width %d < 2", width)
	}
	name := fmt.Sprintf("cmp%d", width)
	core := func(b *netlist.Builder, o, t, op []netlist.Net) []netlist.Net {
		return buildCMPCore(b, width, o, t, op)
	}
	comb, err := buildCombWrapper(name+"_core", width, CMPOpBits, core)
	if err != nil {
		return nil, err
	}
	seq, err := buildPipelinedWrapper(name, width, CMPOpBits, core)
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:  KindCMP,
		Name:  name,
		Comb:  comb,
		Seq:   seq,
		NumIn: 2, NumOut: 1,
		Width: width,
	}, nil
}
