package gatelib

import (
	"fmt"

	"repro/internal/netlist"
)

// NewPC generates the program counter: a width-bit register that either
// increments or loads a branch target. The PC appears once in every
// candidate architecture, so (like the paper) it contributes equally to all
// test costs and is excluded from the comparison — but it is still needed
// for the area model and the full-scan baseline of Table 1.
func NewPC(width int) (*Component, error) {
	if width < 2 {
		return nil, fmt.Errorf("gatelib: PC width %d < 2", width)
	}
	name := fmt.Sprintf("pc%d", width)
	b := netlist.NewBuilder(name)
	target := b.InputBus("target", width)
	branch := b.Input("branch")
	stall := b.Input("stall")

	pcq := make([]netlist.Net, width)
	ffs := make([]int, width)
	for i := 0; i < width; i++ {
		pcq[i], ffs[i] = b.FFDecl(bitName(name, "PC", i), false)
	}
	inc := buildIncrementer(b, pcq)
	for i := 0; i < width; i++ {
		next := b.Mux(branch, inc[i], target[i])
		held := b.Mux(stall, next, pcq[i])
		b.SetD(ffs[i], held)
	}
	b.OutputBus("pc_out", pcq)
	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:  KindPC,
		Name:  name,
		Seq:   seq,
		NumIn: 1, NumOut: 1,
		Width: width,
	}, nil
}

// NewLDST generates the load/store unit. Stores place the address in the
// operand register and the data in the trigger register; loads are
// triggered by moving the address directly into the trigger register (one
// transport instead of two), so the memory address multiplexes between the
// two registers on the latched store flag. The data memory itself is
// architectural state outside the datapath (as in the paper's figure 9,
// "to/from the Data Memory").
func NewLDST(width int) (*Component, error) {
	if width < 2 {
		return nil, fmt.Errorf("gatelib: LD/ST width %d < 2", width)
	}
	name := fmt.Sprintf("ldst%d", width)
	b := netlist.NewBuilder(name)
	busO := b.InputBus("bus_o", width) // address
	busT := b.InputBus("bus_t", width) // store data / load trigger
	isStore := b.Input("is_store")
	loadO := b.Input("load_o")
	loadT := b.Input("load_t")
	memRData := b.InputBus("mem_rdata", width)

	oq := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		q, ff := b.FFDecl(bitName(name, "A", i), false)
		b.SetD(ff, b.Mux(loadO, q, busO[i]))
		oq[i] = q
	}
	tq := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		q, ff := b.FFDecl(bitName(name, "D", i), false)
		b.SetD(ff, b.Mux(loadT, q, busT[i]))
		tq[i] = q
	}
	stq, stFF := b.FFDecl(name+".ST", false)
	b.SetD(stFF, b.Mux(loadT, stq, isStore))
	vt := b.DFF(name+".VT", loadT, false)

	rq := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		q, ff := b.FFDecl(bitName(name, "R", i), false)
		b.SetD(ff, b.Mux(vt, q, memRData[i]))
		rq[i] = q
	}
	rv := b.DFF(name+".RV", b.And(vt, b.Not(stq)), false)

	// Store: address from the operand register; load: address from the
	// trigger register.
	addr := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		addr[i] = b.Mux(stq, tq[i], oq[i])
	}
	b.OutputBus("mem_addr", addr)
	b.OutputBus("mem_wdata", tq)
	b.Output("mem_we", b.And(vt, stq))
	b.OutputBus("r_out", rq)
	b.Output("r_valid", rv)
	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:  KindLDST,
		Name:  name,
		Seq:   seq,
		NumIn: 2, NumOut: 1,
		Width: width,
	}, nil
}

// NewIMM generates the immediate unit: a register loaded from the
// instruction's immediate field and readable on a bus.
func NewIMM(width int) (*Component, error) {
	if width < 2 {
		return nil, fmt.Errorf("gatelib: IMM width %d < 2", width)
	}
	name := fmt.Sprintf("imm%d", width)
	b := netlist.NewBuilder(name)
	field := b.InputBus("imm_field", width)
	load := b.Input("load")
	q := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		qi, ff := b.FFDecl(bitName(name, "I", i), false)
		b.SetD(ff, b.Mux(load, qi, field[i]))
		q[i] = qi
	}
	b.OutputBus("imm_out", q)
	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:  KindIMM,
		Name:  name,
		Seq:   seq,
		NumIn: 1, NumOut: 1,
		Width: width,
	}, nil
}
