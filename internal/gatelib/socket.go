package gatelib

import (
	"fmt"

	"repro/internal/netlist"
)

// Socket generators, after the paper's figures 4 and 5. The control unit of
// a TTA is distributed over the sockets: each socket watches the ID field
// of a move on its bus, matches it against its hard-wired socket ID,
// decodes, and stages the transfer through the F_in (input socket) or
// F_out (output socket) flip-flop — the instruction-decode cycle of
// relations (6)-(8). Socket state is tested with full scan (test cost
// f_ts = n_p * n_l, eq. 13), and the socket test doubles as the datapath
// interconnect test.

// socketID returns the hard-wired ID pattern for the generated socket
// (alternating bits, representative of an arbitrary assignment).
func socketID(idBits int) uint64 {
	var id uint64
	for i := 0; i < idBits; i += 2 {
		id |= 1 << uint(i)
	}
	return id
}

// buildIDMatch emits the ID comparison against the hard-wired pattern.
func buildIDMatch(b *netlist.Builder, busID []netlist.Net, id uint64) netlist.Net {
	terms := make([]netlist.Net, len(busID))
	for i := range busID {
		if id>>uint(i)&1 == 1 {
			terms[i] = busID[i]
		} else {
			terms[i] = b.Not(busID[i])
		}
	}
	return b.And(terms...)
}

// NewInputSocket generates the input socket of figure 4: ID match, decode,
// the F_in staging flip-flop and a two-bit stage-control handshake
// (idle -> armed -> fired) guaranteeing C(O|T) - C(F_in) >= 1, relations
// (6)-(7).
//
// Ports:
//
//	inputs:  bus_id (destination ID field), bus_valid, squash
//	outputs: load_en (register load enable), busy
func NewInputSocket(idBits int) (*Component, error) {
	if idBits < 2 {
		return nil, fmt.Errorf("gatelib: socket ID width %d < 2", idBits)
	}
	name := fmt.Sprintf("isock%d", idBits)
	b := netlist.NewBuilder(name)
	busID := b.InputBus("bus_id", idBits)
	valid := b.Input("bus_valid")
	squash := b.Input("squash")

	match := buildIDMatch(b, busID, socketID(idBits))
	fire := b.And(match, valid, b.Not(squash))

	// F_in stages the decoded enable for one cycle (relation (6)).
	fin := b.DFF(name+".Fin", fire, false)

	// Stage control handshake: st1:st0 — 00 idle, 01 armed (F_in seen),
	// 10 fired (enable issued), then back to idle.
	st0q, st0 := b.FFDecl(name+".st0", false)
	st1q, st1 := b.FFDecl(name+".st1", false)
	idle := b.Nor(st0q, st1q)
	armed := b.And(st0q, b.Not(st1q))
	b.SetD(st0, b.And(idle, fin, b.Not(squash)))
	b.SetD(st1, armed)

	loadEn := b.And(armed, b.Not(squash))
	b.Output("load_en", loadEn)
	b.Output("busy", b.Or(st0q, st1q))
	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:  KindInputSocket,
		Name:  name,
		Seq:   seq,
		NumIn: 1, NumOut: 1,
		Width: idBits,
	}, nil
}

// NewOutputSocket generates the output socket: ID match on the source
// field, the F_out staging flip-flop (relation (8): C(F_out) - C(R) >= 1)
// and the bus drive enable.
//
// Ports:
//
//	inputs:  bus_id (source ID field), bus_valid, r_valid
//	outputs: drive_en, stale (result waiting but not yet read)
func NewOutputSocket(idBits int) (*Component, error) {
	if idBits < 2 {
		return nil, fmt.Errorf("gatelib: socket ID width %d < 2", idBits)
	}
	name := fmt.Sprintf("osock%d", idBits)
	b := netlist.NewBuilder(name)
	busID := b.InputBus("bus_id", idBits)
	valid := b.Input("bus_valid")
	rValid := b.Input("r_valid")

	match := buildIDMatch(b, busID, socketID(idBits))
	req := b.And(match, valid)

	// pending: a result is latched and waiting to be transported.
	pq, pf := b.FFDecl(name+".pending", false)
	take := b.And(pq, req)
	b.SetD(pf, b.Or(rValid, b.And(pq, b.Not(take))))

	fout := b.DFF(name+".Fout", take, false)
	b.Output("drive_en", fout)
	b.Output("stale", b.And(pq, b.Not(req)))
	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:  KindOutputSocket,
		Name:  name,
		Seq:   seq,
		NumIn: 1, NumOut: 1,
		Width: idBits,
	}, nil
}
