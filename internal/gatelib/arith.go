package gatelib

import "repro/internal/netlist"

// Structural arithmetic cores shared by the ALU, comparator and PC
// generators. All buses are LSB-first.

// buildFullAdderBit adds one bit column and returns (sum, carry-out).
func buildFullAdderBit(b *netlist.Builder, a, x, ci netlist.Net) (netlist.Net, netlist.Net) {
	axor := b.Xor(a, x)
	sum := b.Xor(axor, ci)
	co := b.Or(b.And(a, x), b.And(axor, ci))
	return sum, co
}

// buildRippleAddSub builds a width-bit adder/subtractor: when sub is 1 the
// x operand is inverted and the carry-in forced to 1 (two's-complement
// subtraction a-x). Returns the sum bits and the final carry-out.
func buildRippleAddSub(b *netlist.Builder, a, x []netlist.Net, sub netlist.Net) ([]netlist.Net, netlist.Net) {
	sum := make([]netlist.Net, len(a))
	carry := sub
	for i := range a {
		xi := b.Xor(x[i], sub)
		sum[i], carry = buildFullAdderBit(b, a[i], xi, carry)
	}
	return sum, carry
}

// buildCarrySelectAddSub builds the carry-select variant: the word is split
// into blocks; each non-initial block is computed twice (carry-in 0 and 1)
// and the true carry selects between them. Larger than ripple but shallower
// — the design-choice ablation of DESIGN.md.
func buildCarrySelectAddSub(b *netlist.Builder, a, x []netlist.Net, sub netlist.Net) ([]netlist.Net, netlist.Net) {
	const block = 4
	w := len(a)
	xs := make([]netlist.Net, w)
	for i := range x {
		xs[i] = b.Xor(x[i], sub)
	}
	sum := make([]netlist.Net, w)
	carry := sub
	for lo := 0; lo < w; lo += block {
		hi := lo + block
		if hi > w {
			hi = w
		}
		if lo == 0 {
			for i := lo; i < hi; i++ {
				sum[i], carry = buildFullAdderBit(b, a[i], xs[i], carry)
			}
			continue
		}
		c0 := b.Const(false)
		c1 := b.Const(true)
		s0 := make([]netlist.Net, hi-lo)
		s1 := make([]netlist.Net, hi-lo)
		for i := lo; i < hi; i++ {
			s0[i-lo], c0 = buildFullAdderBit(b, a[i], xs[i], c0)
			s1[i-lo], c1 = buildFullAdderBit(b, a[i], xs[i], c1)
		}
		for i := lo; i < hi; i++ {
			sum[i] = b.Mux(carry, s0[i-lo], s1[i-lo])
		}
		carry = b.Mux(carry, c0, c1)
	}
	return sum, carry
}

// buildIncrementer builds a +1 incrementer (half-adder chain) and returns
// the incremented bits.
func buildIncrementer(b *netlist.Builder, a []netlist.Net) []netlist.Net {
	out := make([]netlist.Net, len(a))
	carry := b.Const(true)
	for i := range a {
		out[i] = b.Xor(a[i], carry)
		carry = b.And(a[i], carry)
	}
	return out
}

// buildBarrelShifter shifts a by the binary amount sh (LSB-first); right=1
// selects a logical right shift, otherwise logical left. Implemented as
// log2(width) mux stages.
func buildBarrelShifter(b *netlist.Builder, a []netlist.Net, sh []netlist.Net, right netlist.Net) []netlist.Net {
	zero := b.Const(false)
	cur := append([]netlist.Net(nil), a...)
	w := len(a)
	for stage, s := range sh {
		dist := 1 << uint(stage)
		if dist >= w {
			// Shifting by >= width zeroes everything when this stage fires.
			next := make([]netlist.Net, w)
			for i := 0; i < w; i++ {
				next[i] = b.Mux(s, cur[i], zero)
			}
			cur = next
			continue
		}
		next := make([]netlist.Net, w)
		for i := 0; i < w; i++ {
			// Left shift by dist: bit i comes from i-dist.
			var leftSrc netlist.Net = zero
			if i-dist >= 0 {
				leftSrc = cur[i-dist]
			}
			// Right shift by dist: bit i comes from i+dist.
			var rightSrc netlist.Net = zero
			if i+dist < w {
				rightSrc = cur[i+dist]
			}
			shifted := b.Mux(right, leftSrc, rightSrc)
			next[i] = b.Mux(s, cur[i], shifted)
		}
		cur = next
	}
	return cur
}

// buildEqual builds a width-wide equality comparator (a == x).
func buildEqual(b *netlist.Builder, a, x []netlist.Net) netlist.Net {
	bits := make([]netlist.Net, len(a))
	for i := range a {
		bits[i] = b.Xnor(a[i], x[i])
	}
	return b.And(bits...)
}

// buildLessUnsigned returns a < x (unsigned) using a borrow chain.
func buildLessUnsigned(b *netlist.Builder, a, x []netlist.Net) netlist.Net {
	// borrow_{i+1} = (~a_i & x_i) | ((a_i xnor x_i) & borrow_i)
	borrow := b.Const(false)
	for i := range a {
		diff := b.And(b.Not(a[i]), x[i])
		same := b.Xnor(a[i], x[i])
		borrow = b.Or(diff, b.And(same, borrow))
	}
	return borrow
}

// buildLessSigned returns a < x (two's complement signed).
func buildLessSigned(b *netlist.Builder, a, x []netlist.Net) netlist.Net {
	w := len(a)
	ltu := buildLessUnsigned(b, a[:w-1], x[:w-1])
	sa, sx := a[w-1], x[w-1]
	// a<x signed: (sa & ~sx) | ((sa xnor sx) & ltu(lower)) ... with equal
	// sign bits the magnitude comparison of the remaining bits decides.
	diffSign := b.And(sa, b.Not(sx))
	sameSign := b.Xnor(sa, sx)
	return b.Or(diffSign, b.And(sameSign, ltu))
}
