package gatelib

import (
	"fmt"

	"repro/internal/netlist"
)

// ALU opcode encodings (3-bit, matching the operation set of the paper's
// figure 9 ALU: addition, subtraction, shifting and basic logic).
const (
	ALUOpAdd  = 0 // R = O + T
	ALUOpSub  = 1 // R = O - T
	ALUOpSll  = 2 // R = O << T[k:0]
	ALUOpSrl  = 3 // R = O >> T[k:0] (logical)
	ALUOpAnd  = 4 // R = O & T
	ALUOpOr   = 5 // R = O | T
	ALUOpXor  = 6 // R = O ^ T
	ALUOpPass = 7 // R = O

	// ALUOpBits is the opcode field width.
	ALUOpBits = 3
)

// ALUOpName returns a mnemonic for an ALU opcode.
func ALUOpName(op int) string {
	names := []string{"add", "sub", "sll", "srl", "and", "or", "xor", "pass"}
	if op >= 0 && op < len(names) {
		return names[op]
	}
	return fmt.Sprintf("aluop%d", op)
}

// ALUGolden computes the ALU function in software — the golden model the
// netlist is verified against. Shift semantics match the operation IR
// (program.EvalBinary): the amount is the trigger value modulo 64, and
// any amount at or beyond the width yields zero.
func ALUGolden(op int, o, t uint64, width int) uint64 {
	mask := uint64(1)<<uint(width) - 1
	o &= mask
	t &= mask
	sh := t & 63
	var r uint64
	switch op {
	case ALUOpAdd:
		r = o + t
	case ALUOpSub:
		r = o - t
	case ALUOpSll:
		if sh >= uint64(width) {
			r = 0
		} else {
			r = o << sh
		}
	case ALUOpSrl:
		if sh >= uint64(width) {
			r = 0
		} else {
			r = o >> sh
		}
	case ALUOpAnd:
		r = o & t
	case ALUOpOr:
		r = o | t
	case ALUOpXor:
		r = o ^ t
	case ALUOpPass:
		r = o
	}
	return r & mask
}

// shamtBits returns the width of the in-range shift-amount field
// (log2(width)); the remaining trigger bits up to bit 5 feed the
// over-shift zeroing term.
func shamtBits(width int) int {
	b := 0
	for 1<<uint(b) < width {
		b++
	}
	return b
}

// buildALUCore emits the combinational ALU function over the operand (o),
// trigger (t) and opcode nets, returning the result nets.
func buildALUCore(b *netlist.Builder, cfg ALUConfig, o, t, op []netlist.Net) []netlist.Net {
	w := cfg.Width
	sub := op[0] // ADD=000, SUB=001: bit0 selects subtract within the add group
	var sum []netlist.Net
	switch cfg.Adder {
	case AdderCarrySelect:
		sum, _ = buildCarrySelectAddSub(b, o, t, sub)
	default:
		sum, _ = buildRippleAddSub(b, o, t, sub)
	}

	right := op[0] // SLL=010, SRL=011: bit0 selects direction
	lb := shamtBits(w)
	sh := t[:lb]
	shifted := buildBarrelShifter(b, o, sh, right)
	// Over-shift: any amount bit from log2(w) up to bit 5 zeroes the
	// result (IR semantics: amount taken modulo 64, >= width yields 0).
	hiEnd := 6
	if hiEnd > w {
		hiEnd = w
	}
	if hiEnd > lb {
		over := b.Or(t[lb:hiEnd]...)
		keep := b.Not(over)
		for i := range shifted {
			shifted[i] = b.And(shifted[i], keep)
		}
	}

	andv := make([]netlist.Net, w)
	orv := make([]netlist.Net, w)
	xorv := make([]netlist.Net, w)
	for i := 0; i < w; i++ {
		andv[i] = b.And(o[i], t[i])
		orv[i] = b.Or(o[i], t[i])
		xorv[i] = b.Xor(o[i], t[i])
	}

	// Result select on op[2:1]: 0x=add/sub group or shift group by op[1];
	// exact decode: group = op[2:1], 00 -> sum, 01 -> shift, 10 -> and/or
	// by op[0], 11 -> xor/pass by op[0].
	res := make([]netlist.Net, w)
	for i := 0; i < w; i++ {
		andOr := b.Mux(op[0], andv[i], orv[i])
		xorPass := b.Mux(op[0], xorv[i], o[i])
		low := b.Mux(op[1], sum[i], shifted[i])
		high := b.Mux(op[1], andOr, xorPass)
		res[i] = b.Mux(op[2], low, high)
	}
	return res
}

// NewALU generates the ALU component in both combinational and pipelined
// form.
func NewALU(cfg ALUConfig) (*Component, error) {
	if cfg.Width < 2 {
		return nil, fmt.Errorf("gatelib: ALU width %d < 2", cfg.Width)
	}
	name := fmt.Sprintf("alu%d_%s", cfg.Width, cfg.Adder)

	comb, err := buildCombWrapper(name+"_core", cfg.Width, ALUOpBits, func(b *netlist.Builder, o, t, op []netlist.Net) []netlist.Net {
		return buildALUCore(b, cfg, o, t, op)
	})
	if err != nil {
		return nil, err
	}
	seq, err := buildPipelinedWrapper(name, cfg.Width, ALUOpBits, func(b *netlist.Builder, o, t, op []netlist.Net) []netlist.Net {
		return buildALUCore(b, cfg, o, t, op)
	})
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:  KindALU,
		Name:  name,
		Comb:  comb,
		Seq:   seq,
		NumIn: 2, NumOut: 1,
		Width: cfg.Width,
	}, nil
}
