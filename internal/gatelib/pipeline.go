package gatelib

import "repro/internal/netlist"

// coreFn emits a combinational two-operand core: o is the operand register
// value, t the trigger register value, op the opcode field. It returns the
// result nets.
type coreFn func(b *netlist.Builder, o, t, op []netlist.Net) []netlist.Net

// buildCombWrapper instantiates a core as a standalone combinational
// netlist with ports o, t, op and result.
func buildCombWrapper(name string, width, opBits int, core coreFn) (*netlist.Netlist, error) {
	b := netlist.NewBuilder(name)
	o := b.InputBus("o", width)
	t := b.InputBus("t", width)
	op := b.InputBus("op", opBits)
	res := core(b, o, t, op)
	b.OutputBus("result", res)
	return b.Build()
}

// buildPipelinedWrapper instantiates a core inside the hybrid-pipelining
// structure of the paper's figure 3: an operand register O (with load
// enable), a trigger register T whose load starts the operation, the opcode
// latched together with T, a valid-tracking flip-flop (the stage control
// condition C(R)-C(T) >= 1, relation (3)), and the result register R.
//
// Ports:
//
//	inputs:  bus_o, bus_t (data), op_in (opcode), load_o, load_t (socket
//	         enables)
//	outputs: r_out (result register), r_valid (result available)
func buildPipelinedWrapper(name string, width, opBits int, core coreFn) (*netlist.Netlist, error) {
	b := netlist.NewBuilder(name)
	busO := b.InputBus("bus_o", width)
	busT := b.InputBus("bus_t", width)
	opIn := b.InputBus("op_in", opBits)
	loadO := b.Input("load_o")
	loadT := b.Input("load_t")

	// Operand register with load enable: O <- bus_o when load_o.
	oq := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		q, ff := b.FFDecl(bitName(name, "O", i), false)
		b.SetD(ff, b.Mux(loadO, q, busO[i]))
		oq[i] = q
	}
	// Trigger register: T <- bus_t when load_t.
	tq := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		q, ff := b.FFDecl(bitName(name, "T", i), false)
		b.SetD(ff, b.Mux(loadT, q, busT[i]))
		tq[i] = q
	}
	// Opcode latched with the trigger.
	opq := make([]netlist.Net, opBits)
	for i := 0; i < opBits; i++ {
		q, ff := b.FFDecl(bitName(name, "OP", i), false)
		b.SetD(ff, b.Mux(loadT, q, opIn[i]))
		opq[i] = q
	}
	// Stage control: VT marks "operation triggered last cycle".
	vt := b.DFF(name+".VT", loadT, false)

	res := core(b, oq, tq, opq)

	// Result register loads the core output one cycle after the trigger
	// (relation (3): C(R) - C(T) >= 1).
	rq := make([]netlist.Net, width)
	for i := 0; i < width; i++ {
		q, ff := b.FFDecl(bitName(name, "R", i), false)
		b.SetD(ff, b.Mux(vt, q, res[i]))
		rq[i] = q
	}
	rv := b.DFF(name+".RV", vt, false)

	b.OutputBus("r_out", rq)
	b.Output("r_valid", rv)
	return b.Build()
}

func bitName(comp, reg string, i int) string {
	return comp + "." + reg + "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[p:])
}
