package gatelib

import (
	"fmt"

	"repro/internal/netlist"
)

// addrBits returns the address-field width for n registers.
func addrBits(n int) int {
	b := 1
	for 1<<uint(b) < n {
		b++
	}
	return b
}

// buildDecoder emits a one-hot address decoder over 2^len(addr) outputs,
// truncated to n entries.
func buildDecoder(b *netlist.Builder, addr []netlist.Net, n int) []netlist.Net {
	out := make([]netlist.Net, n)
	inv := make([]netlist.Net, len(addr))
	for i, a := range addr {
		inv[i] = b.Not(a)
	}
	for r := 0; r < n; r++ {
		terms := make([]netlist.Net, len(addr))
		for i := range addr {
			if r>>uint(i)&1 == 1 {
				terms[i] = addr[i]
			} else {
				terms[i] = inv[i]
			}
		}
		out[r] = b.And(terms...)
	}
	return out
}

// NewRF generates a flip-flop-based multi-port register file: NumIn write
// ports (address, data, write-enable each) and NumOut read ports (address
// in, data out). Later write ports take priority on a same-address,
// same-cycle conflict.
//
// The paper's cost model treats register files as multi-ported memories
// tested with march tests (internal/march provides n_p); the flip-flop
// netlist generated here supplies the area model and the full-scan baseline
// the paper argues against (scan of a FF-implemented RF is expensive —
// Table 1's RF rows).
func NewRF(cfg RFConfig) (*Component, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	name := cfg.String()
	b := netlist.NewBuilder(name)
	ab := addrBits(cfg.NumRegs)

	type wport struct {
		dec  []netlist.Net
		data []netlist.Net
		we   netlist.Net
	}
	wps := make([]wport, cfg.NumIn)
	for j := 0; j < cfg.NumIn; j++ {
		addr := b.InputBus(fmt.Sprintf("waddr%d", j), ab)
		data := b.InputBus(fmt.Sprintf("wdata%d", j), cfg.Width)
		we := b.Input(fmt.Sprintf("we%d", j))
		wps[j] = wport{dec: buildDecoder(b, addr, cfg.NumRegs), data: data, we: we}
	}

	// Register bank with per-register write muxing.
	regQ := make([][]netlist.Net, cfg.NumRegs)
	for r := 0; r < cfg.NumRegs; r++ {
		regQ[r] = make([]netlist.Net, cfg.Width)
		for k := 0; k < cfg.Width; k++ {
			q, ff := b.FFDecl(fmt.Sprintf("%s.r%d[%d]", name, r, k), false)
			d := q
			for j := 0; j < cfg.NumIn; j++ {
				hit := b.And(wps[j].dec[r], wps[j].we)
				d = b.Mux(hit, d, wps[j].data[k])
			}
			b.SetD(ff, d)
			regQ[r][k] = q
		}
	}

	// Read ports: mux tree per bit.
	for j := 0; j < cfg.NumOut; j++ {
		addr := b.InputBus(fmt.Sprintf("raddr%d", j), ab)
		out := make([]netlist.Net, cfg.Width)
		for k := 0; k < cfg.Width; k++ {
			col := make([]netlist.Net, cfg.NumRegs)
			for r := 0; r < cfg.NumRegs; r++ {
				col[r] = regQ[r][k]
			}
			out[k] = buildMuxTree(b, addr, col)
		}
		b.OutputBus(fmt.Sprintf("rdata%d", j), out)
	}

	seq, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Component{
		Kind:    KindRF,
		Name:    name,
		Seq:     seq,
		NumIn:   cfg.NumIn,
		NumOut:  cfg.NumOut,
		Width:   cfg.Width,
		NumRegs: cfg.NumRegs,
	}, nil
}

// buildMuxTree selects entries[addr] with a binary mux tree; missing
// entries (when len(entries) is not a power of two) fall back to entry 0.
func buildMuxTree(b *netlist.Builder, addr []netlist.Net, entries []netlist.Net) netlist.Net {
	cur := append([]netlist.Net(nil), entries...)
	for level := 0; level < len(addr); level++ {
		nxt := make([]netlist.Net, (len(cur)+1)/2)
		for i := 0; i < len(nxt); i++ {
			a0 := cur[2*i]
			a1 := a0
			if 2*i+1 < len(cur) {
				a1 = cur[2*i+1]
			}
			nxt[i] = b.Mux(addr[level], a0, a1)
		}
		cur = nxt
	}
	return cur[0]
}
