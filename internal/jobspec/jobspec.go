// Package jobspec defines the serializable description of one
// exploration job — the single source of truth shared by the ttadse CLI
// (flags map 1:1 onto Spec fields) and the ttadsed daemon (the POST
// /v1/jobs body IS a Spec), so the two surfaces can never drift.
//
// A Spec carries only JSON-serializable values: workload and space knobs,
// selection norm and weights, cache/checkpoint paths, deadlines and
// worker budgets. It deliberately carries no live objects (annotators,
// registries, contexts) — those are wired by the consumer
// (dse.FromSpec + the caller), which keeps a Spec safe to persist, log,
// and replay.
package jobspec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// LaneWidthError reports a lane_width outside {0, 64, 256, 512}. It is a
// typed error so spec boundaries (flag parsing, POST bodies) can detect
// the specific failure instead of matching message text; the invalid
// value never reaches the fault-simulation layer.
type LaneWidthError struct{ Width int }

func (e *LaneWidthError) Error() string {
	return fmt.Sprintf("jobspec: lane_width %d is invalid (use 0 for auto, or 64, 256, 512)", e.Width)
}

// Workload names accepted by Spec.Workload ("" means crypt, the paper's
// application). The builders live in internal/crypt and
// internal/workloads; dse.FromSpec resolves names to graphs.
var Workloads = []string{"crypt", "crc16", "vecmax", "countbelow", "checksum"}

// Norm names accepted by Spec.Norm ("" means euclid).
var Norms = []string{"euclid", "manhattan", "chebyshev"}

// DegradedPolicies accepted by Spec.DegradedPolicy ("" means allow).
var DegradedPolicies = []string{"allow", "penalize", "exclude"}

// Duration is a time.Duration that marshals as a Go duration string
// ("150ms", "2m30s") and unmarshals from either a string or a number of
// nanoseconds — human-writable in curl bodies, exact in round-trips.
type Duration time.Duration

// MarshalJSON renders the duration as a quoted Go duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "150ms"-style strings or raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("jobspec: invalid duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("jobspec: duration must be a string like \"30s\" or nanoseconds: %s", data)
	}
	*d = Duration(ns)
	return nil
}

// Std returns the value as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String renders the value like time.Duration ("150ms", "2m30s").
func (d Duration) String() string { return time.Duration(d).String() }

// Spec is one exploration job, fully serializable. The zero value
// describes the paper's default study (crypt workload, full 288-candidate
// space, equal-weight Euclidean selection, no budgets).
type Spec struct {
	// Workload selects the application kernel: crypt (default), crc16,
	// vecmax, countbelow or checksum.
	Workload string `json:"workload,omitempty"`

	// Width and Seed parameterize the gate-level library annotation
	// (0 = the defaults, 16 and 7). Jobs sharing Width and Seed can share
	// one warm Annotator.
	Width int   `json:"width,omitempty"`
	Seed  int64 `json:"seed,omitempty"`

	// Buses, ALUs and CMPs span the explored space (empty = the paper's
	// defaults). Normalize sorts and deduplicates them.
	Buses []int `json:"buses,omitempty"`
	ALUs  []int `json:"alus,omitempty"`
	CMPs  []int `json:"cmps,omitempty"`

	// Norm and the weights drive the figure-9 selection:
	// euclid (default), manhattan or chebyshev; all-zero weights mean
	// equal (1,1,1).
	Norm string  `json:"norm,omitempty"`
	WA   float64 `json:"wa,omitempty"`
	WT   float64 `json:"wt,omitempty"`
	WC   float64 `json:"wc,omitempty"`

	// DegradedPolicy controls whether budget-degraded candidates may win
	// the selection: allow (default), penalize or exclude.
	// DegradedPenalty is the penalize multiplier (0 = default 2).
	DegradedPolicy  string  `json:"degraded_policy,omitempty"`
	DegradedPenalty float64 `json:"degraded_penalty,omitempty"`

	// Cache names the warm-start annotation cache file. The CLI loads and
	// rewrites it; the daemon ignores it (its warm cache is process-wide,
	// see cmd/ttadsed -cache).
	Cache string `json:"cache,omitempty"`

	// Checkpoint names the checkpoint/resume file: completed evaluations
	// are persisted there and restored by the next job with the same spec.
	Checkpoint string `json:"checkpoint,omitempty"`

	// Timeout bounds the whole exploration's wall clock (0 = none);
	// on expiry the completed subset is still reported. ATPGDeadline
	// budgets each gate-level ATPG run behind an annotation-cache miss;
	// an exhausted budget degrades that annotation to an analytical bound.
	Timeout      Duration `json:"timeout,omitempty"`
	ATPGDeadline Duration `json:"atpg_deadline,omitempty"`

	// Parallelism bounds concurrent candidate evaluations (0 =
	// GOMAXPROCS); ATPGWorkers bounds workers inside each gate-level ATPG
	// run (0 = split the core budget automatically). Results are identical
	// at any setting.
	Parallelism int `json:"parallelism,omitempty"`
	ATPGWorkers int `json:"atpg_workers,omitempty"`

	// LaneWidth selects the fault-simulation pattern-block width inside
	// each gate-level ATPG run: 0 = auto by netlist size, or 64, 256,
	// 512 lanes. Results are identical at any setting; wider blocks only
	// change annotation wall time.
	LaneWidth int `json:"lane_width,omitempty"`

	// VerifySelected re-derives and simulates the selected candidate's
	// schedule after the exploration.
	VerifySelected bool `json:"verify_selected,omitempty"`

	// Search, when non-nil, switches the job from the exhaustive sweep to
	// the guided GA + successive-halving exploration over the widened
	// parameter space; Buses/ALUs/CMPs are then ignored. See
	// dse.SearchSpec for the engine semantics.
	Search *SearchSpec `json:"search,omitempty"`

	// Shard, when non-nil, runs the job as a sharded fan-out: the daemon
	// forks Shards local worker processes, each evaluating a deterministic
	// contiguous slice of the candidate space, and merges their shard
	// checkpoints into one report byte-identical to the unsharded run.
	// Sharding is a throughput topology, not a result parameter: Hash
	// ignores it.
	Shard *ShardSpec `json:"shard,omitempty"`
}

// ShardSpec configures process-sharded execution of a job.
type ShardSpec struct {
	// Shards is the number of worker processes (>= 1).
	Shards int `json:"shards"`

	// MaxRestarts bounds how many times each worker is restarted — after
	// a crash or a stall kill alike — and resumed from its own shard
	// checkpoint (0 = the default, 2). When RestartWindow is set the
	// budget applies per sliding window instead of per worker lifetime.
	MaxRestarts int `json:"max_restarts,omitempty"`

	// StallTimeout is how long a worker may stay silent (no event, no
	// heartbeat on its NDJSON pipe) before the coordinator kills and
	// restarts it — the hang-detection analogue of a crash. 0 takes the
	// default (2m); negative disables stall detection entirely.
	StallTimeout Duration `json:"stall_timeout,omitempty"`

	// HeartbeatInterval is how often an otherwise quiet worker writes a
	// heartbeat event, proving process liveness to the coordinator's
	// stall watchdog. 0 takes the default (StallTimeout/4).
	HeartbeatInterval Duration `json:"heartbeat_interval,omitempty"`

	// BackoffBase and BackoffMax shape the deterministic exponential
	// backoff between restarts of the same worker: the nth restart waits
	// min(BackoffMax, BackoffBase<<n) plus seeded jitter. Zero values
	// take the defaults (250ms base, 10s max) — a poisoned worker binary
	// backs off instead of hot-looping through its budget in
	// milliseconds.
	BackoffBase Duration `json:"backoff_base,omitempty"`
	BackoffMax  Duration `json:"backoff_max,omitempty"`

	// RestartWindow, when positive, turns MaxRestarts into a sliding-
	// window budget: only restarts within the last RestartWindow count
	// against it, so a long-running worker survives occasional faults
	// while a crash-looping one still fails the job fast. 0 keeps the
	// lifetime budget.
	RestartWindow Duration `json:"restart_window,omitempty"`
}

// MaxShards caps ShardSpec.Shards: each shard is a full OS process, so
// the useful count is bounded by cores, not candidates.
const MaxShards = 256

// Validate reports whether the shard topology is runnable.
func (s *ShardSpec) Validate() error {
	if s.Shards < 1 {
		return fmt.Errorf("jobspec: shard count %d (want >= 1)", s.Shards)
	}
	if s.Shards > MaxShards {
		return fmt.Errorf("jobspec: shard count %d exceeds the maximum %d", s.Shards, MaxShards)
	}
	if s.MaxRestarts < 0 {
		return fmt.Errorf("jobspec: shard max_restarts %d is negative (use 0 for the default)", s.MaxRestarts)
	}
	if s.HeartbeatInterval < 0 {
		return fmt.Errorf("jobspec: shard heartbeat_interval %s is negative (use 0 for the default)", s.HeartbeatInterval)
	}
	if s.StallTimeout > 0 && s.HeartbeatInterval > s.StallTimeout {
		return fmt.Errorf("jobspec: shard heartbeat_interval %s exceeds stall_timeout %s — every worker would be killed as stalled",
			s.HeartbeatInterval, s.StallTimeout)
	}
	if s.BackoffBase < 0 || s.BackoffMax < 0 || s.RestartWindow < 0 {
		return fmt.Errorf("jobspec: shard backoff/restart-window durations must not be negative")
	}
	if s.BackoffBase > 0 && s.BackoffMax > 0 && s.BackoffBase > s.BackoffMax {
		return fmt.Errorf("jobspec: shard backoff_base %s exceeds backoff_max %s", s.BackoffBase, s.BackoffMax)
	}
	return nil
}

// SearchSpec configures guided search (mirrors dse.SearchSpec field for
// field; kept separate so the wire format has no dependency on engine
// types). Zero fields take the engine defaults: population 64,
// 8 generations, eta 4, seed = Spec.Seed.
type SearchSpec struct {
	Population  int   `json:"population,omitempty"`
	Generations int   `json:"generations,omitempty"`
	Eta         int   `json:"eta,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
}

// Validate reports whether the spec describes a runnable job. It checks
// membership of the enum-like fields and the sign constraints the engine
// enforces, so both surfaces (CLI flag parsing, daemon POST body) reject
// bad inputs identically and before any work is spent.
func (s *Spec) Validate() error {
	if !member(s.Workload, Workloads) {
		return fmt.Errorf("jobspec: unknown workload %q (want %s)", s.Workload, oneOf(Workloads))
	}
	if !member(s.Norm, Norms) {
		return fmt.Errorf("jobspec: unknown norm %q (want %s)", s.Norm, oneOf(Norms))
	}
	if !member(s.DegradedPolicy, DegradedPolicies) {
		return fmt.Errorf("jobspec: unknown degraded policy %q (want %s)", s.DegradedPolicy, oneOf(DegradedPolicies))
	}
	if s.Width < 0 {
		return fmt.Errorf("jobspec: width %d is negative (use 0 for the default)", s.Width)
	}
	if s.Seed < 0 {
		return fmt.Errorf("jobspec: seed %d is negative (use 0 for the default)", s.Seed)
	}
	if s.WA < 0 || s.WT < 0 || s.WC < 0 {
		return fmt.Errorf("jobspec: selection weights must be non-negative (got wa=%g wt=%g wc=%g)", s.WA, s.WT, s.WC)
	}
	if s.DegradedPenalty != 0 && s.DegradedPenalty < 1 {
		return fmt.Errorf("jobspec: degraded penalty %g below 1 would favor unmeasured points", s.DegradedPenalty)
	}
	if s.Timeout < 0 {
		return fmt.Errorf("jobspec: timeout %v is negative (use 0 for none)", s.Timeout.Std())
	}
	if s.ATPGDeadline < 0 {
		return fmt.Errorf("jobspec: atpg_deadline %v is negative (use 0 for no budget)", s.ATPGDeadline.Std())
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("jobspec: parallelism %d is negative (use 0 for GOMAXPROCS)", s.Parallelism)
	}
	if s.ATPGWorkers < 0 {
		return fmt.Errorf("jobspec: atpg_workers %d is negative (use 0 for the automatic core-budget split)", s.ATPGWorkers)
	}
	switch s.LaneWidth {
	case 0, 64, 256, 512:
	default:
		return &LaneWidthError{Width: s.LaneWidth}
	}
	if s.Shard != nil {
		if err := s.Shard.Validate(); err != nil {
			return err
		}
	}
	for _, l := range []struct {
		name string
		vals []int
	}{{"buses", s.Buses}, {"alus", s.ALUs}, {"cmps", s.CMPs}} {
		for _, v := range l.vals {
			if v < 1 {
				return fmt.Errorf("jobspec: %s contains %d (want positive counts)", l.name, v)
			}
		}
	}
	if s.Search != nil {
		if s.Search.Population < 0 || s.Search.Generations < 0 || s.Search.Eta < 0 {
			return fmt.Errorf("jobspec: negative search parameter (population %d, generations %d, eta %d; use 0 for defaults)",
				s.Search.Population, s.Search.Generations, s.Search.Eta)
		}
		if s.Search.Eta == 1 {
			return fmt.Errorf("jobspec: search eta 1 promotes every genome and screens nothing (want >= 2, or 0 for the default)")
		}
		if s.Search.Seed < 0 {
			return fmt.Errorf("jobspec: search seed %d is negative (use 0 to follow the job seed)", s.Search.Seed)
		}
	}
	return nil
}

// Normalize sorts and deduplicates the space lists in place, exactly as
// the CLI's list flags always have: repeated or unordered values would
// otherwise enumerate (and evaluate) the same candidates twice. It is
// idempotent; Validate does not require it.
func (s *Spec) Normalize() {
	s.Buses = sortedUnique(s.Buses)
	s.ALUs = sortedUnique(s.ALUs)
	s.CMPs = sortedUnique(s.CMPs)
}

// Hash returns a short stable identity for the job's RESULT: two specs
// hash equal exactly when they describe the same deterministic report.
// Topology and throughput knobs (shard layout, parallelism, ATPG workers,
// lane width) and I/O paths (cache, checkpoint) are excluded — results
// are byte-identical across all of them — as is Timeout, which changes
// only where a run may be cut off, never the converged bytes. ATPGDeadline
// stays in: a budgeted run records degraded annotations with different
// values. The hash names checkpoint files, so every shard of a job and
// its unsharded twin agree on it.
func (s Spec) Hash() string {
	// The receiver is a shallow copy; Normalize would otherwise sort the
	// caller's slices in place through the shared backing arrays.
	s.Buses = append([]int(nil), s.Buses...)
	s.ALUs = append([]int(nil), s.ALUs...)
	s.CMPs = append([]int(nil), s.CMPs...)
	if s.Search != nil {
		sr := *s.Search
		s.Search = &sr
	}
	s.Shard = nil
	s.Parallelism = 0
	s.ATPGWorkers = 0
	s.LaneWidth = 0
	s.Cache = ""
	s.Checkpoint = ""
	s.Timeout = 0
	s.Normalize()
	b, err := json.Marshal(&s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on one.
		panic(fmt.Sprintf("jobspec: marshal spec for hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// AnnotatorKey returns the identity of the warm annotation state this job
// can share: two specs with equal keys back-annotate from the same
// library configuration and may reuse one testcost.Annotator. The ATPG
// deadline is part of the key because a budgeted run may record degraded
// (bound, not measured) annotations that an unbudgeted run must not
// inherit.
func (s *Spec) AnnotatorKey() string {
	w := s.Width
	if w == 0 {
		w = 16
	}
	seed := s.Seed
	if seed == 0 {
		seed = 7
	}
	return fmt.Sprintf("w%d/s%d/d%s", w, seed, s.ATPGDeadline.Std())
}

func sortedUnique(vals []int) []int {
	if len(vals) == 0 {
		return vals
	}
	seen := make(map[int]bool, len(vals))
	out := vals[:0]
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

func member(v string, allowed []string) bool {
	if v == "" {
		return true
	}
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

func oneOf(vals []string) string {
	out := ""
	for i, v := range vals {
		switch {
		case i == 0:
		case i == len(vals)-1:
			out += " or "
		default:
			out += ", "
		}
		out += v
	}
	return out
}
