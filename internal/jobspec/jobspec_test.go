package jobspec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestZeroSpecValidates(t *testing.T) {
	var s Spec
	if err := s.Validate(); err != nil {
		t.Fatalf("zero spec must validate (it is the default study): %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
		want string
	}{
		{"workload", Spec{Workload: "doom"}, "unknown workload"},
		{"norm", Spec{Norm: "cosine"}, "unknown norm"},
		{"policy", Spec{DegradedPolicy: "maybe"}, "unknown degraded policy"},
		{"width", Spec{Width: -1}, "width"},
		{"seed", Spec{Seed: -2}, "seed"},
		{"weights", Spec{WA: -1}, "non-negative"},
		{"penalty", Spec{DegradedPenalty: 0.5}, "penalty"},
		{"timeout", Spec{Timeout: -1}, "timeout"},
		{"atpg-deadline", Spec{ATPGDeadline: -1}, "atpg_deadline"},
		{"parallelism", Spec{Parallelism: -1}, "parallelism"},
		{"atpg-workers", Spec{ATPGWorkers: -1}, "atpg_workers"},
		{"lane-width-negative", Spec{LaneWidth: -64}, "lane_width"},
		{"lane-width-odd", Spec{LaneWidth: 128}, "lane_width"},
		{"buses", Spec{Buses: []int{1, 0}}, "buses"},
		{"alus", Spec{ALUs: []int{-3}}, "alus"},
		{"cmps", Spec{CMPs: []int{2, 0}}, "cmps"},
		{"search-pop", Spec{Search: &SearchSpec{Population: -1}}, "search"},
		{"search-gens", Spec{Search: &SearchSpec{Generations: -1}}, "search"},
		{"search-eta-negative", Spec{Search: &SearchSpec{Eta: -1}}, "search"},
		{"search-eta-one", Spec{Search: &SearchSpec{Eta: 1}}, "eta 1"},
		{"search-seed", Spec{Search: &SearchSpec{Seed: -4}}, "search seed"},
		{"shard-zero", Spec{Shard: &ShardSpec{Shards: 0}}, "shard count"},
		{"shard-negative", Spec{Shard: &ShardSpec{Shards: -2}}, "shard count"},
		{"shard-huge", Spec{Shard: &ShardSpec{Shards: MaxShards + 1}}, "maximum"},
		{"shard-restarts", Spec{Shard: &ShardSpec{Shards: 2, MaxRestarts: -1}}, "max_restarts"},
		{"shard-heartbeat-negative", Spec{Shard: &ShardSpec{Shards: 2, HeartbeatInterval: -1}}, "heartbeat_interval"},
		{"shard-heartbeat-over-stall", Spec{Shard: &ShardSpec{Shards: 2, StallTimeout: Duration(time.Second), HeartbeatInterval: Duration(2 * time.Second)}}, "exceeds stall_timeout"},
		{"shard-backoff-negative", Spec{Shard: &ShardSpec{Shards: 2, BackoffBase: -1}}, "must not be negative"},
		{"shard-window-negative", Spec{Shard: &ShardSpec{Shards: 2, RestartWindow: -1}}, "must not be negative"},
		{"shard-backoff-inverted", Spec{Shard: &ShardSpec{Shards: 2, BackoffBase: Duration(time.Minute), BackoffMax: Duration(time.Second)}}, "backoff_base"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.s)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := Spec{
		Workload:        "crc16",
		Width:           16,
		Seed:            7,
		Buses:           []int{1, 2},
		ALUs:            []int{1},
		CMPs:            []int{1, 2},
		Norm:            "manhattan",
		WA:              2,
		WT:              1,
		WC:              0.5,
		DegradedPolicy:  "penalize",
		DegradedPenalty: 3,
		Cache:           "/tmp/ann.json",
		Checkpoint:      "/tmp/ck.json",
		Timeout:         Duration(90 * time.Second),
		ATPGDeadline:    Duration(250 * time.Millisecond),
		Parallelism:     4,
		ATPGWorkers:     2,
		LaneWidth:       256,
		VerifySelected:  true,
		Search:          &SearchSpec{Population: 128, Generations: 10, Eta: 4, Seed: 42},
		Shard: &ShardSpec{
			Shards: 4, MaxRestarts: 1,
			StallTimeout:      Duration(45 * time.Second),
			HeartbeatInterval: Duration(5 * time.Second),
			BackoffBase:       Duration(100 * time.Millisecond),
			BackoffMax:        Duration(4 * time.Second),
			RestartWindow:     Duration(10 * time.Minute),
		},
	}
	data, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out Spec
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the spec:\n in: %+v\nout: %+v", in, out)
	}
	// Second hop must be byte-stable (the daemon echoes specs back).
	data2, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-encoding changed bytes:\n%s\n%s", data, data2)
	}
}

func TestDurationForms(t *testing.T) {
	var s Spec
	if err := json.Unmarshal([]byte(`{"timeout":"1m30s","atpg_deadline":1500000}`), &s); err != nil {
		t.Fatal(err)
	}
	if s.Timeout.Std() != 90*time.Second {
		t.Errorf("string duration: got %v", s.Timeout.Std())
	}
	if s.ATPGDeadline.Std() != 1500*time.Microsecond {
		t.Errorf("numeric duration: got %v", s.ATPGDeadline.Std())
	}
	if err := json.Unmarshal([]byte(`{"timeout":"fast"}`), &s); err == nil {
		t.Error("invalid duration string accepted")
	}
	if err := json.Unmarshal([]byte(`{"timeout":true}`), &s); err == nil {
		t.Error("boolean duration accepted")
	}
}

func TestZeroSpecMarshalsEmpty(t *testing.T) {
	data, err := json.Marshal(&Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{}" {
		t.Fatalf("zero spec must serialize to {} (all fields omitempty), got %s", data)
	}
}

func TestNormalize(t *testing.T) {
	s := Spec{Buses: []int{4, 1, 4, 2}, ALUs: []int{3, 3}, CMPs: nil}
	s.Normalize()
	if !reflect.DeepEqual(s.Buses, []int{1, 2, 4}) || !reflect.DeepEqual(s.ALUs, []int{3}) || s.CMPs != nil {
		t.Fatalf("normalize: %+v", s)
	}
	s.Normalize() // idempotent
	if !reflect.DeepEqual(s.Buses, []int{1, 2, 4}) {
		t.Fatalf("normalize not idempotent: %+v", s)
	}
}

func TestHashIgnoresTopology(t *testing.T) {
	base := Spec{Workload: "crc16", Buses: []int{1, 2}, ALUs: []int{1}, Norm: "manhattan"}
	want := base.Hash()
	if len(want) != 16 {
		t.Fatalf("hash %q, want 16 hex chars", want)
	}
	same := []Spec{
		{Workload: "crc16", Buses: []int{2, 1, 2}, ALUs: []int{1}, Norm: "manhattan"}, // normalization
		func() Spec { s := base; s.Shard = &ShardSpec{Shards: 8}; return s }(),
		func() Spec { s := base; s.Parallelism = 7; return s }(),
		func() Spec { s := base; s.ATPGWorkers = 3; return s }(),
		func() Spec { s := base; s.LaneWidth = 512; return s }(),
		func() Spec { s := base; s.Cache = "/tmp/x"; s.Checkpoint = "/tmp/y"; return s }(),
		func() Spec { s := base; s.Timeout = Duration(time.Minute); return s }(),
	}
	for i, s := range same {
		if got := s.Hash(); got != want {
			t.Errorf("variant %d: hash %q != base %q (topology must not change result identity)", i, got, want)
		}
	}
	diff := []Spec{
		{Workload: "vecmax", Buses: []int{1, 2}, ALUs: []int{1}, Norm: "manhattan"},
		func() Spec { s := base; s.ATPGDeadline = Duration(time.Millisecond); return s }(),
		func() Spec { s := base; s.Search = &SearchSpec{Population: 10}; return s }(),
		func() Spec { s := base; s.VerifySelected = true; return s }(),
	}
	for i, s := range diff {
		if got := s.Hash(); got == want {
			t.Errorf("variant %d: hash collided with base (field must be result-significant)", i)
		}
	}
	// Hash must not mutate the caller's spec (Normalize works on copies).
	s := Spec{Buses: []int{3, 1}}
	s.Hash()
	if !reflect.DeepEqual(s.Buses, []int{3, 1}) {
		t.Fatalf("Hash mutated the spec: %v", s.Buses)
	}
}

func TestAnnotatorKey(t *testing.T) {
	var a, b Spec
	b.Width, b.Seed = 16, 7
	if a.AnnotatorKey() != b.AnnotatorKey() {
		t.Errorf("default key %q != explicit-default key %q", a.AnnotatorKey(), b.AnnotatorKey())
	}
	c := Spec{ATPGDeadline: Duration(time.Millisecond)}
	if c.AnnotatorKey() == a.AnnotatorKey() {
		t.Error("budgeted and unbudgeted specs must not share an annotator")
	}
	d := Spec{Width: 8}
	if d.AnnotatorKey() == a.AnnotatorKey() {
		t.Error("different widths must not share an annotator")
	}
}
