// Package vliw implements the paper's section 3.2 extension: applying the
// functional-test-cost approach to general bus-oriented VLIW ASIP
// templates (figure 7). Unlike the TTA, where every component connects
// directly to a MOVE bus, a VLIW datapath may attach components to the bus
// only *through* other components — the figure's register file whose
// output reaches the bus through one or more execution units. Then "the
// order of testing the components becomes relevant and also a different
// set-up of the control signals has to take place": a component can only
// be tested functionally once every component on its bus-access paths is
// itself tested (and configured transparent), and each hop adds a transport
// cycle per pattern.
package vliw

import (
	"fmt"
)

// Component is one datapath element of a VLIW template.
type Component struct {
	Name string
	// NP is the stuck-at pattern count (back-annotated, as for the TTA).
	NP int
	// PathIn lists the component indices a test stimulus must traverse
	// from the bus to this component's inputs (empty = direct bus access).
	PathIn []int
	// PathOut lists the component indices the response traverses back to
	// the bus (empty = direct).
	PathOut []int
}

// Deps returns the set of components that must be tested (and set up
// transparent) before this one.
func (c *Component) Deps() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range [][]int{c.PathIn, c.PathOut} {
		for _, d := range p {
			if !seen[d] {
				seen[d] = true
				out = append(out, d)
			}
		}
	}
	return out
}

// Template is a bus-oriented VLIW datapath.
type Template struct {
	Name       string
	Components []Component
}

// Validate checks path references.
func (t *Template) Validate() error {
	for ci := range t.Components {
		c := &t.Components[ci]
		if c.NP <= 0 {
			return fmt.Errorf("vliw: component %q has no patterns", c.Name)
		}
		for _, d := range c.Deps() {
			if d < 0 || d >= len(t.Components) {
				return fmt.Errorf("vliw: component %q references invalid component %d", c.Name, d)
			}
			if d == ci {
				return fmt.Errorf("vliw: component %q depends on itself", c.Name)
			}
		}
	}
	return nil
}

// Figure7 builds the paper's figure-7 template: n execution units directly
// on the bus, a register file whose write side is direct (from the
// instruction/bus) but whose read side reaches the bus only through the
// execution units, and a data cache reached through EU 0.
func Figure7(nEU int, npEU, npRF, npCache int) *Template {
	t := &Template{Name: fmt.Sprintf("vliw_%deu", nEU)}
	for i := 0; i < nEU; i++ {
		t.Components = append(t.Components, Component{
			Name: fmt.Sprintf("EU%d", i+1),
			NP:   npEU,
		})
	}
	// The register file's responses travel through EU1 (index 0).
	t.Components = append(t.Components, Component{
		Name:    "RF",
		NP:      npRF,
		PathOut: []int{0},
	})
	// The data cache is loaded and observed through EU1 as well.
	t.Components = append(t.Components, Component{
		Name:    "DCache",
		NP:      npCache,
		PathIn:  []int{0},
		PathOut: []int{0},
	})
	return t
}

// BaseCD is the direct-access cycles per pattern (the TTA's minimum of
// equation (9)); every indirect hop adds one transparent-transport cycle.
const BaseCD = 3

// patternCost is the cycles per pattern for a component given its paths.
func patternCost(c *Component) int {
	return BaseCD + len(c.PathIn) + len(c.PathOut)
}

// Order computes a dependency-respecting test order (Kahn's algorithm,
// stable by index). An error reports a dependency cycle — a datapath whose
// components cannot be functionally tested at all.
func (t *Template) Order() ([]int, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := len(t.Components)
	indeg := make([]int, n)
	users := make([][]int, n)
	for ci := range t.Components {
		for _, d := range t.Components[ci].Deps() {
			indeg[ci]++
			users[d] = append(users[d], ci)
		}
	}
	var order []int
	ready := []int{}
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		c := ready[0]
		ready = ready[1:]
		order = append(order, c)
		for _, u := range users[c] {
			indeg[u]--
			if indeg[u] == 0 {
				ready = append(ready, u)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("vliw: %q has a dependency cycle; functional test impossible", t.Name)
	}
	return order, nil
}

// Cost evaluates the test time of applying the components' patterns in the
// given order. Patterns applied through a not-yet-tested hop must be
// re-applied after that hop passes its own test (a fault in the hop and a
// fault in the target are otherwise indistinguishable), so violating the
// dependency order costs one full re-application per untested hop.
func (t *Template) Cost(order []int) (int, error) {
	if len(order) != len(t.Components) {
		return 0, fmt.Errorf("vliw: order covers %d of %d components", len(order), len(t.Components))
	}
	seen := make([]bool, len(t.Components))
	tested := make([]bool, len(t.Components))
	total := 0
	for _, ci := range order {
		if ci < 0 || ci >= len(t.Components) {
			return 0, fmt.Errorf("vliw: invalid order entry %d", ci)
		}
		if seen[ci] {
			return 0, fmt.Errorf("vliw: component %d appears twice in the order", ci)
		}
		seen[ci] = true
		c := &t.Components[ci]
		cost := c.NP * patternCost(c)
		for _, d := range c.Deps() {
			if !tested[d] {
				cost += c.NP * patternCost(c) // re-application after the hop is tested
			}
		}
		total += cost
		tested[ci] = true
	}
	return total, nil
}

// OptimalCost is the cost of the dependency-respecting order.
func (t *Template) OptimalCost() (int, []int, error) {
	order, err := t.Order()
	if err != nil {
		return 0, nil, err
	}
	cost, err := t.Cost(order)
	if err != nil {
		return 0, nil, err
	}
	return cost, order, nil
}

// WorstCost evaluates the reverse of the dependency order — the
// upper bound a naive schedule can reach through re-applications.
func (t *Template) WorstCost() (int, []int, error) {
	order, err := t.Order()
	if err != nil {
		return 0, nil, err
	}
	rev := make([]int, len(order))
	for i, c := range order {
		rev[len(order)-1-i] = c
	}
	cost, err := t.Cost(rev)
	if err != nil {
		return 0, nil, err
	}
	return cost, rev, nil
}
