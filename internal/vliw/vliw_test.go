package vliw

import "testing"

func TestFigure7Shape(t *testing.T) {
	tm := Figure7(3, 90, 80, 60)
	if err := tm.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tm.Components) != 5 {
		t.Fatalf("%d components, want 3 EUs + RF + DCache", len(tm.Components))
	}
	rf := tm.Components[3]
	if rf.Name != "RF" || len(rf.PathOut) != 1 {
		t.Fatalf("RF not routed through an EU: %+v", rf)
	}
}

func TestOrderRespectsDependencies(t *testing.T) {
	tm := Figure7(2, 90, 80, 60)
	order, err := tm.Order()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int]int{}
	for i, c := range order {
		pos[c] = i
	}
	for ci := range tm.Components {
		for _, d := range tm.Components[ci].Deps() {
			if pos[d] >= pos[ci] {
				t.Fatalf("dependency %d tested at %d, after dependent %d at %d",
					d, pos[d], ci, pos[ci])
			}
		}
	}
}

func TestDependencyAwareOrderCheaper(t *testing.T) {
	// The paper's point: with indirectly connected components the test
	// order matters. A dependency-violating order pays re-applications.
	tm := Figure7(2, 90, 80, 60)
	opt, optOrder, err := tm.OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	worst, worstOrder, err := tm.WorstCost()
	if err != nil {
		t.Fatal(err)
	}
	if worst <= opt {
		t.Fatalf("naive order (%v) cost %d not above dependency order (%v) cost %d",
			worstOrder, worst, optOrder, opt)
	}
}

func TestIndirectAccessCostsMoreCycles(t *testing.T) {
	// A directly attached component tests at BaseCD cycles per pattern; a
	// component one hop away pays one more per direction.
	direct := Component{Name: "d", NP: 10}
	oneHop := Component{Name: "h", NP: 10, PathIn: []int{0}, PathOut: []int{0}}
	if patternCost(&direct) != BaseCD {
		t.Fatalf("direct cost %d, want %d", patternCost(&direct), BaseCD)
	}
	if patternCost(&oneHop) != BaseCD+2 {
		t.Fatalf("one-hop cost %d, want %d", patternCost(&oneHop), BaseCD+2)
	}
}

func TestCycleDetected(t *testing.T) {
	tm := &Template{
		Name: "cyclic",
		Components: []Component{
			{Name: "A", NP: 5, PathIn: []int{1}},
			{Name: "B", NP: 5, PathIn: []int{0}},
		},
	}
	if _, err := tm.Order(); err == nil {
		t.Fatal("dependency cycle not detected")
	}
}

func TestValidateRejectsBadTemplates(t *testing.T) {
	bad := &Template{Components: []Component{{Name: "x", NP: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-pattern component accepted")
	}
	self := &Template{Components: []Component{{Name: "x", NP: 1, PathIn: []int{0}}}}
	if err := self.Validate(); err == nil {
		t.Error("self-dependency accepted")
	}
	oob := &Template{Components: []Component{{Name: "x", NP: 1, PathIn: []int{7}}}}
	if err := oob.Validate(); err == nil {
		t.Error("out-of-range path accepted")
	}
}

func TestCostRejectsMalformedOrders(t *testing.T) {
	tm := Figure7(2, 90, 80, 60)
	if _, err := tm.Cost([]int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := tm.Cost([]int{0, 0, 1, 2, 3}); err == nil {
		t.Error("duplicate order accepted")
	}
	if _, err := tm.Cost([]int{0, 1, 2, 3, 9}); err == nil {
		t.Error("out-of-range order accepted")
	}
}

func TestMoreUnitsMoreCost(t *testing.T) {
	small, _, err := Figure7(2, 90, 80, 60).OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := Figure7(4, 90, 80, 60).OptimalCost()
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("4-EU cost %d not above 2-EU cost %d", big, small)
	}
}

func TestDepsDeduplicated(t *testing.T) {
	c := Component{Name: "x", NP: 1, PathIn: []int{0, 1}, PathOut: []int{1, 0}}
	if got := len(c.Deps()); got != 2 {
		t.Fatalf("deps %d, want 2 (deduplicated)", got)
	}
}
