package tta

import "fmt"

// OpTiming records the clock cycles of one operation's register transports
// through a pipelined component: the instruction-decode flip-flops F_in and
// F_out of the sockets and the O, T, R registers of the component (the
// paper's figure 3). A value of -1 for O marks a single-operand operation.
type OpTiming struct {
	Fin  int // decode of the incoming move(s)
	O    int // operand register load (-1 if unused)
	T    int // trigger register load
	R    int // result register load
	Fout int // decode of the outgoing move
}

// CheckRelations verifies the paper's transport-timing relations (2)-(8)
// over a sequence of operations executed by the same component. ops must
// be given in trigger order for the cross-operation relations (4)-(5).
func CheckRelations(ops []OpTiming) error {
	for i, op := range ops {
		if op.O >= 0 && op.T-op.O < 0 {
			return fmt.Errorf("op %d violates (2): C(T)-C(O) = %d < 0", i, op.T-op.O)
		}
		if op.R-op.T < 1 {
			return fmt.Errorf("op %d violates (3): C(R)-C(T) = %d < 1", i, op.R-op.T)
		}
		if op.O >= 0 && op.O-op.Fin < 1 {
			return fmt.Errorf("op %d violates (6): C(O)-C(Fin) = %d < 1", i, op.O-op.Fin)
		}
		if op.T-op.Fin < 1 {
			return fmt.Errorf("op %d violates (7): C(T)-C(Fin) = %d < 1", i, op.T-op.Fin)
		}
		if op.Fout-op.R < 1 {
			return fmt.Errorf("op %d violates (8): C(Fout)-C(R) = %d < 1", i, op.Fout-op.R)
		}
	}
	for i := 0; i < len(ops); i++ {
		for j := 0; j < len(ops); j++ {
			if i == j {
				continue
			}
			// (4): Ci(T) > Cj(T) <=> Ci(R) > Cj(R) — results in trigger order.
			if (ops[i].T > ops[j].T) != (ops[i].R > ops[j].R) {
				return fmt.Errorf("ops %d,%d violate (4): trigger order %d,%d but result order %d,%d",
					i, j, ops[i].T, ops[j].T, ops[i].R, ops[j].R)
			}
			// (5): Ci(T) > Cj(T) => Ci(O) > Cj(T) — a later operation must
			// not overwrite the operand before the earlier trigger uses it.
			if ops[i].O >= 0 && ops[i].T > ops[j].T && !(ops[i].O > ops[j].T) {
				return fmt.Errorf("ops %d,%d violate (5): C(O)=%d not after C(T)=%d",
					i, j, ops[i].O, ops[j].T)
			}
		}
	}
	return nil
}

// CD returns CD(t_Din, t_Dout): the minimum number of clock cycles between
// applying data to the component from a MOVE bus and reading its response
// back onto a bus, as a function of the port-to-bus assignment
// (equations (9) and (10) of the paper).
//
// With every input port on its own bus, the operand and trigger arrive
// together and CD = 3 (F_in->T, T->R, R->F_out, eq. 9). Every additional
// input port that must share a bus serializes one more transport (eq. 10),
// and a result port sharing a bus with an input adds a final turnaround
// slot ("the number of cycles will further increase if all of the
// registers are tied to the same bus").
func (c *Component) CD() int {
	perBus := map[int]int{}
	maxShare := 1
	for _, pi := range c.InputPorts() {
		b := c.Ports[pi].Bus
		perBus[b]++
		if perBus[b] > maxShare {
			maxShare = perBus[b]
		}
	}
	cd := maxShare + 2
	for _, po := range c.OutputPorts() {
		if perBus[c.Ports[po].Bus] > 0 {
			cd++
			break
		}
	}
	return cd
}

// MinCD is the lower bound of equation (9).
const MinCD = 3

// CDOfTiming derives the cycle distance of one operation directly from its
// recorded timing, the left side of equations (9)-(10).
func CDOfTiming(op OpTiming) int {
	return op.Fout - op.Fin
}
