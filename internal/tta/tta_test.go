package tta

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigure9Shape(t *testing.T) {
	a := Figure9()
	if err := a.Validate(); err != nil {
		t.Fatalf("figure-9 architecture invalid: %v", err)
	}
	if a.Width != 16 {
		t.Errorf("width %d, want 16", a.Width)
	}
	counts := map[Kind]int{}
	for i := range a.Components {
		counts[a.Components[i].Kind]++
	}
	want := map[Kind]int{ALU: 1, CMP: 1, RF: 2, LDST: 1, PC: 1, IMM: 1}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s count = %d, want %d", k, counts[k], n)
		}
	}
	rfs := a.ComponentsOf(RF)
	if a.Components[rfs[0]].NumRegs != 8 || a.Components[rfs[1]].NumRegs != 12 {
		t.Errorf("RF sizes %d,%d want 8,12", a.Components[rfs[0]].NumRegs, a.Components[rfs[1]].NumRegs)
	}
	if !a.Assigned() {
		t.Error("figure-9 ports not assigned to buses")
	}
	if !strings.Contains(a.String(), "RF1") {
		t.Errorf("architecture string %q lacks component names", a.String())
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	a := &Architecture{Name: "bad", Width: 1, Buses: 1}
	if err := a.Validate(); err == nil {
		t.Error("width 1 accepted")
	}
	a = &Architecture{Name: "bad", Width: 16, Buses: 0}
	if err := a.Validate(); err == nil {
		t.Error("0 buses accepted")
	}
	a = &Architecture{Name: "bad", Width: 16, Buses: 1, Components: []Component{
		{Kind: ALU, Name: "alu", Ports: []Port{{Role: Operand, Bus: -1}}},
	}}
	if err := a.Validate(); err == nil {
		t.Error("ALU with one port accepted")
	}
	a = &Architecture{Name: "bad", Width: 16, Buses: 1, Components: []Component{NewFU(ALU, "alu")}}
	a.Components[0].Ports[0].Bus = 5
	if err := a.Validate(); err == nil {
		t.Error("out-of-range bus accepted")
	}
	a = &Architecture{Name: "bad", Width: 16, Buses: 1, Components: []Component{NewRF("rf", 1, 1, 1)}}
	if err := a.Validate(); err == nil {
		t.Error("1-register RF accepted")
	}
}

func TestCDMatchesEquations9And10(t *testing.T) {
	// Equation (9): operand and trigger on distinct buses -> CD = 3.
	fu := NewFU(ALU, "alu")
	fu.Ports[0].Bus = 0 // O
	fu.Ports[1].Bus = 1 // T
	fu.Ports[2].Bus = 2 // R
	if got := fu.CD(); got != 3 {
		t.Errorf("distinct buses: CD=%d, want 3 (eq. 9)", got)
	}
	// Equation (10): operand and trigger share a bus -> CD = 4.
	fu.Ports[1].Bus = 0
	fu.Ports[2].Bus = 2
	if got := fu.CD(); got != 4 {
		t.Errorf("shared O/T bus: CD=%d, want 4 (eq. 10)", got)
	}
	// All registers tied to the same bus -> further increase (5).
	fu.Ports[2].Bus = 0
	if got := fu.CD(); got != 5 {
		t.Errorf("all ports one bus: CD=%d, want 5", got)
	}
	// Result sharing with only one input still adds the turnaround slot.
	fu.Ports[0].Bus = 0
	fu.Ports[1].Bus = 1
	fu.Ports[2].Bus = 1
	if got := fu.CD(); got != 4 {
		t.Errorf("result on trigger bus: CD=%d, want 4", got)
	}
}

func TestFigure6TwoIdenticalFUsDifferentCost(t *testing.T) {
	// The paper's figure 6: two identical FUs, one with both inputs on the
	// same bus — its transport takes longer, so its test cost is higher.
	fu1 := NewFU(ALU, "fu1")
	fu1.Ports[0].Bus = 0
	fu1.Ports[1].Bus = 1
	fu1.Ports[2].Bus = 2
	fu2 := NewFU(ALU, "fu2")
	fu2.Ports[0].Bus = 0
	fu2.Ports[1].Bus = 0
	fu2.Ports[2].Bus = 2
	if !(fu1.CD() < fu2.CD()) {
		t.Errorf("CD(fu1)=%d not below CD(fu2)=%d", fu1.CD(), fu2.CD())
	}
}

func TestCheckRelationsAcceptsMinimalSchedule(t *testing.T) {
	// The canonical 3-cycle operation of equation (9).
	ops := []OpTiming{{Fin: 0, O: 1, T: 1, R: 2, Fout: 3}}
	if err := CheckRelations(ops); err != nil {
		t.Fatalf("minimal legal schedule rejected: %v", err)
	}
	if CDOfTiming(ops[0]) != 3 {
		t.Errorf("CD of minimal schedule = %d, want 3", CDOfTiming(ops[0]))
	}
	// Equation (10): serialized operand fetch.
	ops = []OpTiming{{Fin: 0, O: 1, T: 2, R: 3, Fout: 4}}
	if err := CheckRelations(ops); err != nil {
		t.Fatalf("serialized schedule rejected: %v", err)
	}
	if CDOfTiming(ops[0]) != 4 {
		t.Errorf("CD = %d, want 4", CDOfTiming(ops[0]))
	}
}

func TestCheckRelationsRejectsEachViolation(t *testing.T) {
	cases := []struct {
		name string
		ops  []OpTiming
		frag string
	}{
		{"(2) trigger before operand", []OpTiming{{Fin: 0, O: 3, T: 2, R: 4, Fout: 5}}, "(2)"},
		{"(3) zero-latency result", []OpTiming{{Fin: 0, O: 1, T: 1, R: 1, Fout: 2}}, "(3)"},
		{"(6) operand with decode", []OpTiming{{Fin: 1, O: 1, T: 2, R: 3, Fout: 4}}, "(6)"},
		{"(7) trigger with decode", []OpTiming{{Fin: 2, O: -1, T: 2, R: 3, Fout: 4}}, "(7)"},
		{"(8) readout with result", []OpTiming{{Fin: 0, O: 1, T: 1, R: 2, Fout: 2}}, "(8)"},
		{"(4) result order swap", []OpTiming{
			{Fin: 0, O: 1, T: 1, R: 5, Fout: 6},
			{Fin: 1, O: 2, T: 2, R: 3, Fout: 7},
		}, "(4)"},
		{"(5) operand overwrite", []OpTiming{
			{Fin: 0, O: 1, T: 4, R: 5, Fout: 6},
			{Fin: 1, O: 2, T: 5, R: 6, Fout: 7},
		}, "(5)"},
	}
	for _, c := range cases {
		err := CheckRelations(c.ops)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: wrong relation reported: %v", c.name, err)
		}
	}
}

func TestSingleOperandOpSkipsOperandRelations(t *testing.T) {
	ops := []OpTiming{{Fin: 0, O: -1, T: 1, R: 2, Fout: 3}}
	if err := CheckRelations(ops); err != nil {
		t.Fatalf("single-operand op rejected: %v", err)
	}
}

func TestAssignRoundRobinCoversAllBuses(t *testing.T) {
	a := Figure9().Clone()
	AssignPorts(a, RoundRobin)
	if !a.Assigned() {
		t.Fatal("round-robin left ports unassigned")
	}
	seen := make([]bool, a.Buses)
	for ci := range a.Components {
		for _, p := range a.Components[ci].Ports {
			seen[p.Bus] = true
		}
	}
	for b, ok := range seen {
		if !ok {
			t.Errorf("bus %d unused by round-robin", b)
		}
	}
}

func TestSpreadFirstMinimizesCDWithEnoughBuses(t *testing.T) {
	a := &Architecture{
		Name: "x", Width: 16, Buses: 3,
		Components: []Component{NewFU(ALU, "alu"), NewFU(CMP, "cmp")},
	}
	AssignPorts(a, SpreadFirst)
	for ci := range a.Components {
		if got := a.Components[ci].CD(); got != MinCD {
			t.Errorf("%s CD=%d, want %d with 3 buses", a.Components[ci].Name, got, MinCD)
		}
	}
}

func TestSpreadFirstNeverWorseThanRoundRobinOnCD(t *testing.T) {
	for buses := 1; buses <= 4; buses++ {
		rr := Figure9().Clone()
		rr.Buses = buses
		AssignPorts(rr, RoundRobin)
		sf := Figure9().Clone()
		sf.Buses = buses
		AssignPorts(sf, SpreadFirst)
		for ci := range rr.Components {
			if sf.Components[ci].CD() > rr.Components[ci].CD() {
				t.Errorf("buses=%d %s: spread-first CD %d worse than round-robin %d",
					buses, rr.Components[ci].Name, sf.Components[ci].CD(), rr.Components[ci].CD())
			}
		}
	}
}

func TestNumSockets(t *testing.T) {
	a := Figure9()
	// ALU 3 + CMP 3 + RF1 2 + RF2 2 + LDST 3 + PC 2 + IMM 1 = 16 sockets.
	if got := a.NumSockets(); got != 16 {
		t.Errorf("sockets=%d, want 16", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := Figure9()
	b := a.Clone()
	b.Components[0].Ports[0].Bus = 99
	if a.Components[0].Ports[0].Bus == 99 {
		t.Fatal("Clone shares port storage")
	}
}

func TestKindAndRoleStrings(t *testing.T) {
	for k := ALU; k <= IMM; k++ {
		if k.String() == "" {
			t.Fatalf("empty Kind string for %d", k)
		}
	}
	for r := Operand; r <= ReadPort; r++ {
		if r.String() == "" {
			t.Fatalf("empty role string for %d", r)
		}
	}
	if RoundRobin.String() == "" || SpreadFirst.String() == "" {
		t.Fatal("empty strategy strings")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	a := Figure9()
	a.Components[0].Adder = 1 // carry-select, to exercise the field
	var buf bytes.Buffer
	if err := SaveJSON(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != a.Name || b.Width != a.Width || b.Buses != a.Buses {
		t.Fatalf("header changed: %+v", b)
	}
	if len(b.Components) != len(a.Components) {
		t.Fatalf("component count %d, want %d", len(b.Components), len(a.Components))
	}
	for ci := range a.Components {
		ca, cb := &a.Components[ci], &b.Components[ci]
		if ca.Kind != cb.Kind || ca.Name != cb.Name || ca.NumRegs != cb.NumRegs ||
			ca.NumIn != cb.NumIn || ca.NumOut != cb.NumOut || ca.Adder != cb.Adder {
			t.Fatalf("component %d changed: %+v vs %+v", ci, ca, cb)
		}
		for pi := range ca.Ports {
			if ca.Ports[pi] != cb.Ports[pi] {
				t.Fatalf("component %d port %d changed", ci, pi)
			}
		}
	}
}

func TestLoadJSONRejectsGarbage(t *testing.T) {
	if _, err := LoadJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadJSON(strings.NewReader(`{"name":"x","width":16,"buses":1,"components":[{"kind":"WARP","name":"w"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := LoadJSON(strings.NewReader(`{"name":"x","width":16,"buses":1,"components":[{"kind":"ALU","name":"a","ports":[{"role":"Q","bus":0}]}]}`)); err == nil {
		t.Error("unknown role accepted")
	}
	// Structurally invalid architectures fail validation on load.
	if _, err := LoadJSON(strings.NewReader(`{"name":"x","width":1,"buses":1}`)); err == nil {
		t.Error("invalid width accepted")
	}
}

func TestDrawFigure9(t *testing.T) {
	out := Draw(Figure9())
	for _, want := range []string{"ALU", "RF1(8)", "RF2(12)", "bus0", "bus1", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagram lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// names + ports + stubs + one rail per bus.
	if len(lines) != 3+Figure9().Buses {
		t.Fatalf("diagram has %d lines, want %d", len(lines), 3+Figure9().Buses)
	}
	// Every port taps exactly one rail.
	taps := strings.Count(out, "o")
	if taps != Figure9().NumSockets() {
		t.Errorf("%d bus taps for %d sockets:\n%s", taps, Figure9().NumSockets(), out)
	}
}
