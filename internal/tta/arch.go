// Package tta models transport-triggered architectures at the level the
// design/test space exploration works on: components (function units and
// register files) with operand/trigger/result ports, MOVE buses, sockets,
// and the port-to-bus assignment. It also encodes the paper's
// transport-timing relations (2)-(8) and the resulting minimum
// cycle-distance CD(t_Din, t_Dout) of equations (9)-(10).
package tta

import (
	"fmt"
	"strings"

	"repro/internal/gatelib"
)

// Kind identifies a datapath component class.
type Kind uint8

// Component kinds of the paper's figure 9 template.
const (
	ALU Kind = iota
	CMP
	RF
	LDST
	PC
	IMM
)

var kindNames = [...]string{"ALU", "CMP", "RF", "LD/ST", "PC", "IMM"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// PortRole distinguishes the register class behind a bus connector.
type PortRole uint8

// Port roles: the paper's O (operand), T (trigger) and R (result)
// registers for function units; register files expose write and read
// ports.
const (
	Operand PortRole = iota
	Trigger
	Result
	WritePort
	ReadPort
)

var roleNames = [...]string{"O", "T", "R", "W", "Rd"}

func (r PortRole) String() string {
	if int(r) < len(roleNames) {
		return roleNames[r]
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// IsInput reports whether the role receives data from a bus.
func (r PortRole) IsInput() bool {
	return r == Operand || r == Trigger || r == WritePort
}

// Port is one bus connector of a component.
type Port struct {
	Role PortRole
	// Bus is the index of the MOVE bus this connector is attached to
	// (set by an assignment strategy; -1 while unassigned).
	Bus int
}

// Component is one datapath element of a candidate architecture.
type Component struct {
	Kind  Kind
	Name  string
	Ports []Port

	// Register-file shape (Kind == RF only).
	NumRegs int
	NumIn   int
	NumOut  int

	// Adder selects the ALU microarchitecture (Kind == ALU only).
	Adder gatelib.AdderKind
}

// NumConnectors returns n_conn, the connector count entering the test cost
// function.
func (c *Component) NumConnectors() int { return len(c.Ports) }

// InputPorts returns the indices of bus-receiving ports.
func (c *Component) InputPorts() []int {
	var out []int
	for i, p := range c.Ports {
		if p.Role.IsInput() {
			out = append(out, i)
		}
	}
	return out
}

// OutputPorts returns the indices of bus-driving ports.
func (c *Component) OutputPorts() []int {
	var out []int
	for i, p := range c.Ports {
		if !p.Role.IsInput() {
			out = append(out, i)
		}
	}
	return out
}

// NewFU builds a standard two-input one-output function unit (O, T, R).
func NewFU(kind Kind, name string) Component {
	return Component{
		Kind: kind,
		Name: name,
		Ports: []Port{
			{Role: Operand, Bus: -1},
			{Role: Trigger, Bus: -1},
			{Role: Result, Bus: -1},
		},
	}
}

// NewRF builds a register file with nIn write and nOut read ports.
func NewRF(name string, numRegs, nIn, nOut int) Component {
	c := Component{Kind: RF, Name: name, NumRegs: numRegs, NumIn: nIn, NumOut: nOut}
	for i := 0; i < nIn; i++ {
		c.Ports = append(c.Ports, Port{Role: WritePort, Bus: -1})
	}
	for i := 0; i < nOut; i++ {
		c.Ports = append(c.Ports, Port{Role: ReadPort, Bus: -1})
	}
	return c
}

// NewPC builds the program counter (branch-target trigger in, PC value
// out).
func NewPC(name string) Component {
	return Component{
		Kind: PC,
		Name: name,
		Ports: []Port{
			{Role: Trigger, Bus: -1},
			{Role: Result, Bus: -1},
		},
	}
}

// NewIMM builds the immediate unit (result port only; the value itself is
// carried by the instruction word).
func NewIMM(name string) Component {
	return Component{
		Kind:  IMM,
		Name:  name,
		Ports: []Port{{Role: Result, Bus: -1}},
	}
}

// Architecture is one point of the design space: a bus count and a set of
// components with (possibly assigned) port-to-bus connections.
type Architecture struct {
	Name       string
	Width      int
	Buses      int
	Components []Component
}

// Clone deep-copies the architecture (ports included).
func (a *Architecture) Clone() *Architecture {
	out := &Architecture{Name: a.Name, Width: a.Width, Buses: a.Buses}
	out.Components = make([]Component, len(a.Components))
	for i, c := range a.Components {
		cc := c
		cc.Ports = append([]Port(nil), c.Ports...)
		out.Components[i] = cc
	}
	return out
}

// NumSockets returns the socket count: one socket per bus connector (the
// control unit of a TTA is distributed over its sockets).
func (a *Architecture) NumSockets() int {
	n := 0
	for i := range a.Components {
		n += a.Components[i].NumConnectors()
	}
	return n
}

// ComponentsOf returns indices of all components of a kind.
func (a *Architecture) ComponentsOf(kind Kind) []int {
	var out []int
	for i := range a.Components {
		if a.Components[i].Kind == kind {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural well-formedness: positive width and buses,
// port roles appropriate for each kind, and bus indices in range once
// assigned.
func (a *Architecture) Validate() error {
	if a.Width < 2 {
		return fmt.Errorf("tta: width %d < 2", a.Width)
	}
	if a.Buses < 1 {
		return fmt.Errorf("tta: bus count %d < 1", a.Buses)
	}
	for ci := range a.Components {
		c := &a.Components[ci]
		switch c.Kind {
		case ALU, CMP, LDST:
			if len(c.InputPorts()) != 2 || len(c.OutputPorts()) != 1 {
				return fmt.Errorf("tta: %s %q must have 2 inputs + 1 output", c.Kind, c.Name)
			}
		case RF:
			if c.NumRegs < 2 {
				return fmt.Errorf("tta: RF %q has %d registers", c.Name, c.NumRegs)
			}
			if len(c.InputPorts()) != c.NumIn || len(c.OutputPorts()) != c.NumOut {
				return fmt.Errorf("tta: RF %q port/shape mismatch", c.Name)
			}
		case PC:
			if len(c.InputPorts()) != 1 || len(c.OutputPorts()) != 1 {
				return fmt.Errorf("tta: PC %q must have 1 input + 1 output", c.Name)
			}
		case IMM:
			if len(c.InputPorts()) != 0 || len(c.OutputPorts()) != 1 {
				return fmt.Errorf("tta: IMM %q must have exactly 1 output", c.Name)
			}
		}
		for pi, p := range c.Ports {
			if p.Bus >= a.Buses {
				return fmt.Errorf("tta: %q port %d assigned to bus %d of %d", c.Name, pi, p.Bus, a.Buses)
			}
		}
	}
	return nil
}

// Assigned reports whether every port has a bus.
func (a *Architecture) Assigned() bool {
	for ci := range a.Components {
		for _, p := range a.Components[ci].Ports {
			if p.Bus < 0 {
				return false
			}
		}
	}
	return true
}

// String renders a compact architecture description.
func (a *Architecture) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d-bit, %d bus(es):", a.Name, a.Width, a.Buses)
	for ci := range a.Components {
		c := &a.Components[ci]
		if c.Kind == RF {
			fmt.Fprintf(&b, " %s(%d regs,%dw%dr)", c.Name, c.NumRegs, c.NumIn, c.NumOut)
		} else {
			fmt.Fprintf(&b, " %s", c.Name)
		}
	}
	return b.String()
}

// Figure9 returns the paper's selected architecture (figure 9): a 16-bit
// datapath with one ALU, one CMP, RF1 with 8 registers, RF2 with 12
// registers, the LD/ST unit, PC and immediate unit. The paper draws a
// small number of shared buses; two MOVE buses reproduce its port
// contention profile.
func Figure9() *Architecture {
	a := &Architecture{
		Name:  "figure9",
		Width: 16,
		Buses: 2,
		Components: []Component{
			NewFU(ALU, "ALU"),
			NewFU(CMP, "CMP"),
			NewRF("RF1", 8, 1, 1),
			NewRF("RF2", 12, 1, 1),
			NewFU(LDST, "LD/ST"),
			NewPC("PC"),
			NewIMM("Immediate"),
		},
	}
	AssignPorts(a, SpreadFirst)
	return a
}
