package tta

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON persistence for architectures, so explored or selected designs can
// be saved, shared and reloaded by the command-line tools. The on-disk
// shape is a stable, human-editable view independent of internal enum
// values.

type jsonPort struct {
	Role string `json:"role"`
	Bus  int    `json:"bus"`
}

type jsonComponent struct {
	Kind    string     `json:"kind"`
	Name    string     `json:"name"`
	Ports   []jsonPort `json:"ports"`
	NumRegs int        `json:"numRegs,omitempty"`
	NumIn   int        `json:"numIn,omitempty"`
	NumOut  int        `json:"numOut,omitempty"`
	Adder   string     `json:"adder,omitempty"`
}

type jsonArch struct {
	Name       string          `json:"name"`
	Width      int             `json:"width"`
	Buses      int             `json:"buses"`
	Components []jsonComponent `json:"components"`
}

var kindByName = map[string]Kind{
	"ALU": ALU, "CMP": CMP, "RF": RF, "LD/ST": LDST, "PC": PC, "IMM": IMM,
	// Accept the display name of the immediate unit too.
	"Immediate": IMM,
}

var roleByName = map[string]PortRole{
	"O": Operand, "T": Trigger, "R": Result, "W": WritePort, "Rd": ReadPort,
}

// SaveJSON writes the architecture in its portable JSON form.
func SaveJSON(w io.Writer, a *Architecture) error {
	ja := jsonArch{Name: a.Name, Width: a.Width, Buses: a.Buses}
	for ci := range a.Components {
		c := &a.Components[ci]
		jc := jsonComponent{
			Kind:    c.Kind.String(),
			Name:    c.Name,
			NumRegs: c.NumRegs,
			NumIn:   c.NumIn,
			NumOut:  c.NumOut,
		}
		if c.Kind == ALU {
			jc.Adder = c.Adder.String()
		}
		for _, p := range c.Ports {
			jc.Ports = append(jc.Ports, jsonPort{Role: p.Role.String(), Bus: p.Bus})
		}
		ja.Components = append(ja.Components, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ja)
}

// LoadJSON reads an architecture from its JSON form and validates it.
func LoadJSON(r io.Reader) (*Architecture, error) {
	var ja jsonArch
	if err := json.NewDecoder(r).Decode(&ja); err != nil {
		return nil, fmt.Errorf("tta: decode architecture: %w", err)
	}
	a := &Architecture{Name: ja.Name, Width: ja.Width, Buses: ja.Buses}
	for _, jc := range ja.Components {
		kind, ok := kindByName[jc.Kind]
		if !ok {
			return nil, fmt.Errorf("tta: unknown component kind %q", jc.Kind)
		}
		c := Component{
			Kind:    kind,
			Name:    jc.Name,
			NumRegs: jc.NumRegs,
			NumIn:   jc.NumIn,
			NumOut:  jc.NumOut,
		}
		if jc.Adder == "carry-select" {
			c.Adder = 1 // gatelib.AdderCarrySelect
		}
		for _, jp := range jc.Ports {
			role, ok := roleByName[jp.Role]
			if !ok {
				return nil, fmt.Errorf("tta: unknown port role %q", jp.Role)
			}
			c.Ports = append(c.Ports, Port{Role: role, Bus: jp.Bus})
		}
		a.Components = append(a.Components, c)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}
