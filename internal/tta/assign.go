package tta

// Port-to-bus assignment strategies. The assignment decides the CD of
// every component (eqs. 9-10) and, through n_conn/n_b contention, the test
// cost — the paper's figure 6 shows two identical FUs whose costs differ
// only because of how their ports connect to buses. The exploration
// ablates round-robin against spread-first assignment.

// AssignStrategy selects how ports are distributed over buses.
type AssignStrategy uint8

// Assignment strategies.
const (
	// RoundRobin walks all ports of all components and deals buses out
	// cyclically — simple, but may co-locate one component's operand and
	// trigger on the same bus.
	RoundRobin AssignStrategy = iota
	// SpreadFirst gives each component's ports distinct buses first
	// (minimizing its CD), balancing total bus load as a tiebreak.
	SpreadFirst
	// Packed puts all ports of a component on one bus (minimal socket
	// wiring, worst CD — the slow FU2 of the paper's figure 6). Same area
	// and schedule as the other strategies, strictly worse test cost:
	// the kind of point only a test-aware exploration can reject.
	Packed
)

func (s AssignStrategy) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case SpreadFirst:
		return "spread-first"
	case Packed:
		return "packed"
	default:
		return "unknown"
	}
}

// AssignPorts assigns every port of the architecture to a bus in place.
func AssignPorts(a *Architecture, strat AssignStrategy) {
	switch strat {
	case SpreadFirst:
		assignSpreadFirst(a)
	case Packed:
		assignPacked(a)
	default:
		assignRoundRobin(a)
	}
}

func assignPacked(a *Architecture) {
	load := make([]int, a.Buses)
	for ci := range a.Components {
		c := &a.Components[ci]
		best := 0
		for b := 1; b < a.Buses; b++ {
			if load[b] < load[best] {
				best = b
			}
		}
		for pi := range c.Ports {
			c.Ports[pi].Bus = best
			load[best]++
		}
	}
}

func assignRoundRobin(a *Architecture) {
	next := 0
	for ci := range a.Components {
		c := &a.Components[ci]
		for pi := range c.Ports {
			c.Ports[pi].Bus = next % a.Buses
			next++
		}
	}
}

func assignSpreadFirst(a *Architecture) {
	load := make([]int, a.Buses)
	for ci := range a.Components {
		c := &a.Components[ci]
		used := make([]bool, a.Buses)
		for pi := range c.Ports {
			// Least-loaded bus not yet used by this component; fall back to
			// least-loaded overall when the component has more ports than
			// there are buses.
			best := -1
			for b := 0; b < a.Buses; b++ {
				if used[b] {
					continue
				}
				if best < 0 || load[b] < load[best] {
					best = b
				}
			}
			if best < 0 {
				for b := 0; b < a.Buses; b++ {
					if best < 0 || load[b] < load[best] {
						best = b
					}
				}
			}
			c.Ports[pi].Bus = best
			used[best] = true
			load[best]++
		}
	}
}
