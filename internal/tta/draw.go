package tta

import (
	"fmt"
	"strings"
)

// Draw renders the architecture as an ASCII diagram in the style of the
// paper's figure 9: the MOVE buses as horizontal rails, each component as
// a box whose port connections drop onto their assigned buses (O/T/R for
// function units, W/Rd for register files).
//
//	ALU        CMP        RF1(8)
//	O  T  R    O  T  R    W  Rd
//	|  |  |    |  |  |    |  |
//	●――│――●――――●――│――●――――●――│――  bus0
//	――――●――――――――――●―――――――――●――  bus1
func Draw(a *Architecture) string {
	const colGap = 2
	type portCol struct {
		label string
		bus   int
	}
	type compBlock struct {
		name  string
		ports []portCol
	}
	var blocks []compBlock
	for ci := range a.Components {
		c := &a.Components[ci]
		b := compBlock{name: c.Name}
		if c.Kind == RF {
			b.name = fmt.Sprintf("%s(%d)", c.Name, c.NumRegs)
		}
		for _, p := range c.Ports {
			b.ports = append(b.ports, portCol{label: p.Role.String(), bus: p.Bus})
		}
		blocks = append(blocks, b)
	}

	// Column layout: every port gets a column; blocks are separated.
	type col struct {
		x   int
		bus int
	}
	var cols []col
	nameRow := ""
	portRow := ""
	x := 0
	for bi, b := range blocks {
		start := x
		for _, p := range b.ports {
			for len(portRow) < x {
				portRow += " "
			}
			portRow += p.label
			cols = append(cols, col{x: x, bus: p.bus})
			x += len(p.label) + colGap
		}
		width := x - start - colGap
		if width < len(b.name) {
			x = start + len(b.name) + colGap
			width = len(b.name)
		}
		for len(nameRow) < start {
			nameRow += " "
		}
		nameRow += b.name
		if bi < len(blocks)-1 {
			x += colGap
		}
	}
	total := x

	var sb strings.Builder
	sb.WriteString(nameRow + "\n")
	sb.WriteString(portRow + "\n")
	// Vertical stubs.
	stub := make([]byte, total)
	for i := range stub {
		stub[i] = ' '
	}
	for _, c := range cols {
		stub[c.x] = '|'
	}
	sb.WriteString(string(stub) + "\n")
	// One rail per bus; a port taps its own bus with 'o' and crosses the
	// rails above it with '|'.
	for bus := 0; bus < a.Buses; bus++ {
		rail := make([]byte, total)
		for i := range rail {
			rail[i] = '-'
		}
		for _, c := range cols {
			switch {
			case c.bus == bus:
				rail[c.x] = 'o'
			case c.bus > bus:
				rail[c.x] = '|'
			}
		}
		fmt.Fprintf(&sb, "%s  bus%d\n", string(rail), bus)
	}
	return sb.String()
}
