package tta_test

import (
	"fmt"

	"repro/internal/tta"
)

// ExampleComponent_CD reproduces equations (9) and (10): the minimum
// bus-to-bus cycle distance as a function of the port-to-bus assignment.
func ExampleComponent_CD() {
	fu := tta.NewFU(tta.ALU, "ALU")
	fu.Ports[0].Bus = 0 // operand
	fu.Ports[1].Bus = 1 // trigger
	fu.Ports[2].Bus = 2 // result
	fmt.Println("distinct buses (eq. 9): CD =", fu.CD())

	fu.Ports[1].Bus = 0 // operand and trigger share a bus
	fmt.Println("shared O/T bus (eq. 10): CD =", fu.CD())
	// Output:
	// distinct buses (eq. 9): CD = 3
	// shared O/T bus (eq. 10): CD = 4
}

// ExampleFigure9 prints the paper's selected architecture.
func ExampleFigure9() {
	a := tta.Figure9()
	fmt.Println(a.Width, "bit,", a.Buses, "buses,", len(a.Components), "components,", a.NumSockets(), "sockets")
	// Output:
	// 16 bit, 2 buses, 7 components, 16 sockets
}
