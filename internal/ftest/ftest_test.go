package ftest

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/gatelib"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

func fuWithBuses(o, t, r int) *tta.Component {
	fu := tta.NewFU(tta.ALU, "fu")
	fu.Ports[0].Bus = o
	fu.Ports[1].Bus = t
	fu.Ports[2].Bus = r
	return &fu
}

func TestSequentialMatchesCDPerPattern(t *testing.T) {
	cases := []struct {
		name    string
		fu      *tta.Component
		buses   int
		wantCad int
	}{
		{"distinct buses (eq. 9)", fuWithBuses(0, 1, 2), 3, 3},
		{"shared operand/trigger (eq. 10)", fuWithBuses(0, 0, 1), 2, 4},
		{"single bus", fuWithBuses(0, 0, 0), 1, 5},
	}
	for _, c := range cases {
		tm, err := MeasureTransport(c.fu, c.buses, 50, Sequential)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := tm.PerPattern(); got < float64(c.wantCad)-0.2 || got > float64(c.wantCad)+0.2 {
			t.Errorf("%s: %.2f cycles/pattern, want ~%d (CD)", c.name, got, c.wantCad)
		}
		if tm.CD != c.wantCad {
			t.Errorf("%s: CD=%d, want %d", c.name, tm.CD, c.wantCad)
		}
	}
}

func TestSequentialMeasuredNeverAboveAnalytic(t *testing.T) {
	// Equation (11) is an upper bound on the actual transport schedule.
	for _, buses := range []int{1, 2, 3, 4} {
		fu := tta.NewFU(tta.ALU, "fu")
		a := &tta.Architecture{Name: "x", Width: 16, Buses: buses,
			Components: []tta.Component{fu}}
		tta.AssignPorts(a, tta.SpreadFirst)
		tm, err := MeasureTransport(&a.Components[0], buses, 100, Sequential)
		if err != nil {
			t.Fatal(err)
		}
		if tm.Cycles > tm.Analytic+tm.CD {
			t.Errorf("buses=%d: measured %d exceeds analytic %d", buses, tm.Cycles, tm.Analytic)
		}
		// And the measured time is within the right magnitude (not
		// trivially small).
		if tm.Cycles < 100*3 {
			t.Errorf("buses=%d: measured %d below the CD=3 lower bound", buses, tm.Cycles)
		}
	}
}

func TestPipelinedBeatsSequential(t *testing.T) {
	fu := fuWithBuses(0, 1, 2)
	seq, err := MeasureTransport(fu, 3, 100, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := MeasureTransport(fu, 3, 100, Pipelined)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Cycles >= seq.Cycles {
		t.Fatalf("pipelined %d cycles not below sequential %d", pipe.Cycles, seq.Cycles)
	}
	// With three dedicated buses the steady state approaches one pattern
	// per cycle.
	if pp := pipe.PerPattern(); pp > 1.3 {
		t.Errorf("pipelined per-pattern %.2f, expected near 1", pp)
	}
}

func TestPipelinedRespectsBusConflicts(t *testing.T) {
	// Operand and trigger on one bus: at most one transport per cycle on
	// that bus, so the pipelined cadence cannot go below 2.
	fu := fuWithBuses(0, 0, 1)
	pipe, err := MeasureTransport(fu, 2, 100, Pipelined)
	if err != nil {
		t.Fatal(err)
	}
	if pp := pipe.PerPattern(); pp < 1.9 {
		t.Errorf("pipelined per-pattern %.2f below the 2-moves-per-bus bound", pp)
	}
}

func TestMeasureTransportValidation(t *testing.T) {
	fu := fuWithBuses(0, 1, 5)
	if _, err := MeasureTransport(fu, 2, 10, Sequential); err == nil {
		t.Error("out-of-range bus accepted")
	}
	imm := tta.NewIMM("imm")
	if _, err := MeasureTransport(&imm, 2, 10, Sequential); err == nil {
		t.Error("output-only component accepted")
	}
}

func TestCampaignDetectsFaultsThroughTransportPath(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	fu := fuWithBuses(0, 1, 2)
	camp, err := RunCampaign(alu, fu, 3, Sequential, atpg.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Coverage() < 0.99 {
		t.Fatalf("functional coverage %.4f < 0.99: %s", camp.Coverage(), camp)
	}
	if camp.Timing.Cycles <= 0 || camp.Timing.Analytic <= 0 {
		t.Fatalf("degenerate timing: %s", camp.Timing)
	}
	// The functional application must be far below the full-scan time for
	// the same pattern count (chain length ~29 for the 8-bit ALU seq; the
	// comb core has no chain at all — compare against nl=3*8+5=29).
	scanCycles := camp.Timing.Patterns * 30
	if camp.Timing.Cycles >= scanCycles {
		t.Errorf("functional %d cycles not below scan-equivalent %d", camp.Timing.Cycles, scanCycles)
	}
}

func TestCampaignStringAndModeNames(t *testing.T) {
	if Sequential.String() == "" || Pipelined.String() == "" {
		t.Fatal("empty mode names")
	}
	c := &Campaign{Component: "x", Timing: &Timing{Patterns: 1, Cycles: 3}, TotalFaults: 10, Detected: 10}
	if c.String() == "" {
		t.Fatal("empty campaign string")
	}
}

func TestCampaignRejectsCorelessComponent(t *testing.T) {
	rf, err := gatelib.NewRF(gatelib.RFConfig{Width: 8, NumRegs: 4, NumIn: 1, NumOut: 1})
	if err != nil {
		t.Fatal(err)
	}
	fu := fuWithBuses(0, 1, 2)
	if _, err := RunCampaign(rf, fu, 3, Sequential, atpg.Config{Seed: 7}); err == nil {
		t.Error("register file (no comb core) accepted for an FU campaign")
	}
}

func TestWorsePortAssignmentMeasuresSlower(t *testing.T) {
	// The figure-6 effect, measured rather than computed: the same
	// component tests slower when its ports share buses.
	good := fuWithBuses(0, 1, 2)
	bad := fuWithBuses(0, 0, 0)
	tg, err := MeasureTransport(good, 3, 80, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := MeasureTransport(bad, 3, 80, Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cycles <= tg.Cycles {
		t.Fatalf("packed ports measured %d cycles, not above spread %d", tb.Cycles, tg.Cycles)
	}
}

func TestTestProgramCompilesAndDumpsResponses(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	res := atpg.Run(alu.Comb, atpg.Config{Seed: 7})
	tp, err := BuildTestProgram(tta.ALU, alu.Comb, res.Patterns, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Applied == 0 {
		t.Fatal("no patterns expressed")
	}
	if tp.Applied+tp.Skipped != len(res.Patterns) {
		t.Fatalf("applied %d + skipped %d != %d patterns", tp.Applied, tp.Skipped, len(res.Patterns))
	}
	// The program schedules like any application and its fault-free dump
	// matches the expected responses.
	arch := tta.Figure9()
	schedRes, err := sched.Schedule(tp.Graph, arch, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := program.Memory{}
	if _, err := sim.Run(schedRes, nil, mem, sim.Options{Verify: true}); err != nil {
		t.Fatal(err)
	}
	for i, want := range tp.Expected {
		if got := mem[DumpBase+uint64(i)]; got != want {
			t.Fatalf("dump[%d] = %#x, want %#x", i, got, want)
		}
	}
	t.Logf("functional test of the ALU is a TTA program: %d patterns, %d moves, %d cycles",
		tp.Applied, len(schedRes.Moves), schedRes.Cycles)
}

func TestProgramCampaignDetectsGateFaults(t *testing.T) {
	// The headline: running the test program with a fault-injected
	// gate-level ALU changes the response dump for almost every fault.
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	arch := tta.Figure9()
	camp, err := RunProgramCampaign(arch, 0, alu, atpg.Config{Seed: 7}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if camp.TotalFaults < 100 {
		t.Fatalf("subsample too small: %d", camp.TotalFaults)
	}
	// The pass-op patterns are skipped, so coverage through the program is
	// slightly below the raw ATPG figure but must remain high.
	if camp.Coverage() < 0.90 {
		t.Fatalf("program-level coverage %.3f < 0.90 (%d/%d)", camp.Coverage(), camp.Detected, camp.TotalFaults)
	}
	t.Logf("test-program campaign: %d/%d sampled faults detected (%.1f%%), %d cycles, %d skipped patterns",
		camp.Detected, camp.TotalFaults, 100*camp.Coverage(), camp.Cycles, camp.Skipped)
}

func TestNetlistExecMatchesBehavioural(t *testing.T) {
	// Without a fault, the gate-level execution override must agree with
	// the behavioural ALU on every opcode.
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	exec, err := NetlistExec(0, alu, nil)
	if err != nil {
		t.Fatal(err)
	}
	ops := []program.OpCode{program.Add, program.Sub, program.Sll, program.Srl,
		program.And, program.Or, program.Xor}
	for i, op := range ops {
		o := uint64(0x1234 + i*77)
		tv := uint64(0x00F3 ^ i)
		got, handled := exec(0, op, o, tv)
		if !handled {
			t.Fatalf("%s not handled", op)
		}
		want, err := program.EvalBinary(op, o, tv, 16)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s(%#x,%#x): gates %#x, behavioural %#x", op, o, tv, got, want)
		}
	}
	// Other components fall through.
	if _, handled := exec(3, program.Add, 1, 2); handled {
		t.Fatal("override intercepted a foreign component")
	}
}
