// Package ftest makes the paper's central mechanism executable: the
// functional application of structural test patterns to a TTA component.
// ATPG patterns are transported over the MOVE buses into the component's
// operand and trigger registers (obeying the timing relations (2)-(8) and
// the port-to-bus assignment), the response is observed through the result
// register, and detection is decided against the fault-injected gate-level
// netlist. The measured transport cycle count empirically validates the
// analytical cost f_tfu = n_p * CD * ceil(n_conn/n_b) of equation (11).
package ftest

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/gatelib"
	"repro/internal/tta"
)

// Mode selects how aggressively consecutive patterns overlap.
type Mode uint8

// Application modes.
const (
	// Sequential starts a pattern only once the previous response has
	// left through the output socket — the paper's cost model.
	Sequential Mode = iota
	// Pipelined overlaps the next pattern's operand transports with the
	// previous response readout wherever the R register and the buses
	// allow — an extension beyond the paper showing the model's headroom.
	Pipelined
)

func (m Mode) String() string {
	if m == Pipelined {
		return "pipelined"
	}
	return "sequential"
}

// Timing is the measured transport schedule of one functional test
// session.
type Timing struct {
	Mode     Mode
	Patterns int
	// Cycles is the measured total application time.
	Cycles int
	// Analytic is the paper's f_tfu for the same component and bus count.
	Analytic int
	// CD is the per-pattern cycle distance of the port assignment.
	CD int
}

// PerPattern returns the measured steady-state cost per pattern.
func (t *Timing) PerPattern() float64 {
	if t.Patterns == 0 {
		return 0
	}
	return float64(t.Cycles) / float64(t.Patterns)
}

func (t *Timing) String() string {
	return fmt.Sprintf("%s: %d patterns in %d cycles (%.2f/pattern; analytic f_tfu=%d, CD=%d)",
		t.Mode, t.Patterns, t.Cycles, t.PerPattern(), t.Analytic, t.CD)
}

// MeasureTransport simulates applying np patterns to a function unit whose
// ports are assigned as in fu, over an architecture with `buses` MOVE
// buses, and returns the measured schedule. The simulation follows the
// transport rules of internal/sched: a move on a bus at cycle t loads its
// register at t+1; the result register holds the response two cycles after
// the trigger; the response leaves on a bus no earlier than one cycle
// after that (relations (2)-(8)).
func MeasureTransport(fu *tta.Component, buses, np int, mode Mode) (*Timing, error) {
	ins := fu.InputPorts()
	outs := fu.OutputPorts()
	if len(ins) < 1 || len(outs) != 1 {
		return nil, fmt.Errorf("ftest: component %q is not a testable FU shape", fu.Name)
	}
	for _, pi := range append(append([]int{}, ins...), outs...) {
		if fu.Ports[pi].Bus < 0 || fu.Ports[pi].Bus >= buses {
			return nil, fmt.Errorf("ftest: port %d of %q not assigned within %d buses", pi, fu.Name, buses)
		}
	}
	oBus := fu.Ports[ins[0]].Bus
	tBus := oBus
	if len(ins) > 1 {
		tBus = fu.Ports[ins[1]].Bus
	}
	rBus := fu.Ports[outs[0]].Bus

	cd := fu.CD()
	analytic := np * cd * ceilDiv(fu.NumConnectors(), buses)

	// Greedy per-bus reservation: each bus carries one move per cycle.
	busNext := make([]int, buses)
	reserve := func(bus, earliest int) int {
		c := earliest
		if busNext[bus] > c {
			c = busNext[bus]
		}
		busNext[bus] = c + 1
		return c
	}

	total := 0
	prevRead := -1 // cycle the previous response left through F_out
	for k := 0; k < np; k++ {
		earliest := 0
		if mode == Sequential && prevRead >= 0 {
			// The paper's cost model: one pattern in flight at a time —
			// only the response readout may overlap the next operand move.
			earliest = prevRead
		}
		a := reserve(oBus, earliest)
		b := a
		if len(ins) > 1 {
			b = reserve(tBus, a)
		}
		// The R register is overwritten two cycles after the trigger; the
		// previous response must have left by then (same-cycle read-then-
		// overwrite is legal, reads sample before the clock edge).
		if prevRead >= 0 && b+2 < prevRead {
			b = prevRead - 2
			busNext[tBus] = b + 1
		}
		// Response readout after relation (8): F_out >= R + 1 = b + 3.
		read := reserve(rBus, b+3)
		prevRead = read
		total = read + 1
	}
	return &Timing{Mode: mode, Patterns: np, Cycles: total, Analytic: analytic, CD: cd}, nil
}

func ceilDiv(x, y int) int {
	if y <= 0 {
		return x
	}
	return (x + y - 1) / y
}

// Campaign is the result of a full functional fault-injection run.
type Campaign struct {
	Component string
	Timing    *Timing
	// TotalFaults and Detected count the collapsed stuck-at faults of the
	// component's combinational core actually distinguished through the
	// R-register observation path.
	TotalFaults int
	Detected    int
	Redundant   int
	Aborted     int
}

// Coverage is detected / (total - redundant).
func (c *Campaign) Coverage() float64 {
	den := c.TotalFaults - c.Redundant
	if den <= 0 {
		return 1
	}
	return float64(c.Detected) / float64(den)
}

func (c *Campaign) String() string {
	return fmt.Sprintf("%s: %d/%d faults detected functionally (FC %.2f%%), %s",
		c.Component, c.Detected, c.TotalFaults, 100*c.Coverage(), c.Timing)
}

// RunCampaign generates patterns for the component's combinational core,
// measures their functional application on the given port assignment, and
// injects every collapsed fault into the gate-level netlist to confirm the
// transported responses distinguish it.
func RunCampaign(comp *gatelib.Component, fu *tta.Component, buses int, mode Mode, cfg atpg.Config) (*Campaign, error) {
	if comp.Comb == nil {
		return nil, fmt.Errorf("ftest: component %s has no combinational core", comp.Name)
	}
	res, err := atpg.RunContext(context.Background(), comp.Comb, cfg)
	if err != nil {
		return nil, err
	}
	timing, err := MeasureTransport(fu, buses, res.NumPatterns(), mode)
	if err != nil {
		return nil, err
	}
	u := atpg.NewUniverse(comp.Comb)
	sim := atpg.NewSimulator(comp.Comb)
	detected := make([]bool, len(u.Faults))
	for start := 0; start < len(res.Patterns); start += 64 {
		end := start + 64
		if end > len(res.Patterns) {
			end = len(res.Patterns)
		}
		sim.LoadBlock(res.Patterns[start:end])
		for fi := range u.Faults {
			if !detected[fi] && sim.Detects(u.Faults[fi]) != 0 {
				detected[fi] = true
			}
		}
	}
	n := 0
	for _, d := range detected {
		if d {
			n++
		}
	}
	return &Campaign{
		Component:   comp.Name,
		Timing:      timing,
		TotalFaults: len(u.Faults),
		Detected:    n,
		Redundant:   res.Redundant,
		Aborted:     res.Aborted,
	}, nil
}
