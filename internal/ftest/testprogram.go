package ftest

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/gatelib"
	"repro/internal/netlist"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tta"
)

// The functional test as an actual TTA program: every ATPG pattern becomes
// an operation whose operands arrive as immediates and whose response is
// stored to a memory dump region — exactly the move traffic the paper's
// approach implies, schedulable and encodable like any application. The
// fault-injection campaign runs this program on the behavioural simulator
// with the target component's execution replaced by its fault-injected
// gate-level netlist; detection is a difference in the response dump.

// DumpBase is the memory region the test program stores responses to.
const DumpBase uint64 = 0xD000

// hwToIR maps a component's hardware opcode to the IR operation the
// scheduler/simulator execute. The ALU's "pass" opcode (7) has no IR
// equivalent and is reported unexpressible.
func hwToIR(kind tta.Kind, op int) (program.OpCode, bool) {
	switch kind {
	case tta.ALU:
		ops := []program.OpCode{program.Add, program.Sub, program.Sll, program.Srl,
			program.And, program.Or, program.Xor}
		if op >= 0 && op < len(ops) {
			return ops[op], true
		}
		return 0, false
	case tta.CMP:
		if op >= 0 && op < 8 {
			return program.Eq + program.OpCode(op), true
		}
		return 0, false
	default:
		return 0, false
	}
}

// decodePattern splits a combinational-core pattern into its operand,
// trigger and opcode fields (the core's input ports are o, t, op).
func decodePattern(comb *netlist.Netlist, p atpg.Pattern) (o, t uint64, op int, err error) {
	po, ok1 := comb.InputPort("o")
	pt, ok2 := comb.InputPort("t")
	pop, ok3 := comb.InputPort("op")
	if !ok1 || !ok2 || !ok3 {
		return 0, 0, 0, fmt.Errorf("ftest: core lacks o/t/op ports")
	}
	// Pattern order = simulator controllables = PIs in port order.
	idx := 0
	read := func(width int) uint64 {
		var v uint64
		for i := 0; i < width; i++ {
			if p[idx] != 0 {
				v |= 1 << uint(i)
			}
			idx++
		}
		return v
	}
	o = read(po.Width())
	t = read(pt.Width())
	op = int(read(pop.Width()))
	return o, t, op, nil
}

// TestProgram is the compiled functional test of one component.
type TestProgram struct {
	Graph *program.Graph
	// Applied counts the patterns expressed; Skipped counts patterns whose
	// opcode has no IR equivalent (the ALU pass op).
	Applied int
	Skipped int
	// Expected is the fault-free response dump (index -> value).
	Expected []uint64
}

// BuildTestProgram compiles the pattern set for a component kind into a
// dataflow program: op_i = hwop_i(o_i, t_i); store(DumpBase+i, op_i).
func BuildTestProgram(kind tta.Kind, comb *netlist.Netlist, patterns []atpg.Pattern, width int) (*TestProgram, error) {
	g := program.NewGraph(fmt.Sprintf("ftest_%s", kind), width)
	tp := &TestProgram{Graph: g}
	slot := 0
	for _, p := range patterns {
		o, t, op, err := decodePattern(comb, p)
		if err != nil {
			return nil, err
		}
		irOp, ok := hwToIR(kind, op)
		if !ok {
			tp.Skipped++
			continue
		}
		r := g.Bin(irOp, g.ConstV(o), g.ConstV(t))
		g.Store(g.ConstV(DumpBase+uint64(slot)), r)
		want, err := program.EvalBinary(irOp, o, t, width)
		if err != nil {
			return nil, err
		}
		tp.Expected = append(tp.Expected, want)
		tp.Applied++
		slot++
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return tp, nil
}

// NetlistExec returns a simulator execution override that computes the
// component's operations on its (optionally fault-injected) gate-level
// netlist instead of the behavioural semantics. Only the given component
// index is intercepted.
func NetlistExec(compIdx int, comp *gatelib.Component, fault *atpg.Fault) (func(int, program.OpCode, uint64, uint64) (uint64, bool), error) {
	comb := comp.Comb
	if comb == nil {
		return nil, fmt.Errorf("ftest: component %s has no combinational core", comp.Name)
	}
	sim := atpg.NewSimulator(comb)
	po, _ := comb.InputPort("o")
	pt, _ := comb.InputPort("t")
	pop, _ := comb.InputPort("op")
	pres, ok := comb.OutputPort("result")
	if !ok {
		return nil, fmt.Errorf("ftest: core lacks a result port")
	}
	nc := sim.NumControls()
	// Precompute the pattern position of every port bit.
	posOf := func(port netlist.Port) []int {
		out := make([]int, port.Width())
		for i, net := range port.Nets {
			out[i] = -1
			for ci, ctrl := range sim.Controllables() {
				if ctrl == net {
					out[i] = ci
				}
			}
		}
		return out
	}
	oPos, tPos, opPos := posOf(po), posOf(pt), posOf(pop)
	irToHW := func(op program.OpCode) (int, bool) {
		switch {
		case op >= program.Add && op <= program.Xor:
			return int(op - program.Add), true
		case op >= program.Eq && op <= program.Gts:
			return int(op - program.Eq), true
		default:
			return 0, false
		}
	}
	return func(c int, op program.OpCode, o, t uint64) (uint64, bool) {
		if c != compIdx {
			return 0, false
		}
		hw, ok := irToHW(op)
		if !ok {
			return 0, false
		}
		pat := make(atpg.Pattern, nc)
		fill := func(pos []int, v uint64) {
			for i, ci := range pos {
				if ci >= 0 {
					pat[ci] = uint8(v >> uint(i) & 1)
				}
			}
		}
		fill(oPos, o)
		fill(tPos, t)
		fill(opPos, uint64(hw))
		sim.LoadBlock([]atpg.Pattern{pat})
		if fault != nil {
			// Re-derive the faulty response: the good response is in the
			// simulator already; apply the fault's lane-0 flips.
			diffMask := sim.Detects(*fault)
			good := uint64(0)
			for i, net := range pres.Nets {
				if sim.GoodResponse(net)&1 == 1 {
					good |= 1 << uint(i)
				}
			}
			if diffMask&1 == 0 {
				return good, true // fault not excited by this input
			}
			// Recompute the exact faulty output word.
			return faultyResponse(sim, comb, pres, *fault), true
		}
		good := uint64(0)
		for i, net := range pres.Nets {
			if sim.GoodResponse(net)&1 == 1 {
				good |= 1 << uint(i)
			}
		}
		return good, true
	}, nil
}

// faultyResponse evaluates the loaded pattern against the injected fault
// and reads back the faulty result word (lane 0).
func faultyResponse(s *atpg.Simulator, comb *netlist.Netlist, pres netlist.Port, f atpg.Fault) uint64 {
	// Detects left the faulty cone values in the simulator's work array;
	// re-run to ensure freshness and read the faulty outputs.
	_ = s.Detects(f)
	var v uint64
	for i, net := range pres.Nets {
		if s.FaultyWord(net)&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// ProgramCampaign schedules the test program once on the architecture and
// replays it against every collapsed fault of the component's core,
// counting faults whose response dump differs from the fault-free run.
type ProgramCampaign struct {
	Cycles      int
	Moves       int
	Applied     int
	Skipped     int
	TotalFaults int
	Detected    int
}

// Coverage returns detected/total over the core's collapsed universe.
func (c *ProgramCampaign) Coverage() float64 {
	if c.TotalFaults == 0 {
		return 1
	}
	return float64(c.Detected) / float64(c.TotalFaults)
}

// RunProgramCampaign compiles, schedules and replays the functional test
// program of the component at compIdx of the architecture. maxFaults > 0
// subsamples the universe evenly (full campaigns over large components are
// expensive; the subsample preserves the coverage estimate).
func RunProgramCampaign(arch *tta.Architecture, compIdx int, comp *gatelib.Component, cfg atpg.Config, maxFaults int) (*ProgramCampaign, error) {
	kind := arch.Components[compIdx].Kind
	res, err := atpg.RunContext(context.Background(), comp.Comb, cfg)
	if err != nil {
		return nil, err
	}
	tp, err := BuildTestProgram(kind, comp.Comb, res.Patterns, arch.Width)
	if err != nil {
		return nil, err
	}
	schedRes, err := sched.ScheduleContext(context.Background(), tp.Graph, arch, sched.Options{})
	if err != nil {
		return nil, err
	}
	camp := &ProgramCampaign{
		Cycles:  schedRes.Cycles,
		Moves:   len(schedRes.Moves),
		Applied: tp.Applied,
		Skipped: tp.Skipped,
	}

	// Fault-free baseline dump.
	goodExec, err := NetlistExec(compIdx, comp, nil)
	if err != nil {
		return nil, err
	}
	baseline, err := runDump(schedRes, tp, goodExec)
	if err != nil {
		return nil, err
	}

	u := atpg.NewUniverse(comp.Comb)
	faults := u.Faults
	if maxFaults > 0 && len(faults) > maxFaults {
		stride := len(faults) / maxFaults
		var sampled []atpg.Fault
		for i := 0; i < len(faults); i += stride {
			sampled = append(sampled, faults[i])
		}
		faults = sampled
	}
	camp.TotalFaults = len(faults)
	for _, f := range faults {
		fault := f
		exec, err := NetlistExec(compIdx, comp, &fault)
		if err != nil {
			return nil, err
		}
		dump, err := runDump(schedRes, tp, exec)
		if err != nil {
			return nil, err
		}
		for i := range baseline {
			if dump[i] != baseline[i] {
				camp.Detected++
				break
			}
		}
	}
	return camp, nil
}

// runDump executes the scheduled test program and returns the response
// dump region.
func runDump(schedRes *sched.Result, tp *TestProgram, exec func(int, program.OpCode, uint64, uint64) (uint64, bool)) ([]uint64, error) {
	mem := program.Memory{}
	if _, err := sim.Run(schedRes, nil, mem, sim.Options{ExecOverride: exec}); err != nil {
		return nil, err
	}
	out := make([]uint64, tp.Applied)
	for i := range out {
		out[i] = mem[DumpBase+uint64(i)]
	}
	return out, nil
}
