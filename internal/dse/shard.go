// Process-sharded exploration: the candidate list is a pure function of
// the Config (exhaustive enumeration, or the GA screen whose rng lives
// on the control thread and whose cheap tier is a pure function of the
// netlist), so N worker processes can each derive the identical list,
// evaluate a deterministic contiguous slice of it, and persist the
// result as a shard checkpoint (Config.Shard + OpenCheckpoint). This
// file is the other half: MergeExploreContext re-derives the list,
// validates that the shard files tile the candidate space exactly, and
// rebuilds fronts and selection in canonical index order — so the merged
// result is byte-identical to the unsharded run at any topology.
package dse

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/gatelib"
	"repro/internal/pareto"
	"repro/internal/tta"
)

// ShardRange names one worker's slot in a process-sharded exploration:
// the run evaluates candidates [Index*total/Count, (Index+1)*total/Count)
// of the deterministic candidate list.
type ShardRange struct {
	Count int // number of shards (>= 1)
	Index int // this worker's shard, in [0, Count)
}

// shardBounds returns the contiguous candidate range of one shard. The
// classic balanced split: ranges tile [0, total) exactly, sizes differ
// by at most one, and every process computes the same answer from the
// same three integers.
func shardBounds(total, count, index int) (lo, hi int) {
	return index * total / count, (index + 1) * total / count
}

// ShardMergeError reports a shard checkpoint file the merge rejected.
type ShardMergeError struct {
	Path   string
	Reason string
	Err    error
}

func (e *ShardMergeError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("dse: shard checkpoint %s: %s: %v", e.Path, e.Reason, e.Err)
	}
	return fmt.Sprintf("dse: shard checkpoint %s: %s", e.Path, e.Reason)
}

func (e *ShardMergeError) Unwrap() error { return e.Err }

// MergeExploreContext merges the shard checkpoint files written by the
// workers of a sharded exploration of cfg into one complete Result,
// byte-identical (through core.Study.JSONResult, and in every exported
// field) to what an unsharded ExploreContext of the same cfg returns.
//
// The merge re-derives the candidate list from cfg, demands that the
// files' shard ranges tile it exactly (duplicated, overlapping or
// missing ranges are rejected, as is an incomplete shard — resume that
// worker from its own checkpoint first), reconstitutes every candidate,
// and rebuilds the fronts through pareto.StreamingFront in ascending
// candidate order. StreamingFront keeps duplicate coordinate vectors and
// returns IDs in ascending order — exactly the batch pareto.Front +
// sort convention of the unsharded path, which is what makes the fronts
// (and hence selection) identical.
//
// Each reconstituted candidate is announced on cfg.EventSink as an
// EventRestored (canonical index order), followed by the usual single
// EventDone, so live-front consumers see a merge exactly like a resumed
// run. cfg.Checkpoint is ignored; cfg.Shard must be nil.
func MergeExploreContext(ctx context.Context, cfg Config, paths []string) (*Result, error) {
	em := newEmitter(cfg.EventSink)
	nEvents := &atomic.Int64{}
	total := 0
	defer func() {
		em.emit(Event{Kind: EventDone, N: int(nEvents.Load()), Total: total})
	}()
	if cfg.Shard != nil {
		return nil, fmt.Errorf("dse: the merge runs unsharded (Config.Shard must be nil)")
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("dse: merge needs at least one shard checkpoint file")
	}
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	reg := cfg.Obs
	defer em.bridgeObs(reg)()
	root := reg.StartSpan("dse")
	defer root.End()
	res := &Result{Config: cfg, Selected: -1}

	archs, err := produceArchs(ctx, &cfg, root)
	if err != nil {
		return nil, err
	}
	total = len(archs)
	reg.Counter("dse.candidates.total").Add(int64(len(archs)))

	mergeSp := root.Child("merge")
	err = mergeShardFiles(&cfg, paths, archs, res, em, nEvents)
	mergeSp.End()
	if err != nil {
		return nil, err
	}
	reg.Counter("dse.shard.merged").Add(int64(len(paths)))

	paretoSp := root.Child("pareto")
	defer paretoSp.End()
	sf2 := pareto.NewStreamingFront(2)
	sf3 := pareto.NewStreamingFront(3)
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if !c.Feasible {
			continue
		}
		res.Feasible = append(res.Feasible, i)
		if _, _, err := sf2.Insert(pareto.Point{ID: i, Coords: []float64{c.Area, c.ExecTime}}); err != nil {
			return res, fmt.Errorf("dse: merge front insert (candidate %d): %w", i, err)
		}
		if _, _, err := sf3.Insert(pareto.Point{ID: i, Coords: c.Coords()}); err != nil {
			return res, fmt.Errorf("dse: merge front insert (candidate %d): %w", i, err)
		}
	}
	if len(res.Feasible) == 0 {
		return res, fmt.Errorf("dse: no feasible candidate in the explored space")
	}
	res.Front2D = sf2.IDs()
	res.Front3D = sf3.IDs()
	if err := res.Reselect(SelectionSpec{}); err != nil {
		return res, err
	}
	paretoSp.End()

	if cfg.VerifySelected && res.Selected >= 0 && ctx.Err() == nil {
		simSp := root.Child("sim")
		err := verifySelected(ctx, &cfg, res)
		simSp.End()
		if err != nil {
			return res, fmt.Errorf("dse: selected-candidate verification: %w", err)
		}
		res.Verified = true
	}
	return res, nil
}

// mergeShardFiles loads and validates the shard checkpoints and fills
// res.Candidates. Validation is strict: every file must carry this
// exploration's header and a shard header, the ranges must tile
// [0, len(archs)) with no gap, overlap or duplicate, every entry must
// name a candidate inside its file's range, and every index of every
// range must have an entry.
func mergeShardFiles(cfg *Config, paths []string, archs []*tta.Architecture, res *Result, em *emitter, nEvents *atomic.Int64) error {
	want := checkpointFile{
		Version:  CheckpointFormatVersion,
		Library:  gatelib.LibraryKey,
		Width:    cfg.Width,
		Seed:     cfg.Seed,
		Workload: workloadSignature(cfg),
		SpecHash: cfg.SpecHash,
	}
	type shardInput struct {
		path  string
		shard checkpointShard
		file  checkpointFile
	}
	var inputs []shardInput
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return &ShardMergeError{Path: path, Reason: "read", Err: err}
		}
		f, rec, derr := decodeCheckpointData(data)
		if derr != nil {
			return &ShardMergeError{Path: path, Reason: "decode", Err: derr}
		}
		if rec.Torn {
			// A worker whose final flush succeeded leaves a fully valid
			// file; a torn one means the worker died mid-write. The merge
			// demands completeness, so surface the tear with a resume hint
			// instead of a confusing missing-entry error downstream.
			return &ShardMergeError{Path: path, Reason: fmt.Sprintf(
				"torn file (%s) — resume that worker from this checkpoint, then merge again", rec.Cause)}
		}
		for _, m := range []struct{ field, want, got string }{
			{"format version", fmt.Sprint(want.Version), fmt.Sprint(f.Version)},
			{"library key", want.Library, f.Library},
			{"width", fmt.Sprint(want.Width), fmt.Sprint(f.Width)},
			{"seed", fmt.Sprint(want.Seed), fmt.Sprint(f.Seed)},
			{"workload", want.Workload, f.Workload},
		} {
			if m.want != m.got {
				return &ShardMergeError{Path: path, Reason: "header mismatch",
					Err: &CheckpointMismatchError{Field: m.field, Want: m.want, Got: m.got}}
			}
		}
		if want.SpecHash != "" && f.SpecHash != "" && want.SpecHash != f.SpecHash {
			return &ShardMergeError{Path: path, Reason: "header mismatch",
				Err: &CheckpointMismatchError{Field: "spec hash", Want: want.SpecHash, Got: f.SpecHash}}
		}
		if f.Shard == nil {
			return &ShardMergeError{Path: path, Reason: "not a shard checkpoint (no shard header)"}
		}
		s := *f.Shard
		if s.Total != len(archs) {
			return &ShardMergeError{Path: path, Reason: fmt.Sprintf(
				"covers a %d-candidate space, but this config produces %d candidates", s.Total, len(archs))}
		}
		if s.Lo < 0 || s.Hi < s.Lo || s.Hi > s.Total {
			return &ShardMergeError{Path: path, Reason: fmt.Sprintf("invalid range [%d,%d) of %d", s.Lo, s.Hi, s.Total)}
		}
		inputs = append(inputs, shardInput{path: path, shard: s, file: f})
	}

	// The ranges must tile the candidate space: sorted by (Lo, Hi), each
	// must begin exactly where the previous ended. A duplicated or
	// overlapping range trips the "overlaps" case; a gap the "not
	// covered" case. Zero-length ranges (more shards than candidates)
	// are legal and contribute nothing.
	sorted := append([]shardInput(nil), inputs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].shard, sorted[j].shard
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
	cur := 0
	for _, in := range sorted {
		switch {
		case in.shard.Lo < cur:
			return &ShardMergeError{Path: in.path, Reason: fmt.Sprintf(
				"range [%d,%d) overlaps another shard's", in.shard.Lo, in.shard.Hi)}
		case in.shard.Lo > cur:
			return fmt.Errorf("dse: shard merge: candidates [%d,%d) are covered by no shard checkpoint", cur, in.shard.Lo)
		}
		cur = in.shard.Hi
	}
	if cur != len(archs) {
		return fmt.Errorf("dse: shard merge: candidates [%d,%d) are covered by no shard checkpoint", cur, len(archs))
	}

	keyIndex := make(map[string]int, len(archs))
	for i, a := range archs {
		keyIndex[checkpointKey(a)] = i
	}
	res.Candidates = make([]Candidate, len(archs))
	filled := make([]bool, len(archs))
	for _, in := range inputs {
		for k, e := range in.file.Entries {
			if err := validCheckpointEntry(e); err != nil {
				return &ShardMergeError{Path: in.path, Reason: fmt.Sprintf("entry %q", k), Err: err}
			}
			idx, ok := keyIndex[k]
			if !ok {
				return &ShardMergeError{Path: in.path, Reason: fmt.Sprintf(
					"entry %q matches no candidate this config produces", k)}
			}
			if idx < in.shard.Lo || idx >= in.shard.Hi {
				return &ShardMergeError{Path: in.path, Reason: fmt.Sprintf(
					"entry for candidate %d lies outside the file's range [%d,%d)", idx, in.shard.Lo, in.shard.Hi)}
			}
			res.Candidates[idx] = e.candidate(archs[idx])
			filled[idx] = true
		}
	}
	for _, in := range inputs {
		for i := in.shard.Lo; i < in.shard.Hi; i++ {
			if !filled[i] {
				return &ShardMergeError{Path: in.path, Reason: fmt.Sprintf(
					"incomplete shard: candidate %d (%s) has no entry — resume that worker from this checkpoint, then merge again",
					i, archs[i].Name)}
			}
		}
	}

	// Announce the reconstituted candidates in canonical index order, so
	// a live-front consumer of the merge sees the same stream a resumed
	// unsharded run would emit.
	for i := range res.Candidates {
		c := &res.Candidates[i]
		em.emit(Event{
			Kind:      EventRestored,
			Msg:       candidateEventMsg(archs[i], c, nil),
			N:         i + 1,
			Total:     len(archs),
			Candidate: candidateUpdate(i, archs[i], c, nil),
		})
		nEvents.Add(1)
	}
	return nil
}
