// Checkpoint/resume for long explorations: completed candidate
// evaluations are periodically persisted to a versioned JSON file, so a
// run killed mid-sweep (power loss, OOM, operator ^C) resumes from the
// finished prefix instead of re-measuring every gate-level ATPG run.
//
// The file is keyed by everything that determines a candidate's value:
// the checkpoint format version, the gate-level library generation
// (gatelib.LibraryKey), the data-path width, the ATPG seed and a weak
// workload signature (name, width, input and op counts, repetitions).
// Entries are keyed by structKey(arch) plus the architecture name —
// the name embeds the enumeration id, the structure knobs and the
// port-assignment strategy, so no two distinct candidates collide and a
// resumed run restores exactly the evaluations it would have recomputed.
//
// Every persisted field round-trips exactly through JSON (integers, and
// floats via Go's shortest-representation encoding), so a resumed
// exploration is byte-identical to an uninterrupted one.
package dse

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/tta"
)

// CheckpointFormatVersion is the on-disk checkpoint format version.
// Bump it whenever the entry layout or the meaning of a field changes.
const CheckpointFormatVersion = 1

// checkpointFlushEvery bounds the work lost to a crash: the file is
// rewritten after this many newly recorded evaluations (and once more on
// completion).
const checkpointFlushEvery = 16

// checkpointFile is the serialized form. SpecHash and Shard were added
// for process-sharded exploration without bumping the format version:
// both are omitempty, so a pre-shard file decodes as an unsharded
// checkpoint with an unknown spec, exactly what it is.
type checkpointFile struct {
	Version  int    `json:"version"`
	Library  string `json:"library"`
	Width    int    `json:"width"`
	Seed     int64  `json:"seed"`
	Workload string `json:"workload"`

	// SpecHash is jobspec.Spec.Hash() of the job that wrote the file —
	// the topology-independent result identity. Empty when the writer
	// predates sharding or ran outside a spec (direct Config use).
	SpecHash string `json:"spec_hash,omitempty"`

	// Shard, when non-nil, marks the file as one shard's output and makes
	// it a merge input: it holds exactly the evaluations for candidate
	// indices [Lo, Hi) of a Total-candidate space split Shards ways.
	Shard *checkpointShard `json:"shard,omitempty"`

	Entries map[string]checkpointEntry `json:"entries"`
}

// checkpointShard is the shard header: which contiguous slice of the
// deterministic candidate list this file covers.
type checkpointShard struct {
	Shards int `json:"shards"`
	Index  int `json:"index"`
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`
	Total  int `json:"total"`
}

func (s checkpointShard) String() string {
	return fmt.Sprintf("shard %d/%d [%d,%d) of %d", s.Index, s.Shards, s.Lo, s.Hi, s.Total)
}

// checkpointEntry is one completed candidate evaluation — every
// Candidate field except the architecture pointer, which the resuming
// run re-derives from the (deterministic) enumeration.
type checkpointEntry struct {
	Feasible bool    `json:"feasible"`
	Reason   string  `json:"reason,omitempty"`
	Area     float64 `json:"area"`
	Cycles   int     `json:"cycles"`
	Clock    float64 `json:"clock"`
	ExecTime float64 `json:"exec_time"`
	TestCost int     `json:"test_cost"`
	FullScan int     `json:"full_scan"`
	Spills   int     `json:"spills"`
	Energy   float64 `json:"energy"`
	Degraded bool    `json:"degraded,omitempty"`
}

func toCheckpointEntry(c *Candidate) checkpointEntry {
	return checkpointEntry{
		Feasible: c.Feasible, Reason: c.Reason,
		Area: c.Area, Cycles: c.Cycles, Clock: c.Clock, ExecTime: c.ExecTime,
		TestCost: c.TestCost, FullScan: c.FullScan, Spills: c.Spills,
		Energy: c.Energy, Degraded: c.Degraded,
	}
}

// candidate reconstitutes the evaluation for arch.
func (e checkpointEntry) candidate(arch *tta.Architecture) Candidate {
	return Candidate{
		Arch:     arch,
		Feasible: e.Feasible, Reason: e.Reason,
		Area: e.Area, Cycles: e.Cycles, Clock: e.Clock, ExecTime: e.ExecTime,
		TestCost: e.TestCost, FullScan: e.FullScan, Spills: e.Spills,
		Energy: e.Energy, Degraded: e.Degraded,
	}
}

// checkpointKey identifies one candidate: the structural signature plus
// the architecture name (which embeds the enumeration id and the
// port-assignment variant).
func checkpointKey(a *tta.Architecture) string {
	return structKey(a) + "|" + a.Name
}

// CheckpointMismatchError reports a structurally valid checkpoint file
// written by a different exploration (library generation, width, seed or
// workload). The returned Checkpoint starts fresh; callers typically
// warn and let the run overwrite the file.
type CheckpointMismatchError struct {
	Field string
	Want  string
	Got   string
}

func (e *CheckpointMismatchError) Error() string {
	return fmt.Sprintf("dse: checkpoint %s mismatch: file has %s, run wants %s", e.Field, e.Got, e.Want)
}

// CheckpointCorruptError reports a checkpoint file that could not be
// decoded or failed structural validation. The returned Checkpoint
// starts fresh; callers typically warn and let the run overwrite it.
type CheckpointCorruptError struct {
	Reason string
	Err    error
}

func (e *CheckpointCorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("dse: corrupt checkpoint (%s): %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("dse: corrupt checkpoint (%s)", e.Reason)
}

func (e *CheckpointCorruptError) Unwrap() error { return e.Err }

// Checkpoint persists completed candidate evaluations across runs.
// Obtain one with OpenCheckpoint and hand it to Config.Checkpoint; the
// exploration restores matching entries before evaluating and records
// new ones as workers finish (flushing every few completions and once at
// the end). Methods are safe for concurrent use by the worker pool.
type Checkpoint struct {
	mu         sync.Mutex
	path       string
	header     checkpointFile // Entries nil; header fields only
	entries    map[string]checkpointEntry
	sinceFlush int

	// loadedShard is the shard header of the file that was resumed from
	// (zero when fresh or unsharded); setShard cross-checks it against
	// the range the run actually computes.
	loadedShard checkpointShard

	obs    *obs.Registry
	inject *faultinject.Injector
}

// matchShardHeader rejects opening a shard checkpoint from an unsharded
// run and vice versa, and any topology drift between the file and the
// run. A fresh file (got == nil is only reached with data present) must
// agree on Shards and Index; Lo/Hi/Total are validated later by setShard
// once the candidate count is known.
func matchShardHeader(want, got *checkpointShard) error {
	describe := func(s *checkpointShard) string {
		if s == nil {
			return "unsharded"
		}
		return fmt.Sprintf("shard %d/%d", s.Index, s.Shards)
	}
	if (want == nil) != (got == nil) {
		return &CheckpointMismatchError{Field: "shard topology", Want: describe(want), Got: describe(got)}
	}
	if want != nil && (want.Shards != got.Shards || want.Index != got.Index) {
		return &CheckpointMismatchError{Field: "shard topology", Want: describe(want), Got: describe(got)}
	}
	return nil
}

// setShard stamps the computed candidate range onto the checkpoint
// header before any restore or record. If the file this checkpoint was
// resumed from recorded a different range (the candidate space changed
// under the same weak workload signature), the loaded entries are
// dropped — resuming them could silently restore evaluations from
// outside this shard's slice.
func (ck *Checkpoint) setShard(s checkpointShard) {
	if ck == nil {
		return
	}
	ck.mu.Lock()
	ck.header.Shard = &s
	stale := len(ck.entries) > 0 && ck.loadedShard.Total != 0 && ck.loadedShard != s
	if stale {
		ck.entries = make(map[string]checkpointEntry)
	}
	reg := ck.obs
	loaded := ck.loadedShard
	ck.mu.Unlock()
	if stale {
		reg.Counter("dse.checkpoint.shard_range_drops").Inc()
		reg.Emit(obs.Event{Kind: "warning", Msg: fmt.Sprintf(
			"checkpoint range changed (%s, run wants %s); dropping restored entries", loaded, s)})
	}
}

// workloadSignature is the weak identity a checkpoint binds to: enough
// to reject a file recorded against a different kernel without hashing
// the whole graph.
func workloadSignature(cfg *Config) string {
	g := cfg.Workload
	if g == nil {
		return fmt.Sprintf("default/reps%d", cfg.WorkloadReps)
	}
	return fmt.Sprintf("%s/w%d/in%d/ops%d/reps%d", g.Name, g.Width, g.NumInputs(), g.NumOps(), cfg.WorkloadReps)
}

// OpenCheckpoint opens (or initializes) the checkpoint file at path for
// an exploration under cfg. A missing file yields a fresh checkpoint and
// a nil error. A header mismatch or a corrupt file also yields a usable
// fresh checkpoint, alongside a *CheckpointMismatchError or
// *CheckpointCorruptError the caller can surface as a warning — the
// stale file is overwritten at the first flush.
func OpenCheckpoint(path string, cfg Config) (*Checkpoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		path: path,
		header: checkpointFile{
			Version:  CheckpointFormatVersion,
			Library:  gatelib.LibraryKey,
			Width:    cfg.Width,
			Seed:     cfg.Seed,
			Workload: workloadSignature(&cfg),
			SpecHash: cfg.SpecHash,
		},
		entries: make(map[string]checkpointEntry),
		obs:     cfg.Obs,
		inject:  cfg.Inject,
	}
	if cfg.Shard != nil {
		// Lo/Hi/Total are unknown until the candidate list exists;
		// ExploreContext fills them in via setShard.
		ck.header.Shard = &checkpointShard{Shards: cfg.Shard.Count, Index: cfg.Shard.Index}
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ck, nil
	}
	if err != nil {
		return ck, &CheckpointCorruptError{Reason: "read", Err: err}
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return ck, &CheckpointCorruptError{Reason: "decode", Err: err}
	}
	for _, m := range []struct{ field, want, got string }{
		{"format version", fmt.Sprint(ck.header.Version), fmt.Sprint(f.Version)},
		{"library key", ck.header.Library, f.Library},
		{"width", fmt.Sprint(ck.header.Width), fmt.Sprint(f.Width)},
		{"seed", fmt.Sprint(ck.header.Seed), fmt.Sprint(f.Seed)},
		{"workload", ck.header.Workload, f.Workload},
	} {
		if m.want != m.got {
			return ck, &CheckpointMismatchError{Field: m.field, Want: m.want, Got: m.got}
		}
	}
	// Spec hashes bind only when both sides carry one: files written by
	// pre-shard builds (or direct Config runs) have no hash and stay
	// loadable, guarded by the weaker header fields above.
	if ck.header.SpecHash != "" && f.SpecHash != "" && ck.header.SpecHash != f.SpecHash {
		return ck, &CheckpointMismatchError{Field: "spec hash", Want: ck.header.SpecHash, Got: f.SpecHash}
	}
	if err := matchShardHeader(ck.header.Shard, f.Shard); err != nil {
		return ck, err
	}
	if f.Shard != nil {
		ck.loadedShard = *f.Shard
	}
	for k, e := range f.Entries {
		if err := validCheckpointEntry(e); err != nil {
			return ck, &CheckpointCorruptError{Reason: fmt.Sprintf("entry %q", k), Err: err}
		}
	}
	for k, e := range f.Entries {
		ck.entries[k] = e
	}
	return ck, nil
}

// validCheckpointEntry rejects values no honest flush could have
// produced — the structural screen behind CheckpointCorruptError.
func validCheckpointEntry(e checkpointEntry) error {
	if e.Cycles < 0 || e.TestCost < 0 || e.FullScan < 0 || e.Spills < 0 {
		return fmt.Errorf("negative count")
	}
	for _, v := range [...]float64{e.Area, e.Clock, e.ExecTime, e.Energy} {
		if v != v || v < 0 { // NaN or negative
			return fmt.Errorf("invalid float %v", v)
		}
	}
	if e.Feasible && e.Reason != "" {
		return fmt.Errorf("feasible entry carries an infeasibility reason")
	}
	return nil
}

// Len reports how many completed evaluations the checkpoint holds.
func (ck *Checkpoint) Len() int {
	if ck == nil {
		return 0
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return len(ck.entries)
}

// bind attaches the exploration's observability registry and injector
// (ExploreContext calls it after fillDefaults, so a checkpoint opened
// before the registry existed still reports restores and flush trouble).
func (ck *Checkpoint) bind(reg *obs.Registry, inj *faultinject.Injector) {
	if ck == nil {
		return
	}
	ck.mu.Lock()
	if ck.obs == nil {
		ck.obs = reg
	}
	if ck.inject == nil {
		ck.inject = inj
	}
	ck.mu.Unlock()
}

// lookup returns the persisted evaluation for key, if any.
func (ck *Checkpoint) lookup(key string) (checkpointEntry, bool) {
	if ck == nil {
		return checkpointEntry{}, false
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	e, ok := ck.entries[key]
	return e, ok
}

// record persists one completed evaluation, rewriting the file every
// checkpointFlushEvery new entries. A flush failure is a warning, not a
// run failure: the exploration's result does not depend on the file.
func (ck *Checkpoint) record(key string, c *Candidate) {
	if ck == nil {
		return
	}
	ck.mu.Lock()
	if _, ok := ck.entries[key]; !ok {
		ck.entries[key] = toCheckpointEntry(c)
		ck.sinceFlush++
	}
	flush := ck.sinceFlush >= checkpointFlushEvery
	if flush {
		ck.sinceFlush = 0
	}
	ck.mu.Unlock()
	if flush {
		ck.Flush()
	}
}

// Flush rewrites the checkpoint file atomically (temp file + rename).
// Errors are reported as an obs warning and swallowed: losing a
// checkpoint write must never kill the run it exists to protect.
func (ck *Checkpoint) Flush() {
	if ck == nil {
		return
	}
	if err := ck.flush(); err != nil {
		ck.obs.Counter("dse.checkpoint.write_errors").Inc()
		ck.obs.Emit(obs.Event{Kind: "warning", Msg: fmt.Sprintf("checkpoint flush failed: %v", err)})
	}
}

func (ck *Checkpoint) flush() error {
	ck.mu.Lock()
	f := ck.header
	f.Entries = make(map[string]checkpointEntry, len(ck.entries))
	for k, e := range ck.entries {
		f.Entries[k] = e
	}
	inj := ck.inject
	ck.mu.Unlock()
	if err := inj.Hit(faultinject.Checkpoint); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&f, "", "  ") // map keys marshal sorted: deterministic bytes
	if err != nil {
		return err
	}
	tmp := ck.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, ck.path)
}
