// Checkpoint/resume for long explorations: completed candidate
// evaluations are periodically persisted to a versioned JSON file, so a
// run killed mid-sweep (power loss, OOM, operator ^C) resumes from the
// finished prefix instead of re-measuring every gate-level ATPG run.
//
// On disk a checkpoint is a sequence of CRC32C-framed records (package
// durable): one compact header record, then one record per entry in
// sorted key order. Writes go through an fsync-before-rename atomic
// path, and a torn or bit-flipped file loads its longest valid record
// prefix — the run resumes from the last intact evaluation instead of
// going cold. Files written by pre-framing builds (one indented JSON
// document) still load, flagged by a one-time legacy-format obs event;
// files that yield no usable prefix are quarantined as *.corrupt and
// reported as a typed durable.CorruptArtifactError.
//
// The file is keyed by everything that determines a candidate's value:
// the checkpoint format version, the gate-level library generation
// (gatelib.LibraryKey), the data-path width, the ATPG seed and a weak
// workload signature (name, width, input and op counts, repetitions).
// Entries are keyed by structKey(arch) plus the architecture name —
// the name embeds the enumeration id, the structure knobs and the
// port-assignment strategy, so no two distinct candidates collide and a
// resumed run restores exactly the evaluations it would have recomputed.
//
// Every persisted field round-trips exactly through JSON (integers, and
// floats via Go's shortest-representation encoding), so a resumed
// exploration is byte-identical to an uninterrupted one.
package dse

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/durable"
	"repro/internal/faultinject"
	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/tta"
)

// CheckpointFormatVersion is the on-disk checkpoint format version.
// Bump it whenever the entry layout or the meaning of a field changes.
const CheckpointFormatVersion = 1

// checkpointFlushEvery bounds the work lost to a crash: the file is
// rewritten after this many newly recorded evaluations (and once more on
// completion).
const checkpointFlushEvery = 16

// checkpointFile is the serialized form. SpecHash and Shard were added
// for process-sharded exploration without bumping the format version:
// both are omitempty, so a pre-shard file decodes as an unsharded
// checkpoint with an unknown spec, exactly what it is.
type checkpointFile struct {
	Version  int    `json:"version"`
	Library  string `json:"library"`
	Width    int    `json:"width"`
	Seed     int64  `json:"seed"`
	Workload string `json:"workload"`

	// SpecHash is jobspec.Spec.Hash() of the job that wrote the file —
	// the topology-independent result identity. Empty when the writer
	// predates sharding or ran outside a spec (direct Config use).
	SpecHash string `json:"spec_hash,omitempty"`

	// Shard, when non-nil, marks the file as one shard's output and makes
	// it a merge input: it holds exactly the evaluations for candidate
	// indices [Lo, Hi) of a Total-candidate space split Shards ways.
	Shard *checkpointShard `json:"shard,omitempty"`

	// Entries is populated in the legacy whole-document format and left
	// empty in the framed header record (entries follow as records).
	Entries map[string]checkpointEntry `json:"entries,omitempty"`
}

// checkpointRecord is one framed entry record: the candidate key and its
// completed evaluation, compact JSON on a single line.
type checkpointRecord struct {
	Key   string          `json:"k"`
	Entry checkpointEntry `json:"e"`
}

// checkpointShard is the shard header: which contiguous slice of the
// deterministic candidate list this file covers.
type checkpointShard struct {
	Shards int `json:"shards"`
	Index  int `json:"index"`
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`
	Total  int `json:"total"`
}

func (s checkpointShard) String() string {
	return fmt.Sprintf("shard %d/%d [%d,%d) of %d", s.Index, s.Shards, s.Lo, s.Hi, s.Total)
}

// checkpointEntry is one completed candidate evaluation — every
// Candidate field except the architecture pointer, which the resuming
// run re-derives from the (deterministic) enumeration.
type checkpointEntry struct {
	Feasible bool    `json:"feasible"`
	Reason   string  `json:"reason,omitempty"`
	Area     float64 `json:"area"`
	Cycles   int     `json:"cycles"`
	Clock    float64 `json:"clock"`
	ExecTime float64 `json:"exec_time"`
	TestCost int     `json:"test_cost"`
	FullScan int     `json:"full_scan"`
	Spills   int     `json:"spills"`
	Energy   float64 `json:"energy"`
	Degraded bool    `json:"degraded,omitempty"`
}

func toCheckpointEntry(c *Candidate) checkpointEntry {
	return checkpointEntry{
		Feasible: c.Feasible, Reason: c.Reason,
		Area: c.Area, Cycles: c.Cycles, Clock: c.Clock, ExecTime: c.ExecTime,
		TestCost: c.TestCost, FullScan: c.FullScan, Spills: c.Spills,
		Energy: c.Energy, Degraded: c.Degraded,
	}
}

// candidate reconstitutes the evaluation for arch.
func (e checkpointEntry) candidate(arch *tta.Architecture) Candidate {
	return Candidate{
		Arch:     arch,
		Feasible: e.Feasible, Reason: e.Reason,
		Area: e.Area, Cycles: e.Cycles, Clock: e.Clock, ExecTime: e.ExecTime,
		TestCost: e.TestCost, FullScan: e.FullScan, Spills: e.Spills,
		Energy: e.Energy, Degraded: e.Degraded,
	}
}

// checkpointKey identifies one candidate: the structural signature plus
// the architecture name (which embeds the enumeration id and the
// port-assignment variant).
func checkpointKey(a *tta.Architecture) string {
	return structKey(a) + "|" + a.Name
}

// CheckpointMismatchError reports a structurally valid checkpoint file
// written by a different exploration (library generation, width, seed or
// workload). The returned Checkpoint starts fresh; callers typically
// warn and let the run overwrite the file.
type CheckpointMismatchError struct {
	Field string
	Want  string
	Got   string
}

func (e *CheckpointMismatchError) Error() string {
	return fmt.Sprintf("dse: checkpoint %s mismatch: file has %s, run wants %s", e.Field, e.Got, e.Want)
}

// CheckpointCorruptError reports a checkpoint file that could not be
// decoded or failed structural validation. The returned Checkpoint
// starts fresh; callers typically warn and let the run overwrite it.
type CheckpointCorruptError struct {
	Reason string
	Err    error
}

func (e *CheckpointCorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("dse: corrupt checkpoint (%s): %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("dse: corrupt checkpoint (%s)", e.Reason)
}

func (e *CheckpointCorruptError) Unwrap() error { return e.Err }

// Checkpoint persists completed candidate evaluations across runs.
// Obtain one with OpenCheckpoint and hand it to Config.Checkpoint; the
// exploration restores matching entries before evaluating and records
// new ones as workers finish (flushing every few completions and once at
// the end). Methods are safe for concurrent use by the worker pool.
type Checkpoint struct {
	mu         sync.Mutex
	flushMu    sync.Mutex // serializes flush snapshot+write; acquired before mu, never while holding it
	path       string
	header     checkpointFile // Entries nil; header fields only
	entries    map[string]checkpointEntry
	sinceFlush int

	// loadedShard is the shard header of the file that was resumed from
	// (zero when fresh or unsharded); setShard cross-checks it against
	// the range the run actually computes.
	loadedShard checkpointShard

	obs    *obs.Registry
	inject *faultinject.Injector
}

// matchShardHeader rejects opening a shard checkpoint from an unsharded
// run and vice versa, and any topology drift between the file and the
// run. A fresh file (got == nil is only reached with data present) must
// agree on Shards and Index; Lo/Hi/Total are validated later by setShard
// once the candidate count is known.
func matchShardHeader(want, got *checkpointShard) error {
	describe := func(s *checkpointShard) string {
		if s == nil {
			return "unsharded"
		}
		return fmt.Sprintf("shard %d/%d", s.Index, s.Shards)
	}
	if (want == nil) != (got == nil) {
		return &CheckpointMismatchError{Field: "shard topology", Want: describe(want), Got: describe(got)}
	}
	if want != nil && (want.Shards != got.Shards || want.Index != got.Index) {
		return &CheckpointMismatchError{Field: "shard topology", Want: describe(want), Got: describe(got)}
	}
	return nil
}

// setShard stamps the computed candidate range onto the checkpoint
// header before any restore or record. If the file this checkpoint was
// resumed from recorded a different range (the candidate space changed
// under the same weak workload signature), the loaded entries are
// dropped — resuming them could silently restore evaluations from
// outside this shard's slice.
func (ck *Checkpoint) setShard(s checkpointShard) {
	if ck == nil {
		return
	}
	ck.mu.Lock()
	ck.header.Shard = &s
	stale := len(ck.entries) > 0 && ck.loadedShard.Total != 0 && ck.loadedShard != s
	if stale {
		ck.entries = make(map[string]checkpointEntry)
	}
	reg := ck.obs
	loaded := ck.loadedShard
	ck.mu.Unlock()
	if stale {
		reg.Counter("dse.checkpoint.shard_range_drops").Inc()
		reg.Emit(obs.Event{Kind: "warning", Msg: fmt.Sprintf(
			"checkpoint range changed (%s, run wants %s); dropping restored entries", loaded, s)})
	}
}

// workloadSignature is the weak identity a checkpoint binds to: enough
// to reject a file recorded against a different kernel without hashing
// the whole graph.
func workloadSignature(cfg *Config) string {
	g := cfg.Workload
	if g == nil {
		return fmt.Sprintf("default/reps%d", cfg.WorkloadReps)
	}
	return fmt.Sprintf("%s/w%d/in%d/ops%d/reps%d", g.Name, g.Width, g.NumInputs(), g.NumOps(), cfg.WorkloadReps)
}

// OpenCheckpoint opens (or initializes) the checkpoint file at path for
// an exploration under cfg. A missing file yields a fresh checkpoint and
// a nil error. A header mismatch or a corrupt file also yields a usable
// fresh checkpoint, alongside a *CheckpointMismatchError or
// *CheckpointCorruptError the caller can surface as a warning — the
// stale file is overwritten at the first flush.
func OpenCheckpoint(path string, cfg Config) (*Checkpoint, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	ck := &Checkpoint{
		path: path,
		header: checkpointFile{
			Version:  CheckpointFormatVersion,
			Library:  gatelib.LibraryKey,
			Width:    cfg.Width,
			Seed:     cfg.Seed,
			Workload: workloadSignature(&cfg),
			SpecHash: cfg.SpecHash,
		},
		entries: make(map[string]checkpointEntry),
		obs:     cfg.Obs,
		inject:  cfg.Inject,
	}
	if cfg.Shard != nil {
		// Lo/Hi/Total are unknown until the candidate list exists;
		// ExploreContext fills them in via setShard.
		ck.header.Shard = &checkpointShard{Shards: cfg.Shard.Count, Index: cfg.Shard.Index}
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ck, nil
	}
	if err != nil {
		return ck, &CheckpointCorruptError{Reason: "read", Err: err}
	}
	f, rec, derr := decodeCheckpointData(data)
	reg := ck.obs
	if rec.CRCFail {
		reg.Counter("durability.crc_fail").Inc()
	}
	if derr != nil {
		return ck, ck.quarantine(&CheckpointCorruptError{Reason: "decode", Err: derr})
	}
	for _, m := range []struct{ field, want, got string }{
		{"format version", fmt.Sprint(ck.header.Version), fmt.Sprint(f.Version)},
		{"library key", ck.header.Library, f.Library},
		{"width", fmt.Sprint(ck.header.Width), fmt.Sprint(f.Width)},
		{"seed", fmt.Sprint(ck.header.Seed), fmt.Sprint(f.Seed)},
		{"workload", ck.header.Workload, f.Workload},
	} {
		if m.want != m.got {
			return ck, &CheckpointMismatchError{Field: m.field, Want: m.want, Got: m.got}
		}
	}
	// Spec hashes bind only when both sides carry one: files written by
	// pre-shard builds (or direct Config runs) have no hash and stay
	// loadable, guarded by the weaker header fields above.
	if ck.header.SpecHash != "" && f.SpecHash != "" && ck.header.SpecHash != f.SpecHash {
		return ck, &CheckpointMismatchError{Field: "spec hash", Want: ck.header.SpecHash, Got: f.SpecHash}
	}
	if err := matchShardHeader(ck.header.Shard, f.Shard); err != nil {
		return ck, err
	}
	if f.Shard != nil {
		ck.loadedShard = *f.Shard
	}
	for k, e := range f.Entries {
		if err := validCheckpointEntry(e); err != nil {
			return ck, ck.quarantine(&CheckpointCorruptError{Reason: fmt.Sprintf("entry %q", k), Err: err})
		}
	}
	for k, e := range f.Entries {
		ck.entries[k] = e
	}
	if rec.Torn {
		reg.Counter("durability.prefix_recovered").Inc()
		reg.Emit(obs.Event{Kind: "warning", Msg: fmt.Sprintf(
			"checkpoint %s was torn (%s); recovered %d entries from the valid prefix", path, rec.Cause, len(f.Entries))})
	}
	if rec.Legacy {
		reg.Counter("durability.legacy_loads").Inc()
		reg.Emit(obs.Event{Kind: "warning", Msg: fmt.Sprintf(
			"checkpoint %s is in the legacy (pre-CRC) format; the next flush rewrites it framed", path)})
	}
	return ck, nil
}

// quarantine moves an irrecoverable checkpoint file out of the way (to
// <path>.corrupt, preserving the evidence) and wraps cause in a
// *durable.CorruptArtifactError — the typed, obs-visible replacement for
// silently overwriting a damaged file at the next flush. errors.As still
// finds the wrapped *CheckpointCorruptError.
func (ck *Checkpoint) quarantine(cause *CheckpointCorruptError) error {
	q := durable.Quarantine(ck.path)
	ck.obs.Counter("durability.quarantined").Inc()
	err := &durable.CorruptArtifactError{Artifact: "checkpoint", Path: ck.path, QuarantinedTo: q, Err: cause}
	ck.obs.Emit(obs.Event{Kind: "warning", Msg: err.Error()})
	return err
}

// decodeCheckpointData parses either checkpoint format via
// durable.DecodeDocument. For a framed file it recovers the longest
// valid record prefix, reporting the damage in the recovery summary;
// the error return is reserved for files that yield nothing usable (no
// intact header record, or a legacy document that does not parse).
func decodeCheckpointData(data []byte) (checkpointFile, durable.Recovery, error) {
	var f checkpointFile
	rec, err := durable.DecodeDocument(data,
		func(doc []byte) error { return json.Unmarshal(doc, &f) },
		func(head []byte) error {
			if err := json.Unmarshal(head, &f); err != nil {
				return err
			}
			if f.Entries == nil {
				f.Entries = make(map[string]checkpointEntry)
			}
			return nil
		},
		func(p []byte) error {
			var r checkpointRecord
			if err := json.Unmarshal(p, &r); err != nil {
				return err
			}
			f.Entries[r.Key] = r.Entry
			return nil
		})
	return f, rec, err
}

// encodeCheckpoint renders f in the framed on-disk format: one compact
// header record, then one record per entry in sorted key order —
// deterministic bytes for identical content.
func encodeCheckpoint(f checkpointFile) ([]byte, error) {
	entries := f.Entries
	f.Entries = nil
	head, err := json.Marshal(&f)
	if err != nil {
		return nil, err
	}
	buf := durable.AppendRecord(nil, head)
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p, err := json.Marshal(&checkpointRecord{Key: k, Entry: entries[k]})
		if err != nil {
			return nil, err
		}
		buf = durable.AppendRecord(buf, p)
	}
	return buf, nil
}

// validCheckpointEntry rejects values no honest flush could have
// produced — the structural screen behind CheckpointCorruptError.
func validCheckpointEntry(e checkpointEntry) error {
	if e.Cycles < 0 || e.TestCost < 0 || e.FullScan < 0 || e.Spills < 0 {
		return fmt.Errorf("negative count")
	}
	for _, v := range [...]float64{e.Area, e.Clock, e.ExecTime, e.Energy} {
		if v != v || v < 0 { // NaN or negative
			return fmt.Errorf("invalid float %v", v)
		}
	}
	if e.Feasible && e.Reason != "" {
		return fmt.Errorf("feasible entry carries an infeasibility reason")
	}
	return nil
}

// Len reports how many completed evaluations the checkpoint holds.
func (ck *Checkpoint) Len() int {
	if ck == nil {
		return 0
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	return len(ck.entries)
}

// bind attaches the exploration's observability registry and injector
// (ExploreContext calls it after fillDefaults, so a checkpoint opened
// before the registry existed still reports restores and flush trouble).
func (ck *Checkpoint) bind(reg *obs.Registry, inj *faultinject.Injector) {
	if ck == nil {
		return
	}
	ck.mu.Lock()
	if ck.obs == nil {
		ck.obs = reg
	}
	if ck.inject == nil {
		ck.inject = inj
	}
	ck.mu.Unlock()
}

// lookup returns the persisted evaluation for key, if any.
func (ck *Checkpoint) lookup(key string) (checkpointEntry, bool) {
	if ck == nil {
		return checkpointEntry{}, false
	}
	ck.mu.Lock()
	defer ck.mu.Unlock()
	e, ok := ck.entries[key]
	return e, ok
}

// record persists one completed evaluation, rewriting the file every
// checkpointFlushEvery new entries. A flush failure is a warning, not a
// run failure: the exploration's result does not depend on the file.
func (ck *Checkpoint) record(key string, c *Candidate) {
	if ck == nil {
		return
	}
	ck.mu.Lock()
	if _, ok := ck.entries[key]; !ok {
		ck.entries[key] = toCheckpointEntry(c)
		ck.sinceFlush++
	}
	flush := ck.sinceFlush >= checkpointFlushEvery
	if flush {
		ck.sinceFlush = 0
	}
	ck.mu.Unlock()
	if flush {
		ck.Flush()
	}
}

// Flush rewrites the checkpoint file, reporting failure as an obs
// warning only: losing a mid-run checkpoint write must never kill the
// run it exists to protect. Periodic flushes skip the parent-directory
// fsync (it dominates the write cost, and an un-synced rename merely
// resurfaces the previous intact version after a power cut); use
// FlushErr where the file is a deliverable.
func (ck *Checkpoint) Flush() { ck.flushReport(false) }

// FlushErr rewrites the checkpoint file through the fully durable path
// (framed records, unique temp file, fsync, rename, directory fsync) and
// returns the write error after reporting it. Shard workers use the
// error form for their final flush: a torn interchange file must fail
// the worker — so the coordinator restarts it and the restart
// prefix-recovers — rather than hand the merge damaged input.
func (ck *Checkpoint) FlushErr() error { return ck.flushReport(true) }

func (ck *Checkpoint) flushReport(dirSync bool) error {
	if ck == nil {
		return nil
	}
	err := ck.flush(dirSync)
	if err != nil {
		ck.obs.Counter("dse.checkpoint.write_errors").Inc()
		ck.obs.Emit(obs.Event{Kind: "warning", Msg: fmt.Sprintf("checkpoint flush failed: %v", err)})
	}
	return err
}

func (ck *Checkpoint) flush(dirSync bool) error {
	// flushMu is held across snapshot + write so concurrent flushes land
	// in snapshot order and the file's entry set only ever grows.
	ck.flushMu.Lock()
	defer ck.flushMu.Unlock()
	ck.mu.Lock()
	f := ck.header
	f.Entries = make(map[string]checkpointEntry, len(ck.entries))
	for k, e := range ck.entries {
		f.Entries[k] = e
	}
	inj := ck.inject
	ck.mu.Unlock()
	data, err := encodeCheckpoint(f)
	if err != nil {
		return err
	}
	if dirSync {
		return durable.WriteFileAtomic(ck.path, data, inj, faultinject.Checkpoint)
	}
	return durable.WriteFileAtomicNoDirSync(ck.path, data, inj, faultinject.Checkpoint)
}
