package dse

import (
	"repro/internal/pareto"
)

// SweepPoint records the selection outcome under one test-cost weight.
type SweepPoint struct {
	WTest    float64
	Selected int // candidate index
	Area     float64
	ExecTime float64
	TestCost int
}

// WeightSweep re-runs the figure-9 selection with area and time weights
// fixed at 1 and the test-cost weight varied — the sensitivity analysis
// behind the paper's remark that "the weights express the significance of
// a constraint over other constraints". WTest = 0 reproduces a test-blind
// (area/time only) selection; growing weights pull the choice toward
// test-cheaper architectures.
func (r *Result) WeightSweep(wTests []float64) ([]SweepPoint, error) {
	var pts []pareto.Point
	for _, i := range r.Front3D {
		pts = append(pts, pareto.Point{ID: i, Coords: r.Candidates[i].Coords()})
	}
	out := make([]SweepPoint, 0, len(wTests))
	for _, w := range wTests {
		best, err := pareto.Select(pts, []float64{1, 1, w}, pareto.Euclid)
		if err != nil {
			return nil, err
		}
		id := pts[best].ID
		c := &r.Candidates[id]
		out = append(out, SweepPoint{
			WTest:    w,
			Selected: id,
			Area:     c.Area,
			ExecTime: c.ExecTime,
			TestCost: c.TestCost,
		})
	}
	return out, nil
}

// TestBlindPenalty quantifies what ignoring the test axis costs: it
// selects on (area, time) alone — breaking coordinate ties arbitrarily in
// candidate order, as a test-unaware flow would — and reports that
// choice's test cost against the test-aware selection's. The returned
// ratio is >= 1; equality means the test axis happened not to matter for
// this space.
func (r *Result) TestBlindPenalty() (blind, aware int, ratio float64, err error) {
	var pts2 []pareto.Point
	for _, i := range r.Feasible {
		c := &r.Candidates[i]
		pts2 = append(pts2, pareto.Point{ID: i, Coords: []float64{c.Area, c.ExecTime}})
	}
	best2, err := pareto.Select(pts2, nil, pareto.Euclid)
	if err != nil {
		return 0, 0, 0, err
	}
	blindCand := &r.Candidates[pts2[best2].ID]
	// A test-blind flow cannot distinguish coordinate ties; the worst tied
	// candidate is the risk it accepts.
	worst := blindCand.TestCost
	for _, i := range r.Feasible {
		c := &r.Candidates[i]
		if c.Area == blindCand.Area && c.ExecTime == blindCand.ExecTime && c.TestCost > worst {
			worst = c.TestCost
		}
	}
	awareCost := r.Candidates[r.Selected].TestCost
	return worst, awareCost, float64(worst) / float64(awareCost), nil
}
