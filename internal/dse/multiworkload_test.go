package dse

import (
	"testing"

	"repro/internal/pareto"
	"repro/internal/power"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/tta"
	"repro/internal/workloads"
)

func mustSchedule(t *testing.T, g *program.Graph, a *tta.Architecture) int {
	t.Helper()
	res, err := sched.Schedule(g, a, sched.Options{})
	if err != nil {
		t.Fatalf("%s on %s: %v", g.Name, a.Name, err)
	}
	return res.Cycles
}

// TestApplicationSpecificResourceSensitivity verifies the "application
// specific" premise of the exploration: the comparator-heavy VecMax kernel
// speeds up with a second CMP unit, while the comparator-free CRC kernel
// is completely insensitive to it.
func TestApplicationSpecificResourceSensitivity(t *testing.T) {
	oneCmp := &tta.Architecture{
		Name: "cmp1", Width: 16, Buses: 3,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU1"),
			tta.NewFU(tta.ALU, "ALU2"),
			tta.NewFU(tta.CMP, "CMP1"),
			tta.NewRF("RF1", 12, 1, 2),
			tta.NewRF("RF2", 12, 1, 2),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewPC("PC"),
			tta.NewIMM("Immediate"),
		},
	}
	tta.AssignPorts(oneCmp, tta.SpreadFirst)
	twoCmp := oneCmp.Clone()
	twoCmp.Name = "cmp2"
	twoCmp.Components = append(twoCmp.Components, tta.NewFU(tta.CMP, "CMP2"))
	tta.AssignPorts(twoCmp, tta.SpreadFirst)

	cb, err := workloads.CountBelow(12)
	if err != nil {
		t.Fatal(err)
	}
	crc, err := workloads.CRC16(2, 0x40)
	if err != nil {
		t.Fatal(err)
	}

	cb1 := mustSchedule(t, cb, oneCmp)
	cb2 := mustSchedule(t, cb, twoCmp)
	crc1 := mustSchedule(t, crc, oneCmp)
	crc2 := mustSchedule(t, crc, twoCmp)

	if float64(cb2) > 0.85*float64(cb1) {
		t.Errorf("CountBelow: second comparator helped too little (%d vs %d cycles)", cb2, cb1)
	}
	if crc2 != crc1 {
		t.Errorf("CRC16: comparator count changed cycles (%d vs %d) despite zero CMP ops", crc2, crc1)
	}
	t.Logf("CountBelow: %d -> %d cycles with a second CMP; CRC16: %d -> %d", cb1, cb2, crc1, crc2)
}

// TestPerWorkloadSelectionsDiffer runs the full test-aware exploration for
// two applications with opposite profiles and checks each converges (the
// per-application fronts are what an ASIP designer compares).
func TestPerWorkloadSelectionsDiffer(t *testing.T) {
	base, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	// Trim the space for runtime; keep CMP count as a dimension.
	base.Buses = []int{2, 3}
	base.ALUCounts = []int{1, 2}
	base.CMPCounts = []int{1, 2}
	base.RFSets = base.RFSets[3:4] // {12,1,2} x2
	base.Assigns = []tta.AssignStrategy{tta.SpreadFirst}
	base.Annotator = explore(t).Config.Annotator // reuse ATPG cache

	vm, err := workloads.VecMax(16, 0x40)
	if err != nil {
		t.Fatal(err)
	}
	crc, err := workloads.CRC16(2, 0x40)
	if err != nil {
		t.Fatal(err)
	}

	cfgVM := base
	cfgVM.Workload = vm
	cfgVM.WorkloadReps = 1000
	resVM, err := Explore(cfgVM)
	if err != nil {
		t.Fatal(err)
	}
	cfgCRC := base
	cfgCRC.Workload = crc
	cfgCRC.WorkloadReps = 1000
	resCRC, err := Explore(cfgCRC)
	if err != nil {
		t.Fatal(err)
	}

	selVM := resVM.Candidates[resVM.Selected].Arch
	selCRC := resCRC.Candidates[resCRC.Selected].Arch
	t.Logf("VecMax selects %s; CRC16 selects %s", selVM, selCRC)
	// CRC never selects a second comparator (pure waste on its profile).
	if len(selCRC.ComponentsOf(tta.CMP)) != 1 {
		t.Errorf("CRC16 exploration selected %d comparators", len(selCRC.ComponentsOf(tta.CMP)))
	}
}

// TestEnergyAxisExtension exercises the optional fourth metric: with an
// energy model attached, every feasible candidate carries an estimate and
// a 4-D (area, time, test, energy) front contains the 3-D front.
func TestEnergyAxisExtension(t *testing.T) {
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Buses = []int{2, 3}
	cfg.ALUCounts = []int{1, 2}
	cfg.CMPCounts = []int{1}
	cfg.RFSets = cfg.RFSets[1:3]
	cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst}
	cfg.Annotator = explore(t).Config.Annotator
	m, err := power.Calibrate(nil, 16, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.EnergyModel = m
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range res.Feasible {
		if res.Candidates[i].Energy <= 0 {
			t.Fatalf("candidate %s lacks an energy estimate", res.Candidates[i].Arch.Name)
		}
	}
	// 4-D front ⊇ 3-D front (adding an axis never removes a member).
	var pts3, pts4 []pareto.Point
	for _, i := range res.Feasible {
		c := &res.Candidates[i]
		pts3 = append(pts3, pareto.Point{ID: i, Coords: c.Coords()})
		pts4 = append(pts4, pareto.Point{ID: i, Coords: append(c.Coords(), c.Energy)})
	}
	in4 := map[int]bool{}
	for _, pi := range pareto.Front(pts4) {
		in4[pts4[pi].ID] = true
	}
	for _, pi := range pareto.Front(pts3) {
		if !in4[pts3[pi].ID] {
			t.Fatalf("3-D front member %d lost in 4-D", pts3[pi].ID)
		}
	}
}
