package dse

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/gatelib"
	"repro/internal/obs"
	"repro/internal/tta"
)

// This file implements the guided exploration that replaces the
// exhaustive cross-product when Config.Search is set. The widened
// parameter ranges below span tens of millions of candidate templates —
// far past what the sweep can enumerate — so the space is searched
// instead: a seeded genetic algorithm (tournament selection, uniform
// crossover, per-gene mutation) proposes genomes, a successive-halving
// screen evaluates every genome on the cheap fidelity tier (deterministic
// scheduling plus the annotator's analytical SCOAP bound — no gate-level
// ATPG), and only the top ceil(Population/Eta) of each generation are
// promoted to the full evaluation pipeline (converged PODEM ATPG,
// checkpointing, live fronts, selection — identical to sweep mode).
//
// Determinism: the random number generator is consumed exclusively on the
// single-threaded control path (initial population, selection, crossover,
// mutation). Cheap evaluations run on a worker pool but are pure
// functions of the genome collected by index, and fitness normalization
// happens after the generation barrier — so a fixed Seed yields the same
// survivors, in the same order, at any Config.Parallelism.

// SearchSpec configures the guided GA + successive-halving exploration.
// The zero value of each field takes the default noted on it.
type SearchSpec struct {
	// Population is the number of genomes per generation (default 64).
	Population int
	// Generations is the number of GA generations (default 8). The cheap
	// tier screens Population×Generations genomes in total.
	Generations int
	// Eta is the successive-halving ratio: the best ceil(Population/Eta)
	// genomes of each generation are promoted to full evaluation
	// (default 4).
	Eta int
	// Seed seeds the GA's random number generator (default Config.Seed).
	// It is independent of the ATPG seed: the same design space searched
	// with a different Seed walks a different trajectory.
	Seed int64
}

func (s *SearchSpec) fillDefaults(cfgSeed int64) error {
	if s.Population < 0 || s.Generations < 0 || s.Eta < 0 {
		return fmt.Errorf("dse: negative search parameter (pop %d, gens %d, eta %d)", s.Population, s.Generations, s.Eta)
	}
	if s.Population == 0 {
		s.Population = 64
	}
	if s.Generations == 0 {
		s.Generations = 8
	}
	if s.Eta == 0 {
		s.Eta = 4
	}
	if s.Eta == 1 {
		return fmt.Errorf("dse: search eta must be >= 2 (1 promotes everything and screens nothing)")
	}
	if s.Seed == 0 {
		s.Seed = cfgSeed
	}
	return nil
}

// Widened gene ranges — the guided space. The exhaustive sweep covers
// 4 bus counts x 3 ALU counts x 2 CMP counts x 6 RF sets x 2 assignment
// strategies = 144 points; this space spans ~28 million.
var (
	searchMaxBuses = 16
	searchMaxALUs  = 8
	searchMaxCMPs  = 4
	searchMaxRFs   = 3
	searchRegs     = []int{4, 8, 12, 16, 24, 32}
	searchMaxIn    = 2
	searchMaxOut   = 3
	searchAdders   = []gatelib.AdderKind{gatelib.AdderRipple, gatelib.AdderCarrySelect}
	searchAssigns  = []tta.AssignStrategy{tta.RoundRobin, tta.SpreadFirst, tta.Packed}
)

// SearchSpaceSize returns the number of distinct genomes in the guided
// space: the scalar gene product times the number of RF multisets (RF
// order inside a candidate is canonicalized away) of size 1..searchMaxRFs
// over the |regs|·|in|·|out| shape alphabet.
func SearchSpaceSize() int64 {
	shapes := int64(len(searchRegs) * searchMaxIn * searchMaxOut)
	// Multisets of size k from n shapes: C(n+k-1, k).
	multisets := int64(0)
	for k := int64(1); k <= int64(searchMaxRFs); k++ {
		c := int64(1)
		for j := int64(0); j < k; j++ {
			c = c * (shapes + j) / (j + 1)
		}
		multisets += c
	}
	return int64(searchMaxBuses) * int64(searchMaxALUs) * int64(searchMaxCMPs) *
		int64(len(searchAdders)) * int64(len(searchAssigns)) * multisets
}

// genome is one point of the guided space.
type genome struct {
	buses  int
	alus   int
	cmps   int
	adder  gatelib.AdderKind
	rfs    []RFSpec // canonicalized: sorted by (Regs, In, Out)
	assign tta.AssignStrategy
}

// canon sorts the register files so that permutations of one multiset
// collapse to a single genome (the architecture is order-insensitive).
func (g *genome) canon() {
	sort.Slice(g.rfs, func(a, b int) bool {
		x, y := g.rfs[a], g.rfs[b]
		if x.Regs != y.Regs {
			return x.Regs < y.Regs
		}
		if x.In != y.In {
			return x.In < y.In
		}
		return x.Out < y.Out
	})
}

// key is the genome's canonical identity — the dedupe and deterministic
// tie-break key.
func (g *genome) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "b%02d/a%d/c%d/%s/%s", g.buses, g.alus, g.cmps, g.adder, g.assign)
	for _, rf := range g.rfs {
		fmt.Fprintf(&b, "/rf%02dx%dw%dr", rf.Regs, rf.In, rf.Out)
	}
	return b.String()
}

// arch builds the genome's architecture. The name embeds the stable
// promotion index, so checkpointKey (structKey + name) survives a
// resume: for a fixed seed the survivor sequence — and hence the index
// assignment — is identical on every run.
func (g *genome) arch(width, index int) *tta.Architecture {
	a := &tta.Architecture{
		Name:  fmt.Sprintf("s%06d_b%d_a%d_c%d_%s", index, g.buses, g.alus, g.cmps, g.assign),
		Width: width,
		Buses: g.buses,
	}
	for i := 0; i < g.alus; i++ {
		fu := tta.NewFU(tta.ALU, fmt.Sprintf("ALU%d", i+1))
		fu.Adder = g.adder
		a.Components = append(a.Components, fu)
	}
	for i := 0; i < g.cmps; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.CMP, fmt.Sprintf("CMP%d", i+1)))
	}
	for i, rf := range g.rfs {
		a.Components = append(a.Components, tta.NewRF(fmt.Sprintf("RF%d", i+1), rf.Regs, rf.In, rf.Out))
	}
	a.Components = append(a.Components,
		tta.NewFU(tta.LDST, "LD/ST"),
		tta.NewPC("PC"),
		tta.NewIMM("Immediate"),
	)
	tta.AssignPorts(a, g.assign)
	return a
}

// randGenome draws a uniform genome. Every rng consumption below is on
// the single-threaded control path.
func randGenome(rng *rand.Rand) genome {
	g := genome{
		buses:  1 + rng.Intn(searchMaxBuses),
		alus:   1 + rng.Intn(searchMaxALUs),
		cmps:   1 + rng.Intn(searchMaxCMPs),
		adder:  searchAdders[rng.Intn(len(searchAdders))],
		assign: searchAssigns[rng.Intn(len(searchAssigns))],
	}
	n := 1 + rng.Intn(searchMaxRFs)
	for i := 0; i < n; i++ {
		g.rfs = append(g.rfs, randRF(rng))
	}
	g.canon()
	return g
}

func randRF(rng *rand.Rand) RFSpec {
	return RFSpec{
		Regs: searchRegs[rng.Intn(len(searchRegs))],
		In:   1 + rng.Intn(searchMaxIn),
		Out:  1 + rng.Intn(searchMaxOut),
	}
}

// crossover mixes two parents gene-wise (uniform crossover); the RF list
// is inherited whole from one parent to keep it well-formed.
func crossover(rng *rand.Rand, a, b genome) genome {
	pick := func(x, y int) int {
		if rng.Intn(2) == 0 {
			return x
		}
		return y
	}
	child := genome{
		buses: pick(a.buses, b.buses),
		alus:  pick(a.alus, b.alus),
		cmps:  pick(a.cmps, b.cmps),
	}
	if rng.Intn(2) == 0 {
		child.adder = a.adder
	} else {
		child.adder = b.adder
	}
	if rng.Intn(2) == 0 {
		child.assign = a.assign
	} else {
		child.assign = b.assign
	}
	src := a
	if rng.Intn(2) == 0 {
		src = b
	}
	child.rfs = append([]RFSpec(nil), src.rfs...)
	child.canon()
	return child
}

// mutate rerandomizes each gene with probability 1/8 and occasionally
// grows or shrinks the RF list — enough drift to escape local optima
// without destroying the tournament winners.
func mutate(rng *rand.Rand, g genome) genome {
	const p = 8 // 1-in-p per gene
	if rng.Intn(p) == 0 {
		g.buses = 1 + rng.Intn(searchMaxBuses)
	}
	if rng.Intn(p) == 0 {
		g.alus = 1 + rng.Intn(searchMaxALUs)
	}
	if rng.Intn(p) == 0 {
		g.cmps = 1 + rng.Intn(searchMaxCMPs)
	}
	if rng.Intn(p) == 0 {
		g.adder = searchAdders[rng.Intn(len(searchAdders))]
	}
	if rng.Intn(p) == 0 {
		g.assign = searchAssigns[rng.Intn(len(searchAssigns))]
	}
	g.rfs = append([]RFSpec(nil), g.rfs...)
	for i := range g.rfs {
		if rng.Intn(p) == 0 {
			g.rfs[i] = randRF(rng)
		}
	}
	if rng.Intn(p) == 0 {
		if len(g.rfs) < searchMaxRFs && rng.Intn(2) == 0 {
			g.rfs = append(g.rfs, randRF(rng))
		} else if len(g.rfs) > 1 {
			g.rfs = g.rfs[:len(g.rfs)-1]
		}
	}
	g.canon()
	return g
}

// cheapResult is one genome's cheap-tier measurement.
type cheapResult struct {
	feasible bool
	coords   [3]float64 // area, exec time, bound-tier test cost
	err      error
}

// evalCheap screens one generation on the cheap tier: schedule (shared
// structural memo, so duplicated structures cost one schedule) plus the
// annotator's SCOAP-bound cost model. Results are collected by index —
// deterministic at any parallelism.
func evalCheap(ctx context.Context, cfg *Config, pop []genome, memo *schedMemo, sp *obs.Span) []cheapResult {
	out := make([]cheapResult, len(pop))
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pop) {
		workers = len(pop)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = cheapEvalOne(ctx, cfg, &pop[i], memo, sp)
			}
		}()
	}
feed:
	for i := range pop {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return out
}

// cheapEvalOne evaluates one genome on the cheap tier. A panic anywhere
// under it (scheduler, library generator) is isolated to this genome —
// it screens as an error, the search continues.
func cheapEvalOne(ctx context.Context, cfg *Config, g *genome, memo *schedMemo, sp *obs.Span) (res cheapResult) {
	defer func() {
		if r := recover(); r != nil {
			cfg.Obs.Counter("dse.eval.panics").Inc()
			res = cheapResult{err: fmt.Errorf("dse: cheap evaluation panicked: %v", r)}
		}
	}()
	cfg.Obs.Counter("dse.search.cheap_evals").Inc()
	arch := g.arch(cfg.Width, 0) // screening identity; the real index is assigned at promotion
	if err := arch.Validate(); err != nil {
		return cheapResult{feasible: false}
	}
	se, err := memo.getWith(ctx, cfg, arch, sp, evalStructuralBound)
	if err != nil {
		return cheapResult{err: err}
	}
	if !se.feasible {
		return cheapResult{feasible: false}
	}
	cost, err := cfg.Annotator.EvaluateBoundContext(ctx, arch)
	if err != nil {
		return cheapResult{err: err}
	}
	return cheapResult{
		feasible: true,
		coords: [3]float64{
			se.area,
			float64(se.cycles) * float64(cfg.WorkloadReps) * se.clock,
			float64(cost.Total),
		},
	}
}

// rankGeneration orders the generation for promotion: feasible genomes by
// ascending scalarized fitness (equal-weight L1 over min-max normalized
// coordinates — cheap, and monotone enough for a screen), ties and the
// infeasible tail by canonical key. The fitness slice is parallel to pop.
func rankGeneration(pop []genome, res []cheapResult) (order []int, fitness []float64) {
	lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := range res {
		if !res[i].feasible || res[i].err != nil {
			continue
		}
		for d, v := range res[i].coords {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	fitness = make([]float64, len(pop))
	for i := range res {
		if !res[i].feasible || res[i].err != nil {
			fitness[i] = math.Inf(1)
			continue
		}
		f := 0.0
		for d, v := range res[i].coords {
			if hi[d] > lo[d] {
				f += (v - lo[d]) / (hi[d] - lo[d])
			}
		}
		fitness[i] = f
	}
	order = make([]int, len(pop))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		fa, fb := fitness[order[a]], fitness[order[b]]
		if fa != fb {
			return fa < fb
		}
		return pop[order[a]].key() < pop[order[b]].key()
	})
	return order, fitness
}

// nextGeneration breeds the following population: the two fittest
// genomes carry over unchanged (elitism), the rest come from
// tournament-of-3 selection, uniform crossover and mutation. Runs on the
// control thread — the only rng consumer.
func nextGeneration(rng *rand.Rand, pop []genome, order []int, fitness []float64) []genome {
	out := make([]genome, 0, len(pop))
	for _, i := range order {
		if len(out) >= 2 || len(out) >= len(pop) {
			break
		}
		out = append(out, pop[i])
	}
	tournament := func() genome {
		best := rng.Intn(len(pop))
		for k := 1; k < 3; k++ {
			c := rng.Intn(len(pop))
			if fitness[c] < fitness[best] {
				best = c
			}
		}
		return pop[best]
	}
	for len(out) < len(pop) {
		child := crossover(rng, tournament(), tournament())
		out = append(out, mutate(rng, child))
	}
	return out
}

// searchCandidates runs the GA + successive-halving screen and returns
// the promoted architectures, in promotion order (generation, then
// cheap-tier rank), deduplicated by genome. The returned list feeds the
// unchanged full-evaluation pipeline: converged ATPG, checkpoints, live
// fronts, selection.
func searchCandidates(ctx context.Context, cfg *Config, sp *obs.Span, spec SearchSpec) ([]*tta.Architecture, error) {
	reg := cfg.Obs
	rng := rand.New(rand.NewSource(spec.Seed))
	pop := make([]genome, spec.Population)
	for i := range pop {
		pop[i] = randGenome(rng)
	}
	memo := newSchedMemo()
	promote := ceilDiv(spec.Population, spec.Eta)
	var survivors []genome
	seen := make(map[string]bool)
	for gen := 0; gen < spec.Generations; gen++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		genSp := sp.Child("generation")
		res := evalCheap(ctx, cfg, pop, memo, genSp)
		if err := ctx.Err(); err != nil {
			genSp.End()
			return nil, err
		}
		order, fitness := rankGeneration(pop, res)
		promoted := 0
		for _, i := range order[:promote] {
			if !res[i].feasible || res[i].err != nil {
				continue // never promote what the screen could not place
			}
			k := pop[i].key()
			if seen[k] {
				continue
			}
			seen[k] = true
			survivors = append(survivors, pop[i])
			promoted++
		}
		reg.Counter("dse.search.generations").Inc()
		reg.Counter("dse.search.promoted").Add(int64(promoted))
		reg.Counter("dse.search.pruned").Add(int64(spec.Population - promoted))
		reg.Emit(obs.Event{
			Kind:  "search",
			Msg:   fmt.Sprintf("generation %d/%d: %d promoted, %d pruned (%d survivors so far)", gen+1, spec.Generations, promoted, spec.Population-promoted, len(survivors)),
			N:     gen + 1,
			Total: spec.Generations,
		})
		genSp.End()
		if gen < spec.Generations-1 {
			pop = nextGeneration(rng, pop, order, fitness)
		}
	}
	if len(survivors) == 0 {
		return nil, fmt.Errorf("dse: guided search promoted no feasible candidate (pop %d, gens %d)", spec.Population, spec.Generations)
	}
	archs := make([]*tta.Architecture, len(survivors))
	for i := range survivors {
		archs[i] = survivors[i].arch(cfg.Width, i)
	}
	return archs, nil
}

// ceilDiv is also defined in testcost; dse keeps its own to avoid the
// dependency inversion.
func ceilDiv(x, y int) int {
	if y <= 0 {
		return x
	}
	return (x + y - 1) / y
}
