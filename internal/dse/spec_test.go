package dse

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/jobspec"
)

func TestFromSpecZeroMatchesDefaultConfig(t *testing.T) {
	cfg, sel, err := FromSpec(jobspec.Spec{})
	if err != nil {
		t.Fatal(err)
	}
	def, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Width != def.Width || cfg.Seed != def.Seed {
		t.Errorf("width/seed %d/%d, want %d/%d", cfg.Width, cfg.Seed, def.Width, def.Seed)
	}
	if !reflect.DeepEqual(cfg.Buses, def.Buses) ||
		!reflect.DeepEqual(cfg.ALUCounts, def.ALUCounts) ||
		!reflect.DeepEqual(cfg.CMPCounts, def.CMPCounts) ||
		!reflect.DeepEqual(cfg.RFSets, def.RFSets) {
		t.Error("zero spec must reproduce the default space")
	}
	if cfg.WorkloadReps != def.WorkloadReps {
		t.Errorf("reps %d, want %d", cfg.WorkloadReps, def.WorkloadReps)
	}
	if (sel != SelectionSpec{}) {
		t.Errorf("zero spec selection = %+v, want zero", sel)
	}
}

func TestFromSpecOverridesAndNormalizes(t *testing.T) {
	spec := jobspec.Spec{
		Workload:       "crc16",
		Buses:          []int{2, 1, 2},
		ALUs:           []int{3},
		Norm:           "chebyshev",
		WA:             2,
		DegradedPolicy: "exclude",
		Parallelism:    3,
		ATPGWorkers:    1,
		LaneWidth:      512,
	}
	cfg, sel, err := FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg.Buses, []int{1, 2}) {
		t.Errorf("buses %v, want normalized [1 2]", cfg.Buses)
	}
	// The caller's slice must not be reordered by FromSpec.
	if !reflect.DeepEqual(spec.Buses, []int{2, 1, 2}) {
		t.Errorf("FromSpec mutated the caller's spec: %v", spec.Buses)
	}
	if !reflect.DeepEqual(cfg.ALUCounts, []int{3}) {
		t.Errorf("alus %v", cfg.ALUCounts)
	}
	if cfg.Workload == nil || !strings.HasPrefix(cfg.Workload.Name, "crc16") {
		t.Errorf("workload not applied: %+v", cfg.Workload)
	}
	if cfg.WorkloadReps != 1000 {
		t.Errorf("reps %d, want 1000", cfg.WorkloadReps)
	}
	if cfg.Parallelism != 3 || cfg.ATPGWorkers != 1 {
		t.Errorf("parallelism %d/%d", cfg.Parallelism, cfg.ATPGWorkers)
	}
	if cfg.LaneWidth != 512 {
		t.Errorf("lane width %d, want 512", cfg.LaneWidth)
	}
	want := SelectionSpec{Norm: "chebyshev", WA: 2, DegradedPolicy: "exclude"}
	if sel != want {
		t.Errorf("selection %+v, want %+v", sel, want)
	}
}

func TestFromSpecRejectsBadSpecs(t *testing.T) {
	for _, spec := range []jobspec.Spec{
		{Workload: "doom"},
		{Norm: "cosine"},
		{Parallelism: -1},
		{Buses: []int{0}},
	} {
		if _, _, err := FromSpec(spec); err == nil {
			t.Errorf("FromSpec accepted %+v", spec)
		}
	}
}

func TestFromSpecExploresIdenticallyToDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("full exploration")
	}
	// A spec-built config over a reduced space must reproduce the
	// hand-built config's result exactly.
	specCfg, _, err := FromSpec(jobspec.Spec{Buses: []int{1, 2}, ALUs: []int{1}, CMPs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	handCfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	handCfg.Buses = []int{1, 2}
	handCfg.ALUCounts = []int{1}
	handCfg.CMPCounts = []int{1}

	a, err := ExploreContext(context.Background(), specCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExploreContext(context.Background(), handCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Candidates) != len(b.Candidates) || a.Selected != b.Selected ||
		!reflect.DeepEqual(a.Front2D, b.Front2D) || !reflect.DeepEqual(a.Front3D, b.Front3D) {
		t.Fatal("spec-built exploration diverged from the hand-built config")
	}
	for i := range a.Candidates {
		ca, cb := a.Candidates[i], b.Candidates[i]
		ca.Arch, cb.Arch = nil, nil
		if ca != cb {
			t.Fatalf("candidate %d differs: %+v vs %+v", i, ca, cb)
		}
	}
}
