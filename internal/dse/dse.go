// Package dse implements the design and test space exploration of the
// paper: it enumerates TTA templates (bus counts, function-unit mixes,
// register-file shapes), evaluates each candidate's circuit area,
// execution time (schedule cycles of the Crypt kernel times the
// architecture's clock period) and analytical test cost, extracts the 2-D
// area/time Pareto front (figure 2), lifts it to the 3-D
// area/time/test-cost front (figure 8), and selects the final architecture
// with a weighted norm (figure 9).
package dse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/crypt"
	"repro/internal/pareto"
	"repro/internal/power"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/testcost"
	"repro/internal/tta"
)

// RFSpec describes one register file of a candidate.
type RFSpec struct {
	Regs, In, Out int
}

func (r RFSpec) String() string { return fmt.Sprintf("%dx(%dw%dr)", r.Regs, r.In, r.Out) }

// Config spans the explored space. Zero-value fields take the defaults of
// DefaultConfig.
type Config struct {
	Width int
	Seed  int64

	Buses     []int
	ALUCounts []int
	CMPCounts []int
	RFSets    [][]RFSpec

	// Assigns lists the port-to-bus assignment strategies to explore.
	// Different assignments of the same structure share area and cycle
	// count but differ in CD and hence test cost — the paper's figure 6
	// effect, and the reason 2-D-close points spread out on the test axis.
	Assigns []tta.AssignStrategy

	// Workload is the scheduled kernel; WorkloadReps scales the kernel's
	// cycle count to the full application (crypt: 400 DES rounds).
	Workload     *program.Graph
	WorkloadReps int

	// BusAreaPerBit models the wiring/driver area of one bus bit line;
	// BusDelay adds the interconnect contribution to the clock period.
	BusAreaPerBit float64
	BusDelay      float64

	// Annotator supplies the gate-level back-annotation. Sharing one
	// across explorations reuses its ATPG cache.
	Annotator *testcost.Annotator

	// EnergyModel, when non-nil, adds a calibrated energy estimate to
	// every candidate (an extension beyond the paper's three axes).
	EnergyModel *power.Model

	// Parallelism bounds the number of candidates evaluated concurrently
	// (0 = GOMAXPROCS). Results are identical at any setting: candidates
	// are independent and the annotator cache is synchronized.
	Parallelism int
}

// DefaultConfig returns the exploration used for the paper's figures: the
// crypt round kernel over 1-4 buses, 1-3 ALUs, 1-2 comparators and six
// register-file arrangements.
func DefaultConfig() (Config, error) {
	kernel, err := crypt.BuildCryptKernel(1)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Width:     16,
		Seed:      7,
		Buses:     []int{1, 2, 3, 4},
		ALUCounts: []int{1, 2, 3},
		CMPCounts: []int{1, 2},
		RFSets: [][]RFSpec{
			{{8, 1, 1}, {8, 1, 1}},
			{{8, 1, 1}, {12, 1, 1}},
			{{8, 1, 2}, {12, 1, 1}},
			{{12, 1, 2}, {12, 1, 2}},
			{{16, 1, 2}},
			{{16, 2, 2}, {16, 1, 2}},
		},
		Assigns:       []tta.AssignStrategy{tta.SpreadFirst, tta.Packed},
		Workload:      kernel,
		WorkloadReps:  crypt.RoundsPerHash,
		BusAreaPerBit: 3.0,
		BusDelay:      1.5,
	}, nil
}

func (c *Config) fillDefaults() error {
	if c.Width == 0 {
		c.Width = 16
	}
	if c.Workload == nil {
		k, err := crypt.BuildCryptKernel(1)
		if err != nil {
			return err
		}
		c.Workload = k
		c.WorkloadReps = crypt.RoundsPerHash
	}
	if len(c.Assigns) == 0 {
		c.Assigns = []tta.AssignStrategy{tta.SpreadFirst}
	}
	if c.WorkloadReps == 0 {
		c.WorkloadReps = 1
	}
	if len(c.Buses) == 0 {
		c.Buses = []int{1, 2, 3, 4}
	}
	if len(c.ALUCounts) == 0 {
		c.ALUCounts = []int{1, 2}
	}
	if len(c.CMPCounts) == 0 {
		c.CMPCounts = []int{1}
	}
	if len(c.RFSets) == 0 {
		c.RFSets = [][]RFSpec{{{8, 1, 1}, {12, 1, 1}}}
	}
	if c.BusAreaPerBit == 0 {
		c.BusAreaPerBit = 3.0
	}
	if c.BusDelay == 0 {
		c.BusDelay = 1.5
	}
	if c.Annotator == nil {
		c.Annotator = testcost.NewAnnotator(c.Width, c.Seed)
	}
	return nil
}

// Candidate is one evaluated design point.
type Candidate struct {
	Arch *tta.Architecture

	Area     float64 // NAND2-equivalent units (components + sockets + buses)
	Cycles   int     // kernel schedule length
	Clock    float64 // normalized clock period (critical path + bus delay)
	ExecTime float64 // Cycles * reps * Clock
	TestCost int     // equation (14)
	FullScan int     // full-scan baseline for the same components

	Feasible bool
	Reason   string // why infeasible

	Spills int

	// Energy is the estimated switched-capacitance + leakage per
	// application run (0 unless the exploration carries an energy model).
	Energy float64
}

// Coords returns the (area, time, test) vector.
func (c *Candidate) Coords() []float64 {
	return []float64{c.Area, c.ExecTime, float64(c.TestCost)}
}

// Result is a completed exploration.
type Result struct {
	Config     Config
	Candidates []Candidate

	// Feasible indexes candidates that scheduled successfully.
	Feasible []int
	// Front2D/Front3D index into Candidates: the area/time front
	// (figure 2) and the area/time/test front (figure 8).
	Front2D []int
	Front3D []int
	// Selected indexes Candidates: the minimal-equal-weight-Euclid-norm
	// member of the 3-D front (figure 9).
	Selected int
}

// Explore runs the full exploration.
func Explore(cfg Config) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	res := &Result{Config: cfg, Selected: -1}
	mem := crypt.MemoryImage()
	_ = mem

	// Enumerate the space, then evaluate candidates concurrently (the
	// result slice is indexed, so ordering is deterministic).
	var archs []*tta.Architecture
	id := 0
	for _, buses := range cfg.Buses {
		for _, nALU := range cfg.ALUCounts {
			for _, nCMP := range cfg.CMPCounts {
				for rfi, rfs := range cfg.RFSets {
					for _, strat := range cfg.Assigns {
						archs = append(archs, buildArch(cfg.Width, buses, nALU, nCMP, rfs, strat, id, rfi))
						id++
					}
				}
			}
		}
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(archs) {
		workers = len(archs)
	}
	res.Candidates = make([]Candidate, len(archs))
	errs := make([]error, len(archs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				res.Candidates[i], errs[i] = evaluate(&cfg, archs[i])
			}
		}()
	}
	for i := range archs {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var pts2, pts3 []pareto.Point
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if !c.Feasible {
			continue
		}
		res.Feasible = append(res.Feasible, i)
		pts2 = append(pts2, pareto.Point{ID: i, Coords: []float64{c.Area, c.ExecTime}})
		pts3 = append(pts3, pareto.Point{ID: i, Coords: c.Coords()})
	}
	if len(pts2) == 0 {
		return res, fmt.Errorf("dse: no feasible candidate in the explored space")
	}
	for _, pi := range pareto.Front(pts2) {
		res.Front2D = append(res.Front2D, pts2[pi].ID)
	}
	for _, pi := range pareto.Front(pts3) {
		res.Front3D = append(res.Front3D, pts3[pi].ID)
	}
	sort.Ints(res.Front2D)
	sort.Ints(res.Front3D)

	// Selection (figure 9): equal-weight Euclidean norm over the 3-D
	// front members.
	var sel []pareto.Point
	for _, i := range res.Front3D {
		sel = append(sel, pareto.Point{ID: i, Coords: res.Candidates[i].Coords()})
	}
	best, err := pareto.Select(sel, nil, pareto.Euclid)
	if err != nil {
		return res, err
	}
	res.Selected = sel[best].ID
	return res, nil
}

// buildArch assembles one candidate architecture.
func buildArch(width, buses, nALU, nCMP int, rfs []RFSpec, strat tta.AssignStrategy, id, rfi int) *tta.Architecture {
	a := &tta.Architecture{
		Name:  fmt.Sprintf("c%03d_b%d_a%d_c%d_rf%d_%s", id, buses, nALU, nCMP, rfi, strat),
		Width: width,
		Buses: buses,
	}
	for i := 0; i < nALU; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.ALU, fmt.Sprintf("ALU%d", i+1)))
	}
	for i := 0; i < nCMP; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.CMP, fmt.Sprintf("CMP%d", i+1)))
	}
	for i, rf := range rfs {
		a.Components = append(a.Components, tta.NewRF(fmt.Sprintf("RF%d", i+1), rf.Regs, rf.In, rf.Out))
	}
	a.Components = append(a.Components,
		tta.NewFU(tta.LDST, "LD/ST"),
		tta.NewPC("PC"),
		tta.NewIMM("Immediate"),
	)
	tta.AssignPorts(a, strat)
	return a
}

// evaluate computes all three axes for one candidate.
func evaluate(cfg *Config, arch *tta.Architecture) (Candidate, error) {
	cand := Candidate{Arch: arch}

	// Throughput axis: schedule the kernel.
	schedRes, err := sched.Schedule(cfg.Workload, arch, sched.Options{})
	if err != nil {
		cand.Feasible = false
		cand.Reason = err.Error()
		return cand, nil
	}
	cand.Feasible = true
	cand.Cycles = schedRes.Cycles
	cand.Spills = schedRes.Spills

	// Area and clock axes from the gate-level library.
	area := 0.0
	clock := cfg.BusDelay
	for ci := range arch.Components {
		ar, dl, err := cfg.Annotator.AreaDelay(&arch.Components[ci])
		if err != nil {
			return cand, err
		}
		area += ar
		if dl+cfg.BusDelay > clock {
			clock = dl + cfg.BusDelay
		}
	}
	inA, outA, err := cfg.Annotator.SocketArea()
	if err != nil {
		return cand, err
	}
	for ci := range arch.Components {
		c := &arch.Components[ci]
		area += float64(len(c.InputPorts()))*inA + float64(len(c.OutputPorts()))*outA
	}
	area += float64(arch.Buses) * float64(arch.Width) * cfg.BusAreaPerBit
	cand.Area = area
	cand.Clock = clock
	cand.ExecTime = float64(cand.Cycles) * float64(cfg.WorkloadReps) * clock
	if cfg.EnergyModel != nil {
		est := cfg.EnergyModel.ScheduleEnergy(schedRes, area)
		cand.Energy = est.Total * float64(cfg.WorkloadReps)
	}

	// Test axis: equation (14).
	cost, err := cfg.Annotator.Evaluate(arch)
	if err != nil {
		return cand, err
	}
	cand.TestCost = cost.Total
	cand.FullScan = cost.FullScanTotal
	return cand, nil
}

// ProjectionPreserved checks the paper's figure-8 claim: projecting the
// 3-D front back onto the area/time plane loses no point of the 2-D front
// ("the first projection of the 3D curve in the area-execution-time plane
// is still the curve from figure 2"). The comparison is by coordinates:
// when several candidates tie in area and time (e.g. port-assignment
// variants), the 3-D front keeps the test-cheapest one, which still covers
// the 2-D point.
func (r *Result) ProjectionPreserved() bool {
	const eps = 1e-9
	for _, i := range r.Front2D {
		a := &r.Candidates[i]
		covered := false
		for _, j := range r.Front3D {
			b := &r.Candidates[j]
			if relDiff(a.Area, b.Area) < eps && relDiff(a.ExecTime, b.ExecTime) < eps {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// TestCostSpread reports the widest (min, max) test-cost pair among
// feasible candidates whose area and execution-time coordinates lie within
// relative eps of each other — the paper's observation that architectures
// close to each other on the 2-D Pareto curve may still differ strongly in
// test cost (figure 8), which is what makes the third axis worth adding.
func (r *Result) TestCostSpread(eps float64) (lo, hi int, found bool) {
	bestSpread := -1
	for ai, i := range r.Feasible {
		for _, j := range r.Feasible[ai+1:] {
			a, b := &r.Candidates[i], &r.Candidates[j]
			if relDiff(a.Area, b.Area) >= eps || relDiff(a.ExecTime, b.ExecTime) >= eps {
				continue
			}
			l, h := a.TestCost, b.TestCost
			if l > h {
				l, h = h, l
			}
			if h-l > bestSpread {
				bestSpread = h - l
				lo, hi, found = l, h, true
			}
		}
	}
	return lo, hi, found
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}
