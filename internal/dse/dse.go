// Package dse implements the design and test space exploration of the
// paper: it enumerates TTA templates (bus counts, function-unit mixes,
// register-file shapes), evaluates each candidate's circuit area,
// execution time (schedule cycles of the Crypt kernel times the
// architecture's clock period) and analytical test cost, extracts the 2-D
// area/time Pareto front (figure 2), lifts it to the 3-D
// area/time/test-cost front (figure 8), and selects the final architecture
// with a weighted norm (figure 9).
package dse

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/crypt"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/power"
	"repro/internal/program"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/testcost"
	"repro/internal/tta"
)

// RFSpec describes one register file of a candidate.
type RFSpec struct {
	Regs, In, Out int
}

func (r RFSpec) String() string { return fmt.Sprintf("%dx(%dw%dr)", r.Regs, r.In, r.Out) }

// Config spans the explored space. Zero-value fields take the defaults of
// DefaultConfig.
type Config struct {
	Width int
	Seed  int64

	Buses     []int
	ALUCounts []int
	CMPCounts []int
	RFSets    [][]RFSpec

	// Assigns lists the port-to-bus assignment strategies to explore.
	// Different assignments of the same structure share area and cycle
	// count but differ in CD and hence test cost — the paper's figure 6
	// effect, and the reason 2-D-close points spread out on the test axis.
	Assigns []tta.AssignStrategy

	// Workload is the scheduled kernel; WorkloadReps scales the kernel's
	// cycle count to the full application (crypt: 400 DES rounds).
	Workload     *program.Graph
	WorkloadReps int

	// BusAreaPerBit models the wiring/driver area of one bus bit line;
	// BusDelay adds the interconnect contribution to the clock period.
	BusAreaPerBit float64
	BusDelay      float64

	// Annotator supplies the gate-level back-annotation. Sharing one
	// across explorations reuses its ATPG cache.
	Annotator *testcost.Annotator

	// EnergyModel, when non-nil, adds a calibrated energy estimate to
	// every candidate (an extension beyond the paper's three axes).
	EnergyModel *power.Model

	// Parallelism bounds the number of candidates evaluated concurrently.
	// 0 selects GOMAXPROCS; negative values are a configuration error
	// (reported by Explore/ExploreContext). Results are identical at any
	// setting: candidates are independent and the annotator cache is
	// synchronized.
	Parallelism int

	// ATPGWorkers bounds the parallelism inside each gate-level ATPG run
	// behind an annotation-cache miss. 0 splits the core budget
	// automatically — max(1, GOMAXPROCS / evaluation parallelism) — so
	// candidate-level and ATPG-level workers never oversubscribe the
	// machine; negative values are a configuration error. Results are
	// identical at any setting (see atpg.Config.Workers).
	ATPGWorkers int

	// LaneWidth selects the fault-simulation pattern-block width inside
	// each gate-level ATPG run: 0 = auto by netlist size, or 64, 256,
	// 512 lanes. Results are identical at any setting; wider blocks only
	// change annotation wall time (see atpg.Config.LaneWidth).
	LaneWidth int

	// EventSink, when non-nil, receives the exploration's typed progress
	// events (candidate/restored completions, isolated panics, degraded
	// annotations, warnings, and a final "done") synchronously from the
	// emitting goroutine — it must be fast and concurrency-safe. See
	// Event for the schema, Config.Events for a channel adapter, and
	// FrontTracker for a ready-made live-front consumer. A nil sink
	// costs nothing.
	EventSink func(Event)

	// Obs, when non-nil, collects the exploration's metrics: per-stage
	// spans (dse > enumerate/evaluate/pareto/sim with sched and atpg
	// under evaluate), candidate counters, annotator cache hit rate,
	// worker utilization, and a per-candidate-completion progress event
	// stream. It is forwarded to the scheduler, the annotator's ATPG runs
	// and the functional simulator. Callers opt in per exploration — no
	// global state. A nil registry costs nothing.
	Obs *obs.Registry

	// VerifySelected, when set, functionally verifies the selected
	// candidate after the exploration: its schedule is re-derived and
	// executed on the cycle-accurate simulator (internal/sim) with every
	// transported value checked against the dataflow reference. The run
	// is recorded under the "sim" span of Obs.
	VerifySelected bool

	// Checkpoint, when non-nil, restores completed evaluations recorded
	// by a previous run of the same exploration and persists new ones as
	// workers finish (see OpenCheckpoint). A resumed run produces
	// byte-identical results to an uninterrupted one.
	Checkpoint *Checkpoint

	// Inject, when non-nil, arms deterministic fault injection across
	// the exploration: candidate evaluations (faultinject.DSEEval), the
	// annotator's ATPG runs and cache IO, and checkpoint writes. It is
	// forwarded to the annotator unless the annotator carries its own.
	// Nil (the default) costs nothing.
	Inject *faultinject.Injector

	// Search, when non-nil, replaces the exhaustive cross-product
	// enumeration (Buses × ALUCounts × CMPCounts × RFSets × Assigns)
	// with the guided GA + successive-halving exploration over the
	// widened parameter space (see SearchSpec and SearchSpaceSize). Only
	// the promoted survivors reach the full evaluation pipeline; events,
	// checkpoints, fronts and selection behave exactly as in sweep mode,
	// over the survivor list. The enumeration fields above are ignored.
	Search *SearchSpec

	// Shard, when non-nil, makes this run one worker of a process-sharded
	// exploration: the full candidate list is still produced (it is a
	// pure function of the config, so every shard derives the same list
	// with the same global indices), but only the contiguous slice
	// shardBounds assigns to Shard.Index is evaluated. The run's product
	// is its checkpoint file — Checkpoint is required — stamped with the
	// shard header; fronts and selection are left to the merge
	// (MergeExploreContext), which is the only way to see the whole
	// picture. Events keep global candidate indices and the global total.
	Shard *ShardRange

	// SpecHash, when non-empty, is the jobspec.Spec.Hash() result
	// identity stamped into checkpoint files, binding a shard checkpoint
	// to its job across resumes and merges. Empty skips the check
	// (direct Config users have no spec).
	SpecHash string
}

// DefaultConfig returns the exploration used for the paper's figures: the
// crypt round kernel over 1-4 buses, 1-3 ALUs, 1-2 comparators and six
// register-file arrangements.
func DefaultConfig() (Config, error) {
	kernel, err := crypt.BuildCryptKernel(1)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Width:     16,
		Seed:      7,
		Buses:     []int{1, 2, 3, 4},
		ALUCounts: []int{1, 2, 3},
		CMPCounts: []int{1, 2},
		RFSets: [][]RFSpec{
			{{8, 1, 1}, {8, 1, 1}},
			{{8, 1, 1}, {12, 1, 1}},
			{{8, 1, 2}, {12, 1, 1}},
			{{12, 1, 2}, {12, 1, 2}},
			{{16, 1, 2}},
			{{16, 2, 2}, {16, 1, 2}},
		},
		Assigns:       []tta.AssignStrategy{tta.SpreadFirst, tta.Packed},
		Workload:      kernel,
		WorkloadReps:  crypt.RoundsPerHash,
		BusAreaPerBit: 3.0,
		BusDelay:      1.5,
	}, nil
}

func (c *Config) fillDefaults() error {
	if c.Parallelism < 0 {
		return fmt.Errorf("dse: Parallelism %d is negative (use 0 for GOMAXPROCS)", c.Parallelism)
	}
	if c.ATPGWorkers < 0 {
		return fmt.Errorf("dse: ATPGWorkers %d is negative (use 0 to split the core budget automatically)", c.ATPGWorkers)
	}
	switch c.LaneWidth {
	case 0, 64, 256, 512:
	default:
		return fmt.Errorf("dse: LaneWidth %d is invalid (use 0 for auto, or 64, 256, 512)", c.LaneWidth)
	}
	if c.Shard != nil {
		if c.Shard.Count < 1 {
			return fmt.Errorf("dse: shard count %d (want >= 1)", c.Shard.Count)
		}
		if c.Shard.Index < 0 || c.Shard.Index >= c.Shard.Count {
			return fmt.Errorf("dse: shard index %d out of range [0,%d)", c.Shard.Index, c.Shard.Count)
		}
	}
	if c.Width == 0 {
		c.Width = 16
	}
	if c.Workload == nil {
		k, err := crypt.BuildCryptKernel(1)
		if err != nil {
			return err
		}
		c.Workload = k
		c.WorkloadReps = crypt.RoundsPerHash
	}
	if len(c.Assigns) == 0 {
		c.Assigns = []tta.AssignStrategy{tta.SpreadFirst}
	}
	if c.WorkloadReps == 0 {
		c.WorkloadReps = 1
	}
	if len(c.Buses) == 0 {
		c.Buses = []int{1, 2, 3, 4}
	}
	if len(c.ALUCounts) == 0 {
		c.ALUCounts = []int{1, 2}
	}
	if len(c.CMPCounts) == 0 {
		c.CMPCounts = []int{1}
	}
	if len(c.RFSets) == 0 {
		c.RFSets = [][]RFSpec{{{8, 1, 1}, {12, 1, 1}}}
	}
	if c.BusAreaPerBit == 0 {
		c.BusAreaPerBit = 3.0
	}
	if c.BusDelay == 0 {
		c.BusDelay = 1.5
	}
	if c.Annotator == nil {
		c.Annotator = testcost.NewAnnotator(c.Width, c.Seed)
	}
	// An annotator shared across concurrent explorations (the ttadsed
	// pool) must be fully configured before sharing; the nil checks
	// below then never write, so the shared fields are read-only here.
	if c.Annotator.Obs == nil && c.Obs != nil {
		c.Annotator.Obs = c.Obs
	}
	if c.Annotator.ATPGWorkers == 0 {
		c.Annotator.ATPGWorkers = c.atpgWorkerBudget()
	}
	if c.Annotator.LaneWidth == 0 && c.LaneWidth != 0 {
		c.Annotator.LaneWidth = c.LaneWidth
	}
	if c.Annotator.Inject == nil && c.Inject != nil {
		c.Annotator.Inject = c.Inject
	}
	return nil
}

// atpgWorkerBudget resolves the per-ATPG-run worker count: the explicit
// setting when given, otherwise the core budget left per concurrent
// candidate evaluation, so Parallelism × ATPGWorkers ≤ GOMAXPROCS and the
// two parallelism levels never oversubscribe.
func (c *Config) atpgWorkerBudget() int {
	if c.ATPGWorkers > 0 {
		return c.ATPGWorkers
	}
	evals := c.Parallelism
	if evals <= 0 {
		evals = runtime.GOMAXPROCS(0)
	}
	w := runtime.GOMAXPROCS(0) / evals
	if w < 1 {
		w = 1
	}
	return w
}

// Candidate is one evaluated design point.
type Candidate struct {
	Arch *tta.Architecture

	Area     float64 // NAND2-equivalent units (components + sockets + buses)
	Cycles   int     // kernel schedule length
	Clock    float64 // normalized clock period (critical path + bus delay)
	ExecTime float64 // Cycles * reps * Clock
	TestCost int     // equation (14)
	FullScan int     // full-scan baseline for the same components

	Feasible bool
	Reason   string // why infeasible

	Spills int

	// Energy is the estimated switched-capacitance + leakage per
	// application run (0 unless the exploration carries an energy model).
	Energy float64

	// Degraded marks a candidate whose test cost rests on the analytical
	// SCOAP bound instead of measured ATPG patterns — the annotator's
	// budget ran out (see testcost.Annotator.ATPGDeadline). Degraded
	// test costs are pessimistic upper bounds; SelectionSpec's
	// DegradedPolicy controls whether such points may win the selection.
	Degraded bool
}

// Coords returns the (area, time, test) vector.
func (c *Candidate) Coords() []float64 {
	return []float64{c.Area, c.ExecTime, float64(c.TestCost)}
}

// Result is a completed exploration.
type Result struct {
	Config     Config
	Candidates []Candidate

	// Feasible indexes candidates that scheduled successfully.
	Feasible []int
	// Front2D/Front3D index into Candidates: the area/time front
	// (figure 2) and the area/time/test front (figure 8).
	Front2D []int
	Front3D []int
	// Selected indexes Candidates: the minimal-equal-weight-Euclid-norm
	// member of the 3-D front (figure 9).
	Selected int
	// Verified reports that the selected candidate's schedule executed
	// correctly on the cycle-accurate simulator (Config.VerifySelected).
	Verified bool
}

// Explore runs the full exploration.
//
// Deprecated: Explore is a thin shim over ExploreContext with a
// background context; it cannot be cancelled, deadlined or drained.
// Use ExploreContext.
func Explore(cfg Config) (*Result, error) {
	return ExploreContext(context.Background(), cfg)
}

// ExploreContext runs the full exploration under ctx. Cancelling the
// context (or exceeding its deadline) stops the candidate evaluations —
// including in-flight scheduling and gate-level ATPG runs — promptly and
// with no leaked goroutine; a panicking or failing candidate is isolated
// to its own slot while the rest of the sweep continues. Whenever some
// candidates finished and others did not (cancellation, per-candidate
// errors, recovered panics), the result is still returned: fronts and
// selection are computed over the evaluated candidates, and the error is
// a *PartialError describing the holes, unwrapping to ctx.Err() for a
// timeout so callers can tell "ran out of time" from "hit a bug". Only a
// configuration error or an exploration with nothing usable returns a
// nil result. When cfg.Obs is set, the run is fully instrumented (see
// Config.Obs).
func ExploreContext(ctx context.Context, cfg Config) (*Result, error) {
	em := newEmitter(cfg.EventSink)
	nEvents := &atomic.Int64{}
	total := 0
	// Every exploration ends its typed stream with exactly one "done"
	// event, whatever the exit path — consumers (Config.Events, the
	// daemon's stream endpoint) key their termination on it.
	defer func() {
		em.emit(Event{Kind: EventDone, N: int(nEvents.Load()), Total: total})
	}()
	if err := cfg.fillDefaults(); err != nil {
		// No evaluation ran; still publish the gauge so every exit path
		// leaves "dse.worker.utilization" set.
		cfg.Obs.Gauge("dse.worker.utilization").Set(0)
		return nil, err
	}
	reg := cfg.Obs
	// Degraded-annotation and warning events surface through the obs
	// stream (they originate below dse); bridge them into the typed
	// stream for this run only.
	defer em.bridgeObs(reg)()
	cfg.Checkpoint.bind(reg, cfg.Inject)
	root := reg.StartSpan("dse")
	defer root.End()
	res := &Result{Config: cfg, Selected: -1}

	archs, err := produceArchs(ctx, &cfg, root)
	if err != nil {
		cfg.Obs.Gauge("dse.worker.utilization").Set(0)
		return nil, err
	}
	total = len(archs)
	reg.Counter("dse.candidates.total").Add(int64(len(archs)))

	// A shard run evaluates only its contiguous slice of the list.
	// Candidate production above is a pure function of the config, so
	// every shard (and the merge) derives the same list with the same
	// global indices — no index remapping anywhere.
	lo, hi := 0, len(archs)
	if cfg.Shard != nil {
		if cfg.Checkpoint == nil {
			cfg.Obs.Gauge("dse.worker.utilization").Set(0)
			return nil, fmt.Errorf("dse: a shard run requires a Checkpoint (the shard's product is its checkpoint file)")
		}
		lo, hi = shardBounds(len(archs), cfg.Shard.Count, cfg.Shard.Index)
		cfg.Checkpoint.setShard(checkpointShard{
			Shards: cfg.Shard.Count, Index: cfg.Shard.Index, Lo: lo, Hi: hi, Total: len(archs),
		})
	}

	errs := runEvaluations(ctx, &cfg, root, archs, res, em, nEvents, lo, hi)
	partial := partialErrorFor(ctx, res, errs, lo, hi)
	if hit, miss := reg.Counter("testcost.cache.hit").Value(), reg.Counter("testcost.cache.miss").Value(); hit+miss > 0 {
		reg.Gauge("testcost.cache.hit_rate").Set(float64(hit) / float64(hit+miss))
	}

	if cfg.Shard != nil {
		// Fronts and selection need the whole picture; a shard stops at
		// its checkpoint and lets MergeExploreContext compute them once.
		if partial != nil {
			return res, partial
		}
		return res, nil
	}

	paretoSp := root.Child("pareto")
	defer paretoSp.End()
	var pts2, pts3 []pareto.Point
	for i := range res.Candidates {
		c := &res.Candidates[i]
		// Fronts are built over candidates that evaluated cleanly:
		// error'd slots may carry a half-filled evaluation, and
		// never-started slots (cancelled feed) are zero values.
		if !c.Feasible || errs[i] != nil || c.Arch == nil {
			continue
		}
		res.Feasible = append(res.Feasible, i)
		pts2 = append(pts2, pareto.Point{ID: i, Coords: []float64{c.Area, c.ExecTime}})
		pts3 = append(pts3, pareto.Point{ID: i, Coords: c.Coords()})
	}
	if len(pts2) == 0 {
		if partial != nil {
			return res, partial
		}
		return res, fmt.Errorf("dse: no feasible candidate in the explored space")
	}
	for _, pi := range pareto.Front(pts2) {
		res.Front2D = append(res.Front2D, pts2[pi].ID)
	}
	for _, pi := range pareto.Front(pts3) {
		res.Front3D = append(res.Front3D, pts3[pi].ID)
	}
	sort.Ints(res.Front2D)
	sort.Ints(res.Front3D)

	// Selection (figure 9): equal-weight Euclidean norm over the 3-D
	// front members.
	if err := res.Reselect(SelectionSpec{}); err != nil {
		return res, err
	}
	paretoSp.End()

	if cfg.VerifySelected && res.Selected >= 0 && ctx.Err() == nil {
		simSp := root.Child("sim")
		err := verifySelected(ctx, &cfg, res)
		simSp.End()
		if err != nil {
			return res, fmt.Errorf("dse: selected-candidate verification: %w", err)
		}
		res.Verified = true
	}
	if partial != nil {
		return res, partial
	}
	return res, nil
}

// produceArchs builds the candidate list — exhaustive enumeration by
// default, the guided GA screen when Search is set. It is a pure
// function of the config (the GA draws from a control-thread-only rng
// and screens with the pure bound tier), which is what lets shard
// workers and the merge each derive the identical list.
func produceArchs(ctx context.Context, cfg *Config, root *obs.Span) ([]*tta.Architecture, error) {
	if cfg.Search != nil {
		spec := *cfg.Search
		if err := spec.fillDefaults(cfg.Seed); err != nil {
			return nil, err
		}
		searchSp := root.Child("search")
		archs, err := searchCandidates(ctx, cfg, searchSp, spec)
		searchSp.End()
		return archs, err
	}
	enumSp := root.Child("enumerate")
	defer enumSp.End()
	var archs []*tta.Architecture
	id := 0
	for _, buses := range cfg.Buses {
		for _, nALU := range cfg.ALUCounts {
			for _, nCMP := range cfg.CMPCounts {
				for rfi, rfs := range cfg.RFSets {
					for _, strat := range cfg.Assigns {
						archs = append(archs, buildArch(cfg.Width, buses, nALU, nCMP, rfs, strat, id, rfi))
						id++
					}
				}
			}
		}
	}
	return archs, nil
}

// partialErrorFor tallies the holes an evaluation sweep left behind over
// its [lo, hi) slice and builds the *PartialError describing them — nil
// when every candidate of the slice evaluated cleanly.
func partialErrorFor(ctx context.Context, res *Result, errs []error, lo, hi int) *PartialError {
	evaluated, panics := 0, 0
	var errMap map[int]error
	for i := lo; i < hi; i++ {
		err := errs[i]
		switch {
		case err != nil:
			if errMap == nil {
				errMap = make(map[int]error)
			}
			errMap[i] = err
			var pe *EvalPanicError
			if errors.As(err, &pe) {
				panics++
			}
		case res.Candidates[i].Arch != nil:
			evaluated++
		}
	}
	if errMap == nil && evaluated == hi-lo && ctx.Err() == nil {
		return nil
	}
	cause := ctx.Err()
	if cause == nil {
		cause = firstErr(errMap)
	}
	if cause == nil {
		// No context error and no per-candidate error, yet holes remain —
		// defensive; the feed loop only skips candidates on ctx.Done().
		cause = fmt.Errorf("dse: %d candidates never evaluated", hi-lo-evaluated)
	}
	return &PartialError{
		Total:     hi - lo,
		Evaluated: evaluated,
		Panics:    panics,
		Errs:      errMap,
		Cause:     cause,
	}
}

// runEvaluations evaluates the [lo, hi) slice of the candidate list over
// a bounded worker pool, filling the matching res.Candidates slots
// (indexed, so ordering is deterministic at any parallelism) and
// returning the per-candidate errors. An unsharded run passes the whole
// range; a shard run its own slice — events always carry the global
// index and total, so downstream consumers never remap. Evaluations
// recorded in cfg.Checkpoint are restored instead of recomputed, and new
// completions are recorded back. A panicking evaluation is recovered
// into its own error slot (*EvalPanicError); the sweep continues. The
// "dse.worker.utilization" gauge is set on every exit path — including a
// cancelled context or a candidate error surfacing to the caller.
func runEvaluations(ctx context.Context, cfg *Config, root *obs.Span, archs []*tta.Architecture, res *Result, em *emitter, nEvents *atomic.Int64, lo, hi int) []error {
	reg := cfg.Obs
	res.Candidates = make([]Candidate, len(archs))
	errs := make([]error, len(archs))

	// Restore the finished prefix of an interrupted run before spinning
	// up workers: restored slots never enter the feed. Each restore is
	// announced on the typed stream (kind "restored"), so live-front
	// consumers of a resumed run see the full picture.
	restored := make([]bool, len(archs))
	nRestored := 0
	for i := lo; i < hi; i++ {
		arch := archs[i]
		if e, ok := cfg.Checkpoint.lookup(checkpointKey(arch)); ok {
			res.Candidates[i] = e.candidate(arch)
			restored[i] = true
			nRestored++
			em.emit(Event{
				Kind:      EventRestored,
				Msg:       candidateEventMsg(arch, &res.Candidates[i], nil),
				N:         nRestored,
				Total:     len(archs),
				Candidate: candidateUpdate(i, arch, &res.Candidates[i], nil),
			})
			nEvents.Add(1)
		}
	}
	if nRestored > 0 {
		reg.Counter("dse.checkpoint.restored").Add(int64(nRestored))
	}
	defer cfg.Checkpoint.Flush()

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > hi-lo-nRestored {
		workers = hi - lo - nRestored
	}
	reg.Gauge("dse.workers").Set(float64(workers))
	memo := newSchedMemo()
	evalStart := time.Now()
	var busyNS, completed atomic.Int64
	completed.Store(int64(nRestored))
	defer func() {
		util := 0.0
		if wall := time.Since(evalStart); wall > 0 && workers > 0 {
			util = float64(busyNS.Load()) / (float64(wall.Nanoseconds()) * float64(workers))
		}
		reg.Gauge("dse.worker.utilization").Set(util)
	}()
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				t0 := time.Now()
				sp := root.Child("evaluate")
				res.Candidates[i], errs[i] = safeEvaluate(ctx, cfg, archs[i], sp, memo, em)
				sp.End()
				busyNS.Add(int64(time.Since(t0)))
				if errs[i] == nil {
					if res.Candidates[i].Feasible {
						reg.Counter("dse.candidates.feasible").Inc()
					} else {
						reg.Counter("dse.candidates.infeasible").Inc()
					}
					cfg.Checkpoint.record(checkpointKey(archs[i]), &res.Candidates[i])
				}
				n := int(completed.Add(1))
				msg := candidateEventMsg(archs[i], &res.Candidates[i], errs[i])
				em.emit(Event{
					Kind:      EventCandidate,
					Msg:       msg,
					N:         n,
					Total:     len(archs),
					Candidate: candidateUpdate(i, archs[i], &res.Candidates[i], errs[i]),
				})
				nEvents.Add(1)
				reg.Emit(obs.Event{
					Kind:  "candidate",
					Msg:   msg,
					N:     n,
					Total: len(archs),
				})
			}
		}()
	}
feed:
	for i := lo; i < hi; i++ {
		if restored[i] {
			continue
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return errs
}

// safeEvaluate isolates one candidate evaluation: a panic anywhere under
// it (scheduler, annotator, ATPG, injected chaos) is recovered into a
// *EvalPanicError on that candidate's slot, counted on "dse.eval.panics"
// and emitted as a "panic" event carrying the stack — the rest of the
// sweep keeps running. The faultinject.DSEEval hit point fires here, so
// every injection mode (error, panic, cancel, sleep) exercises the same
// path real failures take.
func safeEvaluate(ctx context.Context, cfg *Config, arch *tta.Architecture, sp *obs.Span, memo *schedMemo, em *emitter) (cand Candidate, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &EvalPanicError{Arch: arch.Name, Value: r, Stack: debug.Stack()}
			cand, err = Candidate{Arch: arch}, pe
			cfg.Obs.Counter("dse.eval.panics").Inc()
			msg := fmt.Sprintf("%v\n%s", pe, pe.Stack)
			em.emit(Event{Kind: EventPanic, Msg: msg})
			cfg.Obs.Emit(obs.Event{Kind: "panic", Msg: msg})
		}
	}()
	if err := cfg.Inject.Hit(faultinject.DSEEval); err != nil {
		return Candidate{Arch: arch}, err
	}
	return evaluate(ctx, cfg, arch, sp, memo)
}

// candidateEventMsg renders one progress-event line for a completed
// candidate evaluation.
func candidateEventMsg(arch *tta.Architecture, c *Candidate, err error) string {
	switch {
	case err != nil:
		return fmt.Sprintf("%s: error: %v", arch.Name, err)
	case !c.Feasible:
		return fmt.Sprintf("%s: infeasible (%s)", arch.Name, c.Reason)
	default:
		return fmt.Sprintf("%s: area %.0f, %d cycles, test %d", arch.Name, c.Area, c.Cycles, c.TestCost)
	}
}

// verifySelected cross-checks the selected candidate end to end: the
// workload is re-scheduled onto the winning architecture and the move
// program executed on the cycle-accurate simulator with reference
// verification of every transported value (inputs seeded to zero — the
// check is schedule correctness, not application output).
func verifySelected(ctx context.Context, cfg *Config, res *Result) error {
	arch := res.Candidates[res.Selected].Arch
	schedRes, err := sched.ScheduleContext(ctx, cfg.Workload, arch, sched.Options{Obs: cfg.Obs})
	if err != nil {
		return err
	}
	inputs := make([]uint64, cfg.Workload.NumInputs())
	_, err = sim.Run(schedRes, inputs, crypt.MemoryImage(), sim.Options{Verify: true, Obs: cfg.Obs})
	return err
}

// buildArch assembles one candidate architecture.
func buildArch(width, buses, nALU, nCMP int, rfs []RFSpec, strat tta.AssignStrategy, id, rfi int) *tta.Architecture {
	a := &tta.Architecture{
		Name:  fmt.Sprintf("c%03d_b%d_a%d_c%d_rf%d_%s", id, buses, nALU, nCMP, rfi, strat),
		Width: width,
		Buses: buses,
	}
	for i := 0; i < nALU; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.ALU, fmt.Sprintf("ALU%d", i+1)))
	}
	for i := 0; i < nCMP; i++ {
		a.Components = append(a.Components, tta.NewFU(tta.CMP, fmt.Sprintf("CMP%d", i+1)))
	}
	for i, rf := range rfs {
		a.Components = append(a.Components, tta.NewRF(fmt.Sprintf("RF%d", i+1), rf.Regs, rf.In, rf.Out))
	}
	a.Components = append(a.Components,
		tta.NewFU(tta.LDST, "LD/ST"),
		tta.NewPC("PC"),
		tta.NewIMM("Immediate"),
	)
	tta.AssignPorts(a, strat)
	return a
}

// structEval is the structural (port-assignment-independent) part of a
// candidate evaluation: the scheduler never reads the port-to-bus
// assignment (only the bus count), and area, clock and energy depend only
// on the component mix — so the Assigns variants of one structure share
// all of it and recompute only CD and hence test cost.
type structEval struct {
	feasible bool
	reason   string
	cycles   int
	spills   int
	area     float64
	clock    float64
	energy   float64
}

// structKey is the structural signature a schedule memo entry is keyed
// by: width, bus count and the ordered component mix (kinds, ALU adder
// microarchitecture, register-file shapes) — everything that feeds the
// structural evaluation, and nothing of the port assignment.
func structKey(a *tta.Architecture) string {
	var b strings.Builder
	fmt.Fprintf(&b, "w%d/b%d", a.Width, a.Buses)
	for ci := range a.Components {
		c := &a.Components[ci]
		switch c.Kind {
		case tta.ALU:
			fmt.Fprintf(&b, "/alu:%s", c.Adder)
		case tta.RF:
			fmt.Fprintf(&b, "/rf:%dx%dw%dr", c.NumRegs, c.NumIn, c.NumOut)
		default:
			fmt.Fprintf(&b, "/%s", c.Kind)
		}
	}
	return b.String()
}

// schedMemo shares structural evaluations across the assign-strategy
// variants of one structure, single-flight per key: the first requester
// schedules, duplicates block only on their own structure's latch.
type schedMemo struct {
	mu sync.Mutex
	m  map[string]*schedMemoEntry
}

type schedMemoEntry struct {
	done chan struct{} // closed once val/err are set
	val  structEval
	err  error
}

func newSchedMemo() *schedMemo {
	return &schedMemo{m: make(map[string]*schedMemoEntry)}
}

// structEvalFn computes the structural part of a candidate evaluation —
// evalStructural (exact annotations) or evalStructuralBound (the guided
// search's cheap tier).
type structEvalFn func(context.Context, *Config, *tta.Architecture, *obs.Span) (structEval, error)

// get returns the structural evaluation for arch, computing it at most
// once per structural signature ("dse.sched.memo.hit"/".miss" count the
// reuse). sp is the requesting candidate's "evaluate" span; only the
// computing request records "sched"/"atpg" children under it.
func (m *schedMemo) get(ctx context.Context, cfg *Config, arch *tta.Architecture, sp *obs.Span) (structEval, error) {
	return m.getWith(ctx, cfg, arch, sp, evalStructural)
}

// getWith is get with a pluggable structural evaluator. One memo
// instance must stick to one evaluator — the full and cheap tiers use
// separate memos, so a key never mixes fidelities.
func (m *schedMemo) getWith(ctx context.Context, cfg *Config, arch *tta.Architecture, sp *obs.Span, fn structEvalFn) (structEval, error) {
	key := structKey(arch)
	m.mu.Lock()
	e, ok := m.m[key]
	if ok {
		m.mu.Unlock()
		cfg.Obs.Counter("dse.sched.memo.hit").Inc()
		select {
		case <-e.done:
			return e.val, e.err
		case <-ctx.Done():
			return structEval{}, ctx.Err()
		}
	}
	e = &schedMemoEntry{done: make(chan struct{})}
	m.m[key] = e
	m.mu.Unlock()
	cfg.Obs.Counter("dse.sched.memo.miss").Inc()
	// The latch must settle even if the structural evaluation panics:
	// variants of the same structure are blocked on e.done, and a leader
	// that dies without closing it would strand them forever. The panic
	// itself still propagates (safeEvaluate isolates it to the leader's
	// candidate); the waiters get an ordinary error.
	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("dse: structural evaluation of %s panicked: %v", arch.Name, r)
			close(e.done)
			panic(r)
		}
	}()
	e.val, e.err = fn(ctx, cfg, arch, sp)
	close(e.done)
	return e.val, e.err
}

// evalStructural schedules the kernel and derives area, clock and energy
// for one structure — the memoized part of evaluate.
func evalStructural(ctx context.Context, cfg *Config, arch *tta.Architecture, sp *obs.Span) (structEval, error) {
	return evalStructuralWith(ctx, cfg, arch, sp, cfg.Annotator.AreaDelayContext)
}

// evalStructuralBound is evalStructural on the annotator's cheap tier:
// identical scheduling, area and clock (both tiers measure them from the
// netlist), but no gate-level ATPG behind the annotation — the guided
// search screens generations with it.
func evalStructuralBound(ctx context.Context, cfg *Config, arch *tta.Architecture, sp *obs.Span) (structEval, error) {
	return evalStructuralWith(ctx, cfg, arch, sp, cfg.Annotator.AreaDelayBoundContext)
}

func evalStructuralWith(ctx context.Context, cfg *Config, arch *tta.Architecture, sp *obs.Span, areaDelay func(context.Context, *tta.Component) (float64, float64, error)) (structEval, error) {
	// Throughput axis: schedule the kernel.
	schedSp := sp.Child("sched")
	schedRes, err := sched.ScheduleContext(ctx, cfg.Workload, arch, sched.Options{Obs: cfg.Obs})
	schedSp.End()
	if err != nil {
		if ctx.Err() != nil {
			return structEval{}, ctx.Err()
		}
		return structEval{feasible: false, reason: err.Error()}, nil
	}
	se := structEval{
		feasible: true,
		cycles:   schedRes.Cycles,
		spills:   schedRes.Spills,
	}

	// Area and clock axes from the gate-level library.
	atpgSp := sp.Child("atpg")
	defer atpgSp.End()
	area := 0.0
	clock := cfg.BusDelay
	for ci := range arch.Components {
		ar, dl, err := areaDelay(ctx, &arch.Components[ci])
		if err != nil {
			return structEval{}, err
		}
		area += ar
		if dl+cfg.BusDelay > clock {
			clock = dl + cfg.BusDelay
		}
	}
	inA, outA, err := cfg.Annotator.SocketArea()
	if err != nil {
		return structEval{}, err
	}
	for ci := range arch.Components {
		c := &arch.Components[ci]
		area += float64(len(c.InputPorts()))*inA + float64(len(c.OutputPorts()))*outA
	}
	area += float64(arch.Buses) * float64(arch.Width) * cfg.BusAreaPerBit
	se.area = area
	se.clock = clock
	if cfg.EnergyModel != nil {
		est := cfg.EnergyModel.ScheduleEnergy(schedRes, area)
		se.energy = est.Total * float64(cfg.WorkloadReps)
	}
	return se, nil
}

// evaluate computes all three axes for one candidate. sp (nil allowed)
// is the candidate's "evaluate" span; scheduling and gate-level
// annotation time are recorded under its "sched" and "atpg" children.
// The structural part (cycles, area, clock, energy) comes from the shared
// memo; only the assignment-dependent test cost is computed per variant.
func evaluate(ctx context.Context, cfg *Config, arch *tta.Architecture, sp *obs.Span, memo *schedMemo) (Candidate, error) {
	cand := Candidate{Arch: arch}
	se, err := memo.get(ctx, cfg, arch, sp)
	if err != nil {
		return cand, err
	}
	cand.Feasible = se.feasible
	cand.Reason = se.reason
	if !se.feasible {
		return cand, nil
	}
	cand.Cycles = se.cycles
	cand.Spills = se.spills
	cand.Area = se.area
	cand.Clock = se.clock
	cand.ExecTime = float64(se.cycles) * float64(cfg.WorkloadReps) * se.clock
	cand.Energy = se.energy

	// Test axis: equation (14) — CD depends on the port assignment, so
	// this is never memoized across variants (the annotator's own
	// per-component cache still applies).
	cost, err := cfg.Annotator.EvaluateContext(ctx, arch)
	if err != nil {
		return cand, err
	}
	cand.TestCost = cost.Total
	cand.FullScan = cost.FullScanTotal
	cand.Degraded = cost.Degraded
	return cand, nil
}

// ProjectionPreserved checks the paper's figure-8 claim: projecting the
// 3-D front back onto the area/time plane loses no point of the 2-D front
// ("the first projection of the 3D curve in the area-execution-time plane
// is still the curve from figure 2"). The comparison is by coordinates:
// when several candidates tie in area and time (e.g. port-assignment
// variants), the 3-D front keeps the test-cheapest one, which still covers
// the 2-D point.
func (r *Result) ProjectionPreserved() bool {
	const eps = 1e-9
	for _, i := range r.Front2D {
		a := &r.Candidates[i]
		covered := false
		for _, j := range r.Front3D {
			b := &r.Candidates[j]
			if relDiff(a.Area, b.Area) < eps && relDiff(a.ExecTime, b.ExecTime) < eps {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// TestCostSpread reports the widest (min, max) test-cost pair among
// feasible candidates whose area and execution-time coordinates lie within
// relative eps of each other — the paper's observation that architectures
// close to each other on the 2-D Pareto curve may still differ strongly in
// test cost (figure 8), which is what makes the third axis worth adding.
func (r *Result) TestCostSpread(eps float64) (lo, hi int, found bool) {
	bestSpread := -1
	for ai, i := range r.Feasible {
		for _, j := range r.Feasible[ai+1:] {
			a, b := &r.Candidates[i], &r.Candidates[j]
			if relDiff(a.Area, b.Area) >= eps || relDiff(a.ExecTime, b.ExecTime) >= eps {
				continue
			}
			l, h := a.TestCost, b.TestCost
			if l > h {
				l, h = h, l
			}
			if h-l > bestSpread {
				bestSpread = h - l
				lo, hi, found = l, h, true
			}
		}
	}
	return lo, hi, found
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}
