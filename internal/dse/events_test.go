package dse

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// smallSpec keeps event tests fast: 24 candidates (2 bus counts x 6 RF
// sets x 2 assignment strategies).
func smallSpec() jobspec.Spec {
	return jobspec.Spec{Buses: []int{1, 2}, ALUs: []int{1}, CMPs: []int{1}, Parallelism: 2}
}

func TestEventStreamLifecycle(t *testing.T) {
	cfg, _, err := FromSpec(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sinkEvents []Event
	cfg.EventSink = func(ev Event) {
		mu.Lock()
		sinkEvents = append(sinkEvents, ev)
		mu.Unlock()
	}
	ch := cfg.Events(context.Background())
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	var got []Event
	for ev := range ch { // must terminate via the done event
		got = append(got, ev)
	}
	nCand, nDone := 0, 0
	var last Event
	for _, ev := range got {
		switch ev.Kind {
		case EventCandidate:
			nCand++
			if ev.Candidate == nil || ev.Candidate.Arch == "" {
				t.Errorf("candidate event without payload: %+v", ev)
			}
			if ev.Total != 24 {
				t.Errorf("candidate event total = %d, want 24", ev.Total)
			}
		case EventDone:
			nDone++
		}
		last = ev
	}
	if nCand != 24 {
		t.Errorf("got %d candidate events, want 24", nCand)
	}
	if nDone != 1 || last.Kind != EventDone {
		t.Errorf("stream must end with exactly one done event (done=%d, last=%s)", nDone, last.Kind)
	}
	if last.N != 24 || last.Total != 24 {
		t.Errorf("done event progress = %d/%d, want 24/24", last.N, last.Total)
	}
	// Sequence numbers are monotone and 1-based.
	for i, ev := range got {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// The chained sink saw the same events.
	mu.Lock()
	defer mu.Unlock()
	if len(sinkEvents) != len(got) {
		t.Errorf("chained sink saw %d events, channel %d", len(sinkEvents), len(got))
	}
}

func TestEventStreamDoneOnConfigError(t *testing.T) {
	cfg, _, err := FromSpec(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = -1 // configuration error: no evaluation runs
	ch := cfg.Events(context.Background())
	if _, err := ExploreContext(context.Background(), cfg); err == nil {
		t.Fatal("want configuration error")
	}
	var kinds []EventKind
	for ev := range ch {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 1 || kinds[0] != EventDone {
		t.Fatalf("config-error stream = %v, want exactly [done]", kinds)
	}
}

func TestFrontTrackerLiveSnapshot(t *testing.T) {
	cfg, _, err := FromSpec(jobspec.Spec{Buses: []int{1, 2, 3}, ALUs: []int{1, 2}, CMPs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewFrontTracker()
	cfg.EventSink = tr.Observe
	res, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if snap.Evaluated != len(res.Candidates) {
		t.Errorf("tracker evaluated %d, result has %d", snap.Evaluated, len(res.Candidates))
	}
	if snap.Feasible != len(res.Feasible) {
		t.Errorf("tracker feasible %d, result has %d", snap.Feasible, len(res.Feasible))
	}
	// The tracker's final fronts must match the batch computation.
	if len(snap.Front2D) != len(res.Front2D) || len(snap.Front3D) != len(res.Front3D) {
		t.Fatalf("tracker fronts %d/%d, result fronts %d/%d",
			len(snap.Front2D), len(snap.Front3D), len(res.Front2D), len(res.Front3D))
	}
	for k, i := range res.Front3D {
		if snap.Front3D[k].Index != i {
			t.Errorf("front3d[%d] = candidate %d, want %d", k, snap.Front3D[k].Index, i)
		}
		if snap.Front3D[k].TestCost != res.Candidates[i].TestCost {
			t.Errorf("front3d[%d] test cost %d, want %d", k, snap.Front3D[k].TestCost, res.Candidates[i].TestCost)
		}
	}
	// Empty tracker snapshots are valid and empty.
	empty := NewFrontTracker().Snapshot()
	if empty.Evaluated != 0 || len(empty.Front2D) != 0 {
		t.Errorf("empty tracker snapshot: %+v", empty)
	}
}

// TestFrontTrackerDedupesByIndex is the accounting regression test: a
// checkpoint-resumed job can see the same candidate index delivered more
// than once (a restored event replayed around a resume, or a restored
// entry whose candidate later also completes live). The tracker must
// count every index exactly once, so the status endpoint can never
// report evaluated > total.
func TestFrontTrackerDedupesByIndex(t *testing.T) {
	tr := NewFrontTracker()
	upd := func(i int, area, et float64, tc int) *CandidateUpdate {
		return &CandidateUpdate{Index: i, Arch: "a", Feasible: true, Area: area, ExecTime: et, TestCost: tc}
	}
	// 3 distinct candidates, total 3 — but 6 deliveries: each index
	// arrives once as "restored" and once more as "candidate".
	for _, ev := range []Event{
		{Kind: EventRestored, Total: 3, Candidate: upd(0, 10, 10, 10)},
		{Kind: EventRestored, Total: 3, Candidate: upd(1, 5, 20, 10)},
		{Kind: EventCandidate, Total: 3, Candidate: upd(0, 10, 10, 10)},
		{Kind: EventCandidate, Total: 3, Candidate: upd(2, 20, 5, 10)},
		{Kind: EventCandidate, Total: 3, Candidate: upd(1, 5, 20, 10)},
		{Kind: EventRestored, Total: 3, Candidate: upd(2, 20, 5, 10)},
	} {
		tr.Observe(ev)
	}
	evaluated, total := tr.Progress()
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	if evaluated > total {
		t.Fatalf("evaluated %d > total %d: resume double-counting", evaluated, total)
	}
	if evaluated != 3 {
		t.Fatalf("evaluated = %d, want 3 (each index once)", evaluated)
	}
	snap := tr.Snapshot()
	if snap.Evaluated != 3 || snap.Feasible != 3 {
		t.Fatalf("snapshot evaluated/feasible = %d/%d, want 3/3", snap.Evaluated, snap.Feasible)
	}
	if len(snap.Front2D) != 3 {
		t.Fatalf("front2d %d members, want 3 (no duplicated rows)", len(snap.Front2D))
	}
}

// TestFrontTrackerMemoryIsFrontBound asserts the unbounded-memory fix:
// after observing many dominated candidates, the tracker retains only
// current front members (plus the one-bit-per-index seen set), not every
// feasible CandidateUpdate — and Snapshot no longer recomputes a batch
// pareto.Front over the evaluated set.
func TestFrontTrackerMemoryIsFrontBound(t *testing.T) {
	tr := NewFrontTracker()
	const n = 50000
	// Every candidate is feasible; coordinates improve with the index, so
	// each new point evicts the previous one and the live front stays at
	// size 1 while n candidates stream through.
	for i := 0; i < n; i++ {
		v := float64(n - i)
		tr.Observe(Event{Kind: EventCandidate, Total: n, Candidate: &CandidateUpdate{
			Index: i, Arch: "a", Feasible: true, Area: v, ExecTime: v, TestCost: int(v),
		}})
	}
	if got := len(tr.members); got != 1 {
		t.Fatalf("tracker retains %d candidate updates after %d evaluations; want 1 (front size)", got, n)
	}
	if s2, s3 := tr.sf2.Size(), tr.sf3.Size(); s2 != 1 || s3 != 1 {
		t.Fatalf("archive sizes %d/%d, want 1/1", s2, s3)
	}
	snap := tr.Snapshot()
	if snap.Evaluated != n || snap.Feasible != n {
		t.Fatalf("snapshot evaluated/feasible = %d/%d, want %d/%d", snap.Evaluated, snap.Feasible, n, n)
	}
	if len(snap.Front2D) != 1 || snap.Front2D[0].Index != n-1 {
		t.Fatalf("front2d = %+v, want the single best candidate %d", snap.Front2D, n-1)
	}
	// The seen set is a bitset: one bit per index, not a map of updates.
	if words := len(tr.seen); words > n/64+2 {
		t.Fatalf("seen bitset has %d words for %d candidates", words, n)
	}
}

// TestFrontTrackerRejectsNaN: a candidate with a NaN objective (e.g. a
// corrupted degraded annotation) must not poison the live fronts — it is
// refused at the pareto boundary and counted, while accounting proceeds.
func TestFrontTrackerRejectsNaN(t *testing.T) {
	tr := NewFrontTracker()
	nan := math.NaN()
	tr.Observe(Event{Kind: EventCandidate, Total: 2, Candidate: &CandidateUpdate{
		Index: 0, Arch: "bad", Feasible: true, Area: nan, ExecTime: 1, TestCost: 1,
	}})
	tr.Observe(Event{Kind: EventCandidate, Total: 2, Candidate: &CandidateUpdate{
		Index: 1, Arch: "ok", Feasible: true, Area: 1, ExecTime: 1, TestCost: 1,
	}})
	snap := tr.Snapshot()
	if snap.Evaluated != 2 || snap.Feasible != 2 {
		t.Fatalf("accounting = %d/%d, want 2/2", snap.Evaluated, snap.Feasible)
	}
	if len(snap.Front2D) != 1 || snap.Front2D[0].Index != 1 {
		t.Fatalf("front2d = %+v, want only the finite candidate", snap.Front2D)
	}
	if tr.rejected != 1 {
		t.Fatalf("rejected = %d, want 1", tr.rejected)
	}
}

func TestObsBridgeScopedToRun(t *testing.T) {
	// A degraded/warning obs event during the run is bridged into the
	// typed stream; after the run the bridge is cancelled.
	cfg, _, err := FromSpec(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	var mu sync.Mutex
	var kinds []EventKind
	cfg.EventSink = func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	}
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(kinds)
	mu.Unlock()
	reg.Emit(obs.Event{Kind: "warning", Msg: "after the run"})
	mu.Lock()
	defer mu.Unlock()
	if len(kinds) != n {
		t.Fatalf("obs bridge leaked past the exploration: %v", kinds[n:])
	}
}
