package dse

import (
	"context"
	"sync"
	"testing"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// smallSpec keeps event tests fast: 24 candidates (2 bus counts x 6 RF
// sets x 2 assignment strategies).
func smallSpec() jobspec.Spec {
	return jobspec.Spec{Buses: []int{1, 2}, ALUs: []int{1}, CMPs: []int{1}, Parallelism: 2}
}

func TestEventStreamLifecycle(t *testing.T) {
	cfg, _, err := FromSpec(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var sinkEvents []Event
	cfg.EventSink = func(ev Event) {
		mu.Lock()
		sinkEvents = append(sinkEvents, ev)
		mu.Unlock()
	}
	ch := cfg.Events(context.Background())
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	var got []Event
	for ev := range ch { // must terminate via the done event
		got = append(got, ev)
	}
	nCand, nDone := 0, 0
	var last Event
	for _, ev := range got {
		switch ev.Kind {
		case EventCandidate:
			nCand++
			if ev.Candidate == nil || ev.Candidate.Arch == "" {
				t.Errorf("candidate event without payload: %+v", ev)
			}
			if ev.Total != 24 {
				t.Errorf("candidate event total = %d, want 24", ev.Total)
			}
		case EventDone:
			nDone++
		}
		last = ev
	}
	if nCand != 24 {
		t.Errorf("got %d candidate events, want 24", nCand)
	}
	if nDone != 1 || last.Kind != EventDone {
		t.Errorf("stream must end with exactly one done event (done=%d, last=%s)", nDone, last.Kind)
	}
	if last.N != 24 || last.Total != 24 {
		t.Errorf("done event progress = %d/%d, want 24/24", last.N, last.Total)
	}
	// Sequence numbers are monotone and 1-based.
	for i, ev := range got {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// The chained sink saw the same events.
	mu.Lock()
	defer mu.Unlock()
	if len(sinkEvents) != len(got) {
		t.Errorf("chained sink saw %d events, channel %d", len(sinkEvents), len(got))
	}
}

func TestEventStreamDoneOnConfigError(t *testing.T) {
	cfg, _, err := FromSpec(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = -1 // configuration error: no evaluation runs
	ch := cfg.Events(context.Background())
	if _, err := ExploreContext(context.Background(), cfg); err == nil {
		t.Fatal("want configuration error")
	}
	var kinds []EventKind
	for ev := range ch {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 1 || kinds[0] != EventDone {
		t.Fatalf("config-error stream = %v, want exactly [done]", kinds)
	}
}

func TestFrontTrackerLiveSnapshot(t *testing.T) {
	cfg, _, err := FromSpec(jobspec.Spec{Buses: []int{1, 2, 3}, ALUs: []int{1, 2}, CMPs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewFrontTracker()
	cfg.EventSink = tr.Observe
	res, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if snap.Evaluated != len(res.Candidates) {
		t.Errorf("tracker evaluated %d, result has %d", snap.Evaluated, len(res.Candidates))
	}
	if snap.Feasible != len(res.Feasible) {
		t.Errorf("tracker feasible %d, result has %d", snap.Feasible, len(res.Feasible))
	}
	// The tracker's final fronts must match the batch computation.
	if len(snap.Front2D) != len(res.Front2D) || len(snap.Front3D) != len(res.Front3D) {
		t.Fatalf("tracker fronts %d/%d, result fronts %d/%d",
			len(snap.Front2D), len(snap.Front3D), len(res.Front2D), len(res.Front3D))
	}
	for k, i := range res.Front3D {
		if snap.Front3D[k].Index != i {
			t.Errorf("front3d[%d] = candidate %d, want %d", k, snap.Front3D[k].Index, i)
		}
		if snap.Front3D[k].TestCost != res.Candidates[i].TestCost {
			t.Errorf("front3d[%d] test cost %d, want %d", k, snap.Front3D[k].TestCost, res.Candidates[i].TestCost)
		}
	}
	// Empty tracker snapshots are valid and empty.
	empty := NewFrontTracker().Snapshot()
	if empty.Evaluated != 0 || len(empty.Front2D) != 0 {
		t.Errorf("empty tracker snapshot: %+v", empty)
	}
}

func TestObsBridgeScopedToRun(t *testing.T) {
	// A degraded/warning obs event during the run is bridged into the
	// typed stream; after the run the bridge is cancelled.
	cfg, _, err := FromSpec(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	var mu sync.Mutex
	var kinds []EventKind
	cfg.EventSink = func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	}
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(kinds)
	mu.Unlock()
	reg.Emit(obs.Event{Kind: "warning", Msg: "after the run"})
	mu.Lock()
	defer mu.Unlock()
	if len(kinds) != n {
		t.Fatalf("obs bridge leaked past the exploration: %v", kinds[n:])
	}
}
