package dse

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tta"
)

// smallConfig is a one-candidate space at a narrow width, cheap enough
// for instrumentation tests.
func smallConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Width = 8
	cfg.Buses = []int{2}
	cfg.ALUCounts = []int{1}
	cfg.CMPCounts = []int{1}
	cfg.RFSets = [][]RFSpec{{{16, 2, 2}, {16, 1, 2}}}
	cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst}
	cfg.Annotator = nil // rebuild for the narrow width
	return cfg
}

func TestExploreContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallConfig(t)
	res, err := ExploreContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PartialError", err)
	}
	if pe.Evaluated != 0 || pe.Total != 1 {
		t.Fatalf("partial = %d/%d, want 0/1", pe.Evaluated, pe.Total)
	}
	if res == nil {
		t.Fatal("cancelled exploration returned no result at all")
	}
	if len(res.Feasible) != 0 || res.Selected != -1 {
		t.Fatalf("never-started exploration claims evaluations: %+v", res)
	}
}

// TestExploreContextCancelMidRun cancels a paper-scale exploration
// shortly after it starts and checks it aborts promptly, returns a
// *PartialError unwrapping to the context error alongside the salvaged
// partial result, and leaks no goroutine.
func TestExploreContextCancelMidRun(t *testing.T) {
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := ExploreContext(ctx, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PartialError", err)
	}
	if res == nil {
		t.Fatal("cancelled exploration dropped the partial result")
	}
	if pe.Evaluated >= pe.Total {
		t.Fatalf("mid-run cancellation evaluated %d/%d candidates", pe.Evaluated, pe.Total)
	}
	// Whatever did finish must be internally consistent: fronts only over
	// evaluated candidates, selection only when a front exists.
	for _, i := range res.Feasible {
		if res.Candidates[i].Arch == nil {
			t.Fatalf("feasible index %d points at a never-evaluated slot", i)
		}
	}
	if len(res.Front3D) > 0 && res.Selected < 0 {
		t.Fatal("non-empty front but no selection")
	}
	// The full exploration takes far longer than this bound; returning
	// within it shows cancellation propagated into the in-flight
	// evaluations rather than waiting for them to finish naturally.
	if elapsed > 15*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// All worker goroutines must have exited.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancellation",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExploreRejectsNegativeParallelism(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Parallelism = -1
	if _, err := Explore(cfg); err == nil {
		t.Fatal("Explore accepted negative Parallelism")
	}
}

// TestExploreContextMetrics runs an instrumented one-candidate
// exploration (with selected-candidate simulation) and checks the
// registry carries the per-stage spans and the engine counters the
// observability layer promises.
func TestExploreContextMetrics(t *testing.T) {
	cfg := smallConfig(t)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	cfg.VerifySelected = true
	res, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("selected candidate was not sim-verified")
	}
	snap := reg.Snapshot()

	if got := snap.Counters["dse.candidates.total"]; got != 1 {
		t.Fatalf("dse.candidates.total = %d, want 1", got)
	}
	if snap.Counters["dse.candidates.feasible"]+snap.Counters["dse.candidates.infeasible"] != 1 {
		t.Fatalf("feasible+infeasible != total: %+v", snap.Counters)
	}
	for _, c := range []string{"sched.cycles", "sched.moves", "atpg.podem.decisions",
		"atpg.patterns.final", "testcost.cache.miss", "sim.cycles"} {
		if snap.Counters[c] <= 0 {
			t.Fatalf("counter %s = %d, want > 0 (have %+v)", c, snap.Counters[c], snap.Counters)
		}
	}
	// AreaDelay and Evaluate hit the same annotations: there must be
	// cache hits, and the computed rate gauge must agree.
	hit, miss := snap.Counters["testcost.cache.hit"], snap.Counters["testcost.cache.miss"]
	if hit == 0 {
		t.Fatal("annotator cache recorded no hit")
	}
	wantRate := float64(hit) / float64(hit+miss)
	if got := snap.Gauges["testcost.cache.hit_rate"]; got != wantRate {
		t.Fatalf("hit_rate gauge = %v, want %v", got, wantRate)
	}

	// Span tree: dse > {enumerate, evaluate > {sched, atpg}, pareto, sim}.
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "dse" {
		t.Fatalf("root span missing: %+v", snap.Spans)
	}
	stages := map[string]obs.SpanStats{}
	for _, c := range snap.Spans[0].Children {
		stages[c.Name] = c
	}
	for _, name := range []string{"enumerate", "evaluate", "pareto", "sim"} {
		if stages[name].Count == 0 {
			t.Fatalf("stage span %q missing (have %+v)", name, snap.Spans[0].Children)
		}
	}
	inner := map[string]bool{}
	for _, c := range stages["evaluate"].Children {
		inner[c.Name] = c.Count > 0
	}
	if !inner["sched"] || !inner["atpg"] {
		t.Fatalf("evaluate span missing sched/atpg children: %+v", stages["evaluate"].Children)
	}
}

// TestExploreContextProgressEvents checks one event per candidate is
// emitted with a running N/Total.
func TestExploreContextProgressEvents(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Buses = []int{1, 2} // two candidates
	reg := obs.NewRegistry()
	cfg.Obs = reg
	var events []obs.Event
	reg.Subscribe(func(ev obs.Event) { events = append(events, ev) })
	cfg.Parallelism = 1 // serial: the subscriber slice is unsynchronized
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	var candidates int
	for _, ev := range events {
		if ev.Kind == "candidate" {
			candidates++
			if ev.Total != 2 || ev.N < 1 || ev.N > 2 {
				t.Fatalf("bad progress event %+v", ev)
			}
		}
	}
	if candidates != 2 {
		t.Fatalf("got %d candidate events, want 2", candidates)
	}
}
