package dse

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/tta"
)

// twoCandConfig is a two-candidate space (bus counts 1 and 2) cheap
// enough for resilience tests that need more than one slot.
func twoCandConfig(t *testing.T) Config {
	cfg := smallConfig(t)
	cfg.Buses = []int{1, 2}
	return cfg
}

// candidatesEqual compares two evaluations field by field, identifying
// architectures by name (the pointers necessarily differ across runs).
func candidatesEqual(a, b *Candidate) bool {
	an, bn := "", ""
	if a.Arch != nil {
		an = a.Arch.Name
	}
	if b.Arch != nil {
		bn = b.Arch.Name
	}
	return an == bn &&
		a.Area == b.Area && a.Cycles == b.Cycles && a.Clock == b.Clock &&
		a.ExecTime == b.ExecTime && a.TestCost == b.TestCost &&
		a.FullScan == b.FullScan && a.Feasible == b.Feasible &&
		a.Reason == b.Reason && a.Spills == b.Spills &&
		a.Energy == b.Energy && a.Degraded == b.Degraded
}

func requireSameResult(t *testing.T, ref, got *Result) {
	t.Helper()
	if len(ref.Candidates) != len(got.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(ref.Candidates), len(got.Candidates))
	}
	for i := range ref.Candidates {
		if !candidatesEqual(&ref.Candidates[i], &got.Candidates[i]) {
			t.Fatalf("candidate %d differs:\nref %+v\ngot %+v", i, ref.Candidates[i], got.Candidates[i])
		}
	}
	for name, pair := range map[string][2][]int{
		"Feasible": {ref.Feasible, got.Feasible},
		"Front2D":  {ref.Front2D, got.Front2D},
		"Front3D":  {ref.Front3D, got.Front3D},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s lengths differ: %v vs %v", name, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s differs: %v vs %v", name, a, b)
			}
		}
	}
	if ref.Selected != got.Selected {
		t.Fatalf("Selected differs: %d vs %d", ref.Selected, got.Selected)
	}
}

// TestPanicIsolation injects a panic into one candidate's evaluation and
// checks the sweep survives: the other candidate evaluates, the panic is
// isolated to its slot as *EvalPanicError with a stack, the counter and
// event fire, and the partial result still carries fronts and a pick.
func TestPanicIsolation(t *testing.T) {
	cfg := twoCandConfig(t)
	cfg.Parallelism = 1 // deterministic injection order: candidate 0 panics
	reg := obs.NewRegistry()
	cfg.Obs = reg
	inj := faultinject.New(1)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModePanic, Limit: 1})
	cfg.Inject = inj

	res, err := ExploreContext(context.Background(), cfg)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *PartialError", err, err)
	}
	if pe.Panics != 1 || pe.Evaluated != 1 || pe.Total != 2 {
		t.Fatalf("partial = %+v, want 1 panic, 1/2 evaluated", pe)
	}
	var epe *EvalPanicError
	if !errors.As(pe.Errs[0], &epe) {
		t.Fatalf("Errs[0] = %T, want *EvalPanicError", pe.Errs[0])
	}
	if len(epe.Stack) == 0 {
		t.Fatal("recovered panic carries no stack")
	}
	if res == nil {
		t.Fatal("panic dropped the whole result")
	}
	if len(res.Front3D) == 0 || res.Selected < 0 {
		t.Fatalf("surviving candidate produced no front/selection: %+v", res)
	}
	if res.Selected == 0 {
		t.Fatal("the panicked candidate won the selection")
	}
	if got := reg.Counter("dse.eval.panics").Value(); got != 1 {
		t.Fatalf("dse.eval.panics = %d, want 1", got)
	}
}

// TestPanicInStructuralEvalReleasesMemoWaiters panics inside the shared
// structural evaluation (via the ATPG injection point, under the memo
// leader) with a variant of the same structure waiting on the latch: the
// waiter must get an error, not hang — the regression this guards is a
// leader dying without settling the single-flight latch.
func TestPanicInStructuralEvalReleasesMemoWaiters(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst, tta.Packed} // two variants, one structure
	inj := faultinject.New(1)
	inj.Arm(faultinject.ATPGPattern, faultinject.Plan{Mode: faultinject.ModePanic, Limit: 1})
	cfg.Inject = inj

	res, err := ExploreContext(context.Background(), cfg)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want *PartialError", err, err)
	}
	if pe.Panics < 1 {
		t.Fatalf("no recovered panic in %+v", pe)
	}
	if len(pe.Errs) != 2 {
		// The leader panicked; the waiter must surface the latch error
		// rather than hang (the test completing at all proves no hang,
		// this pins the error visibility).
		t.Fatalf("got %d candidate errors, want 2 (leader panic + waiter error): %+v", len(pe.Errs), pe.Errs)
	}
	if res == nil {
		t.Fatal("no result returned")
	}
}

// TestCheckpointResumeIdentical runs the same exploration three ways —
// no checkpoint, recording a checkpoint, and restoring everything from
// that checkpoint — and requires identical results, the byte-identical
// resume contract at the Result level (ttadse renders Results
// deterministically, so equal Results mean equal bytes).
func TestCheckpointResumeIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dse.ckpt")

	ref, err := ExploreContext(context.Background(), twoCandConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	cfg := twoCandConfig(t)
	ck, err := OpenCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	recorded, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, recorded)
	if ck.Len() != 2 {
		t.Fatalf("checkpoint holds %d entries, want 2", ck.Len())
	}

	cfg2 := twoCandConfig(t)
	reg := obs.NewRegistry()
	cfg2.Obs = reg
	ck2, err := OpenCheckpoint(path, cfg2)
	if err != nil {
		t.Fatalf("reopening a just-written checkpoint: %v", err)
	}
	if ck2.Len() != 2 {
		t.Fatalf("reopened checkpoint holds %d entries, want 2", ck2.Len())
	}
	cfg2.Checkpoint = ck2
	resumed, err := ExploreContext(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, resumed)
	if got := reg.Counter("dse.checkpoint.restored").Value(); got != 2 {
		t.Fatalf("dse.checkpoint.restored = %d, want 2", got)
	}
}

// TestCheckpointResumeAfterInterrupt interrupts a checkpointed run after
// the first completed candidate, then resumes from the file: the resumed
// run must restore at least one evaluation and finish with the same
// result as an uninterrupted run.
func TestCheckpointResumeAfterInterrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dse.ckpt")
	ref, err := ExploreContext(context.Background(), twoCandConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	cfg := twoCandConfig(t)
	cfg.Parallelism = 1
	reg := obs.NewRegistry()
	cfg.Obs = reg
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg.Subscribe(func(ev obs.Event) {
		if ev.Kind == "candidate" {
			cancel() // "kill" after the first completion
		}
	})
	ck, err := OpenCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	_, err = ExploreContext(ctx, cfg)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("interrupted run: err = %T (%v), want *PartialError", err, err)
	}
	if pe.Evaluated == 0 {
		t.Skip("cancellation beat every evaluation; nothing to resume")
	}

	cfg2 := twoCandConfig(t)
	reg2 := obs.NewRegistry()
	cfg2.Obs = reg2
	ck2, err := OpenCheckpoint(path, cfg2)
	if err != nil {
		t.Fatalf("reopening the interrupted checkpoint: %v", err)
	}
	if ck2.Len() == 0 {
		t.Fatal("interrupted run flushed no entries")
	}
	cfg2.Checkpoint = ck2
	resumed, err := ExploreContext(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, resumed)
	if reg2.Counter("dse.checkpoint.restored").Value() == 0 {
		t.Fatal("resume restored nothing")
	}
}

// TestCheckpointRejectsForeignFile pins the header discipline: a
// checkpoint recorded at one width must not feed a run at another, and a
// garbage file must come back as a corrupt error — both yielding a
// usable fresh checkpoint.
func TestCheckpointRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dse.ckpt")
	cfg := twoCandConfig(t)
	ck, err := OpenCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	other := twoCandConfig(t)
	other.Width = 16
	other.Annotator = nil
	ck2, err := OpenCheckpoint(path, other)
	var mm *CheckpointMismatchError
	if !errors.As(err, &mm) {
		t.Fatalf("err = %T (%v), want *CheckpointMismatchError", err, err)
	}
	if ck2 == nil || ck2.Len() != 0 {
		t.Fatalf("mismatched open did not return a fresh checkpoint: %v", ck2)
	}

	ck3, err := OpenCheckpoint(filepath.Join(t.TempDir(), "absent.ckpt"), twoCandConfig(t))
	if err != nil || ck3 == nil {
		t.Fatalf("missing file: ck=%v err=%v, want fresh+nil", ck3, err)
	}
}

// degradedFrontResult builds a synthetic Result whose 3-D front holds
// the given candidates (no exploration involved).
func degradedFrontResult(cands []Candidate) *Result {
	r := &Result{Candidates: cands, Selected: -1}
	for i := range cands {
		r.Front3D = append(r.Front3D, i)
	}
	return r
}

// TestDegradedNeverBeatsEqualMeasured is the property behind the
// "exclude" policy: over randomized fronts, whenever a non-degraded
// candidate exists, the selection never lands on a degraded one — and in
// particular a degraded point with coordinates equal to a measured point
// can never displace it. Seeded generator: the test is deterministic.
func TestDegradedNeverBeatsEqualMeasured(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		cands := make([]Candidate, n)
		anyMeasured := false
		for i := range cands {
			cands[i] = Candidate{
				Feasible: true,
				Area:     100 + 900*rng.Float64(),
				ExecTime: 10 + 90*rng.Float64(),
				TestCost: 1000 + rng.Intn(9000),
				Degraded: rng.Intn(2) == 0,
			}
			if !cands[i].Degraded {
				anyMeasured = true
			}
		}
		// Force the equal-coordinates case: a degraded twin of candidate 0.
		if !cands[0].Degraded {
			twin := cands[0]
			twin.Degraded = true
			cands = append(cands, twin)
		}
		r := degradedFrontResult(cands)
		if err := r.Reselect(SelectionSpec{DegradedPolicy: "exclude"}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Selected < 0 {
			t.Fatalf("trial %d: no selection", trial)
		}
		if anyMeasured && r.Candidates[r.Selected].Degraded {
			t.Fatalf("trial %d: degraded candidate %d won over %d-point front with measured members",
				trial, r.Selected, len(cands))
		}
	}
}

// TestDegradedPolicyFallbackAndPenalty covers the remaining policy arms:
// an all-degraded front still yields a pick under "exclude", and under
// "penalize" a degraded point loses to an otherwise-equal measured one.
func TestDegradedPolicyFallbackAndPenalty(t *testing.T) {
	all := degradedFrontResult([]Candidate{
		{Feasible: true, Area: 100, ExecTime: 10, TestCost: 1000, Degraded: true},
		{Feasible: true, Area: 200, ExecTime: 5, TestCost: 2000, Degraded: true},
	})
	if err := all.Reselect(SelectionSpec{DegradedPolicy: "exclude"}); err != nil {
		t.Fatalf("all-degraded exclude: %v", err)
	}
	if all.Selected < 0 {
		t.Fatal("all-degraded front under exclude yielded no selection")
	}

	pen := degradedFrontResult([]Candidate{
		{Feasible: true, Area: 100, ExecTime: 10, TestCost: 1000, Degraded: true},
		{Feasible: true, Area: 100, ExecTime: 10, TestCost: 1000},
	})
	if err := pen.Reselect(SelectionSpec{DegradedPolicy: "penalize"}); err != nil {
		t.Fatal(err)
	}
	if pen.Selected != 1 {
		t.Fatalf("penalize selected %d, want the measured twin (1)", pen.Selected)
	}

	if err := pen.Reselect(SelectionSpec{DegradedPolicy: "halfheartedly"}); err == nil {
		t.Fatal("unknown degraded policy accepted")
	}
	if err := pen.Reselect(SelectionSpec{DegradedPolicy: "penalize", DegradedPenalty: 0.5}); err == nil {
		t.Fatal("sub-1 degraded penalty accepted")
	}
}

// TestDegradedFlagReachesCandidate runs a real exploration under an
// exhausted ATPG budget and checks degradation propagates from the
// annotator into the dse.Candidate rows.
func TestDegradedFlagReachesCandidate(t *testing.T) {
	cfg := smallConfig(t)
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	cfg.Annotator.ATPGDeadline = 1 // nanosecond: every ATPG run degrades
	res, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range res.Feasible {
		if res.Candidates[i].Degraded {
			found = true
		}
	}
	if !found {
		t.Fatal("no candidate carries the Degraded flag under a 1ns ATPG budget")
	}
}
