package dse

import "testing"

func TestWeightSweepMonotoneInTestCost(t *testing.T) {
	res := explore(t)
	sweep, err := res.WeightSweep([]float64{0, 0.5, 1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 7 {
		t.Fatalf("%d sweep points, want 7", len(sweep))
	}
	// Raising the test weight must never raise the selected test cost.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].TestCost > sweep[i-1].TestCost {
			t.Errorf("wTest %.1f selects test cost %d, above %d at weight %.1f",
				sweep[i].WTest, sweep[i].TestCost, sweep[i-1].TestCost, sweep[i-1].WTest)
		}
	}
	// At an extreme weight the selection is the test-minimal front member.
	minTest := sweep[0].TestCost
	for _, i := range res.Front3D {
		if res.Candidates[i].TestCost < minTest {
			minTest = res.Candidates[i].TestCost
		}
	}
	if sweep[len(sweep)-1].TestCost != minTest {
		t.Errorf("wTest=16 selects test cost %d, front minimum is %d",
			sweep[len(sweep)-1].TestCost, minTest)
	}
}

func TestWeightSweepMovesSelection(t *testing.T) {
	res := explore(t)
	sweep, err := res.WeightSweep([]float64{0, 16})
	if err != nil {
		t.Fatal(err)
	}
	if sweep[0].Selected == sweep[1].Selected {
		t.Log("note: test weight did not move the selection on this space")
	}
	if sweep[1].TestCost > sweep[0].TestCost {
		t.Error("heavy test weight selected a costlier-to-test design")
	}
}

func TestTestBlindPenalty(t *testing.T) {
	res := explore(t)
	blind, aware, ratio, err := res.TestBlindPenalty()
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1 {
		t.Fatalf("test-aware selection (%d) beat by the blind one (%d)?", aware, blind)
	}
	t.Logf("test-blind worst-case pick: %d cycles; test-aware: %d cycles (%.2fx)", blind, aware, ratio)
	// With packed-assignment twins in the space, the blind flow risks a
	// strictly worse pick.
	if blind == aware {
		t.Log("note: blind and aware selections coincide on this space")
	}
}
