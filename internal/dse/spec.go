// FromSpec turns a serializable job description (internal/jobspec) into
// a runnable exploration Config — the single mapping shared by the
// ttadse CLI (whose flags populate a Spec) and the ttadsed daemon (whose
// POST bodies decode into one), so the two surfaces cannot drift.
package dse

import (
	"fmt"

	"repro/internal/jobspec"
	"repro/internal/program"
	"repro/internal/workloads"
)

// FromSpec builds the Config and SelectionSpec described by spec, over
// the paper's defaults for everything the spec leaves zero. The space
// lists are normalized (sorted, deduplicated) without mutating spec.
//
// Only serializable knobs are applied. The caller wires the live
// objects the spec merely names: the annotator and its warm-start cache
// (Spec.Cache), the checkpoint file (Spec.Checkpoint via OpenCheckpoint),
// the job deadline (Spec.Timeout via context.WithTimeout), the ATPG
// budget (Spec.ATPGDeadline onto Annotator.ATPGDeadline), and the
// observability registry / event sink.
func FromSpec(spec jobspec.Spec) (Config, SelectionSpec, error) {
	if err := spec.Validate(); err != nil {
		return Config{}, SelectionSpec{}, err
	}
	cfg, err := DefaultConfig()
	if err != nil {
		return Config{}, SelectionSpec{}, err
	}
	if spec.Width != 0 {
		cfg.Width = spec.Width
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	spec.Buses = append([]int(nil), spec.Buses...)
	spec.ALUs = append([]int(nil), spec.ALUs...)
	spec.CMPs = append([]int(nil), spec.CMPs...)
	spec.Normalize()
	if len(spec.Buses) > 0 {
		cfg.Buses = spec.Buses
	}
	if len(spec.ALUs) > 0 {
		cfg.ALUCounts = spec.ALUs
	}
	if len(spec.CMPs) > 0 {
		cfg.CMPCounts = spec.CMPs
	}
	if err := applyWorkload(&cfg, spec.Workload); err != nil {
		return Config{}, SelectionSpec{}, err
	}
	cfg.Parallelism = spec.Parallelism
	cfg.ATPGWorkers = spec.ATPGWorkers
	cfg.LaneWidth = spec.LaneWidth
	cfg.VerifySelected = spec.VerifySelected
	// The spec's result identity travels with the config so checkpoint
	// files bind to it. Shard topology deliberately does NOT map here:
	// the spec's Shard block describes the coordinator-level fan-out
	// (internal/service), while Config.Shard is one worker's own slot —
	// set by the worker entry point, never by the spec.
	cfg.SpecHash = spec.Hash()
	if spec.Search != nil {
		cfg.Search = &SearchSpec{
			Population:  spec.Search.Population,
			Generations: spec.Search.Generations,
			Eta:         spec.Search.Eta,
			Seed:        spec.Search.Seed,
		}
	}

	sel := SelectionSpec{
		Norm: spec.Norm,
		WA:   spec.WA, WT: spec.WT, WC: spec.WC,
		DegradedPolicy:  spec.DegradedPolicy,
		DegradedPenalty: spec.DegradedPenalty,
	}
	if err := sel.Validate(); err != nil {
		return Config{}, SelectionSpec{}, err
	}
	return cfg, sel, nil
}

// applyWorkload swaps the explored application kernel (the default
// config already carries crypt).
func applyWorkload(cfg *Config, name string) error {
	var g *program.Graph
	var err error
	switch name {
	case "crypt", "":
		return nil
	case "crc16":
		g, err = workloads.CRC16(4, 0x40)
	case "vecmax":
		g, err = workloads.VecMax(16, 0x40)
	case "countbelow":
		g, err = workloads.CountBelow(12)
	case "checksum":
		g, err = workloads.Checksum(8, 0x40)
	default:
		return fmt.Errorf("dse: unknown workload %q", name)
	}
	if err != nil {
		return err
	}
	cfg.Workload = g
	// The non-crypt kernels model 1000 repetitions of the inner loop,
	// matching the CLI's historical -workload behavior.
	cfg.WorkloadReps = 1000
	return nil
}
