package dse

import (
	"strings"
	"testing"
)

func TestSelectionSpecValidate(t *testing.T) {
	cases := []struct {
		spec    SelectionSpec
		wantErr string // "" = valid
	}{
		{SelectionSpec{}, ""},
		{SelectionSpec{Norm: "euclid", WA: 1, WT: 1, WC: 1}, ""},
		{SelectionSpec{Norm: "manhattan"}, ""},
		{SelectionSpec{Norm: "chebyshev", WC: 5}, ""},
		{SelectionSpec{Norm: "l2"}, "unknown selection norm"},
		{SelectionSpec{WA: -1}, "non-negative"},
		{SelectionSpec{Norm: "euclid", WT: -0.5}, "non-negative"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", c.spec, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", c.spec, err, c.wantErr)
		}
	}
}

// TestReselect re-selects the shared exploration under a heavy test-cost
// weight and checks the result stays on the 3-D front and the selection
// is at least as test-cheap as the equal-weight choice.
func TestReselect(t *testing.T) {
	res := explore(t)
	equal := res.Selected
	defer func() {
		if err := res.Reselect(SelectionSpec{}); err != nil { // restore for other tests
			t.Fatal(err)
		}
	}()
	if err := res.Reselect(SelectionSpec{Norm: "euclid", WA: 1, WT: 1, WC: 100}); err != nil {
		t.Fatal(err)
	}
	onFront := false
	for _, i := range res.Front3D {
		if i == res.Selected {
			onFront = true
		}
	}
	if !onFront {
		t.Fatalf("reselected index %d not on the 3-D front", res.Selected)
	}
	if res.Candidates[res.Selected].TestCost > res.Candidates[equal].TestCost {
		t.Fatalf("test-heavy selection (%d cycles) costs more than equal-weight (%d cycles)",
			res.Candidates[res.Selected].TestCost, res.Candidates[equal].TestCost)
	}
	if err := res.Reselect(SelectionSpec{Norm: "nope"}); err == nil {
		t.Fatal("Reselect accepted an unknown norm")
	}
}
