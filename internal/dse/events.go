// Typed progress events: the public, structured view of a running
// exploration. Config.EventSink receives every event synchronously;
// Config.Events wraps the sink in a channel for select-style consumers
// (the ttadse -progress flag, tests); FrontTracker folds candidate
// events into a live Pareto-front snapshot (the ttadsed daemon's
// GET /front endpoint).
//
// Event schema (stable, serialized as JSON by the daemon's event
// stream):
//
//	seq        monotone 1-based sequence number within one exploration
//	kind       "candidate" | "restored" | "panic" | "degraded" |
//	           "warning" | "heartbeat" | "counter" | "done"
//	msg        human-readable one-liner (matches the historical
//	           -progress stderr text)
//	n, total   progress counters when known (n completed of total)
//	code       machine-readable counter name on "counter" events and on
//	           warnings a supervisor should also count
//	candidate  the full evaluation record, on "candidate" and
//	           "restored" events
//
// Kinds:
//
//   - "candidate": one evaluation finished (feasible, infeasible or
//     error — see Candidate.Err).
//   - "restored": one evaluation was restored from a checkpoint instead
//     of recomputed; emitted before any live evaluation starts.
//   - "panic": a candidate evaluation panicked and was isolated (the
//     matching "candidate" event carries the error too).
//   - "degraded": an annotation fell back to the analytical bound
//     because its ATPG budget ran out (bridged from the obs stream).
//   - "warning": a non-fatal infrastructure problem, e.g. a checkpoint
//     flush failure (bridged from the obs stream).
//   - "heartbeat": a liveness tick from an otherwise quiet shard worker;
//     carries no payload and is consumed by the coordinator's stall
//     watchdog, never forwarded to job consumers.
//   - "counter": a metrics relay from a shard worker process — Code
//     names the counter, N the delta. Worker-local durability counters
//     cross the process boundary this way; the coordinator folds them
//     into the job registry and swallows the event.
//   - "done": the exploration is over; always the final event, emitted
//     on every exit path including configuration errors.
package dse

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/tta"
)

// EventKind classifies a typed exploration event.
type EventKind string

// The event kinds, in the order a consumer typically sees them.
const (
	EventRestored  EventKind = "restored"
	EventCandidate EventKind = "candidate"
	EventPanic     EventKind = "panic"
	EventDegraded  EventKind = "degraded"
	EventWarning   EventKind = "warning"
	EventHeartbeat EventKind = "heartbeat"
	EventCounter   EventKind = "counter"
	EventDone      EventKind = "done"
)

// CandidateUpdate is the serializable record of one completed (or
// restored) candidate evaluation — everything a consumer needs to build
// live fronts or render progress without reaching into *Result.
type CandidateUpdate struct {
	Index    int     `json:"index"`
	Arch     string  `json:"arch"`
	Feasible bool    `json:"feasible"`
	Reason   string  `json:"reason,omitempty"`
	Area     float64 `json:"area,omitempty"`
	Cycles   int     `json:"cycles,omitempty"`
	Clock    float64 `json:"clock,omitempty"`
	ExecTime float64 `json:"exec_time,omitempty"`
	TestCost int     `json:"test_cost,omitempty"`
	FullScan int     `json:"full_scan,omitempty"`
	Spills   int     `json:"spills,omitempty"`
	Energy   float64 `json:"energy,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// Event is one typed progress notification from a running exploration.
// See the package comment of this file for the schema.
type Event struct {
	Seq       int64            `json:"seq"`
	Kind      EventKind        `json:"kind"`
	Msg       string           `json:"msg,omitempty"`
	N         int              `json:"n,omitempty"`
	Total     int              `json:"total,omitempty"`
	Code      string           `json:"code,omitempty"`
	Candidate *CandidateUpdate `json:"candidate,omitempty"`
}

// emitter stamps sequence numbers onto one exploration's event stream.
// A nil emitter (no sink configured) is a no-op, mirroring obs.
type emitter struct {
	sink func(Event)
	seq  atomic.Int64
}

func newEmitter(sink func(Event)) *emitter {
	if sink == nil {
		return nil
	}
	return &emitter{sink: sink}
}

func (e *emitter) emit(ev Event) {
	if e == nil {
		return
	}
	ev.Seq = e.seq.Add(1)
	e.sink(ev)
}

// bridgeObs forwards the obs kinds dse does not emit natively
// ("degraded" from the annotator, "warning" from checkpoint flushes)
// into the typed stream, scoped to one exploration via the returned
// cancel.
func (e *emitter) bridgeObs(reg *obs.Registry) (cancel func()) {
	if e == nil || reg == nil {
		return func() {}
	}
	return reg.SubscribeCancel(func(oe obs.Event) {
		switch oe.Kind {
		case string(EventDegraded), string(EventWarning):
			e.emit(Event{Kind: EventKind(oe.Kind), Msg: oe.Msg, N: oe.N, Total: oe.Total})
		}
	})
}

// candidateUpdate flattens one finished evaluation slot.
func candidateUpdate(index int, arch *tta.Architecture, c *Candidate, err error) *CandidateUpdate {
	u := &CandidateUpdate{
		Index:    index,
		Arch:     arch.Name,
		Feasible: c.Feasible,
		Reason:   c.Reason,
		Area:     c.Area,
		Cycles:   c.Cycles,
		Clock:    c.Clock,
		ExecTime: c.ExecTime,
		TestCost: c.TestCost,
		FullScan: c.FullScan,
		Spills:   c.Spills,
		Energy:   c.Energy,
		Degraded: c.Degraded,
	}
	if err != nil {
		u.Err = err.Error()
		u.Feasible = false
	}
	return u
}

// Events installs a typed event stream on the config and returns its
// receive side. The channel closes after the "done" event (every
// exploration emits exactly one, on every exit path) or when ctx is
// cancelled, whichever comes first, so a plain range loop terminates.
// Any previously installed EventSink keeps receiving everything.
//
// Delivery is best-effort for a slow consumer: the channel is buffered
// and a send that would block drops the event rather than stall the
// worker pool ("done" never drops — the channel just closes). Consumers
// needing every event (e.g. the daemon's stream endpoint) should install
// a synchronous EventSink instead.
func (c *Config) Events(ctx context.Context) <-chan Event {
	ch := make(chan Event, 1024)
	var mu sync.Mutex
	closed := false
	closeOnce := func() {
		mu.Lock()
		defer mu.Unlock()
		if !closed {
			closed = true
			close(ch)
		}
	}
	prev := c.EventSink
	c.EventSink = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		mu.Lock()
		if !closed {
			select {
			case ch <- ev:
			default: // slow consumer: drop rather than block the sweep
			}
		}
		done := ev.Kind == EventDone
		mu.Unlock()
		if done {
			closeOnce()
		}
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			closeOnce()
		}()
	}
	return ch
}

// FrontTracker folds candidate events into a live Pareto-front snapshot,
// so partial fronts are observable while an exploration is still
// running — the dse-side hook behind the daemon's GET /front endpoint.
// Install Observe as (or inside) Config.EventSink. All methods are safe
// for concurrent use.
//
// The tracker is built on pareto.StreamingFront: each feasible candidate
// is inserted into two incremental dominance archives (area/time and
// area/time/test) as its event arrives, dominated entries are evicted on
// the spot, and only current front members are retained. Snapshot cost
// and retained memory are therefore O(front size), independent of how
// many candidates the job has evaluated — the property that keeps a
// long-running daemon job's GET /front flat over a million-candidate
// sweep. (The per-candidate bookkeeping is one bit in a seen-index
// bitset, which also dedupes progress accounting: an event replayed for
// an already-observed candidate index — e.g. a restored evaluation
// re-emitted around a checkpoint resume — is counted once, so
// "evaluated" can never pass "total".)
type FrontTracker struct {
	mu        sync.Mutex
	total     int
	evaluated int
	feasible  int
	rejected  int // NaN-coordinate candidates refused at the pareto boundary

	seen    bitset
	sf2     *pareto.StreamingFront
	sf3     *pareto.StreamingFront
	members map[int]*frontMember // candidate index -> update, while on either front

	reg *obs.Registry
}

// frontMember refcounts one retained candidate: it may sit on the 2-D
// front, the 3-D front, or both, and is released when evicted from its
// last one.
type frontMember struct {
	upd  CandidateUpdate
	refs int
}

// NewFrontTracker returns an empty tracker.
func NewFrontTracker() *FrontTracker {
	return &FrontTracker{
		sf2:     pareto.NewStreamingFront(2),
		sf3:     pareto.NewStreamingFront(3),
		members: make(map[int]*frontMember),
	}
}

// NewFrontTrackerObs is NewFrontTracker with live metrics: the tracker
// maintains "pareto.stream.inserts" / "pareto.stream.evictions"
// counters and the "pareto.stream.front_size" gauge (distinct candidates
// currently retained) on reg as events arrive.
func NewFrontTrackerObs(reg *obs.Registry) *FrontTracker {
	t := NewFrontTracker()
	t.reg = reg
	return t
}

// Observe consumes one event ("candidate" and "restored" feed the
// fronts; everything else is ignored). Events carrying a candidate index
// already observed are dropped: progress accounting and the fronts are
// deduplicated by index.
func (t *FrontTracker) Observe(ev Event) {
	if t == nil {
		return
	}
	switch ev.Kind {
	case EventCandidate, EventRestored:
	default:
		return
	}
	c := ev.Candidate
	if c == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ev.Total > t.total {
		t.total = ev.Total
	}
	if t.seen.test(c.Index) {
		return // replayed event for a candidate already accounted
	}
	t.seen.set(c.Index)
	t.evaluated++
	if !c.Feasible || c.Err != "" {
		return
	}
	t.feasible++
	c2 := pareto.Point{ID: c.Index, Coords: []float64{c.Area, c.ExecTime}}
	c3 := pareto.Point{ID: c.Index, Coords: []float64{c.Area, c.ExecTime, float64(c.TestCost)}}
	if pareto.ValidateCoords(c3.Coords) != nil {
		// NaN objective: rejecting at the boundary keeps dominance
		// transitive inside the archives (see the pareto package policy).
		t.rejected++
		t.reg.Counter("pareto.stream.rejected").Inc()
		return
	}
	t.insert(t.sf2, c2, c)
	t.insert(t.sf3, c3, c)
	t.reg.Gauge("pareto.stream.front_size").Set(float64(len(t.members)))
}

// insert offers one candidate to an archive and keeps the refcounted
// member map in sync with acceptances and evictions.
func (t *FrontTracker) insert(sf *pareto.StreamingFront, p pareto.Point, c *CandidateUpdate) {
	accepted, evicted, err := sf.Insert(p)
	if err != nil { // validated above; defensive
		t.rejected++
		return
	}
	if accepted {
		t.reg.Counter("pareto.stream.inserts").Inc()
		m := t.members[c.Index]
		if m == nil {
			m = &frontMember{upd: *c}
			t.members[c.Index] = m
		}
		m.refs++
	}
	for _, id := range evicted {
		t.reg.Counter("pareto.stream.evictions").Inc()
		if m := t.members[id]; m != nil {
			if m.refs--; m.refs <= 0 {
				delete(t.members, id)
			}
		}
	}
}

// Progress reports the deduplicated counters: candidates evaluated (each
// index once, however many times its event was delivered) and the
// largest announced total.
func (t *FrontTracker) Progress() (evaluated, total int) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evaluated, t.total
}

// FrontSnapshot is a point-in-time view of the fronts over the
// evaluations seen so far. Entries are ordered by candidate index, so
// two snapshots over the same evaluations are deeply equal regardless of
// completion order.
type FrontSnapshot struct {
	Total     int               `json:"total"`
	Evaluated int               `json:"evaluated"`
	Feasible  int               `json:"feasible"`
	Front2D   []CandidateUpdate `json:"front2d"`
	Front3D   []CandidateUpdate `json:"front3d"`
}

// Snapshot returns the current 2-D (area/time) and 3-D (area/time/test)
// fronts over the feasible evaluations observed so far. The fronts are
// maintained incrementally, so the cost is O(front size) — no rescan of
// the evaluated set, whose updates are not even retained.
func (t *FrontTracker) Snapshot() *FrontSnapshot {
	s := &FrontSnapshot{}
	if t == nil {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s.Total = t.total
	s.Evaluated = t.evaluated
	s.Feasible = t.feasible
	s.Front2D = t.frontMembers(t.sf2)
	s.Front3D = t.frontMembers(t.sf3)
	return s
}

// frontMembers materializes one archive's members in candidate-index
// order. Called with t.mu held.
func (t *FrontTracker) frontMembers(sf *pareto.StreamingFront) []CandidateUpdate {
	ids := sf.IDs() // ascending, may repeat for duplicate coordinate vectors
	if len(ids) == 0 {
		return nil
	}
	out := make([]CandidateUpdate, 0, len(ids))
	prev := -1
	for _, id := range ids {
		if id == prev {
			continue // one snapshot row per candidate index
		}
		prev = id
		if m := t.members[id]; m != nil {
			out = append(out, m.upd)
		}
	}
	return out
}

// bitset is a growable set of small non-negative integers — one bit per
// candidate index, so deduping a million-candidate run costs ~125 KiB
// instead of retaining a map of evaluations.
type bitset []uint64

func (b *bitset) set(i int) {
	if i < 0 {
		return
	}
	w := i >> 6
	for len(*b) <= w {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

func (b bitset) test(i int) bool {
	if i < 0 {
		return false
	}
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}
