// Typed progress events: the public, structured view of a running
// exploration. Config.EventSink receives every event synchronously;
// Config.Events wraps the sink in a channel for select-style consumers
// (the ttadse -progress flag, tests); FrontTracker folds candidate
// events into a live Pareto-front snapshot (the ttadsed daemon's
// GET /front endpoint).
//
// Event schema (stable, serialized as JSON by the daemon's event
// stream):
//
//	seq        monotone 1-based sequence number within one exploration
//	kind       "candidate" | "restored" | "panic" | "degraded" |
//	           "warning" | "done"
//	msg        human-readable one-liner (matches the historical
//	           -progress stderr text)
//	n, total   progress counters when known (n completed of total)
//	candidate  the full evaluation record, on "candidate" and
//	           "restored" events
//
// Kinds:
//
//   - "candidate": one evaluation finished (feasible, infeasible or
//     error — see Candidate.Err).
//   - "restored": one evaluation was restored from a checkpoint instead
//     of recomputed; emitted before any live evaluation starts.
//   - "panic": a candidate evaluation panicked and was isolated (the
//     matching "candidate" event carries the error too).
//   - "degraded": an annotation fell back to the analytical bound
//     because its ATPG budget ran out (bridged from the obs stream).
//   - "warning": a non-fatal infrastructure problem, e.g. a checkpoint
//     flush failure (bridged from the obs stream).
//   - "done": the exploration is over; always the final event, emitted
//     on every exit path including configuration errors.
package dse

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/tta"
)

// EventKind classifies a typed exploration event.
type EventKind string

// The event kinds, in the order a consumer typically sees them.
const (
	EventRestored  EventKind = "restored"
	EventCandidate EventKind = "candidate"
	EventPanic     EventKind = "panic"
	EventDegraded  EventKind = "degraded"
	EventWarning   EventKind = "warning"
	EventDone      EventKind = "done"
)

// CandidateUpdate is the serializable record of one completed (or
// restored) candidate evaluation — everything a consumer needs to build
// live fronts or render progress without reaching into *Result.
type CandidateUpdate struct {
	Index    int     `json:"index"`
	Arch     string  `json:"arch"`
	Feasible bool    `json:"feasible"`
	Reason   string  `json:"reason,omitempty"`
	Area     float64 `json:"area,omitempty"`
	Cycles   int     `json:"cycles,omitempty"`
	Clock    float64 `json:"clock,omitempty"`
	ExecTime float64 `json:"exec_time,omitempty"`
	TestCost int     `json:"test_cost,omitempty"`
	FullScan int     `json:"full_scan,omitempty"`
	Spills   int     `json:"spills,omitempty"`
	Energy   float64 `json:"energy,omitempty"`
	Degraded bool    `json:"degraded,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// Event is one typed progress notification from a running exploration.
// See the package comment of this file for the schema.
type Event struct {
	Seq       int64            `json:"seq"`
	Kind      EventKind        `json:"kind"`
	Msg       string           `json:"msg,omitempty"`
	N         int              `json:"n,omitempty"`
	Total     int              `json:"total,omitempty"`
	Candidate *CandidateUpdate `json:"candidate,omitempty"`
}

// emitter stamps sequence numbers onto one exploration's event stream.
// A nil emitter (no sink configured) is a no-op, mirroring obs.
type emitter struct {
	sink func(Event)
	seq  atomic.Int64
}

func newEmitter(sink func(Event)) *emitter {
	if sink == nil {
		return nil
	}
	return &emitter{sink: sink}
}

func (e *emitter) emit(ev Event) {
	if e == nil {
		return
	}
	ev.Seq = e.seq.Add(1)
	e.sink(ev)
}

// bridgeObs forwards the obs kinds dse does not emit natively
// ("degraded" from the annotator, "warning" from checkpoint flushes)
// into the typed stream, scoped to one exploration via the returned
// cancel.
func (e *emitter) bridgeObs(reg *obs.Registry) (cancel func()) {
	if e == nil || reg == nil {
		return func() {}
	}
	return reg.SubscribeCancel(func(oe obs.Event) {
		switch oe.Kind {
		case string(EventDegraded), string(EventWarning):
			e.emit(Event{Kind: EventKind(oe.Kind), Msg: oe.Msg, N: oe.N, Total: oe.Total})
		}
	})
}

// candidateUpdate flattens one finished evaluation slot.
func candidateUpdate(index int, arch *tta.Architecture, c *Candidate, err error) *CandidateUpdate {
	u := &CandidateUpdate{
		Index:    index,
		Arch:     arch.Name,
		Feasible: c.Feasible,
		Reason:   c.Reason,
		Area:     c.Area,
		Cycles:   c.Cycles,
		Clock:    c.Clock,
		ExecTime: c.ExecTime,
		TestCost: c.TestCost,
		FullScan: c.FullScan,
		Spills:   c.Spills,
		Energy:   c.Energy,
		Degraded: c.Degraded,
	}
	if err != nil {
		u.Err = err.Error()
		u.Feasible = false
	}
	return u
}

// Events installs a typed event stream on the config and returns its
// receive side. The channel closes after the "done" event (every
// exploration emits exactly one, on every exit path) or when ctx is
// cancelled, whichever comes first, so a plain range loop terminates.
// Any previously installed EventSink keeps receiving everything.
//
// Delivery is best-effort for a slow consumer: the channel is buffered
// and a send that would block drops the event rather than stall the
// worker pool ("done" never drops — the channel just closes). Consumers
// needing every event (e.g. the daemon's stream endpoint) should install
// a synchronous EventSink instead.
func (c *Config) Events(ctx context.Context) <-chan Event {
	ch := make(chan Event, 1024)
	var mu sync.Mutex
	closed := false
	closeOnce := func() {
		mu.Lock()
		defer mu.Unlock()
		if !closed {
			closed = true
			close(ch)
		}
	}
	prev := c.EventSink
	c.EventSink = func(ev Event) {
		if prev != nil {
			prev(ev)
		}
		mu.Lock()
		if !closed {
			select {
			case ch <- ev:
			default: // slow consumer: drop rather than block the sweep
			}
		}
		done := ev.Kind == EventDone
		mu.Unlock()
		if done {
			closeOnce()
		}
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			closeOnce()
		}()
	}
	return ch
}

// FrontTracker folds candidate events into a live Pareto-front snapshot,
// so partial fronts are observable while an exploration is still
// running — the dse-side hook behind the daemon's GET /front endpoint.
// Install Observe as (or inside) Config.EventSink. All methods are safe
// for concurrent use.
type FrontTracker struct {
	mu        sync.Mutex
	total     int
	evaluated int
	feasible  []CandidateUpdate
}

// NewFrontTracker returns an empty tracker.
func NewFrontTracker() *FrontTracker { return &FrontTracker{} }

// Observe consumes one event ("candidate" and "restored" feed the
// fronts; everything else only updates progress counters).
func (t *FrontTracker) Observe(ev Event) {
	if t == nil {
		return
	}
	switch ev.Kind {
	case EventCandidate, EventRestored:
	default:
		return
	}
	t.mu.Lock()
	if ev.Total > t.total {
		t.total = ev.Total
	}
	t.evaluated++
	if c := ev.Candidate; c != nil && c.Feasible && c.Err == "" {
		t.feasible = append(t.feasible, *c)
	}
	t.mu.Unlock()
}

// FrontSnapshot is a point-in-time view of the fronts over the
// evaluations seen so far. Entries are ordered by candidate index, so
// two snapshots over the same evaluations are deeply equal regardless of
// completion order.
type FrontSnapshot struct {
	Total     int               `json:"total"`
	Evaluated int               `json:"evaluated"`
	Feasible  int               `json:"feasible"`
	Front2D   []CandidateUpdate `json:"front2d"`
	Front3D   []CandidateUpdate `json:"front3d"`
}

// Snapshot computes the current 2-D (area/time) and 3-D
// (area/time/test) fronts over the feasible evaluations observed so far.
func (t *FrontTracker) Snapshot() *FrontSnapshot {
	s := &FrontSnapshot{}
	if t == nil {
		return s
	}
	t.mu.Lock()
	s.Total = t.total
	s.Evaluated = t.evaluated
	s.Feasible = len(t.feasible)
	cands := make([]CandidateUpdate, len(t.feasible))
	copy(cands, t.feasible)
	t.mu.Unlock()

	pts2 := make([]pareto.Point, len(cands))
	pts3 := make([]pareto.Point, len(cands))
	for i, c := range cands {
		pts2[i] = pareto.Point{ID: i, Coords: []float64{c.Area, c.ExecTime}}
		pts3[i] = pareto.Point{ID: i, Coords: []float64{c.Area, c.ExecTime, float64(c.TestCost)}}
	}
	s.Front2D = frontMembers(cands, pts2)
	s.Front3D = frontMembers(cands, pts3)
	return s
}

func frontMembers(cands []CandidateUpdate, pts []pareto.Point) []CandidateUpdate {
	if len(pts) == 0 {
		return nil
	}
	idx := pareto.Front(pts)
	out := make([]CandidateUpdate, 0, len(idx))
	for _, pi := range idx {
		out = append(out, cands[pts[pi].ID])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
