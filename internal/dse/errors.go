package dse

import (
	"fmt"
	"sort"
)

// EvalPanicError is the per-candidate record of a recovered evaluation
// panic: the worker isolated it, counted it on "dse.eval.panics" and
// kept sweeping. Value is what the goroutine panicked with; Stack the
// captured stack trace.
type EvalPanicError struct {
	Arch  string // candidate architecture name
	Value any
	Stack []byte
}

func (e *EvalPanicError) Error() string {
	return fmt.Sprintf("dse: evaluating %s panicked: %v", e.Arch, e.Value)
}

// PartialError reports an exploration that ended with holes: some
// candidates panicked, failed, or were never reached before the context
// died. The accompanying *Result is still usable — fronts and selection
// are computed over the candidates that did evaluate — so callers can
// salvage the sweep instead of losing every finished evaluation.
//
// Unwrap exposes the underlying cause (ctx.Err() for a timeout or
// cancellation, else the first evaluation error), so
// errors.Is(err, context.DeadlineExceeded) distinguishes a run that ran
// out of time from one that hit hard failures.
type PartialError struct {
	// Total counts enumerated candidates; Evaluated the ones whose
	// evaluation completed without error; Panics the recovered panics.
	Total     int
	Evaluated int
	Panics    int
	// Errs maps candidate index to its evaluation error (panics
	// included, as *EvalPanicError). Candidates missing from both Errs
	// and the evaluated set were never started (cancelled feed).
	Errs map[int]error
	// Cause is the context error when the run was cut short by its
	// context, else the first per-candidate error in candidate order.
	Cause error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("dse: partial exploration: %d/%d candidates evaluated (%d errors, %d panics): %v",
		e.Evaluated, e.Total, len(e.Errs), e.Panics, e.Cause)
}

func (e *PartialError) Unwrap() error { return e.Cause }

// firstErr returns the error of the lowest-indexed failed candidate —
// a deterministic representative cause at any parallelism.
func firstErr(errs map[int]error) error {
	if len(errs) == 0 {
		return nil
	}
	keys := make([]int, 0, len(errs))
	for k := range errs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return errs[keys[0]]
}
