package dse

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tta"
)

// TestScheduleMemoSharesStructuralWork explores one structure under every
// assign strategy and checks (a) the structural evaluation ran once (memo
// miss == distinct structures), (b) the variants share cycle count and
// area, and (c) every candidate's values are identical to an unshared
// evaluation — memoization changes when work runs, never its result.
func TestScheduleMemoSharesStructuralWork(t *testing.T) {
	cfg := smallConfig(t)
	cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst, tta.RoundRobin, tta.Packed}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	res, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 {
		t.Fatalf("%d candidates, want 3 assign variants", len(res.Candidates))
	}

	miss := reg.Counter("dse.sched.memo.miss").Value()
	hit := reg.Counter("dse.sched.memo.hit").Value()
	if miss != 1 {
		t.Errorf("memo miss = %d, want 1 (one structure)", miss)
	}
	if hit != 2 {
		t.Errorf("memo hit = %d, want 2 (remaining variants)", hit)
	}

	base := &res.Candidates[0]
	for i := 1; i < len(res.Candidates); i++ {
		c := &res.Candidates[i]
		if c.Cycles != base.Cycles || c.Spills != base.Spills || c.Area != base.Area ||
			c.Clock != base.Clock || c.ExecTime != base.ExecTime {
			t.Errorf("variant %d structural axes differ from variant 0: %+v vs %+v", i, c, base)
		}
	}

	// Cross-check against evaluations that cannot share: a fresh memo per
	// candidate.
	cfgCopy := cfg
	if err := cfgCopy.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	for i := range res.Candidates {
		want, err := evaluate(context.Background(), &cfgCopy, res.Candidates[i].Arch, nil, newSchedMemo())
		if err != nil {
			t.Fatal(err)
		}
		got := res.Candidates[i]
		got.Arch, want.Arch = nil, nil
		if got != want {
			t.Errorf("candidate %d: memoized %+v != unshared %+v", i, got, want)
		}
	}
}

// TestStructKeyIgnoresAssignment pins the memo key contract: variants of
// one structure collide, any structural change (width, buses, FU mix, RF
// shape, adder) separates.
func TestStructKeyIgnoresAssignment(t *testing.T) {
	base := buildArch(16, 2, 1, 1, []RFSpec{{8, 1, 1}}, tta.SpreadFirst, 0, 0)
	variant := buildArch(16, 2, 1, 1, []RFSpec{{8, 1, 1}}, tta.Packed, 1, 0)
	if structKey(base) != structKey(variant) {
		t.Errorf("assign variants got different keys:\n%s\n%s", structKey(base), structKey(variant))
	}
	distinct := []*tta.Architecture{
		buildArch(8, 2, 1, 1, []RFSpec{{8, 1, 1}}, tta.SpreadFirst, 2, 0),  // width
		buildArch(16, 3, 1, 1, []RFSpec{{8, 1, 1}}, tta.SpreadFirst, 3, 0), // buses
		buildArch(16, 2, 2, 1, []RFSpec{{8, 1, 1}}, tta.SpreadFirst, 4, 0), // ALUs
		buildArch(16, 2, 1, 2, []RFSpec{{8, 1, 1}}, tta.SpreadFirst, 5, 0), // CMPs
		buildArch(16, 2, 1, 1, []RFSpec{{12, 1, 1}}, tta.SpreadFirst, 6, 0), // RF shape
	}
	seen := map[string]bool{structKey(base): true}
	for _, a := range distinct {
		k := structKey(a)
		if seen[k] {
			t.Errorf("structural change did not change the key: %s (%s)", k, a.Name)
		}
		seen[k] = true
	}
	adder := buildArch(16, 2, 1, 1, []RFSpec{{8, 1, 1}}, tta.SpreadFirst, 7, 0)
	for ci := range adder.Components {
		if adder.Components[ci].Kind == tta.ALU {
			adder.Components[ci].Adder = 1 // carry-select
		}
	}
	if structKey(adder) == structKey(base) {
		t.Error("adder microarchitecture missing from the structural key")
	}
}

// TestUtilizationGaugeSetOnEveryExit pins the fixed exit-path contract:
// the dse.worker.utilization gauge is published whether the exploration
// completes, fails on configuration, or is cancelled mid-run.
func TestUtilizationGaugeSetOnEveryExit(t *testing.T) {
	gaugeSet := func(reg *obs.Registry) bool {
		_, ok := reg.Snapshot().Gauges["dse.worker.utilization"]
		return ok
	}

	// Completed run.
	cfg := smallConfig(t)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if !gaugeSet(reg) {
		t.Error("gauge unset after a completed run")
	}

	// Configuration-error exit.
	cfg = smallConfig(t)
	cfg.Parallelism = -1
	reg = obs.NewRegistry()
	cfg.Obs = reg
	if _, err := ExploreContext(context.Background(), cfg); err == nil {
		t.Fatal("negative parallelism accepted")
	}
	if !gaugeSet(reg) {
		t.Error("gauge unset after a configuration-error exit")
	}

	// Cancelled mid-evaluation exit.
	cfg = smallConfig(t)
	reg = obs.NewRegistry()
	cfg.Obs = reg
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	if _, err := ExploreContext(ctx, cfg); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if !gaugeSet(reg) {
		t.Error("gauge unset after a cancelled run")
	}
}
