package dse

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/testcost"
)

// searchTestConfig returns a small guided exploration sharing ann (so
// repeated runs in one test reuse the ATPG cache).
func searchTestConfig(ann *testcost.Annotator, parallelism int) (Config, error) {
	cfg, err := DefaultConfig()
	if err != nil {
		return Config{}, err
	}
	cfg.Annotator = ann
	cfg.Parallelism = parallelism
	cfg.Search = &SearchSpec{Population: 12, Generations: 3, Eta: 3, Seed: 99}
	return cfg, nil
}

func TestSearchSpaceSize(t *testing.T) {
	// 16 buses x 8 ALUs x 4 CMPs x 2 adders x 3 assigns x 9138 RF
	// multisets (36 shapes, sizes 1..3: 36 + 666 + 8436).
	const want = 28071936
	if got := SearchSpaceSize(); got != want {
		t.Fatalf("SearchSpaceSize() = %d, want %d", got, want)
	}
}

// TestGenomeOperatorsStayInRange: every genome the GA can produce is
// well-formed — genes in range, 1..3 register files, canonical order.
func TestGenomeOperatorsStayInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	check := func(g genome) {
		t.Helper()
		if g.buses < 1 || g.buses > searchMaxBuses {
			t.Fatalf("buses %d out of range", g.buses)
		}
		if g.alus < 1 || g.alus > searchMaxALUs {
			t.Fatalf("alus %d out of range", g.alus)
		}
		if g.cmps < 1 || g.cmps > searchMaxCMPs {
			t.Fatalf("cmps %d out of range", g.cmps)
		}
		if len(g.rfs) < 1 || len(g.rfs) > searchMaxRFs {
			t.Fatalf("%d register files", len(g.rfs))
		}
		for i, rf := range g.rfs {
			if rf.In < 1 || rf.In > searchMaxIn || rf.Out < 1 || rf.Out > searchMaxOut {
				t.Fatalf("rf ports %+v out of range", rf)
			}
			if i > 0 {
				p := g.rfs[i-1]
				if p.Regs > rf.Regs || (p.Regs == rf.Regs && (p.In > rf.In || (p.In == rf.In && p.Out > rf.Out))) {
					t.Fatalf("rfs not canonical: %v", g.rfs)
				}
			}
		}
		if a := g.arch(16, 0); a.Validate() != nil || !a.Assigned() {
			t.Fatalf("genome %s builds an invalid architecture", g.key())
		}
	}
	prev := randGenome(rng)
	check(prev)
	for i := 0; i < 500; i++ {
		g := randGenome(rng)
		check(g)
		check(crossover(rng, prev, g))
		check(mutate(rng, g))
		prev = g
	}
	// The canonical key collapses RF permutations.
	a := genome{buses: 2, alus: 1, cmps: 1, rfs: []RFSpec{{8, 1, 1}, {16, 2, 2}}}
	b := genome{buses: 2, alus: 1, cmps: 1, rfs: []RFSpec{{16, 2, 2}, {8, 1, 1}}}
	a.canon()
	b.canon()
	if a.key() != b.key() {
		t.Fatalf("RF permutations have distinct keys: %s vs %s", a.key(), b.key())
	}
}

// TestSearchDeterministicAcrossParallelism is the acceptance property:
// a fixed seed yields identical survivors, measurements, fronts and
// selection at any Parallelism.
func TestSearchDeterministicAcrossParallelism(t *testing.T) {
	ann := testcost.NewAnnotator(16, 7)
	type runResult struct {
		names  []string
		coords [][]float64
		front2 []int
		front3 []int
		sel    int
	}
	run := func(parallelism int) runResult {
		t.Helper()
		cfg, err := searchTestConfig(ann, parallelism)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ExploreContext(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := runResult{front2: res.Front2D, front3: res.Front3D, sel: res.Selected}
		for i := range res.Candidates {
			c := &res.Candidates[i]
			out.names = append(out.names, c.Arch.Name)
			out.coords = append(out.coords, c.Coords())
		}
		return out
	}
	serial := run(1)
	wide := run(8)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("guided search differs across parallelism:\nserial: %+v\nwide:   %+v", serial, wide)
	}
	if len(serial.names) == 0 {
		t.Fatal("search promoted no candidates")
	}
}

// TestSearchCountersAndScreen: the search bookkeeping adds up — one
// generation counter per generation, promoted + pruned covering the full
// genome budget, promoted equaling the full-evaluation candidate list,
// and the cheap screen touching every genome without a single full-tier
// ATPG miss beyond the survivors' components.
func TestSearchCountersAndScreen(t *testing.T) {
	cfg, err := searchTestConfig(testcost.NewAnnotator(16, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg.Obs = reg
	tr := NewFrontTrackerObs(reg)
	cfg.EventSink = tr.Observe
	res, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := *cfg.Search
	if got := reg.Counter("dse.search.generations").Value(); got != int64(spec.Generations) {
		t.Errorf("generations counter = %d, want %d", got, spec.Generations)
	}
	budget := int64(spec.Population * spec.Generations)
	promoted := reg.Counter("dse.search.promoted").Value()
	pruned := reg.Counter("dse.search.pruned").Value()
	if promoted+pruned != budget {
		t.Errorf("promoted %d + pruned %d != genome budget %d", promoted, pruned, budget)
	}
	if int64(len(res.Candidates)) != promoted {
		t.Errorf("%d full-tier candidates, %d promoted", len(res.Candidates), promoted)
	}
	if got := reg.Counter("dse.search.cheap_evals").Value(); got != budget {
		t.Errorf("cheap_evals = %d, want %d", got, budget)
	}
	if reg.Counter("testcost.bound.miss").Value() == 0 {
		t.Error("the screen never used the bound tier")
	}
	// The live tracker followed the full-tier pipeline: survivors only.
	evaluated, total := tr.Progress()
	if evaluated != len(res.Candidates) || total != len(res.Candidates) {
		t.Errorf("tracker progress %d/%d, want %d/%d", evaluated, total, len(res.Candidates), len(res.Candidates))
	}
	snap := tr.Snapshot()
	if len(snap.Front3D) != len(res.Front3D) {
		t.Errorf("live front %d members, batch %d", len(snap.Front3D), len(res.Front3D))
	}
}

// TestSearchRejectsBadSpec: invalid search parameters are configuration
// errors, reported before any evaluation runs.
func TestSearchRejectsBadSpec(t *testing.T) {
	for _, spec := range []SearchSpec{
		{Population: -1},
		{Generations: -2},
		{Eta: -3},
		{Eta: 1},
	} {
		cfg, err := DefaultConfig()
		if err != nil {
			t.Fatal(err)
		}
		s := spec
		cfg.Search = &s
		if _, err := ExploreContext(context.Background(), cfg); err == nil {
			t.Errorf("spec %+v: want configuration error", spec)
		}
	}
}
