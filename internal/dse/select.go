package dse

import (
	"fmt"

	"repro/internal/pareto"
)

// SelectionSpec describes how the final architecture is picked from the
// 3-D Pareto front (the paper's figure-9 step): a norm and per-axis
// weights for area, execution time and test cost. The zero value selects
// the paper's default — equal weights under the Euclidean norm.
type SelectionSpec struct {
	// Norm names the distance norm: "euclid" (default when empty),
	// "manhattan" or "chebyshev".
	Norm string
	// WA, WT, WC weight the area, execution-time and test-cost axes.
	// All-zero means equal weights (1,1,1).
	WA, WT, WC float64

	// DegradedPolicy controls how candidates whose test cost is an
	// analytical bound (Candidate.Degraded — the ATPG budget ran out)
	// compete in the selection:
	//
	//   "" or "allow"  degraded points compete normally (the default,
	//                  and the pre-budget behavior);
	//   "penalize"     a degraded point's test-cost coordinate is
	//                  multiplied by DegradedPenalty before the norm, so
	//                  it wins only when clearly dominant elsewhere;
	//   "exclude"      degraded points cannot win — unless every front
	//                  member is degraded, in which case the selection
	//                  falls back to the full front rather than failing.
	DegradedPolicy string

	// DegradedPenalty is the test-cost multiplier under "penalize".
	// 0 means the default of 2; values below 1 are rejected (they would
	// favor unmeasured points).
	DegradedPenalty float64
}

// Validate reports whether the spec is usable: the norm and degraded
// policy must be known, the weights non-negative with at least one
// positive (unless all are zero, which means equal weights), and the
// degraded penalty absent or at least 1.
func (s SelectionSpec) Validate() error {
	if _, err := s.norm(); err != nil {
		return err
	}
	if s.WA < 0 || s.WT < 0 || s.WC < 0 {
		return fmt.Errorf("dse: selection weights must be non-negative (got wa=%g wt=%g wc=%g)",
			s.WA, s.WT, s.WC)
	}
	switch s.DegradedPolicy {
	case "", "allow", "penalize", "exclude":
	default:
		return fmt.Errorf("dse: unknown degraded policy %q (want allow, penalize or exclude)", s.DegradedPolicy)
	}
	if s.DegradedPenalty != 0 && s.DegradedPenalty < 1 {
		return fmt.Errorf("dse: degraded penalty %g below 1 would favor unmeasured points", s.DegradedPenalty)
	}
	return nil
}

// degradedPenalty resolves the effective multiplier.
func (s SelectionSpec) degradedPenalty() float64 {
	if s.DegradedPenalty == 0 {
		return 2
	}
	return s.DegradedPenalty
}

func (s SelectionSpec) norm() (pareto.Norm, error) {
	switch s.Norm {
	case "", "euclid":
		return pareto.Euclid, nil
	case "manhattan":
		return pareto.Manhattan, nil
	case "chebyshev":
		return pareto.Chebyshev, nil
	default:
		return pareto.Euclid, fmt.Errorf("dse: unknown selection norm %q (want euclid, manhattan or chebyshev)", s.Norm)
	}
}

// weights returns the weight vector for pareto.Select (nil = equal).
func (s SelectionSpec) weights() []float64 {
	if s.WA == 0 && s.WT == 0 && s.WC == 0 {
		return nil
	}
	return []float64{s.WA, s.WT, s.WC}
}

// Reselect re-runs the figure-9 selection over the existing 3-D front
// under the given spec and updates r.Selected. The fronts themselves are
// weight-independent and are not recomputed. The spec's DegradedPolicy
// decides whether budget-degraded candidates (analytical test-cost
// bounds) may win; under "exclude" with an all-degraded front the
// selection falls back to the full front, so a partial result always
// yields a pick.
func (r *Result) Reselect(spec SelectionSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(r.Front3D) == 0 {
		return fmt.Errorf("dse: no 3-D front to select from")
	}
	n, err := spec.norm()
	if err != nil {
		return err
	}
	pool := r.Front3D
	if spec.DegradedPolicy == "exclude" {
		var measured []int
		for _, i := range pool {
			if !r.Candidates[i].Degraded {
				measured = append(measured, i)
			}
		}
		if len(measured) > 0 {
			pool = measured
		}
	}
	var pts []pareto.Point
	for _, i := range pool {
		c := &r.Candidates[i]
		coords := c.Coords()
		if spec.DegradedPolicy == "penalize" && c.Degraded {
			coords[2] *= spec.degradedPenalty()
		}
		pts = append(pts, pareto.Point{ID: i, Coords: coords})
	}
	best, err := pareto.Select(pts, spec.weights(), n)
	if err != nil {
		return err
	}
	r.Selected = pts[best].ID
	return nil
}
