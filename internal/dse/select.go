package dse

import (
	"fmt"

	"repro/internal/pareto"
)

// SelectionSpec describes how the final architecture is picked from the
// 3-D Pareto front (the paper's figure-9 step): a norm and per-axis
// weights for area, execution time and test cost. The zero value selects
// the paper's default — equal weights under the Euclidean norm.
type SelectionSpec struct {
	// Norm names the distance norm: "euclid" (default when empty),
	// "manhattan" or "chebyshev".
	Norm string
	// WA, WT, WC weight the area, execution-time and test-cost axes.
	// All-zero means equal weights (1,1,1).
	WA, WT, WC float64
}

// Validate reports whether the spec is usable: the norm must be known and
// the weights non-negative with at least one positive (unless all are
// zero, which means equal weights).
func (s SelectionSpec) Validate() error {
	if _, err := s.norm(); err != nil {
		return err
	}
	if s.WA < 0 || s.WT < 0 || s.WC < 0 {
		return fmt.Errorf("dse: selection weights must be non-negative (got wa=%g wt=%g wc=%g)",
			s.WA, s.WT, s.WC)
	}
	return nil
}

func (s SelectionSpec) norm() (pareto.Norm, error) {
	switch s.Norm {
	case "", "euclid":
		return pareto.Euclid, nil
	case "manhattan":
		return pareto.Manhattan, nil
	case "chebyshev":
		return pareto.Chebyshev, nil
	default:
		return pareto.Euclid, fmt.Errorf("dse: unknown selection norm %q (want euclid, manhattan or chebyshev)", s.Norm)
	}
}

// weights returns the weight vector for pareto.Select (nil = equal).
func (s SelectionSpec) weights() []float64 {
	if s.WA == 0 && s.WT == 0 && s.WC == 0 {
		return nil
	}
	return []float64{s.WA, s.WT, s.WC}
}

// Reselect re-runs the figure-9 selection over the existing 3-D front
// under the given spec and updates r.Selected. The fronts themselves are
// weight-independent and are not recomputed.
func (r *Result) Reselect(spec SelectionSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if len(r.Front3D) == 0 {
		return fmt.Errorf("dse: no 3-D front to select from")
	}
	n, err := spec.norm()
	if err != nil {
		return err
	}
	var pts []pareto.Point
	for _, i := range r.Front3D {
		pts = append(pts, pareto.Point{ID: i, Coords: r.Candidates[i].Coords()})
	}
	best, err := pareto.Select(pts, spec.weights(), n)
	if err != nil {
		return err
	}
	r.Selected = pts[best].ID
	return nil
}
