package dse

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/durable"
	"repro/internal/obs"
)

// recordedCheckpoint runs a checkpointed two-candidate exploration and
// returns the reference result plus the on-disk checkpoint bytes.
func recordedCheckpoint(t *testing.T) (Config, *Result, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dse.ckpt")
	cfg := twoCandConfig(t)
	ck, err := OpenCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	ref, err := ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Len() != 2 {
		t.Fatalf("checkpoint holds %d entries, want 2", ck.Len())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = nil
	return cfg, ref, data
}

// recordBoundaries returns the byte offsets at which a framed file's
// record prefix ends cleanly — truncation exactly there is
// indistinguishable from an honestly shorter checkpoint.
func recordBoundaries(data []byte) map[int]bool {
	payloads, _, torn := durable.ScanRecords(data)
	if torn != nil {
		panic("recordBoundaries on damaged data")
	}
	b := map[int]bool{}
	off := 0
	var buf []byte
	for _, p := range payloads {
		buf = durable.AppendRecord(buf[:0], p)
		off += len(buf)
		b[off] = true
	}
	return b
}

// TestCheckpointTruncationSweep truncates a recorded checkpoint at every
// byte offset: every open must either prefix-recover or quarantine with
// a typed error, never panic, and never come back cold without an obs
// counter (except at exact record boundaries, where the shorter file is
// a valid checkpoint in its own right).
func TestCheckpointTruncationSweep(t *testing.T) {
	cfg, ref, data := recordedCheckpoint(t)
	bounds := recordBoundaries(data)
	full := 2

	for cut := 0; cut <= len(data); cut++ {
		p := filepath.Join(t.TempDir(), "ck")
		if err := os.WriteFile(p, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		c := cfg
		c.Obs = reg
		ck, err := OpenCheckpoint(p, c)
		if ck == nil {
			t.Fatalf("cut %d: nil checkpoint", cut)
		}
		if err != nil {
			var ca *durable.CorruptArtifactError
			var cc *CheckpointCorruptError
			if !errors.As(err, &ca) || !errors.As(err, &cc) {
				t.Fatalf("cut %d: err %T (%v), want CorruptArtifactError wrapping CheckpointCorruptError", cut, err, err)
			}
			if ck.Len() != 0 {
				t.Fatalf("cut %d: corrupt open kept %d entries", cut, ck.Len())
			}
			if reg.Counter("durability.quarantined").Value() == 0 {
				t.Fatalf("cut %d: quarantine without counter", cut)
			}
			if ca.QuarantinedTo != "" {
				if _, serr := os.Stat(p); !os.IsNotExist(serr) {
					t.Fatalf("cut %d: quarantined file still at original path", cut)
				}
			}
			continue
		}
		if ck.Len() > full {
			t.Fatalf("cut %d: recovered %d entries from a %d-entry file", cut, ck.Len(), full)
		}
		recovered := reg.Counter("durability.prefix_recovered").Value()
		// A cut inside the header record's CRC trailer can leave a pure
		// JSON document, which loads as an (empty) legacy file — still
		// obs-visible, via durability.legacy_loads instead.
		legacy := reg.Counter("durability.legacy_loads").Value()
		if cut < len(data) && !bounds[cut] && recovered == 0 && legacy == 0 {
			t.Fatalf("cut %d: torn load with no prefix_recovered/legacy_loads counter", cut)
		}
		if cut == len(data) && (recovered != 0 || ck.Len() != full) {
			t.Fatalf("intact file: recovered=%d len=%d", recovered, ck.Len())
		}
	}

	// A tear through the last record must resume to the reference result
	// from the surviving prefix.
	p := filepath.Join(t.TempDir(), "ck")
	if err := os.WriteFile(p, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c := cfg
	c.Obs = reg
	ck, err := OpenCheckpoint(p, c)
	if err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if ck.Len() != full-1 {
		t.Fatalf("torn tail recovered %d entries, want %d", ck.Len(), full-1)
	}
	c.Checkpoint = ck
	res, err := ExploreContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, res)
	if reg.Counter("dse.checkpoint.restored").Value() != int64(full-1) {
		t.Fatalf("restored %d, want %d", reg.Counter("dse.checkpoint.restored").Value(), full-1)
	}
}

// TestCheckpointLegacyFormatRoundTrip pins backward compatibility: a
// whole-document pre-CRC file still loads (with the one-time legacy obs
// event), feeds a byte-identical resume, and the next flush rewrites it
// into the framed format exactly as a never-legacy run would have.
func TestCheckpointLegacyFormatRoundTrip(t *testing.T) {
	cfg, ref, framed := recordedCheckpoint(t)
	f, rec, err := decodeCheckpointData(framed)
	if err != nil || rec.Torn || rec.Legacy {
		t.Fatalf("decode framed: %v (recovery %+v)", err, rec)
	}

	legacy, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "legacy.ckpt")
	if err := os.WriteFile(p, append(legacy, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	legacyEvents := 0
	reg.Subscribe(func(ev obs.Event) {
		if ev.Kind == "warning" && bytes.Contains([]byte(ev.Msg), []byte("legacy")) {
			legacyEvents++
		}
	})
	c := cfg
	c.Obs = reg
	ck, err := OpenCheckpoint(p, c)
	if err != nil {
		t.Fatalf("legacy open: %v", err)
	}
	if ck.Len() != 2 {
		t.Fatalf("legacy load holds %d entries, want 2", ck.Len())
	}
	if got := reg.Counter("durability.legacy_loads").Value(); got != 1 {
		t.Fatalf("durability.legacy_loads = %d, want 1", got)
	}
	if legacyEvents != 1 {
		t.Fatalf("legacy obs events = %d, want 1", legacyEvents)
	}

	c.Checkpoint = ck
	res, err := ExploreContext(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, res)

	// The run's final flush upgrades the file to the framed format,
	// byte-identical to the never-legacy original.
	upgraded, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(upgraded, framed) {
		t.Fatalf("upgraded file differs from framed original:\n%q\nvs\n%q", upgraded, framed)
	}
	reg2 := obs.NewRegistry()
	c2 := cfg
	c2.Obs = reg2
	if _, err := OpenCheckpoint(p, c2); err != nil {
		t.Fatal(err)
	}
	if reg2.Counter("durability.legacy_loads").Value() != 0 {
		t.Fatal("upgraded file still loads as legacy")
	}
}

// TestCheckpointQuarantine feeds OpenCheckpoint an irrecoverable file:
// the open must return the typed quarantine error, move the file to
// *.corrupt, count it, and hand back a usable fresh checkpoint.
func TestCheckpointQuarantine(t *testing.T) {
	p := filepath.Join(t.TempDir(), "dse.ckpt")
	if err := os.WriteFile(p, []byte("{ this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := twoCandConfig(t)
	cfg.Obs = reg
	ck, err := OpenCheckpoint(p, cfg)
	var ca *durable.CorruptArtifactError
	if !errors.As(err, &ca) {
		t.Fatalf("err = %T (%v), want *durable.CorruptArtifactError", err, err)
	}
	var cc *CheckpointCorruptError
	if !errors.As(err, &cc) {
		t.Fatal("CorruptArtifactError does not wrap CheckpointCorruptError")
	}
	if ca.QuarantinedTo != p+".corrupt" {
		t.Fatalf("quarantined to %q", ca.QuarantinedTo)
	}
	if _, serr := os.Stat(ca.QuarantinedTo); serr != nil {
		t.Fatalf("quarantine file: %v", serr)
	}
	if _, serr := os.Stat(p); !os.IsNotExist(serr) {
		t.Fatal("corrupt file still at original path")
	}
	if reg.Counter("durability.quarantined").Value() != 1 {
		t.Fatalf("durability.quarantined = %d, want 1", reg.Counter("durability.quarantined").Value())
	}
	if ck == nil || ck.Len() != 0 {
		t.Fatalf("no usable fresh checkpoint: %v", ck)
	}
	// The fresh checkpoint writes to the original path again.
	cfg.Checkpoint = ck
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if _, serr := os.Stat(p); serr != nil {
		t.Fatalf("fresh checkpoint not rewritten: %v", serr)
	}
}

// TestCheckpointBitFlipCRC flips one payload byte inside a recorded
// checkpoint: the CRC must catch it (durability.crc_fail), and the load
// must keep exactly the records before the damage.
func TestCheckpointBitFlipCRC(t *testing.T) {
	cfg, _, data := recordedCheckpoint(t)
	// Flip a byte in the middle of the last record's payload.
	mut := append([]byte(nil), data...)
	last := bytes.LastIndexByte(mut[:len(mut)-1], '\n') // start of final record
	mut[last+10] ^= 0x20
	p := filepath.Join(t.TempDir(), "ck")
	if err := os.WriteFile(p, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c := cfg
	c.Obs = reg
	ck, err := OpenCheckpoint(p, c)
	if err != nil {
		t.Fatalf("bit-flipped open: %v", err)
	}
	if ck.Len() != 1 {
		t.Fatalf("recovered %d entries, want 1", ck.Len())
	}
	if reg.Counter("durability.crc_fail").Value() == 0 {
		t.Fatal("no durability.crc_fail count")
	}
	if reg.Counter("durability.prefix_recovered").Value() == 0 {
		t.Fatal("no durability.prefix_recovered count")
	}
}

// FuzzOpenCheckpoint mirrors FuzzAnnotatorLoad for the checkpoint layer:
// arbitrary bytes must never panic the open — every outcome is a clean
// load, a typed mismatch, or a typed quarantine leaving a fresh usable
// checkpoint.
func FuzzOpenCheckpoint(f *testing.F) {
	cfg, err := DefaultConfig()
	if err != nil {
		f.Fatal(err)
	}
	cfg.Width = 8
	cfg.Buses = []int{2}
	cfg.ALUCounts = []int{1}
	cfg.CMPCounts = []int{1}
	cfg.RFSets = [][]RFSpec{{{16, 2, 2}, {16, 1, 2}}}
	cfg.Annotator = nil
	if err := cfg.fillDefaults(); err != nil {
		f.Fatal(err)
	}

	// Seed corpus: a real framed checkpoint (built by the real writer),
	// its truncations and a bit-flip, a legacy whole-document file, and
	// assorted garbage.
	seedPath := filepath.Join(f.TempDir(), "seed.ckpt")
	ck, err := OpenCheckpoint(seedPath, cfg)
	if err != nil {
		f.Fatal(err)
	}
	ck.entries["k1|a"] = checkpointEntry{Feasible: true, Area: 100, Cycles: 7, Clock: 2.5, ExecTime: 17.5, TestCost: 42, FullScan: 40, Energy: 1.5}
	ck.entries["k2|b"] = checkpointEntry{Reason: "infeasible: no route"}
	if err := ck.FlushErr(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(seed)-1])
	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/3] ^= 0x08
	f.Add(flipped)
	var legacyFile checkpointFile
	if lf, _, err := decodeCheckpointData(seed); err == nil {
		legacyFile = lf
	}
	if legacy, err := json.MarshalIndent(&legacyFile, "", "  "); err == nil {
		f.Add(append(legacy, '\n'))
	}
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte("not a checkpoint at all"))
	f.Add([]byte(fmt.Sprintf("{\"x\":1} #c=%08x\n", durable.Checksum([]byte(`{"x":1}`)))))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "fz.ckpt")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpoint(p, cfg)
		if ck == nil {
			t.Fatal("nil checkpoint")
		}
		if err == nil {
			return // clean load (fresh, legacy, or prefix-recovered)
		}
		var mm *CheckpointMismatchError
		var cc *CheckpointCorruptError
		if !errors.As(err, &mm) && !errors.As(err, &cc) {
			t.Fatalf("untyped error %T: %v", err, err)
		}
		if errors.As(err, &cc) && ck.Len() != 0 {
			t.Fatalf("corrupt open kept %d entries", ck.Len())
		}
		var ca *durable.CorruptArtifactError
		if errors.As(err, &ca) && ca.QuarantinedTo != "" {
			if _, serr := os.Stat(p); !os.IsNotExist(serr) {
				t.Fatal("quarantined file still present at original path")
			}
		}
	})
}
