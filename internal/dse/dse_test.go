package dse

import (
	"strings"
	"testing"

	"repro/internal/crypt"
	"repro/internal/testcost"
	"repro/internal/tta"
)

// sharedResult runs the default exploration once; most tests inspect it.
var sharedResult *Result

func explore(t *testing.T) *Result {
	t.Helper()
	if sharedResult != nil {
		return sharedResult
	}
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sharedResult = res
	return res
}

func TestExploreProducesCandidatesAndFronts(t *testing.T) {
	res := explore(t)
	if len(res.Candidates) < 100 {
		t.Fatalf("only %d candidates explored", len(res.Candidates))
	}
	if len(res.Front2D) == 0 || len(res.Front3D) == 0 {
		t.Fatal("empty Pareto fronts")
	}
	if res.Selected < 0 || res.Selected >= len(res.Candidates) {
		t.Fatalf("invalid selection index %d", res.Selected)
	}
	if !res.Candidates[res.Selected].Feasible {
		t.Fatal("selected an infeasible candidate")
	}
}

func TestFigure2FrontIsAProperTradeOffCurve(t *testing.T) {
	res := explore(t)
	if len(res.Front2D) < 4 {
		t.Fatalf("2-D front has only %d points; no curve to trade along", len(res.Front2D))
	}
	// Sorted by area, execution time must be non-increasing along the
	// front (the defining property of a 2-objective Pareto curve).
	type pt struct{ a, t float64 }
	var pts []pt
	for _, i := range res.Front2D {
		pts = append(pts, pt{res.Candidates[i].Area, res.Candidates[i].ExecTime})
	}
	for i := 0; i < len(pts); i++ {
		for j := 0; j < len(pts); j++ {
			if pts[i].a < pts[j].a && pts[i].t < pts[j].t {
				t.Fatalf("front point %d dominates front point %d", i, j)
			}
		}
	}
	// The curve must span a real range on both axes.
	aMin, aMax := pts[0].a, pts[0].a
	tMin, tMax := pts[0].t, pts[0].t
	for _, p := range pts {
		if p.a < aMin {
			aMin = p.a
		}
		if p.a > aMax {
			aMax = p.a
		}
		if p.t < tMin {
			tMin = p.t
		}
		if p.t > tMax {
			tMax = p.t
		}
	}
	if aMax < 1.3*aMin || tMax < 1.3*tMin {
		t.Errorf("front too flat: area %.0f-%.0f, time %.0f-%.0f", aMin, aMax, tMin, tMax)
	}
}

func TestFigure8ProjectionPreserved(t *testing.T) {
	// The paper: "The already achieved area-throughput ratio is preserved
	// since the first projection of the 3D curve in the area-execution-
	// time plane is still the curve from figure 2."
	res := explore(t)
	if !res.ProjectionPreserved() {
		t.Fatal("adding the test axis lost an area/time-optimal point")
	}
}

func TestFigure8TestCostVariesAmongCloseArchitectures(t *testing.T) {
	// "The test cost may vary significantly even for the architectures
	// that are close to each other at the 2D Pareto curve."
	res := explore(t)
	lo, hi, found := res.TestCostSpread(0.01)
	if !found {
		t.Fatal("no area/time-close candidate pairs found")
	}
	if float64(hi) < 1.15*float64(lo) {
		t.Errorf("test-cost spread %d..%d (<15%%) too small to motivate the third axis", lo, hi)
	}
	t.Logf("2D-close pair test costs: %d vs %d (%.0f%% apart)", lo, hi, 100*float64(hi-lo)/float64(lo))
}

func TestFigure9SelectionIsMidCurve(t *testing.T) {
	// Equal-weight Euclidean selection must pick a compromise, not an
	// extreme of the front.
	res := explore(t)
	sel := &res.Candidates[res.Selected]
	var aMin, aMax, tMin, tMax float64
	first := true
	for _, i := range res.Front3D {
		c := &res.Candidates[i]
		if first {
			aMin, aMax, tMin, tMax = c.Area, c.Area, c.ExecTime, c.ExecTime
			first = false
			continue
		}
		if c.Area < aMin {
			aMin = c.Area
		}
		if c.Area > aMax {
			aMax = c.Area
		}
		if c.ExecTime < tMin {
			tMin = c.ExecTime
		}
		if c.ExecTime > tMax {
			tMax = c.ExecTime
		}
	}
	if sel.Area == aMax || sel.ExecTime == tMax {
		t.Errorf("selection sits at a front extreme: area=%.0f time=%.0f", sel.Area, sel.ExecTime)
	}
	t.Logf("selected %s (area %.0f of [%.0f,%.0f], time %.0f of [%.0f,%.0f], test %d)",
		sel.Arch.Name, sel.Area, aMin, aMax, sel.ExecTime, tMin, tMax, sel.TestCost)
}

func TestSelectedResemblesPaperArchitecture(t *testing.T) {
	// The paper's figure 9 picks a compact template: one or two ALUs, one
	// CMP, register files, LD/ST, PC and Immediate on a small bus count.
	res := explore(t)
	a := res.Candidates[res.Selected].Arch
	if n := len(a.ComponentsOf(tta.ALU)); n < 1 || n > 2 {
		t.Errorf("selected %d ALUs", n)
	}
	if n := len(a.ComponentsOf(tta.CMP)); n != 1 {
		t.Errorf("selected %d CMPs, the workload warrants 1", n)
	}
	if n := len(a.ComponentsOf(tta.RF)); n < 1 {
		t.Errorf("selected %d RFs", n)
	}
	if a.Buses < 1 || a.Buses > 4 {
		t.Errorf("selected %d buses", a.Buses)
	}
}

func TestPackedAssignmentNeverOnFront3DWhenTwinExists(t *testing.T) {
	// A packed candidate with a spread-first twin (same structure) has
	// identical area/time and strictly worse test cost, so the 3-D front
	// must prefer the twin.
	res := explore(t)
	for _, i := range res.Front3D {
		c := &res.Candidates[i]
		if !strings.Contains(c.Arch.Name, "packed") {
			continue
		}
		// Allow packed points only when no equal-structure twin beats them
		// (single-bus architectures are identical under both strategies).
		if c.Arch.Buses > 1 {
			t.Errorf("packed candidate %s on the 3-D front despite %d buses", c.Arch.Name, c.Arch.Buses)
		}
	}
}

func TestMoreBusesReduceTestCostSameStructure(t *testing.T) {
	// Equation (11)'s ceil(n_conn/n_b) and CD both fall with the bus
	// count: compare the same structure at 1 vs 4 buses.
	res := explore(t)
	byKey := map[string]map[int]int{}
	for _, i := range res.Feasible {
		c := &res.Candidates[i]
		if !strings.Contains(c.Arch.Name, "spread-first") {
			continue
		}
		// Key: everything but the bus count.
		key := strings.Join(strings.Split(c.Arch.Name, "_")[2:], "_")
		if byKey[key] == nil {
			byKey[key] = map[int]int{}
		}
		byKey[key][c.Arch.Buses] = c.TestCost
	}
	checked := 0
	for key, m := range byKey {
		t1, ok1 := m[1]
		t4, ok4 := m[4]
		if !ok1 || !ok4 {
			continue
		}
		checked++
		if t4 >= t1 {
			t.Errorf("%s: 4-bus test cost %d not below 1-bus %d", key, t4, t1)
		}
	}
	if checked == 0 {
		t.Fatal("no structure pairs with both 1 and 4 buses")
	}
}

func TestFullScanAlwaysWorseAcrossSpace(t *testing.T) {
	// Our approach beats the full-scan baseline on every feasible point,
	// not just on the selected architecture.
	res := explore(t)
	for _, i := range res.Feasible {
		c := &res.Candidates[i]
		if c.TestCost >= c.FullScan {
			t.Errorf("%s: functional cost %d not below full scan %d", c.Arch.Name, c.TestCost, c.FullScan)
		}
	}
}

func TestExploreDeterministic(t *testing.T) {
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	// Trim the space to keep this re-run cheap.
	cfg.Buses = []int{2}
	cfg.ALUCounts = []int{1}
	cfg.CMPCounts = []int{1}
	cfg.RFSets = cfg.RFSets[:2]
	r1, err := Explore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Annotator = testcost.NewAnnotator(16, cfg.Seed)
	r2, err := Explore(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Candidates) != len(r2.Candidates) || r1.Selected != r2.Selected {
		t.Fatalf("nondeterministic exploration: %d/%d vs %d/%d",
			len(r1.Candidates), r1.Selected, len(r2.Candidates), r2.Selected)
	}
	for i := range r1.Candidates {
		a, b := r1.Candidates[i], r2.Candidates[i]
		if a.Area != b.Area || a.Cycles != b.Cycles || a.TestCost != b.TestCost {
			t.Fatalf("candidate %d differs between runs", i)
		}
	}
}

func TestSmallRegisterFilesSpillOrSlow(t *testing.T) {
	// The 8+8 register set is tight for the crypt kernel; it must either
	// spill or be slower than the roomy 16+16 set on the same bus count.
	res := explore(t)
	var tight, roomy *Candidate
	for i := range res.Candidates {
		c := &res.Candidates[i]
		if !c.Feasible || c.Arch.Buses != 2 || !strings.Contains(c.Arch.Name, "spread-first") {
			continue
		}
		if strings.Contains(c.Arch.Name, "_a1_c1_rf0_") {
			tight = c
		}
		if strings.Contains(c.Arch.Name, "_a1_c1_rf5_") {
			roomy = c
		}
	}
	if tight == nil || roomy == nil {
		t.Fatal("expected candidates missing from the space")
	}
	if tight.Spills == 0 && tight.Cycles < roomy.Cycles {
		t.Errorf("tight RF (%d cycles, %d spills) outperformed roomy RF (%d cycles)",
			tight.Cycles, tight.Spills, roomy.Cycles)
	}
}

func TestWorkloadKernelIsRealCrypt(t *testing.T) {
	// Guard: the default workload is the crypt loop kernel, not a toy.
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	st := cfg.Workload.Stats()
	if st.Loads != 16 || st.CMP < 1 || st.ALU < 60 {
		t.Fatalf("workload does not look like the crypt round kernel: %v", st)
	}
	if cfg.WorkloadReps != crypt.RoundsPerHash {
		t.Fatalf("reps %d, want %d", cfg.WorkloadReps, crypt.RoundsPerHash)
	}
}

func TestCandidateCoords(t *testing.T) {
	c := Candidate{Area: 1, ExecTime: 2, TestCost: 3}
	co := c.Coords()
	if co[0] != 1 || co[1] != 2 || co[2] != 3 {
		t.Fatalf("bad coords %v", co)
	}
}

func TestRFSpecString(t *testing.T) {
	if (RFSpec{8, 1, 2}).String() == "" {
		t.Fatal("empty RFSpec string")
	}
}

func TestParallelExplorationMatchesSerial(t *testing.T) {
	cfg, err := DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Buses = []int{2, 3}
	cfg.ALUCounts = []int{1, 2}
	cfg.CMPCounts = []int{1}
	cfg.RFSets = cfg.RFSets[:3]
	cfg.Annotator = explore(t).Config.Annotator

	serial := cfg
	serial.Parallelism = 1
	rs, err := Explore(serial)
	if err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.Parallelism = 8
	rp, err := Explore(par)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Candidates) != len(rp.Candidates) || rs.Selected != rp.Selected {
		t.Fatalf("parallel exploration diverged: %d/%d vs %d/%d",
			len(rs.Candidates), rs.Selected, len(rp.Candidates), rp.Selected)
	}
	for i := range rs.Candidates {
		a, b := rs.Candidates[i], rp.Candidates[i]
		if a.Area != b.Area || a.Cycles != b.Cycles || a.TestCost != b.TestCost || a.Feasible != b.Feasible {
			t.Fatalf("candidate %d differs between serial and parallel runs", i)
		}
	}
}
