package dse

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/testcost"
	"repro/internal/tta"
)

// shardTestConfig is a four-candidate space (buses {1,2} × two assign
// strategies) — enough candidates that every small shard topology has a
// non-trivial split. The shared annotator keeps repeated runs warm.
func shardTestConfig(t *testing.T, ann *testcost.Annotator) Config {
	t.Helper()
	cfg := smallConfig(t)
	cfg.Buses = []int{1, 2}
	cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst, tta.Packed}
	cfg.Annotator = ann
	return cfg
}

// sharedAnnotator builds a fully configured annotator safe to share
// across concurrent shard runs (fillDefaults only writes nil/zero
// fields, so pre-setting them makes the shared state read-only).
func sharedAnnotator() *testcost.Annotator {
	ann := testcost.NewAnnotator(8, 7)
	ann.ATPGWorkers = 1
	return ann
}

// runShard executes one worker of a count-way sharded exploration and
// returns its checkpoint path.
func runShard(t *testing.T, cfg Config, count, index int, dir string) string {
	t.Helper()
	path := filepath.Join(dir, fmt.Sprintf("shard%dof%d.ckpt", index, count))
	cfg.Shard = &ShardRange{Count: count, Index: index}
	ck, err := OpenCheckpoint(path, cfg)
	if err != nil {
		t.Fatalf("shard %d/%d checkpoint: %v", index, count, err)
	}
	cfg.Checkpoint = ck
	if _, err := ExploreContext(context.Background(), cfg); err != nil {
		t.Fatalf("shard %d/%d: %v", index, count, err)
	}
	return path
}

func TestShardBoundsTile(t *testing.T) {
	for _, total := range []int{0, 1, 4, 5, 100, 101} {
		for _, count := range []int{1, 2, 3, 7, 8, 200} {
			cur := 0
			for i := 0; i < count; i++ {
				lo, hi := shardBounds(total, count, i)
				if lo != cur {
					t.Fatalf("total %d count %d: shard %d starts at %d, want %d", total, count, i, lo, cur)
				}
				if size := hi - lo; size < total/count || size > total/count+1 {
					t.Fatalf("total %d count %d: shard %d has size %d (unbalanced)", total, count, i, size)
				}
				cur = hi
			}
			if cur != total {
				t.Fatalf("total %d count %d: shards end at %d", total, count, cur)
			}
		}
	}
}

// TestShardMergePermutationsMatchUnsharded is the determinism property
// at the heart of the tentpole: for any shard count — including more
// shards than candidates — and any order of the shard files, the merged
// result equals the unsharded run in every field, and its JSON encoding
// is byte-identical.
func TestShardMergePermutationsMatchUnsharded(t *testing.T) {
	ann := sharedAnnotator()
	ref, err := ExploreContext(context.Background(), shardTestConfig(t, ann))
	if err != nil {
		t.Fatal(err)
	}
	refBytes := resultBytes(t, ref)
	rng := rand.New(rand.NewSource(99))
	for _, count := range []int{1, 2, 3, 4, 7} {
		dir := t.TempDir()
		paths := make([]string, count)
		for i := 0; i < count; i++ {
			paths[i] = runShard(t, shardTestConfig(t, ann), count, i, dir)
		}
		for trial := 0; trial < 4; trial++ {
			perm := rng.Perm(count)
			shuffled := make([]string, count)
			for i, p := range perm {
				shuffled[i] = paths[p]
			}
			merged, err := MergeExploreContext(context.Background(), shardTestConfig(t, ann), shuffled)
			if err != nil {
				t.Fatalf("count %d perm %v: %v", count, perm, err)
			}
			requireSameResult(t, ref, merged)
			if got := resultBytes(t, merged); string(got) != string(refBytes) {
				t.Fatalf("count %d perm %v: merged result bytes differ from unsharded run", count, perm)
			}
		}
	}
}

// resultBytes flattens the result's exported, deterministic fields the
// way report encoders do — a byte-comparable identity.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	type flat struct {
		Names    []string
		Cands    []Candidate
		Feasible []int
		Front2D  []int
		Front3D  []int
		Selected int
	}
	f := flat{Feasible: res.Feasible, Front2D: res.Front2D, Front3D: res.Front3D, Selected: res.Selected}
	for i := range res.Candidates {
		c := res.Candidates[i] // copy; drop the pointer, keep the name
		f.Names = append(f.Names, c.Arch.Name)
		c.Arch = nil
		f.Cands = append(f.Cands, c)
	}
	b, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardMergeRejections covers the strict validation: duplicated and
// overlapping ranges, missing shards, unsharded checkpoints, and files
// from a different candidate space are all rejected with typed errors.
func TestShardMergeRejections(t *testing.T) {
	ann := sharedAnnotator()
	dir := t.TempDir()
	s0 := runShard(t, shardTestConfig(t, ann), 2, 0, dir)
	s1 := runShard(t, shardTestConfig(t, ann), 2, 1, dir)

	expectMergeError := func(name string, paths []string, wantSub string) {
		t.Helper()
		_, err := MergeExploreContext(context.Background(), shardTestConfig(t, ann), paths)
		if err == nil {
			t.Fatalf("%s: merge accepted %v", name, paths)
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
		}
	}

	expectMergeError("duplicate", []string{s0, s1, s0}, "overlaps")
	expectMergeError("missing", []string{s0}, "covered by no shard checkpoint")
	expectMergeError("none", nil, "at least one")

	// An unsharded checkpoint is not a merge input.
	plain := shardTestConfig(t, ann)
	plainPath := filepath.Join(dir, "plain.ckpt")
	ck, err := OpenCheckpoint(plainPath, plain)
	if err != nil {
		t.Fatal(err)
	}
	plain.Checkpoint = ck
	if _, err := ExploreContext(context.Background(), plain); err != nil {
		t.Fatal(err)
	}
	expectMergeError("unsharded-input", []string{plainPath, s1}, "no shard header")

	// A shard of a different candidate space (3 buses -> 6 candidates)
	// must not merge into this one (4 candidates).
	other := shardTestConfig(t, ann)
	other.Buses = []int{1, 2, 3}
	otherDir := t.TempDir()
	o0 := runShard(t, other, 2, 0, otherDir)
	expectMergeError("wrong-space", []string{o0, s1}, "candidate space")

	// Typed error shape.
	_, err = MergeExploreContext(context.Background(), shardTestConfig(t, ann), []string{s0, s1, s0})
	var sme *ShardMergeError
	if !errors.As(err, &sme) {
		t.Fatalf("overlap error is %T, want *ShardMergeError", err)
	}

	// A shard config without a checkpoint cannot run.
	noCk := shardTestConfig(t, ann)
	noCk.Shard = &ShardRange{Count: 2, Index: 0}
	if _, err := ExploreContext(context.Background(), noCk); err == nil || !strings.Contains(err.Error(), "requires a Checkpoint") {
		t.Fatalf("shard run without checkpoint: err = %v", err)
	}

	// Merging with Shard set is a config error.
	bad := shardTestConfig(t, ann)
	bad.Shard = &ShardRange{Count: 2, Index: 0}
	if _, err := MergeExploreContext(context.Background(), bad, []string{s0, s1}); err == nil {
		t.Fatal("merge accepted a sharded config")
	}
}

// TestShardIncompleteThenResume kills one shard's completeness (an entry
// is deleted, standing in for a worker that crashed between flushes),
// checks the merge rejects the file with a resume hint, resumes that
// shard from its own checkpoint, and checks the re-merge is identical to
// the unsharded run.
func TestShardIncompleteThenResume(t *testing.T) {
	ann := sharedAnnotator()
	ref, err := ExploreContext(context.Background(), shardTestConfig(t, ann))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s0 := runShard(t, shardTestConfig(t, ann), 2, 0, dir)
	s1 := runShard(t, shardTestConfig(t, ann), 2, 1, dir)

	// Drop one entry from shard 0's file.
	data, err := os.ReadFile(s0)
	if err != nil {
		t.Fatal(err)
	}
	f, rec, err := decodeCheckpointData(data)
	if err != nil || rec.Torn {
		t.Fatalf("decode shard 0: %v (recovery %+v)", err, rec)
	}
	if len(f.Entries) != 2 {
		t.Fatalf("shard 0 holds %d entries, want 2", len(f.Entries))
	}
	for k := range f.Entries {
		delete(f.Entries, k)
		break
	}
	trunc, err := encodeCheckpoint(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s0, trunc, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = MergeExploreContext(context.Background(), shardTestConfig(t, ann), []string{s0, s1})
	if err == nil || !strings.Contains(err.Error(), "incomplete shard") {
		t.Fatalf("merge of incomplete shard: err = %v", err)
	}

	// Resume shard 0 from its own (truncated) checkpoint and merge again.
	resumed := runShard(t, shardTestConfig(t, ann), 2, 0, dir)
	if resumed != s0 {
		t.Fatalf("resume wrote %s, want %s", resumed, s0)
	}
	merged, err := MergeExploreContext(context.Background(), shardTestConfig(t, ann), []string{s0, s1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, merged)
}

// TestShardCancelResumeByteIdentical kills a shard worker mid-flight
// (context cancellation after its first completed candidate), resumes it
// from its own checkpoint, and checks the merged result is identical to
// the unsharded run — the crash/resume contract.
func TestShardCancelResumeByteIdentical(t *testing.T) {
	ann := sharedAnnotator()
	ref, err := ExploreContext(context.Background(), shardTestConfig(t, ann))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	s1 := runShard(t, shardTestConfig(t, ann), 2, 1, dir)

	// Shard 0, killed deterministically on its second candidate: with
	// Parallelism 1 the feed order is fixed, and the injection plan fires
	// on exactly the second evaluation — candidate 0 completes and is
	// checkpointed, candidate 1 dies.
	path := filepath.Join(dir, "shard0of2.ckpt")
	cfg := shardTestConfig(t, ann)
	cfg.Parallelism = 1
	cfg.Shard = &ShardRange{Count: 2, Index: 0}
	inj := faultinject.New(1)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModeError, Every: 2, Limit: 1})
	cfg.Inject = inj
	ck, err := OpenCheckpoint(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	_, err = ExploreContext(context.Background(), cfg)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("killed shard: err = %T (%v), want *PartialError", err, err)
	}
	if pe.Evaluated != 1 {
		t.Fatalf("killed shard evaluated %d candidates, want exactly 1", pe.Evaluated)
	}

	// The merge must refuse the partial shard...
	if _, err := MergeExploreContext(context.Background(), shardTestConfig(t, ann), []string{path, s1}); err == nil {
		t.Fatal("merge accepted a partial shard checkpoint")
	}

	// ...until the shard is resumed to completion.
	resumeCfg := shardTestConfig(t, ann)
	resumeCfg.Shard = &ShardRange{Count: 2, Index: 0}
	ck2, err := OpenCheckpoint(path, resumeCfg)
	if err != nil {
		t.Fatalf("reopening the shard checkpoint: %v", err)
	}
	if ck2.Len() == 0 {
		t.Fatal("killed shard persisted nothing; the resume test needs a completed prefix")
	}
	resumeCfg.Checkpoint = ck2
	if _, err := ExploreContext(context.Background(), resumeCfg); err != nil {
		t.Fatalf("resume: %v", err)
	}
	merged, err := MergeExploreContext(context.Background(), shardTestConfig(t, ann), []string{path, s1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, merged)
}

// TestShardWorkersConcurrent runs every worker of a 4-way topology
// concurrently against one shared annotator — the in-process equivalent
// of the daemon's fan-out, and the -race stress for the shard path.
func TestShardWorkersConcurrent(t *testing.T) {
	ann := sharedAnnotator()
	ref, err := ExploreContext(context.Background(), shardTestConfig(t, ann))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	const count = 4
	paths := make([]string, count)
	var wg sync.WaitGroup
	errs := make([]error, count)
	for i := 0; i < count; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := filepath.Join(dir, fmt.Sprintf("shard%d.ckpt", i))
			cfg := shardTestConfig(t, ann)
			cfg.Shard = &ShardRange{Count: count, Index: i}
			ck, err := OpenCheckpoint(path, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			cfg.Checkpoint = ck
			_, errs[i] = ExploreContext(context.Background(), cfg)
			paths[i] = path
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	merged, err := MergeExploreContext(context.Background(), shardTestConfig(t, ann), paths)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, ref, merged)
}

// TestShardCheckpointTopologyMismatch pins the header checks: a shard
// checkpoint cannot be opened by an unsharded run or a different slot,
// and spec hashes bind only when both sides carry one.
func TestShardCheckpointTopologyMismatch(t *testing.T) {
	ann := sharedAnnotator()
	dir := t.TempDir()
	s0 := runShard(t, shardTestConfig(t, ann), 2, 0, dir)

	// Unsharded run, sharded file.
	plain := shardTestConfig(t, ann)
	_, err := OpenCheckpoint(s0, plain)
	var mm *CheckpointMismatchError
	if !errors.As(err, &mm) || mm.Field != "shard topology" {
		t.Fatalf("unsharded open of shard file: err = %v, want shard topology mismatch", err)
	}

	// Different slot, same file.
	slot1 := shardTestConfig(t, ann)
	slot1.Shard = &ShardRange{Count: 2, Index: 1}
	if _, err := OpenCheckpoint(s0, slot1); !errors.As(err, &mm) || mm.Field != "shard topology" {
		t.Fatalf("wrong-slot open: err = %v, want shard topology mismatch", err)
	}

	// Spec hash: both set and different -> mismatch; either empty -> ok.
	hashed := shardTestConfig(t, ann)
	hashed.SpecHash = "aaaaaaaaaaaaaaaa"
	hashedPath := filepath.Join(dir, "hashed.ckpt")
	ck, err := OpenCheckpoint(hashedPath, hashed)
	if err != nil {
		t.Fatal(err)
	}
	hashed.Checkpoint = ck
	if _, err := ExploreContext(context.Background(), hashed); err != nil {
		t.Fatal(err)
	}
	otherHash := shardTestConfig(t, ann)
	otherHash.SpecHash = "bbbbbbbbbbbbbbbb"
	if _, err := OpenCheckpoint(hashedPath, otherHash); !errors.As(err, &mm) || mm.Field != "spec hash" {
		t.Fatalf("different spec hash: err = %v, want spec hash mismatch", err)
	}
	noHash := shardTestConfig(t, ann)
	if ck, err := OpenCheckpoint(hashedPath, noHash); err != nil || ck.Len() == 0 {
		t.Fatalf("hashless open of hashed file: ck.Len()=%d err=%v, want clean resume", ck.Len(), err)
	}
}
