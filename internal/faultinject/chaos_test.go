// Chaos suite: every injected failure mode — panics, per-candidate
// context cancellations, cache IO errors, slow ATPG under a wall-clock
// budget, checkpoint write failures — must leave the exploration with a
// usable result (full or partial), never a hang, a crash or a corrupted
// engine. The tier-1 race leg runs this file under -race, so the
// recover/latch paths are exercised with the race detector watching.
package faultinject_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/testcost"
	"repro/internal/tta"
)

// chaosConfig is a narrow-width multi-candidate space: four candidates
// (two bus counts x two assign strategies, sharing structures pairwise)
// keep the single-flight memo and the worker pool honest without paying
// for a paper-scale sweep per scenario.
func chaosConfig(t *testing.T) dse.Config {
	t.Helper()
	cfg, err := dse.DefaultConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Width = 8
	cfg.Buses = []int{1, 2}
	cfg.ALUCounts = []int{1}
	cfg.CMPCounts = []int{1}
	cfg.RFSets = [][]dse.RFSpec{{
		{Regs: 16, In: 2, Out: 2},
		{Regs: 16, In: 1, Out: 2},
	}}
	cfg.Assigns = []tta.AssignStrategy{tta.SpreadFirst, tta.Packed}
	cfg.Annotator = nil // rebuild for the narrow width
	return cfg
}

// requireUsable asserts the chaos contract: err is nil or a
// *dse.PartialError, and the result exists with internally consistent
// fronts over whatever evaluated.
func requireUsable(t *testing.T, res *dse.Result, err error) *dse.PartialError {
	t.Helper()
	var pe *dse.PartialError
	if err != nil && !errors.As(err, &pe) {
		t.Fatalf("err = %T (%v), want nil or *dse.PartialError", err, err)
	}
	if res == nil {
		t.Fatal("chaos run returned no result")
	}
	for _, i := range res.Feasible {
		if res.Candidates[i].Arch == nil {
			t.Fatalf("feasible index %d points at a never-evaluated slot", i)
		}
	}
	if len(res.Front3D) > 0 && res.Selected < 0 {
		t.Fatal("non-empty 3-D front but no selection")
	}
	if res.Selected >= 0 && !res.Candidates[res.Selected].Feasible {
		t.Fatal("selected an infeasible candidate")
	}
	return pe
}

// TestChaosEvalPanics panics a random half of the candidate evaluations
// and checks the sweep survives with the other half evaluated and every
// panic isolated as a typed per-candidate error.
func TestChaosEvalPanics(t *testing.T) {
	cfg := chaosConfig(t)
	inj := faultinject.New(1)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModePanic, Prob: 0.5})
	cfg.Inject = inj

	res, err := dse.ExploreContext(context.Background(), cfg)
	pe := requireUsable(t, res, err)
	fires := int(inj.Fires(faultinject.DSEEval))
	if fires == 0 {
		t.Skip("seeded draw fired no panic this run shape; scenario not exercised")
	}
	if pe == nil {
		t.Fatalf("%d injected panics but no PartialError", fires)
	}
	if pe.Panics != fires {
		t.Fatalf("PartialError counts %d panics, injector fired %d", pe.Panics, fires)
	}
	for i, e := range pe.Errs {
		var epe *dse.EvalPanicError
		if !errors.As(e, &epe) {
			t.Fatalf("candidate %d error is %T, want *dse.EvalPanicError", i, e)
		}
		var pv *faultinject.PanicValue
		if pvv, ok := epe.Value.(*faultinject.PanicValue); ok {
			pv = pvv
		}
		if pv == nil || pv.Point != faultinject.DSEEval {
			t.Fatalf("candidate %d recovered value %v, want the injected *PanicValue", i, epe.Value)
		}
	}
	if pe.Evaluated+pe.Panics != pe.Total {
		t.Fatalf("accounting hole: %d evaluated + %d panics != %d total", pe.Evaluated, pe.Panics, pe.Total)
	}
}

// TestChaosATPGPanicUnderMemo panics inside the shared gate-level ATPG
// (under both the annotator's single-flight latch and the dse schedule
// memo) and checks no waiter hangs: the test finishing at all is the
// liveness proof, the typed errors are the visibility proof.
func TestChaosATPGPanicUnderMemo(t *testing.T) {
	cfg := chaosConfig(t)
	inj := faultinject.New(2)
	inj.Arm(faultinject.ATPGPattern, faultinject.Plan{Mode: faultinject.ModePanic, Limit: 1})
	cfg.Inject = inj

	res, err := dse.ExploreContext(context.Background(), cfg)
	pe := requireUsable(t, res, err)
	if inj.Fires(faultinject.ATPGPattern) != 1 {
		t.Fatalf("ATPG panic fired %d times, want 1", inj.Fires(faultinject.ATPGPattern))
	}
	if pe == nil || pe.Panics < 1 {
		t.Fatalf("injected ATPG panic not surfaced: %+v", pe)
	}
}

// TestChaosEvalCancellations injects context.Canceled into individual
// evaluations (a caller whose context died mid-call): hard per-candidate
// failures, exit-code-1 territory — but still a usable partial result.
func TestChaosEvalCancellations(t *testing.T) {
	cfg := chaosConfig(t)
	inj := faultinject.New(3)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModeCancel, Every: 2})
	cfg.Inject = inj

	res, err := dse.ExploreContext(context.Background(), cfg)
	pe := requireUsable(t, res, err)
	if pe == nil {
		t.Fatal("injected cancellations produced no PartialError")
	}
	if !errors.Is(pe, context.Canceled) {
		t.Fatalf("PartialError cause = %v, want to unwrap to context.Canceled", pe.Cause)
	}
	if pe.Evaluated == 0 {
		t.Fatal("every candidate cancelled; Every=2 should spare half")
	}
}

// TestChaosCacheIOErrors flips the warm-start cache IO into failure and
// checks both directions come back as typed errors with the annotator
// intact — the ttadse -cache path warns and continues cold on exactly
// these.
func TestChaosCacheIOErrors(t *testing.T) {
	// A tiny real cache to attempt loading.
	donor := testcost.NewAnnotator(4, 7)
	comp := tta.NewFU(tta.ALU, "ALU1")
	if _, _, err := donor.AreaDelay(&comp); err != nil {
		t.Fatal(err)
	}
	var file bytes.Buffer
	if err := donor.Save(&file); err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(4)
	inj.Arm(faultinject.CacheRead, faultinject.Plan{}) // ModeError on every hit
	a := testcost.NewAnnotator(4, 7)
	a.Inject = inj
	err := a.Load(bytes.NewReader(file.Bytes()))
	var corrupt *testcost.CacheCorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("injected read error came back as %T (%v), want *CacheCorruptError", err, err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("corrupt error does not unwrap to ErrInjected: %v", err)
	}
	// The failed load must leave the annotator usable: a full evaluation
	// still works (cold).
	if _, _, err := a.AreaDelay(&comp); err != nil {
		t.Fatalf("annotator unusable after failed load: %v", err)
	}

	inj.Disarm(faultinject.CacheRead)
	inj.Arm(faultinject.CacheWrite, faultinject.Plan{})
	var out bytes.Buffer
	if err := a.Save(&out); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected write error came back as %v", err)
	}
	if out.Len() != 0 {
		t.Fatalf("failed save still wrote %d bytes", out.Len())
	}
}

// TestChaosSlowATPGDegrades slows every ATPG pattern down against a tight
// wall-clock budget: the run must complete (no hang), with annotations
// degraded to analytical bounds instead of waiting out the slowness.
func TestChaosSlowATPGDegrades(t *testing.T) {
	cfg := chaosConfig(t)
	if err := fillAnnotator(&cfg); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(5)
	inj.Arm(faultinject.ATPGPattern, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: 2 * time.Millisecond})
	cfg.Inject = inj
	cfg.Annotator.ATPGDeadline = 20 * time.Millisecond

	start := time.Now()
	res, err := dse.ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireUsable(t, res, err)
	degraded := 0
	for _, i := range res.Feasible {
		if res.Candidates[i].Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("slow ATPG under a 20ms budget degraded nothing")
	}
	// Liveness: the budget must actually cut the sleeps short. A full
	// converged run at 2ms per fault would take minutes.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("budgeted run took %v", elapsed)
	}
}

// fillAnnotator materializes cfg.Annotator the way ExploreContext would,
// so the test can set its ATPG deadline beforehand.
func fillAnnotator(cfg *dse.Config) error {
	cfg.Annotator = testcost.NewAnnotator(cfg.Width, cfg.Seed)
	return nil
}

// TestChaosCheckpointWriteFailure breaks every checkpoint flush: the
// exploration itself must still complete cleanly — the checkpoint exists
// to protect the run, so losing it is a warning, not a failure.
func TestChaosCheckpointWriteFailure(t *testing.T) {
	cfg := chaosConfig(t)
	reg := obs.NewRegistry()
	cfg.Obs = reg
	inj := faultinject.New(6)
	inj.Arm(faultinject.Checkpoint, faultinject.Plan{})
	cfg.Inject = inj
	ck, err := dse.OpenCheckpoint(t.TempDir()+"/chaos.ckpt", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck

	res, err := dse.ExploreContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("checkpoint write failures leaked into the run: %v", err)
	}
	requireUsable(t, res, err)
	if inj.Fires(faultinject.Checkpoint) == 0 {
		t.Fatal("no checkpoint flush attempted")
	}
	if reg.Counter("dse.checkpoint.write_errors").Value() == 0 {
		t.Fatal("flush failures not counted")
	}
}

// TestChaosEverythingAtOnce arms every point at once — probabilistic
// panics, cache write failures, checkpoint write failures and slow ATPG —
// across a slightly larger space, the closest thing to a hostile machine.
// The only assertions are the chaos contract: terminates, usable result,
// clean accounting.
func TestChaosEverythingAtOnce(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Buses = []int{1, 2, 3}
	if err := fillAnnotator(&cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Annotator.ATPGDeadline = 50 * time.Millisecond
	inj := faultinject.New(7)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModePanic, Prob: 0.3})
	inj.Arm(faultinject.ATPGPattern, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: time.Millisecond, Every: 8})
	inj.Arm(faultinject.CacheWrite, faultinject.Plan{})
	inj.Arm(faultinject.Checkpoint, faultinject.Plan{Every: 2})
	cfg.Inject = inj
	ck, err := dse.OpenCheckpoint(t.TempDir()+"/all.ckpt", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck

	res, err := dse.ExploreContext(context.Background(), cfg)
	pe := requireUsable(t, res, err)
	if fires := int(inj.Fires(faultinject.DSEEval)); fires > 0 {
		if pe == nil || pe.Panics != fires {
			t.Fatalf("injector fired %d panics, PartialError says %+v", fires, pe)
		}
	} else if pe != nil && pe.Panics > 0 {
		t.Fatalf("phantom panics: %+v", pe)
	}
}
