// Package faultinject provides deterministic, seeded fault injection for
// the exploration engine's chaos tests: named injection points are
// compiled into the hot paths of the DSE worker loop, the gate-level ATPG
// pattern generation and the warm-start cache IO, and stay free when
// disabled — a nil *Injector answers every Hit with nil without locking
// or allocation.
//
// Injection is deterministic in the count domain: a plan fires on every
// Nth hit of its point (optionally probabilistically, driven by the
// injector's seed), up to a fire limit. Given the same sequence of hits a
// plan makes the same decisions, so single-threaded chaos runs replay
// exactly; under concurrency the per-point hit order may vary, but the
// number of fires for a given number of hits does not — which is what the
// chaos suite asserts on (every scenario ends in a usable partial
// result), not wall-clock schedules.
//
// Design rules mirror internal/obs: no global state (injectors travel
// through the existing config structs), nil-safety everywhere, and the
// production build pays one pointer test per instrumented site.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one injection site compiled into the engine.
type Point string

// The engine's injection points.
const (
	// DSEEval fires at the top of every candidate evaluation in the DSE
	// worker pool (internal/dse.runEvaluations).
	DSEEval Point = "dse.eval"
	// ATPGPattern fires once per fault in the deterministic PODEM merge
	// loop (internal/atpg.podemTopUp) — the natural place to make an ATPG
	// run slow or blow up mid-generation.
	ATPGPattern Point = "atpg.pattern"
	// CacheRead fires at the top of the warm-start cache Load
	// (internal/testcost.(*Annotator).Load).
	CacheRead Point = "testcost.cache.read"
	// CacheWrite fires at the top of the warm-start cache Save
	// (internal/testcost.(*Annotator).Save).
	CacheWrite Point = "testcost.cache.write"
	// Checkpoint fires on every checkpoint file write
	// (internal/dse.(*Checkpoint).flush).
	Checkpoint Point = "dse.checkpoint.write"
	// ShardWorker fires once at the top of a shard worker process's run
	// (internal/service.runShardWorker), before the worker has emitted
	// anything — the place to make a whole worker hang (ModeStall) or die
	// at birth, exercising the coordinator's supervision.
	ShardWorker Point = "shard.worker"
)

// Mode selects what a firing plan does to the instrumented call.
type Mode int

const (
	// ModeError makes Hit return the plan's Err (ErrInjected when unset).
	ModeError Mode = iota
	// ModePanic makes Hit panic with a *PanicValue — exercising the
	// engine's recover paths.
	ModePanic
	// ModeCancel makes Hit return context.Canceled, imitating a caller
	// whose context died mid-call.
	ModeCancel
	// ModeSleep makes Hit block for the plan's Delay and then succeed —
	// the "slow ATPG" scenario that exercises wall-clock budgets.
	ModeSleep
	// ModeTornWrite makes Hit return a *TornWriteError: durability-aware
	// write paths (durable.WriteFileAtomic) react by persisting only the
	// plan's Frac prefix of the payload to the final path and failing —
	// simulating a torn write that landed on disk.
	ModeTornWrite
	// ModeStall makes Hit block until the injector's ReleaseStalls is
	// called (in cross-process use: until the coordinator kills the
	// process) — the "hung worker" scenario behind stall supervision.
	ModeStall
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeCancel:
		return "cancel"
	case ModeSleep:
		return "sleep"
	case ModeTornWrite:
		return "torn"
	case ModeStall:
		return "stall"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ErrInjected is the default error returned by a firing ModeError plan.
var ErrInjected = errors.New("faultinject: injected error")

// PanicValue is what a firing ModePanic plan panics with, so recover
// sites (and tests) can tell an injected panic from a genuine one.
type PanicValue struct {
	Point Point
	N     int64 // 1-based fire ordinal
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (fire #%d)", p.Point, p.N)
}

// TornWriteError is what a firing ModeTornWrite plan returns from Hit.
// Durability-aware writers (durable.WriteFileAtomic) detect it with
// errors.As and persist only the Frac prefix of their payload to the
// final destination before failing, so the next loader faces a genuinely
// torn artifact.
type TornWriteError struct {
	Point Point
	N     int64   // 1-based fire ordinal
	Frac  float64 // prefix fraction to persist, in (0, 1)
}

func (e *TornWriteError) Error() string {
	return fmt.Sprintf("faultinject: injected torn write at %s (fire #%d, %.0f%% prefix persisted)",
		e.Point, e.N, e.Frac*100)
}

// Plan configures one injection point. The zero value fires ModeError
// with ErrInjected on every hit, unlimited.
type Plan struct {
	Mode Mode
	// Every fires the plan on every Nth hit (1 = every hit). 0 means 1.
	Every int
	// Limit caps the number of fires (0 = unlimited).
	Limit int
	// Prob, when in (0, 1), gates each otherwise-eligible hit on a draw
	// from the injector's seeded stream; 0 (or >= 1) always fires.
	Prob float64
	// Delay is the sleep duration of ModeSleep.
	Delay time.Duration
	// Frac is the persisted prefix fraction of ModeTornWrite; values
	// outside (0, 1) mean the default 0.5.
	Frac float64
	// Err overrides the returned error of ModeError.
	Err error
}

type plan struct {
	Plan
	hits  int64
	fires int64
}

// Injector owns the armed plans of one chaos run. Construct with New;
// a nil *Injector is a valid no-op for every method.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	plans map[Point]*plan

	stallOnce sync.Once
	stallCh   chan struct{} // closed by ReleaseStalls; ModeStall blocks on it
}

// New returns an injector whose probabilistic decisions are driven by
// seed (deterministic per hit order).
func New(seed int64) *Injector {
	return &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		plans:   make(map[Point]*plan),
		stallCh: make(chan struct{}),
	}
}

// Arm installs (or replaces) the plan for a point. Arming resets the
// point's hit and fire counts.
func (i *Injector) Arm(p Point, pl Plan) {
	if i == nil {
		return
	}
	if pl.Every <= 0 {
		pl.Every = 1
	}
	i.mu.Lock()
	i.plans[p] = &plan{Plan: pl}
	i.mu.Unlock()
}

// Disarm removes the plan for a point.
func (i *Injector) Disarm(p Point) {
	if i == nil {
		return
	}
	i.mu.Lock()
	delete(i.plans, p)
	i.mu.Unlock()
}

// Hit reports one pass through an injection point and acts out the armed
// plan when it fires: returning an error (ModeError/ModeCancel),
// panicking (ModePanic) or sleeping first (ModeSleep). A nil injector,
// an unarmed point and a non-firing hit all return nil.
func (i *Injector) Hit(p Point) error {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	pl, ok := i.plans[p]
	if !ok {
		i.mu.Unlock()
		return nil
	}
	pl.hits++
	fire := pl.hits%int64(pl.Every) == 0
	if fire && pl.Limit > 0 && pl.fires >= int64(pl.Limit) {
		fire = false
	}
	if fire && pl.Prob > 0 && pl.Prob < 1 {
		fire = i.rng.Float64() < pl.Prob
	}
	if !fire {
		i.mu.Unlock()
		return nil
	}
	pl.fires++
	n := pl.fires
	mode, delay, frac, err := pl.Mode, pl.Delay, pl.Frac, pl.Err
	i.mu.Unlock()

	switch mode {
	case ModePanic:
		panic(&PanicValue{Point: p, N: n})
	case ModeCancel:
		return context.Canceled
	case ModeSleep:
		time.Sleep(delay)
		return nil
	case ModeTornWrite:
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		return &TornWriteError{Point: p, N: n, Frac: frac}
	case ModeStall:
		<-i.stallCh
		return fmt.Errorf("%s: %w", p, ErrInjected)
	default:
		if err == nil {
			err = ErrInjected
		}
		return fmt.Errorf("%s: %w", p, err)
	}
}

// ReleaseStalls unblocks every Hit currently (and subsequently) parked in
// a ModeStall plan — the in-process escape hatch for tests. Cross-process
// stalls need no release: the supervising coordinator kills the stalled
// worker. Idempotent; safe on a nil injector.
func (i *Injector) ReleaseStalls() {
	if i == nil {
		return
	}
	i.stallOnce.Do(func() { close(i.stallCh) })
}

// Fires returns how many times the point's plan has fired (0 for a nil
// injector or an unarmed point) — the chaos tests' ground truth that a
// scenario actually exercised its failure path.
func (i *Injector) Fires(p Point) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if pl, ok := i.plans[p]; ok {
		return pl.fires
	}
	return 0
}

// Hits returns how many times the point has been passed (0 for a nil
// injector or an unarmed point).
func (i *Injector) Hits(p Point) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if pl, ok := i.plans[p]; ok {
		return pl.hits
	}
	return 0
}

// ParsePlans parses the textual injection spec used to arm chaos across
// process boundaries (a shard worker reads it from its environment, since
// live *Injector values cannot cross an exec). The grammar:
//
//	spec    := plan (";" plan)*
//	plan    := point "=" mode (":" opt)*
//	mode    := "error" | "panic" | "cancel" | "sleep" | "torn" | "stall"
//	opt     := ("every"|"limit") "=" int
//	         | "prob"  "=" float
//	         | "frac"  "=" float
//	         | "delay" "=" goDuration
//
// Example: "dse.checkpoint.write=torn:limit=1;shard.worker=stall".
// Unknown modes, options or malformed values are errors — a chaos drill
// that silently arms nothing would pass vacuously.
func ParsePlans(spec string) (map[Point]Plan, error) {
	out := make(map[Point]Plan)
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		point, rest, ok := strings.Cut(raw, "=")
		if !ok || point == "" {
			return nil, fmt.Errorf("faultinject: plan %q: want point=mode[:opt...]", raw)
		}
		parts := strings.Split(rest, ":")
		var pl Plan
		switch parts[0] {
		case "error":
			pl.Mode = ModeError
		case "panic":
			pl.Mode = ModePanic
		case "cancel":
			pl.Mode = ModeCancel
		case "sleep":
			pl.Mode = ModeSleep
		case "torn":
			pl.Mode = ModeTornWrite
		case "stall":
			pl.Mode = ModeStall
		default:
			return nil, fmt.Errorf("faultinject: plan %q: unknown mode %q", raw, parts[0])
		}
		for _, opt := range parts[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: plan %q: option %q is not key=value", raw, opt)
			}
			var err error
			switch k {
			case "every":
				pl.Every, err = strconv.Atoi(v)
			case "limit":
				pl.Limit, err = strconv.Atoi(v)
			case "prob":
				pl.Prob, err = strconv.ParseFloat(v, 64)
			case "frac":
				pl.Frac, err = strconv.ParseFloat(v, 64)
			case "delay":
				pl.Delay, err = time.ParseDuration(v)
			default:
				return nil, fmt.Errorf("faultinject: plan %q: unknown option %q", raw, k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: plan %q: option %q: %v", raw, opt, err)
			}
		}
		out[Point(point)] = pl
	}
	return out, nil
}

// ArmSpec parses spec (see ParsePlans) and arms every plan it names.
// Safe on a nil injector only when the spec is empty.
func (i *Injector) ArmSpec(spec string) error {
	plans, err := ParsePlans(spec)
	if err != nil {
		return err
	}
	if len(plans) == 0 {
		return nil
	}
	if i == nil {
		return errors.New("faultinject: arming a nil injector")
	}
	for p, pl := range plans {
		i.Arm(p, pl)
	}
	return nil
}
