package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	if err := inj.Hit(DSEEval); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	inj.Arm(DSEEval, Plan{})
	inj.Disarm(DSEEval)
	if inj.Fires(DSEEval) != 0 || inj.Hits(DSEEval) != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestUnarmedPointIsNoop(t *testing.T) {
	inj := New(1)
	for k := 0; k < 10; k++ {
		if err := inj.Hit(ATPGPattern); err != nil {
			t.Fatalf("unarmed point returned %v", err)
		}
	}
	if inj.Fires(ATPGPattern) != 0 {
		t.Fatal("unarmed point fired")
	}
}

func TestErrorEveryNWithLimit(t *testing.T) {
	inj := New(1)
	sentinel := errors.New("boom")
	inj.Arm(CacheRead, Plan{Mode: ModeError, Every: 3, Limit: 2, Err: sentinel})
	var fired int
	for k := 1; k <= 12; k++ {
		err := inj.Hit(CacheRead)
		if k%3 == 0 && fired < 2 {
			if !errors.Is(err, sentinel) {
				t.Fatalf("hit %d: err = %v, want sentinel", k, err)
			}
			fired++
		} else if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", k, err)
		}
	}
	if got := inj.Fires(CacheRead); got != 2 {
		t.Fatalf("fires = %d, want 2 (limit)", got)
	}
	if got := inj.Hits(CacheRead); got != 12 {
		t.Fatalf("hits = %d, want 12", got)
	}
}

func TestDefaultErrorIsErrInjected(t *testing.T) {
	inj := New(1)
	inj.Arm(CacheWrite, Plan{Mode: ModeError})
	if err := inj.Hit(CacheWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestPanicModeCarriesPanicValue(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModePanic})
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %T, want *PanicValue", r)
		}
		if pv.Point != DSEEval || pv.N != 1 {
			t.Fatalf("panic value = %+v", pv)
		}
	}()
	inj.Hit(DSEEval)
	t.Fatal("Hit did not panic")
}

func TestCancelMode(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModeCancel})
	if err := inj.Hit(DSEEval); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSleepModeDelaysAndSucceeds(t *testing.T) {
	inj := New(1)
	inj.Arm(ATPGPattern, Plan{Mode: ModeSleep, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := inj.Hit(ATPGPattern); err != nil {
		t.Fatalf("sleep mode returned %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("sleep mode did not delay")
	}
}

func TestProbIsSeededDeterministic(t *testing.T) {
	fires := func(seed int64) []bool {
		inj := New(seed)
		inj.Arm(DSEEval, Plan{Mode: ModeError, Prob: 0.5})
		out := make([]bool, 64)
		for k := range out {
			out[k] = inj.Hit(DSEEval) != nil
		}
		return out
	}
	a, b := fires(42), fires(42)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at hit %d", k)
		}
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", n, len(a))
	}
}

func TestArmResetsCounts(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModeError})
	inj.Hit(DSEEval)
	inj.Arm(DSEEval, Plan{Mode: ModeError, Every: 2})
	if inj.Hits(DSEEval) != 0 || inj.Fires(DSEEval) != 0 {
		t.Fatal("re-arming did not reset counts")
	}
}

// TestConcurrentHits checks the fire accounting is exact under
// concurrency: with Every=1 and a limit, exactly Limit hits fail.
func TestConcurrentHits(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModeError, Limit: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if inj.Hit(DSEEval) != nil {
					mu.Lock()
					failed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if failed != 10 {
		t.Fatalf("failed hits = %d, want 10", failed)
	}
	if inj.Hits(DSEEval) != 800 {
		t.Fatalf("hits = %d, want 800", inj.Hits(DSEEval))
	}
}

// TestTornWriteMode checks the typed error, the fire ordinal and the
// default/explicit prefix fractions.
func TestTornWriteMode(t *testing.T) {
	inj := New(1)
	inj.Arm(CacheWrite, Plan{Mode: ModeTornWrite})
	var torn *TornWriteError
	if err := inj.Hit(CacheWrite); !errors.As(err, &torn) {
		t.Fatalf("Hit = %v, want *TornWriteError", err)
	} else if torn.Frac != 0.5 || torn.Point != CacheWrite || torn.N != 1 {
		t.Fatalf("default torn error = %+v, want frac 0.5, point %s, n 1", torn, CacheWrite)
	}
	inj.Arm(Checkpoint, Plan{Mode: ModeTornWrite, Frac: 0.25})
	if err := inj.Hit(Checkpoint); !errors.As(err, &torn) || torn.Frac != 0.25 {
		t.Fatalf("Hit = %v, want torn with frac 0.25", err)
	}
}

// TestStallModeBlocksUntilReleased parks a Hit in a stall plan and
// checks it does not return until ReleaseStalls.
func TestStallModeBlocksUntilReleased(t *testing.T) {
	inj := New(1)
	inj.Arm(ShardWorker, Plan{Mode: ModeStall})
	done := make(chan error, 1)
	go func() { done <- inj.Hit(ShardWorker) }()
	select {
	case err := <-done:
		t.Fatalf("stalled Hit returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	inj.ReleaseStalls()
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("released stall returned %v, want ErrInjected", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Hit still blocked after ReleaseStalls")
	}
	// Later stalled hits pass straight through the closed channel.
	if err := inj.Hit(ShardWorker); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-release stall Hit = %v, want ErrInjected", err)
	}
}

// TestParsePlans covers the cross-process arming grammar: happy path,
// every option key, and the rejection of malformed specs.
func TestParsePlans(t *testing.T) {
	plans, err := ParsePlans("dse.checkpoint.write=torn:limit=1:frac=0.3; shard.worker=stall;" +
		"atpg.pattern=sleep:delay=2ms:every=4:prob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if got := plans[Checkpoint]; got.Mode != ModeTornWrite || got.Limit != 1 || got.Frac != 0.3 {
		t.Fatalf("checkpoint plan = %+v", got)
	}
	if got := plans[ShardWorker]; got.Mode != ModeStall {
		t.Fatalf("shard.worker plan = %+v", got)
	}
	if got := plans[ATPGPattern]; got.Mode != ModeSleep || got.Delay != 2*time.Millisecond || got.Every != 4 || got.Prob != 0.5 {
		t.Fatalf("atpg plan = %+v", got)
	}
	if p, err := ParsePlans(""); err != nil || len(p) != 0 {
		t.Fatalf("empty spec = %v, %v", p, err)
	}
	for _, bad := range []string{"nomode", "p=warp", "p=error:odd", "p=error:every=x", "p=sleep:delay=fast"} {
		if _, err := ParsePlans(bad); err == nil {
			t.Fatalf("ParsePlans(%q) accepted a malformed spec", bad)
		}
	}
}

// TestArmSpec arms plans from a spec and checks they fire.
func TestArmSpec(t *testing.T) {
	inj := New(1)
	if err := inj.ArmSpec("dse.eval=error:limit=2"); err != nil {
		t.Fatal(err)
	}
	if err := inj.Hit(DSEEval); err == nil {
		t.Fatal("armed plan did not fire")
	}
	var nilInj *Injector
	if err := nilInj.ArmSpec(""); err != nil {
		t.Fatalf("empty spec on nil injector = %v", err)
	}
	if err := nilInj.ArmSpec("dse.eval=error"); err == nil {
		t.Fatal("non-empty spec on nil injector must error")
	}
}
