package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var inj *Injector
	if err := inj.Hit(DSEEval); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	inj.Arm(DSEEval, Plan{})
	inj.Disarm(DSEEval)
	if inj.Fires(DSEEval) != 0 || inj.Hits(DSEEval) != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestUnarmedPointIsNoop(t *testing.T) {
	inj := New(1)
	for k := 0; k < 10; k++ {
		if err := inj.Hit(ATPGPattern); err != nil {
			t.Fatalf("unarmed point returned %v", err)
		}
	}
	if inj.Fires(ATPGPattern) != 0 {
		t.Fatal("unarmed point fired")
	}
}

func TestErrorEveryNWithLimit(t *testing.T) {
	inj := New(1)
	sentinel := errors.New("boom")
	inj.Arm(CacheRead, Plan{Mode: ModeError, Every: 3, Limit: 2, Err: sentinel})
	var fired int
	for k := 1; k <= 12; k++ {
		err := inj.Hit(CacheRead)
		if k%3 == 0 && fired < 2 {
			if !errors.Is(err, sentinel) {
				t.Fatalf("hit %d: err = %v, want sentinel", k, err)
			}
			fired++
		} else if err != nil {
			t.Fatalf("hit %d fired unexpectedly: %v", k, err)
		}
	}
	if got := inj.Fires(CacheRead); got != 2 {
		t.Fatalf("fires = %d, want 2 (limit)", got)
	}
	if got := inj.Hits(CacheRead); got != 12 {
		t.Fatalf("hits = %d, want 12", got)
	}
}

func TestDefaultErrorIsErrInjected(t *testing.T) {
	inj := New(1)
	inj.Arm(CacheWrite, Plan{Mode: ModeError})
	if err := inj.Hit(CacheWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
}

func TestPanicModeCarriesPanicValue(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModePanic})
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %T, want *PanicValue", r)
		}
		if pv.Point != DSEEval || pv.N != 1 {
			t.Fatalf("panic value = %+v", pv)
		}
	}()
	inj.Hit(DSEEval)
	t.Fatal("Hit did not panic")
}

func TestCancelMode(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModeCancel})
	if err := inj.Hit(DSEEval); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSleepModeDelaysAndSucceeds(t *testing.T) {
	inj := New(1)
	inj.Arm(ATPGPattern, Plan{Mode: ModeSleep, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := inj.Hit(ATPGPattern); err != nil {
		t.Fatalf("sleep mode returned %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("sleep mode did not delay")
	}
}

func TestProbIsSeededDeterministic(t *testing.T) {
	fires := func(seed int64) []bool {
		inj := New(seed)
		inj.Arm(DSEEval, Plan{Mode: ModeError, Prob: 0.5})
		out := make([]bool, 64)
		for k := range out {
			out[k] = inj.Hit(DSEEval) != nil
		}
		return out
	}
	a, b := fires(42), fires(42)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at hit %d", k)
		}
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times", n, len(a))
	}
}

func TestArmResetsCounts(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModeError})
	inj.Hit(DSEEval)
	inj.Arm(DSEEval, Plan{Mode: ModeError, Every: 2})
	if inj.Hits(DSEEval) != 0 || inj.Fires(DSEEval) != 0 {
		t.Fatal("re-arming did not reset counts")
	}
}

// TestConcurrentHits checks the fire accounting is exact under
// concurrency: with Every=1 and a limit, exactly Limit hits fail.
func TestConcurrentHits(t *testing.T) {
	inj := New(1)
	inj.Arm(DSEEval, Plan{Mode: ModeError, Limit: 10})
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				if inj.Hit(DSEEval) != nil {
					mu.Lock()
					failed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if failed != 10 {
		t.Fatalf("failed hits = %d, want 10", failed)
	}
	if inj.Hits(DSEEval) != 800 {
		t.Fatalf("hits = %d, want 800", inj.Hits(DSEEval))
	}
}
