package sched

import (
	"fmt"
	"sort"

	"repro/internal/program"
	"repro/internal/tta"
)

// Check validates the structural invariants of a schedule independently of
// how it was produced: per-cycle bus and register-file port capacities,
// single-immediate-per-unit bandwidth, the function-unit transport
// protocol of relations (2)-(8), and read-after-write register
// consistency. It is the referee the fuzz suites run against every
// schedule.
func Check(res *Result) error {
	arch := res.Arch
	moves := append([]Move(nil), res.Moves...)
	sort.SliceStable(moves, func(i, j int) bool { return moves[i].Cycle < moves[j].Cycle })

	type fuState struct {
		trigCycle int // -1 when idle
		producing bool
		busyUntil int
	}
	fus := map[int]*fuState{}
	for ci := range arch.Components {
		switch arch.Components[ci].Kind {
		case tta.ALU, tta.CMP, tta.LDST:
			fus[ci] = &fuState{trigCycle: -1, busyUntil: -1}
		}
	}

	// Register visibility: regReady[(rf,reg)] = earliest read cycle.
	type regKey struct{ rf, reg int }
	regReady := map[regKey]int{}
	for _, loc := range res.InputLoc {
		regReady[regKey{loc.RF, loc.Reg}] = 0
	}

	i := 0
	for i < len(moves) {
		j := i
		for j < len(moves) && moves[j].Cycle == moves[i].Cycle {
			j++
		}
		cyc := moves[i].Cycle
		group := moves[i:j]
		if len(group) > arch.Buses {
			return fmt.Errorf("sched.Check: cycle %d uses %d buses of %d", cyc, len(group), arch.Buses)
		}
		rfReads := map[int]int{}
		rfWrites := map[int]int{}
		immUse := map[int]int{}
		for _, m := range group {
			src := &arch.Components[m.Src.Comp]
			switch src.Kind {
			case tta.RF:
				rfReads[m.Src.Comp]++
				if rfReads[m.Src.Comp] > src.NumOut {
					return fmt.Errorf("sched.Check: cycle %d overloads %s read ports", cyc, src.Name)
				}
				ready, ok := regReady[regKey{m.Src.Comp, m.Src.Reg}]
				if !ok {
					return fmt.Errorf("sched.Check: cycle %d reads never-written %s.r%d", cyc, src.Name, m.Src.Reg)
				}
				if cyc < ready {
					return fmt.Errorf("sched.Check: cycle %d reads %s.r%d before it is visible (ready %d)",
						cyc, src.Name, m.Src.Reg, ready)
				}
			case tta.IMM:
				immUse[m.Src.Comp]++
				if immUse[m.Src.Comp] > 1 {
					return fmt.Errorf("sched.Check: cycle %d uses immediate unit %s twice", cyc, src.Name)
				}
			case tta.ALU, tta.CMP, tta.LDST:
				st := fus[m.Src.Comp]
				if st.trigCycle < 0 || !st.producing {
					return fmt.Errorf("sched.Check: cycle %d reads result of idle %s", cyc, src.Name)
				}
				if cyc < st.trigCycle+3 {
					return fmt.Errorf("sched.Check: cycle %d reads %s result %d cycles after trigger (relation (8))",
						cyc, src.Name, cyc-st.trigCycle)
				}
				st.trigCycle = -1
				st.producing = false
				st.busyUntil = cyc
			}

			dst := &arch.Components[m.Dst.Comp]
			switch dst.Kind {
			case tta.RF:
				rfWrites[m.Dst.Comp]++
				if rfWrites[m.Dst.Comp] > dst.NumIn {
					return fmt.Errorf("sched.Check: cycle %d overloads %s write ports", cyc, dst.Name)
				}
				key := regKey{m.Dst.Comp, m.Dst.Reg}
				if prev, ok := regReady[key]; ok && prev > cyc+1 {
					return fmt.Errorf("sched.Check: cycle %d write to %s.r%d races an in-flight write",
						cyc, dst.Name, m.Dst.Reg)
				}
				regReady[key] = cyc + 1
			case tta.ALU, tta.CMP, tta.LDST:
				st := fus[m.Dst.Comp]
				// Stores retire by time: the memory write commits two
				// cycles after the trigger, with no result transport.
				if st.trigCycle >= 0 && !st.producing && cyc >= st.trigCycle+2 {
					st.trigCycle = -1
				}
				role := dst.Ports[m.Dst.Port].Role
				if m.Trigger != (role == tta.Trigger) {
					return fmt.Errorf("sched.Check: cycle %d move flags trigger=%v onto role %s",
						cyc, m.Trigger, role)
				}
				if role == tta.Trigger {
					if st.trigCycle >= 0 {
						return fmt.Errorf("sched.Check: cycle %d re-triggers %s before its result left", cyc, dst.Name)
					}
					st.trigCycle = cyc
					st.producing = producesResult(res.Graph, m)
					if !st.producing {
						st.busyUntil = cyc + 2 // store commit
					}
				} else if st.trigCycle >= 0 {
					return fmt.Errorf("sched.Check: cycle %d loads %s operand mid-operation", cyc, dst.Name)
				}
			}
		}
		i = j
	}
	// No function unit may be left holding an unread result.
	for ci, st := range fus {
		if st.trigCycle >= 0 && st.producing {
			return fmt.Errorf("sched.Check: %s result never read", arch.Components[ci].Name)
		}
	}
	return nil
}

// producesResult reports whether a trigger move starts a value-producing
// operation (loads and ALU/CMP ops do; stores do not).
func producesResult(g *program.Graph, m Move) bool {
	switch m.Spill {
	case SpillStoreData:
		return false
	case SpillLoadTrig:
		return true
	}
	if m.Op == program.NoValue {
		return false
	}
	return g.Ops[m.Op].Defines()
}
