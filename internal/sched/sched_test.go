package sched

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/program"
	"repro/internal/tta"
)

func simpleArch(buses int) *tta.Architecture {
	a := &tta.Architecture{
		Name: "test", Width: 16, Buses: buses,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewFU(tta.CMP, "CMP"),
			tta.NewRF("RF1", 8, 1, 2),
			tta.NewRF("RF2", 12, 1, 1),
			tta.NewFU(tta.LDST, "LD/ST"),
			tta.NewPC("PC"),
			tta.NewIMM("Immediate"),
		},
	}
	tta.AssignPorts(a, tta.SpreadFirst)
	return a
}

func chainGraph(n int) *program.Graph {
	g := program.NewGraph("chain", 16)
	v := g.In()
	one := g.ConstV(1)
	for i := 0; i < n; i++ {
		v = g.Add(v, one)
	}
	g.Output(v)
	return g
}

func parallelGraph(n int) *program.Graph {
	g := program.NewGraph("parallel", 16)
	a := g.In()
	b := g.In()
	var outs []program.ValueID
	for i := 0; i < n; i++ {
		outs = append(outs, g.Xor(g.Add(a, g.ConstV(uint64(i))), b))
	}
	acc := outs[0]
	for _, o := range outs[1:] {
		acc = g.Or(acc, o)
	}
	g.Output(acc)
	return g
}

func TestScheduleChainRespectsTimingRelations(t *testing.T) {
	g := chainGraph(10)
	res, err := Schedule(g, simpleArch(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || len(res.Moves) == 0 {
		t.Fatal("empty schedule")
	}
	// Group timings per function unit and verify the paper's relations.
	perFU := map[int][]tta.OpTiming{}
	for id, tim := range res.Timings {
		perFU[res.FUOf[id]] = append(perFU[res.FUOf[id]], tim)
	}
	for fu, tims := range perFU {
		if err := tta.CheckRelations(tims); err != nil {
			t.Fatalf("FU %d violates transport relations: %v", fu, err)
		}
	}
}

func TestScheduleBusCapacityNeverExceeded(t *testing.T) {
	for _, buses := range []int{1, 2, 3} {
		g := parallelGraph(12)
		res, err := Schedule(g, simpleArch(buses), Options{})
		if err != nil {
			t.Fatalf("buses=%d: %v", buses, err)
		}
		for c, n := range res.MovesPerCycle() {
			if n > buses {
				t.Fatalf("buses=%d: cycle %d has %d moves", buses, c, n)
			}
		}
	}
}

func TestMoreBusesNeverSlowerOnParallelWork(t *testing.T) {
	g := parallelGraph(16)
	cyc1 := mustCycles(t, g, simpleArch(1))
	cyc3 := mustCycles(t, g, simpleArch(3))
	if cyc3 > cyc1 {
		t.Fatalf("3 buses slower than 1: %d vs %d", cyc3, cyc1)
	}
	if cyc3 == cyc1 {
		t.Logf("note: bus count made no difference (%d cycles)", cyc1)
	}
}

func mustCycles(t *testing.T, g *program.Graph, a *tta.Architecture) int {
	t.Helper()
	res, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

func TestTwoALUsSpeedUpIndependentWork(t *testing.T) {
	g := parallelGraph(20)
	one := simpleArch(3)
	two := simpleArch(3)
	two.Components = append(two.Components, tta.NewFU(tta.ALU, "ALU2"))
	tta.AssignPorts(two, tta.SpreadFirst)
	c1 := mustCycles(t, g, one)
	c2 := mustCycles(t, g, two)
	if c2 >= c1 {
		t.Fatalf("second ALU did not help: %d vs %d cycles", c2, c1)
	}
}

func TestChainLengthDominatesChainSchedule(t *testing.T) {
	// A dependence chain cannot be shorter than ~CD per op regardless of
	// resources.
	g := chainGraph(8)
	rich := simpleArch(4)
	res, err := Schedule(g, rich, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 8*tta.MinCD {
		t.Fatalf("chain of 8 scheduled in %d cycles, below the CD bound %d", res.Cycles, 8*tta.MinCD)
	}
}

func TestMissingUnitsRejected(t *testing.T) {
	noCmp := &tta.Architecture{
		Name: "nocmp", Width: 16, Buses: 2,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewRF("RF", 8, 1, 1),
			tta.NewIMM("IMM"),
		},
	}
	tta.AssignPorts(noCmp, tta.SpreadFirst)
	g := program.NewGraph("cmpy", 16)
	a := g.In()
	g.Output(g.Eq(a, a))
	if _, err := Schedule(g, noCmp, Options{}); err == nil || !strings.Contains(err.Error(), "CMP") {
		t.Fatalf("missing CMP not reported: %v", err)
	}

	g2 := program.NewGraph("addy", 16)
	x := g2.In()
	g2.Output(g2.Add(x, x))
	noRF := &tta.Architecture{
		Name: "norf", Width: 16, Buses: 2,
		Components: []tta.Component{tta.NewFU(tta.ALU, "ALU"), tta.NewIMM("IMM")},
	}
	tta.AssignPorts(noRF, tta.SpreadFirst)
	if _, err := Schedule(g2, noRF, Options{}); err == nil {
		t.Fatal("missing RF accepted")
	}
}

func TestTooFewRegistersRejected(t *testing.T) {
	tiny := &tta.Architecture{
		Name: "tiny", Width: 16, Buses: 2,
		Components: []tta.Component{
			tta.NewFU(tta.ALU, "ALU"),
			tta.NewRF("RF", 2, 1, 1),
			tta.NewIMM("IMM"),
		},
	}
	tta.AssignPorts(tiny, tta.SpreadFirst)
	g := program.NewGraph("wide", 16)
	var ins []program.ValueID
	for i := 0; i < 6; i++ {
		ins = append(ins, g.In())
	}
	acc := ins[0]
	for _, v := range ins[1:] {
		acc = g.Add(acc, v)
	}
	g.Output(acc)
	if _, err := Schedule(g, tiny, Options{}); err == nil {
		t.Fatal("6 inputs into a 2-register file accepted")
	}
}

func TestRegisterPressureIncreasesCycles(t *testing.T) {
	// The same program on a much smaller register file must not be
	// significantly faster (greedy list scheduling allows ±1-cycle noise),
	// and truly tiny register files must show spill traffic.
	g := parallelGraph(14)
	small := simpleArch(2)
	small.Components[2] = tta.NewRF("RF1", 3, 1, 2)
	small.Components[3] = tta.NewRF("RF2", 3, 1, 1)
	tta.AssignPorts(small, tta.SpreadFirst)
	big := simpleArch(2)
	resSmall, err := Schedule(g, small, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cb := mustCycles(t, g, big)
	if resSmall.Cycles < cb-2 {
		t.Fatalf("6-register schedule markedly faster than 20-register one: %d vs %d", resSmall.Cycles, cb)
	}
	if resSmall.PeakLive > 6 {
		t.Fatalf("peak live %d exceeds the 6 available registers", resSmall.PeakLive)
	}
}

func TestScheduleStoreThenLoadOrdering(t *testing.T) {
	g := program.NewGraph("mem", 16)
	addr := g.ConstV(0x10)
	val := g.ConstV(0xBEEF)
	st := g.Store(addr, val)
	ld := g.Load(addr)
	g.Output(ld)
	_ = st
	res, err := Schedule(g, simpleArch(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find trigger cycles for the store and the load.
	var stTrig, ldTrig = -1, -1
	for _, m := range res.Moves {
		if !m.Trigger {
			continue
		}
		switch g.Ops[m.Op].Op {
		case program.Store:
			stTrig = m.Cycle
		case program.Load:
			ldTrig = m.Cycle
		}
	}
	if stTrig < 0 || ldTrig < 0 {
		t.Fatal("missing store/load triggers")
	}
	if ldTrig <= stTrig {
		t.Fatalf("load triggered at %d, not after store at %d", ldTrig, stTrig)
	}
}

func TestDeterministicSchedules(t *testing.T) {
	g := parallelGraph(10)
	r1, err := Schedule(g, simpleArch(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Schedule(g, simpleArch(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || len(r1.Moves) != len(r2.Moves) {
		t.Fatalf("nondeterministic schedule: %d/%d vs %d/%d moves/cycles",
			len(r1.Moves), r1.Cycles, len(r2.Moves), r2.Cycles)
	}
	for i := range r1.Moves {
		if r1.Moves[i] != r2.Moves[i] {
			t.Fatalf("move %d differs: %v vs %v", i, r1.Moves[i], r2.Moves[i])
		}
	}
}

func TestPeakLiveWithinCapacity(t *testing.T) {
	g := parallelGraph(12)
	arch := simpleArch(2)
	res, err := Schedule(g, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakLive > 8+12 {
		t.Fatalf("peak live %d exceeds total registers", res.PeakLive)
	}
	if res.PeakLive == 0 {
		t.Fatal("peak live 0 is impossible with inputs")
	}
}

// randomGraph builds a random well-formed DFG for fuzzing.
func randomGraph(rng *rand.Rand, nOps int) *program.Graph {
	g := program.NewGraph("fuzz", 16)
	var vals []program.ValueID
	for i := 0; i < 3; i++ {
		vals = append(vals, g.In())
	}
	for i := 0; i < 3; i++ {
		vals = append(vals, g.ConstV(uint64(rng.Intn(1<<16))))
	}
	binOps := []program.OpCode{
		program.Add, program.Sub, program.Sll, program.Srl,
		program.And, program.Or, program.Xor,
		program.Eq, program.Ltu, program.Lts, program.Gtu,
	}
	for i := 0; i < nOps; i++ {
		pick := func() program.ValueID { return vals[rng.Intn(len(vals))] }
		switch rng.Intn(10) {
		case 0:
			vals = append(vals, g.Load(pick()))
		case 1:
			g.Store(pick(), pick())
		default:
			op := binOps[rng.Intn(len(binOps))]
			vals = append(vals, g.Bin(op, pick(), pick()))
		}
	}
	// A couple of outputs from the tail of the value list.
	g.Output(vals[len(vals)-1])
	g.Output(vals[len(vals)/2])
	return g
}

func TestFuzzSchedulesAreWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 30+rng.Intn(40))
		arch := simpleArch(1 + rng.Intn(3))
		res, err := Schedule(g, arch, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for c, n := range res.MovesPerCycle() {
			if n > arch.Buses {
				t.Fatalf("trial %d: cycle %d overloads buses", trial, c)
			}
		}
		perFU := map[int][]tta.OpTiming{}
		for id, tim := range res.Timings {
			perFU[res.FUOf[id]] = append(perFU[res.FUOf[id]], tim)
		}
		for fu, tims := range perFU {
			if err := tta.CheckRelations(tims); err != nil {
				t.Fatalf("trial %d FU %d: %v", trial, fu, err)
			}
		}
	}
}

func TestCheckAcceptsAllFuzzSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 30+rng.Intn(50))
		arch := simpleArch(1 + rng.Intn(3))
		res, err := Schedule(g, arch, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Check(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCheckRejectsCorruptedSchedules(t *testing.T) {
	g := parallelGraph(10)
	arch := simpleArch(2)
	res, err := Schedule(g, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// Corruption 1: cram every move into cycle 0 (bus overload).
	bad := *res
	bad.Moves = append([]Move(nil), res.Moves...)
	for i := range bad.Moves {
		bad.Moves[i].Cycle = 0
	}
	if err := Check(&bad); err == nil {
		t.Error("bus-overloaded schedule accepted")
	}
	// Corruption 2: advance a result move to right after its trigger.
	bad2 := *res
	bad2.Moves = append([]Move(nil), res.Moves...)
	for i := range bad2.Moves {
		m := bad2.Moves[i]
		src := &arch.Components[m.Src.Comp]
		if src.Kind == tta.ALU || src.Kind == tta.CMP {
			bad2.Moves[i].Cycle = m.Cycle - 2
			break
		}
	}
	if err := Check(&bad2); err == nil {
		t.Error("relation-(8)-violating schedule accepted")
	}
	// Corruption 3: read a register that is never written.
	bad3 := *res
	bad3.Moves = append([]Move(nil), res.Moves...)
	for i := range bad3.Moves {
		m := bad3.Moves[i]
		if arch.Components[m.Src.Comp].Kind == tta.RF {
			bad3.Moves[i].Src.Reg = 7 // RF1 has 8 regs; 7 is never allocated first
			if err := Check(&bad3); err == nil {
				t.Error("never-written register read accepted")
			}
			break
		}
	}
}

func TestDegenerateGraphs(t *testing.T) {
	arch := simpleArch(2)
	// Pure pass-through: outputs are inputs; no moves required.
	g := program.NewGraph("pass", 16)
	a := g.In()
	g.Output(a)
	res, err := Schedule(g, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 0 {
		t.Errorf("pass-through needed %d moves", len(res.Moves))
	}
	if err := Check(res); err != nil {
		t.Fatal(err)
	}

	// Dead code: an unused op must still be scheduled legally.
	g2 := program.NewGraph("dead", 16)
	x := g2.In()
	g2.Add(x, x) // result never used
	g2.Output(x)
	res2, err := Schedule(g2, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res2); err != nil {
		t.Fatal(err)
	}

	// Same value on both operand ports.
	g3 := program.NewGraph("dup", 16)
	y := g3.In()
	g3.Output(g3.Xor(y, y))
	res3, err := Schedule(g3, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res3); err != nil {
		t.Fatal(err)
	}

	// Empty graph (no ops at all).
	g4 := program.NewGraph("empty", 16)
	if _, err := Schedule(g4, arch, Options{}); err != nil {
		t.Fatalf("empty graph rejected: %v", err)
	}
}

func TestDegenerateGraphsSimulate(t *testing.T) {
	arch := simpleArch(2)
	g := program.NewGraph("dup", 16)
	y := g.In()
	g.Output(g.Xor(y, y))
	res, err := Schedule(g, arch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two reads of the same register in one or two cycles: both legal.
	reads := 0
	for _, m := range res.Moves {
		if arch.Components[m.Src.Comp].Kind == tta.RF {
			reads++
		}
	}
	if reads != 2 {
		t.Errorf("expected 2 register reads for xor(y,y), saw %d", reads)
	}
}
