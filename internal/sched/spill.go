package sched

import (
	"repro/internal/program"
	"repro/internal/tta"
)

// Register spilling. When the live values exceed register-file capacity,
// the scheduler stores a victim value into the reserved spill region of
// data memory through the LD/ST unit and reloads it before its next use —
// the same escape hatch a compiling scheduler such as MOVE's relies on.
// Spill traffic consumes buses, RF ports and LD/ST bandwidth, so small
// register files translate into longer schedules rather than infeasible
// ones: the area/execution-time trade-off of the paper's figure 2.

type spillJob struct {
	val    program.ValueID
	isLoad bool
	fu     int
	tAddr  int // addr move cycle (-1 = not yet; stores only)
	tTrig  int // data/trigger move cycle (-1 = not yet)
	resLoc RegLoc
	done   bool
}

// emit appends a move and records cycle progress.
func (s *scheduler) emit(m Move) {
	s.moves = append(s.moves, m)
	s.movedNow = true
}

// spillsIdle reports whether no spill job is outstanding.
func (s *scheduler) spillsIdle() bool {
	for _, j := range s.spills {
		if !j.done {
			return false
		}
	}
	return true
}

// spillAddr returns the memory address of a spill slot.
func spillAddr(slot int) uint64 { return SpillBase + uint64(slot) }

// immSource returns a free Immediate unit endpoint for a literal, or false.
func (s *scheduler) immSource(v uint64) (Endpoint, bool) {
	for _, imm := range s.imms {
		if s.immUsed[imm] == 0 {
			c := &s.arch.Components[imm]
			return Endpoint{Comp: imm, Port: c.OutputPorts()[0], Reg: -1, Imm: v}, true
		}
	}
	return Endpoint{}, false
}

// requestReload queues a spill-load job for a value whose register copy was
// dropped.
func (s *scheduler) requestReload(v program.ValueID) {
	vs := &s.vals[v]
	if vs.loadPending || vs.alloc || vs.spillSlot < 0 {
		return
	}
	vs.loadPending = true
	s.spills = append(s.spills, &spillJob{val: v, isLoad: true, fu: -1, tAddr: -1, tTrig: -1, resLoc: RegLoc{-1, -1}})
	s.reloadCount++
}

// stepSpills advances outstanding spill jobs by at most one stage. Stores
// run before the op phases (they free registers); loads run after (so
// pending operations claim result registers first and reloads cannot
// starve them).
func (s *scheduler) stepSpills(cycle int, loads bool) {
	for _, j := range s.spills {
		if j.done || j.isLoad != loads {
			continue
		}
		if j.isLoad {
			s.stepSpillLoad(j, cycle)
		} else {
			s.stepSpillStore(j, cycle)
		}
	}
	// Compact completed jobs occasionally to bound the scan.
	if len(s.spills) > 32 {
		kept := s.spills[:0]
		for _, j := range s.spills {
			if !j.done {
				kept = append(kept, j)
			}
		}
		s.spills = kept
	}
}

// hasFreeReg reports whether any register file has a free register.
func (s *scheduler) hasFreeReg() bool {
	for i := range s.rfFree {
		for _, f := range s.rfFree[i] {
			if f {
				return true
			}
		}
	}
	return false
}

// readWillFree reports whether reading value v (once) releases its
// register.
func (s *scheduler) readWillFree(v program.ValueID) bool {
	if v == program.NoValue {
		return false
	}
	vs := &s.vals[v]
	return !vs.isConst && vs.alloc && vs.usesLeft == 1
}

func (s *scheduler) stepSpillStore(j *spillJob, cycle int) {
	vs := &s.vals[j.val]
	// The victim may have died (last use read, register freed) between the
	// spill decision and now: abandon the job so it cannot wedge the LD/ST
	// unit waiting for a value that no longer exists.
	if j.tTrig < 0 && !vs.alloc {
		if j.fu >= 0 {
			s.fuBusyBy[j.fu] = -1
		}
		vs.spillSlot = -1 // nothing was written; the slot is dead
		j.done = true
		return
	}
	// Stage 1: claim an LD/ST unit and move the spill address into O.
	if j.tAddr < 0 {
		if s.busFree < 1 {
			return
		}
		fu := -1
		for _, cand := range s.fuByKind[tta.LDST] {
			if s.fuBusyBy[cand] < cycle {
				fu = cand
				break
			}
		}
		if fu < 0 {
			return
		}
		src, ok := s.immSource(spillAddr(vs.spillSlot))
		if !ok {
			return
		}
		c := &s.arch.Components[fu]
		s.busFree--
		s.immUsed[src.Comp]++
		s.emit(Move{Cycle: cycle, Src: src,
			Dst: Endpoint{Comp: fu, Port: portOf(c, tta.Operand), Reg: -1},
			Val: program.NoValue, Op: program.NoValue, Spill: SpillStoreAddr})
		j.fu = fu
		j.tAddr = cycle
		s.fuBusyBy[fu] = cycle + 1000000
		// Fall through: the data move may go out the same cycle.
	}
	// Stage 2: move the register value into T (memory write trigger).
	if j.tTrig < 0 {
		if s.busFree < 1 || !vs.alloc {
			return
		}
		rf := vs.loc.RF
		c := &s.arch.Components[rf]
		if s.rfReads[rf] >= c.NumOut {
			return
		}
		outs := c.OutputPorts()
		src := Endpoint{Comp: rf, Port: outs[s.rfReads[rf]%len(outs)], Reg: vs.loc.Reg}
		s.rfReads[rf]++
		s.busFree--
		fuC := &s.arch.Components[j.fu]
		s.emit(Move{Cycle: cycle, Src: src,
			Dst: Endpoint{Comp: j.fu, Port: portOf(fuC, tta.Trigger), Reg: -1},
			Val: j.val, Op: program.NoValue, Trigger: true, Spill: SpillStoreData})
		j.tTrig = cycle
		// The register copy is gone after this cycle's read; the memory
		// copy becomes usable once the write commits.
		s.freeReg(vs.loc)
		vs.alloc = false
		vs.spillValid = true
		vs.spillReadyAt = cycle + 1
		return
	}
	// Stage 3: memory committed two cycles after the trigger.
	if cycle >= j.tTrig+2 {
		s.fuBusyBy[j.fu] = -1
		j.done = true
	}
}

func (s *scheduler) stepSpillLoad(j *spillJob, cycle int) {
	vs := &s.vals[j.val]
	// Stage 1: claim LD/ST, reserve the destination register, and trigger
	// the memory read with the spill address.
	if j.tTrig < 0 {
		if s.busFree < 1 || cycle < vs.spillReadyAt {
			return
		}
		fu := -1
		for _, cand := range s.fuByKind[tta.LDST] {
			if s.fuBusyBy[cand] < cycle {
				fu = cand
				break
			}
		}
		if fu < 0 {
			return
		}
		src, ok := s.immSource(spillAddr(vs.spillSlot))
		if !ok {
			return
		}
		loc, ok := s.allocReg(cycle)
		if !ok {
			return // a future maybeSpill will free capacity
		}
		c := &s.arch.Components[fu]
		s.busFree--
		s.immUsed[src.Comp]++
		s.emit(Move{Cycle: cycle, Src: src,
			Dst: Endpoint{Comp: fu, Port: portOf(c, tta.Trigger), Reg: -1},
			Val: program.NoValue, Op: program.NoValue, Trigger: true, Spill: SpillLoadTrig})
		j.fu = fu
		j.tTrig = cycle
		j.resLoc = loc
		s.fuBusyBy[fu] = cycle + 1000000
		return
	}
	// Stage 2: move the result into the reserved register (relation (8)).
	if cycle < j.tTrig+3 || s.busFree < 1 {
		return
	}
	rf := j.resLoc.RF
	c := &s.arch.Components[rf]
	if s.rfWrites[rf] >= c.NumIn {
		return
	}
	s.rfWrites[rf]++
	s.busFree--
	fuC := &s.arch.Components[j.fu]
	ins := c.InputPorts()
	s.emit(Move{Cycle: cycle,
		Src: Endpoint{Comp: j.fu, Port: portOf(fuC, tta.Result), Reg: -1},
		Dst: Endpoint{Comp: rf, Port: ins[(s.rfWrites[rf]-1)%len(ins)], Reg: j.resLoc.Reg},
		Val: j.val, Op: program.NoValue, Spill: SpillLoadResult})
	vs.loc = j.resLoc
	vs.readyAt = cycle + 1
	vs.alloc = true
	vs.loadPending = false
	vs.noEvictUntil = cycle + 16
	s.regAlloc[j.val] = vs.loc
	s.fuBusyBy[j.fu] = -1
	j.done = true
}

// maybeSpill frees register capacity when the schedule is starved: it
// evicts the live value whose next use is farthest away (Belady's rule on
// static op order). Values that already own a spill slot are dropped
// without a store. Returns true if it made progress.
func (s *scheduler) maybeSpill(cycle int) bool {
	// At most one spill store in flight keeps the LD/ST unit available for
	// program memory traffic.
	for _, j := range s.spills {
		if !j.done && !j.isLoad {
			return false
		}
	}
	victim := program.NoValue
	victimNext := -1
	for v := range s.vals {
		vs := &s.vals[v]
		if !vs.alloc || vs.isOutput || vs.loadPending || vs.usesLeft == 0 || vs.noEvictUntil > cycle {
			continue
		}
		next := s.nextUnstartedUse(program.ValueID(v))
		if next > victimNext {
			victimNext = next
			victim = program.ValueID(v)
		}
	}
	if victim == program.NoValue {
		return false
	}
	vs := &s.vals[victim]
	if vs.spillSlot >= 0 && vs.spillValid {
		// Clean value: the memory copy is still valid (SSA values never
		// change); just drop the register.
		s.freeReg(vs.loc)
		vs.alloc = false
		return true
	}
	vs.spillSlot = s.spillSlots
	s.spillSlots++
	s.spillCount++
	s.spills = append(s.spills, &spillJob{val: victim, fu: -1, tAddr: -1, tTrig: -1, resLoc: RegLoc{-1, -1}})
	return true
}

// nextUnstartedUse returns the smallest consumer op index that has not
// started yet (a large sentinel when every consumer is done — should not
// happen for values with usesLeft > 0 unless the value is an output).
func (s *scheduler) nextUnstartedUse(v program.ValueID) int {
	for _, c := range s.consumers[v] {
		st := &s.ops[c]
		if st.done {
			continue
		}
		// A started op may still need the value for its pending trigger.
		if !st.started || st.tTrig < 0 {
			return int(c)
		}
	}
	return 1 << 30
}
