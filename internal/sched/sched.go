// Package sched schedules operation dataflow graphs onto TTA architectures
// as data-transport (move) programs — the role the MOVE framework's
// compiler/scheduler plays in the paper. It performs priority-based list
// scheduling under the architecture's resource constraints:
//
//   - at most n_b moves per cycle (one per MOVE bus; the interconnection
//     network is a full crossbar, as in the paper's figure 1);
//   - one operation in flight per function unit (conservative hybrid
//     pipelining: a unit is busy from its first operand move until its
//     result leaves through the output socket);
//   - register-file read/write ports limit operand fetch and writeback
//     bandwidth, and register capacity limits live values;
//   - one immediate per cycle per Immediate unit.
//
// Transport timing follows the paper's relations (2)-(8): a move on the
// bus at cycle t passes the socket decode (F_in) at t and loads the O or T
// register at t+1; the result register R loads one cycle after the
// trigger; the result may leave on a bus no earlier than one cycle after
// that (F_out). The minimum bus-to-bus distance is therefore CD = 3
// cycles, equation (9).
package sched

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/tta"
)

// Endpoint is one side of a move: a component port, optionally a register
// within a register file. A source endpoint on an Immediate unit carries
// the literal in Imm (the value travels in the instruction's immediate
// field).
type Endpoint struct {
	Comp int // component index in the architecture
	Port int // port index within the component
	Reg  int // register index for RF endpoints, -1 otherwise
	Imm  uint64
}

func (e Endpoint) String() string {
	if e.Reg >= 0 {
		return fmt.Sprintf("c%d.p%d[r%d]", e.Comp, e.Port, e.Reg)
	}
	return fmt.Sprintf("c%d.p%d", e.Comp, e.Port)
}

// SpillKind classifies the moves of compiler-inserted register spills.
type SpillKind uint8

// Spill move kinds. Spill code is emitted by the scheduler when register
// pressure exceeds the architecture's register-file capacity: the victim
// value is stored to a reserved memory region through the LD/ST unit and
// reloaded before its next use. Since IR values are immutable (SSA), a
// value that already has a spill slot can be dropped from its register
// without a second store.
const (
	SpillNone       SpillKind = iota
	SpillStoreAddr            // immediate spill address -> LD/ST operand
	SpillStoreData            // register value -> LD/ST trigger (memory write)
	SpillLoadTrig             // immediate spill address -> LD/ST trigger (memory read)
	SpillLoadResult           // LD/ST result -> register
)

// SpillBase is the first word address of the reserved spill region.
// Programs must not address memory at or above this base.
const SpillBase uint64 = 0xE000

// Move is one scheduled data transport.
type Move struct {
	Cycle   int
	Src     Endpoint
	Dst     Endpoint
	Val     program.ValueID // value transported (NoValue for a dummy)
	Op      program.ValueID // graph operation this move belongs to (NoValue for spills)
	Trigger bool            // this move loads the trigger register
	Spill   SpillKind
}

func (m Move) String() string {
	t := ""
	if m.Trigger {
		t = "!"
	}
	return fmt.Sprintf("@%d %s -> %s%s", m.Cycle, m.Src, m.Dst, t)
}

// RegLoc records where a value was allocated.
type RegLoc struct {
	RF  int // component index of the register file
	Reg int
}

// Result is a complete schedule.
type Result struct {
	Arch   *tta.Architecture
	Graph  *program.Graph
	Moves  []Move
	Cycles int
	// Timings maps FU-executed graph ops to their transport timing, for
	// verification against the paper's relations. Stores are omitted (they
	// produce no F_out event).
	Timings map[program.ValueID]tta.OpTiming
	// FUOf maps graph ops to the component index that executed them.
	FUOf map[program.ValueID]int
	// RegAlloc maps values to their final register-file location.
	RegAlloc map[program.ValueID]RegLoc
	// InputLoc maps program inputs to the registers they must be seeded
	// into before execution (their initial placement; RegAlloc may differ
	// after spilling).
	InputLoc map[program.ValueID]RegLoc
	// PeakLive is the maximum simultaneously allocated registers.
	PeakLive int
	// Spills and Reloads count the spill traffic the register pressure
	// forced (0 on amply-registered architectures).
	Spills  int
	Reloads int
}

// MovesPerCycle returns a histogram of bus occupancy.
func (r *Result) MovesPerCycle() []int {
	h := make([]int, r.Cycles+1)
	for _, m := range r.Moves {
		h[m.Cycle]++
	}
	return h
}

// Priority selects the list-scheduling order.
type Priority uint8

// Scheduling priorities.
const (
	// CriticalPath orders ready operations by their longest path to an
	// output (the standard list-scheduling heuristic; default).
	CriticalPath Priority = iota
	// SourceOrder keeps program order — the naive baseline the ablation
	// benchmarks compare against.
	SourceOrder
)

func (p Priority) String() string {
	if p == SourceOrder {
		return "source-order"
	}
	return "critical-path"
}

// Options tunes the scheduler.
type Options struct {
	// MaxCycles aborts a runaway schedule (0 = derive from graph size).
	MaxCycles int
	// Priority selects the list-scheduling order (default CriticalPath).
	Priority Priority
	// Obs, when non-nil, receives scheduler metrics: cycles iterated,
	// moves emitted, spill/reload traffic and stall cycles (counters
	// "sched.*"). A nil registry costs nothing.
	Obs *obs.Registry
}

type valueState struct {
	loc      RegLoc
	readyAt  int // cycle from which the value can be read from its RF
	usesLeft int
	isConst  bool
	constVal uint64
	alloc    bool
	isOutput bool // outputs are pinned in registers (never spilled)

	spillSlot    int  // memory slot index (-1 = none assigned)
	spillValid   bool // the memory copy at spillSlot is written and usable
	spillReadyAt int  // earliest cycle a reload may trigger
	loadPending  bool
	// noEvictUntil shields a freshly reloaded value from immediate
	// re-eviction (otherwise demand spilling can evict the operand of the
	// very op it is trying to unblock, forever).
	noEvictUntil int
}

type opState struct {
	id       program.ValueID
	fu       int // component index executing the op
	started  bool
	tFirstIn int // bus cycle of the first input move
	tTrig    int // bus cycle of the trigger move (-1 until scheduled)
	done     bool
	// resLoc is the register reserved for the result at start time —
	// reserving early guarantees a started operation can always retire, so
	// function units never block on register starvation.
	resLoc RegLoc
}

// Schedule maps the graph onto the architecture. It returns an error when
// the architecture cannot execute the graph (missing unit kinds, too few
// registers) or when scheduling exceeds the cycle bound.
//
// Deprecated: Schedule is a thin shim over ScheduleContext with a
// background context; a pathological schedule then cannot be cancelled.
// Use ScheduleContext.
func Schedule(g *program.Graph, arch *tta.Architecture, opts Options) (*Result, error) {
	return ScheduleContext(context.Background(), g, arch, opts)
}

// ScheduleContext is Schedule with cancellation: the scheduling loop
// checks ctx periodically and returns ctx.Err() when it is done, so a
// pathological schedule inside a large exploration cannot outlive its
// caller's deadline.
func ScheduleContext(ctx context.Context, g *program.Graph, arch *tta.Architecture, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	s, err := newScheduler(g, arch, opts)
	if err != nil {
		return nil, err
	}
	return s.run(ctx)
}

type scheduler struct {
	g    *program.Graph
	arch *tta.Architecture
	opts Options

	height []int // critical-path priority per op

	fuByKind map[tta.Kind][]int
	rfs      []int // component indices of register files
	imms     []int
	rfFree   [][]bool // per RF: free register map

	vals     []valueState
	ops      []opState
	fuBusyBy []int // per component: cycle until which the FU is busy (-1 free)

	// Per-cycle resource counters (reset each cycle).
	busFree  int
	rfReads  map[int]int
	rfWrites map[int]int
	immUsed  map[int]int

	moves    []Move
	timings  map[program.ValueID]tta.OpTiming
	fuOf     map[program.ValueID]int
	regAlloc map[program.ValueID]RegLoc
	inputLoc map[program.ValueID]RegLoc
	live     int
	peakLive int

	memReady int // earliest cycle the next memory op may trigger
	lastMem  program.ValueID

	// Spill machinery.
	spills      []*spillJob
	spillSlots  int
	spillCount  int // total spill stores emitted
	reloadCount int
	consumers   [][]int32 // per value: consuming op indices (ascending)
	stallStreak int
	stallTotal  int // cycles in which no move was emitted
	movedNow    bool
	// wantSpill is raised when an op could start but for register
	// capacity — demand-driven spilling keeps function units busy even
	// when other traffic prevents a full stall.
	wantSpill bool
}

func newScheduler(g *program.Graph, arch *tta.Architecture, opts Options) (*scheduler, error) {
	s := &scheduler{
		g:        g,
		arch:     arch,
		opts:     opts,
		fuByKind: map[tta.Kind][]int{},
		timings:  map[program.ValueID]tta.OpTiming{},
		fuOf:     map[program.ValueID]int{},
		regAlloc: map[program.ValueID]RegLoc{},
		inputLoc: map[program.ValueID]RegLoc{},
	}
	for ci := range arch.Components {
		c := &arch.Components[ci]
		switch c.Kind {
		case tta.RF:
			s.rfs = append(s.rfs, ci)
		case tta.IMM:
			s.imms = append(s.imms, ci)
		default:
			s.fuByKind[c.Kind] = append(s.fuByKind[c.Kind], ci)
		}
	}
	st := g.Stats()
	if st.ALU > 0 && len(s.fuByKind[tta.ALU]) == 0 {
		return nil, fmt.Errorf("sched: graph needs an ALU, architecture has none")
	}
	if st.CMP > 0 && len(s.fuByKind[tta.CMP]) == 0 {
		return nil, fmt.Errorf("sched: graph needs a CMP unit, architecture has none")
	}
	if st.Loads+st.Stores > 0 && len(s.fuByKind[tta.LDST]) == 0 {
		return nil, fmt.Errorf("sched: graph needs a LD/ST unit, architecture has none")
	}
	if st.Consts > 0 && len(s.imms) == 0 {
		return nil, fmt.Errorf("sched: graph needs an Immediate unit, architecture has none")
	}
	if len(s.rfs) == 0 {
		return nil, fmt.Errorf("sched: architecture has no register file")
	}
	totalRegs := 0
	for _, rf := range s.rfs {
		totalRegs += arch.Components[rf].NumRegs
	}
	if totalRegs < st.Inputs+st.Outputs {
		return nil, fmt.Errorf("sched: %d registers cannot hold %d inputs + %d outputs",
			totalRegs, st.Inputs, st.Outputs)
	}

	s.rfFree = make([][]bool, len(s.rfs))
	for i, rf := range s.rfs {
		s.rfFree[i] = make([]bool, arch.Components[rf].NumRegs)
		for j := range s.rfFree[i] {
			s.rfFree[i][j] = true
		}
	}
	s.fuBusyBy = make([]int, len(arch.Components))
	for i := range s.fuBusyBy {
		s.fuBusyBy[i] = -1
	}
	s.height = computeHeights(g)
	s.vals = make([]valueState, len(g.Ops))
	s.ops = make([]opState, len(g.Ops))
	s.memReady = 0
	s.lastMem = program.NoValue
	return s, nil
}

// computeHeights returns the longest path (in ops) from each op to a
// graph output — the list-scheduling priority.
func computeHeights(g *program.Graph) []int {
	h := make([]int, len(g.Ops))
	users := make([][]int32, len(g.Ops))
	for i, op := range g.Ops {
		for _, ref := range []program.ValueID{op.A, op.B, op.MemPred} {
			if ref != program.NoValue {
				users[ref] = append(users[ref], int32(i))
			}
		}
	}
	for i := len(g.Ops) - 1; i >= 0; i-- {
		best := 0
		for _, u := range users[i] {
			if h[u]+1 > best {
				best = h[u] + 1
			}
		}
		h[i] = best
	}
	return h
}

// ctxCheckInterval is how many scheduling cycles pass between context
// polls — frequent enough for prompt cancellation, rare enough to stay
// off the per-cycle fast path.
const ctxCheckInterval = 64

func (s *scheduler) run(ctx context.Context) (*Result, error) {
	g := s.g
	// Count uses so registers can be freed after the last read.
	for i := range s.vals {
		s.vals[i].loc = RegLoc{-1, -1}
	}
	s.consumers = make([][]int32, len(g.Ops))
	for i, op := range g.Ops {
		for _, ref := range []program.ValueID{op.A, op.B} {
			if ref != program.NoValue {
				s.vals[ref].usesLeft++
				s.consumers[ref] = append(s.consumers[ref], int32(i))
			}
		}
	}
	for _, o := range g.Outputs {
		s.vals[o].usesLeft++ // outputs stay live forever
		s.vals[o].isOutput = true
	}
	for i := range s.vals {
		s.vals[i].spillSlot = -1
	}

	// Place inputs and constants.
	for i, op := range g.Ops {
		switch op.Op {
		case program.Input:
			loc, ok := s.allocReg(0)
			if !ok {
				return nil, fmt.Errorf("sched: not enough registers for program inputs")
			}
			s.vals[i].loc = loc
			s.vals[i].readyAt = 0
			s.vals[i].alloc = true
			s.regAlloc[program.ValueID(i)] = loc
			s.inputLoc[program.ValueID(i)] = loc
		case program.Const:
			s.vals[i].isConst = true
			s.vals[i].constVal = op.Imm
			s.vals[i].readyAt = 0
		}
		s.ops[i] = opState{id: program.ValueID(i), fu: -1, tTrig: -1, resLoc: RegLoc{-1, -1}}
	}

	// Pending FU operations in priority order.
	var pendings []int
	for i, op := range g.Ops {
		switch op.Op.Class() {
		case program.ClassALU, program.ClassCMP, program.ClassMem:
			pendings = append(pendings, i)
		default:
			s.ops[i].done = true
		}
	}
	if s.opts.Priority == CriticalPath {
		sort.SliceStable(pendings, func(a, b int) bool { return s.height[pendings[a]] > s.height[pendings[b]] })
	}

	maxCycles := s.opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = 40*len(g.Ops) + 2000
	}

	remaining := len(pendings)
	var inflight []int
	cycle := 0
	if r := s.opts.Obs; r != nil {
		defer func() {
			r.Counter("sched.runs").Inc()
			r.Counter("sched.cycles").Add(int64(cycle))
			r.Counter("sched.moves").Add(int64(len(s.moves)))
			r.Counter("sched.spills").Add(int64(s.spillCount))
			r.Counter("sched.reloads").Add(int64(s.reloadCount))
			r.Counter("sched.stall_cycles").Add(int64(s.stallTotal))
		}()
	}
	for remaining > 0 {
		if cycle%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if cycle > maxCycles {
			return nil, fmt.Errorf("sched: no convergence after %d cycles (%d ops left; register pressure?)",
				cycle, remaining)
		}
		s.resetCycle()
		s.movedNow = false
		// Phase 0: advance spill stores (they free registers).
		s.stepSpills(cycle, false)
		// Phase 1: drain results of in-flight ops (frees FUs and feeds
		// dependents), and trigger in-flight ops still awaiting their
		// trigger move.
		keep := inflight[:0]
		for _, oi := range inflight {
			st := &s.ops[oi]
			if st.tTrig >= 0 {
				s.tryFinish(oi, cycle)
			} else {
				s.tryTrigger(oi, cycle)
			}
			if st.done {
				remaining--
			} else {
				keep = append(keep, oi)
			}
		}
		inflight = keep
		// Phase 2: start ready ops by priority (inflight ops were handled
		// above; newly started ops join the in-flight set).
		if s.busFree > 0 {
			kept := pendings[:0]
			for _, oi := range pendings {
				st := &s.ops[oi]
				if st.started {
					continue // moved to inflight in an earlier cycle
				}
				if s.busFree > 0 {
					s.tryStart(oi, cycle)
				}
				if st.started {
					// Stores whose trigger landed in the same cycle may
					// finish in a later phase-1 pass.
					inflight = append(inflight, oi)
				} else {
					kept = append(kept, oi)
				}
			}
			pendings = kept
		}
		// Phase 3: reloads run last so they never starve op starts.
		s.stepSpills(cycle, true)
		// Demand-driven spilling: a ready op was blocked purely by
		// register capacity this cycle.
		if s.wantSpill {
			s.wantSpill = false
			s.maybeSpill(cycle)
		}
		// Stall handling: when nothing moved, escalate to spilling; when
		// even spilling cannot help, the architecture genuinely cannot run
		// the program.
		if s.movedNow {
			s.stallStreak = 0
		} else {
			s.stallStreak++
			s.stallTotal++
			if s.stallStreak >= 4 {
				if !s.maybeSpill(cycle) && s.spillsIdle() && s.stallStreak > 8 {
					return nil, fmt.Errorf("sched: starved at cycle %d (%d ops left, %d live registers, no spillable victim)",
						cycle, remaining, s.live)
				}
			}
		}
		cycle++
	}

	res := &Result{
		Arch:     s.arch,
		Graph:    g,
		Moves:    s.moves,
		Timings:  s.timings,
		FUOf:     s.fuOf,
		RegAlloc: s.regAlloc,
		InputLoc: s.inputLoc,
		PeakLive: s.peakLive,
		Spills:   s.spillCount,
		Reloads:  s.reloadCount,
	}
	for _, m := range s.moves {
		// Last bus cycle + the register-load cycle after it.
		if m.Cycle+1 > res.Cycles {
			res.Cycles = m.Cycle + 1
		}
	}
	sort.SliceStable(res.Moves, func(a, b int) bool { return res.Moves[a].Cycle < res.Moves[b].Cycle })
	return res, nil
}

func (s *scheduler) resetCycle() {
	s.busFree = s.arch.Buses
	s.rfReads = map[int]int{}
	s.rfWrites = map[int]int{}
	s.immUsed = map[int]int{}
}
