package sched

import (
	"repro/internal/program"
	"repro/internal/tta"
)

// rfPos maps a component index (of an RF) to its position in s.rfs.
func (s *scheduler) rfPos(comp int) int {
	for i, rf := range s.rfs {
		if rf == comp {
			return i
		}
	}
	return -1
}

// allocReg claims a free register, preferring the register file with the
// most free capacity (balances pressure across RF1/RF2).
func (s *scheduler) allocReg(cycle int) (RegLoc, bool) {
	best, bestFree := -1, 0
	for i := range s.rfs {
		free := 0
		for _, f := range s.rfFree[i] {
			if f {
				free++
			}
		}
		if free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return RegLoc{-1, -1}, false
	}
	for j, f := range s.rfFree[best] {
		if f {
			s.rfFree[best][j] = false
			s.live++
			if s.live > s.peakLive {
				s.peakLive = s.live
			}
			return RegLoc{RF: s.rfs[best], Reg: j}, true
		}
	}
	return RegLoc{-1, -1}, false
}

func (s *scheduler) freeReg(loc RegLoc) {
	if loc.RF < 0 {
		return
	}
	pos := s.rfPos(loc.RF)
	if pos >= 0 && !s.rfFree[pos][loc.Reg] {
		s.rfFree[pos][loc.Reg] = true
		s.live--
	}
}

// sourceReadable reports whether value v can be read at the current cycle
// and, if so, which endpoint supplies it (without committing resources).
func (s *scheduler) sourceReadable(v program.ValueID, cycle int) (Endpoint, bool) {
	vs := &s.vals[v]
	if vs.isConst {
		for _, imm := range s.imms {
			if s.immUsed[imm] == 0 {
				c := &s.arch.Components[imm]
				return Endpoint{Comp: imm, Port: c.OutputPorts()[0], Reg: -1, Imm: vs.constVal}, true
			}
		}
		return Endpoint{}, false
	}
	if !vs.alloc || vs.readyAt > cycle {
		return Endpoint{}, false
	}
	rf := vs.loc.RF
	c := &s.arch.Components[rf]
	if s.rfReads[rf] >= c.NumOut {
		return Endpoint{}, false
	}
	outs := c.OutputPorts()
	port := outs[s.rfReads[rf]%len(outs)]
	return Endpoint{Comp: rf, Port: port, Reg: vs.loc.Reg}, true
}

// commitRead consumes the per-cycle resources of a scheduled read and
// releases the register after the value's last use.
func (s *scheduler) commitRead(v program.ValueID, src Endpoint) {
	vs := &s.vals[v]
	if vs.isConst {
		s.immUsed[src.Comp]++
		return
	}
	s.rfReads[src.Comp]++
	vs.usesLeft--
	if vs.usesLeft == 0 {
		s.freeReg(vs.loc)
		vs.alloc = false
	}
}

// fuFor returns a free function unit executing the op class, or -1.
func (s *scheduler) fuFor(class program.Class, cycle int) int {
	var kind tta.Kind
	switch class {
	case program.ClassALU:
		kind = tta.ALU
	case program.ClassCMP:
		kind = tta.CMP
	default:
		kind = tta.LDST
	}
	for _, fu := range s.fuByKind[kind] {
		if s.fuBusyBy[fu] < cycle {
			return fu
		}
	}
	return -1
}

func portOf(c *tta.Component, role tta.PortRole) int {
	for i, p := range c.Ports {
		if p.Role == role {
			return i
		}
	}
	return -1
}

// tryStart begins an op: the operand move (and, resources permitting, the
// trigger in the same cycle). Loads have no separate operand move; their
// address move is the trigger itself.
func (s *scheduler) tryStart(oi int, cycle int) bool {
	op := s.g.Ops[oi]
	st := &s.ops[oi]

	// Dataflow readiness (cheap pre-checks before resource commitment).
	for _, ref := range []program.ValueID{op.A, op.B} {
		if ref == program.NoValue {
			continue
		}
		vs := &s.vals[ref]
		if !vs.isConst && (!vs.alloc || vs.readyAt > cycle) {
			if !vs.alloc && vs.spillSlot >= 0 {
				s.requestReload(ref)
			}
			return false
		}
	}
	if op.MemPred != program.NoValue {
		pst := &s.ops[op.MemPred]
		if pst.tTrig < 0 {
			return false
		}
	}

	fu := s.fuFor(op.Op.Class(), cycle)
	if fu == -1 {
		return false
	}

	if op.Op == program.Load {
		// Single move: address -> T (triggers the memory read).
		if s.busFree < 1 || cycle < s.memReady {
			return false
		}
		src, ok := s.sourceReadable(op.A, cycle)
		if !ok {
			return false
		}
		// The result register must be allocatable; the address read itself
		// may be the event that frees one.
		if !s.hasFreeReg() && !s.readWillFree(op.A) {
			s.wantSpill = true
			return false
		}
		c := &s.arch.Components[fu]
		dst := Endpoint{Comp: fu, Port: portOf(c, tta.Trigger), Reg: -1}
		s.busFree--
		s.commitRead(op.A, src)
		resLoc, ok := s.allocReg(cycle)
		if !ok {
			// Unreachable by the guard above; fail loudly in development.
			panic("sched: result allocation failed after free-on-read guard")
		}
		st.resLoc = resLoc
		s.emit(Move{Cycle: cycle, Src: src, Dst: dst,
			Val: op.A, Op: program.ValueID(oi), Trigger: true})
		st.started = true
		st.tFirstIn = cycle
		st.tTrig = cycle
		st.fu = fu
		s.fuOf[program.ValueID(oi)] = fu
		s.fuBusyBy[fu] = cycle + 1000000 // released by tryFinish
		s.memReady = cycle + 1
		return true
	}

	// Two-operand op: move A -> O.
	if s.busFree < 1 {
		return false
	}
	src, ok := s.sourceReadable(op.A, cycle)
	if !ok {
		return false
	}
	if op.Defines() && !s.hasFreeReg() && !s.readWillFree(op.A) {
		// No room for the result: reading A won't free its register
		// either. Starting now would wedge the function unit.
		s.wantSpill = true
		return false
	}
	c := &s.arch.Components[fu]
	dst := Endpoint{Comp: fu, Port: portOf(c, tta.Operand), Reg: -1}
	s.busFree--
	s.commitRead(op.A, src)
	if op.Defines() {
		resLoc, ok := s.allocReg(cycle)
		if !ok {
			panic("sched: result allocation failed after free-on-read guard")
		}
		st.resLoc = resLoc
	}
	s.emit(Move{Cycle: cycle, Src: src, Dst: dst,
		Val: op.A, Op: program.ValueID(oi)})
	st.started = true
	st.tFirstIn = cycle
	st.fu = fu
	s.fuOf[program.ValueID(oi)] = fu
	s.fuBusyBy[fu] = cycle + 1000000

	// Opportunistic same-cycle trigger (relation (2) allows C(T) == C(O)).
	s.tryTrigger(oi, cycle)
	return true
}

// tryTrigger schedules the trigger move of a started op.
func (s *scheduler) tryTrigger(oi int, cycle int) bool {
	op := s.g.Ops[oi]
	st := &s.ops[oi]
	if st.tTrig >= 0 || !st.started || cycle < st.tFirstIn {
		return false
	}
	if s.busFree < 1 {
		return false
	}
	if op.Op == program.Store && cycle < s.memReady {
		return false
	}
	src, ok := s.sourceReadable(op.B, cycle)
	if !ok {
		vs := &s.vals[op.B]
		if !vs.isConst && !vs.alloc && vs.spillSlot >= 0 {
			s.requestReload(op.B)
		}
		return false
	}
	c := &s.arch.Components[st.fu]
	dst := Endpoint{Comp: st.fu, Port: portOf(c, tta.Trigger), Reg: -1}
	s.busFree--
	s.commitRead(op.B, src)
	s.emit(Move{Cycle: cycle, Src: src, Dst: dst,
		Val: op.B, Op: program.ValueID(oi), Trigger: true})
	st.tTrig = cycle
	if op.Op == program.Store {
		s.memReady = cycle + 1
	}
	return true
}

// tryFinish completes an op: stores finish when the memory write commits,
// value-producing ops when their result moves into a register file.
func (s *scheduler) tryFinish(oi int, cycle int) bool {
	op := s.g.Ops[oi]
	st := &s.ops[oi]
	if op.Op == program.Store {
		// Memory write commits at the R stage, two cycles after the
		// trigger move.
		if cycle < st.tTrig+2 {
			return false
		}
		s.fuBusyBy[st.fu] = -1
		st.done = true
		return true
	}
	// Result leaves through F_out at the earliest one cycle after R
	// (relation (8)): bus cycle >= trigger + 3.
	if cycle < st.tTrig+3 {
		return false
	}
	if s.busFree < 1 {
		return false
	}
	// The destination register was reserved at start; only the write port
	// and a bus are needed now.
	rfComp := st.resLoc.RF
	c := &s.arch.Components[rfComp]
	if s.rfWrites[rfComp] >= c.NumIn {
		return false
	}
	s.rfWrites[rfComp]++
	s.busFree--
	fuC := &s.arch.Components[st.fu]
	src := Endpoint{Comp: st.fu, Port: portOf(fuC, tta.Result), Reg: -1}
	ins := c.InputPorts()
	dst := Endpoint{Comp: rfComp, Port: ins[(s.rfWrites[rfComp]-1)%len(ins)], Reg: st.resLoc.Reg}
	s.emit(Move{Cycle: cycle, Src: src, Dst: dst,
		Val: program.ValueID(oi), Op: program.ValueID(oi)})

	vs := &s.vals[oi]
	vs.loc = st.resLoc
	vs.readyAt = cycle + 1
	vs.alloc = true
	if vs.usesLeft == 0 {
		// Dead value: release immediately after materialization.
		s.freeReg(vs.loc)
		vs.alloc = false
	}
	s.regAlloc[program.ValueID(oi)] = vs.loc

	oT := st.tFirstIn + 1
	if op.Op == program.Load {
		oT = -1
	}
	s.timings[program.ValueID(oi)] = tta.OpTiming{
		Fin:  st.tFirstIn,
		O:    oT,
		T:    st.tTrig + 1,
		R:    st.tTrig + 2,
		Fout: cycle,
	}
	s.fuBusyBy[st.fu] = -1
	st.done = true
	return true
}
