package netlist

import (
	"fmt"
	"io"
	"strings"
)

// WriteVerilog emits the netlist as synthesizable structural Verilog: one
// continuous assignment per gate, one clocked always block per flip-flop
// (with synchronous reset to the declared init value), and the netlist's
// ports plus clk/rst. Net names are normalized to safe identifiers; the
// original names appear as comments where they carry information.
func (n *Netlist) WriteVerilog(w io.Writer, moduleName string) error {
	if moduleName == "" {
		moduleName = sanitizeID(n.Name)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Generated from netlist %q — %s\n", n.Name, n.Stats())
	fmt.Fprintf(&b, "module %s (\n", sanitizeID(moduleName))
	b.WriteString("    input  wire clk,\n")
	b.WriteString("    input  wire rst")
	for _, p := range n.InputPorts {
		fmt.Fprintf(&b, ",\n    input  wire %s %s", rangeDecl(p.Width()), sanitizeID(p.Name))
	}
	for _, p := range n.OutputPorts {
		fmt.Fprintf(&b, ",\n    output wire %s %s", rangeDecl(p.Width()), sanitizeID(p.Name))
	}
	b.WriteString("\n);\n\n")

	// Internal wires and registers.
	fmt.Fprintf(&b, "    wire [%d:0] n; // net bundle\n", n.numNets-1)
	for i, ff := range n.FFs {
		fmt.Fprintf(&b, "    reg ff_%d; // %s\n", i, ff.Name)
	}
	b.WriteString("\n")

	// Input port bits onto the net bundle.
	for _, p := range n.InputPorts {
		for i, net := range p.Nets {
			fmt.Fprintf(&b, "    assign n[%d] = %s%s;\n", net, sanitizeID(p.Name), bitSel(p.Width(), i))
		}
	}
	// Flip-flop Q nets.
	for i, ff := range n.FFs {
		fmt.Fprintf(&b, "    assign n[%d] = ff_%d;\n", ff.Q, i)
	}
	b.WriteString("\n")

	// Gates in topological order.
	for _, gi := range n.TopoOrder() {
		g := &n.Gates[gi]
		fmt.Fprintf(&b, "    assign n[%d] = %s;\n", g.Out, gateExpr(g))
	}
	b.WriteString("\n")

	// Flip-flops.
	for i, ff := range n.FFs {
		initVal := "1'b0"
		if ff.Init {
			initVal = "1'b1"
		}
		fmt.Fprintf(&b, "    always @(posedge clk) begin\n")
		fmt.Fprintf(&b, "        if (rst) ff_%d <= %s;\n", i, initVal)
		fmt.Fprintf(&b, "        else     ff_%d <= n[%d];\n", i, ff.D)
		fmt.Fprintf(&b, "    end\n")
	}
	b.WriteString("\n")

	// Output ports.
	for _, p := range n.OutputPorts {
		for i, net := range p.Nets {
			fmt.Fprintf(&b, "    assign %s%s = n[%d];\n", sanitizeID(p.Name), bitSel(p.Width(), i), net)
		}
	}
	b.WriteString("endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func rangeDecl(width int) string {
	if width == 1 {
		return "      "
	}
	return fmt.Sprintf("[%d:0]", width-1)
}

func bitSel(width, i int) string {
	if width == 1 {
		return ""
	}
	return fmt.Sprintf("[%d]", i)
}

// sanitizeID turns an arbitrary name into a legal Verilog identifier.
func sanitizeID(s string) string {
	if s == "" {
		return "m"
	}
	var b strings.Builder
	for _, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "m" + out
	}
	return out
}

// gateExpr renders one gate as a Verilog expression over the net bundle.
func gateExpr(g *Gate) string {
	ref := func(x Net) string { return fmt.Sprintf("n[%d]", x) }
	join := func(op string) string {
		parts := make([]string, len(g.In))
		for i, in := range g.In {
			parts[i] = ref(in)
		}
		return strings.Join(parts, " "+op+" ")
	}
	switch g.Type {
	case Const0:
		return "1'b0"
	case Const1:
		return "1'b1"
	case Buf:
		return ref(g.In[0])
	case Not:
		return "~" + ref(g.In[0])
	case And:
		return join("&")
	case Or:
		return join("|")
	case Nand:
		return "~(" + join("&") + ")"
	case Nor:
		return "~(" + join("|") + ")"
	case Xor:
		return join("^")
	case Xnor:
		return "~(" + join("^") + ")"
	case Mux2:
		return fmt.Sprintf("%s ? %s : %s", ref(g.In[0]), ref(g.In[2]), ref(g.In[1]))
	default:
		return "1'bx"
	}
}
