package netlist

import "fmt"

// Instantiate flattens a sub-netlist into the builder: its gates and
// flip-flops are copied with fresh nets, its input ports are connected to
// the supplied nets, and the nets of its output ports are returned. Names
// are prefixed for debuggability. This is the structural-composition
// primitive used to assemble whole datapaths from library components.
func Instantiate(b *Builder, sub *Netlist, prefix string, inputs map[string][]Net) (map[string][]Net, error) {
	remap := make([]Net, sub.NumNets())
	for i := range remap {
		remap[i] = InvalidNet
	}
	for _, p := range sub.InputPorts {
		nets, ok := inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("netlist: instantiate %s/%s: input %q not connected", prefix, sub.Name, p.Name)
		}
		if len(nets) != p.Width() {
			return nil, fmt.Errorf("netlist: instantiate %s/%s: input %q width %d, got %d nets",
				prefix, sub.Name, p.Name, p.Width(), len(nets))
		}
		for i, orig := range p.Nets {
			remap[orig] = nets[i]
		}
	}
	// Declare flip-flops first so feedback nets resolve.
	ffIdx := make([]int, len(sub.FFs))
	for i, ff := range sub.FFs {
		q, idx := b.FFDecl(prefix+"/"+ff.Name, ff.Init)
		remap[ff.Q] = q
		ffIdx[i] = idx
	}
	for _, gi := range sub.TopoOrder() {
		g := sub.Gates[gi]
		ins := make([]Net, len(g.In))
		for k, in := range g.In {
			if remap[in] == InvalidNet {
				return nil, fmt.Errorf("netlist: instantiate %s/%s: net %d used before definition",
					prefix, sub.Name, in)
			}
			ins[k] = remap[in]
		}
		remap[g.Out] = emitGateInto(b, g.Type, ins)
	}
	for i, ff := range sub.FFs {
		d := remap[ff.D]
		if d == InvalidNet {
			return nil, fmt.Errorf("netlist: instantiate %s/%s: flip-flop %q D unmapped", prefix, sub.Name, ff.Name)
		}
		b.SetD(ffIdx[i], d)
	}
	out := make(map[string][]Net, len(sub.OutputPorts))
	for _, p := range sub.OutputPorts {
		nets := make([]Net, p.Width())
		for i, orig := range p.Nets {
			if remap[orig] == InvalidNet {
				return nil, fmt.Errorf("netlist: instantiate %s/%s: output %q bit %d undriven",
					prefix, sub.Name, p.Name, i)
			}
			nets[i] = remap[orig]
		}
		out[p.Name] = nets
	}
	return out, nil
}

func emitGateInto(b *Builder, t GateType, in []Net) Net {
	switch t {
	case Const0:
		return b.Const(false)
	case Const1:
		return b.Const(true)
	case Buf:
		return b.Buf(in[0])
	case Not:
		return b.Not(in[0])
	case And:
		return b.And(in...)
	case Or:
		return b.Or(in...)
	case Nand:
		return b.Nand(in...)
	case Nor:
		return b.Nor(in...)
	case Xor:
		return b.Xor(in...)
	case Xnor:
		return b.Xnor(in...)
	default: // Mux2
		return b.Mux(in[0], in[1], in[2])
	}
}
