package netlist

// Flat is a structure-of-arrays, level-major view of a netlist: gate
// attributes live in contiguous parallel arrays ordered by logic level
// (ties broken by gate index), so levelized evaluation and cone walks
// stream linear memory instead of chasing Gate pointers. The fanout
// relation is stored in CSR form with per-net load lists in the same
// (gate-ascending, pin-ascending) order FanoutTable produces, so
// consumers that switch representation keep their iteration order —
// and therefore their outputs — bit for bit.
//
// A Flat is immutable after construction and safe for concurrent use by
// any number of readers; Netlist.Flat builds it once per netlist and
// shares the result.
type Flat struct {
	// Per-slot gate attributes, slot order = (level, gate index).
	Type     []GateType
	Out      []Net
	PinStart []int32 // len(slots)+1; inputs of slot s are Pins[PinStart[s]:PinStart[s+1]]
	Pins     []Net

	Order  []int32 // slot -> gate index
	SlotOf []int32 // gate index -> slot

	// LevelStart[l] .. LevelStart[l+1] are the slots of logic level l;
	// len(LevelStart) == NumLevels+1. GateLevel is indexed by gate.
	LevelStart []int32
	GateLevel  []int32
	NumLevels  int

	// CSR fanout over gate input pins: the gates reading net x are
	// FanGate[FanStart[x]:FanStart[x+1]] with pin positions FanPin.
	// Flip-flop D pins and primary outputs are not included (same
	// contract as FanoutTable).
	FanStart []int32
	FanGate  []int32
	FanPin   []int8

	// GateDriver[x] is the gate driving net x, or -1 when the net is a
	// primary input or flip-flop Q output.
	GateDriver []int32

	MaxFanIn int
}

// Flat returns the cached structure-of-arrays view, building it on first
// use. The result is shared: callers must treat every field as read-only.
func (n *Netlist) Flat() *Flat {
	n.flatOnce.Do(func() { n.flat = buildFlat(n) })
	return n.flat
}

func buildFlat(n *Netlist) *Flat {
	nGates := len(n.Gates)
	f := &Flat{
		Type:      make([]GateType, nGates),
		Out:       make([]Net, nGates),
		PinStart:  make([]int32, nGates+1),
		Order:     make([]int32, nGates),
		SlotOf:    make([]int32, nGates),
		GateLevel: make([]int32, nGates),
		NumLevels: int(n.maxLevel) + 1,
	}
	copy(f.GateLevel, n.level)

	// Counting sort by level keeps gate-index order inside each level, so
	// the slot order is a deterministic function of the netlist alone.
	f.LevelStart = make([]int32, f.NumLevels+1)
	for _, lv := range f.GateLevel {
		f.LevelStart[lv+1]++
	}
	for l := 0; l < f.NumLevels; l++ {
		f.LevelStart[l+1] += f.LevelStart[l]
	}
	cursor := append([]int32(nil), f.LevelStart[:f.NumLevels]...)
	totalPins := 0
	for gi := range n.Gates {
		lv := f.GateLevel[gi]
		slot := cursor[lv]
		cursor[lv]++
		f.Order[slot] = int32(gi)
		f.SlotOf[gi] = slot
		totalPins += len(n.Gates[gi].In)
	}
	f.Pins = make([]Net, 0, totalPins)
	for s, gi := range f.Order {
		g := &n.Gates[gi]
		f.Type[s] = g.Type
		f.Out[s] = g.Out
		f.Pins = append(f.Pins, g.In...)
		f.PinStart[s+1] = int32(len(f.Pins))
		if len(g.In) > f.MaxFanIn {
			f.MaxFanIn = len(g.In)
		}
	}

	// CSR fanout, filled gate-ascending / pin-ascending — byte-compatible
	// with the per-net order of FanoutTable.
	f.FanStart = make([]int32, n.numNets+1)
	for gi := range n.Gates {
		for _, in := range n.Gates[gi].In {
			f.FanStart[in+1]++
		}
	}
	for x := 0; x < n.numNets; x++ {
		f.FanStart[x+1] += f.FanStart[x]
	}
	f.FanGate = make([]int32, totalPins)
	f.FanPin = make([]int8, totalPins)
	fanCursor := append([]int32(nil), f.FanStart[:n.numNets]...)
	for gi := range n.Gates {
		for pin, in := range n.Gates[gi].In {
			at := fanCursor[in]
			fanCursor[in]++
			f.FanGate[at] = int32(gi)
			f.FanPin[at] = int8(pin)
		}
	}

	f.GateDriver = make([]int32, n.numNets)
	for x := range f.GateDriver {
		f.GateDriver[x] = -1
		if d := n.drivers[x]; d.Kind == DriverGate {
			f.GateDriver[x] = d.Index
		}
	}
	return f
}

// Fanouts returns the CSR index range of the loads on net x; iterate
// FanGate[lo:hi] (and FanPin[lo:hi] for pin positions).
func (f *Flat) Fanouts(x Net) (lo, hi int32) {
	return f.FanStart[x], f.FanStart[x+1]
}

// Eval64 evaluates every gate over 64-lane words in slot (level-major)
// order — a valid topological order, so the result is identical to a
// gate-pointer walk of TopoOrder. w is indexed by net and must already
// hold the controllable-point values.
func (f *Flat) Eval64(w []uint64) {
	pins := f.Pins
	for s, t := range f.Type {
		lo, hi := f.PinStart[s], f.PinStart[s+1]
		var v uint64
		switch t {
		case Const0:
			v = 0
		case Const1:
			v = ^uint64(0)
		case Buf:
			v = w[pins[lo]]
		case Not:
			v = ^w[pins[lo]]
		case And, Nand:
			v = w[pins[lo]]
			for i := lo + 1; i < hi; i++ {
				v &= w[pins[i]]
			}
			if t == Nand {
				v = ^v
			}
		case Or, Nor:
			v = w[pins[lo]]
			for i := lo + 1; i < hi; i++ {
				v |= w[pins[i]]
			}
			if t == Nor {
				v = ^v
			}
		case Xor, Xnor:
			v = w[pins[lo]]
			for i := lo + 1; i < hi; i++ {
				v ^= w[pins[i]]
			}
			if t == Xnor {
				v = ^v
			}
		default: // Mux2
			sel, a0, a1 := w[pins[lo]], w[pins[lo+1]], w[pins[lo+2]]
			v = a0&^sel | a1&sel
		}
		w[f.Out[s]] = v
	}
}
