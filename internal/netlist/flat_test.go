package netlist

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// buildRandomFlat builds a random reconvergent DAG for the Flat tests.
func buildRandomFlat(t *testing.T, seed int64, gates int) *Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("flatrand")
	nets := b.InputBus("in", 7)
	for i := 0; i < gates; i++ {
		a := nets[rng.Intn(len(nets))]
		x := nets[rng.Intn(len(nets))]
		var o Net
		switch rng.Intn(7) {
		case 0:
			o = b.And(a, x)
		case 1:
			o = b.Or(a, x)
		case 2:
			o = b.Xor(a, x)
		case 3:
			o = b.Nand(a, x)
		case 4:
			o = b.Nor(a, x)
		case 5:
			o = b.Not(a)
		default:
			o = b.Mux(a, x, nets[rng.Intn(len(nets))])
		}
		nets = append(nets, o)
	}
	for i := 0; i < 4; i++ {
		b.Output(fmt.Sprintf("o%d", i), nets[len(nets)-1-i*5])
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFlatInvariants(t *testing.T) {
	n := buildRandomFlat(t, 11, 160)
	f := n.Flat()

	// Order is a permutation with SlotOf as its inverse.
	seen := make([]bool, len(n.Gates))
	for s, gi := range f.Order {
		if seen[gi] {
			t.Fatalf("gate %d appears twice in Order", gi)
		}
		seen[gi] = true
		if f.SlotOf[gi] != int32(s) {
			t.Fatalf("SlotOf[%d] = %d, want %d", gi, f.SlotOf[gi], s)
		}
	}

	// Slot order is level-major with gate-index ties, matching LevelStart.
	for s := 1; s < len(f.Order); s++ {
		la, lb := f.GateLevel[f.Order[s-1]], f.GateLevel[f.Order[s]]
		if la > lb {
			t.Fatalf("slot %d level %d precedes level %d", s, la, lb)
		}
		if la == lb && f.Order[s-1] >= f.Order[s] {
			t.Fatalf("slots %d,%d break gate-index tie order", s-1, s)
		}
	}
	for l := 0; l < f.NumLevels; l++ {
		for s := f.LevelStart[l]; s < f.LevelStart[l+1]; s++ {
			if f.GateLevel[f.Order[s]] != int32(l) {
				t.Fatalf("LevelStart bucket %d holds slot of level %d", l, f.GateLevel[f.Order[s]])
			}
		}
	}

	// Per-slot attributes mirror the Gate structs; fanout edges climb
	// strictly in level (the property the event-driven drain relies on).
	for s, gi := range f.Order {
		g := &n.Gates[gi]
		if f.Type[s] != g.Type || f.Out[s] != g.Out {
			t.Fatalf("slot %d attributes diverge from gate %d", s, gi)
		}
		pins := f.Pins[f.PinStart[s]:f.PinStart[s+1]]
		if len(pins) != len(g.In) {
			t.Fatalf("slot %d pin count %d, want %d", s, len(pins), len(g.In))
		}
		for i := range pins {
			if pins[i] != g.In[i] {
				t.Fatalf("slot %d pin %d diverges", s, i)
			}
		}
		lo, hi := f.Fanouts(g.Out)
		for i := lo; i < hi; i++ {
			if f.GateLevel[f.FanGate[i]] <= f.GateLevel[gi] {
				t.Fatalf("fanout edge %d->%d does not climb levels", gi, f.FanGate[i])
			}
		}
	}

	// CSR fanout matches FanoutTable per net, in order.
	fan := n.FanoutTable()
	for x := 0; x < n.NumNets(); x++ {
		lo, hi := f.Fanouts(Net(x))
		if int(hi-lo) != len(fan[x]) {
			t.Fatalf("net %d fanout count %d, want %d", x, hi-lo, len(fan[x]))
		}
		for i := lo; i < hi; i++ {
			ld := fan[x][i-lo]
			if f.FanGate[i] != ld.Gate || f.FanPin[i] != ld.Pin {
				t.Fatalf("net %d load %d: (%d,%d) vs FanoutTable (%d,%d)",
					x, i-lo, f.FanGate[i], f.FanPin[i], ld.Gate, ld.Pin)
			}
		}
	}

	// GateDriver agrees with Driver.
	for x := 0; x < n.NumNets(); x++ {
		d := n.Driver(Net(x))
		want := int32(-1)
		if d.Kind == DriverGate {
			want = d.Index
		}
		if f.GateDriver[x] != want {
			t.Fatalf("GateDriver[%d] = %d, want %d", x, f.GateDriver[x], want)
		}
	}
}

// TestFlatEval64MatchesGateWalk A/Bs the SoA evaluation against an
// independent per-gate TopoOrder walk over the Gate structs.
func TestFlatEval64MatchesGateWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 3; trial++ {
		n := buildRandomFlat(t, int64(20+trial), 140)
		f := n.Flat()
		w := make([]uint64, n.NumNets())
		ref := make([]uint64, n.NumNets())
		for _, x := range n.PIs {
			v := rng.Uint64()
			w[x] = v
			ref[x] = v
		}
		f.Eval64(w)
		for _, gi := range n.TopoOrder() {
			g := &n.Gates[gi]
			var v uint64
			switch g.Type {
			case Const0:
			case Const1:
				v = ^uint64(0)
			case Buf:
				v = ref[g.In[0]]
			case Not:
				v = ^ref[g.In[0]]
			case And, Nand:
				v = ^uint64(0)
				for _, in := range g.In {
					v &= ref[in]
				}
				if g.Type == Nand {
					v = ^v
				}
			case Or, Nor:
				for _, in := range g.In {
					v |= ref[in]
				}
				if g.Type == Nor {
					v = ^v
				}
			case Xor, Xnor:
				for _, in := range g.In {
					v ^= ref[in]
				}
				if g.Type == Xnor {
					v = ^v
				}
			case Mux2:
				sel, a0, a1 := ref[g.In[0]], ref[g.In[1]], ref[g.In[2]]
				v = a0&^sel | a1&sel
			}
			ref[g.Out] = v
		}
		for x := 0; x < n.NumNets(); x++ {
			if w[x] != ref[x] {
				t.Fatalf("trial %d net %d: Eval64 %#x, reference %#x", trial, x, w[x], ref[x])
			}
		}
	}
}

// TestFlatConcurrentAccess hammers the lazy constructor and the shared
// read-only view from many goroutines; its value is under -race. Every
// caller must observe the same instance.
func TestFlatConcurrentAccess(t *testing.T) {
	n := buildRandomFlat(t, 33, 200)
	var wg sync.WaitGroup
	flats := make([]*Flat, 16)
	for i := range flats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := n.Flat()
			flats[i] = f
			w := make([]uint64, n.NumNets())
			for _, x := range n.PIs {
				w[x] = uint64(i) * 0x9e3779b97f4a7c15
			}
			f.Eval64(w)
			st := NewState(n)
			for _, x := range n.PIs {
				st.SetInput(x, uint64(i)*0x9e3779b97f4a7c15)
			}
			st.Eval()
			for _, po := range n.POs {
				if st.Word(po) != w[po] {
					t.Errorf("goroutine %d: State.Eval and Eval64 disagree on net %d", i, po)
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(flats); i++ {
		if flats[i] != flats[0] {
			t.Fatal("Flat() returned distinct instances")
		}
	}
}
