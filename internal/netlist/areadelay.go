package netlist

// Area and delay models. Area is expressed in NAND2-equivalent gate units;
// delay in normalized gate delays (one NAND2 = 1.0). Multi-input gates are
// costed as the balanced tree of 2-input gates a technology mapper would
// produce, which keeps the model monotone in fan-in.

// Cell cost constants (NAND2-equivalents and normalized delays). The values
// follow the usual standard-cell ratios (e.g. an XOR2 is ~2.5 NAND2 areas,
// a scannable DFF ~6.5).
const (
	areaNand2 = 1.0
	areaNor2  = 1.0
	areaAnd2  = 1.25
	areaOr2   = 1.25
	areaXor2  = 2.5
	areaXnor2 = 2.5
	areaMux2  = 2.5
	areaInv   = 0.5
	areaBuf   = 0.75
	// AreaDFF is the area of a plain D flip-flop in NAND2 equivalents.
	AreaDFF = 5.0
	// AreaScanDFF is the area of a scannable (muxed-D) flip-flop.
	AreaScanDFF = 6.5

	delayNand2 = 1.0
	delayNor2  = 1.0
	delayAnd2  = 1.25
	delayOr2   = 1.25
	delayXor2  = 1.8
	delayXnor2 = 1.8
	delayMux2  = 1.6
	delayInv   = 0.5
	delayBuf   = 0.6
)

// treeStages returns the number of 2-input stages in a balanced reduction
// tree over n leaves (0 for n<=1).
func treeStages(n int) int {
	s := 0
	for n > 1 {
		n = (n + 1) / 2
		s++
	}
	return s
}

// GateArea returns the NAND2-equivalent area of one gate instance.
func GateArea(t GateType, fanin int) float64 {
	if fanin < 1 {
		fanin = 1
	}
	pairs := float64(fanin - 1) // 2-input cells in a reduction tree
	switch t {
	case Const0, Const1:
		return 0
	case Buf:
		return areaBuf
	case Not:
		return areaInv
	case And:
		if fanin == 1 {
			return areaBuf
		}
		return pairs * areaAnd2
	case Or:
		if fanin == 1 {
			return areaBuf
		}
		return pairs * areaOr2
	case Nand:
		if fanin == 1 {
			return areaInv
		}
		if fanin == 2 {
			return areaNand2
		}
		return (pairs-1)*areaAnd2 + areaNand2
	case Nor:
		if fanin == 1 {
			return areaInv
		}
		if fanin == 2 {
			return areaNor2
		}
		return (pairs-1)*areaOr2 + areaNor2
	case Xor:
		if fanin == 1 {
			return areaBuf
		}
		return pairs * areaXor2
	case Xnor:
		if fanin == 1 {
			return areaInv
		}
		return (pairs-1)*areaXor2 + areaXnor2
	case Mux2:
		return areaMux2
	default:
		return areaNand2
	}
}

// GateDelay returns the normalized propagation delay of one gate instance,
// modeling multi-input gates as balanced trees of 2-input cells.
func GateDelay(t GateType, fanin int) float64 {
	if fanin < 1 {
		fanin = 1
	}
	st := float64(treeStages(fanin))
	if st == 0 {
		st = 1
	}
	switch t {
	case Const0, Const1:
		return 0
	case Buf:
		return delayBuf
	case Not:
		return delayInv
	case And:
		return st * delayAnd2
	case Or:
		return st * delayOr2
	case Nand:
		if fanin <= 2 {
			return delayNand2
		}
		return (st-1)*delayAnd2 + delayNand2
	case Nor:
		if fanin <= 2 {
			return delayNor2
		}
		return (st-1)*delayOr2 + delayNor2
	case Xor:
		return st * delayXor2
	case Xnor:
		if fanin <= 2 {
			return delayXnor2
		}
		return (st-1)*delayXor2 + delayXnor2
	case Mux2:
		return delayMux2
	default:
		return delayNand2
	}
}

// Area returns the total cell area of the netlist (gates + plain DFFs) in
// NAND2-equivalent units.
func (n *Netlist) Area() float64 {
	a := 0.0
	for _, g := range n.Gates {
		a += GateArea(g.Type, len(g.In))
	}
	a += float64(len(n.FFs)) * AreaDFF
	return a
}

// AreaWithScan returns the cell area when every flip-flop is replaced by a
// scannable flip-flop (the full-scan DfT variant of the same netlist).
func (n *Netlist) AreaWithScan() float64 {
	a := 0.0
	for _, g := range n.Gates {
		a += GateArea(g.Type, len(g.In))
	}
	a += float64(len(n.FFs)) * AreaScanDFF
	return a
}

// CriticalPath returns the longest register-to-register /input-to-output
// combinational delay through the netlist, in normalized gate delays.
func (n *Netlist) CriticalPath() float64 {
	arrive := make([]float64, n.numNets)
	worst := 0.0
	for _, gi := range n.order {
		g := &n.Gates[gi]
		t := 0.0
		for _, in := range g.In {
			if arrive[in] > t {
				t = arrive[in]
			}
		}
		t += GateDelay(g.Type, len(g.In))
		arrive[g.Out] = t
		if t > worst {
			worst = t
		}
	}
	return worst
}
