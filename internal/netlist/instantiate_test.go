package netlist

import (
	"strings"
	"testing"
)

func TestWireDriveRoundTrip(t *testing.T) {
	b := NewBuilder("wires")
	a := b.Input("a")
	w := b.Wire("w")
	b.Output("y", b.Not(w))
	b.Drive(w, a)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvalFunc(n, map[string]uint64{"a": 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got["y"] != 0 {
		t.Fatalf("y=%d, want 0", got["y"])
	}
}

func TestUndrivenWireRejected(t *testing.T) {
	b := NewBuilder("undriven")
	a := b.Input("a")
	w := b.Wire("w")
	b.Output("y", b.And(a, w))
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "unconnected input") {
		t.Fatalf("undriven wire not reported: %v", err)
	}
}

func TestDoubleDriveRejected(t *testing.T) {
	b := NewBuilder("dd")
	a := b.Input("a")
	w := b.Wire("w")
	b.Drive(w, a)
	b.Drive(w, a)
	if _, err := b.Build(); err == nil {
		t.Fatal("double drive accepted")
	}
}

func TestDriveNonWireRejected(t *testing.T) {
	b := NewBuilder("nw")
	a := b.Input("a")
	x := b.And(a, a)
	b.Drive(x, a)
	b.Output("y", x)
	if _, err := b.Build(); err == nil {
		t.Fatal("driving a non-wire accepted")
	}
}

func TestWireFeedbackThroughFF(t *testing.T) {
	// Wires allow mutually referential structures broken by flip-flops:
	// a toggling bit q' = not(q) expressed through a wire.
	b := NewBuilder("toggle")
	w := b.Wire("w")
	q := b.DFF("q", w, false)
	b.Drive(w, b.Not(q))
	b.Output("y", q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(n)
	p, _ := n.OutputPort("y")
	want := []uint64{0, 1, 0, 1}
	for i, wv := range want {
		st.Eval()
		if got := st.OutputBusValue(p, 0); got != wv {
			t.Fatalf("cycle %d: %d, want %d", i, got, wv)
		}
		st.Step()
	}
}

func TestWireCombinationalCycleRejected(t *testing.T) {
	// A wire that closes a purely combinational loop must fail
	// levelization.
	b := NewBuilder("loop")
	a := b.Input("a")
	w := b.Wire("w")
	x := b.And(a, w)
	b.Drive(w, x)
	b.Output("y", x)
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("combinational cycle not reported: %v", err)
	}
}

func buildAdderSub(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("fa1")
	a := b.Input("a")
	x := b.Input("x")
	ci := b.Input("ci")
	s1 := b.Xor(a, x)
	b.Output("s", b.Xor(s1, ci))
	b.Output("co", b.Or(b.And(a, x), b.And(s1, ci)))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInstantiateComposesRipple(t *testing.T) {
	// Build a 4-bit adder from four instantiated full-adder cells and
	// check it against arithmetic.
	fa := buildAdderSub(t)
	b := NewBuilder("ripple4")
	av := b.InputBus("a", 4)
	xv := b.InputBus("x", 4)
	carry := b.Const(false)
	sum := make([]Net, 4)
	for i := 0; i < 4; i++ {
		outs, err := Instantiate(b, fa, "fa"+string(rune('0'+i)), map[string][]Net{
			"a": {av[i]}, "x": {xv[i]}, "ci": {carry},
		})
		if err != nil {
			t.Fatal(err)
		}
		sum[i] = outs["s"][0]
		carry = outs["co"][0]
	}
	b.OutputBus("sum", sum)
	b.Output("cout", carry)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for a := uint64(0); a < 16; a++ {
		for x := uint64(0); x < 16; x++ {
			got, err := EvalFunc(n, map[string]uint64{"a": a, "x": x}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got["sum"] != (a+x)&15 || got["cout"] != (a+x)>>4 {
				t.Fatalf("%d+%d: sum=%d cout=%d", a, x, got["sum"], got["cout"])
			}
		}
	}
}

func TestInstantiateChecksConnections(t *testing.T) {
	fa := buildAdderSub(t)
	b := NewBuilder("bad")
	a := b.Input("a")
	if _, err := Instantiate(b, fa, "i", map[string][]Net{"a": {a}}); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if _, err := Instantiate(b, fa, "i", map[string][]Net{
		"a": {a}, "x": {a, a}, "ci": {a},
	}); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestInstantiatePreservesFFInit(t *testing.T) {
	sb := NewBuilder("sub")
	in := sb.Input("d")
	q := sb.DFF("r", in, true)
	sb.Output("q", q)
	sub, err := sb.Build()
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("top")
	d := b.Input("d")
	outs, err := Instantiate(b, sub, "u0", map[string][]Net{"d": {d}})
	if err != nil {
		t.Fatal(err)
	}
	b.Output("q", outs["q"][0])
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(n.FFs) != 1 || !n.FFs[0].Init {
		t.Fatal("flip-flop init value lost in instantiation")
	}
	if _, ok := n.FFByName("u0/r"); !ok {
		t.Fatal("flip-flop name not prefixed")
	}
}
