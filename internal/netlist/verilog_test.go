package netlist

import (
	"strings"
	"testing"
)

func TestVerilogExportStructure(t *testing.T) {
	b := NewBuilder("demo.unit")
	a := b.InputBus("a", 4)
	x := b.Input("x")
	sum := make([]Net, 4)
	for i := range sum {
		sum[i] = b.Xor(a[i], x)
	}
	q := b.DFFBus("r", sum, false)
	b.OutputBus("q", q)
	b.Output("p", b.And(q[0], q[1]))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteVerilog(&sb, ""); err != nil {
		t.Fatal(err)
	}
	v := sb.String()

	for _, want := range []string{
		"module demo_unit",
		"endmodule",
		"input  wire clk",
		"input  wire rst",
		"input  wire [3:0] a",
		"output wire [3:0] q",
		"always @(posedge clk)",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog lacks %q", want)
		}
	}
	if got := strings.Count(v, "always @(posedge clk)"); got != len(n.FFs) {
		t.Errorf("%d always blocks for %d flip-flops", got, len(n.FFs))
	}
	// One assign per gate plus port/FF plumbing.
	if got := strings.Count(v, "assign "); got < len(n.Gates)+len(n.FFs) {
		t.Errorf("only %d assigns for %d gates + %d FFs", got, len(n.Gates), len(n.FFs))
	}
	// Reset values follow FF init.
	if !strings.Contains(v, "<= 1'b0;") {
		t.Error("missing reset assignment")
	}
}

func TestVerilogAllGateForms(t *testing.T) {
	b := NewBuilder("gates")
	a := b.Input("a")
	x := b.Input("b")
	b.Output("o0", b.And(a, x))
	b.Output("o1", b.Or(a, x))
	b.Output("o2", b.Nand(a, x))
	b.Output("o3", b.Nor(a, x))
	b.Output("o4", b.Xor(a, x))
	b.Output("o5", b.Xnor(a, x))
	b.Output("o6", b.Not(a))
	b.Output("o7", b.Buf(a))
	b.Output("o8", b.Mux(a, x, b.Const(true)))
	b.Output("o9", b.Const(false))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := n.WriteVerilog(&sb, "g"); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{" & ", " | ", "~(", " ^ ", " ? ", "1'b0", "1'b1"} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog lacks operator %q", want)
		}
	}
	if strings.Contains(v, "1'bx") {
		t.Error("unknown gate leaked into the export")
	}
}

func TestVerilogDeterministic(t *testing.T) {
	b1 := NewBuilder("d")
	a := b1.Input("a")
	b1.Output("y", b1.Not(a))
	n, err := b1.Build()
	if err != nil {
		t.Fatal(err)
	}
	var s1, s2 strings.Builder
	if err := n.WriteVerilog(&s1, "d"); err != nil {
		t.Fatal(err)
	}
	if err := n.WriteVerilog(&s2, "d"); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatal("nondeterministic export")
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"demo.unit":  "demo_unit",
		"9lives":     "m9lives",
		"":           "m",
		"ok_name_42": "ok_name_42",
		"a/b[3]":     "a_b_3_",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}
