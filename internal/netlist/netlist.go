// Package netlist provides a gate-level structural netlist representation
// together with levelization, parallel logic evaluation, and area/delay
// models. It is the substrate on which the component library
// (internal/gatelib) and the test generation flow (internal/atpg,
// internal/scan) are built.
//
// A netlist is a directed graph of single-output gates over a dense set of
// nets. Every net is driven by exactly one source: a primary input, the Q
// output of a D flip-flop, or a gate output. Combinational cycles are
// rejected at build time; feedback must go through flip-flops.
package netlist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// GateType enumerates the supported gate primitives.
type GateType uint8

// Gate primitives. And/Or/Nand/Nor/Xor/Xnor accept arbitrary fan-in >= 1
// (fan-in 1 behaves as Buf, or Not for the inverting types). Mux2 has the
// fixed input order (sel, a0, a1) and selects a1 when sel is 1.
const (
	Const0 GateType = iota
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Mux2

	numGateTypes
)

var gateNames = [numGateTypes]string{
	Const0: "const0",
	Const1: "const1",
	Buf:    "buf",
	Not:    "not",
	And:    "and",
	Or:     "or",
	Nand:   "nand",
	Nor:    "nor",
	Xor:    "xor",
	Xnor:   "xnor",
	Mux2:   "mux2",
}

func (t GateType) String() string {
	if int(t) < len(gateNames) {
		return gateNames[t]
	}
	return fmt.Sprintf("gate(%d)", uint8(t))
}

// Net identifies a net (signal) in a netlist. Nets are dense indices
// starting at 0. InvalidNet marks an unconnected position.
type Net int32

// InvalidNet is the zero-like sentinel for an unconnected net reference.
const InvalidNet Net = -1

// Gate is a single-output logic gate.
type Gate struct {
	Type GateType
	Out  Net
	In   []Net
}

// FF is a D flip-flop. On every clock step Q takes the value of D. Init
// gives the reset value used by the evaluator when a state is created.
type FF struct {
	Name string
	D    Net
	Q    Net
	Init bool
}

// Port is a named, ordered group of nets forming an input or output bus of
// the netlist (LSB first).
type Port struct {
	Name string
	Nets []Net
}

// Width returns the number of bits in the port.
func (p Port) Width() int { return len(p.Nets) }

// DriverKind distinguishes what drives a given net.
type DriverKind uint8

// Driver kinds for Netlist.Driver.
const (
	DriverNone DriverKind = iota // undriven (invalid after Build)
	DriverPI                     // primary input
	DriverFF                     // flip-flop Q output
	DriverGate                   // gate output
)

// Driver describes the unique source of a net.
type Driver struct {
	Kind  DriverKind
	Index int32 // index into Inputs flat list, FFs, or Gates
}

// Netlist is an immutable gate-level circuit produced by a Builder.
type Netlist struct {
	Name string

	Gates []Gate
	FFs   []FF

	// InputPorts and OutputPorts are the declared port groups, in
	// declaration order. PIs and POs are the flattened net lists.
	InputPorts  []Port
	OutputPorts []Port
	PIs         []Net
	POs         []Net

	numNets  int
	netName  []string
	drivers  []Driver
	level    []int32 // per-gate topological level (source level 0)
	order    []int32 // gate indices in topological order
	maxLevel int32

	flatOnce sync.Once
	flat     *Flat // cached structure-of-arrays view (see Flat)
}

// NumNets returns the total number of nets.
func (n *Netlist) NumNets() int { return n.numNets }

// NetName returns the declared name of a net, or a synthetic "n<i>" name.
func (n *Netlist) NetName(x Net) string {
	if x >= 0 && int(x) < len(n.netName) && n.netName[x] != "" {
		return n.netName[x]
	}
	return fmt.Sprintf("n%d", x)
}

// Driver returns the driver record for a net.
func (n *Netlist) Driver(x Net) Driver { return n.drivers[x] }

// TopoOrder returns gate indices in a valid topological evaluation order.
// The slice is shared; callers must not modify it.
func (n *Netlist) TopoOrder() []int32 { return n.order }

// Level returns the topological level of gate g (inputs at level 0).
func (n *Netlist) Level(g int32) int32 { return n.level[g] }

// Depth returns the maximum combinational level in the netlist.
func (n *Netlist) Depth() int32 { return n.maxLevel }

// InputPort returns the named input port.
func (n *Netlist) InputPort(name string) (Port, bool) {
	for _, p := range n.InputPorts {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// OutputPort returns the named output port.
func (n *Netlist) OutputPort(name string) (Port, bool) {
	for _, p := range n.OutputPorts {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// FFByName returns the index of the flip-flop with the given name.
func (n *Netlist) FFByName(name string) (int, bool) {
	for i, ff := range n.FFs {
		if ff.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Stats summarises the structural content of a netlist.
type Stats struct {
	Gates     int
	FFs       int
	Nets      int
	PIs       int
	POs       int
	Depth     int
	ByType    map[GateType]int
	AreaUnits float64
}

// Stats computes summary statistics for the netlist.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Gates:  len(n.Gates),
		FFs:    len(n.FFs),
		Nets:   n.numNets,
		PIs:    len(n.PIs),
		POs:    len(n.POs),
		Depth:  int(n.maxLevel),
		ByType: make(map[GateType]int),
	}
	for _, g := range n.Gates {
		s.ByType[g.Type]++
	}
	s.AreaUnits = n.Area()
	return s
}

// String renders a short human-readable summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gates=%d ffs=%d nets=%d pi=%d po=%d depth=%d area=%.1f",
		s.Gates, s.FFs, s.Nets, s.PIs, s.POs, s.Depth, s.AreaUnits)
	types := make([]GateType, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	for _, t := range types {
		fmt.Fprintf(&b, " %s=%d", t, s.ByType[t])
	}
	return b.String()
}

// FanoutTable returns, for every net, the list of (gate, pin) loads. Pin i
// is input position i of the gate. Flip-flop D pins and primary outputs are
// not included; they are tracked separately by consumers that need them.
func (n *Netlist) FanoutTable() [][]Load {
	fan := make([][]Load, n.numNets)
	for gi, g := range n.Gates {
		for pin, in := range g.In {
			fan[in] = append(fan[in], Load{Gate: int32(gi), Pin: int8(pin)})
		}
	}
	return fan
}

// Load is a (gate, input-pin) pair fed by some net.
type Load struct {
	Gate int32
	Pin  int8
}
