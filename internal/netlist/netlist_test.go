package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildFullAdder(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("fa")
	a := b.Input("a")
	x := b.Input("b")
	ci := b.Input("ci")
	s1 := b.Xor(a, x)
	sum := b.Xor(s1, ci)
	co := b.Or(b.And(a, x), b.And(s1, ci))
	b.Output("sum", sum)
	b.Output("co", co)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("build full adder: %v", err)
	}
	return n
}

func TestFullAdderTruthTable(t *testing.T) {
	n := buildFullAdder(t)
	st := NewState(n)
	for v := uint64(0); v < 8; v++ {
		a, x, ci := v&1, v>>1&1, v>>2&1
		pa, _ := n.InputPort("a")
		pb, _ := n.InputPort("b")
		pc, _ := n.InputPort("ci")
		st.SetInputBus(pa, a)
		st.SetInputBus(pb, x)
		st.SetInputBus(pc, ci)
		st.Eval()
		ps, _ := n.OutputPort("sum")
		pco, _ := n.OutputPort("co")
		gotSum := st.OutputBusValue(ps, 0)
		gotCo := st.OutputBusValue(pco, 0)
		total := a + x + ci
		if gotSum != total&1 || gotCo != total>>1 {
			t.Errorf("fa(%d,%d,%d): sum=%d co=%d, want %d %d", a, x, ci, gotSum, gotCo, total&1, total>>1)
		}
	}
}

func TestParallelLanesIndependent(t *testing.T) {
	n := buildFullAdder(t)
	st := NewState(n)
	pa, _ := n.InputPort("a")
	pb, _ := n.InputPort("b")
	pc, _ := n.InputPort("ci")
	// Lane k gets input pattern k (mod 8).
	for lane := 0; lane < 64; lane++ {
		v := uint64(lane % 8)
		st.SetInputPattern(pa, v&1, lane)
		st.SetInputPattern(pb, v>>1&1, lane)
		st.SetInputPattern(pc, v>>2&1, lane)
	}
	st.Eval()
	ps, _ := n.OutputPort("sum")
	pco, _ := n.OutputPort("co")
	for lane := 0; lane < 64; lane++ {
		v := uint64(lane % 8)
		total := v&1 + v>>1&1 + v>>2&1
		if got := st.OutputBusValue(ps, lane); got != total&1 {
			t.Fatalf("lane %d sum=%d want %d", lane, got, total&1)
		}
		if got := st.OutputBusValue(pco, lane); got != total>>1 {
			t.Fatalf("lane %d co=%d want %d", lane, got, total>>1)
		}
	}
}

func TestAllGateTypesEval(t *testing.T) {
	b := NewBuilder("gates")
	a := b.Input("a")
	x := b.Input("b")
	b.Output("and", b.And(a, x))
	b.Output("or", b.Or(a, x))
	b.Output("nand", b.Nand(a, x))
	b.Output("nor", b.Nor(a, x))
	b.Output("xor", b.Xor(a, x))
	b.Output("xnor", b.Xnor(a, x))
	b.Output("not", b.Not(a))
	b.Output("buf", b.Buf(a))
	b.Output("mux", b.Mux(a, x, b.Not(x)))
	b.Output("c0", b.Const(false))
	b.Output("c1", b.Const(true))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := func(av, bv uint64) map[string]uint64 {
		inv := func(v uint64) uint64 { return v ^ 1 }
		mux := bv
		if av == 1 {
			mux = inv(bv)
		}
		return map[string]uint64{
			"and": av & bv, "or": av | bv,
			"nand": inv(av & bv), "nor": inv(av | bv),
			"xor": av ^ bv, "xnor": inv(av ^ bv),
			"not": inv(av), "buf": av, "mux": mux,
			"c0": 0, "c1": 1,
		}
	}
	for v := uint64(0); v < 4; v++ {
		got, err := EvalFunc(n, map[string]uint64{"a": v & 1, "b": v >> 1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want(v&1, v>>1) {
			if got[name] != w {
				t.Errorf("inputs a=%d b=%d: %s=%d want %d", v&1, v>>1, name, got[name], w)
			}
		}
	}
}

func TestWideGates(t *testing.T) {
	b := NewBuilder("wide")
	in := b.InputBus("x", 5)
	b.Output("and", b.And(in...))
	b.Output("or", b.Or(in...))
	b.Output("xor", b.Xor(in...))
	b.Output("nand", b.Nand(in...))
	b.Output("nor", b.Nor(in...))
	b.Output("xnor", b.Xnor(in...))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 32; v++ {
		got, err := EvalFunc(n, map[string]uint64{"x": v}, nil)
		if err != nil {
			t.Fatal(err)
		}
		all := uint64(0)
		if v == 31 {
			all = 1
		}
		any := uint64(0)
		if v != 0 {
			any = 1
		}
		par := uint64(0)
		for i := 0; i < 5; i++ {
			par ^= v >> uint(i) & 1
		}
		if got["and"] != all || got["or"] != any || got["xor"] != par {
			t.Fatalf("v=%05b: and=%d or=%d xor=%d", v, got["and"], got["or"], got["xor"])
		}
		if got["nand"] != all^1 || got["nor"] != any^1 || got["xnor"] != par^1 {
			t.Fatalf("v=%05b: nand=%d nor=%d xnor=%d", v, got["nand"], got["nor"], got["xnor"])
		}
	}
}

func TestFlipFlopCycle(t *testing.T) {
	// 3-bit ring counter: one-hot token rotates each cycle.
	b := NewBuilder("ring")
	q0, f0 := b.FFDecl("r0", true)
	q1, f1 := b.FFDecl("r1", false)
	q2, f2 := b.FFDecl("r2", false)
	b.SetD(f1, q0)
	b.SetD(f2, q1)
	b.SetD(f0, q2)
	b.Output("o0", q0)
	b.Output("o1", q1)
	b.Output("o2", q2)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(n)
	wantHot := []int{0, 1, 2, 0, 1, 2}
	for cyc, hot := range wantHot {
		st.Eval()
		for i := 0; i < 3; i++ {
			want := uint64(0)
			if i == hot {
				want = 1
			}
			p, _ := n.OutputPort([]string{"o0", "o1", "o2"}[i])
			if got := st.OutputBusValue(p, 0); got != want {
				t.Fatalf("cycle %d: output %d = %d, want %d", cyc, i, got, want)
			}
		}
		st.Step()
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	b := NewBuilder("cycle")
	a := b.Input("a")
	// Build a cycle by declaring an FF, using its Q, then... actually force
	// a true combinational loop via two cross-coupled gates using FFDecl's
	// net then rewiring is not possible through the public API, so emulate
	// with a latch structure: out = or(a, and(out, a)) cannot be expressed.
	// Instead check that an unconnected FF D is reported.
	_, _ = b.FFDecl("ff", false)
	b.Output("o", a)
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "unconnected D") {
		t.Fatalf("expected unconnected-D error, got %v", err)
	}
}

func TestDFFBusAndReset(t *testing.T) {
	b := NewBuilder("reg")
	d := b.InputBus("d", 4)
	q := b.DFFBus("r", d, false)
	b.OutputBus("q", q)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(n)
	pd, _ := n.InputPort("d")
	pq, _ := n.OutputPort("q")
	st.SetInputBus(pd, 0b1010)
	st.Eval()
	if got := st.OutputBusValue(pq, 0); got != 0 {
		t.Fatalf("before clock q=%d want 0", got)
	}
	st.Step()
	st.Eval()
	if got := st.OutputBusValue(pq, 0); got != 0b1010 {
		t.Fatalf("after clock q=%04b want 1010", got)
	}
	st.ResetFFs()
	st.Eval()
	if got := st.OutputBusValue(pq, 0); got != 0 {
		t.Fatalf("after reset q=%d want 0", got)
	}
}

func TestUndrivenNetRejected(t *testing.T) {
	b := NewBuilder("bad")
	a := b.Input("a")
	_ = a
	// newNet via a gate with an invalid input triggers builder error.
	b.Not(InvalidNet)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for invalid gate input")
	}
}

func TestStatsAndAreaMonotone(t *testing.T) {
	small := buildFullAdder(t)
	b := NewBuilder("two-fa")
	for k := 0; k < 2; k++ {
		a := b.Input("a" + string(rune('0'+k)))
		x := b.Input("b" + string(rune('0'+k)))
		ci := b.Input("c" + string(rune('0'+k)))
		s1 := b.Xor(a, x)
		b.Output("s"+string(rune('0'+k)), b.Xor(s1, ci))
		b.Output("co"+string(rune('0'+k)), b.Or(b.And(a, x), b.And(s1, ci)))
	}
	big, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if big.Area() <= small.Area() {
		t.Fatalf("area not monotone: 2xFA %.2f <= FA %.2f", big.Area(), small.Area())
	}
	st := small.Stats()
	if st.Gates != 5 || st.PIs != 3 || st.POs != 2 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestScanAreaExceedsPlainArea(t *testing.T) {
	b := NewBuilder("ffs")
	d := b.InputBus("d", 8)
	b.OutputBus("q", b.DFFBus("r", d, false))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.AreaWithScan() <= n.Area() {
		t.Fatalf("scan area %.2f not greater than plain %.2f", n.AreaWithScan(), n.Area())
	}
}

func TestCriticalPathGrowsWithDepth(t *testing.T) {
	mk := func(depth int) *Netlist {
		b := NewBuilder("chain")
		x := b.Input("x")
		y := b.Input("y")
		v := x
		for i := 0; i < depth; i++ {
			v = b.Xor(v, y)
		}
		b.Output("o", v)
		n, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if d1, d2 := mk(2).CriticalPath(), mk(8).CriticalPath(); d2 <= d1 {
		t.Fatalf("critical path not monotone in depth: %f vs %f", d1, d2)
	}
}

func TestLevelizationOrderValid(t *testing.T) {
	// Build a random DAG and check that TopoOrder evaluates each gate only
	// after all its input drivers.
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder("dag")
	nets := b.InputBus("in", 8)
	for i := 0; i < 200; i++ {
		a := nets[rng.Intn(len(nets))]
		c := nets[rng.Intn(len(nets))]
		var o Net
		switch rng.Intn(4) {
		case 0:
			o = b.And(a, c)
		case 1:
			o = b.Or(a, c)
		case 2:
			o = b.Xor(a, c)
		default:
			o = b.Nand(a, c)
		}
		nets = append(nets, o)
	}
	b.Output("o", nets[len(nets)-1])
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Net]bool)
	for _, x := range n.PIs {
		seen[x] = true
	}
	for _, gi := range n.TopoOrder() {
		g := n.Gates[gi]
		for _, in := range g.In {
			if !seen[in] {
				t.Fatalf("gate %d consumes unresolved net %d", gi, in)
			}
		}
		seen[g.Out] = true
	}
	if len(n.TopoOrder()) != len(n.Gates) {
		t.Fatalf("topo order covers %d of %d gates", len(n.TopoOrder()), len(n.Gates))
	}
}

// Property: for random 2-input gate trees, 64-lane parallel evaluation in a
// single Eval equals 64 independent single-lane evaluations.
func TestQuickParallelEquivalence(t *testing.T) {
	n := buildFullAdder(t)
	pa, _ := n.InputPort("a")
	pb, _ := n.InputPort("b")
	pc, _ := n.InputPort("ci")
	ps, _ := n.OutputPort("sum")
	pco, _ := n.OutputPort("co")
	f := func(aw, bw, cw uint64) bool {
		par := NewState(n)
		par.SetInput(pa.Nets[0], aw)
		par.SetInput(pb.Nets[0], bw)
		par.SetInput(pc.Nets[0], cw)
		par.Eval()
		for lane := 0; lane < 64; lane++ {
			seq := NewState(n)
			seq.SetInputBus(pa, aw>>uint(lane)&1)
			seq.SetInputBus(pb, bw>>uint(lane)&1)
			seq.SetInputBus(pc, cw>>uint(lane)&1)
			seq.Eval()
			if seq.OutputBusValue(ps, 0) != par.OutputBusValue(ps, lane) ||
				seq.OutputBusValue(pco, 0) != par.OutputBusValue(pco, lane) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGateAreaDelayTablesTotal(t *testing.T) {
	for ty := GateType(0); ty < numGateTypes; ty++ {
		for _, fanin := range []int{1, 2, 3, 7} {
			if ty == Mux2 && fanin != 3 {
				continue
			}
			a, d := GateArea(ty, fanin), GateDelay(ty, fanin)
			if a < 0 || d < 0 {
				t.Fatalf("%v fanin=%d: negative cost a=%f d=%f", ty, fanin, a, d)
			}
			if ty != Const0 && ty != Const1 && (a == 0 || d == 0) {
				t.Fatalf("%v fanin=%d: zero cost a=%f d=%f", ty, fanin, a, d)
			}
		}
	}
}

func TestAccessorsAndHelpers(t *testing.T) {
	b := NewBuilder("acc")
	a := b.InputBus("a", 2)
	c := b.InputBus("c", 2)
	sel := b.Input("s")
	m := b.MuxBus(sel, a, c)
	q := b.DFFBus("r", m, false)
	b.OutputBus("q", q)
	b.Name(m[0], "muxed0")
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if n.NetName(m[0]) != "muxed0" {
		t.Errorf("net name not recorded: %q", n.NetName(m[0]))
	}
	// Driver/Level/Depth accessors.
	if n.Driver(m[0]).Kind != DriverGate {
		t.Error("mux output not driven by a gate")
	}
	if n.Depth() < 1 {
		t.Error("depth must be at least one gate level")
	}
	for _, gi := range n.TopoOrder() {
		if n.Level(gi) < 0 || n.Level(gi) > n.Depth() {
			t.Fatalf("gate %d level %d outside [0,%d]", gi, n.Level(gi), n.Depth())
		}
	}
	// State access: SetFF/FFWord/Word/Cycle/BusValue.
	st := NewState(n)
	pa, _ := n.InputPort("a")
	pc, _ := n.InputPort("c")
	ps, _ := n.InputPort("s")
	st.SetInputBus(pa, 0b01)
	st.SetInputBus(pc, 0b10)
	st.SetInputBus(ps, 1)
	st.Cycle()
	st.Eval()
	pq, _ := n.OutputPort("q")
	if got := st.OutputBusValue(pq, 0); got != 0b10 {
		t.Errorf("muxed register q=%02b, want 10", got)
	}
	if got := st.BusValue(pq.Nets, 0); got != 0b10 {
		t.Errorf("BusValue=%02b, want 10", got)
	}
	st.SetFF(0, 1)
	if st.FFWord(0) != 1 {
		t.Error("SetFF/FFWord roundtrip failed")
	}
	st.Eval()
	if st.Word(n.FFs[0].Q)&1 != 1 {
		t.Error("Word does not reflect poked FF")
	}
}

func TestMuxBusWidthMismatch(t *testing.T) {
	b := NewBuilder("mm")
	a := b.InputBus("a", 2)
	c := b.InputBus("c", 3)
	sel := b.Input("s")
	b.MuxBus(sel, a, c)
	if b.Err() == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestDriveBusMismatch(t *testing.T) {
	b := NewBuilder("db")
	w := b.WireBus("w", 2)
	a := b.Input("a")
	b.DriveBus(w, []Net{a})
	if b.Err() == nil {
		t.Fatal("DriveBus width mismatch accepted")
	}
}
