package netlist

import (
	"fmt"
	"sort"
)

// Builder incrementally constructs a Netlist. All gate constructors return
// the freshly driven output net. Feedback through flip-flops is expressed
// by declaring the flip-flop first (obtaining its Q net) and connecting its
// D input later via SetD.
type Builder struct {
	name    string
	gates   []Gate
	ffs     []FF
	inPorts []Port
	outPort []Port
	netName []string
	drivers []Driver
	numPIs  int
	err     error
}

// NewBuilder returns a Builder for a netlist with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("netlist %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) newNet(name string) Net {
	n := Net(len(b.drivers))
	b.drivers = append(b.drivers, Driver{Kind: DriverNone})
	b.netName = append(b.netName, name)
	return n
}

// Input declares a single-bit primary input and returns its net.
func (b *Builder) Input(name string) Net {
	return b.InputBus(name, 1)[0]
}

// InputBus declares a width-bit primary input port (LSB first).
func (b *Builder) InputBus(name string, width int) []Net {
	if width < 1 {
		b.fail("input %q: width %d < 1", name, width)
		width = 1
	}
	nets := make([]Net, width)
	for i := range nets {
		nm := name
		if width > 1 {
			nm = fmt.Sprintf("%s[%d]", name, i)
		}
		nets[i] = b.newNet(nm)
		b.drivers[nets[i]] = Driver{Kind: DriverPI, Index: int32(b.numPIs)}
		b.numPIs++
	}
	b.inPorts = append(b.inPorts, Port{Name: name, Nets: nets})
	return nets
}

// Output declares a single-bit primary output connected to net x.
func (b *Builder) Output(name string, x Net) {
	b.OutputBus(name, []Net{x})
}

// OutputBus declares a multi-bit primary output port (LSB first).
func (b *Builder) OutputBus(name string, nets []Net) {
	for i, x := range nets {
		if x == InvalidNet {
			b.fail("output %q bit %d: invalid net", name, i)
			return
		}
	}
	b.outPort = append(b.outPort, Port{Name: name, Nets: append([]Net(nil), nets...)})
}

// FFDecl declares a flip-flop whose D input will be connected later with
// SetD. It returns the Q net and the flip-flop index.
func (b *Builder) FFDecl(name string, init bool) (Net, int) {
	q := b.newNet(name + ".q")
	idx := len(b.ffs)
	b.ffs = append(b.ffs, FF{Name: name, D: InvalidNet, Q: q, Init: init})
	b.drivers[q] = Driver{Kind: DriverFF, Index: int32(idx)}
	return q, idx
}

// SetD connects the D input of a previously declared flip-flop.
func (b *Builder) SetD(ff int, d Net) {
	if ff < 0 || ff >= len(b.ffs) {
		b.fail("SetD: flip-flop index %d out of range", ff)
		return
	}
	if b.ffs[ff].D != InvalidNet {
		b.fail("SetD: flip-flop %q already connected", b.ffs[ff].Name)
		return
	}
	b.ffs[ff].D = d
}

// DFF declares a flip-flop with D already connected and returns its Q net.
func (b *Builder) DFF(name string, d Net, init bool) Net {
	q, idx := b.FFDecl(name, init)
	b.SetD(idx, d)
	return q
}

// DFFBus declares a bank of width flip-flops fed by the nets in d and
// returns the Q nets.
func (b *Builder) DFFBus(name string, d []Net, init bool) []Net {
	q := make([]Net, len(d))
	for i := range d {
		q[i] = b.DFF(fmt.Sprintf("%s[%d]", name, i), d[i], init)
	}
	return q
}

func (b *Builder) gate(t GateType, name string, in ...Net) Net {
	for i, x := range in {
		if x == InvalidNet || int(x) >= len(b.drivers) {
			b.fail("%s gate: input %d is invalid", t, i)
			return b.newNet(name)
		}
	}
	out := b.newNet(name)
	b.drivers[out] = Driver{Kind: DriverGate, Index: int32(len(b.gates))}
	b.gates = append(b.gates, Gate{Type: t, Out: out, In: append([]Net(nil), in...)})
	return out
}

// Const returns a constant-0 or constant-1 net.
func (b *Builder) Const(v bool) Net {
	if v {
		return b.gate(Const1, "const1")
	}
	return b.gate(Const0, "const0")
}

// Buf returns a buffered copy of a.
func (b *Builder) Buf(a Net) Net { return b.gate(Buf, "", a) }

// Not returns the inversion of a.
func (b *Builder) Not(a Net) Net { return b.gate(Not, "", a) }

// And returns the conjunction of the inputs (fan-in >= 1).
func (b *Builder) And(in ...Net) Net { return b.nary(And, in) }

// Or returns the disjunction of the inputs (fan-in >= 1).
func (b *Builder) Or(in ...Net) Net { return b.nary(Or, in) }

// Nand returns the inverted conjunction of the inputs.
func (b *Builder) Nand(in ...Net) Net { return b.nary(Nand, in) }

// Nor returns the inverted disjunction of the inputs.
func (b *Builder) Nor(in ...Net) Net { return b.nary(Nor, in) }

// Xor returns the parity of the inputs.
func (b *Builder) Xor(in ...Net) Net { return b.nary(Xor, in) }

// Xnor returns the inverted parity of the inputs.
func (b *Builder) Xnor(in ...Net) Net { return b.nary(Xnor, in) }

func (b *Builder) nary(t GateType, in []Net) Net {
	if len(in) == 0 {
		b.fail("%s gate with no inputs", t)
		return b.newNet("")
	}
	return b.gate(t, "", in...)
}

// Mux returns a0 when sel is 0 and a1 when sel is 1.
func (b *Builder) Mux(sel, a0, a1 Net) Net {
	return b.gate(Mux2, "", sel, a0, a1)
}

// MuxBus muxes two equal-width buses bit by bit.
func (b *Builder) MuxBus(sel Net, a0, a1 []Net) []Net {
	if len(a0) != len(a1) {
		b.fail("MuxBus: width mismatch %d vs %d", len(a0), len(a1))
		return a0
	}
	out := make([]Net, len(a0))
	for i := range a0 {
		out[i] = b.Mux(sel, a0[i], a1[i])
	}
	return out
}

// Wire forward-declares a net whose driver is connected later with Drive —
// the mechanism for assembling mutually referential structures (buses
// reading component outputs that themselves sample the buses through
// registers). Internally the wire is a buffer whose input is bound by
// Drive; Build fails on undriven wires.
func (b *Builder) Wire(name string) Net {
	out := b.newNet(name)
	b.drivers[out] = Driver{Kind: DriverGate, Index: int32(len(b.gates))}
	b.gates = append(b.gates, Gate{Type: Buf, Out: out, In: []Net{InvalidNet}})
	return out
}

// WireBus forward-declares a bank of wires.
func (b *Builder) WireBus(name string, width int) []Net {
	nets := make([]Net, width)
	for i := range nets {
		nets[i] = b.Wire(fmt.Sprintf("%s[%d]", name, i))
	}
	return nets
}

// Drive connects the source of a previously declared Wire.
func (b *Builder) Drive(w Net, src Net) {
	if w < 0 || int(w) >= len(b.drivers) {
		b.fail("Drive: invalid wire %d", w)
		return
	}
	d := b.drivers[w]
	if d.Kind != DriverGate || b.gates[d.Index].Type != Buf || len(b.gates[d.Index].In) != 1 {
		b.fail("Drive: net %s is not a wire", b.netName[w])
		return
	}
	if b.gates[d.Index].In[0] != InvalidNet {
		b.fail("Drive: wire %s already driven", b.netName[w])
		return
	}
	if src == InvalidNet || int(src) >= len(b.drivers) {
		b.fail("Drive: invalid source for wire %s", b.netName[w])
		return
	}
	b.gates[d.Index].In[0] = src
}

// DriveBus connects a bank of wires to sources.
func (b *Builder) DriveBus(ws, srcs []Net) {
	if len(ws) != len(srcs) {
		b.fail("DriveBus: width mismatch %d vs %d", len(ws), len(srcs))
		return
	}
	for i := range ws {
		b.Drive(ws[i], srcs[i])
	}
}

// Name attaches a debug name to an existing net.
func (b *Builder) Name(x Net, name string) {
	if x >= 0 && int(x) < len(b.netName) {
		b.netName[x] = name
	}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Build validates and levelizes the netlist. After Build the Builder must
// not be reused.
func (b *Builder) Build() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := &Netlist{
		Name:        b.name,
		Gates:       b.gates,
		FFs:         b.ffs,
		InputPorts:  b.inPorts,
		OutputPorts: b.outPort,
		numNets:     len(b.drivers),
		netName:     b.netName,
		drivers:     b.drivers,
	}
	for _, p := range b.inPorts {
		n.PIs = append(n.PIs, p.Nets...)
	}
	for _, p := range b.outPort {
		n.POs = append(n.POs, p.Nets...)
	}
	for i, ff := range n.FFs {
		if ff.D == InvalidNet {
			return nil, fmt.Errorf("netlist %q: flip-flop %q (index %d) has unconnected D", b.name, ff.Name, i)
		}
	}
	for x, d := range n.drivers {
		if d.Kind == DriverNone {
			return nil, fmt.Errorf("netlist %q: net %s is undriven", b.name, n.NetName(Net(x)))
		}
	}
	for gi, g := range n.Gates {
		for pin, in := range g.In {
			if in == InvalidNet {
				return nil, fmt.Errorf("netlist %q: gate %d (%s -> %s) has unconnected input %d (undriven wire?)",
					b.name, gi, g.Type, n.NetName(g.Out), pin)
			}
		}
	}
	if err := n.levelize(); err != nil {
		return nil, err
	}
	return n, nil
}

// levelize computes a topological order of gates, treating primary inputs
// and flip-flop Q outputs as sources. It fails on combinational cycles.
func (n *Netlist) levelize() error {
	pending := make([]int32, len(n.Gates)) // unresolved input count per gate
	fan := n.FanoutTable()
	ready := make([]int32, 0, len(n.Gates))
	level := make([]int32, len(n.Gates))

	netLevel := make([]int32, n.numNets)
	resolved := make([]bool, n.numNets)
	for _, x := range n.PIs {
		resolved[x] = true
	}
	for _, ff := range n.FFs {
		resolved[ff.Q] = true
	}
	for gi, g := range n.Gates {
		cnt := int32(0)
		for _, in := range g.In {
			if !resolved[in] {
				cnt++
			}
		}
		pending[gi] = cnt
		if cnt == 0 {
			ready = append(ready, int32(gi))
		}
	}
	order := make([]int32, 0, len(n.Gates))
	for len(ready) > 0 {
		gi := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		g := &n.Gates[gi]
		lv := int32(0)
		for _, in := range g.In {
			if netLevel[in]+1 > lv {
				lv = netLevel[in] + 1
			}
		}
		if len(g.In) == 0 { // constants
			lv = 0
		}
		level[gi] = lv
		netLevel[g.Out] = lv
		if lv > n.maxLevel {
			n.maxLevel = lv
		}
		order = append(order, gi)
		resolved[g.Out] = true
		for _, ld := range fan[g.Out] {
			pending[ld.Gate]--
			if pending[ld.Gate] == 0 {
				// Only schedule once all inputs resolved; pending tracked
				// per unresolved input occurrence, so recheck cheaply.
				all := true
				for _, in := range n.Gates[ld.Gate].In {
					if !resolved[in] {
						all = false
						break
					}
				}
				if all {
					ready = append(ready, ld.Gate)
				}
			}
		}
	}
	if len(order) != len(n.Gates) {
		// Identify one gate in the cycle for the error message.
		var stuck []string
		for gi, p := range pending {
			if p > 0 {
				stuck = append(stuck, fmt.Sprintf("%s->%s", n.Gates[gi].Type, n.NetName(n.Gates[gi].Out)))
				if len(stuck) >= 4 {
					break
				}
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("netlist %q: combinational cycle involving %v", n.Name, stuck)
	}
	n.order = order
	n.level = level
	return nil
}
