package netlist

import "fmt"

// State holds 64 parallel evaluation contexts for one netlist: every net
// carries a 64-bit word, bit k belonging to pattern k. This is the classic
// parallel-pattern representation used for fast logic and fault simulation.
type State struct {
	n     *Netlist
	words []uint64 // per-net values
	ffQ   []uint64 // latched flip-flop state (mirrors words at Q nets)
}

// NewState allocates an evaluation state with flip-flops at their declared
// init values (replicated across all 64 pattern lanes).
func NewState(n *Netlist) *State {
	s := &State{
		n:     n,
		words: make([]uint64, n.numNets),
		ffQ:   make([]uint64, len(n.FFs)),
	}
	s.ResetFFs()
	return s
}

// ResetFFs forces every flip-flop back to its declared init value in all
// lanes.
func (s *State) ResetFFs() {
	for i, ff := range s.n.FFs {
		v := uint64(0)
		if ff.Init {
			v = ^uint64(0)
		}
		s.ffQ[i] = v
	}
}

// SetInput assigns the 64-lane word of a primary input net.
func (s *State) SetInput(x Net, w uint64) {
	s.words[x] = w
}

// SetInputBus assigns an integer value to an input port in every lane k for
// which the corresponding bit in lanes is set; lanes==^0 assigns all lanes.
// Bit i of value goes to port net i.
func (s *State) SetInputBus(p Port, value uint64) {
	for i, x := range p.Nets {
		if value>>uint(i)&1 == 1 {
			s.words[x] = ^uint64(0)
		} else {
			s.words[x] = 0
		}
	}
}

// SetInputPattern assigns bit `lane` of each input-port net from value.
func (s *State) SetInputPattern(p Port, value uint64, lane int) {
	m := uint64(1) << uint(lane)
	for i, x := range p.Nets {
		if value>>uint(i)&1 == 1 {
			s.words[x] |= m
		} else {
			s.words[x] &^= m
		}
	}
}

// Word returns the 64-lane word currently on a net (valid after Eval).
func (s *State) Word(x Net) uint64 { return s.words[x] }

// SetFF overrides the latched state of flip-flop index i (all lanes).
func (s *State) SetFF(i int, w uint64) { s.ffQ[i] = w }

// FFWord returns the latched 64-lane state of flip-flop index i.
func (s *State) FFWord(i int) uint64 { return s.ffQ[i] }

// Eval propagates the current primary-input words and latched flip-flop
// state through the combinational logic. It does not clock the flip-flops.
// Gate evaluation walks the cached structure-of-arrays view (Flat) in
// level-major order — contiguous type/pin/out arrays instead of Gate
// pointers — which is a valid topological order, so results are identical
// to the original gate-list walk.
func (s *State) Eval() {
	n := s.n
	for i, ff := range n.FFs {
		s.words[ff.Q] = s.ffQ[i]
	}
	n.Flat().Eval64(s.words)
}

// Step clocks every flip-flop: Q <- D using the most recent Eval results.
// Callers must Eval first.
func (s *State) Step() {
	for i, ff := range s.n.FFs {
		s.ffQ[i] = s.words[ff.D]
	}
}

// Cycle performs Eval followed by Step, i.e. one full clock cycle.
func (s *State) Cycle() {
	s.Eval()
	s.Step()
}

// OutputBusValue decodes the value of a multi-bit output port in a single
// lane into an integer (bit i of the result from port net i).
func (s *State) OutputBusValue(p Port, lane int) uint64 {
	var v uint64
	m := uint64(1) << uint(lane)
	for i, x := range p.Nets {
		if s.words[x]&m != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// BusValue is OutputBusValue for any set of nets (after Eval).
func (s *State) BusValue(nets []Net, lane int) uint64 {
	var v uint64
	m := uint64(1) << uint(lane)
	for i, x := range nets {
		if s.words[x]&m != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// EvalFunc evaluates the netlist as a pure combinational function: inputs
// is a map from input-port name to integer value; the return maps every
// output-port name to its decoded integer value. Flip-flop state is taken
// from (and updated into) st when st is non-nil; otherwise a throwaway
// state with init values is used. Only lane 0 is meaningful.
func EvalFunc(n *Netlist, inputs map[string]uint64, st *State) (map[string]uint64, error) {
	if st == nil {
		st = NewState(n)
	}
	for name, v := range inputs {
		p, ok := n.InputPort(name)
		if !ok {
			return nil, fmt.Errorf("netlist %q: no input port %q", n.Name, name)
		}
		st.SetInputBus(p, v)
	}
	st.Eval()
	out := make(map[string]uint64, len(n.OutputPorts))
	for _, p := range n.OutputPorts {
		out[p.Name] = st.OutputBusValue(p, 0)
	}
	return out, nil
}
