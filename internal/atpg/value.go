// Package atpg implements single-stuck-at test pattern generation for the
// gate-level component library: fault universe construction with
// equivalence collapsing, 64-way parallel-pattern fault simulation, a
// 5-valued PODEM deterministic generator, and a driver that combines a
// random-pattern phase, deterministic top-up and reverse-order compaction.
//
// All circuits are handled in the full-scan view: primary inputs and
// flip-flop Q outputs are controllable, primary outputs and flip-flop D
// inputs are observable. For TTA components this is exactly the functional
// view as well — the O, T and R registers sit on the MOVE buses, which is
// the paper's reason the same structural patterns can be applied without
// scan chains.
package atpg

// v3 is a 3-valued logic value: 0, 1 or unknown.
type v3 uint8

// 3-valued constants.
const (
	v0 v3 = 0
	v1 v3 = 1
	vX v3 = 2
)

func (v v3) String() string {
	switch v {
	case v0:
		return "0"
	case v1:
		return "1"
	default:
		return "X"
	}
}

func notV3(a v3) v3 {
	switch a {
	case v0:
		return v1
	case v1:
		return v0
	default:
		return vX
	}
}

func andV3(a, b v3) v3 {
	if a == v0 || b == v0 {
		return v0
	}
	if a == vX || b == vX {
		return vX
	}
	return v1
}

func orV3(a, b v3) v3 {
	if a == v1 || b == v1 {
		return v1
	}
	if a == vX || b == vX {
		return vX
	}
	return v0
}

func xorV3(a, b v3) v3 {
	if a == vX || b == vX {
		return vX
	}
	return a ^ b
}

func muxV3(sel, a0, a1 v3) v3 {
	switch sel {
	case v0:
		return a0
	case v1:
		return a1
	default:
		if a0 == a1 && a0 != vX {
			return a0
		}
		return vX
	}
}

// val5 is the composite good/faulty pair used by PODEM's D-calculus:
// D = (good 1, faulty 0), D' = (good 0, faulty 1).
type val5 struct {
	g v3 // good-machine component
	f v3 // faulty-machine component
}

// enc5 packs a val5 into a table index in [0, 9).
func enc5(v val5) uint8 { return uint8(v.g)*3 + uint8(v.f) }

// Pairwise lookup tables over packed val5 indices: one branch-free load
// combines the good and faulty components at once, which matters in the
// gate-evaluation fold — the innermost loop of PODEM's implication.
var (
	and5Tab, or5Tab, xor5Tab [81]uint8
	not5Tab                  [9]uint8
	dec5Tab                  [9]val5
)

func init() {
	for a := 0; a < 9; a++ {
		av := val5{v3(a / 3), v3(a % 3)}
		dec5Tab[a] = av
		not5Tab[a] = enc5(val5{notV3(av.g), notV3(av.f)})
		for b := 0; b < 9; b++ {
			bv := val5{v3(b / 3), v3(b % 3)}
			and5Tab[a*9+b] = enc5(val5{andV3(av.g, bv.g), andV3(av.f, bv.f)})
			or5Tab[a*9+b] = enc5(val5{orV3(av.g, bv.g), orV3(av.f, bv.f)})
			xor5Tab[a*9+b] = enc5(val5{xorV3(av.g, bv.g), xorV3(av.f, bv.f)})
		}
	}
}

var (
	vv0 = val5{v0, v0}
	vv1 = val5{v1, v1}
	vvX = val5{vX, vX}
)

func (v val5) isD() bool    { return v.g == v1 && v.f == v0 }
func (v val5) isDbar() bool { return v.g == v0 && v.f == v1 }

// hasFaultEffect reports whether the good and faulty components are both
// known and differ.
func (v val5) hasFaultEffect() bool { return v.isD() || v.isDbar() }

func (v val5) String() string {
	switch {
	case v.isD():
		return "D"
	case v.isDbar():
		return "D'"
	case v.g == v.f:
		return v.g.String()
	default:
		return v.g.String() + "/" + v.f.String()
	}
}
