package atpg

import "repro/internal/netlist"

// SCOAP testability analysis (Goldstein's combinational measures), in the
// full-scan view used throughout this package: primary inputs and
// flip-flop Q outputs are perfectly controllable, primary outputs and
// flip-flop D inputs perfectly observable. The paper's discussion of
// testability measures ([8], [9]) motivates this module: the measures are
// computed per net, summarized per component, optionally used to guide
// PODEM's backtrace, and correlated with random-pattern resistance.

// Scoap holds the per-net measures: CC0/CC1 are the controllability costs
// of forcing the net to 0/1, CO the observability cost of propagating its
// value to an observable point. Higher is harder.
type Scoap struct {
	N   *netlist.Netlist
	CC0 []int32
	CC1 []int32
	CO  []int32
}

const scoapInf = int32(1) << 28

// ComputeScoap evaluates the SCOAP measures for every net.
func ComputeScoap(n *netlist.Netlist) *Scoap {
	s := &Scoap{
		N:   n,
		CC0: make([]int32, n.NumNets()),
		CC1: make([]int32, n.NumNets()),
		CO:  make([]int32, n.NumNets()),
	}
	for i := range s.CC0 {
		s.CC0[i] = scoapInf
		s.CC1[i] = scoapInf
		s.CO[i] = scoapInf
	}
	for _, pi := range n.PIs {
		s.CC0[pi], s.CC1[pi] = 1, 1
	}
	for _, ff := range n.FFs {
		s.CC0[ff.Q], s.CC1[ff.Q] = 1, 1
	}
	// Controllability: forward pass in topological order.
	for _, gi := range n.TopoOrder() {
		g := &n.Gates[gi]
		s.CC0[g.Out], s.CC1[g.Out] = gateCC(s, g)
	}
	// Observability: backward pass.
	for _, po := range n.POs {
		s.CO[po] = 0
	}
	for _, ff := range n.FFs {
		if s.CO[ff.D] > 0 {
			s.CO[ff.D] = 0
		}
	}
	order := n.TopoOrder()
	for k := len(order) - 1; k >= 0; k-- {
		g := &n.Gates[order[k]]
		outCO := s.CO[g.Out]
		if outCO >= scoapInf {
			continue
		}
		for pin, in := range g.In {
			co := pinCO(s, g, pin, outCO)
			if co < s.CO[in] {
				s.CO[in] = co // fanout stems take the cheapest branch
			}
		}
	}
	return s
}

func satAdd(a, b int32) int32 {
	c := a + b
	if c > scoapInf {
		return scoapInf
	}
	return c
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// gateCC computes (CC0, CC1) of a gate output from its inputs.
func gateCC(s *Scoap, g *netlist.Gate) (int32, int32) {
	switch g.Type {
	case netlist.Const0:
		return 1, scoapInf
	case netlist.Const1:
		return scoapInf, 1
	case netlist.Buf:
		return satAdd(s.CC0[g.In[0]], 1), satAdd(s.CC1[g.In[0]], 1)
	case netlist.Not:
		return satAdd(s.CC1[g.In[0]], 1), satAdd(s.CC0[g.In[0]], 1)
	case netlist.And, netlist.Nand:
		all1 := int32(0)
		min0 := scoapInf
		for _, in := range g.In {
			all1 = satAdd(all1, s.CC1[in])
			min0 = min32(min0, s.CC0[in])
		}
		c0 := satAdd(min0, 1) // any input at 0
		c1 := satAdd(all1, 1) // all inputs at 1
		if g.Type == netlist.Nand {
			return c1, c0
		}
		return c0, c1
	case netlist.Or, netlist.Nor:
		all0 := int32(0)
		min1 := scoapInf
		for _, in := range g.In {
			all0 = satAdd(all0, s.CC0[in])
			min1 = min32(min1, s.CC1[in])
		}
		c0 := satAdd(all0, 1)
		c1 := satAdd(min1, 1)
		if g.Type == netlist.Nor {
			return c1, c0
		}
		return c0, c1
	case netlist.Xor, netlist.Xnor:
		// Dynamic programming over parity: cost of achieving even/odd
		// parity across the inputs.
		even, odd := int32(0), scoapInf
		for _, in := range g.In {
			e2 := min32(satAdd(even, s.CC0[in]), satAdd(odd, s.CC1[in]))
			o2 := min32(satAdd(even, s.CC1[in]), satAdd(odd, s.CC0[in]))
			even, odd = e2, o2
		}
		c0 := satAdd(even, 1)
		c1 := satAdd(odd, 1)
		if g.Type == netlist.Xnor {
			return c1, c0
		}
		return c0, c1
	case netlist.Mux2:
		sel, a0, a1 := g.In[0], g.In[1], g.In[2]
		// 0 via (sel=0, a0=0) or (sel=1, a1=0); dually for 1.
		c0 := min32(satAdd(s.CC0[sel], s.CC0[a0]), satAdd(s.CC1[sel], s.CC0[a1]))
		c1 := min32(satAdd(s.CC0[sel], s.CC1[a0]), satAdd(s.CC1[sel], s.CC1[a1]))
		return satAdd(c0, 1), satAdd(c1, 1)
	default:
		return scoapInf, scoapInf
	}
}

// pinCO computes the observability of input pin `pin` through the gate.
func pinCO(s *Scoap, g *netlist.Gate, pin int, outCO int32) int32 {
	cost := satAdd(outCO, 1)
	switch g.Type {
	case netlist.Buf, netlist.Not:
		return cost
	case netlist.And, netlist.Nand:
		for j, in := range g.In {
			if j != pin {
				cost = satAdd(cost, s.CC1[in]) // side inputs non-controlling
			}
		}
		return cost
	case netlist.Or, netlist.Nor:
		for j, in := range g.In {
			if j != pin {
				cost = satAdd(cost, s.CC0[in])
			}
		}
		return cost
	case netlist.Xor, netlist.Xnor:
		for j, in := range g.In {
			if j != pin {
				cost = satAdd(cost, min32(s.CC0[in], s.CC1[in]))
			}
		}
		return cost
	case netlist.Mux2:
		sel, a0, a1 := g.In[0], g.In[1], g.In[2]
		switch pin {
		case 0: // select observable when the data inputs differ
			d := min32(satAdd(s.CC0[a0], s.CC1[a1]), satAdd(s.CC1[a0], s.CC0[a1]))
			return satAdd(cost, d)
		case 1:
			return satAdd(cost, s.CC0[sel])
		default:
			return satAdd(cost, s.CC1[sel])
		}
	default:
		return scoapInf
	}
}

// FaultCost estimates how hard a stuck-at fault is to test: the cost of
// forcing the site to the opposite value plus the cost of observing it.
func (s *Scoap) FaultCost(f Fault) int32 {
	g := &s.N.Gates[f.Gate]
	site := g.Out
	if f.Pin >= 0 {
		site = g.In[f.Pin]
	}
	var activate int32
	if f.SA == 0 {
		activate = s.CC1[site]
	} else {
		activate = s.CC0[site]
	}
	observe := s.CO[site]
	if f.Pin >= 0 {
		// Pin faults observe through this specific gate.
		observe = pinCO(s, g, int(f.Pin), s.CO[g.Out])
	}
	return satAdd(activate, observe)
}

// Summary aggregates the measures over a netlist.
type ScoapSummary struct {
	MaxCC  int32
	MeanCC float64
	MaxCO  int32
	MeanCO float64
}

// Summarize reports aggregate controllability/observability over all
// gate-output nets.
func (s *Scoap) Summarize() ScoapSummary {
	var sum ScoapSummary
	nCC, nCO := 0, 0
	var accCC, accCO float64
	for _, g := range s.N.Gates {
		cc := min32(s.CC0[g.Out], s.CC1[g.Out])
		if cc < scoapInf {
			accCC += float64(cc)
			nCC++
			if cc > sum.MaxCC {
				sum.MaxCC = cc
			}
		}
		co := s.CO[g.Out]
		if co < scoapInf {
			accCO += float64(co)
			nCO++
			if co > sum.MaxCO {
				sum.MaxCO = co
			}
		}
	}
	if nCC > 0 {
		sum.MeanCC = accCC / float64(nCC)
	}
	if nCO > 0 {
		sum.MeanCO = accCO / float64(nCO)
	}
	return sum
}
