package atpg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/netlist"
)

func buildSmall(t *testing.T) *netlist.Netlist {
	t.Helper()
	// y = (a & b) | ~c ; z = a ^ c
	b := netlist.NewBuilder("small")
	a := b.Input("a")
	x := b.Input("b")
	c := b.Input("c")
	b.Output("y", b.Or(b.And(a, x), b.Not(c)))
	b.Output("z", b.Xor(a, c))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestUniverseCountsAndCollapse(t *testing.T) {
	n := buildSmall(t)
	u := NewUniverse(n)
	if u.Uncollapsed == 0 || len(u.Faults) == 0 {
		t.Fatal("empty fault universe")
	}
	if len(u.Faults) >= u.Uncollapsed {
		t.Fatalf("collapsing had no effect: %d vs %d", len(u.Faults), u.Uncollapsed)
	}
	// Class sizes must account for every uncollapsed fault.
	sum := 0
	for i := range u.Faults {
		sum += u.ClassSize(i)
	}
	if sum != u.Uncollapsed {
		t.Fatalf("class sizes sum to %d, want %d", sum, u.Uncollapsed)
	}
	if r := u.CollapseRatio(); r <= 0 || r >= 1 {
		t.Fatalf("collapse ratio %f out of (0,1)", r)
	}
}

func TestConstGatesExcluded(t *testing.T) {
	b := netlist.NewBuilder("consts")
	a := b.Input("a")
	b.Output("y", b.And(a, b.Const(true)))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniverse(n)
	for _, f := range u.Faults {
		g := n.Gates[f.Gate]
		if g.Type == netlist.Const0 || g.Type == netlist.Const1 {
			t.Fatalf("fault %v placed on a constant gate", f)
		}
	}
}

// exhaustiveDetects checks by brute force whether any input vector
// distinguishes the faulty circuit — ground truth for redundancy claims.
func exhaustiveDetects(n *netlist.Netlist, f Fault) bool {
	sim := NewSimulator(n)
	nc := sim.NumControls()
	if nc > 16 {
		panic("circuit too wide for exhaustive check")
	}
	total := 1 << uint(nc)
	for base := 0; base < total; base += 64 {
		var block []Pattern
		for k := 0; k < 64 && base+k < total; k++ {
			v := base + k
			p := make(Pattern, nc)
			for i := 0; i < nc; i++ {
				p[i] = uint8(v >> uint(i) & 1)
			}
			block = append(block, p)
		}
		sim.LoadBlock(block)
		if sim.Detects(f) != 0 {
			return true
		}
	}
	return false
}

func TestPodemAgreesWithExhaustiveOnSmallCircuit(t *testing.T) {
	n := buildSmall(t)
	u := NewUniverse(n)
	sim := NewSimulator(n)
	eng := newPodem(sim.t, 1000)
	for _, f := range u.Faults {
		asg, outcome := eng.generate(f)
		truth := exhaustiveDetects(n, f)
		switch outcome {
		case podemFound:
			if !truth {
				t.Fatalf("PODEM claims test for untestable fault %v", f)
			}
			// Verify the generated pattern actually detects the fault for
			// every don't-care fill.
			for fill := 0; fill < 4; fill++ {
				rng := rand.New(rand.NewSource(int64(fill)))
				pat := fillPattern(asg, rng)
				sim.LoadBlock([]Pattern{pat})
				if sim.Detects(f) == 0 {
					t.Fatalf("PODEM pattern %v misses fault %v (fill %d)", pat, f, fill)
				}
			}
		case podemRedundant:
			if truth {
				t.Fatalf("PODEM claims fault %v redundant but it is testable", f)
			}
		case podemAborted:
			t.Fatalf("PODEM aborted on trivial circuit for fault %v", f)
		}
	}
}

func TestPodemRedundantFaultViaConstant(t *testing.T) {
	// y = a & 1: the AND input pin fed by const1 is untestable stuck-at-1.
	b := netlist.NewBuilder("red")
	a := b.Input("a")
	one := b.Const(true)
	b.Output("y", b.And(a, one))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Find the AND gate and its const input pin.
	var f Fault
	found := false
	for gi, g := range n.Gates {
		if g.Type == netlist.And {
			for pin, in := range g.In {
				if d := n.Driver(in); d.Kind == netlist.DriverGate &&
					n.Gates[d.Index].Type == netlist.Const1 {
					f = Fault{Gate: int32(gi), Pin: int8(pin), SA: 1}
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("test circuit lacks expected structure")
	}
	sim := NewSimulator(n)
	eng := newPodem(sim.t, 1000)
	if _, outcome := eng.generate(f); outcome != podemRedundant {
		t.Fatalf("outcome %v, want redundant", outcome)
	}
}

func TestRunOnFullAdderFullCoverage(t *testing.T) {
	b := netlist.NewBuilder("fa")
	a := b.Input("a")
	x := b.Input("b")
	ci := b.Input("ci")
	s1 := b.Xor(a, x)
	b.Output("sum", b.Xor(s1, ci))
	b.Output("co", b.Or(b.And(a, x), b.And(s1, ci)))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Run(n, Config{Seed: 1})
	if res.Aborted != 0 {
		t.Fatalf("aborted faults on a full adder: %+v", res)
	}
	if res.Coverage() < 1.0 {
		t.Fatalf("coverage %.4f < 1 on full adder: %s", res.Coverage(), res)
	}
	if res.NumPatterns() == 0 || res.NumPatterns() > 8 {
		t.Fatalf("full adder n_p=%d, expected 1..8", res.NumPatterns())
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	n := buildSmall(t)
	r1 := Run(n, Config{Seed: 42})
	r2 := Run(n, Config{Seed: 42})
	if r1.NumPatterns() != r2.NumPatterns() || r1.Detected != r2.Detected {
		t.Fatalf("non-deterministic ATPG: %s vs %s", r1, r2)
	}
	if len(r1.Patterns) != len(r2.Patterns) {
		t.Fatal("pattern count mismatch")
	}
	for i := range r1.Patterns {
		for j := range r1.Patterns[i] {
			if r1.Patterns[i][j] != r2.Patterns[i][j] {
				t.Fatalf("pattern %d differs between identical runs", i)
			}
		}
	}
}

func TestCompactionNeverLosesCoverage(t *testing.T) {
	n := buildSmall(t)
	raw := Run(n, Config{Seed: 3, SkipCompaction: true})
	compact := Run(n, Config{Seed: 3})
	if compact.Detected != raw.Detected {
		t.Fatalf("compaction changed coverage: %d vs %d", compact.Detected, raw.Detected)
	}
	if compact.NumPatterns() > raw.NumPatterns() {
		t.Fatalf("compaction grew the test set: %d > %d", compact.NumPatterns(), raw.NumPatterns())
	}
	// Re-simulate the compacted set and confirm the detected count.
	u := NewUniverse(n)
	sim := NewSimulator(n)
	got := countDetected(sim, u, compact.Patterns)
	if got != compact.Detected {
		t.Fatalf("re-simulated coverage %d != reported %d", got, compact.Detected)
	}
}

func countDetected(sim *Simulator, u *Universe, pats []Pattern) int {
	detected := make([]bool, len(u.Faults))
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		sim.LoadBlock(pats[start:end])
		for fi := range u.Faults {
			if !detected[fi] && sim.Detects(u.Faults[fi]) != 0 {
				detected[fi] = true
			}
		}
	}
	n := 0
	for _, d := range detected {
		if d {
			n++
		}
	}
	return n
}

func TestRunOnALU8HighCoverage(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(alu.Comb, Config{Seed: 7})
	if res.Coverage() < 0.99 {
		t.Fatalf("ALU8 coverage %.4f < 0.99: %s", res.Coverage(), res)
	}
	if res.NumPatterns() < 10 {
		t.Fatalf("suspiciously few patterns for an 8-bit ALU: %s", res)
	}
	// Independent re-simulation must reproduce the claimed coverage.
	u := NewUniverse(alu.Comb)
	sim := NewSimulator(alu.Comb)
	if got := countDetected(sim, u, res.Patterns); got != res.Detected {
		t.Fatalf("re-simulated %d detected, reported %d", got, res.Detected)
	}
}

func TestPodemOnlyAblationStillCovers(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 4, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	deterministic := Run(alu.Comb, Config{Seed: 7, MaxRandomPatterns: -1})
	mixed := Run(alu.Comb, Config{Seed: 7})
	if deterministic.Coverage() < mixed.Coverage()-0.01 {
		t.Fatalf("PODEM-only coverage %.4f below mixed %.4f", deterministic.Coverage(), mixed.Coverage())
	}
	if deterministic.RandomDetected != 0 {
		t.Fatal("random detections reported in PODEM-only mode")
	}
}

func TestScanViewIncludesFlipFlopBoundaries(t *testing.T) {
	// A pipelined component exposes FF Qs as controls and FF Ds as
	// observables.
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 4, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(alu.Seq)
	wantCtrl := len(alu.Seq.PIs) + len(alu.Seq.FFs)
	if sim.NumControls() != wantCtrl {
		t.Fatalf("controls=%d want %d", sim.NumControls(), wantCtrl)
	}
	wantObs := len(alu.Seq.POs) + len(alu.Seq.FFs)
	if len(sim.Observables()) != wantObs {
		t.Fatalf("observables=%d want %d", len(sim.Observables()), wantObs)
	}
}

func TestSimulatorDetectsInjectedOutputFault(t *testing.T) {
	n := buildSmall(t)
	// Fault on the XOR output: z = a ^ c, stuck-at-0. Pattern a=1,c=0
	// gives z=1 good, 0 faulty.
	var xorGate int32 = -1
	for gi, g := range n.Gates {
		if g.Type == netlist.Xor {
			xorGate = int32(gi)
		}
	}
	if xorGate < 0 {
		t.Fatal("no xor gate")
	}
	sim := NewSimulator(n)
	pat := Pattern{1, 0, 0} // a, b, c
	sim.LoadBlock([]Pattern{pat})
	if sim.Detects(Fault{Gate: xorGate, Pin: PinOut, SA: 0}) == 0 {
		t.Fatal("output sa0 not detected by distinguishing pattern")
	}
	if sim.Detects(Fault{Gate: xorGate, Pin: PinOut, SA: 1}) != 0 {
		t.Fatal("sa1 wrongly detected by pattern that sets the line to 1")
	}
}

func TestValueAlgebra(t *testing.T) {
	if andV3(v1, vX) != vX || andV3(v0, vX) != v0 || orV3(v1, vX) != v1 || orV3(v0, vX) != vX {
		t.Fatal("3-valued and/or tables wrong")
	}
	if xorV3(v1, v1) != v0 || xorV3(v1, vX) != vX {
		t.Fatal("3-valued xor table wrong")
	}
	if muxV3(vX, v1, v1) != v1 || muxV3(vX, v0, v1) != vX || muxV3(v1, v0, v1) != v1 {
		t.Fatal("3-valued mux table wrong")
	}
	d := val5{v1, v0}
	if !d.isD() || d.isDbar() || !d.hasFaultEffect() {
		t.Fatal("D encoding broken")
	}
	if d.String() != "D" || (val5{v0, v1}).String() != "D'" {
		t.Fatal("val5 string broken")
	}
}

// fullDetects is the reference (pre-optimization) whole-netlist fault
// evaluation, kept in tests to A/B the cone-restricted fast path.
func fullDetects(s *Simulator, f Fault) uint64 {
	n := s.t.n
	work := make([]uint64, n.NumNets())
	for _, net := range s.t.ctrl {
		work[net] = s.good[net][0]
	}
	for _, gi := range n.TopoOrder() {
		g := &n.Gates[gi]
		var out uint64
		if f.Gate == gi && f.Pin >= 0 {
			out = evalGateWithPin(g, work, int(f.Pin), f.SA)
		} else {
			out = evalGateFast(g, work)
		}
		if f.Gate == gi && f.Pin == PinOut {
			if f.SA == 1 {
				out = ^uint64(0)
			} else {
				out = 0
			}
		}
		work[g.Out] = out
	}
	var diff uint64
	for _, o := range s.t.obs {
		diff |= work[o] ^ s.good[o][0]
	}
	return diff & s.valid[0]
}

// evalGateFast and evalGateWithPin are the retired gate-pointer scalar
// kernels, kept here as the independent reference implementation the
// flat-view engine is A/B-checked against.
func evalGateFast(g *netlist.Gate, w []uint64) uint64 {
	switch g.Type {
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^uint64(0)
	case netlist.Buf:
		return w[g.In[0]]
	case netlist.Not:
		return ^w[g.In[0]]
	case netlist.And, netlist.Nand:
		v := w[g.In[0]]
		for _, in := range g.In[1:] {
			v &= w[in]
		}
		if g.Type == netlist.Nand {
			v = ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := w[g.In[0]]
		for _, in := range g.In[1:] {
			v |= w[in]
		}
		if g.Type == netlist.Nor {
			v = ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := w[g.In[0]]
		for _, in := range g.In[1:] {
			v ^= w[in]
		}
		if g.Type == netlist.Xnor {
			v = ^v
		}
		return v
	default: // Mux2
		sel, a0, a1 := w[g.In[0]], w[g.In[1]], w[g.In[2]]
		return a0&^sel | a1&sel
	}
}

func evalGateWithPin(g *netlist.Gate, w []uint64, pin int, sa uint8) uint64 {
	forced := uint64(0)
	if sa == 1 {
		forced = ^uint64(0)
	}
	pinVal := func(i int) uint64 {
		if i == pin {
			return forced
		}
		return w[g.In[i]]
	}
	switch g.Type {
	case netlist.Buf:
		return pinVal(0)
	case netlist.Not:
		return ^pinVal(0)
	case netlist.And, netlist.Nand:
		v := pinVal(0)
		for i := 1; i < len(g.In); i++ {
			v &= pinVal(i)
		}
		if g.Type == netlist.Nand {
			v = ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := pinVal(0)
		for i := 1; i < len(g.In); i++ {
			v |= pinVal(i)
		}
		if g.Type == netlist.Nor {
			v = ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := pinVal(0)
		for i := 1; i < len(g.In); i++ {
			v ^= pinVal(i)
		}
		if g.Type == netlist.Xnor {
			v = ^v
		}
		return v
	case netlist.Mux2:
		return pinVal(1)&^pinVal(0) | pinVal(2)&pinVal(0)
	default:
		return evalGateFast(g, w)
	}
}

// TestConeDetectsMatchesFullEvaluation A/Bs the cone-restricted fault
// simulation against a full re-evaluation on random circuits and on the
// real ALU.
func TestConeDetectsMatchesFullEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	circuits := []*netlist.Netlist{buildSmall(t)}
	// Random DAGs with reconvergence and fanout.
	for c := 0; c < 4; c++ {
		b := netlist.NewBuilder("rand")
		nets := b.InputBus("in", 6)
		for i := 0; i < 120; i++ {
			a := nets[rng.Intn(len(nets))]
			x := nets[rng.Intn(len(nets))]
			var o netlist.Net
			switch rng.Intn(6) {
			case 0:
				o = b.And(a, x)
			case 1:
				o = b.Or(a, x)
			case 2:
				o = b.Xor(a, x)
			case 3:
				o = b.Nand(a, x)
			case 4:
				o = b.Not(a)
			default:
				o = b.Mux(a, x, nets[rng.Intn(len(nets))])
			}
			nets = append(nets, o)
		}
		for i := 0; i < 4; i++ {
			b.Output(fmt.Sprintf("o%d", i), nets[len(nets)-1-i*7])
		}
		n, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, n)
	}
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	circuits = append(circuits, alu.Comb)

	for ci, n := range circuits {
		u := NewUniverse(n)
		sim := NewSimulator(n)
		block := make([]Pattern, 64)
		for k := range block {
			p := make(Pattern, sim.NumControls())
			for i := range p {
				p[i] = uint8(rng.Intn(2))
			}
			block[k] = p
		}
		sim.LoadBlock(block)
		for _, f := range u.Faults {
			fast := sim.Detects(f)
			slow := fullDetects(sim, f)
			if fast != slow {
				t.Fatalf("circuit %d fault %v: cone mask %#x, full mask %#x", ci, f, fast, slow)
			}
		}
		// The cone is repaired lazily: after a Detects call the scratch
		// state may carry exactly the slots recorded in coneBuf — any
		// marked slot outside it would leak into the next fault's walk.
		marked := make(map[int32]bool, len(sim.coneBuf))
		for _, gs := range sim.coneBuf {
			marked[gs] = true
		}
		for gi, m := range sim.inCone {
			if m != marked[int32(gi)] {
				t.Fatalf("circuit %d: inCone[%d]=%v inconsistent with recorded cone", ci, gi, m)
			}
		}
		// And the repair itself must restore the good machine.
		sim.LoadBlock(block)
		for gi, m := range sim.inCone {
			if m {
				t.Fatalf("circuit %d: inCone[%d] left set after block load", ci, gi)
			}
		}
	}
}

func TestParallelFaultSimMatchesSerial(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	serial := Run(alu.Comb, Config{Seed: 7, Workers: 1})
	parallel := Run(alu.Comb, Config{Seed: 7, Workers: 8})
	if serial.NumPatterns() != parallel.NumPatterns() ||
		serial.Detected != parallel.Detected ||
		serial.Redundant != parallel.Redundant {
		t.Fatalf("parallel fault simulation diverged: %s vs %s", serial, parallel)
	}
	for i := range serial.Patterns {
		for j := range serial.Patterns[i] {
			if serial.Patterns[i][j] != parallel.Patterns[i][j] {
				t.Fatalf("pattern %d differs between worker counts", i)
			}
		}
	}
}
