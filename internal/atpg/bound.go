package atpg

import "repro/internal/netlist"

// Bound is the analytical (no-ATPG) testability summary of a netlist,
// used as the graceful-degradation fallback when a budgeted ATPG run
// exhausts its wall-clock deadline (see Config.Deadline and
// testcost.Annotator).
type Bound struct {
	// Patterns is a deterministic upper bound on the compacted pattern
	// count n_p: every SCOAP-testable collapsed fault needs at most one
	// dedicated pattern, so the converged test set can never be larger.
	// Substituting it for a measured n_p keeps the paper's monotone
	// relationships intact — a degraded candidate's test cost is
	// overestimated, never flattered.
	Patterns int
	// TotalFaults is the size of the collapsed fault universe.
	TotalFaults int
	// Testable counts faults with a finite SCOAP cost (a finite
	// controllability/observability path exists); the rest are
	// structurally untestable and excluded from the bound, mirroring how
	// Coverage() excludes proven-redundant faults.
	Testable int
}

// Coverage returns the analytical coverage estimate: testable faults
// over the whole universe (the ceiling a converged run could reach under
// the Coverage() convention, where untestable faults are excluded).
func (b Bound) Coverage() float64 {
	if b.TotalFaults == 0 {
		return 1
	}
	return float64(b.Testable) / float64(b.TotalFaults)
}

// EstimateBound computes the SCOAP-derived analytical bound for a
// netlist. It is a pure function of the netlist — no seed, no budget, no
// randomness — so a degraded annotation is deterministic regardless of
// where in the run the deadline struck.
func EstimateBound(n *netlist.Netlist) Bound {
	s := ComputeScoap(n)
	u := NewUniverse(n)
	b := Bound{TotalFaults: len(u.Faults)}
	for _, f := range u.Faults {
		if s.FaultCost(f) < scoapInf {
			b.Testable++
		}
	}
	b.Patterns = b.Testable
	return b
}
