package atpg

import (
	"fmt"
	"math/bits"

	"repro/internal/netlist"
)

// laneBlock is the set of pattern-block widths the fault simulator can be
// instantiated at: 64, 256 or 512 parallel pattern lanes per block. Each
// width compiles to its own fully unrolled kernel (arrays of different
// lengths are distinct shapes), so the per-word inner loops carry no
// width-generic overhead.
type laneBlock interface {
	comparable
	[1]uint64 | [4]uint64 | [8]uint64
}

// laneWidths enumerates the valid Config.LaneWidth values (beyond 0=auto).
var laneWidths = []int{64, 256, 512}

// simTopo is the read-only structural view shared by every fault-simulation
// engine and PODEM engine over one netlist: controllable/observable points,
// the flat SoA netlist view, and the derived slot-indexed tables. It is
// built once per RunContext (or NewSimulator) and shared freely across
// worker goroutines — nothing in it is written after construction.
type simTopo struct {
	n  *netlist.Netlist
	fl *netlist.Flat

	ctrl     []netlist.Net
	obs      []netlist.Net
	obsOfNet [][]int32 // observable indices listening on each net
	topoPos  []int32   // gate -> position in TopoOrder (PODEM cone order)

	slotLevel []int32 // slot -> logic level
	fanSlot   []int32 // CSR fanout targets as slots (parallel to Flat.FanGate)
}

func newSimTopo(n *netlist.Netlist) *simTopo {
	fl := n.Flat()
	t := &simTopo{n: n, fl: fl}
	t.ctrl = append(t.ctrl, n.PIs...)
	for _, ff := range n.FFs {
		t.ctrl = append(t.ctrl, ff.Q)
	}
	t.obs = append(t.obs, n.POs...)
	for _, ff := range n.FFs {
		t.obs = append(t.obs, ff.D)
	}
	t.obsOfNet = make([][]int32, n.NumNets())
	for oi, net := range t.obs {
		t.obsOfNet[net] = append(t.obsOfNet[net], int32(oi))
	}
	t.topoPos = make([]int32, len(n.Gates))
	for pos, gi := range n.TopoOrder() {
		t.topoPos[gi] = int32(pos)
	}
	t.slotLevel = make([]int32, len(fl.Order))
	for s, gi := range fl.Order {
		t.slotLevel[s] = fl.GateLevel[gi]
	}
	t.fanSlot = make([]int32, len(fl.FanGate))
	for i, gi := range fl.FanGate {
		t.fanSlot[i] = fl.SlotOf[gi]
	}
	return t
}

// laneMask is a width-independent lane mask: bit k refers to pattern lane
// k of the most recently loaded block. Words beyond the engine's width are
// always zero.
type laneMask [8]uint64

func (m *laneMask) any() bool {
	acc := uint64(0)
	for _, w := range m {
		acc |= w
	}
	return acc != 0
}

func (m *laneMask) bit(k int) bool { return m[k>>6]>>(uint(k)&63)&1 == 1 }

// first returns the lowest set lane, or -1 when the mask is empty.
func (m *laneMask) first() int {
	for i, w := range m {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// faultSim is the width-erased engine interface the ATPG driver phases run
// against: the same random-phase, batch-drop and compaction code serves
// 64, 256 and 512 lanes.
type faultSim interface {
	lanes() int
	NumControls() int
	loadBlock(pats []Pattern)
	loadWords(words [][]uint64)
	detectsMask(f Fault) laneMask
	topo() *simTopo
}

// newFaultSim builds an engine of the given lane width (64, 256 or 512).
func newFaultSim(n *netlist.Netlist, lanes int) faultSim {
	return newFaultSimFromTopo(newSimTopo(n), lanes)
}

func newFaultSimFromTopo(t *simTopo, lanes int) faultSim {
	switch lanes {
	case 64:
		return newWideSim[[1]uint64](t)
	case 256:
		return newWideSim[[4]uint64](t)
	case 512:
		return newWideSim[[8]uint64](t)
	default:
		// Widths are validated by resolveLaneWidth before any simulator is
		// built; silently falling back to 64 lanes here would hide a missed
		// validation path.
		panic(fmt.Sprintf("atpg: unvalidated lane width %d", lanes))
	}
}

// wideSim is the width-parameterized parallel-pattern serial-fault
// simulator. B is the per-net pattern block ([1], [4] or [8]uint64 = 64,
// 256 or 512 lanes). Fault evaluation is cone-restricted and event-driven:
// only gates in the transitive fanout of the fault site are re-evaluated,
// scheduled through per-level pending buckets with a level-activity bitmap,
// so quiescent cone regions (levels where every difference already died)
// are skipped without being scanned.
type wideSim[B laneBlock] struct {
	t    *simTopo
	good []B // per-net fault-free values
	// cur holds the faulty-machine values: equal to good outside the most
	// recently evaluated cone, so gate evaluation reads inputs directly
	// with no per-pin source selection. The cone is repaired back to good
	// lazily, at the start of the next detects (or block load), which
	// keeps the faulty response readable between calls.
	cur   []B
	valid B // mask of lanes carrying real patterns

	// Scratch state, reused across faults.
	inCone  []bool    // slot was queued for the current cone walk
	coneBuf []int32   // slots evaluated by the most recent detects, push order
	buckets [][]int32 // pending slots per level
	active  []uint64  // bitmap of levels with a non-empty bucket
}

func newWideSim[B laneBlock](t *simTopo) *wideSim[B] {
	nn := t.n.NumNets()
	return &wideSim[B]{
		t:       t,
		good:    make([]B, nn),
		cur:     make([]B, nn),
		inCone:  make([]bool, len(t.fl.Order)),
		buckets: make([][]int32, t.fl.NumLevels),
		active:  make([]uint64, (t.fl.NumLevels+63)/64),
	}
}

func (s *wideSim[B]) topo() *simTopo { return s.t }

func (s *wideSim[B]) lanes() int {
	var b B
	return len(b) * 64
}

// Controllables returns the controllable points in pattern order.
func (s *wideSim[B]) Controllables() []netlist.Net { return s.t.ctrl }

// Observables returns the observable points (POs then FF D nets).
func (s *wideSim[B]) Observables() []netlist.Net { return s.t.obs }

// NumControls returns the pattern width.
func (s *wideSim[B]) NumControls() int { return len(s.t.ctrl) }

// loadBlock loads up to lanes() patterns (lane k = pats[k]) and evaluates
// the fault-free circuit over the flat SoA view.
func (s *wideSim[B]) loadBlock(pats []Pattern) {
	var valid B
	if max := len(valid) * 64; len(pats) > max {
		pats = pats[:max]
	}
	for k := range pats {
		valid[k>>6] |= 1 << (uint(k) & 63)
	}
	s.valid = valid
	// Transpose pattern bytes to per-net lane words in 64-pattern chunks:
	// each chunk's pattern slices stay cache-resident across the whole
	// controllable sweep instead of striding the full block per net.
	var zero B
	for _, net := range s.t.ctrl {
		s.good[net] = zero
	}
	for c := 0; c*64 < len(pats); c++ {
		chunk := pats[c*64:]
		if len(chunk) > 64 {
			chunk = chunk[:64]
		}
		for ci, net := range s.t.ctrl {
			var w uint64
			for k, p := range chunk {
				if p[ci] != 0 {
					w |= 1 << uint(k)
				}
			}
			s.good[net][c] = w
		}
	}
	evalFlatBlock(s.t.fl, s.good)
	copy(s.cur, s.good)
	for _, gs := range s.coneBuf {
		s.inCone[gs] = false
	}
	s.coneBuf = s.coneBuf[:0]
}

// loadWords loads a block already in transposed form: words[c][ci] is the
// 64-lane word of controllable ci for the block's c-th 64-pattern
// sub-block, every lane carrying a real pattern. The random phase
// generates pattern words directly in this layout, so the byte-matrix
// transpose of loadBlock is skipped entirely.
func (s *wideSim[B]) loadWords(words [][]uint64) {
	var valid B
	if max := len(valid); len(words) > max {
		words = words[:max]
	}
	for c := range words {
		valid[c] = ^uint64(0)
	}
	s.valid = valid
	var w B
	for ci, net := range s.t.ctrl {
		for c := range words {
			w[c] = words[c][ci]
		}
		s.good[net] = w
	}
	evalFlatBlock(s.t.fl, s.good)
	copy(s.cur, s.good)
	for _, gs := range s.coneBuf {
		s.inCone[gs] = false
	}
	s.coneBuf = s.coneBuf[:0]
}

// detects simulates the fault against the currently loaded block and
// returns the block of lanes whose observable response differs from the
// fault-free circuit.
func (s *wideSim[B]) detects(f Fault) B {
	t := s.t
	fl := t.fl
	// Lazily repair the previous fault's cone: cur returns to the good
	// machine before any of it is read.
	for _, gs := range s.coneBuf {
		outN := fl.Out[gs]
		s.cur[outN] = s.good[outN]
		s.inCone[gs] = false
	}
	s.coneBuf = s.coneBuf[:0]

	slot0 := fl.SlotOf[f.Gate]
	var out0 B
	if f.Pin >= 0 {
		// The root gate's inputs are all fault-free.
		lo, hi := fl.PinStart[slot0], fl.PinStart[slot0+1]
		out0 = evalPinBlock(fl.Type[slot0], fl.Pins[lo:hi], s.good, int(f.Pin), f.SA)
	} else if f.SA == 1 {
		for i := 0; i < len(out0); i++ {
			out0[i] = ^uint64(0)
		}
	}
	outNet := fl.Out[slot0]
	g0 := s.good[outNet]
	var excited uint64
	for i := 0; i < len(out0); i++ {
		excited |= out0[i] ^ g0[i]
	}
	if excited == 0 {
		var zero B
		return zero // fault never excited in this block
	}

	cone := s.coneBuf[:0]
	cone = append(cone, slot0)
	s.inCone[slot0] = true
	s.cur[outNet] = out0
	var diff B
	if len(t.obsOfNet[outNet]) > 0 {
		g := s.good[outNet]
		for i := 0; i < len(diff); i++ {
			diff[i] = out0[i] ^ g[i]
		}
	}

	active, bkts, fanSlot, slotLevel := s.active, s.buckets, t.fanSlot, t.slotLevel
	loWord := len(active)
	for i, e := fl.FanStart[outNet], fl.FanStart[outNet+1]; i < e; i++ {
		ns := fanSlot[i]
		if s.inCone[ns] {
			continue
		}
		s.inCone[ns] = true
		cone = append(cone, ns)
		nl := slotLevel[ns]
		bkts[nl] = append(bkts[nl], ns)
		w := int(nl >> 6)
		active[w] |= 1 << (uint(nl) & 63)
		if w < loWord {
			loWord = w
		}
	}

	// Drain levels in ascending order. Fanout edges climb strictly, so a
	// level's bucket is complete before its bit is consumed, every slot is
	// evaluated exactly once after all its dirty drivers settled, and the
	// bitmap scan steps straight over quiescent level ranges.
	for wi := loWord; wi < len(active); wi++ {
		for active[wi] != 0 {
			bit := bits.TrailingZeros64(active[wi])
			active[wi] &^= 1 << uint(bit)
			l := int32(wi<<6 | bit)
			b := bkts[l]
			for _, gs := range b {
				out := evalSlotBlock(fl, gs, s.cur)
				outN := fl.Out[gs]
				s.cur[outN] = out
				g := s.good[outN]
				var live uint64
				for i := 0; i < len(out); i++ {
					live |= out[i] ^ g[i]
				}
				if live == 0 {
					// The difference died here; downstream sees good values
					// either way, so its fanout is simply not scheduled.
					continue
				}
				if len(t.obsOfNet[outN]) > 0 {
					for i := 0; i < len(diff); i++ {
						diff[i] |= out[i] ^ g[i]
					}
				}
				for i, e := fl.FanStart[outN], fl.FanStart[outN+1]; i < e; i++ {
					ns := fanSlot[i]
					if s.inCone[ns] {
						continue
					}
					s.inCone[ns] = true
					cone = append(cone, ns)
					nl := slotLevel[ns]
					bkts[nl] = append(bkts[nl], ns)
					active[nl>>6] |= 1 << (uint(nl) & 63)
				}
			}
			bkts[l] = b[:0]
		}
	}
	s.coneBuf = cone
	for i := 0; i < len(diff); i++ {
		diff[i] &= s.valid[i]
	}
	return diff
}

// detectsMask is detects widened to the driver-facing laneMask.
func (s *wideSim[B]) detectsMask(f Fault) laneMask {
	d := s.detects(f)
	var m laneMask
	for i := 0; i < len(d); i++ {
		m[i] = d[i]
	}
	return m
}

// evalSlotBlock evaluates one slot of the flat view over per-net blocks w
// — the cone-walk kernel. Inputs are read straight from w (the faulty-
// machine array), so there is no per-pin source selection or gathering.
func evalSlotBlock[B laneBlock](fl *netlist.Flat, slot int32, w []B) B {
	pins := fl.Pins
	lo, hi := fl.PinStart[slot], fl.PinStart[slot+1]
	var v B
	switch fl.Type[slot] {
	case netlist.Const0:
	case netlist.Const1:
		for j := 0; j < len(v); j++ {
			v[j] = ^uint64(0)
		}
	case netlist.Buf:
		v = w[pins[lo]]
	case netlist.Not:
		v = w[pins[lo]]
		for j := 0; j < len(v); j++ {
			v[j] = ^v[j]
		}
	case netlist.And, netlist.Nand:
		v = w[pins[lo]]
		for i := lo + 1; i < hi; i++ {
			x := w[pins[i]]
			for j := 0; j < len(v); j++ {
				v[j] &= x[j]
			}
		}
		if fl.Type[slot] == netlist.Nand {
			for j := 0; j < len(v); j++ {
				v[j] = ^v[j]
			}
		}
	case netlist.Or, netlist.Nor:
		v = w[pins[lo]]
		for i := lo + 1; i < hi; i++ {
			x := w[pins[i]]
			for j := 0; j < len(v); j++ {
				v[j] |= x[j]
			}
		}
		if fl.Type[slot] == netlist.Nor {
			for j := 0; j < len(v); j++ {
				v[j] = ^v[j]
			}
		}
	case netlist.Xor, netlist.Xnor:
		v = w[pins[lo]]
		for i := lo + 1; i < hi; i++ {
			x := w[pins[i]]
			for j := 0; j < len(v); j++ {
				v[j] ^= x[j]
			}
		}
		if fl.Type[slot] == netlist.Xnor {
			for j := 0; j < len(v); j++ {
				v[j] = ^v[j]
			}
		}
	default: // Mux2
		sel, a0, a1 := w[pins[lo]], w[pins[lo+1]], w[pins[lo+2]]
		for j := 0; j < len(v); j++ {
			v[j] = a0[j]&^sel[j] | a1[j]&sel[j]
		}
	}
	return v
}

// evalFlatBlock evaluates every gate of the flat view over per-net blocks
// w, in level-major (topological) order.
func evalFlatBlock[B laneBlock](fl *netlist.Flat, w []B) {
	pins := fl.Pins
	for s, t := range fl.Type {
		lo, hi := fl.PinStart[s], fl.PinStart[s+1]
		var v B
		switch t {
		case netlist.Const0:
		case netlist.Const1:
			for j := 0; j < len(v); j++ {
				v[j] = ^uint64(0)
			}
		case netlist.Buf:
			v = w[pins[lo]]
		case netlist.Not:
			v = w[pins[lo]]
			for j := 0; j < len(v); j++ {
				v[j] = ^v[j]
			}
		case netlist.And, netlist.Nand:
			v = w[pins[lo]]
			for i := lo + 1; i < hi; i++ {
				x := w[pins[i]]
				for j := 0; j < len(v); j++ {
					v[j] &= x[j]
				}
			}
			if t == netlist.Nand {
				for j := 0; j < len(v); j++ {
					v[j] = ^v[j]
				}
			}
		case netlist.Or, netlist.Nor:
			v = w[pins[lo]]
			for i := lo + 1; i < hi; i++ {
				x := w[pins[i]]
				for j := 0; j < len(v); j++ {
					v[j] |= x[j]
				}
			}
			if t == netlist.Nor {
				for j := 0; j < len(v); j++ {
					v[j] = ^v[j]
				}
			}
		case netlist.Xor, netlist.Xnor:
			v = w[pins[lo]]
			for i := lo + 1; i < hi; i++ {
				x := w[pins[i]]
				for j := 0; j < len(v); j++ {
					v[j] ^= x[j]
				}
			}
			if t == netlist.Xnor {
				for j := 0; j < len(v); j++ {
					v[j] = ^v[j]
				}
			}
		default: // Mux2
			sel, a0, a1 := w[pins[lo]], w[pins[lo+1]], w[pins[lo+2]]
			for j := 0; j < len(v); j++ {
				v[j] = a0[j]&^sel[j] | a1[j]&sel[j]
			}
		}
		w[fl.Out[s]] = v
	}
}

// evalPinBlock evaluates a gate with input pin `pin` forced to the stuck
// value, substituted inline while folding over the inputs — the excitation
// check of every detects call, allocation-free.
func evalPinBlock[B laneBlock](t netlist.GateType, pins []netlist.Net, w []B, pin int, sa uint8) B {
	var forced B
	if sa == 1 {
		for j := 0; j < len(forced); j++ {
			forced[j] = ^uint64(0)
		}
	}
	pv := func(i int) B {
		if i == pin {
			return forced
		}
		return w[pins[i]]
	}
	var v B
	switch t {
	case netlist.Buf:
		v = pv(0)
	case netlist.Not:
		v = pv(0)
		for j := 0; j < len(v); j++ {
			v[j] = ^v[j]
		}
	case netlist.And, netlist.Nand:
		v = pv(0)
		for i := 1; i < len(pins); i++ {
			x := pv(i)
			for j := 0; j < len(v); j++ {
				v[j] &= x[j]
			}
		}
		if t == netlist.Nand {
			for j := 0; j < len(v); j++ {
				v[j] = ^v[j]
			}
		}
	case netlist.Or, netlist.Nor:
		v = pv(0)
		for i := 1; i < len(pins); i++ {
			x := pv(i)
			for j := 0; j < len(v); j++ {
				v[j] |= x[j]
			}
		}
		if t == netlist.Nor {
			for j := 0; j < len(v); j++ {
				v[j] = ^v[j]
			}
		}
	case netlist.Xor, netlist.Xnor:
		v = pv(0)
		for i := 1; i < len(pins); i++ {
			x := pv(i)
			for j := 0; j < len(v); j++ {
				v[j] ^= x[j]
			}
		}
		if t == netlist.Xnor {
			for j := 0; j < len(v); j++ {
				v[j] = ^v[j]
			}
		}
	case netlist.Mux2:
		sel, a0, a1 := pv(0), pv(1), pv(2)
		for j := 0; j < len(v); j++ {
			v[j] = a0[j]&^sel[j] | a1[j]&sel[j]
		}
	case netlist.Const1:
		// Constants carry no input pins; mirror the fault-free value.
		for j := 0; j < len(v); j++ {
			v[j] = ^uint64(0)
		}
	}
	return v
}
