package atpg

import (
	"fmt"

	"repro/internal/netlist"
)

// PinOut marks a fault on a gate's output rather than one of its inputs.
const PinOut int8 = -1

// Fault is a single stuck-at fault at a gate pin: Pin == PinOut places it
// on the output net, Pin >= 0 on that input pin (affecting only this gate).
type Fault struct {
	Gate int32
	Pin  int8
	SA   uint8 // stuck-at value, 0 or 1
}

func (f Fault) String() string {
	if f.Pin == PinOut {
		return fmt.Sprintf("g%d.out/sa%d", f.Gate, f.SA)
	}
	return fmt.Sprintf("g%d.in%d/sa%d", f.Gate, f.Pin, f.SA)
}

// Universe is the collapsed fault list of a netlist.
type Universe struct {
	N *netlist.Netlist
	// Faults holds the collapsed fault list (equivalence-class
	// representatives).
	Faults []Fault
	// Uncollapsed is the size of the full pin-fault universe before
	// equivalence collapsing.
	Uncollapsed int
	// classSize[i] is the number of uncollapsed faults represented by
	// Faults[i].
	classSize []int
}

// ClassSize returns how many uncollapsed faults collapse onto Faults[i].
func (u *Universe) ClassSize(i int) int { return u.classSize[i] }

// NewUniverse enumerates the stuck-at faults of the netlist and collapses
// intra-gate equivalences:
//
//	AND:  input sa0 == output sa0      NAND: input sa0 == output sa1
//	OR:   input sa1 == output sa1      NOR:  input sa1 == output sa0
//	BUF:  input saV == output saV      NOT:  input saV == output sa(1-V)
//
// Faults on XOR/XNOR/MUX inputs are kept. Constant gates contribute no
// faults (their output is untestable by construction).
func NewUniverse(n *netlist.Netlist) *Universe {
	u := &Universe{N: n}
	for gi, g := range n.Gates {
		if g.Type == netlist.Const0 || g.Type == netlist.Const1 {
			continue
		}
		// Output faults always present; they absorb the collapsed input
		// faults of controlling values.
		absorbed0, absorbed1 := 0, 0 // input faults absorbed into out-sa0/sa1
		for pin := range g.In {
			for _, sa := range []uint8{0, 1} {
				u.Uncollapsed++
				if eq, outSA := collapsesToOutput(g.Type, sa); eq {
					if outSA == 0 {
						absorbed0++
					} else {
						absorbed1++
					}
					continue
				}
				u.Faults = append(u.Faults, Fault{Gate: int32(gi), Pin: int8(pin), SA: sa})
				u.classSize = append(u.classSize, 1)
			}
		}
		u.Uncollapsed += 2
		u.Faults = append(u.Faults, Fault{Gate: int32(gi), Pin: PinOut, SA: 0})
		u.classSize = append(u.classSize, 1+absorbed0)
		u.Faults = append(u.Faults, Fault{Gate: int32(gi), Pin: PinOut, SA: 1})
		u.classSize = append(u.classSize, 1+absorbed1)
	}
	return u
}

// collapsesToOutput reports whether an input stuck-at-sa fault on a gate of
// type t is equivalent to an output fault, and to which output stuck value.
func collapsesToOutput(t netlist.GateType, sa uint8) (bool, uint8) {
	switch t {
	case netlist.And:
		if sa == 0 {
			return true, 0
		}
	case netlist.Nand:
		if sa == 0 {
			return true, 1
		}
	case netlist.Or:
		if sa == 1 {
			return true, 1
		}
	case netlist.Nor:
		if sa == 1 {
			return true, 0
		}
	case netlist.Buf:
		return true, sa
	case netlist.Not:
		return true, 1 - sa
	}
	return false, 0
}

// CollapseRatio returns |collapsed| / |uncollapsed|.
func (u *Universe) CollapseRatio() float64 {
	if u.Uncollapsed == 0 {
		return 1
	}
	return float64(len(u.Faults)) / float64(u.Uncollapsed)
}
