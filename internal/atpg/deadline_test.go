package atpg

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/gatelib"
)

// TestDeadlineAlreadyExpiredDegradesGracefully runs with a budget that
// expires before any work happens: no error, an empty-but-valid result,
// DeadlineExceeded set and every fault accounted for as aborted.
func TestDeadlineAlreadyExpiredDegradesGracefully(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunContext(context.Background(), alu.Comb, Config{Seed: 7, Deadline: time.Nanosecond})
	if err != nil {
		t.Fatalf("budget exhaustion surfaced as an error: %v", err)
	}
	if !res.DeadlineExceeded {
		t.Fatal("DeadlineExceeded not set")
	}
	if got := res.Detected + res.Redundant + res.Aborted; got != res.TotalFaults {
		t.Fatalf("fault accounting: detected %d + redundant %d + aborted %d != total %d",
			res.Detected, res.Redundant, res.Aborted, res.TotalFaults)
	}
}

// TestDeadlineGenerousIsByteIdentical checks a budget large enough to
// finish changes nothing: the run is byte-identical to an unbudgeted one.
func TestDeadlineGenerousIsByteIdentical(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	ref := Run(alu.Comb, Config{Seed: 7})
	bud := Run(alu.Comb, Config{Seed: 7, Deadline: time.Hour})
	if bud.DeadlineExceeded {
		t.Fatal("an hour-long budget expired on a sub-second run")
	}
	if !reflect.DeepEqual(ref.Patterns, bud.Patterns) {
		t.Fatal("budgeted run diverged from the unbudgeted reference")
	}
	if ref.Detected != bud.Detected || ref.Redundant != bud.Redundant || ref.Aborted != bud.Aborted {
		t.Fatalf("fault tallies diverged: %s vs %s", ref, bud)
	}
}

// TestDeadlineMidRunKeepsAccounting forces expiry mid-run with an
// injected per-fault sleep and checks the partial result stays coherent.
func TestDeadlineMidRunKeepsAccounting(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.ATPGPattern, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: 2 * time.Millisecond})
	res, err := RunContext(context.Background(), alu.Comb, Config{
		Seed:     7,
		Deadline: 20 * time.Millisecond,
		Inject:   inj,
		Workers:  1,
	})
	if err != nil {
		t.Fatalf("slow run surfaced an error: %v", err)
	}
	if !res.DeadlineExceeded {
		t.Fatal("injected slowness did not exhaust the deadline")
	}
	if got := res.Detected + res.Redundant + res.Aborted; got != res.TotalFaults {
		t.Fatalf("fault accounting off: %d != %d", got, res.TotalFaults)
	}
	// The partial pattern set must actually detect what it claims.
	u := NewUniverse(alu.Comb)
	sim := NewSimulator(alu.Comb)
	if got := countDetected(sim, u, res.Patterns); got != res.Detected {
		t.Fatalf("re-simulated %d detected, reported %d", got, res.Detected)
	}
}

// TestInjectedErrorAbortsLikeContext checks a firing ModeError plan in
// the PODEM merge loop surfaces as (nil, err), same as a context failure.
func TestInjectedErrorAbortsLikeContext(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 4, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	inj.Arm(faultinject.ATPGPattern, faultinject.Plan{Mode: faultinject.ModeError, Limit: 1})
	res, err := RunContext(context.Background(), alu.Comb, Config{Seed: 7, Inject: inj})
	if res != nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("res=%v err=%v, want nil result and ErrInjected", res, err)
	}
	if inj.Fires(faultinject.ATPGPattern) != 1 {
		t.Fatalf("fires = %d, want 1", inj.Fires(faultinject.ATPGPattern))
	}
}

// TestEstimateBoundDominatesConvergedRun checks the analytical bound is
// a true upper bound on the converged compacted pattern count, and its
// coverage estimate is at least the measured coverage — the property
// that keeps degraded candidates pessimistic, never flattered.
func TestEstimateBoundDominatesConvergedRun(t *testing.T) {
	for _, width := range []int{4, 8} {
		alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: width, Adder: gatelib.AdderRipple})
		if err != nil {
			t.Fatal(err)
		}
		b := EstimateBound(alu.Comb)
		res := Run(alu.Comb, Config{Seed: 7})
		if b.Patterns < res.NumPatterns() {
			t.Fatalf("width %d: bound %d < converged n_p %d", width, b.Patterns, res.NumPatterns())
		}
		if b.TotalFaults != res.TotalFaults {
			t.Fatalf("width %d: bound universe %d != run universe %d", width, b.TotalFaults, res.TotalFaults)
		}
		if b.Coverage() < res.RawCoverage() {
			t.Fatalf("width %d: bound coverage %.4f < measured raw coverage %.4f",
				width, b.Coverage(), res.RawCoverage())
		}
		// Pure function: two evaluations agree exactly.
		if b2 := EstimateBound(alu.Comb); b2 != b {
			t.Fatalf("EstimateBound not deterministic: %+v vs %+v", b, b2)
		}
	}
}
