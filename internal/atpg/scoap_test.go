package atpg

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/netlist"
)

func TestScoapAndGateTextbookValues(t *testing.T) {
	b := netlist.NewBuilder("and2")
	a := b.Input("a")
	x := b.Input("b")
	y := b.And(a, x)
	b.Output("y", y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(n)
	// PI controllabilities are 1; AND output: CC1 = 1+1+1 = 3, CC0 = 1+1 = 2.
	if s.CC1[y] != 3 || s.CC0[y] != 2 {
		t.Errorf("AND output CC=(%d,%d), want (2,3) as (CC0,CC1)", s.CC0[y], s.CC1[y])
	}
	// Observing input a: CO(y)=0, side input must be 1: CO(a) = 0+1+1 = 2.
	if s.CO[a] != 2 {
		t.Errorf("CO(a)=%d, want 2", s.CO[a])
	}
}

func TestScoapChainDepthMonotone(t *testing.T) {
	mk := func(depth int) int32 {
		b := netlist.NewBuilder("chain")
		v := b.Input("x")
		w := b.Input("y")
		for i := 0; i < depth; i++ {
			v = b.And(v, w)
		}
		b.Output("o", v)
		n, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		s := ComputeScoap(n)
		return s.CC1[n.POs[0]]
	}
	if c2, c6 := mk(2), mk(6); c6 <= c2 {
		t.Errorf("CC1 not monotone in depth: %d vs %d", c2, c6)
	}
}

func TestScoapXorParity(t *testing.T) {
	b := netlist.NewBuilder("x3")
	in := b.InputBus("x", 3)
	y := b.Xor(in...)
	b.Output("y", y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(n)
	// Any single input at 1 (others 0) gives odd parity: CC1 = 3+1; even
	// parity costs all-zero or two ones: CC0 = 3+1.
	if s.CC1[y] != 4 || s.CC0[y] != 4 {
		t.Errorf("XOR3 CC=(%d,%d), want (4,4)", s.CC0[y], s.CC1[y])
	}
}

func TestScoapConstantsUncontrollable(t *testing.T) {
	b := netlist.NewBuilder("c")
	a := b.Input("a")
	one := b.Const(true)
	y := b.And(a, one)
	b.Output("y", y)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(n)
	var constNet netlist.Net = -1
	for _, g := range n.Gates {
		if g.Type == netlist.Const1 {
			constNet = g.Out
		}
	}
	if s.CC0[constNet] < scoapInf {
		t.Errorf("const-1 net has finite CC0 %d", s.CC0[constNet])
	}
	// The corresponding untestable fault gets an enormous cost.
	var f Fault
	for gi, g := range n.Gates {
		if g.Type == netlist.And {
			for pin, in := range g.In {
				if in == constNet {
					f = Fault{Gate: int32(gi), Pin: int8(pin), SA: 1}
				}
			}
		}
	}
	if s.FaultCost(f) < scoapInf {
		t.Errorf("untestable fault cost %d not saturated", s.FaultCost(f))
	}
}

func TestScoapFullScanViewTreatsFFsAsPorts(t *testing.T) {
	b := netlist.NewBuilder("seq")
	d := b.Input("d")
	q := b.DFF("r", b.And(d, d), false)
	b.Output("y", b.Not(q))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(n)
	ff := n.FFs[0]
	if s.CC0[ff.Q] != 1 || s.CC1[ff.Q] != 1 {
		t.Error("FF Q not treated as controllable")
	}
	if s.CO[ff.D] != 0 {
		t.Errorf("FF D observability %d, want 0", s.CO[ff.D])
	}
}

func TestScoapSummaryOnALU(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeScoap(alu.Seq)
	sum := s.Summarize()
	if sum.MaxCC <= 0 || sum.MaxCO <= 0 || sum.MeanCC <= 0 || sum.MeanCO <= 0 {
		t.Fatalf("degenerate summary %+v", sum)
	}
	if sum.MaxCC >= scoapInf || sum.MaxCO >= scoapInf {
		t.Fatalf("saturated summary %+v — scan view should make everything reachable", sum)
	}
	t.Logf("ALU16 SCOAP: maxCC=%d meanCC=%.1f maxCO=%d meanCO=%.1f",
		sum.MaxCC, sum.MeanCC, sum.MaxCO, sum.MeanCO)
}

func TestScoapGuidedPodemSameCoverage(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	plain := Run(alu.Comb, Config{Seed: 7, MaxRandomPatterns: -1})
	guided := Run(alu.Comb, Config{Seed: 7, MaxRandomPatterns: -1, SCOAPGuidance: true})
	if guided.Coverage() < plain.Coverage()-0.005 {
		t.Fatalf("SCOAP guidance lost coverage: %.4f vs %.4f", guided.Coverage(), plain.Coverage())
	}
	if guided.Aborted > plain.Aborted+2 {
		t.Errorf("SCOAP guidance aborted more: %d vs %d", guided.Aborted, plain.Aborted)
	}
	t.Logf("PODEM-only ALU8: plain np=%d aborted=%d; SCOAP-guided np=%d aborted=%d",
		plain.NumPatterns(), plain.Aborted, guided.NumPatterns(), guided.Aborted)
}

// TestScoapPredictsRandomPatternResistance echoes reference [9]'s goal:
// a testability measure should separate easy faults from hard ones. The
// faults the random phase misses must have a higher mean SCOAP cost than
// the ones it catches.
func TestScoapPredictsRandomPatternResistance(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	n := alu.Comb
	u := NewUniverse(n)
	s := ComputeScoap(n)
	sim := NewSimulator(n)
	detected := make([]bool, len(u.Faults))
	res := &Result{Netlist: n, TotalFaults: len(u.Faults)}
	pool := newSimPool(sim.t, 64, 0)
	randomPhase(context.Background(), pool, u, Config{Seed: 7, MaxRandomPatterns: 256, RandomDryBlocks: 2}, detected, res, &runMetrics{}, budget{})

	var easySum, hardSum float64
	var easyN, hardN int
	for fi, f := range u.Faults {
		cost := float64(s.FaultCost(f))
		if cost >= float64(scoapInf) {
			continue // untestable; excluded from the comparison
		}
		if detected[fi] {
			easySum += cost
			easyN++
		} else {
			hardSum += cost
			hardN++
		}
	}
	if easyN == 0 || hardN == 0 {
		t.Skip("random phase detected everything (or nothing); no contrast available")
	}
	easy := easySum / float64(easyN)
	hard := hardSum / float64(hardN)
	t.Logf("mean SCOAP cost: random-detected %.1f (n=%d), random-resistant %.1f (n=%d)", easy, easyN, hard, hardN)
	if hard <= easy {
		t.Errorf("testability measure failed to separate hard faults: %.1f <= %.1f", hard, easy)
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
