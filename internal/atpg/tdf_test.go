package atpg

import (
	"testing"

	"repro/internal/gatelib"
	"repro/internal/netlist"
)

func TestTDFUniverseSkipsConstants(t *testing.T) {
	b := netlist.NewBuilder("c")
	a := b.Input("a")
	b.Output("y", b.And(a, b.Const(true)))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range TDFUniverse(n) {
		g := n.Gates[f.Gate]
		if g.Type == netlist.Const0 || g.Type == netlist.Const1 {
			t.Fatal("transition fault on a constant gate")
		}
	}
}

func TestTDFBufferPair(t *testing.T) {
	// y = buf(a): the slow-to-rise fault needs the pair (a=0, a=1);
	// slow-to-fall needs (a=1, a=0).
	b := netlist.NewBuilder("buf")
	a := b.Input("a")
	b.Output("y", b.Buf(a))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rise := [][]uint8{{0}, {1}}
	fall := [][]uint8{{1}, {0}}
	both := [][]uint8{{0}, {1}, {0}}
	same := [][]uint8{{1}, {1}, {1}}
	toPats := func(vs [][]uint8) []Pattern {
		out := make([]Pattern, len(vs))
		for i, v := range vs {
			out[i] = Pattern(v)
		}
		return out
	}
	if got := EvaluateTDF(n, toPats(rise)); got.Detected != 1 {
		t.Errorf("rising pair detected %d faults, want 1 (STR)", got.Detected)
	}
	if got := EvaluateTDF(n, toPats(fall)); got.Detected != 1 {
		t.Errorf("falling pair detected %d, want 1 (STF)", got.Detected)
	}
	if got := EvaluateTDF(n, toPats(both)); got.Detected != 2 {
		t.Errorf("rise+fall sequence detected %d, want 2", got.Detected)
	}
	if got := EvaluateTDF(n, toPats(same)); got.Detected != 0 {
		t.Errorf("constant sequence detected %d transition faults, want 0", got.Detected)
	}
}

func TestTDFRepeatedPatternsDetectNothing(t *testing.T) {
	// Applying the same pattern repeatedly launches no transitions.
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 4, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(alu.Comb, Config{Seed: 7})
	same := make([]Pattern, 10)
	for i := range same {
		same[i] = res.Patterns[0]
	}
	if got := EvaluateTDF(alu.Comb, same); got.Detected != 0 {
		t.Fatalf("identical patterns detected %d transition faults", got.Detected)
	}
}

func TestTDFCoverageFromStuckAtSet(t *testing.T) {
	// The paper's claim: the functionally applied stuck-at set, streamed
	// back to back, already covers a substantial share of the transition
	// faults.
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(alu.Comb, Config{Seed: 7})
	tdf := EvaluateTDF(alu.Comb, res.Patterns)
	if tdf.Coverage() < 0.5 {
		t.Fatalf("stuck-at sequence covers only %.1f%% of transition faults", 100*tdf.Coverage())
	}
	if tdf.Pairs != len(res.Patterns)-1 {
		t.Fatalf("pairs=%d, want %d", tdf.Pairs, len(res.Patterns)-1)
	}
	t.Logf("ALU8: %d stuck-at patterns cover %d/%d transition faults (%.1f%%)",
		len(res.Patterns), tdf.Detected, tdf.Total, 100*tdf.Coverage())
}

func TestOrderForTDFNeverHurtsMuch(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(alu.Comb, Config{Seed: 7})
	base := EvaluateTDF(alu.Comb, res.Patterns)
	reordered := EvaluateTDF(alu.Comb, OrderForTDF(res.Patterns))
	t.Logf("TDF coverage: as-generated %.1f%%, max-toggle order %.1f%%",
		100*base.Coverage(), 100*reordered.Coverage())
	if float64(reordered.Detected) < 0.9*float64(base.Detected) {
		t.Errorf("reordering collapsed TDF coverage: %d -> %d", base.Detected, reordered.Detected)
	}
	// The reorder keeps the same multiset of patterns.
	if len(OrderForTDF(res.Patterns)) != len(res.Patterns) {
		t.Fatal("reorder changed the pattern count")
	}
}

func TestTDFFewPatterns(t *testing.T) {
	b := netlist.NewBuilder("x")
	a := b.Input("a")
	b.Output("y", b.Not(a))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := EvaluateTDF(n, nil); got.Detected != 0 || got.Pairs != 0 {
		t.Fatal("empty sequence should evaluate to zero")
	}
	if got := EvaluateTDF(n, []Pattern{{0}}); got.Detected != 0 {
		t.Fatal("single pattern cannot launch transitions")
	}
}

func TestTDFBlockBoundaryPairs(t *testing.T) {
	// A detecting pair straddling the 64-lane block boundary must still
	// count (blocks overlap by one pattern).
	b := netlist.NewBuilder("buf2")
	a := b.Input("a")
	b.Output("y", b.Buf(a))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 63 constant-1 patterns, then 0 at index 63, then 1 at index 64: the
	// only rising pair is (63, 64), crossing the first block's edge.
	var pats []Pattern
	for i := 0; i < 63; i++ {
		pats = append(pats, Pattern{1})
	}
	pats = append(pats, Pattern{0}, Pattern{1})
	got := EvaluateTDF(n, pats)
	// Falling pair (62,63) detects STF; rising pair (63,64) detects STR.
	if got.Detected != 2 {
		t.Fatalf("detected %d transition faults, want 2 (pairs across block edge)", got.Detected)
	}
}
