package atpg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/gatelib"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// wideTestCircuits builds the property-test corpus: random reconvergent
// DAGs plus the real ALU, the same shapes the cone A/B test uses.
func wideTestCircuits(t *testing.T, rng *rand.Rand) []*netlist.Netlist {
	t.Helper()
	circuits := []*netlist.Netlist{buildSmall(t)}
	for c := 0; c < 3; c++ {
		b := netlist.NewBuilder("rand")
		nets := b.InputBus("in", 8)
		for i := 0; i < 150; i++ {
			a := nets[rng.Intn(len(nets))]
			x := nets[rng.Intn(len(nets))]
			var o netlist.Net
			switch rng.Intn(7) {
			case 0:
				o = b.And(a, x)
			case 1:
				o = b.Or(a, x)
			case 2:
				o = b.Xor(a, x)
			case 3:
				o = b.Nand(a, x)
			case 4:
				o = b.Nor(a, x)
			case 5:
				o = b.Not(a)
			default:
				o = b.Mux(a, x, nets[rng.Intn(len(nets))])
			}
			nets = append(nets, o)
		}
		for i := 0; i < 5; i++ {
			b.Output(fmt.Sprintf("o%d", i), nets[len(nets)-1-i*9])
		}
		n, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		circuits = append(circuits, n)
	}
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	circuits = append(circuits, alu.Comb, alu.Seq)
	return circuits
}

// TestWideDetectsMatches64LaneReference is the core width-invariance
// property: for random pattern sets, the 256- and 512-lane engines must
// report, per 64-pattern chunk, exactly the lane mask the 64-lane engine
// reports for that chunk — for every fault, including partial final
// chunks.
func TestWideDetectsMatches64LaneReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for ci, n := range wideTestCircuits(t, rng) {
		u := NewUniverse(n)
		topo := newSimTopo(n)
		ref := newFaultSimFromTopo(topo, 64)
		for _, lanes := range []int{256, 512} {
			wide := newFaultSimFromTopo(topo, lanes)
			// Deliberately ragged: a full block, then a partial one.
			for _, np := range []int{lanes, lanes - 37} {
				pats := make([]Pattern, np)
				for k := range pats {
					p := make(Pattern, wide.NumControls())
					for i := range p {
						p[i] = uint8(rng.Intn(2))
					}
					pats[k] = p
				}
				wide.loadBlock(pats)
				for _, f := range u.Faults {
					wm := wide.detectsMask(f)
					for start := 0; start < np; start += 64 {
						end := start + 64
						if end > np {
							end = np
						}
						ref.loadBlock(pats[start:end])
						rm := ref.detectsMask(f)
						if wm[start/64] != rm[0] {
							t.Fatalf("circuit %d lanes %d np %d fault %v chunk %d: wide %#x, 64-lane %#x",
								ci, lanes, np, f, start/64, wm[start/64], rm[0])
						}
					}
				}
			}
		}
	}
}

// TestRunIdenticalAcrossLaneWidthsAndWorkers asserts the PR's hard
// constraint end to end: the full ATPG result — patterns included — is a
// function of (netlist, seed) only, not of lane width or worker count.
func TestRunIdenticalAcrossLaneWidthsAndWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for ci, n := range wideTestCircuits(t, rng) {
		var base *Result
		for _, lanes := range []int{0, 64, 256, 512} {
			for _, workers := range []int{1, 8} {
				res := Run(n, Config{Seed: 7, LaneWidth: lanes, Workers: workers})
				if base == nil {
					base = res
					continue
				}
				if !reflect.DeepEqual(base, res) {
					t.Fatalf("circuit %d: LaneWidth=%d Workers=%d diverged:\n  %v\nvs\n  %v",
						ci, lanes, workers, res, base)
				}
			}
		}
	}
}

// TestWideDetectsZeroAllocWhenWarmed pins the zero-alloc contract of the
// hot path at every lane width, not just the 64-lane default.
func TestWideDetectsZeroAllocWhenWarmed(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	n := alu.Seq
	u := NewUniverse(n)
	topo := newSimTopo(n)
	rng := newRand(7)
	for _, lanes := range []int{64, 256, 512} {
		sim := newFaultSimFromTopo(topo, lanes)
		block := make([]Pattern, lanes)
		for k := range block {
			p := make(Pattern, sim.NumControls())
			for i := range p {
				p[i] = uint8(rng.Intn(2))
			}
			block[k] = p
		}
		sim.loadBlock(block)
		for _, f := range u.Faults {
			sim.detectsMask(f) // warm-up: grows the cone scratch buffers
		}
		allocs := testing.AllocsPerRun(10, func() {
			for _, f := range u.Faults {
				sim.detectsMask(f)
			}
		})
		if allocs != 0 {
			t.Fatalf("lanes=%d: detectsMask allocated %.1f times per sweep on a warmed engine; want 0", lanes, allocs)
		}
	}
}

// TestSharedTopoRaceStress drives many engines of mixed widths — plus
// PODEM engines — off one shared simTopo concurrently. Its value is under
// the tier-1 -race leg: every field of simTopo and netlist.Flat is
// read-shared across goroutines while per-engine value state is written.
func TestSharedTopoRaceStress(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	n := alu.Seq
	u := NewUniverse(n)
	topo := newSimTopo(n)
	var wg sync.WaitGroup
	for w := 0; w < 12; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sim := newFaultSimFromTopo(topo, laneWidths[w%len(laneWidths)])
			block := make([]Pattern, sim.lanes())
			for k := range block {
				p := make(Pattern, sim.NumControls())
				for i := range p {
					p[i] = uint8(rng.Intn(2))
				}
				block[k] = p
			}
			sim.loadBlock(block)
			eng := newPodem(topo, 1000)
			for fi := w; fi < len(u.Faults); fi += 3 {
				sim.detectsMask(u.Faults[fi])
				eng.generate(u.Faults[fi])
			}
		}(w)
	}
	wg.Wait()
}

func TestResolveLaneWidth(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	small := buildSmall(t)
	for _, lanes := range laneWidths {
		got, err := resolveLaneWidth(lanes, small, NewUniverse(small))
		if err != nil || got != lanes {
			t.Fatalf("resolveLaneWidth(%d) = %d, %v", lanes, got, err)
		}
	}
	if _, err := resolveLaneWidth(128, small, NewUniverse(small)); err == nil {
		t.Fatal("LaneWidth 128 accepted; want error")
	} else {
		var lw *LaneWidthError
		if !errors.As(err, &lw) || lw.Width != 128 {
			t.Fatalf("LaneWidth 128 error = %v, want *LaneWidthError{128}", err)
		}
	}
	if got, _ := resolveLaneWidth(0, small, NewUniverse(small)); got != 64 {
		t.Fatalf("auto width %d for a trivial netlist, want 64", got)
	}
	if got, _ := resolveLaneWidth(0, alu.Seq, NewUniverse(alu.Seq)); got == 0 {
		t.Fatal("auto width unresolved for the ALU")
	}
	if _, err := RunContext(context.Background(), small, Config{Seed: 1, LaneWidth: 96}); err == nil {
		t.Fatal("RunContext accepted LaneWidth 96")
	}
}

// TestAutoLaneWidthClassAware pins the satellite fix: auto selection
// must not pick a width slower than 64 lanes on PODEM-bound classes.
// cmp16 is deep and sparse (64 lanes is fastest in BENCH_faultsim.json),
// register files are shallow and fault-dense (the wide-sim winners).
func TestAutoLaneWidthClassAware(t *testing.T) {
	lib := gatelib.NewLibrary()
	cases := []struct {
		name  string
		build func() (*gatelib.Component, error)
		want  int
	}{
		{"cmp16", func() (*gatelib.Component, error) { return lib.CMP(16) }, 64},
		{"alu16_cs", func() (*gatelib.Component, error) {
			return lib.ALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderCarrySelect})
		}, 64},
		{"ldst16", func() (*gatelib.Component, error) { return lib.LDST(16) }, 64},
		{"rf16x8_1w2r", func() (*gatelib.Component, error) {
			return lib.RF(gatelib.RFConfig{Width: 16, NumRegs: 8, NumIn: 1, NumOut: 2})
		}, 256},
		{"rf16x16_2w2r", func() (*gatelib.Component, error) {
			return lib.RF(gatelib.RFConfig{Width: 16, NumRegs: 16, NumIn: 2, NumOut: 2})
		}, 256},
	}
	for _, tc := range cases {
		comp, err := tc.build()
		if err != nil {
			t.Fatal(err)
		}
		got, err := resolveLaneWidth(0, comp.Seq, NewUniverse(comp.Seq))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: auto lane width %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestLaneMetricsUseActiveWidth pins the satellite fix: the lane_util
// denominator must be the active lane width, not a hardcoded 64, and the
// active width is published as its own gauge.
func TestLaneMetricsUseActiveWidth(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	for _, lanes := range laneWidths {
		reg := obs.NewRegistry()
		Run(alu.Seq, Config{Seed: 7, LaneWidth: lanes, Obs: reg})
		if got := reg.Gauge("atpg.faultsim.lane_width").Value(); got != float64(lanes) {
			t.Fatalf("lane_width gauge %v, want %d", got, lanes)
		}
		util := reg.Gauge("atpg.faultsim.lane_util").Value()
		if util <= 0 || util > 1 {
			t.Fatalf("lanes=%d: lane_util %v outside (0, 1]", lanes, util)
		}
		blocks := reg.Counter("atpg.faultsim.blocks").Value()
		used := reg.Counter("atpg.faultsim.lanes").Value()
		if want := float64(used) / float64(int64(lanes)*blocks); util != want {
			t.Fatalf("lanes=%d: lane_util %v, want lanes/(width*blocks) = %v", lanes, util, want)
		}
	}
}
