package atpg

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/gatelib"
)

// fig9Components builds the library components the default (figure 9)
// exploration back-annotates: ALU, comparator, register file and the two
// socket types at the paper's 16-bit width.
func fig9Components(t testing.TB) []*gatelib.Component {
	t.Helper()
	lib := gatelib.NewLibrary()
	var comps []*gatelib.Component
	add := func(c *gatelib.Component, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	add(lib.ALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple}))
	add(lib.CMP(16))
	add(lib.RF(gatelib.RFConfig{Width: 16, NumRegs: 8, NumIn: 1, NumOut: 2}))
	add(lib.InputSocket(6))
	add(lib.OutputSocket(6))
	return comps
}

// TestShardedPodemDeterministicAcrossWorkers asserts the tentpole's core
// contract: the ATPG output is a function of (netlist, seed, config) only.
// Speculative sharded generation plus the canonical-order merge must
// reproduce the serial run byte-for-byte — patterns included — at any
// worker count.
func TestShardedPodemDeterministicAcrossWorkers(t *testing.T) {
	settings := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, c := range fig9Components(t) {
		var base *Result
		var baseWorkers int
		for _, w := range settings {
			res := Run(c.Seq, Config{Seed: 7, Workers: w})
			if base == nil {
				base, baseWorkers = res, w
				continue
			}
			if !reflect.DeepEqual(base, res) {
				t.Errorf("%s: Workers=%d result differs from Workers=%d:\n  %v\nvs\n  %v",
					c.Name, w, baseWorkers, res, base)
			}
		}
	}
}

// TestShardedPodemRaceStress hammers the speculative shard workers with
// far more goroutines than cores. Its real value is under the tier-1
// -race leg: every cross-shard write (candidate slots, engine state) is
// exercised while the merge pass consumes them.
func TestShardedPodemRaceStress(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	serial := Run(alu.Seq, Config{Seed: 7, Workers: 1})
	for _, w := range []int{2, 8} {
		sharded := Run(alu.Seq, Config{Seed: 7, Workers: w})
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("Workers=%d result differs from serial:\n  %v\nvs\n  %v", w, sharded, serial)
		}
	}
}

// TestDetectsZeroAllocOnWarmedSimulator pins the zero-alloc contract of
// the fault-simulation hot path: once the simulator's cone scratch has
// grown to its working size, Detects must not allocate.
func TestDetectsZeroAllocOnWarmedSimulator(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 8, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	n := alu.Seq
	u := NewUniverse(n)
	sim := NewSimulator(n)
	rng := newRand(7)
	block := make([]Pattern, 64)
	for k := range block {
		p := make(Pattern, sim.NumControls())
		for i := range p {
			p[i] = uint8(rng.Intn(2))
		}
		block[k] = p
	}
	sim.LoadBlock(block)
	for _, f := range u.Faults {
		sim.Detects(f) // warm-up: grows the cone scratch buffers
	}
	allocs := testing.AllocsPerRun(10, func() {
		for _, f := range u.Faults {
			sim.Detects(f)
		}
	})
	if allocs != 0 {
		t.Fatalf("Detects allocated %.1f times per full fault sweep on a warmed simulator; want 0", allocs)
	}
}

// TestBatchDropperMatchesPerPatternDrop replays the pre-batching serial
// drop loop (one LoadBlock per generated pattern, forward-only drops) as
// a reference and checks the batched top-up reproduces its detected set
// and counters exactly.
func TestBatchDropperMatchesPerPatternDrop(t *testing.T) {
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 4, Adder: gatelib.AdderRipple})
	if err != nil {
		t.Fatal(err)
	}
	n := alu.Seq
	cfg := Config{Seed: 7}.withDefaults()

	// Reference: the serial algorithm exactly as it was before batching.
	var refDetected []bool
	var refPatterns []Pattern
	refRes := &Result{}
	{
		u := NewUniverse(n)
		sim := NewSimulator(n)
		rng := newRand(cfg.Seed)
		detected := make([]bool, len(u.Faults))
		res := &Result{Netlist: n, TotalFaults: len(u.Faults)}
		m := &runMetrics{}
		pool := newSimPool(sim.t, 64, cfg.Workers)
		patterns := randomPhase(context.Background(), pool, u, cfg, detected, res, m, budget{})
		eng := newPodem(sim.t, cfg.BacktrackLimit)
		for fi := range u.Faults {
			if detected[fi] {
				continue
			}
			asg, outcome := eng.generate(u.Faults[fi])
			switch outcome {
			case podemRedundant:
				res.Redundant++
			case podemAborted:
				res.Aborted++
			case podemFound:
				pat := fillPattern(asg, rng)
				patterns = append(patterns, pat)
				res.PodemPatterns++
				sim.LoadBlock([]Pattern{pat})
				for fj := fi; fj < len(u.Faults); fj++ {
					if !detected[fj] && sim.Detects(u.Faults[fj]) != 0 {
						detected[fj] = true
						res.Detected++
					}
				}
				if !detected[fi] {
					res.Aborted++
				}
			}
		}
		refDetected = detected
		refPatterns = patterns
		refRes = res
	}

	// Batched top-up over an identical starting state.
	u := NewUniverse(n)
	sim := NewSimulator(n)
	rng := newRand(cfg.Seed)
	detected := make([]bool, len(u.Faults))
	res := &Result{Netlist: n, TotalFaults: len(u.Faults)}
	m := &runMetrics{}
	pool := newSimPool(sim.t, 64, cfg.Workers)
	patterns := randomPhase(context.Background(), pool, u, cfg, detected, res, m, budget{})
	patterns, err = podemTopUp(context.Background(), sim, u, cfg, rng, detected, res, patterns, m, budget{})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(refDetected, detected) {
		t.Error("batched drop yields a different detected set than the per-pattern reference")
	}
	if !reflect.DeepEqual(refPatterns, patterns) {
		t.Errorf("batched drop yields different patterns: %d vs %d", len(patterns), len(refPatterns))
	}
	if refRes.Detected != res.Detected || refRes.Redundant != res.Redundant ||
		refRes.Aborted != res.Aborted || refRes.PodemPatterns != res.PodemPatterns {
		t.Errorf("batched drop counters differ: got %+v want %+v", res, refRes)
	}
}
