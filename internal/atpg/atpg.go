package atpg

import (
	"context"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Config controls the ATPG driver. The zero value selects sensible
// defaults; Seed 0 is a valid deterministic seed.
type Config struct {
	// Seed drives the random-pattern phase and don't-care fill.
	Seed int64
	// MaxRandomPatterns bounds the random phase (default 1024, rounded up
	// to whole 64-pattern blocks). Zero selects the default; negative
	// disables the random phase (PODEM-only, the ablation variant).
	MaxRandomPatterns int
	// RandomDryBlocks stops the random phase after this many consecutive
	// blocks without a new detection (default 2).
	RandomDryBlocks int
	// BacktrackLimit aborts a PODEM run after this many backtracks
	// (default 4000).
	BacktrackLimit int
	// SkipPODEM runs only the random phase (coverage will be partial).
	SkipPODEM bool
	// SkipCompaction keeps the raw pattern list.
	SkipCompaction bool
	// SCOAPGuidance steers PODEM's input choices by controllability cost
	// (the testability-measure ablation of DESIGN.md).
	SCOAPGuidance bool
	// LaneWidth selects the pattern-block width of the fault simulator:
	// 64, 256 or 512 parallel pattern lanes per block ([1], [4] or
	// [8]uint64 per net). 0 picks automatically by netlist size. The
	// detected-fault sets, patterns and every report field are
	// byte-identical at every width — wider lanes only amortize the
	// per-call and per-gate fixed costs of fault simulation over more
	// patterns (see DESIGN.md); only throughput and the block-granular
	// atpg.faultsim.{blocks,lanes} tallies change.
	LaneWidth int
	// Workers bounds the parallelism of every phase: fault simulation in
	// the random and compaction phases, and speculative PODEM generation
	// in the deterministic phase (0 = GOMAXPROCS, 1 = serial). Results
	// are identical at any setting: fault-simulation work is partitioned
	// disjointly, and speculative PODEM candidates are merged by a
	// single-threaded pass in canonical fault order, so the output is a
	// function of (netlist, seed, config) only.
	Workers int
	// Deadline bounds the run's wall-clock time (0 = none). Unlike a
	// context deadline — which aborts the run with an error and no
	// result — an exhausted Deadline degrades gracefully: pattern
	// generation stops, every fault still undetected is counted aborted,
	// and the partial result is returned with DeadlineExceeded set so
	// callers (testcost.Annotator) can fall back to an analytical bound.
	// A run that finishes within the budget is byte-identical to an
	// unbudgeted run.
	Deadline time.Duration
	// Inject, when non-nil, enables the faultinject.ATPGPattern injection
	// point in the deterministic-phase merge loop (one hit per fault, in
	// canonical order). Production runs pass nothing and pay one pointer
	// test per fault.
	Inject *faultinject.Injector
	// Obs, when non-nil, receives ATPG metrics: PODEM decisions and
	// backtracks, fault-simulation blocks and lane utilization, shard and
	// merge statistics, pattern and fault counts (counters "atpg.*",
	// gauge "atpg.faultsim.lane_util"). A nil registry costs nothing.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxRandomPatterns == 0 {
		c.MaxRandomPatterns = 1024
	}
	if c.RandomDryBlocks == 0 {
		c.RandomDryBlocks = 2
	}
	if c.BacktrackLimit == 0 {
		c.BacktrackLimit = 4000
	}
	return c
}

// workerCount resolves the configured worker budget.
func (c Config) workerCount() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Result reports the outcome of an ATPG run. NumPatterns is the paper's
// n_p for the circuit.
type Result struct {
	Netlist *netlist.Netlist
	// Patterns is the final (compacted) test set.
	Patterns []Pattern
	// TotalFaults is the size of the collapsed fault universe.
	TotalFaults int
	// Detected counts collapsed faults covered by Patterns.
	Detected int
	// Redundant counts faults proved untestable (PODEM search exhausted).
	Redundant int
	// Aborted counts faults abandoned at the backtrack limit.
	Aborted int
	// RandomDetected counts faults caught during the random phase.
	RandomDetected int
	// PodemPatterns counts deterministic patterns before compaction.
	PodemPatterns int
	// DeadlineExceeded reports that Config.Deadline expired before every
	// fault was resolved: the pattern set is valid but partial (the
	// unresolved faults are counted in Aborted), and the pattern count is
	// not the converged n_p — consumers should substitute an analytical
	// bound (see EstimateBound).
	DeadlineExceeded bool
}

// NumPatterns returns n_p, the size of the final test set.
func (r *Result) NumPatterns() int { return len(r.Patterns) }

// Coverage returns detected / (total - redundant): fault coverage with
// provably untestable faults excluded, the figure usually quoted by ATPG
// tools (Table 1's FC column).
func (r *Result) Coverage() float64 {
	den := r.TotalFaults - r.Redundant
	if den <= 0 {
		return 1
	}
	return float64(r.Detected) / float64(den)
}

// RawCoverage returns detected / total over the collapsed universe.
func (r *Result) RawCoverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: np=%d faults=%d detected=%d redundant=%d aborted=%d FC=%.2f%%",
		r.Netlist.Name, r.NumPatterns(), r.TotalFaults, r.Detected, r.Redundant, r.Aborted, 100*r.Coverage())
}

// runMetrics accumulates observability tallies as plain fields so the hot
// loops never touch the registry (Registry.Counter takes a mutex and a map
// lookup per call). All fields are bumped from the phase-driver goroutine
// only and flushed to the registry once per run.
type runMetrics struct {
	laneWidth int64 // active lane width (64/256/512)
	blocks    int64 // fault-simulation blocks evaluated (laneWidth lanes each)
	lanes     int64 // lanes across those blocks that carried real patterns

	shards    int64 // PODEM shard workers launched
	merged    int64 // PODEM candidates consumed by the merge pass
	discarded int64 // speculative candidates dropped (target already covered)

	decisions  int64 // PODEM decisions across all engines
	backtracks int64 // PODEM backtracks across all engines
}

// flush publishes the tallies. Lane utilization is lanes divided by the
// block capacity laneWidth*blocks: 1.0 means every simulated block was
// fully saturated at the active lane width.
func (m *runMetrics) flush(r *obs.Registry, res *Result) {
	if r == nil {
		return
	}
	r.Counter("atpg.runs").Inc()
	r.Counter("atpg.faults.total").Add(int64(res.TotalFaults))
	r.Counter("atpg.faults.detected").Add(int64(res.Detected))
	r.Counter("atpg.faults.redundant").Add(int64(res.Redundant))
	r.Counter("atpg.faults.aborted").Add(int64(res.Aborted))
	r.Counter("atpg.patterns.random").Add(int64(res.RandomDetected))
	r.Counter("atpg.patterns.podem").Add(int64(res.PodemPatterns))
	r.Counter("atpg.patterns.final").Add(int64(len(res.Patterns)))
	r.Counter("atpg.podem.decisions").Add(m.decisions)
	r.Counter("atpg.podem.backtracks").Add(m.backtracks)
	r.Counter("atpg.podem.shards").Add(m.shards)
	r.Counter("atpg.podem.merged").Add(m.merged)
	r.Counter("atpg.podem.discarded").Add(m.discarded)
	r.Counter("atpg.faultsim.blocks").Add(m.blocks)
	r.Counter("atpg.faultsim.lanes").Add(m.lanes)
	if res.DeadlineExceeded {
		r.Counter("atpg.deadline.exceeded").Inc()
	}
	if m.laneWidth > 0 {
		r.Gauge("atpg.faultsim.lane_width").Set(float64(m.laneWidth))
	}
	if m.blocks > 0 {
		r.Gauge("atpg.faultsim.lane_util").SetRatio(m.lanes, m.laneWidth*m.blocks)
	}
}

// Run executes the full ATPG flow on the netlist (full-scan view):
// a seeded random-pattern phase with fault dropping, deterministic PODEM
// top-up for the remaining faults, and reverse-order static compaction.
//
// Deprecated: Run is a thin shim over RunContext with a background
// context; a long PODEM run then cannot be cancelled. Use RunContext
// (with a background context the error is always nil).
func Run(n *netlist.Netlist, cfg Config) *Result {
	res, _ := RunContext(context.Background(), n, cfg)
	return res
}

// budget is the run's wall-clock deadline (zero = unbounded). time.Now
// is monotonic, so once expired reports true it stays true — the
// property the sharded PODEM merge relies on (a worker that stopped on
// the deadline implies the later merge loop stops on its first check).
type budget struct{ at time.Time }

func newBudget(d time.Duration) budget {
	if d <= 0 {
		return budget{}
	}
	return budget{at: time.Now().Add(d)}
}

func (b budget) expired() bool { return !b.at.IsZero() && time.Now().After(b.at) }

// RunContext is Run with cancellation: the random-pattern and PODEM
// phases poll ctx (per block / per fault) and return (nil, ctx.Err())
// when it is done. With a background context and no Deadline the error
// is always nil; an exhausted Deadline is not an error — see
// Config.Deadline.
func RunContext(ctx context.Context, n *netlist.Netlist, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	u := NewUniverse(n)
	lanes, err := resolveLaneWidth(cfg.LaneWidth, n, u)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topo := newSimTopo(n)
	ws := newFaultSimFromTopo(topo, lanes)
	res := &Result{Netlist: n, TotalFaults: len(u.Faults)}
	m := &runMetrics{laneWidth: int64(lanes)}
	defer m.flush(cfg.Obs, res)
	bud := newBudget(cfg.Deadline)

	detected := make([]bool, len(u.Faults))
	var patterns []Pattern

	if cfg.MaxRandomPatterns > 0 {
		pool := newSimPool(topo, lanes, cfg.Workers)
		patterns = randomPhase(ctx, pool, u, cfg, detected, res, m, bud)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	if !cfg.SkipPODEM && !bud.expired() {
		var err error
		patterns, err = podemTopUp(ctx, ws, u, cfg, rng, detected, res, patterns, m, bud)
		if err != nil {
			return nil, err
		}
	}

	if bud.expired() {
		res.DeadlineExceeded = true
		markRemainingAborted(detected, res)
	}

	if cfg.SkipCompaction {
		res.Patterns = patterns
		return res, nil
	}
	res.Patterns = compactReverse(newSimPool(topo, lanes, cfg.Workers), u, patterns, detected, m)
	return res, nil
}

// LaneWidthError reports a Config.LaneWidth outside the supported set.
// It is a typed error so spec boundaries (CLI flags, jobspec) can reject
// the value up front instead of falling through to the scalar path.
type LaneWidthError struct{ Width int }

func (e *LaneWidthError) Error() string {
	return fmt.Sprintf("atpg: invalid lane width %d (want 0 for auto, or 64, 256, 512)", e.Width)
}

// resolveLaneWidth validates Config.LaneWidth and resolves the automatic
// default. Wide blocks only pay when fault simulation dominates the run:
// the fixed per-Detects and per-gate costs amortize over more lanes. On
// PODEM-bound classes (deep, sparse netlists like cmp16: many levels,
// few faults per level) the run spends its time in the single-pattern
// engine and wide blocks just add per-block overhead — BENCH_faultsim.json
// recorded cmp16 at 0.93x/0.82x under the old size-only rule. So auto is
// class-aware: it needs BOTH a large netlist and a high fault density per
// topological level (the measurable proxy for the fault-to-pattern ratio;
// dense shallow fabrics like register files converge in few patterns per
// fault-heavy level and are exactly the wide-sim winners). Every width
// produces identical output, so the heuristic only steers throughput.
func resolveLaneWidth(w int, n *netlist.Netlist, u *Universe) (int, error) {
	switch w {
	case 64, 256, 512:
		return w, nil
	case 0:
		levels := 0
		for _, l := range n.Flat().GateLevel {
			if int(l)+1 > levels {
				levels = int(l) + 1
			}
		}
		if levels < 1 {
			return 64, nil
		}
		density := float64(len(u.Faults)) / float64(levels)
		switch {
		case len(n.Gates) >= 2048 && density >= 400:
			return 512, nil
		case len(n.Gates) >= 256 && density >= 400:
			return 256, nil
		default:
			return 64, nil
		}
	default:
		return 0, &LaneWidthError{Width: w}
	}
}

// markRemainingAborted counts every still-undetected fault as aborted —
// the deadline-exhaustion bookkeeping that keeps Detected+Redundant+
// Aborted equal to what a converged run would partition.
func markRemainingAborted(detected []bool, res *Result) {
	aborted := 0
	for _, d := range detected {
		if !d {
			aborted++
		}
	}
	// Redundant and previously-aborted faults were already counted by the
	// merge loop and are marked detected=false; subtract them so the sum
	// stays consistent.
	aborted -= res.Redundant + res.Aborted
	if aborted > 0 {
		res.Aborted += aborted
	}
}

// podemCandidate is a speculatively generated PODEM outcome for one fault.
type podemCandidate struct {
	asg     []v3
	outcome podemOutcome
	ok      bool
}

// podemTopUp runs the deterministic phase. Generation is sharded: the
// faults still undetected after the random phase are partitioned
// round-robin across Workers goroutines, each with a private podem engine
// and Simulator, which speculatively generate a candidate per fault. A
// single-threaded merge pass then walks the fault universe in canonical
// index order: a candidate whose target was covered by an earlier-merged
// pattern is discarded, everything else is accepted exactly as the serial
// algorithm would have — so the output is byte-identical for Workers=1
// and Workers=N (generate is a pure function of the fault: the engine
// resets its assignment, cone and implication state on every call, and
// the don't-care fill consumes the rng only at accept time, in fault
// order).
//
// Accepted patterns are fault-dropped in lane-width batches by a
// batchDropper instead of one LoadBlock per pattern.
func podemTopUp(ctx context.Context, ws faultSim, u *Universe, cfg Config, rng *rand.Rand, detected []bool, res *Result, patterns []Pattern, m *runMetrics, bud budget) ([]Pattern, error) {
	workers := cfg.workerCount()
	m.shards += int64(workers)

	var scoap *Scoap
	if cfg.SCOAPGuidance {
		scoap = ComputeScoap(u.N)
	}

	// Candidate source: speculative shards when parallel, on-demand
	// generation (the serial algorithm, verbatim) otherwise. Every engine
	// binds the same read-only structural view.
	var cands []podemCandidate
	var engines []*podem
	if workers > 1 {
		cands, engines = shardedCandidates(ctx, u, cfg, detected, workers, scoap, bud, ws.topo())
	} else {
		eng := newPodem(ws.topo(), cfg.BacktrackLimit)
		eng.scoap = scoap
		engines = []*podem{eng}
	}
	defer func() {
		for _, eng := range engines {
			m.decisions += eng.totalDecisions
			m.backtracks += eng.totalBacktracks
		}
	}()

	drop := newBatchDropper(ws, u, detected, res, m)
	for fi := range u.Faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Chaos hook: one hit per fault in canonical order (so the hit
		// sequence is identical at any worker count). A firing error or
		// panic surfaces exactly like a context failure would.
		if err := cfg.Inject.Hit(faultinject.ATPGPattern); err != nil {
			return nil, err
		}
		if bud.expired() {
			// Out of wall-clock budget: settle the pending block so the
			// patterns found so far keep their drop credit, and leave the
			// rest of the universe to markRemainingAborted.
			drop.flush(fi)
			return patterns, nil
		}
		if detected[fi] {
			// Already covered by the random phase or a flushed block; a
			// speculative candidate for it was wasted work.
			if cands != nil && cands[fi].ok {
				m.discarded++
			}
			continue
		}
		if drop.covers(fi) {
			// Covered by a pending (not yet flushed) pattern.
			detected[fi] = true
			res.Detected++
			if cands != nil && cands[fi].ok {
				m.discarded++
			}
			continue
		}
		var asg []v3
		var outcome podemOutcome
		if cands != nil {
			// The ctx and deadline polls above ran after the worker wrote
			// this entry: workers only skip faults once ctx is cancelled
			// or the budget expired, and both are monotone, so a missing
			// candidate is unreachable here. Guard anyway — treating a
			// hole as budget exhaustion keeps the run usable even if the
			// monotonicity argument is ever broken.
			if !cands[fi].ok {
				drop.flush(fi)
				return patterns, nil
			}
			asg, outcome = cands[fi].asg, cands[fi].outcome
		} else {
			asg, outcome = engines[0].generate(u.Faults[fi])
		}
		m.merged++
		switch outcome {
		case podemRedundant:
			res.Redundant++
		case podemAborted:
			res.Aborted++
		case podemFound:
			pat := fillPattern(asg, rng)
			patterns = append(patterns, pat)
			res.PodemPatterns++
			drop.add(pat, fi)
			if drop.full() {
				drop.flush(fi + 1)
			}
		}
	}
	drop.flush(len(u.Faults))
	return patterns, nil
}

// shardedCandidates launches the speculative generation workers and waits
// for them. Each worker owns a private podem engine over the shared
// read-only structural view; the SCOAP table is shared too. Faults are
// dealt round-robin for load balance; the partition does not affect the
// output because the merge pass re-serializes in fault order.
func shardedCandidates(ctx context.Context, u *Universe, cfg Config, detected []bool, workers int, scoap *Scoap, bud budget, topo *simTopo) ([]podemCandidate, []*podem) {
	var work []int32
	for fi := range u.Faults {
		if !detected[fi] {
			work = append(work, int32(fi))
		}
	}
	cands := make([]podemCandidate, len(u.Faults))
	engines := make([]*podem, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		eng := newPodem(topo, cfg.BacktrackLimit)
		eng.scoap = scoap
		engines[w] = eng
		wg.Add(1)
		go func(w int, eng *podem) {
			defer wg.Done()
			for i := w; i < len(work); i += workers {
				if ctx.Err() != nil || bud.expired() {
					return
				}
				fi := work[i]
				asg, outcome := eng.generate(u.Faults[fi])
				cands[fi] = podemCandidate{asg: asg, outcome: outcome, ok: true}
			}
		}(w, eng)
	}
	wg.Wait()
	return cands, engines
}

// batchDropper accumulates accepted PODEM patterns into up-to-lane-width
// blocks and fault-drops whole blocks at once, replacing the serial
// algorithm's one-pattern LoadBlock per accepted pattern.
//
// The serial algorithm drops each new pattern against every fault at or
// beyond its target, immediately. The batched replay preserves those
// decisions exactly, at any batch width:
//
//   - a fault reaching its merge slot is checked against all pending
//     lanes (covers) — the same "was it dropped by an earlier pattern"
//     test the serial loop answers with detected[fi];
//   - at flush, each lane's target is checked on its own lane only: by
//     construction no earlier pending lane detects it (covers ruled that
//     out when the target was accepted) and serial drops are
//     forward-only, so later patterns never reach an earlier target;
//   - the flush tail then drops every fault beyond the merge position
//     against all lanes — faults between a lane's target and the merge
//     position were already screened by covers at their own slots.
//
// Detection outcomes, counters and patterns are therefore independent of
// where the flush boundaries fall — which is exactly why widening the
// batch from 64 to 256/512 lanes cannot move a single output byte.
type batchDropper struct {
	sim      faultSim
	u        *Universe
	detected []bool
	res      *Result
	m        *runMetrics

	pending []Pattern
	targets []int32 // pending[k] was generated for fault targets[k]
	loaded  bool    // sim currently holds the pending block
}

func newBatchDropper(sim faultSim, u *Universe, detected []bool, res *Result, m *runMetrics) *batchDropper {
	return &batchDropper{
		sim:      sim,
		u:        u,
		detected: detected,
		res:      res,
		m:        m,
		pending:  make([]Pattern, 0, sim.lanes()),
		targets:  make([]int32, 0, sim.lanes()),
	}
}

func (d *batchDropper) full() bool { return len(d.pending) == d.sim.lanes() }

// add accepts a pattern generated for fault fi into the next free lane.
func (d *batchDropper) add(pat Pattern, fi int) {
	d.pending = append(d.pending, pat)
	d.targets = append(d.targets, int32(fi))
	d.loaded = false
}

// covers reports whether any pending pattern detects the fault.
func (d *batchDropper) covers(fi int) bool {
	if len(d.pending) == 0 {
		return false
	}
	d.load()
	m := d.sim.detectsMask(d.u.Faults[fi])
	return m.any()
}

func (d *batchDropper) load() {
	if d.loaded {
		return
	}
	d.sim.loadBlock(d.pending)
	d.loaded = true
}

// flush settles the pending block: credits each lane's own target (a
// pattern that misses its target is counted aborted, exactly like the
// serial self-check), drops every fault at or beyond the merge position
// pos, and clears the block.
func (d *batchDropper) flush(pos int) {
	if len(d.pending) == 0 {
		return
	}
	d.load()
	d.m.blocks++
	d.m.lanes += int64(len(d.pending))
	for k, t := range d.targets {
		m := d.sim.detectsMask(d.u.Faults[t])
		if m.bit(k) {
			d.detected[t] = true
			d.res.Detected++
		} else {
			// The generated pattern must detect its target; if it does
			// not, the engine is inconsistent for this fault — count it
			// as aborted rather than overstating coverage.
			d.res.Aborted++
		}
	}
	for fj := pos; fj < len(d.u.Faults); fj++ {
		if d.detected[fj] {
			continue
		}
		m := d.sim.detectsMask(d.u.Faults[fj])
		if m.any() {
			d.detected[fj] = true
			d.res.Detected++
		}
	}
	d.pending = d.pending[:0]
	d.targets = d.targets[:0]
	d.loaded = false
}

// simPool owns one fault-simulation engine per worker for parallel
// serial-fault simulation over disjoint fault ranges. All engines share
// one read-only simTopo, so a pool costs per-worker value arrays only.
type simPool struct {
	sims []faultSim
	// narrow is a 64-lane tier used by firstLanes to screen each block's
	// first sub-block cheaply before paying full width; nil at width 64.
	narrow *simPool
}

func newSimPool(t *simTopo, lanes, workers int) *simPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	p := &simPool{sims: make([]faultSim, workers)}
	for i := range p.sims {
		p.sims[i] = newFaultSimFromTopo(t, lanes)
	}
	if lanes > 64 {
		p.narrow = newSimPool(t, 64, workers)
	}
	return p
}

// lanes returns the pattern-block width of the pool's engines.
func (p *simPool) lanes() int { return p.sims[0].lanes() }

// forBlock loads the pattern block into every worker's engine and calls
// fn(workerSim, faultIndex) for each fault index in [0, nFaults) from
// exactly one worker. fn must only touch per-fault state.
func (p *simPool) forBlock(block []Pattern, nFaults int, fn func(ws faultSim, fi int)) {
	p.forLoaded(func(ws faultSim) { ws.loadBlock(block) }, nFaults, fn)
}

// forBlockWords is forBlock for a block already in transposed word form
// (see wideSim.loadWords).
func (p *simPool) forBlockWords(words [][]uint64, nFaults int, fn func(ws faultSim, fi int)) {
	p.forLoaded(func(ws faultSim) { ws.loadWords(words) }, nFaults, fn)
}

func (p *simPool) forLoaded(load func(ws faultSim), nFaults int, fn func(ws faultSim, fi int)) {
	if len(p.sims) == 1 {
		load(p.sims[0])
		for fi := 0; fi < nFaults; fi++ {
			fn(p.sims[0], fi)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (nFaults + len(p.sims) - 1) / len(p.sims)
	for w := range p.sims {
		lo := w * chunk
		hi := lo + chunk
		if hi > nFaults {
			hi = nFaults
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(ws faultSim, lo, hi int) {
			defer wg.Done()
			load(ws)
			for fi := lo; fi < hi; fi++ {
				fn(ws, fi)
			}
		}(p.sims[w], lo, hi)
	}
	wg.Wait()
}

// firstLanes fills laneOf[fi] with the first block lane detecting fault fi
// (-1 if none), considering only faults with skip(fi) == false. With screen
// set, blocks wider than 64 lanes run sub-block by sub-block on the 64-lane
// tier, dropping each fault at its first detecting sub-block — in a
// detection-dense block that retires most faults at a fraction of the word
// cost. With screen clear, the full-width engine simulates every live fault
// in one pass, amortizing per-call and scheduling overhead across the whole
// block — the cheaper plan when most faults stay alive to the end anyway.
// The wide mask's sub-block words are identical to the narrow masks (the
// width-invariance property), so both tiers report the same first lane.
// Screening is purely an execution strategy: laneOf is identical either
// way, so callers may toggle it by any heuristic without affecting results.
func (p *simPool) firstLanes(faults []Fault, block []Pattern, screen bool, skip func(int) bool, laneOf []int16) {
	nSub := (len(block) + 63) / 64
	p.firstLanesBy(faults, nSub, screen, skip, laneOf,
		func(ws faultSim, s int) {
			sub := block[s*64:]
			if len(sub) > 64 {
				sub = sub[:64]
			}
			ws.loadBlock(sub)
		},
		func(n int, fn func(ws faultSim, fi int)) { p.forBlock(block, n, fn) })
}

// firstLanesWords is firstLanes for a block already in transposed word form:
// words[s] holds sub-block s's per-controllable lane words.
func (p *simPool) firstLanesWords(faults []Fault, words [][]uint64, screen bool, skip func(int) bool, laneOf []int16) {
	p.firstLanesBy(faults, len(words), screen, skip, laneOf,
		func(ws faultSim, s int) { ws.loadWords(words[s : s+1]) },
		func(n int, fn func(ws faultSim, fi int)) { p.forBlockWords(words, n, fn) })
}

func (p *simPool) firstLanesBy(faults []Fault, nSub int, screen bool, skip func(int) bool, laneOf []int16,
	loadSub func(ws faultSim, s int),
	runFull func(n int, fn func(ws faultSim, fi int))) {
	for i := range laneOf {
		laneOf[i] = -1
	}
	if screen && p.narrow != nil && nSub > 1 {
		p.narrow.screenSubs(faults, nSub, skip, laneOf, loadSub)
		return
	}
	runFull(len(faults), func(ws faultSim, fi int) {
		if skip(fi) {
			return
		}
		mk := ws.detectsMask(faults[fi])
		if first := mk.first(); first >= 0 {
			laneOf[fi] = int16(first)
		}
	})
}

// screenSubs runs the 64-lane pool over each sub-block in serial order,
// dropping every fault at its first detecting sub-block. The single-worker
// path devirtualizes the engine to the concrete 64-lane instantiation so
// the per-fault inner loop pays no interface dispatch, closure call or
// laneMask widening — at tens of thousands of detects calls per run those
// fixed costs rival the simulation work itself.
func (p *simPool) screenSubs(faults []Fault, nSub int, skip func(int) bool, laneOf []int16, loadSub func(ws faultSim, s int)) {
	live := 0
	for fi := range faults {
		if !skip(fi) {
			live++
		}
	}
	if len(p.sims) == 1 {
		ws := p.sims[0]
		w64, _ := ws.(*wideSim[[1]uint64])
		for s := 0; s < nSub && live > 0; s++ {
			loadSub(ws, s)
			base := int16(s * 64)
			if w64 != nil {
				for fi := range faults {
					if skip(fi) || laneOf[fi] >= 0 {
						continue
					}
					if mk := w64.detects(faults[fi])[0]; mk != 0 {
						laneOf[fi] = base + int16(bits.TrailingZeros64(mk))
						live--
					}
				}
				continue
			}
			for fi := range faults {
				if skip(fi) || laneOf[fi] >= 0 {
					continue
				}
				if mk := ws.detectsMask(faults[fi]); mk[0] != 0 {
					laneOf[fi] = base + int16(bits.TrailingZeros64(mk[0]))
					live--
				}
			}
		}
		return
	}
	shared := int64(live)
	chunk := (len(faults) + len(p.sims) - 1) / len(p.sims)
	for s := 0; s < nSub && atomic.LoadInt64(&shared) > 0; s++ {
		base := int16(s * 64)
		var wg sync.WaitGroup
		for w := range p.sims {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(faults) {
				hi = len(faults)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(ws faultSim, lo, hi int) {
				defer wg.Done()
				loadSub(ws, s)
				for fi := lo; fi < hi; fi++ {
					if skip(fi) || laneOf[fi] >= 0 {
						continue
					}
					if mk := ws.detectsMask(faults[fi]); mk[0] != 0 {
						laneOf[fi] = base + int16(bits.TrailingZeros64(mk[0]))
						atomic.AddInt64(&shared, -1)
					}
				}
			}(p.sims[w], lo, hi)
		}
		wg.Wait()
	}
}

// fillSubWords generates the pattern content of global 64-pattern sub-block
// `sub`: one lane word per controllable (bit k = pattern sub*64+k's value),
// from a splitmix64 stream seeded by subSeed. Each sub-block's content is a
// pure function of (seed, sub), so any lane width generates exactly the
// same pattern sequence, speculative sub-blocks past a mid-block stop cost
// nothing but their own generation, and the driver rng stream is left
// untouched for the PODEM phase's don't-care fill. Generating words rather
// than pattern bytes feeds the simulator's transposed layout directly —
// one RNG step per 64 lanes of a controllable instead of one per lane.
func fillSubWords(seed, sub int64, w []uint64) {
	st := uint64(subSeed(seed, sub))
	for ci := range w {
		st += 0x9e3779b97f4a7c15
		z := st
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		w[ci] = z
	}
}

// subSeed derives the pattern-generator state of a global 64-pattern
// sub-block from the configured seed (splitmix64 finalizer).
func subSeed(seed, sub int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(sub+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// randomPhase applies seeded random blocks with fault dropping and returns
// the patterns that were first detectors of at least one fault. Blocks are
// simulated pool.lanes() patterns at a time, but pattern content is keyed
// to the global 64-pattern sub-block index (subSeed) and detection credit
// and the dry/total stopping rule replay the sub-blocks in serial order, so
// the detected set, counters and kept patterns are identical at every lane
// width. The 64-lane screening tier of firstLanes is enabled while it pays
// — while at least 1/16th of the live faults drop per block — and skipped
// once the survivors dominate, where a single full-width pass is cheaper.
func randomPhase(ctx context.Context, pool *simPool, u *Universe, cfg Config, detected []bool, res *Result, m *runMetrics, bud budget) []Pattern {
	width := pool.lanes()
	nSub := width / 64
	nCtrl := pool.sims[0].NumControls()
	var kept []Pattern
	dry := 0
	total := 0
	sub := 0 // global sub-block counter: seeds pattern generation
	screen := true
	laneOf := make([]int16, len(u.Faults))
	words := make([][]uint64, nSub)
	for s := range words {
		words[s] = make([]uint64, nCtrl)
	}
	subHits := make([][]int32, nSub) // newly detected fault indices per sub-block
	for total < cfg.MaxRandomPatterns && dry < cfg.RandomDryBlocks {
		if ctx.Err() != nil || bud.expired() {
			return kept
		}
		// Fill up to nSub sub-blocks. The total bound is known in advance;
		// the dry bound is only resolved during replay below, so later
		// sub-blocks are generated speculatively.
		gen := 0
		for s := 0; s < nSub && total+64*s < cfg.MaxRandomPatterns; s++ {
			fillSubWords(cfg.Seed, int64(sub+s), words[s])
			gen++
		}
		sub += gen
		m.blocks++
		m.lanes += int64(gen * 64)
		pool.firstLanesWords(u.Faults, words[:gen], screen, func(fi int) bool { return detected[fi] }, laneOf)
		cands, hits := 0, 0
		for s := range subHits {
			subHits[s] = subHits[s][:0]
		}
		for fi := range u.Faults {
			if detected[fi] {
				continue
			}
			cands++
			if lane := laneOf[fi]; lane >= 0 {
				hits++
				subHits[lane>>6] = append(subHits[lane>>6], int32(fi))
			}
		}
		screen = hits*16 >= cands
		// Replay the sub-blocks in serial order: a fault's first detecting
		// lane falls in the same sub-block the 64-lane schedule would have
		// detected it in, and the stopping rule is applied exactly where
		// that schedule would have stopped. A mid-block stop leaves later
		// sub-blocks' detections unapplied, exactly as if never simulated.
		for s := 0; s < gen; s++ {
			total += 64
			lo := int16(s * 64)
			laneUseful := uint64(0)
			for _, fi := range subHits[s] {
				detected[fi] = true
				laneUseful |= 1 << uint(laneOf[fi]-lo)
			}
			newly := len(subHits[s])
			res.Detected += newly
			res.RandomDetected += newly
			if newly == 0 {
				dry++
			} else {
				dry = 0
				for k := 0; k < 64; k++ {
					if laneUseful>>uint(k)&1 == 1 {
						p := make(Pattern, nCtrl)
						for ci, w := range words[s] {
							p[ci] = uint8(w >> uint(k) & 1)
						}
						kept = append(kept, p)
					}
				}
			}
			if total >= cfg.MaxRandomPatterns || dry >= cfg.RandomDryBlocks {
				return kept
			}
		}
	}
	return kept
}

// fillPattern resolves the don't-care positions of a PODEM assignment with
// random values (improving collateral detection).
func fillPattern(asg []v3, rng *rand.Rand) Pattern {
	p := make(Pattern, len(asg))
	for i, v := range asg {
		switch v {
		case v0:
			p[i] = 0
		case v1:
			p[i] = 1
		default:
			p[i] = uint8(rng.Intn(2))
		}
	}
	return p
}

// compactReverse performs reverse-order static compaction: patterns are
// re-fault-simulated from last to first, pool.lanes() per block, and kept
// only if they are the first (in that order) to detect some fault. The
// first-detecting-lane credit is in lane order, so widening the block
// keeps the decision — and the kept set — identical to the 64-lane
// schedule.
func compactReverse(pool *simPool, u *Universe, patterns []Pattern, detected []bool, m *runMetrics) []Pattern {
	if len(patterns) == 0 {
		return patterns
	}
	width := pool.lanes()
	reversed := make([]Pattern, len(patterns))
	for i, p := range patterns {
		reversed[len(patterns)-1-i] = p
	}
	covered := make([]bool, len(u.Faults))
	useful := make([]bool, len(reversed))
	laneOf := make([]int16, len(u.Faults))
	screen := true
	for start := 0; start < len(reversed); start += width {
		end := start + width
		if end > len(reversed) {
			end = len(reversed)
		}
		block := reversed[start:end]
		m.blocks++
		m.lanes += int64(len(block))
		pool.firstLanes(u.Faults, block, screen, func(fi int) bool { return !detected[fi] || covered[fi] }, laneOf)
		cands, hits := 0, 0
		for fi := range u.Faults {
			if !detected[fi] || covered[fi] {
				continue
			}
			cands++
			if laneOf[fi] >= 0 {
				hits++
			}
		}
		screen = hits*16 >= cands
		for fi, lane := range laneOf {
			if lane < 0 {
				continue
			}
			covered[fi] = true
			useful[start+int(lane)] = true
		}
	}
	var out []Pattern
	// Restore original ordering among the kept patterns.
	for i := len(reversed) - 1; i >= 0; i-- {
		if useful[i] {
			out = append(out, reversed[i])
		}
	}
	return out
}
