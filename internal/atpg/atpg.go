package atpg

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Config controls the ATPG driver. The zero value selects sensible
// defaults; Seed 0 is a valid deterministic seed.
type Config struct {
	// Seed drives the random-pattern phase and don't-care fill.
	Seed int64
	// MaxRandomPatterns bounds the random phase (default 1024, rounded up
	// to whole 64-pattern blocks). Zero selects the default; negative
	// disables the random phase (PODEM-only, the ablation variant).
	MaxRandomPatterns int
	// RandomDryBlocks stops the random phase after this many consecutive
	// blocks without a new detection (default 2).
	RandomDryBlocks int
	// BacktrackLimit aborts a PODEM run after this many backtracks
	// (default 4000).
	BacktrackLimit int
	// SkipPODEM runs only the random phase (coverage will be partial).
	SkipPODEM bool
	// SkipCompaction keeps the raw pattern list.
	SkipCompaction bool
	// SCOAPGuidance steers PODEM's input choices by controllability cost
	// (the testability-measure ablation of DESIGN.md).
	SCOAPGuidance bool
	// Workers bounds the parallelism of every phase: fault simulation in
	// the random and compaction phases, and speculative PODEM generation
	// in the deterministic phase (0 = GOMAXPROCS, 1 = serial). Results
	// are identical at any setting: fault-simulation work is partitioned
	// disjointly, and speculative PODEM candidates are merged by a
	// single-threaded pass in canonical fault order, so the output is a
	// function of (netlist, seed, config) only.
	Workers int
	// Deadline bounds the run's wall-clock time (0 = none). Unlike a
	// context deadline — which aborts the run with an error and no
	// result — an exhausted Deadline degrades gracefully: pattern
	// generation stops, every fault still undetected is counted aborted,
	// and the partial result is returned with DeadlineExceeded set so
	// callers (testcost.Annotator) can fall back to an analytical bound.
	// A run that finishes within the budget is byte-identical to an
	// unbudgeted run.
	Deadline time.Duration
	// Inject, when non-nil, enables the faultinject.ATPGPattern injection
	// point in the deterministic-phase merge loop (one hit per fault, in
	// canonical order). Production runs pass nothing and pay one pointer
	// test per fault.
	Inject *faultinject.Injector
	// Obs, when non-nil, receives ATPG metrics: PODEM decisions and
	// backtracks, fault-simulation blocks and lane utilization, shard and
	// merge statistics, pattern and fault counts (counters "atpg.*",
	// gauge "atpg.faultsim.lane_util"). A nil registry costs nothing.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxRandomPatterns == 0 {
		c.MaxRandomPatterns = 1024
	}
	if c.RandomDryBlocks == 0 {
		c.RandomDryBlocks = 2
	}
	if c.BacktrackLimit == 0 {
		c.BacktrackLimit = 4000
	}
	return c
}

// workerCount resolves the configured worker budget.
func (c Config) workerCount() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Result reports the outcome of an ATPG run. NumPatterns is the paper's
// n_p for the circuit.
type Result struct {
	Netlist *netlist.Netlist
	// Patterns is the final (compacted) test set.
	Patterns []Pattern
	// TotalFaults is the size of the collapsed fault universe.
	TotalFaults int
	// Detected counts collapsed faults covered by Patterns.
	Detected int
	// Redundant counts faults proved untestable (PODEM search exhausted).
	Redundant int
	// Aborted counts faults abandoned at the backtrack limit.
	Aborted int
	// RandomDetected counts faults caught during the random phase.
	RandomDetected int
	// PodemPatterns counts deterministic patterns before compaction.
	PodemPatterns int
	// DeadlineExceeded reports that Config.Deadline expired before every
	// fault was resolved: the pattern set is valid but partial (the
	// unresolved faults are counted in Aborted), and the pattern count is
	// not the converged n_p — consumers should substitute an analytical
	// bound (see EstimateBound).
	DeadlineExceeded bool
}

// NumPatterns returns n_p, the size of the final test set.
func (r *Result) NumPatterns() int { return len(r.Patterns) }

// Coverage returns detected / (total - redundant): fault coverage with
// provably untestable faults excluded, the figure usually quoted by ATPG
// tools (Table 1's FC column).
func (r *Result) Coverage() float64 {
	den := r.TotalFaults - r.Redundant
	if den <= 0 {
		return 1
	}
	return float64(r.Detected) / float64(den)
}

// RawCoverage returns detected / total over the collapsed universe.
func (r *Result) RawCoverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: np=%d faults=%d detected=%d redundant=%d aborted=%d FC=%.2f%%",
		r.Netlist.Name, r.NumPatterns(), r.TotalFaults, r.Detected, r.Redundant, r.Aborted, 100*r.Coverage())
}

// runMetrics accumulates observability tallies as plain fields so the hot
// loops never touch the registry (Registry.Counter takes a mutex and a map
// lookup per call). All fields are bumped from the phase-driver goroutine
// only and flushed to the registry once per run.
type runMetrics struct {
	blocks int64 // 64-lane fault-simulation blocks evaluated
	lanes  int64 // lanes across those blocks that carried real patterns

	shards    int64 // PODEM shard workers launched
	merged    int64 // PODEM candidates consumed by the merge pass
	discarded int64 // speculative candidates dropped (target already covered)

	decisions  int64 // PODEM decisions across all engines
	backtracks int64 // PODEM backtracks across all engines
}

// flush publishes the tallies. Lane utilization is lanes/(64*blocks): 1.0
// means every simulated block was fully saturated.
func (m *runMetrics) flush(r *obs.Registry, res *Result) {
	if r == nil {
		return
	}
	r.Counter("atpg.runs").Inc()
	r.Counter("atpg.faults.total").Add(int64(res.TotalFaults))
	r.Counter("atpg.faults.detected").Add(int64(res.Detected))
	r.Counter("atpg.faults.redundant").Add(int64(res.Redundant))
	r.Counter("atpg.faults.aborted").Add(int64(res.Aborted))
	r.Counter("atpg.patterns.random").Add(int64(res.RandomDetected))
	r.Counter("atpg.patterns.podem").Add(int64(res.PodemPatterns))
	r.Counter("atpg.patterns.final").Add(int64(len(res.Patterns)))
	r.Counter("atpg.podem.decisions").Add(m.decisions)
	r.Counter("atpg.podem.backtracks").Add(m.backtracks)
	r.Counter("atpg.podem.shards").Add(m.shards)
	r.Counter("atpg.podem.merged").Add(m.merged)
	r.Counter("atpg.podem.discarded").Add(m.discarded)
	r.Counter("atpg.faultsim.blocks").Add(m.blocks)
	r.Counter("atpg.faultsim.lanes").Add(m.lanes)
	if res.DeadlineExceeded {
		r.Counter("atpg.deadline.exceeded").Inc()
	}
	if m.blocks > 0 {
		r.Gauge("atpg.faultsim.lane_util").Set(float64(m.lanes) / float64(64*m.blocks))
	}
}

// Run executes the full ATPG flow on the netlist (full-scan view):
// a seeded random-pattern phase with fault dropping, deterministic PODEM
// top-up for the remaining faults, and reverse-order static compaction.
//
// Deprecated: Run is a thin shim over RunContext with a background
// context; a long PODEM run then cannot be cancelled. Use RunContext
// (with a background context the error is always nil).
func Run(n *netlist.Netlist, cfg Config) *Result {
	res, _ := RunContext(context.Background(), n, cfg)
	return res
}

// budget is the run's wall-clock deadline (zero = unbounded). time.Now
// is monotonic, so once expired reports true it stays true — the
// property the sharded PODEM merge relies on (a worker that stopped on
// the deadline implies the later merge loop stops on its first check).
type budget struct{ at time.Time }

func newBudget(d time.Duration) budget {
	if d <= 0 {
		return budget{}
	}
	return budget{at: time.Now().Add(d)}
}

func (b budget) expired() bool { return !b.at.IsZero() && time.Now().After(b.at) }

// RunContext is Run with cancellation: the random-pattern and PODEM
// phases poll ctx (per block / per fault) and return (nil, ctx.Err())
// when it is done. With a background context and no Deadline the error
// is always nil; an exhausted Deadline is not an error — see
// Config.Deadline.
func RunContext(ctx context.Context, n *netlist.Netlist, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := NewUniverse(n)
	sim := NewSimulator(n)
	res := &Result{Netlist: n, TotalFaults: len(u.Faults)}
	m := &runMetrics{}
	defer m.flush(cfg.Obs, res)
	bud := newBudget(cfg.Deadline)

	detected := make([]bool, len(u.Faults))
	var patterns []Pattern

	if cfg.MaxRandomPatterns > 0 {
		patterns = randomPhase(ctx, sim, u, cfg, rng, detected, res, m, bud)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	if !cfg.SkipPODEM && !bud.expired() {
		var err error
		patterns, err = podemTopUp(ctx, sim, u, cfg, rng, detected, res, patterns, m, bud)
		if err != nil {
			return nil, err
		}
	}

	if bud.expired() {
		res.DeadlineExceeded = true
		markRemainingAborted(detected, res)
	}

	if cfg.SkipCompaction {
		res.Patterns = patterns
		return res, nil
	}
	res.Patterns = compactReverse(sim, u, patterns, detected, cfg.Workers, m)
	return res, nil
}

// markRemainingAborted counts every still-undetected fault as aborted —
// the deadline-exhaustion bookkeeping that keeps Detected+Redundant+
// Aborted equal to what a converged run would partition.
func markRemainingAborted(detected []bool, res *Result) {
	aborted := 0
	for _, d := range detected {
		if !d {
			aborted++
		}
	}
	// Redundant and previously-aborted faults were already counted by the
	// merge loop and are marked detected=false; subtract them so the sum
	// stays consistent.
	aborted -= res.Redundant + res.Aborted
	if aborted > 0 {
		res.Aborted += aborted
	}
}

// podemCandidate is a speculatively generated PODEM outcome for one fault.
type podemCandidate struct {
	asg     []v3
	outcome podemOutcome
	ok      bool
}

// podemTopUp runs the deterministic phase. Generation is sharded: the
// faults still undetected after the random phase are partitioned
// round-robin across Workers goroutines, each with a private podem engine
// and Simulator, which speculatively generate a candidate per fault. A
// single-threaded merge pass then walks the fault universe in canonical
// index order: a candidate whose target was covered by an earlier-merged
// pattern is discarded, everything else is accepted exactly as the serial
// algorithm would have — so the output is byte-identical for Workers=1
// and Workers=N (generate is a pure function of the fault: the engine
// resets its assignment, cone and implication state on every call, and
// the don't-care fill consumes the rng only at accept time, in fault
// order).
//
// Accepted patterns are fault-dropped in 64-lane batches by a
// batchDropper instead of one LoadBlock per pattern.
func podemTopUp(ctx context.Context, sim *Simulator, u *Universe, cfg Config, rng *rand.Rand, detected []bool, res *Result, patterns []Pattern, m *runMetrics, bud budget) ([]Pattern, error) {
	workers := cfg.workerCount()
	m.shards += int64(workers)

	var scoap *Scoap
	if cfg.SCOAPGuidance {
		scoap = ComputeScoap(u.N)
	}

	// Candidate source: speculative shards when parallel, on-demand
	// generation (the serial algorithm, verbatim) otherwise.
	var cands []podemCandidate
	var engines []*podem
	if workers > 1 {
		cands, engines = shardedCandidates(ctx, u, cfg, detected, workers, scoap, bud)
	} else {
		eng := newPodem(sim, cfg.BacktrackLimit)
		eng.scoap = scoap
		engines = []*podem{eng}
	}
	defer func() {
		for _, eng := range engines {
			m.decisions += eng.totalDecisions
			m.backtracks += eng.totalBacktracks
		}
	}()

	drop := newBatchDropper(sim, u, detected, res, m)
	for fi := range u.Faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Chaos hook: one hit per fault in canonical order (so the hit
		// sequence is identical at any worker count). A firing error or
		// panic surfaces exactly like a context failure would.
		if err := cfg.Inject.Hit(faultinject.ATPGPattern); err != nil {
			return nil, err
		}
		if bud.expired() {
			// Out of wall-clock budget: settle the pending block so the
			// patterns found so far keep their drop credit, and leave the
			// rest of the universe to markRemainingAborted.
			drop.flush(fi)
			return patterns, nil
		}
		if detected[fi] {
			// Already covered by the random phase or a flushed block; a
			// speculative candidate for it was wasted work.
			if cands != nil && cands[fi].ok {
				m.discarded++
			}
			continue
		}
		if drop.covers(fi) {
			// Covered by a pending (not yet flushed) pattern.
			detected[fi] = true
			res.Detected++
			if cands != nil && cands[fi].ok {
				m.discarded++
			}
			continue
		}
		var asg []v3
		var outcome podemOutcome
		if cands != nil {
			// The ctx and deadline polls above ran after the worker wrote
			// this entry: workers only skip faults once ctx is cancelled
			// or the budget expired, and both are monotone, so a missing
			// candidate is unreachable here. Guard anyway — treating a
			// hole as budget exhaustion keeps the run usable even if the
			// monotonicity argument is ever broken.
			if !cands[fi].ok {
				drop.flush(fi)
				return patterns, nil
			}
			asg, outcome = cands[fi].asg, cands[fi].outcome
		} else {
			asg, outcome = engines[0].generate(u.Faults[fi])
		}
		m.merged++
		switch outcome {
		case podemRedundant:
			res.Redundant++
		case podemAborted:
			res.Aborted++
		case podemFound:
			pat := fillPattern(asg, rng)
			patterns = append(patterns, pat)
			res.PodemPatterns++
			drop.add(pat, fi)
			if drop.full() {
				drop.flush(fi + 1)
			}
		}
	}
	drop.flush(len(u.Faults))
	return patterns, nil
}

// shardedCandidates launches the speculative generation workers and waits
// for them. Each worker owns a private Simulator and podem engine; the
// SCOAP table is shared (read-only during generation). Faults are dealt
// round-robin for load balance; the partition does not affect the output
// because the merge pass re-serializes in fault order.
func shardedCandidates(ctx context.Context, u *Universe, cfg Config, detected []bool, workers int, scoap *Scoap, bud budget) ([]podemCandidate, []*podem) {
	var work []int32
	for fi := range u.Faults {
		if !detected[fi] {
			work = append(work, int32(fi))
		}
	}
	cands := make([]podemCandidate, len(u.Faults))
	engines := make([]*podem, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		eng := newPodem(NewSimulator(u.N), cfg.BacktrackLimit)
		eng.scoap = scoap
		engines[w] = eng
		wg.Add(1)
		go func(w int, eng *podem) {
			defer wg.Done()
			for i := w; i < len(work); i += workers {
				if ctx.Err() != nil || bud.expired() {
					return
				}
				fi := work[i]
				asg, outcome := eng.generate(u.Faults[fi])
				cands[fi] = podemCandidate{asg: asg, outcome: outcome, ok: true}
			}
		}(w, eng)
	}
	wg.Wait()
	return cands, engines
}

// batchDropper accumulates accepted PODEM patterns into up-to-64-lane
// blocks and fault-drops whole blocks at once, replacing the serial
// algorithm's one-pattern LoadBlock per accepted pattern.
//
// The serial algorithm drops each new pattern against every fault at or
// beyond its target, immediately. The batched replay preserves those
// decisions exactly:
//
//   - a fault reaching its merge slot is checked against all pending
//     lanes (covers) — the same "was it dropped by an earlier pattern"
//     test the serial loop answers with detected[fi];
//   - at flush, each lane's target is checked on its own lane only: by
//     construction no earlier pending lane detects it (covers ruled that
//     out when the target was accepted) and serial drops are
//     forward-only, so later patterns never reach an earlier target;
//   - the flush tail then drops every fault beyond the merge position
//     against all lanes — faults between a lane's target and the merge
//     position were already screened by covers at their own slots.
type batchDropper struct {
	sim      *Simulator
	u        *Universe
	detected []bool
	res      *Result
	m        *runMetrics

	pending []Pattern
	targets []int32 // pending[k] was generated for fault targets[k]
	loaded  bool    // sim currently holds the pending block
}

func newBatchDropper(sim *Simulator, u *Universe, detected []bool, res *Result, m *runMetrics) *batchDropper {
	return &batchDropper{
		sim:      sim,
		u:        u,
		detected: detected,
		res:      res,
		m:        m,
		pending:  make([]Pattern, 0, 64),
		targets:  make([]int32, 0, 64),
	}
}

func (d *batchDropper) full() bool { return len(d.pending) == 64 }

// add accepts a pattern generated for fault fi into the next free lane.
func (d *batchDropper) add(pat Pattern, fi int) {
	d.pending = append(d.pending, pat)
	d.targets = append(d.targets, int32(fi))
	d.loaded = false
}

// covers reports whether any pending pattern detects the fault.
func (d *batchDropper) covers(fi int) bool {
	if len(d.pending) == 0 {
		return false
	}
	d.load()
	return d.sim.Detects(d.u.Faults[fi]) != 0
}

func (d *batchDropper) load() {
	if d.loaded {
		return
	}
	d.sim.LoadBlock(d.pending)
	d.loaded = true
}

// flush settles the pending block: credits each lane's own target (a
// pattern that misses its target is counted aborted, exactly like the
// serial self-check), drops every fault at or beyond the merge position
// pos, and clears the block.
func (d *batchDropper) flush(pos int) {
	if len(d.pending) == 0 {
		return
	}
	d.load()
	d.m.blocks++
	d.m.lanes += int64(len(d.pending))
	for k, t := range d.targets {
		if d.sim.Detects(d.u.Faults[t])&(1<<uint(k)) != 0 {
			d.detected[t] = true
			d.res.Detected++
		} else {
			// The generated pattern must detect its target; if it does
			// not, the engine is inconsistent for this fault — count it
			// as aborted rather than overstating coverage.
			d.res.Aborted++
		}
	}
	for fj := pos; fj < len(d.u.Faults); fj++ {
		if !d.detected[fj] && d.sim.Detects(d.u.Faults[fj]) != 0 {
			d.detected[fj] = true
			d.res.Detected++
		}
	}
	d.pending = d.pending[:0]
	d.targets = d.targets[:0]
	d.loaded = false
}

// simPool owns one Simulator per worker for parallel serial-fault
// simulation over disjoint fault ranges.
type simPool struct {
	sims []*Simulator
}

func newSimPool(n *netlist.Netlist, workers int) *simPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	p := &simPool{sims: make([]*Simulator, workers)}
	for i := range p.sims {
		p.sims[i] = NewSimulator(n)
	}
	return p
}

// forBlock loads the pattern block into every worker's simulator and calls
// fn(workerSim, faultIndex) for each fault index in [0, nFaults) from
// exactly one worker. fn must only touch per-fault state.
func (p *simPool) forBlock(block []Pattern, nFaults int, fn func(sim *Simulator, fi int)) {
	if len(p.sims) == 1 {
		p.sims[0].LoadBlock(block)
		for fi := 0; fi < nFaults; fi++ {
			fn(p.sims[0], fi)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (nFaults + len(p.sims) - 1) / len(p.sims)
	for w := range p.sims {
		lo := w * chunk
		hi := lo + chunk
		if hi > nFaults {
			hi = nFaults
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(sim *Simulator, lo, hi int) {
			defer wg.Done()
			sim.LoadBlock(block)
			for fi := lo; fi < hi; fi++ {
				fn(sim, fi)
			}
		}(p.sims[w], lo, hi)
	}
	wg.Wait()
}

// randomPhase applies seeded random blocks with fault dropping and returns
// the patterns that were first detectors of at least one fault. The block
// and its 64 pattern buffers are allocated once and refilled per
// iteration; kept patterns are cloned out of the reused buffers.
func randomPhase(ctx context.Context, sim *Simulator, u *Universe, cfg Config, rng *rand.Rand, detected []bool, res *Result, m *runMetrics, bud budget) []Pattern {
	pool := newSimPool(sim.n, cfg.Workers)
	var kept []Pattern
	dry := 0
	total := 0
	laneOf := make([]int8, len(u.Faults))
	block := make([]Pattern, 64)
	for k := range block {
		block[k] = make(Pattern, sim.NumControls())
	}
	for total < cfg.MaxRandomPatterns && dry < cfg.RandomDryBlocks {
		if ctx.Err() != nil || bud.expired() {
			return kept
		}
		m.blocks++
		m.lanes += int64(len(block))
		for k := range block {
			p := block[k]
			for i := range p {
				p[i] = uint8(rng.Intn(2))
			}
		}
		total += len(block)
		for i := range laneOf {
			laneOf[i] = -1
		}
		pool.forBlock(block, len(u.Faults), func(s *Simulator, fi int) {
			if detected[fi] {
				return
			}
			mask := s.Detects(u.Faults[fi])
			if mask == 0 {
				return
			}
			lane := int8(0)
			for mask&1 == 0 {
				mask >>= 1
				lane++
			}
			laneOf[fi] = lane
		})
		laneUseful := uint64(0)
		newly := 0
		for fi, lane := range laneOf {
			if lane < 0 {
				continue
			}
			detected[fi] = true
			newly++
			laneUseful |= 1 << uint(lane)
		}
		res.Detected += newly
		res.RandomDetected += newly
		if newly == 0 {
			dry++
			continue
		}
		dry = 0
		for k := range block {
			if laneUseful>>uint(k)&1 == 1 {
				kept = append(kept, block[k].Clone())
			}
		}
	}
	return kept
}

// fillPattern resolves the don't-care positions of a PODEM assignment with
// random values (improving collateral detection).
func fillPattern(asg []v3, rng *rand.Rand) Pattern {
	p := make(Pattern, len(asg))
	for i, v := range asg {
		switch v {
		case v0:
			p[i] = 0
		case v1:
			p[i] = 1
		default:
			p[i] = uint8(rng.Intn(2))
		}
	}
	return p
}

// compactReverse performs reverse-order static compaction: patterns are
// re-fault-simulated from last to first, 64 lanes per block, and kept
// only if they are the first (in that order) to detect some fault.
func compactReverse(sim *Simulator, u *Universe, patterns []Pattern, detected []bool, workers int, m *runMetrics) []Pattern {
	if len(patterns) == 0 {
		return patterns
	}
	pool := newSimPool(sim.n, workers)
	reversed := make([]Pattern, len(patterns))
	for i, p := range patterns {
		reversed[len(patterns)-1-i] = p
	}
	covered := make([]bool, len(u.Faults))
	useful := make([]bool, len(reversed))
	laneOf := make([]int8, len(u.Faults))
	for start := 0; start < len(reversed); start += 64 {
		end := start + 64
		if end > len(reversed) {
			end = len(reversed)
		}
		block := reversed[start:end]
		m.blocks++
		m.lanes += int64(len(block))
		for i := range laneOf {
			laneOf[i] = -1
		}
		pool.forBlock(block, len(u.Faults), func(s *Simulator, fi int) {
			if !detected[fi] || covered[fi] {
				return
			}
			mask := s.Detects(u.Faults[fi])
			if mask == 0 {
				return
			}
			lane := int8(0)
			for mask&1 == 0 {
				mask >>= 1
				lane++
			}
			laneOf[fi] = lane
		})
		for fi, lane := range laneOf {
			if lane < 0 {
				continue
			}
			covered[fi] = true
			useful[start+int(lane)] = true
		}
	}
	var out []Pattern
	// Restore original ordering among the kept patterns.
	for i := len(reversed) - 1; i >= 0; i-- {
		if useful[i] {
			out = append(out, reversed[i])
		}
	}
	return out
}
