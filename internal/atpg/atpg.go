package atpg

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Config controls the ATPG driver. The zero value selects sensible
// defaults; Seed 0 is a valid deterministic seed.
type Config struct {
	// Seed drives the random-pattern phase and don't-care fill.
	Seed int64
	// MaxRandomPatterns bounds the random phase (default 1024, rounded up
	// to whole 64-pattern blocks). Zero selects the default; negative
	// disables the random phase (PODEM-only, the ablation variant).
	MaxRandomPatterns int
	// RandomDryBlocks stops the random phase after this many consecutive
	// blocks without a new detection (default 2).
	RandomDryBlocks int
	// BacktrackLimit aborts a PODEM run after this many backtracks
	// (default 4000).
	BacktrackLimit int
	// SkipPODEM runs only the random phase (coverage will be partial).
	SkipPODEM bool
	// SkipCompaction keeps the raw pattern list.
	SkipCompaction bool
	// SCOAPGuidance steers PODEM's input choices by controllability cost
	// (the testability-measure ablation of DESIGN.md).
	SCOAPGuidance bool
	// Workers bounds the fault-simulation parallelism of the random and
	// compaction phases (0 = GOMAXPROCS, 1 = serial). Results are
	// identical at any setting: faults are partitioned disjointly and the
	// per-fault decisions are independent.
	Workers int
	// Obs, when non-nil, receives ATPG metrics: PODEM decisions and
	// backtracks, fault-simulation blocks, pattern and fault counts
	// (counters "atpg.*"). A nil registry costs nothing.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxRandomPatterns == 0 {
		c.MaxRandomPatterns = 1024
	}
	if c.RandomDryBlocks == 0 {
		c.RandomDryBlocks = 2
	}
	if c.BacktrackLimit == 0 {
		c.BacktrackLimit = 4000
	}
	return c
}

// Result reports the outcome of an ATPG run. NumPatterns is the paper's
// n_p for the circuit.
type Result struct {
	Netlist *netlist.Netlist
	// Patterns is the final (compacted) test set.
	Patterns []Pattern
	// TotalFaults is the size of the collapsed fault universe.
	TotalFaults int
	// Detected counts collapsed faults covered by Patterns.
	Detected int
	// Redundant counts faults proved untestable (PODEM search exhausted).
	Redundant int
	// Aborted counts faults abandoned at the backtrack limit.
	Aborted int
	// RandomDetected counts faults caught during the random phase.
	RandomDetected int
	// PodemPatterns counts deterministic patterns before compaction.
	PodemPatterns int
}

// NumPatterns returns n_p, the size of the final test set.
func (r *Result) NumPatterns() int { return len(r.Patterns) }

// Coverage returns detected / (total - redundant): fault coverage with
// provably untestable faults excluded, the figure usually quoted by ATPG
// tools (Table 1's FC column).
func (r *Result) Coverage() float64 {
	den := r.TotalFaults - r.Redundant
	if den <= 0 {
		return 1
	}
	return float64(r.Detected) / float64(den)
}

// RawCoverage returns detected / total over the collapsed universe.
func (r *Result) RawCoverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

func (r *Result) String() string {
	return fmt.Sprintf("%s: np=%d faults=%d detected=%d redundant=%d aborted=%d FC=%.2f%%",
		r.Netlist.Name, r.NumPatterns(), r.TotalFaults, r.Detected, r.Redundant, r.Aborted, 100*r.Coverage())
}

// Run executes the full ATPG flow on the netlist (full-scan view):
// a seeded random-pattern phase with fault dropping, deterministic PODEM
// top-up for the remaining faults, and reverse-order static compaction.
func Run(n *netlist.Netlist, cfg Config) *Result {
	res, _ := RunContext(context.Background(), n, cfg)
	return res
}

// RunContext is Run with cancellation: the random-pattern and PODEM
// phases poll ctx (per block / per fault) and return (nil, ctx.Err())
// when it is done. With a background context the error is always nil.
func RunContext(ctx context.Context, n *netlist.Netlist, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	u := NewUniverse(n)
	sim := NewSimulator(n)
	res := &Result{Netlist: n, TotalFaults: len(u.Faults)}

	detected := make([]bool, len(u.Faults))
	var patterns []Pattern

	if cfg.MaxRandomPatterns > 0 {
		patterns = randomPhase(ctx, sim, u, cfg, rng, detected, res)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	var eng *podem
	defer func() {
		if r := cfg.Obs; r != nil {
			r.Counter("atpg.runs").Inc()
			r.Counter("atpg.faults.total").Add(int64(res.TotalFaults))
			r.Counter("atpg.faults.detected").Add(int64(res.Detected))
			r.Counter("atpg.faults.redundant").Add(int64(res.Redundant))
			r.Counter("atpg.faults.aborted").Add(int64(res.Aborted))
			r.Counter("atpg.patterns.random").Add(int64(res.RandomDetected))
			r.Counter("atpg.patterns.podem").Add(int64(res.PodemPatterns))
			r.Counter("atpg.patterns.final").Add(int64(len(res.Patterns)))
			if eng != nil {
				r.Counter("atpg.podem.decisions").Add(eng.totalDecisions)
				r.Counter("atpg.podem.backtracks").Add(eng.totalBacktracks)
			}
		}
	}()

	if !cfg.SkipPODEM {
		eng = newPodem(sim, cfg.BacktrackLimit)
		if cfg.SCOAPGuidance {
			eng.scoap = ComputeScoap(n)
		}
		for fi := range u.Faults {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if detected[fi] {
				continue
			}
			asg, outcome := eng.generate(u.Faults[fi])
			switch outcome {
			case podemRedundant:
				res.Redundant++
			case podemAborted:
				res.Aborted++
			case podemFound:
				pat := fillPattern(asg, rng)
				patterns = append(patterns, pat)
				res.PodemPatterns++
				// Fault-drop the new pattern against all remaining faults.
				sim.LoadBlock([]Pattern{pat})
				for fj := fi; fj < len(u.Faults); fj++ {
					if !detected[fj] && sim.Detects(u.Faults[fj]) != 0 {
						detected[fj] = true
						res.Detected++
					}
				}
				if !detected[fi] {
					// The generated pattern must detect its target; if it
					// does not, the engine is inconsistent for this fault —
					// count it as aborted rather than overstating coverage.
					res.Aborted++
				}
			}
		}
	}

	if cfg.SkipCompaction {
		res.Patterns = patterns
		return res, nil
	}
	res.Patterns = compactReverse(sim, u, patterns, detected, cfg.Workers)
	return res, nil
}

// simPool owns one Simulator per worker for parallel serial-fault
// simulation over disjoint fault ranges.
type simPool struct {
	sims []*Simulator
}

func newSimPool(n *netlist.Netlist, workers int) *simPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	p := &simPool{sims: make([]*Simulator, workers)}
	for i := range p.sims {
		p.sims[i] = NewSimulator(n)
	}
	return p
}

// forBlock loads the pattern block into every worker's simulator and calls
// fn(workerSim, faultIndex) for each fault index in [0, nFaults) from
// exactly one worker. fn must only touch per-fault state.
func (p *simPool) forBlock(block []Pattern, nFaults int, fn func(sim *Simulator, fi int)) {
	if len(p.sims) == 1 {
		p.sims[0].LoadBlock(block)
		for fi := 0; fi < nFaults; fi++ {
			fn(p.sims[0], fi)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (nFaults + len(p.sims) - 1) / len(p.sims)
	for w := range p.sims {
		lo := w * chunk
		hi := lo + chunk
		if hi > nFaults {
			hi = nFaults
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(sim *Simulator, lo, hi int) {
			defer wg.Done()
			sim.LoadBlock(block)
			for fi := lo; fi < hi; fi++ {
				fn(sim, fi)
			}
		}(p.sims[w], lo, hi)
	}
	wg.Wait()
}

// randomPhase applies seeded random blocks with fault dropping and returns
// the patterns that were first detectors of at least one fault.
func randomPhase(ctx context.Context, sim *Simulator, u *Universe, cfg Config, rng *rand.Rand, detected []bool, res *Result) []Pattern {
	pool := newSimPool(sim.n, cfg.Workers)
	var kept []Pattern
	dry := 0
	total := 0
	laneOf := make([]int8, len(u.Faults))
	for total < cfg.MaxRandomPatterns && dry < cfg.RandomDryBlocks {
		if ctx.Err() != nil {
			return kept
		}
		cfg.Obs.Counter("atpg.faultsim.blocks").Inc()
		block := make([]Pattern, 64)
		for k := range block {
			p := make(Pattern, sim.NumControls())
			for i := range p {
				p[i] = uint8(rng.Intn(2))
			}
			block[k] = p
		}
		total += len(block)
		for i := range laneOf {
			laneOf[i] = -1
		}
		pool.forBlock(block, len(u.Faults), func(s *Simulator, fi int) {
			if detected[fi] {
				return
			}
			mask := s.Detects(u.Faults[fi])
			if mask == 0 {
				return
			}
			lane := int8(0)
			for mask&1 == 0 {
				mask >>= 1
				lane++
			}
			laneOf[fi] = lane
		})
		laneUseful := uint64(0)
		newly := 0
		for fi, lane := range laneOf {
			if lane < 0 {
				continue
			}
			detected[fi] = true
			newly++
			laneUseful |= 1 << uint(lane)
		}
		res.Detected += newly
		res.RandomDetected += newly
		if newly == 0 {
			dry++
			continue
		}
		dry = 0
		for k := range block {
			if laneUseful>>uint(k)&1 == 1 {
				kept = append(kept, block[k])
			}
		}
	}
	return kept
}

// fillPattern resolves the don't-care positions of a PODEM assignment with
// random values (improving collateral detection).
func fillPattern(asg []v3, rng *rand.Rand) Pattern {
	p := make(Pattern, len(asg))
	for i, v := range asg {
		switch v {
		case v0:
			p[i] = 0
		case v1:
			p[i] = 1
		default:
			p[i] = uint8(rng.Intn(2))
		}
	}
	return p
}

// compactReverse performs reverse-order static compaction: patterns are
// re-fault-simulated from last to first and kept only if they are the
// first (in that order) to detect some fault.
func compactReverse(sim *Simulator, u *Universe, patterns []Pattern, detected []bool, workers int) []Pattern {
	if len(patterns) == 0 {
		return patterns
	}
	pool := newSimPool(sim.n, workers)
	reversed := make([]Pattern, len(patterns))
	for i, p := range patterns {
		reversed[len(patterns)-1-i] = p
	}
	covered := make([]bool, len(u.Faults))
	useful := make([]bool, len(reversed))
	laneOf := make([]int8, len(u.Faults))
	for start := 0; start < len(reversed); start += 64 {
		end := start + 64
		if end > len(reversed) {
			end = len(reversed)
		}
		block := reversed[start:end]
		for i := range laneOf {
			laneOf[i] = -1
		}
		pool.forBlock(block, len(u.Faults), func(s *Simulator, fi int) {
			if !detected[fi] || covered[fi] {
				return
			}
			mask := s.Detects(u.Faults[fi])
			if mask == 0 {
				return
			}
			lane := int8(0)
			for mask&1 == 0 {
				mask >>= 1
				lane++
			}
			laneOf[fi] = lane
		})
		for fi, lane := range laneOf {
			if lane < 0 {
				continue
			}
			covered[fi] = true
			useful[start+int(lane)] = true
		}
	}
	var out []Pattern
	// Restore original ordering among the kept patterns.
	for i := len(reversed) - 1; i >= 0; i-- {
		if useful[i] {
			out = append(out, reversed[i])
		}
	}
	return out
}
