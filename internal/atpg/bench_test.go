package atpg

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/gatelib"
)

func benchNetlist(b *testing.B) *gatelib.Component {
	b.Helper()
	alu, err := gatelib.NewALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
	if err != nil {
		b.Fatal(err)
	}
	return alu
}

// BenchmarkPODEMPhase measures the deterministic top-up (random phase
// disabled so PODEM dominates) serial vs sharded. On a single-core box
// the sharded variant measures pure speculation overhead; on multicore
// it shows the wall-clock win of parallel generation.
func BenchmarkPODEMPhase(b *testing.B) {
	alu := benchNetlist(b)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Run(alu.Seq, Config{Seed: 7, MaxRandomPatterns: -1, Workers: workers})
			}
		})
	}
}

// BenchmarkFaultDropBatched contrasts the pre-batching fault-drop shape
// (one LoadBlock per pattern, a full fault sweep each) with the 64-lane
// batched shape the merge pass and compaction use now.
func BenchmarkFaultDropBatched(b *testing.B) {
	alu := benchNetlist(b)
	n := alu.Seq
	u := NewUniverse(n)
	sim := NewSimulator(n)
	// A realistic pattern set: the deterministic patterns of a real run.
	res := Run(n, Config{Seed: 7, SkipCompaction: true})
	patterns := res.Patterns
	if len(patterns) < 64 {
		b.Fatalf("want >= 64 patterns, got %d", len(patterns))
	}
	detected := make([]bool, len(u.Faults))

	b.Run("lanes=1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for di := range detected {
				detected[di] = false
			}
			for _, pat := range patterns {
				sim.LoadBlock([]Pattern{pat})
				for fi := range u.Faults {
					if !detected[fi] && sim.Detects(u.Faults[fi]) != 0 {
						detected[fi] = true
					}
				}
			}
		}
	})
	b.Run("lanes=64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for di := range detected {
				detected[di] = false
			}
			for start := 0; start < len(patterns); start += 64 {
				end := start + 64
				if end > len(patterns) {
					end = len(patterns)
				}
				sim.LoadBlock(patterns[start:end])
				for fi := range u.Faults {
					if !detected[fi] && sim.Detects(u.Faults[fi]) != 0 {
						detected[fi] = true
					}
				}
			}
		}
	})
}

// BenchmarkDetectsWarm pins the per-call cost of the fault-simulation
// hot path (zero allocations once the cone scratch is warm).
func BenchmarkDetectsWarm(b *testing.B) {
	alu := benchNetlist(b)
	n := alu.Seq
	u := NewUniverse(n)
	sim := NewSimulator(n)
	rng := newRand(7)
	block := make([]Pattern, 64)
	for k := range block {
		p := make(Pattern, sim.NumControls())
		for i := range p {
			p[i] = uint8(rng.Intn(2))
		}
		block[k] = p
	}
	sim.LoadBlock(block)
	for _, f := range u.Faults {
		sim.Detects(f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Detects(u.Faults[i%len(u.Faults)])
	}
}

// BenchmarkFaultSimCold is the lanes × component-class grid behind
// BENCH_faultsim.json: one cold annotation (full RunContext — random
// phase, PODEM top-up, compaction) per iteration, at every supported lane
// width, for each component class of the default DSE space. The detected
// sets and patterns are byte-identical across the lanes= variants (see
// TestRunIdenticalAcrossLaneWidthsAndWorkers); only wall time may differ.
func BenchmarkFaultSimCold(b *testing.B) {
	lib := gatelib.NewLibrary()
	classes := []struct {
		name  string
		build func() (*gatelib.Component, error)
	}{
		{"alu16_ripple", func() (*gatelib.Component, error) {
			return lib.ALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderRipple})
		}},
		{"alu16_cs", func() (*gatelib.Component, error) {
			return lib.ALU(gatelib.ALUConfig{Width: 16, Adder: gatelib.AdderCarrySelect})
		}},
		{"cmp16", func() (*gatelib.Component, error) { return lib.CMP(16) }},
		{"rf16x8_1w2r", func() (*gatelib.Component, error) {
			return lib.RF(gatelib.RFConfig{Width: 16, NumRegs: 8, NumIn: 1, NumOut: 2})
		}},
		{"rf16x16_2w2r", func() (*gatelib.Component, error) {
			return lib.RF(gatelib.RFConfig{Width: 16, NumRegs: 16, NumIn: 2, NumOut: 2})
		}},
		{"ldst16", func() (*gatelib.Component, error) { return lib.LDST(16) }},
		{"pc16", func() (*gatelib.Component, error) { return lib.PC(16) }},
		{"imm16", func() (*gatelib.Component, error) { return lib.IMM(16) }},
	}
	for _, cl := range classes {
		comp, err := cl.build()
		if err != nil {
			b.Fatal(err)
		}
		for _, lanes := range laneWidths {
			b.Run(fmt.Sprintf("%s/lanes=%d", cl.name, lanes), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunContext(context.Background(), comp.Seq, Config{Seed: 7, LaneWidth: lanes})
					if err != nil {
						b.Fatal(err)
					}
					if res.Coverage() < 0.9 {
						b.Fatalf("coverage collapsed: %v", res)
					}
				}
			})
		}
	}
}

// BenchmarkFullRun is the end-to-end ATPG cost for one library component
// (the unit the annotation cache pays per miss).
func BenchmarkFullRun(b *testing.B) {
	alu := benchNetlist(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := RunContext(context.Background(), alu.Seq, Config{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if res.Coverage() < 0.9 {
			b.Fatalf("coverage collapsed: %v", res)
		}
	}
}
