package atpg

import (
	"repro/internal/netlist"
)

// podemOutcome classifies the result of a deterministic generation attempt.
type podemOutcome uint8

// PODEM outcomes.
const (
	podemFound podemOutcome = iota
	podemRedundant
	podemAborted
)

// podem holds the working state of one PODEM run. PODEM assigns values only
// to controllable points; every assignment is followed by a full 5-valued
// forward implication, so the state is always consistent.
type podem struct {
	n          *netlist.Netlist
	sim        *Simulator
	fault      Fault
	vals       []val5 // per net
	assign     []v3   // per controllable point
	ctrlOf     []int32
	limit      int
	backtracks int
	// Engine-lifetime totals across every generate call, reported to the
	// observability registry by the ATPG driver.
	totalDecisions  int64
	totalBacktracks int64
	// scoap, when non-nil, guides input choices toward the cheapest
	// controllability (the classic SCOAP-guided backtrace ablation).
	scoap *Scoap

	// Scratch for the X-path check and the frontier scan.
	frontier []int32
	xVisited []bool
	xStack   []int32
}

type decision struct {
	ctrl    int
	value   v3
	flipped bool
}

// newPodem prepares a PODEM engine bound to a simulator's netlist view.
func newPodem(sim *Simulator, limit int) *podem {
	n := sim.n
	p := &podem{
		n:      n,
		sim:    sim,
		vals:   make([]val5, n.NumNets()),
		assign: make([]v3, len(sim.ctrl)),
		ctrlOf: make([]int32, n.NumNets()),
		limit:  limit,
	}
	for i := range p.ctrlOf {
		p.ctrlOf[i] = -1
	}
	for ci, net := range sim.ctrl {
		p.ctrlOf[net] = int32(ci)
	}
	p.xVisited = make([]bool, len(n.Gates))
	return p
}

// xPathExists reports whether a path of X-valued gate outputs connects any
// frontier gate to an observable point — the classic PODEM pruning rule: a
// fault effect that cannot possibly reach an output under the current
// assignment warrants an immediate backtrack.
func (p *podem) xPathExists() bool {
	stack := p.xStack[:0]
	visited := p.xVisited
	var touched []int32
	defer func() {
		for _, gi := range touched {
			visited[gi] = false
		}
		p.xStack = stack[:0]
	}()
	// A frontier gate's own output is a candidate origin (it is X).
	for _, gi := range p.frontier {
		if !visited[gi] {
			visited[gi] = true
			touched = append(touched, gi)
			stack = append(stack, gi)
		}
	}
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := p.n.Gates[gi].Out
		if len(p.sim.obsOfNet[out]) > 0 {
			return true
		}
		for _, ld := range p.sim.fanout[out] {
			if visited[ld.Gate] {
				continue
			}
			g := &p.n.Gates[ld.Gate]
			v := p.vals[g.Out]
			if v.g != vX && v.f != vX {
				continue // fully determined; a fault effect cannot pass
			}
			visited[ld.Gate] = true
			touched = append(touched, ld.Gate)
			stack = append(stack, ld.Gate)
		}
	}
	return false
}

// generate attempts to derive a test for the fault. On success it returns
// the 3-valued controllable assignment (vX entries are don't-cares).
func (p *podem) generate(f Fault) ([]v3, podemOutcome) {
	p.fault = f
	p.backtracks = 0
	for i := range p.assign {
		p.assign[i] = vX
	}
	var stack []decision

	for {
		p.imply()
		if p.testFound() {
			out := make([]v3, len(p.assign))
			copy(out, p.assign)
			return out, podemFound
		}
		objNet, objVal, ok := p.objective()
		if ok {
			if ci, v, ok2 := p.backtrace(objNet, objVal); ok2 {
				p.assign[ci] = v
				stack = append(stack, decision{ctrl: ci, value: v})
				p.totalDecisions++
				continue
			}
		}
		// Conflict: flip the most recent unflipped decision.
		flipped := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.value = notV3(top.value)
				p.assign[top.ctrl] = top.value
				flipped = true
				break
			}
			p.assign[top.ctrl] = vX
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			return nil, podemRedundant
		}
		p.backtracks++
		p.totalBacktracks++
		if p.backtracks > p.limit {
			return nil, podemAborted
		}
	}
}

// imply performs full 5-valued forward implication of the current
// controllable assignment with the fault injected.
func (p *podem) imply() {
	n := p.n
	for i := range p.vals {
		p.vals[i] = vvX
	}
	for ci, net := range p.sim.ctrl {
		v := p.assign[ci]
		p.vals[net] = val5{v, v}
	}
	f := p.fault
	for _, gi := range n.TopoOrder() {
		g := &n.Gates[gi]
		var out val5
		if f.Gate == gi && f.Pin >= 0 {
			out = evalGate5Pin(g, p.vals, int(f.Pin), f.SA)
		} else {
			out = evalGate5(g, p.vals)
		}
		if f.Gate == gi && f.Pin == PinOut {
			out.f = v3(f.SA)
		}
		p.vals[g.Out] = out
	}
}

func evalGate5(g *netlist.Gate, vals []val5) val5 {
	switch g.Type {
	case netlist.Const0:
		return vv0
	case netlist.Const1:
		return vv1
	case netlist.Buf:
		return vals[g.In[0]]
	case netlist.Not:
		v := vals[g.In[0]]
		return val5{notV3(v.g), notV3(v.f)}
	case netlist.And, netlist.Nand:
		acc := val5{v1, v1}
		for _, in := range g.In {
			v := vals[in]
			acc = val5{andV3(acc.g, v.g), andV3(acc.f, v.f)}
		}
		if g.Type == netlist.Nand {
			acc = val5{notV3(acc.g), notV3(acc.f)}
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := val5{v0, v0}
		for _, in := range g.In {
			v := vals[in]
			acc = val5{orV3(acc.g, v.g), orV3(acc.f, v.f)}
		}
		if g.Type == netlist.Nor {
			acc = val5{notV3(acc.g), notV3(acc.f)}
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := val5{v0, v0}
		for _, in := range g.In {
			v := vals[in]
			acc = val5{xorV3(acc.g, v.g), xorV3(acc.f, v.f)}
		}
		if g.Type == netlist.Xnor {
			acc = val5{notV3(acc.g), notV3(acc.f)}
		}
		return acc
	default: // Mux2
		sel, a0, a1 := vals[g.In[0]], vals[g.In[1]], vals[g.In[2]]
		return val5{muxV3(sel.g, a0.g, a1.g), muxV3(sel.f, a0.f, a1.f)}
	}
}

// evalGate5Pin evaluates a gate whose input pin carries the fault: the
// faulty component of that pin is forced to the stuck value.
func evalGate5Pin(g *netlist.Gate, vals []val5, pin int, sa uint8) val5 {
	tmp := make([]val5, len(g.In))
	for i, in := range g.In {
		tmp[i] = vals[in]
	}
	tmp[pin].f = v3(sa)
	// Evaluate over tmp with a scratch gate referencing local indices.
	scratch := netlist.Gate{Type: g.Type, In: make([]netlist.Net, len(g.In))}
	for i := range scratch.In {
		scratch.In[i] = netlist.Net(i)
	}
	return evalGate5(&scratch, tmp)
}

// testFound reports whether a fault effect has reached an observable point.
func (p *podem) testFound() bool {
	for _, o := range p.sim.obs {
		if p.vals[o].hasFaultEffect() {
			return true
		}
	}
	return false
}

// objective returns the next (net, value) goal: activate the fault if it is
// not activated yet, otherwise advance the D-frontier.
func (p *podem) objective() (netlist.Net, v3, bool) {
	site := p.faultSiteNet()
	sv := p.vals[site]
	want := notV3(v3(p.fault.SA))
	if sv.g == vX {
		return site, want, true
	}
	if sv.g != want {
		return 0, v0, false // activation impossible under current assignment
	}
	// D-frontier: every gate with a fault effect on an input and an
	// unknown output; the objective advances the deepest member.
	n := p.n
	p.frontier = p.frontier[:0]
	for _, gi := range n.TopoOrder() {
		g := &n.Gates[gi]
		if p.vals[g.Out].g != vX && p.vals[g.Out].f != vX {
			continue
		}
		hasD := false
		for _, in := range g.In {
			if p.vals[in].hasFaultEffect() {
				hasD = true
				break
			}
		}
		// An input-pin fault makes its own gate part of the frontier even
		// though no net carries a fault effect yet.
		if gi == p.fault.Gate && p.fault.Pin >= 0 {
			hasD = true
		}
		if hasD {
			p.frontier = append(p.frontier, gi)
		}
	}
	if len(p.frontier) == 0 {
		return 0, v0, false
	}
	// X-path pruning: if no all-X corridor links the frontier to an
	// observable, this branch is hopeless.
	if !p.xPathExists() {
		return 0, v0, false
	}
	return p.frontierObjective(p.frontier[len(p.frontier)-1])
}

// frontierObjective chooses the side input and value needed to propagate a
// fault effect through the gate.
func (p *podem) frontierObjective(gi int32) (netlist.Net, v3, bool) {
	g := &p.n.Gates[gi]
	dpin := int8(-1) // pseudo-D pin for an input-pin fault on this gate
	if gi == p.fault.Gate && p.fault.Pin >= 0 {
		dpin = p.fault.Pin
	}
	switch g.Type {
	case netlist.And, netlist.Nand:
		return p.firstXInput(g, v1)
	case netlist.Or, netlist.Nor:
		return p.firstXInput(g, v0)
	case netlist.Xor, netlist.Xnor:
		return p.firstXInput(g, v0)
	case netlist.Mux2:
		sel, a0, a1 := p.vals[g.In[0]], p.vals[g.In[1]], p.vals[g.In[2]]
		switch {
		case (a0.hasFaultEffect() || dpin == 1) && sel.g == vX:
			return g.In[0], v0, true
		case (a1.hasFaultEffect() || dpin == 2) && sel.g == vX:
			return g.In[0], v1, true
		case sel.hasFaultEffect() || dpin == 0:
			// Data inputs must differ to propagate a select fault.
			if a0.g == vX {
				if a1.g != vX {
					return g.In[1], notV3(a1.g), true
				}
				return g.In[1], v0, true
			}
			if a1.g == vX {
				return g.In[2], notV3(a0.g), true
			}
			return 0, v0, false
		default:
			return 0, v0, false
		}
	default:
		return 0, v0, false
	}
}

func (p *podem) firstXInput(g *netlist.Gate, want v3) (netlist.Net, v3, bool) {
	best := netlist.InvalidNet
	bestCost := int32(1) << 30
	for _, in := range g.In {
		if p.vals[in].g != vX || p.vals[in].hasFaultEffect() {
			continue
		}
		if p.scoap == nil {
			return in, want, true
		}
		cost := p.scoap.CC1[in]
		if want == v0 {
			cost = p.scoap.CC0[in]
		}
		if cost < bestCost {
			bestCost = cost
			best = in
		}
	}
	if best == netlist.InvalidNet {
		return 0, v0, false
	}
	return best, want, true
}

// faultSiteNet returns the net whose good value must be set opposite to the
// stuck value to activate the fault.
func (p *podem) faultSiteNet() netlist.Net {
	g := &p.n.Gates[p.fault.Gate]
	if p.fault.Pin == PinOut {
		return g.Out
	}
	return g.In[p.fault.Pin]
}

// backtrace walks an objective (net, value) backwards through X paths to an
// unassigned controllable point and returns the implied assignment.
func (p *podem) backtrace(net netlist.Net, want v3) (int, v3, bool) {
	n := p.n
	for {
		if ci := p.ctrlOf[net]; ci >= 0 {
			if p.assign[ci] != vX {
				return 0, v0, false
			}
			return int(ci), want, true
		}
		drv := n.Driver(net)
		if drv.Kind != netlist.DriverGate {
			return 0, v0, false
		}
		g := &n.Gates[drv.Index]
		switch g.Type {
		case netlist.Const0, netlist.Const1:
			return 0, v0, false
		case netlist.Buf:
			net = g.In[0]
		case netlist.Not:
			net = g.In[0]
			want = notV3(want)
		case netlist.And, netlist.Or:
			in, ok := p.pickXInput(g)
			if !ok {
				return 0, v0, false
			}
			net = in
		case netlist.Nand, netlist.Nor:
			in, ok := p.pickXInput(g)
			if !ok {
				return 0, v0, false
			}
			net = in
			want = notV3(want)
		case netlist.Xor, netlist.Xnor:
			in, ok := p.pickXInput(g)
			if !ok {
				return 0, v0, false
			}
			// Desired parity of the chosen input given known co-inputs
			// (unknown co-inputs counted as 0 — heuristic, validated by the
			// following implication).
			acc := want
			if g.Type == netlist.Xnor {
				acc = notV3(acc)
			}
			for _, other := range g.In {
				if other == in {
					continue
				}
				if v := p.vals[other].g; v == v1 {
					acc = notV3(acc)
				}
			}
			net = in
			want = acc
		case netlist.Mux2:
			sel := p.vals[g.In[0]]
			switch sel.g {
			case v0:
				net = g.In[1]
			case v1:
				net = g.In[2]
			default:
				// Prefer steering toward a data input that already has the
				// wanted value; otherwise resolve the select first.
				if p.vals[g.In[1]].g == want {
					net, want = g.In[0], v0
				} else if p.vals[g.In[2]].g == want {
					net, want = g.In[0], v1
				} else if p.vals[g.In[1]].g == vX {
					net = g.In[1]
				} else if p.vals[g.In[2]].g == vX {
					net = g.In[2]
				} else {
					net = g.In[0]
					want = v0
				}
			}
		default:
			return 0, v0, false
		}
	}
}

// pickXInput returns an input with unknown good value — the first one, or
// the cheapest-to-control one under SCOAP guidance.
func (p *podem) pickXInput(g *netlist.Gate) (netlist.Net, bool) {
	best := netlist.InvalidNet
	bestCost := int32(1) << 30
	for _, in := range g.In {
		if p.vals[in].g != vX {
			continue
		}
		if p.scoap == nil {
			return in, true
		}
		cost := p.scoap.CC0[in]
		if p.scoap.CC1[in] < cost {
			cost = p.scoap.CC1[in]
		}
		if cost < bestCost {
			bestCost = cost
			best = in
		}
	}
	if best == netlist.InvalidNet {
		return 0, false
	}
	return best, true
}
