package atpg

import (
	"repro/internal/netlist"
)

// podemOutcome classifies the result of a deterministic generation attempt.
type podemOutcome uint8

// PODEM outcomes.
const (
	podemFound podemOutcome = iota
	podemRedundant
	podemAborted
)

// podem holds the working state of one PODEM run. PODEM assigns values only
// to controllable points; every assignment is followed by a full 5-valued
// forward implication, so the state is always consistent.
type podem struct {
	n          *netlist.Netlist
	t          *simTopo
	fault      Fault
	vals       []val5 // per net
	assign     []v3   // per controllable point
	ctrlOf     []int32
	limit      int
	backtracks int

	// CSR fanout (shared, read-only): the gates reading net x are
	// fanGate[fanStart[x]:fanStart[x+1]].
	fanStart []int32
	fanGate  []int32
	// Engine-lifetime totals across every generate call, reported to the
	// observability registry by the ATPG driver.
	totalDecisions  int64
	totalBacktracks int64
	// scoap, when non-nil, guides input choices toward the cheapest
	// controllability (the classic SCOAP-guided backtrace ablation).
	scoap *Scoap

	// Scratch for the X-path check and the frontier scan.
	frontier []int32
	xVisited []bool
	xStack   []int32
	xTouched []int32

	// Reusable decision stack (one entry per live assignment).
	stack []decision

	// Static fanout cone of the current fault site (topo-sorted, fault
	// gate first): the only region where a fault effect can live, so the
	// frontier scan and the test-found check walk it instead of the whole
	// netlist. Rebuilt once per generate call.
	cone    []int32
	coneObs []netlist.Net // observable nets inside the cone

	// Scratch for incremental implication: per-level pending buckets and
	// their membership marks. Every fanout edge ends at a strictly higher
	// logic level, so draining the buckets level by level visits gates in
	// a valid topological order with O(1) enqueue and dequeue; gates on
	// the same level never feed each other, so intra-level order cannot
	// affect the fixpoint. The levels are the netlist's own (Flat.GateLevel,
	// shared read-only) — any level function with the strict-climb property
	// reaches the same fixpoint.
	levelOf []int32   // gate -> logic level (shared with netlist.Flat)
	buckets [][]int32 // pending gates per level
	inQ     []bool
}

type decision struct {
	ctrl    int
	value   v3
	flipped bool
}

// newPodem prepares a PODEM engine bound to a shared structural view. The
// view is read-only; any number of engines (one per shard worker) can bind
// the same simTopo concurrently.
func newPodem(t *simTopo, limit int) *podem {
	n := t.n
	p := &podem{
		n:        n,
		t:        t,
		vals:     make([]val5, n.NumNets()),
		assign:   make([]v3, len(t.ctrl)),
		ctrlOf:   make([]int32, n.NumNets()),
		limit:    limit,
		fanStart: t.fl.FanStart,
		fanGate:  t.fl.FanGate,
	}
	for i := range p.ctrlOf {
		p.ctrlOf[i] = -1
	}
	for ci, net := range t.ctrl {
		p.ctrlOf[net] = int32(ci)
	}
	p.xVisited = make([]bool, len(n.Gates))
	p.inQ = make([]bool, len(n.Gates))
	p.levelOf = t.fl.GateLevel
	p.buckets = make([][]int32, t.fl.NumLevels)
	// Establish the fault-free all-X fixpoint; generate maintains it
	// incrementally from here on (fault.Gate == -1 means "no injection" —
	// real gate indices are non-negative).
	p.fault = Fault{Gate: -1}
	for i := range p.vals {
		p.vals[i] = vvX
	}
	for _, gi := range n.TopoOrder() {
		p.vals[n.Gates[gi].Out] = p.evalFaultGate(gi)
	}
	return p
}

// xPathExists reports whether a path of X-valued gate outputs connects any
// frontier gate to an observable point — the classic PODEM pruning rule: a
// fault effect that cannot possibly reach an output under the current
// assignment warrants an immediate backtrack.
func (p *podem) xPathExists() bool {
	stack := p.xStack[:0]
	visited := p.xVisited
	touched := p.xTouched[:0]
	found := false
	// A frontier gate's own output is a candidate origin (it is X).
	for _, gi := range p.frontier {
		if !visited[gi] {
			visited[gi] = true
			touched = append(touched, gi)
			stack = append(stack, gi)
		}
	}
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out := p.n.Gates[gi].Out
		if len(p.t.obsOfNet[out]) > 0 {
			found = true
			break
		}
		for i, e := p.fanStart[out], p.fanStart[out+1]; i < e; i++ {
			fg := p.fanGate[i]
			if visited[fg] {
				continue
			}
			g := &p.n.Gates[fg]
			v := p.vals[g.Out]
			if v.g != vX && v.f != vX {
				continue // fully determined; a fault effect cannot pass
			}
			visited[fg] = true
			touched = append(touched, fg)
			stack = append(stack, fg)
		}
	}
	for _, gi := range touched {
		visited[gi] = false
	}
	p.xTouched = touched[:0]
	p.xStack = stack[:0]
	return found
}

// generate attempts to derive a test for the fault. On success it returns
// the 3-valued controllable assignment (vX entries are don't-cares).
//
// Implication is incremental: the all-X base state is implied once with a
// full forward pass, then every decision, flip and unassignment propagates
// only through the fanout cone of the changed control (values are
// byte-identical to a full re-implication — gate evaluation is a pure
// function of the inputs over a DAG, and propagation in topological order
// with change pruning reaches the same fixpoint).
func (p *podem) generate(f Fault) ([]v3, podemOutcome) {
	// Return to the all-X base state incrementally: whatever the previous
	// call left behind is unwound and the injected fault swapped in a
	// single drain — only the affected cones are re-evaluated, never the
	// full netlist.
	p.retarget(f)
	p.backtracks = 0
	p.buildCone()
	stack := p.stack[:0]

	for {
		if p.testFound() {
			out := make([]v3, len(p.assign))
			copy(out, p.assign)
			p.stack = stack
			return out, podemFound
		}
		objNet, objVal, ok := p.objective()
		if ok {
			if ci, v, ok2 := p.backtrace(objNet, objVal); ok2 {
				p.setAssign(ci, v)
				stack = append(stack, decision{ctrl: ci, value: v})
				p.totalDecisions++
				continue
			}
		}
		// Conflict: flip the most recent unflipped decision.
		flipped := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.value = notV3(top.value)
				p.setAssign(top.ctrl, top.value)
				flipped = true
				break
			}
			p.setAssign(top.ctrl, vX)
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			p.stack = stack
			return nil, podemRedundant
		}
		p.backtracks++
		p.totalBacktracks++
		if p.backtracks > p.limit {
			p.stack = stack
			return nil, podemAborted
		}
	}
}

// buildCone collects the static fanout cone of the fault gate (the fault
// gate first, then its transitive fanout in topological order) and the
// observable nets inside it — the only region a fault effect can reach.
func (p *podem) buildCone() {
	marked := p.inQ // reuse the propagation marks; cleared before return
	cone := p.cone[:0]
	cone = append(cone, p.fault.Gate)
	marked[p.fault.Gate] = true
	for qi := 0; qi < len(cone); qi++ {
		out := p.n.Gates[cone[qi]].Out
		for i, e := p.fanStart[out], p.fanStart[out+1]; i < e; i++ {
			fg := p.fanGate[i]
			if !marked[fg] {
				marked[fg] = true
				cone = insertByTopo(cone, qi, fg, p.t.topoPos)
			}
		}
	}
	obs := p.coneObs[:0]
	for _, gi := range cone {
		out := p.n.Gates[gi].Out
		if len(p.t.obsOfNet[out]) > 0 {
			obs = append(obs, out)
		}
		marked[gi] = false
	}
	p.cone = cone
	p.coneObs = obs
}

// retarget returns the engine to the all-X fixpoint under fault f without
// a full re-implication: every control the previous call left assigned is
// reset to X, the old fault gate is de-injected and the new one injected,
// and all of it settles in ONE level-ordered drain (seeding every affected
// gate first means no cone is walked twice, unlike unassigning controls
// one by one).
func (p *podem) retarget(f Fault) {
	inQ, levelOf, buckets := p.inQ, p.levelOf, p.buckets
	lo := int32(len(buckets))
	hi := int32(-1)
	push := func(gi int32) {
		if inQ[gi] {
			return
		}
		inQ[gi] = true
		l := levelOf[gi]
		buckets[l] = append(buckets[l], gi)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	for ci := range p.assign {
		if p.assign[ci] == vX {
			continue
		}
		p.assign[ci] = vX
		net := p.t.ctrl[ci]
		p.vals[net] = vvX
		for i, e := p.fanStart[net], p.fanStart[net+1]; i < e; i++ {
			push(p.fanGate[i])
		}
	}
	// Enqueued gates are always re-evaluated (pruning only skips their
	// fanout when the output is unchanged), so seeding both fault gates
	// swaps the injection even where net values happen not to move.
	oldGate := p.fault.Gate
	p.fault = f
	if oldGate >= 0 {
		push(oldGate)
	}
	push(f.Gate)
	for l := lo; l <= hi; l++ {
		b := buckets[l]
		for _, gi := range b {
			inQ[gi] = false
			out := p.evalFaultGate(gi)
			g := &p.n.Gates[gi]
			if out == p.vals[g.Out] {
				continue
			}
			p.vals[g.Out] = out
			for i, e := p.fanStart[g.Out], p.fanStart[g.Out+1]; i < e; i++ {
				push(p.fanGate[i])
			}
		}
		buckets[l] = b[:0]
	}
}

// evalFaultGate evaluates gate gi under the current values with the
// fault's injection rules applied (forced input pin or forced faulty
// output component).
func (p *podem) evalFaultGate(gi int32) val5 {
	g := &p.n.Gates[gi]
	var out val5
	if p.fault.Gate == gi && p.fault.Pin >= 0 {
		out = evalGate5Pin(g, p.vals, int(p.fault.Pin), p.fault.SA)
	} else {
		out = evalGate5(g, p.vals)
	}
	if p.fault.Gate == gi && p.fault.Pin == PinOut {
		out.f = v3(p.fault.SA)
	}
	return out
}

// setAssign sets controllable ci to v and incrementally re-implies: the
// new value propagates level by level through the fanout of the control
// net, pruning subtrees whose gate output is unchanged. A gate is only
// enqueued at a level strictly above the one being drained, so every gate
// is evaluated at most once, after all of its dirty inputs settled.
func (p *podem) setAssign(ci int, v v3) {
	p.assign[ci] = v
	net := p.t.ctrl[ci]
	nv := val5{v, v}
	if p.vals[net] == nv {
		return
	}
	p.vals[net] = nv
	p.propagate(net)
}

// propagate forwards a changed value on net through its transitive fanout
// using the per-level pending buckets. The enqueue is written out inline
// (twice) rather than through a closure: this is the hottest loop in PODEM
// and the closure call alone showed up with double-digit flat time.
func (p *podem) propagate(net netlist.Net) {
	inQ, levelOf, buckets := p.inQ, p.levelOf, p.buckets
	faultGate := p.fault.Gate
	lo := int32(len(buckets))
	hi := int32(-1)
	for i, e := p.fanStart[net], p.fanStart[net+1]; i < e; i++ {
		gi := p.fanGate[i]
		if inQ[gi] {
			continue
		}
		inQ[gi] = true
		l := levelOf[gi]
		buckets[l] = append(buckets[l], gi)
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	for l := lo; l <= hi; l++ {
		b := buckets[l]
		for _, gi := range b {
			inQ[gi] = false
			g := &p.n.Gates[gi]
			var out val5
			if gi != faultGate {
				out = evalGate5(g, p.vals)
			} else {
				out = p.evalFaultGate(gi)
			}
			if out == p.vals[g.Out] {
				continue
			}
			p.vals[g.Out] = out
			for i, e := p.fanStart[g.Out], p.fanStart[g.Out+1]; i < e; i++ {
				fg := p.fanGate[i]
				if inQ[fg] {
					continue
				}
				inQ[fg] = true
				fl := levelOf[fg]
				buckets[fl] = append(buckets[fl], fg)
				// fl > l always (every fanout edge climbs levels), so only
				// the high-water mark can move.
				if fl > hi {
					hi = fl
				}
			}
		}
		buckets[l] = b[:0]
	}
}

func evalGate5(g *netlist.Gate, vals []val5) val5 {
	switch g.Type {
	case netlist.Const0:
		return vv0
	case netlist.Const1:
		return vv1
	case netlist.Buf:
		return vals[g.In[0]]
	case netlist.Not:
		v := vals[g.In[0]]
		return dec5Tab[not5Tab[enc5(v)]]
	case netlist.And, netlist.Nand:
		acc := enc5(vv1)
		for _, in := range g.In {
			acc = and5Tab[uint(acc)*9+uint(enc5(vals[in]))]
		}
		if g.Type == netlist.Nand {
			acc = not5Tab[acc]
		}
		return dec5Tab[acc]
	case netlist.Or, netlist.Nor:
		acc := enc5(vv0)
		for _, in := range g.In {
			acc = or5Tab[uint(acc)*9+uint(enc5(vals[in]))]
		}
		if g.Type == netlist.Nor {
			acc = not5Tab[acc]
		}
		return dec5Tab[acc]
	case netlist.Xor, netlist.Xnor:
		acc := enc5(vv0)
		for _, in := range g.In {
			acc = xor5Tab[uint(acc)*9+uint(enc5(vals[in]))]
		}
		if g.Type == netlist.Xnor {
			acc = not5Tab[acc]
		}
		return dec5Tab[acc]
	default: // Mux2
		sel, a0, a1 := vals[g.In[0]], vals[g.In[1]], vals[g.In[2]]
		return val5{muxV3(sel.g, a0.g, a1.g), muxV3(sel.f, a0.f, a1.f)}
	}
}

// evalGate5Pin evaluates a gate whose input pin carries the fault: the
// faulty component of that pin is forced to the stuck value. The forcing
// is substituted inline while folding over the inputs — no temporary
// input copy, no allocation.
func evalGate5Pin(g *netlist.Gate, vals []val5, pin int, sa uint8) val5 {
	fv := v3(sa)
	pinVal := func(i int) val5 {
		v := vals[g.In[i]]
		if i == pin {
			v.f = fv
		}
		return v
	}
	switch g.Type {
	case netlist.Buf:
		return pinVal(0)
	case netlist.Not:
		v := pinVal(0)
		return val5{notV3(v.g), notV3(v.f)}
	case netlist.And, netlist.Nand:
		acc := val5{v1, v1}
		for i := range g.In {
			v := pinVal(i)
			acc = val5{andV3(acc.g, v.g), andV3(acc.f, v.f)}
		}
		if g.Type == netlist.Nand {
			acc = val5{notV3(acc.g), notV3(acc.f)}
		}
		return acc
	case netlist.Or, netlist.Nor:
		acc := val5{v0, v0}
		for i := range g.In {
			v := pinVal(i)
			acc = val5{orV3(acc.g, v.g), orV3(acc.f, v.f)}
		}
		if g.Type == netlist.Nor {
			acc = val5{notV3(acc.g), notV3(acc.f)}
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		acc := val5{v0, v0}
		for i := range g.In {
			v := pinVal(i)
			acc = val5{xorV3(acc.g, v.g), xorV3(acc.f, v.f)}
		}
		if g.Type == netlist.Xnor {
			acc = val5{notV3(acc.g), notV3(acc.f)}
		}
		return acc
	case netlist.Mux2:
		sel, a0, a1 := pinVal(0), pinVal(1), pinVal(2)
		return val5{muxV3(sel.g, a0.g, a1.g), muxV3(sel.f, a0.f, a1.f)}
	default:
		// Constants carry no input pins; fall back to the plain evaluation.
		return evalGate5(g, vals)
	}
}

// testFound reports whether a fault effect has reached an observable point.
// Only observables inside the fault cone can carry one.
func (p *podem) testFound() bool {
	for _, o := range p.coneObs {
		if p.vals[o].hasFaultEffect() {
			return true
		}
	}
	return false
}

// objective returns the next (net, value) goal: activate the fault if it is
// not activated yet, otherwise advance the D-frontier.
func (p *podem) objective() (netlist.Net, v3, bool) {
	site := p.faultSiteNet()
	sv := p.vals[site]
	want := notV3(v3(p.fault.SA))
	if sv.g == vX {
		return site, want, true
	}
	if sv.g != want {
		return 0, v0, false // activation impossible under current assignment
	}
	// D-frontier: every gate with a fault effect on an input and an
	// unknown output; the objective advances the deepest member. Fault
	// effects only exist inside the fault cone, which buildCone keeps in
	// topological order — so scanning it visits the same gates in the
	// same order as a whole-netlist scan would.
	n := p.n
	p.frontier = p.frontier[:0]
	for _, gi := range p.cone {
		g := &n.Gates[gi]
		if p.vals[g.Out].g != vX && p.vals[g.Out].f != vX {
			continue
		}
		hasD := false
		for _, in := range g.In {
			if p.vals[in].hasFaultEffect() {
				hasD = true
				break
			}
		}
		// An input-pin fault makes its own gate part of the frontier even
		// though no net carries a fault effect yet.
		if gi == p.fault.Gate && p.fault.Pin >= 0 {
			hasD = true
		}
		if hasD {
			p.frontier = append(p.frontier, gi)
		}
	}
	if len(p.frontier) == 0 {
		return 0, v0, false
	}
	// X-path pruning: if no all-X corridor links the frontier to an
	// observable, this branch is hopeless.
	if !p.xPathExists() {
		return 0, v0, false
	}
	return p.frontierObjective(p.frontier[len(p.frontier)-1])
}

// frontierObjective chooses the side input and value needed to propagate a
// fault effect through the gate.
func (p *podem) frontierObjective(gi int32) (netlist.Net, v3, bool) {
	g := &p.n.Gates[gi]
	dpin := int8(-1) // pseudo-D pin for an input-pin fault on this gate
	if gi == p.fault.Gate && p.fault.Pin >= 0 {
		dpin = p.fault.Pin
	}
	switch g.Type {
	case netlist.And, netlist.Nand:
		return p.firstXInput(g, v1)
	case netlist.Or, netlist.Nor:
		return p.firstXInput(g, v0)
	case netlist.Xor, netlist.Xnor:
		return p.firstXInput(g, v0)
	case netlist.Mux2:
		sel, a0, a1 := p.vals[g.In[0]], p.vals[g.In[1]], p.vals[g.In[2]]
		switch {
		case (a0.hasFaultEffect() || dpin == 1) && sel.g == vX:
			return g.In[0], v0, true
		case (a1.hasFaultEffect() || dpin == 2) && sel.g == vX:
			return g.In[0], v1, true
		case sel.hasFaultEffect() || dpin == 0:
			// Data inputs must differ to propagate a select fault.
			if a0.g == vX {
				if a1.g != vX {
					return g.In[1], notV3(a1.g), true
				}
				return g.In[1], v0, true
			}
			if a1.g == vX {
				return g.In[2], notV3(a0.g), true
			}
			return 0, v0, false
		default:
			return 0, v0, false
		}
	default:
		return 0, v0, false
	}
}

func (p *podem) firstXInput(g *netlist.Gate, want v3) (netlist.Net, v3, bool) {
	best := netlist.InvalidNet
	bestCost := int32(1) << 30
	for _, in := range g.In {
		if p.vals[in].g != vX || p.vals[in].hasFaultEffect() {
			continue
		}
		if p.scoap == nil {
			return in, want, true
		}
		cost := p.scoap.CC1[in]
		if want == v0 {
			cost = p.scoap.CC0[in]
		}
		if cost < bestCost {
			bestCost = cost
			best = in
		}
	}
	if best == netlist.InvalidNet {
		return 0, v0, false
	}
	return best, want, true
}

// faultSiteNet returns the net whose good value must be set opposite to the
// stuck value to activate the fault.
func (p *podem) faultSiteNet() netlist.Net {
	g := &p.n.Gates[p.fault.Gate]
	if p.fault.Pin == PinOut {
		return g.Out
	}
	return g.In[p.fault.Pin]
}

// backtrace walks an objective (net, value) backwards through X paths to an
// unassigned controllable point and returns the implied assignment.
func (p *podem) backtrace(net netlist.Net, want v3) (int, v3, bool) {
	n := p.n
	for {
		if ci := p.ctrlOf[net]; ci >= 0 {
			if p.assign[ci] != vX {
				return 0, v0, false
			}
			return int(ci), want, true
		}
		drv := n.Driver(net)
		if drv.Kind != netlist.DriverGate {
			return 0, v0, false
		}
		g := &n.Gates[drv.Index]
		switch g.Type {
		case netlist.Const0, netlist.Const1:
			return 0, v0, false
		case netlist.Buf:
			net = g.In[0]
		case netlist.Not:
			net = g.In[0]
			want = notV3(want)
		case netlist.And, netlist.Or:
			in, ok := p.pickXInput(g)
			if !ok {
				return 0, v0, false
			}
			net = in
		case netlist.Nand, netlist.Nor:
			in, ok := p.pickXInput(g)
			if !ok {
				return 0, v0, false
			}
			net = in
			want = notV3(want)
		case netlist.Xor, netlist.Xnor:
			in, ok := p.pickXInput(g)
			if !ok {
				return 0, v0, false
			}
			// Desired parity of the chosen input given known co-inputs
			// (unknown co-inputs counted as 0 — heuristic, validated by the
			// following implication).
			acc := want
			if g.Type == netlist.Xnor {
				acc = notV3(acc)
			}
			for _, other := range g.In {
				if other == in {
					continue
				}
				if v := p.vals[other].g; v == v1 {
					acc = notV3(acc)
				}
			}
			net = in
			want = acc
		case netlist.Mux2:
			sel := p.vals[g.In[0]]
			switch sel.g {
			case v0:
				net = g.In[1]
			case v1:
				net = g.In[2]
			default:
				// Prefer steering toward a data input that already has the
				// wanted value; otherwise resolve the select first.
				if p.vals[g.In[1]].g == want {
					net, want = g.In[0], v0
				} else if p.vals[g.In[2]].g == want {
					net, want = g.In[0], v1
				} else if p.vals[g.In[1]].g == vX {
					net = g.In[1]
				} else if p.vals[g.In[2]].g == vX {
					net = g.In[2]
				} else {
					net = g.In[0]
					want = v0
				}
			}
		default:
			return 0, v0, false
		}
	}
}

// insertByTopo inserts gate gi into cone (topologically sorted beyond
// position qi), keeping the order. Fanout edges always point forward, so
// insertion never lands at or before qi.
func insertByTopo(cone []int32, qi int, gi int32, topoPos []int32) []int32 {
	pos := len(cone)
	for pos > qi+1 && topoPos[cone[pos-1]] > topoPos[gi] {
		pos--
	}
	cone = append(cone, 0)
	copy(cone[pos+1:], cone[pos:])
	cone[pos] = gi
	return cone
}

// pickXInput returns an input with unknown good value — the first one, or
// the cheapest-to-control one under SCOAP guidance.
func (p *podem) pickXInput(g *netlist.Gate) (netlist.Net, bool) {
	best := netlist.InvalidNet
	bestCost := int32(1) << 30
	for _, in := range g.In {
		if p.vals[in].g != vX {
			continue
		}
		if p.scoap == nil {
			return in, true
		}
		cost := p.scoap.CC0[in]
		if p.scoap.CC1[in] < cost {
			cost = p.scoap.CC1[in]
		}
		if cost < bestCost {
			bestCost = cost
			best = in
		}
	}
	if best == netlist.InvalidNet {
		return 0, false
	}
	return best, true
}
