package atpg

import (
	"repro/internal/netlist"
)

// Pattern is a fully specified test vector: one 0/1 value per controllable
// point, in Simulator.Controllables order (primary inputs first, then
// flip-flop Q outputs).
type Pattern []uint8

// Clone returns a copy of the pattern.
func (p Pattern) Clone() Pattern { return append(Pattern(nil), p...) }

// Simulator is the classic 64-lane parallel-pattern serial-fault simulator
// over the full-scan view of a netlist: the word-width instantiation of the
// width-parameterized wideSim engine, kept as the package's stable API
// (bist, tdf and the functional-test flow all speak uint64 lane masks).
// Fault evaluation is cone-restricted and event-driven; see wideSim.
type Simulator struct {
	wideSim[[1]uint64]
}

// NewSimulator prepares a simulator for the netlist.
func NewSimulator(n *netlist.Netlist) *Simulator {
	return &Simulator{wideSim: *newWideSim[[1]uint64](newSimTopo(n))}
}

// LoadBlock loads up to 64 patterns (lane k = pats[k]) and evaluates the
// fault-free circuit.
func (s *Simulator) LoadBlock(pats []Pattern) { s.loadBlock(pats) }

// Detects simulates the fault against the currently loaded block and
// returns the lane mask of patterns whose observable response differs from
// the fault-free circuit. Only the fault's fanout cone is re-evaluated; a
// difference that reconverges to the good value prunes its subtree.
func (s *Simulator) Detects(f Fault) uint64 { return s.detects(f)[0] }

// GoodResponse returns the fault-free 64-lane word at an observable net of
// the currently loaded block.
func (s *Simulator) GoodResponse(net netlist.Net) uint64 { return s.good[net][0] }

// FaultyWord returns the faulty-machine word at a net as of the most
// recent Detects call; nets outside the evaluated cone equal the good
// machine.
func (s *Simulator) FaultyWord(net netlist.Net) uint64 {
	// cur equals good outside the most recent cone, and the cone is only
	// repaired at the next Detects or LoadBlock, so the faulty response is
	// still readable here.
	return s.cur[net][0]
}
