package atpg

import (
	"repro/internal/netlist"
)

// Pattern is a fully specified test vector: one 0/1 value per controllable
// point, in Simulator.Controllables order (primary inputs first, then
// flip-flop Q outputs).
type Pattern []uint8

// Clone returns a copy of the pattern.
func (p Pattern) Clone() Pattern { return append(Pattern(nil), p...) }

// Simulator is a parallel-pattern (64 lanes) serial-fault simulator over
// the full-scan view of a netlist. Fault evaluation is cone-restricted:
// only gates in the transitive fanout of the fault site are re-evaluated,
// and only observables inside that cone are compared.
type Simulator struct {
	n     *netlist.Netlist
	ctrl  []netlist.Net
	obs   []netlist.Net
	good  []uint64
	work  []uint64
	valid uint64 // mask of lanes carrying real patterns

	fanout [][]netlist.Load
	// Scratch state for cone construction (reused across faults).
	inCone   []bool
	coneBuf  []int32
	obsOfNet [][]int32 // observable indices listening on each net
	topoPos  []int32   // gate -> position in topological order
	insBuf   []uint64  // per-gate input scratch (sized to the max fan-in)
}

// NewSimulator prepares a simulator for the netlist.
func NewSimulator(n *netlist.Netlist) *Simulator {
	s := &Simulator{
		n:    n,
		good: make([]uint64, n.NumNets()),
		work: make([]uint64, n.NumNets()),
	}
	s.ctrl = append(s.ctrl, n.PIs...)
	for _, ff := range n.FFs {
		s.ctrl = append(s.ctrl, ff.Q)
	}
	s.obs = append(s.obs, n.POs...)
	for _, ff := range n.FFs {
		s.obs = append(s.obs, ff.D)
	}
	s.fanout = n.FanoutTable()
	s.inCone = make([]bool, len(n.Gates))
	s.obsOfNet = make([][]int32, n.NumNets())
	for oi, net := range s.obs {
		s.obsOfNet[net] = append(s.obsOfNet[net], int32(oi))
	}
	s.topoPos = make([]int32, len(n.Gates))
	for pos, gi := range n.TopoOrder() {
		s.topoPos[gi] = int32(pos)
	}
	maxIn := 0
	for gi := range n.Gates {
		if l := len(n.Gates[gi].In); l > maxIn {
			maxIn = l
		}
	}
	s.insBuf = make([]uint64, maxIn)
	return s
}

// Controllables returns the controllable points in pattern order.
func (s *Simulator) Controllables() []netlist.Net { return s.ctrl }

// Observables returns the observable points (POs then FF D nets).
func (s *Simulator) Observables() []netlist.Net { return s.obs }

// NumControls returns the pattern width.
func (s *Simulator) NumControls() int { return len(s.ctrl) }

// LoadBlock loads up to 64 patterns (lane k = pats[k]) and evaluates the
// fault-free circuit.
func (s *Simulator) LoadBlock(pats []Pattern) {
	if len(pats) > 64 {
		pats = pats[:64]
	}
	if len(pats) == 64 {
		s.valid = ^uint64(0)
	} else {
		s.valid = uint64(1)<<uint(len(pats)) - 1
	}
	for ci, net := range s.ctrl {
		var w uint64
		for k, p := range pats {
			if p[ci] != 0 {
				w |= 1 << uint(k)
			}
		}
		s.good[net] = w
	}
	evalAll(s.n, s.good)
}

// evalAll evaluates all gates of n into vals (which must already hold the
// controllable-point values).
func evalAll(n *netlist.Netlist, vals []uint64) {
	for _, gi := range n.TopoOrder() {
		g := &n.Gates[gi]
		vals[g.Out] = evalGateFast(g, vals)
	}
}

func evalGateFast(g *netlist.Gate, w []uint64) uint64 {
	switch g.Type {
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^uint64(0)
	case netlist.Buf:
		return w[g.In[0]]
	case netlist.Not:
		return ^w[g.In[0]]
	case netlist.And, netlist.Nand:
		v := w[g.In[0]]
		for _, in := range g.In[1:] {
			v &= w[in]
		}
		if g.Type == netlist.Nand {
			v = ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := w[g.In[0]]
		for _, in := range g.In[1:] {
			v |= w[in]
		}
		if g.Type == netlist.Nor {
			v = ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := w[g.In[0]]
		for _, in := range g.In[1:] {
			v ^= w[in]
		}
		if g.Type == netlist.Xnor {
			v = ^v
		}
		return v
	default: // Mux2
		sel, a0, a1 := w[g.In[0]], w[g.In[1]], w[g.In[2]]
		return a0&^sel | a1&sel
	}
}

// evalGateWithPin evaluates g with input pin `pin` forced to the stuck
// value. The forced value is substituted inline while folding over the
// inputs, so the hottest call of the fault simulator (one excitation
// check per Detects) performs no allocation and no input copy.
func evalGateWithPin(g *netlist.Gate, w []uint64, pin int, sa uint8) uint64 {
	forced := uint64(0)
	if sa == 1 {
		forced = ^uint64(0)
	}
	pinVal := func(i int) uint64 {
		if i == pin {
			return forced
		}
		return w[g.In[i]]
	}
	switch g.Type {
	case netlist.Buf:
		return pinVal(0)
	case netlist.Not:
		return ^pinVal(0)
	case netlist.And, netlist.Nand:
		v := pinVal(0)
		for i := 1; i < len(g.In); i++ {
			v &= pinVal(i)
		}
		if g.Type == netlist.Nand {
			v = ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := pinVal(0)
		for i := 1; i < len(g.In); i++ {
			v |= pinVal(i)
		}
		if g.Type == netlist.Nor {
			v = ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := pinVal(0)
		for i := 1; i < len(g.In); i++ {
			v ^= pinVal(i)
		}
		if g.Type == netlist.Xnor {
			v = ^v
		}
		return v
	case netlist.Mux2:
		return pinVal(1)&^pinVal(0) | pinVal(2)&pinVal(0)
	default:
		return evalGateFast(g, w)
	}
}

// Detects simulates the fault against the currently loaded block and
// returns the lane mask of patterns whose observable response differs from
// the fault-free circuit. Only the fault's fanout cone is re-evaluated; a
// difference that reconverges to the good value prunes its subtree.
func (s *Simulator) Detects(f Fault) uint64 {
	n := s.n
	g0 := &n.Gates[f.Gate]
	var out0 uint64
	if f.Pin >= 0 {
		// The root gate's inputs are all fault-free.
		out0 = evalGateWithPin(g0, s.good, int(f.Pin), f.SA)
	} else if f.SA == 1 {
		out0 = ^uint64(0)
	} else {
		out0 = 0
	}
	if out0 == s.good[g0.Out] {
		return 0 // fault never excited in this block
	}

	cone := s.coneBuf[:0]
	cone = append(cone, f.Gate)
	s.inCone[f.Gate] = true
	s.work[g0.Out] = out0
	var diff uint64
	if len(s.obsOfNet[g0.Out]) > 0 {
		diff = out0 ^ s.good[g0.Out]
	}
	for _, ld := range s.fanout[g0.Out] {
		if !s.inCone[ld.Gate] {
			s.inCone[ld.Gate] = true
			cone = insertByTopo(cone, 0, ld.Gate, s.topoPos)
		}
	}

	for qi := 1; qi < len(cone); qi++ {
		gi := cone[qi]
		g := &n.Gates[gi]
		out := s.evalGateCone(g)
		s.work[g.Out] = out
		if out == s.good[g.Out] {
			// The difference died here; downstream reads the good value.
			s.inCone[gi] = false
			continue
		}
		if len(s.obsOfNet[g.Out]) > 0 {
			diff |= out ^ s.good[g.Out]
		}
		for _, ld := range s.fanout[g.Out] {
			if !s.inCone[ld.Gate] {
				s.inCone[ld.Gate] = true
				cone = insertByTopo(cone, qi, ld.Gate, s.topoPos)
			}
		}
	}
	for _, gi := range cone {
		s.inCone[gi] = false
	}
	s.coneBuf = cone
	return diff & s.valid
}

// insertByTopo inserts gate gi into cone (topologically sorted beyond
// position qi), keeping the order. Fanout edges always point forward, so
// insertion never lands at or before qi.
func insertByTopo(cone []int32, qi int, gi int32, topoPos []int32) []int32 {
	pos := len(cone)
	for pos > qi+1 && topoPos[cone[pos-1]] > topoPos[gi] {
		pos--
	}
	cone = append(cone, 0)
	copy(cone[pos+1:], cone[pos:])
	cone[pos] = gi
	return cone
}

// evalGateCone evaluates a gate whose inputs take faulty values where the
// driver is a live cone member and good values everywhere else. The input
// scratch is the simulator's insBuf (sized to the netlist's max fan-in at
// construction), keeping the per-gate evaluation allocation-free.
func (s *Simulator) evalGateCone(g *netlist.Gate) uint64 {
	ins := s.insBuf[:0]
	for _, in := range g.In {
		v := s.good[in]
		if d := s.n.Driver(in); d.Kind == netlist.DriverGate && s.inCone[d.Index] {
			v = s.work[in]
		}
		ins = append(ins, v)
	}
	return evalGateVals(g.Type, ins)
}

// evalGateVals evaluates a gate over explicit input words.
func evalGateVals(t netlist.GateType, ins []uint64) uint64 {
	switch t {
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^uint64(0)
	case netlist.Buf:
		return ins[0]
	case netlist.Not:
		return ^ins[0]
	case netlist.And, netlist.Nand:
		v := ins[0]
		for _, x := range ins[1:] {
			v &= x
		}
		if t == netlist.Nand {
			v = ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := ins[0]
		for _, x := range ins[1:] {
			v |= x
		}
		if t == netlist.Nor {
			v = ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := ins[0]
		for _, x := range ins[1:] {
			v ^= x
		}
		if t == netlist.Xnor {
			v = ^v
		}
		return v
	default: // Mux2
		return ins[1]&^ins[0] | ins[2]&ins[0]
	}
}

// GoodResponse returns the fault-free 64-lane word at an observable net of
// the currently loaded block.
func (s *Simulator) GoodResponse(net netlist.Net) uint64 { return s.good[net] }

// FaultyWord returns the faulty-machine word at a net as of the most
// recent Detects call; nets outside the evaluated cone equal the good
// machine.
func (s *Simulator) FaultyWord(net netlist.Net) uint64 {
	for _, gi := range s.coneBuf {
		if s.n.Gates[gi].Out == net {
			return s.work[net]
		}
	}
	return s.good[net]
}
