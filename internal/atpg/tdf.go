package atpg

import "repro/internal/netlist"

// Transition-delay-fault (TDF) evaluation. The paper argues that the
// functional application of the structural patterns "may also be used for
// delay fault tests, since it basically checks not only the structure of
// the components but also their timing relations": consecutive patterns
// stream through the O/T registers back to back, so each adjacent pair
// (v1, v2) is a launch/capture pair. A slow-to-rise fault at a node
// behaves as stuck-at-0 under v2 provided v1 left the node at 0 (dually
// for slow-to-fall), which reduces TDF detection to the stuck-at
// machinery plus an initialization condition.

// TDFault is a transition fault at a gate output.
type TDFault struct {
	Gate       int32
	SlowToRise bool
}

// TDFUniverse enumerates the transition faults: one slow-to-rise and one
// slow-to-fall per non-constant gate output.
func TDFUniverse(n *netlist.Netlist) []TDFault {
	var out []TDFault
	for gi, g := range n.Gates {
		if g.Type == netlist.Const0 || g.Type == netlist.Const1 {
			continue
		}
		out = append(out,
			TDFault{Gate: int32(gi), SlowToRise: true},
			TDFault{Gate: int32(gi), SlowToRise: false})
	}
	return out
}

// TDFResult reports transition-fault coverage of an ordered pattern
// sequence.
type TDFResult struct {
	Total    int
	Detected int
	Pairs    int // launch/capture pairs evaluated (len(patterns)-1)
}

// Coverage returns detected/total.
func (r *TDFResult) Coverage() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Total)
}

// EvaluateTDF measures which transition faults the ordered pattern
// sequence detects when applied back to back. Blocks overlap by one
// pattern so every adjacent pair is considered.
func EvaluateTDF(n *netlist.Netlist, patterns []Pattern) *TDFResult {
	faults := TDFUniverse(n)
	res := &TDFResult{Total: len(faults)}
	if len(patterns) < 2 {
		return res
	}
	res.Pairs = len(patterns) - 1
	sim := NewSimulator(n)
	detected := make([]bool, len(faults))

	for start := 0; start < len(patterns)-1; start += 63 {
		end := start + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block := patterns[start:end]
		sim.LoadBlock(block)
		// Good node values per lane for the initialization condition.
		nLanes := len(block)
		for fi, f := range faults {
			if detected[fi] {
				continue
			}
			out := n.Gates[f.Gate].Out
			goodW := sim.GoodResponse(out)
			var sa uint8
			var initMask uint64
			if f.SlowToRise {
				sa = 0
				initMask = ^goodW // lanes where the node is 0
			} else {
				sa = 1
				initMask = goodW
			}
			det := sim.Detects(Fault{Gate: f.Gate, Pin: PinOut, SA: sa})
			// Pair (k-1, k): node initialized by lane k-1, fault effect
			// captured by lane k.
			hit := det & (initMask << 1)
			if nLanes < 64 {
				hit &= uint64(1)<<uint(nLanes) - 1
			}
			// Lane 0 of a block pairs with the previous block's last lane
			// (blocks overlap by one, so that pair is already covered as
			// lanes 62/63 of the previous block); mask it out here.
			hit &^= 1
			if hit != 0 {
				detected[fi] = true
				res.Detected++
			}
		}
	}
	return res
}

// OrderForTDF greedily reorders a pattern set to maximize toggling between
// neighbours (maximum Hamming distance successor), a cheap heuristic that
// raises transition-launch opportunities without new patterns.
func OrderForTDF(patterns []Pattern) []Pattern {
	if len(patterns) <= 2 {
		return append([]Pattern(nil), patterns...)
	}
	used := make([]bool, len(patterns))
	out := make([]Pattern, 0, len(patterns))
	cur := 0
	used[0] = true
	out = append(out, patterns[0])
	for len(out) < len(patterns) {
		best, bestD := -1, -1
		for i := range patterns {
			if used[i] {
				continue
			}
			d := hamming(patterns[cur], patterns[i])
			if d > bestD {
				best, bestD = i, d
			}
		}
		used[best] = true
		out = append(out, patterns[best])
		cur = best
	}
	return out
}

func hamming(a, b Pattern) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
