package core

import (
	"strings"
	"testing"

	"repro/internal/testcost"
	"repro/internal/tta"
)

var sharedStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if sharedStudy == nil {
		s, err := NewStudy()
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Explore(); err != nil {
			t.Fatal(err)
		}
		sharedStudy = s
	}
	return sharedStudy
}

func TestStudyEndToEnd(t *testing.T) {
	s := study(t)
	if s.SelectedArchitecture() == nil {
		t.Fatal("no architecture selected")
	}
	sum, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"candidates", "Pareto front", "selected"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary lacks %q:\n%s", want, sum)
		}
	}
}

func TestFigureTables(t *testing.T) {
	s := study(t)
	f2, err := s.Figure2Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Rows) < 4 {
		t.Errorf("figure 2 has only %d rows", len(f2.Rows))
	}
	f8, err := s.Figure8Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) < 4 {
		t.Errorf("figure 8 has only %d rows", len(f8.Rows))
	}
	if !strings.Contains(f8.String(), "min norm") {
		t.Error("figure 8 table does not mark the selection")
	}
}

func TestFigurePlots(t *testing.T) {
	s := study(t)
	p2, err := s.Figure2Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p2, "*") || !strings.Contains(p2, "S") {
		t.Errorf("figure 2 plot lacks front or selection marks:\n%s", p2)
	}
	p8, err := s.Figure8Plot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p8, "test cost") {
		t.Error("figure 8 plot lacks axis label")
	}
}

func TestTable1OnSelectedArchitecture(t *testing.T) {
	s := study(t)
	tbl, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, col := range []string{"full scan", "our approach", "nl", "ftfu", "ftrf", "fts", "FC(%)"} {
		if !strings.Contains(out, col) {
			t.Errorf("table 1 lacks column %q", col)
		}
	}
	if !strings.Contains(out, "TOTAL") {
		t.Error("table 1 lacks the total row")
	}
	// Always-present units are parenthesized (excluded), as in the paper.
	if !strings.Contains(out, "(") {
		t.Error("excluded components not parenthesized")
	}
}

func TestTable1ForFigure9(t *testing.T) {
	ann := testcost.NewAnnotator(16, 7)
	tbl, err := Table1For(ann, tta.Figure9())
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, name := range []string{"ALU", "CMP", "RF1", "RF2", "LD/ST", "PC", "Immediate"} {
		if !strings.Contains(out, name) {
			t.Errorf("table 1 lacks row %q", name)
		}
	}
}

func TestStudyRequiresExplore(t *testing.T) {
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Figure2Table(); err == nil {
		t.Error("Figure2Table before Explore accepted")
	}
	if _, err := s.Summary(); err == nil {
		t.Error("Summary before Explore accepted")
	}
	if s.SelectedArchitecture() != nil {
		t.Error("selection exists before exploration")
	}
}

func TestStrategyTable(t *testing.T) {
	tbl, err := StrategyTable(tta.Figure9(), 7, 2048)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"ALU", "CMP", "scan cycles", "BIST", "functional cycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("strategy table lacks %q", want)
		}
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (ALU + CMP)", len(tbl.Rows))
	}
}
