// Package core is the top-level API of the design-and-test space
// exploration: it orchestrates the gate-level back-annotation
// (internal/testcost), the MOVE-style scheduling of the Crypt workload
// (internal/sched, internal/crypt), the exploration itself (internal/dse)
// and the rendering of the paper's tables and figures (internal/report).
//
// The typical flow mirrors the paper's section 4:
//
//	study, _ := core.NewStudy()
//	_ = study.Explore()                  // figures 2 and 8
//	fmt.Println(study.Figure2Plot())
//	fmt.Println(study.Figure8Table())
//	arch := study.SelectedArchitecture() // figure 9
//	tbl, _ := study.Table1()             // table 1
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dse"
	"repro/internal/report"
	"repro/internal/testcost"
	"repro/internal/tta"
)

// Study bundles one exploration run and its back-annotation state. The
// zero value is not usable; construct with NewStudy or NewStudyWithConfig.
type Study struct {
	Config dse.Config
	Result *dse.Result
}

// NewStudy prepares the default study: the Crypt workload over the
// paper-scale design space.
func NewStudy() (*Study, error) {
	cfg, err := dse.DefaultConfig()
	if err != nil {
		return nil, err
	}
	return &Study{Config: cfg}, nil
}

// NewStudyWithConfig prepares a study over a custom space.
func NewStudyWithConfig(cfg dse.Config) *Study {
	return &Study{Config: cfg}
}

// Explore runs the design space exploration (idempotent).
//
// Deprecated: Explore is a thin shim over ExploreContext with a
// background context; the exploration then cannot be cancelled or
// deadlined. Use ExploreContext.
func (s *Study) Explore() error {
	return s.ExploreContext(context.Background())
}

// ExploreContext runs the design space exploration under ctx (idempotent).
// Cancelling the context stops the exploration promptly; the error then
// is a *dse.PartialError (unwrapping to ctx.Err()), and whatever partial
// result was salvaged is kept on the study — the figures render over the
// evaluated subset. Because a partial result is a result, a later call
// does not re-explore; start a fresh study to retry. When s.Config.Obs is
// set, the run is fully instrumented (see dse.Config.Obs).
func (s *Study) ExploreContext(ctx context.Context) error {
	if s.Result != nil {
		return nil
	}
	if s.Config.Annotator == nil {
		w := s.Config.Width
		if w == 0 {
			w = 16
		}
		s.Config.Annotator = testcost.NewAnnotator(w, s.Config.Seed)
	}
	res, err := dse.ExploreContext(ctx, s.Config)
	if res != nil && (err == nil || res.Selected >= 0) {
		// Keep a usable partial result (it has a selection to render);
		// drop a hollow one so ensure() still reports "call Explore".
		s.Result = res
	}
	return err
}

// Reselect re-runs the figure-9 selection under a custom norm and weight
// spec without re-exploring the space.
func (s *Study) Reselect(spec dse.SelectionSpec) error {
	if err := s.ensure(); err != nil {
		return err
	}
	return s.Result.Reselect(spec)
}

func (s *Study) ensure() error {
	if s.Result == nil {
		return fmt.Errorf("core: call Explore first")
	}
	return nil
}

// SelectedArchitecture returns the figure-9 choice: the minimal
// equal-weight Euclidean-norm member of the 3-D front.
func (s *Study) SelectedArchitecture() *tta.Architecture {
	if s.Result == nil || s.Result.Selected < 0 {
		return nil
	}
	return s.Result.Candidates[s.Result.Selected].Arch
}

// SelectedCandidate returns the full evaluation of the selection.
func (s *Study) SelectedCandidate() *dse.Candidate {
	if s.Result == nil || s.Result.Selected < 0 {
		return nil
	}
	return &s.Result.Candidates[s.Result.Selected]
}

// Figure2Table lists the 2-D (area, execution time) Pareto front.
func (s *Study) Figure2Table() (*report.Table, error) {
	if err := s.ensure(); err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 2: area/execution-time Pareto points (Crypt)",
		"architecture", "area", "cycles/round", "exec time", "spills")
	for _, i := range s.Result.Front2D {
		c := &s.Result.Candidates[i]
		t.AddRow(c.Arch.Name, c.Area, c.Cycles, c.ExecTime, c.Spills)
	}
	return t, nil
}

// Figure8Table lists the 3-D front with the test-cost axis.
func (s *Study) Figure8Table() (*report.Table, error) {
	if err := s.ensure(); err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 8: area/execution-time/test-cost Pareto points",
		"architecture", "area", "exec time", "test cost", "full scan", "selected")
	for _, i := range s.Result.Front3D {
		c := &s.Result.Candidates[i]
		mark := ""
		if i == s.Result.Selected {
			mark = "<== min norm"
		}
		name := c.Arch.Name
		if c.Degraded {
			// The test cost is an analytical upper bound (ATPG budget ran
			// out), not a measured pattern count.
			name += " (degraded)"
		}
		t.AddRow(name, c.Area, c.ExecTime, c.TestCost, c.FullScan, mark)
	}
	return t, nil
}

// Figure2Plot renders the area/time scatter: '.' candidates, '*' front
// members, 'S' the selection.
func (s *Study) Figure2Plot() (string, error) {
	if err := s.ensure(); err != nil {
		return "", err
	}
	sc := report.NewScatter("Figure 2: solution space with Pareto points",
		"circuit area [NAND2 eq]", "execution time [norm.]", 64, 18)
	onFront := map[int]bool{}
	for _, i := range s.Result.Front2D {
		onFront[i] = true
	}
	for _, i := range s.Result.Feasible {
		c := &s.Result.Candidates[i]
		switch {
		case i == s.Result.Selected:
			sc.Add(c.Area, c.ExecTime, 'S')
		case onFront[i]:
			sc.Add(c.Area, c.ExecTime, '*')
		default:
			sc.Add(c.Area, c.ExecTime, '.')
		}
	}
	return sc.String(), nil
}

// Figure8Plot renders the test-cost axis against area for the 3-D front
// (the second projection of the paper's 3-D plot).
func (s *Study) Figure8Plot() (string, error) {
	if err := s.ensure(); err != nil {
		return "", err
	}
	sc := report.NewScatter("Figure 8 (projection): test cost vs area over the 3-D front",
		"circuit area [NAND2 eq]", "test cost [cycles]", 64, 18)
	for _, i := range s.Result.Feasible {
		c := &s.Result.Candidates[i]
		sc.Add(c.Area, float64(c.TestCost), '.')
	}
	for _, i := range s.Result.Front3D {
		c := &s.Result.Candidates[i]
		mark := rune('*')
		if i == s.Result.Selected {
			mark = 'S'
		}
		sc.Add(c.Area, float64(c.TestCost), mark)
	}
	return sc.String(), nil
}

// Table1 renders the paper's Table 1 for the selected architecture: per
// component, the full-scan baseline cycles, the functional-approach
// cycles, scan-chain length, the cost-model terms and fault coverage.
func (s *Study) Table1() (*report.Table, error) {
	if err := s.ensure(); err != nil {
		return nil, err
	}
	return Table1For(s.Config.Annotator, s.SelectedArchitecture())
}

// Table1For renders a Table-1 comparison for any architecture.
func Table1For(ann *testcost.Annotator, arch *tta.Architecture) (*report.Table, error) {
	cost, err := ann.Evaluate(arch)
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		fmt.Sprintf("Table 1: full scan vs our approach (%s)", arch.Name),
		"component", "full scan", "our approach", "nl", "ftfu", "ftrf", "fts", "FC(%)")
	for _, c := range cost.Components {
		our := fmt.Sprintf("%d", c.OurCycles())
		if c.Excluded {
			our = fmt.Sprintf("(%d)", c.FullScanCycles)
		}
		t.AddRow(c.Name, c.FullScanCycles, our, c.NL,
			dash(c.FTfu), dash(c.FTrf), dash(c.FTs),
			fmt.Sprintf("%.2f", 100*c.FaultCoverage))
	}
	t.AddRow("TOTAL", cost.FullScanTotal, cost.Total, "", "", "", "", "")
	return t, nil
}

func dash(v int) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// Summary produces a one-screen digest of the study.
func (s *Study) Summary() (string, error) {
	if err := s.ensure(); err != nil {
		return "", err
	}
	var b strings.Builder
	r := s.Result
	fmt.Fprintf(&b, "candidates: %d (%d feasible)\n", len(r.Candidates), len(r.Feasible))
	nDeg := 0
	for _, i := range r.Feasible {
		if r.Candidates[i].Degraded {
			nDeg++
		}
	}
	if nDeg > 0 {
		fmt.Fprintf(&b, "degraded: %d candidates carry analytical test-cost bounds (ATPG budget exhausted)\n", nDeg)
	}
	fmt.Fprintf(&b, "2-D Pareto front: %d points; 3-D front: %d points\n", len(r.Front2D), len(r.Front3D))
	fmt.Fprintf(&b, "area/time projection preserved: %v\n", r.ProjectionPreserved())
	if lo, hi, ok := r.TestCostSpread(0.01); ok {
		fmt.Fprintf(&b, "test-cost spread among 2-D-close designs: %d .. %d cycles\n", lo, hi)
	}
	sel := s.SelectedCandidate()
	fmt.Fprintf(&b, "selected (equal-weight Euclid norm): %s\n", sel.Arch)
	fmt.Fprintf(&b, "  area %.0f, %d cycles/round (exec %.0f), test %d cycles (full scan %d, %.1fx)\n",
		sel.Area, sel.Cycles, sel.ExecTime, sel.TestCost, sel.FullScan,
		float64(sel.FullScan)/float64(sel.TestCost))
	return b.String(), nil
}
