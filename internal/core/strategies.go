package core

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/bist"
	"repro/internal/ftest"
	"repro/internal/gatelib"
	"repro/internal/report"
	"repro/internal/scan"
	"repro/internal/tta"
)

// StrategyTable compares the three test strategies — full scan (the
// paper's baseline), pseudo-random BIST (its reference [13]) and the
// functional application of structural patterns (the paper's approach) —
// for the function units of an architecture. BIST is given `bistBudget`
// pseudo-random patterns to chase the deterministic coverage.
func StrategyTable(arch *tta.Architecture, seed int64, bistBudget int) (*report.Table, error) {
	lib := gatelib.NewLibrary()
	t := report.NewTable(
		fmt.Sprintf("Test strategy comparison (%s)", arch.Name),
		"component", "scan cycles", "scan +area", "BIST cycles", "BIST +area", "BIST FC(%)",
		"functional cycles", "func +area", "FC(%)")
	seen := map[string]bool{}
	for ci := range arch.Components {
		c := &arch.Components[ci]
		var comp *gatelib.Component
		var err error
		switch c.Kind {
		case tta.ALU:
			comp, err = lib.ALU(gatelib.ALUConfig{Width: arch.Width, Adder: c.Adder})
		case tta.CMP:
			comp, err = lib.CMP(arch.Width)
		default:
			continue // RFs use march tests; singleton units are excluded
		}
		if err != nil {
			return nil, err
		}
		if seen[comp.Name] {
			continue
		}
		seen[comp.Name] = true

		res, err := atpg.RunContext(context.Background(), comp.Seq, atpg.Config{Seed: seed})
		if err != nil {
			return nil, err
		}
		nl := scan.ChainLength(comp.Seq)
		scanCycles := scan.TestCycles(res.NumPatterns(), nl)

		ev, err := bist.Evaluate(comp.Seq, res.Coverage(), bistBudget, uint64(seed)|1)
		if err != nil {
			return nil, err
		}
		bistCycles := "never"
		if ev.PatternsToTarget >= 0 {
			bistCycles = fmt.Sprintf("%d", ev.PatternsToTarget)
		}

		fu := tta.NewFU(c.Kind, c.Name)
		for pi := range fu.Ports {
			fu.Ports[pi].Bus = pi % arch.Buses
		}
		timing, err := ftest.MeasureTransport(&fu, arch.Buses, res.NumPatterns(), ftest.Sequential)
		if err != nil {
			return nil, err
		}

		t.AddRow(c.Name,
			scanCycles, fmt.Sprintf("%.0f", scan.AreaOverhead(comp.Seq)),
			bistCycles, fmt.Sprintf("%.0f", ev.AreaOverhead), fmt.Sprintf("%.1f", 100*ev.FinalCoverage),
			timing.Cycles, "0", fmt.Sprintf("%.2f", 100*res.Coverage()))
	}
	return t, nil
}
