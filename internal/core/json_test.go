package core

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/dse"
	"repro/internal/jobspec"
)

func smallStudy(t *testing.T) *Study {
	t.Helper()
	cfg, _, err := dse.FromSpec(jobspec.Spec{Buses: []int{1, 2}, ALUs: []int{1}, CMPs: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStudyWithConfig(cfg)
	if err := s.ExploreContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestJSONResultShapeAndDeterminism(t *testing.T) {
	s := smallStudy(t)
	res, err := s.JSONResult(dse.SelectionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != len(s.Result.Candidates) {
		t.Fatalf("candidates %d, want %d", len(res.Candidates), len(s.Result.Candidates))
	}
	if res.Partial || res.Missing != 0 {
		t.Errorf("complete run marked partial (missing %d)", res.Missing)
	}
	if res.Selection == nil || res.Selection.Index != s.Result.Selected {
		t.Fatalf("selection %+v, want index %d", res.Selection, s.Result.Selected)
	}
	if res.Selection.Arch == "" {
		t.Error("selection arch name empty")
	}
	for i, c := range res.Candidates {
		if c.Index != i {
			t.Fatalf("candidate %d carries index %d", i, c.Index)
		}
		if c.Arch == "" {
			t.Errorf("candidate %d has no arch name", i)
		}
	}

	// Two encodes of independent runs over the same space must be
	// byte-identical — the service's drain/resume contract.
	b1, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := smallStudy(t).JSONResult(dse.SelectionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := res2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same-space runs encoded differently")
	}
}

func TestJSONResultRequiresExploration(t *testing.T) {
	s, err := NewStudy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.JSONResult(dse.SelectionSpec{}); err == nil {
		t.Fatal("JSONResult before Explore must fail")
	}
}
