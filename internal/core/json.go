package core

import (
	"repro/internal/dse"
	"repro/internal/report"
)

// JSONResult flattens the study's exploration into the machine-readable
// report shape. spec is the selection spec the run (or the last
// Reselect) used; pass the zero value for the default equal-weight
// Euclid norm. The output is deterministic — candidates in enumeration
// order, no timestamps or run identity — so byte-comparing two encodes
// is a valid equality check between runs (the service's drain/resume
// test relies on this).
//
// A partial result (the exploration was cancelled or deadlined) is
// reported with Partial set and Missing counting the never-evaluated
// slots; their candidates appear as infeasible placeholders with an
// empty architecture name.
func (s *Study) JSONResult(spec dse.SelectionSpec) (*report.JSONResult, error) {
	if err := s.ensure(); err != nil {
		return nil, err
	}
	r := s.Result
	out := &report.JSONResult{
		Width:      s.Config.Width,
		Seed:       s.Config.Seed,
		Candidates: make([]report.JSONCandidate, len(r.Candidates)),
		Feasible:   append([]int{}, r.Feasible...),
		Front2D:    append([]int{}, r.Front2D...),
		Front3D:    append([]int{}, r.Front3D...),
		Selected:   r.Selected,
		Verified:   r.Verified,
	}
	if s.Config.Workload != nil {
		out.Workload = s.Config.Workload.Name
	}
	if out.Width == 0 {
		out.Width = 16
	}
	for i := range r.Candidates {
		c := &r.Candidates[i]
		jc := report.JSONCandidate{
			Index:    i,
			Feasible: c.Feasible,
			Reason:   c.Reason,
			Area:     c.Area,
			Cycles:   c.Cycles,
			Clock:    c.Clock,
			ExecTime: c.ExecTime,
			TestCost: c.TestCost,
			FullScan: c.FullScan,
			Spills:   c.Spills,
			Energy:   c.Energy,
			Degraded: c.Degraded,
		}
		if c.Arch != nil {
			jc.Arch = c.Arch.Name
		} else {
			out.Missing++
		}
		out.Candidates[i] = jc
	}
	out.Partial = out.Missing > 0
	if r.Selected >= 0 && r.Selected < len(r.Candidates) {
		sel := &report.JSONSelection{
			Index:           r.Selected,
			Norm:            spec.Norm,
			WA:              spec.WA,
			WT:              spec.WT,
			WC:              spec.WC,
			DegradedPolicy:  spec.DegradedPolicy,
			DegradedPenalty: spec.DegradedPenalty,
		}
		if a := r.Candidates[r.Selected].Arch; a != nil {
			sel.Arch = a.Name
		}
		out.Selection = sel
	}
	return out, nil
}
