package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// goldenSnapshot builds a fixed snapshot so sink output is deterministic.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		UptimeSeconds: 1.5,
		Counters: map[string]int64{
			"dse.candidates.total": 144,
			"sched.spills":         3,
		},
		Gauges: map[string]float64{
			"testcost.cache.hit_rate": 0.9375,
		},
		Timers: map[string]TimerStats{
			"eval": {Count: 2, TotalSeconds: 0.5, MinSeconds: 0.2, MaxSeconds: 0.3, MeanSeconds: 0.25},
		},
		Spans: []SpanStats{
			{
				Name: "dse", Count: 1, TotalSeconds: 1.25, MinSeconds: 1.25, MaxSeconds: 1.25,
				Children: []SpanStats{
					{Name: "evaluate", Count: 144, TotalSeconds: 1.0, MinSeconds: 0.001, MaxSeconds: 0.1},
				},
			},
		},
	}
}

func TestJSONSinkGolden(t *testing.T) {
	var b strings.Builder
	if err := (JSONSink{W: &b}).Emit(goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `{
  "uptime_seconds": 1.5,
  "counters": {
    "dse.candidates.total": 144,
    "sched.spills": 3
  },
  "gauges": {
    "testcost.cache.hit_rate": 0.9375
  },
  "timers": {
    "eval": {
      "count": 2,
      "total_seconds": 0.5,
      "min_seconds": 0.2,
      "max_seconds": 0.3,
      "mean_seconds": 0.25
    }
  },
  "spans": [
    {
      "name": "dse",
      "count": 1,
      "total_seconds": 1.25,
      "min_seconds": 1.25,
      "max_seconds": 1.25,
      "children": [
        {
          "name": "evaluate",
          "count": 144,
          "total_seconds": 1,
          "min_seconds": 0.001,
          "max_seconds": 0.1
        }
      ]
    }
  ]
}
`
	if got != want {
		t.Fatalf("JSON sink output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// And it must round-trip.
	var back Snapshot
	if err := json.Unmarshal([]byte(got), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if back.Counters["dse.candidates.total"] != 144 {
		t.Fatalf("round-trip lost counters: %+v", back.Counters)
	}
}

func TestTextSinkGolden(t *testing.T) {
	var b strings.Builder
	if err := (TextSink{W: &b}).Emit(goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"uptime: 1.500s",
		"dse.candidates.total",
		"sched.spills",
		"testcost.cache.hit_rate",
		"eval",
		"dse",
		"evaluate",
		"n=144",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("text sink output missing %q:\n%s", want, got)
		}
	}
	// Counters must appear in lexical order.
	if strings.Index(got, "dse.candidates.total") > strings.Index(got, "sched.spills") {
		t.Fatalf("counters not in lexical order:\n%s", got)
	}
	// Child span is indented deeper than its parent.
	lines := strings.Split(got, "\n")
	var dseIndent, evalIndent int
	for _, l := range lines {
		trimmed := strings.TrimLeft(l, " ")
		if strings.HasPrefix(trimmed, "dse ") {
			dseIndent = len(l) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "evaluate ") {
			evalIndent = len(l) - len(trimmed)
		}
	}
	if evalIndent <= dseIndent {
		t.Fatalf("span tree not indented (dse=%d evaluate=%d):\n%s", dseIndent, evalIndent, got)
	}
}
