package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Sink consumes metric snapshots. Emitters must not retain the snapshot.
type Sink interface {
	Emit(*Snapshot) error
}

// JSONSink writes snapshots as indented JSON, one document per Emit.
type JSONSink struct{ W io.Writer }

// Emit implements Sink.
func (s JSONSink) Emit(snap *Snapshot) error {
	enc := json.NewEncoder(s.W)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// TextSink writes snapshots as a compact human-readable report: counters
// and gauges in lexical order, timers with count/total/mean, and the span
// tree indented by depth.
type TextSink struct{ W io.Writer }

// Emit implements Sink.
func (s TextSink) Emit(snap *Snapshot) error {
	var b strings.Builder
	fmt.Fprintf(&b, "uptime: %.3fs\n", snap.UptimeSeconds)
	if len(snap.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, k := range sortedKeys(snap.Counters) {
			fmt.Fprintf(&b, "  %-40s %d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(&b, "  %-40s %.4f\n", k, snap.Gauges[k])
		}
	}
	if len(snap.Timers) > 0 {
		b.WriteString("timers:\n")
		for _, k := range sortedKeys(snap.Timers) {
			t := snap.Timers[k]
			fmt.Fprintf(&b, "  %-40s n=%d total=%.4fs mean=%.6fs\n",
				k, t.Count, t.TotalSeconds, t.MeanSeconds)
		}
	}
	if len(snap.Spans) > 0 {
		b.WriteString("spans:\n")
		writeSpanTree(&b, snap.Spans, 1)
	}
	_, err := io.WriteString(s.W, b.String())
	return err
}

func writeSpanTree(b *strings.Builder, spans []SpanStats, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, sp := range spans {
		fmt.Fprintf(b, "%s%-*s n=%d total=%.4fs\n",
			indent, 42-2*depth, sp.Name, sp.Count, sp.TotalSeconds)
		writeSpanTree(b, sp.Children, depth+1)
	}
}
