// Package obs is the engine's lightweight, dependency-free observability
// layer: atomic counters, float gauges, duration timers, hierarchical
// wall-clock spans and a progress-event stream, all collected in a
// Registry and exported through Snapshot/Sink (JSON or human-readable
// text).
//
// Design rules:
//
//   - No global state. Instrumented packages receive a *Registry through
//     their existing config/option structs; callers that do not care pass
//     nothing.
//   - A nil *Registry (and every handle obtained from one) is a valid
//     no-op, so hot paths instrument unconditionally without nil checks
//     or branching at call sites.
//   - All operations are safe for concurrent use; counters and gauges are
//     single atomic words, timers and span nodes take a short mutex only
//     when recording.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 (utilizations, rates, last-seen
// values).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// SetRatio stores num/den, or 0 when den is zero. No-op on a nil gauge.
func (g *Gauge) SetRatio(num, den int64) {
	if g == nil {
		return
	}
	if den == 0 {
		g.Set(0)
		return
	}
	g.Set(float64(num) / float64(den))
}

// Value returns the stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Timer accumulates observed durations: count, sum, min and max.
type Timer struct {
	mu    sync.Mutex
	count int64
	sum   time.Duration
	min   time.Duration
	max   time.Duration
}

// Observe records one duration. No-op on a nil timer.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.count == 0 || d < t.min {
		t.min = d
	}
	if d > t.max {
		t.max = d
	}
	t.count++
	t.sum += d
	t.mu.Unlock()
}

// Start begins a measurement; calling the returned func records the
// elapsed time (use with defer). Safe on a nil timer.
func (t *Timer) Start() func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Stats returns the timer's aggregate view.
func (t *Timer) Stats() TimerStats {
	if t == nil {
		return TimerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TimerStats{
		Count:        t.count,
		TotalSeconds: t.sum.Seconds(),
		MinSeconds:   t.min.Seconds(),
		MaxSeconds:   t.max.Seconds(),
	}
	if t.count > 0 {
		s.MeanSeconds = s.TotalSeconds / float64(t.count)
	}
	return s
}

// Event is one progress notification (e.g. a candidate evaluation
// completing inside a long exploration).
type Event struct {
	// Kind groups events ("candidate", "phase", ...).
	Kind string
	// Msg is a short human-readable description.
	Msg string
	// N/Total express progress when known (0 Total = unknown).
	N, Total int
}

// Registry collects all metrics of one run. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is a valid no-op sink for
// every method.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	subs     []*subscriber

	root *spanNode
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		timers:   make(map[string]*Timer),
		root:     newSpanNode(""),
	}
}

// Counter returns (creating on first use) the named counter. Returns nil
// on a nil registry; the nil counter is a no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns (creating on first use) the named timer.
func (r *Registry) Timer(name string) *Timer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// subscriber is one registered event consumer; a cancelled subscriber
// stays in the slice (preserving delivery order for the others) but is
// skipped by Emit.
type subscriber struct {
	fn        func(Event)
	cancelled bool
}

// Subscribe registers fn to receive every subsequent Emit. Subscribers
// are invoked synchronously from the emitting goroutine and must be fast
// and concurrency-safe.
func (r *Registry) Subscribe(fn func(Event)) {
	r.SubscribeCancel(fn)
}

// SubscribeCancel registers fn like Subscribe and returns a cancel
// function that stops further deliveries. Scoped consumers (one
// exploration run bridging a shared registry, a streaming HTTP client
// that disconnects) must cancel, or the registry keeps calling them for
// its whole lifetime. Safe on a nil registry (the cancel is a no-op).
func (r *Registry) SubscribeCancel(fn func(Event)) (cancel func()) {
	if r == nil || fn == nil {
		return func() {}
	}
	s := &subscriber{fn: fn}
	r.mu.Lock()
	r.subs = append(r.subs, s)
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		s.cancelled = true
		r.mu.Unlock()
	}
}

// Emit delivers ev to all live subscribers, in subscription order.
// No-op on a nil registry.
func (r *Registry) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fns := make([]func(Event), 0, len(r.subs))
	for _, s := range r.subs {
		if !s.cancelled {
			fns = append(fns, s.fn)
		}
	}
	r.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// Snapshot captures a consistent point-in-time view of every metric.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	s := &Snapshot{
		UptimeSeconds: time.Since(r.start).Seconds(),
		Counters:      map[string]int64{},
		Gauges:        map[string]float64{},
		Timers:        map[string]TimerStats{},
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	timers := make(map[string]*Timer, len(r.timers))
	for k, v := range r.timers {
		timers[k] = v
	}
	r.mu.Unlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range timers {
		s.Timers[k] = v.Stats()
	}
	s.Spans = r.root.childStats()
	return s
}

// TimerStats is the exported aggregate of one Timer.
type TimerStats struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
	MinSeconds   float64 `json:"min_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
}

// SpanStats is the exported aggregate of one span-tree node: all
// same-named spans started under the same parent fold into one node.
type SpanStats struct {
	Name         string      `json:"name"`
	Count        int64       `json:"count"`
	TotalSeconds float64     `json:"total_seconds"`
	MinSeconds   float64     `json:"min_seconds"`
	MaxSeconds   float64     `json:"max_seconds"`
	Children     []SpanStats `json:"children,omitempty"`
}

// Snapshot is a point-in-time export of a registry, the unit Sinks emit.
type Snapshot struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Counters      map[string]int64      `json:"counters"`
	Gauges        map[string]float64    `json:"gauges"`
	Timers        map[string]TimerStats `json:"timers"`
	Spans         []SpanStats           `json:"spans"`
}

// sortedKeys returns map keys in lexical order (deterministic emission).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
