package obs

import (
	"sort"
	"sync"
	"time"
)

// spanNode aggregates every span started with the same name under the
// same parent: hundreds of per-candidate "evaluate" spans collapse into
// one node with count/total/min/max, keeping snapshots small no matter
// how long an exploration runs.
type spanNode struct {
	name string

	mu       sync.Mutex
	count    int64
	total    time.Duration
	min      time.Duration
	max      time.Duration
	children map[string]*spanNode
}

func newSpanNode(name string) *spanNode {
	return &spanNode{name: name, children: make(map[string]*spanNode)}
}

func (n *spanNode) child(name string) *spanNode {
	n.mu.Lock()
	defer n.mu.Unlock()
	c, ok := n.children[name]
	if !ok {
		c = newSpanNode(name)
		n.children[name] = c
	}
	return c
}

func (n *spanNode) record(d time.Duration) {
	n.mu.Lock()
	if n.count == 0 || d < n.min {
		n.min = d
	}
	if d > n.max {
		n.max = d
	}
	n.count++
	n.total += d
	n.mu.Unlock()
}

// childStats exports the node's children as a name-sorted stats forest.
func (n *spanNode) childStats() []SpanStats {
	n.mu.Lock()
	kids := make([]*spanNode, 0, len(n.children))
	for _, c := range n.children {
		kids = append(kids, c)
	}
	n.mu.Unlock()
	sort.Slice(kids, func(a, b int) bool { return kids[a].name < kids[b].name })
	out := make([]SpanStats, 0, len(kids))
	for _, c := range kids {
		c.mu.Lock()
		s := SpanStats{
			Name:         c.name,
			Count:        c.count,
			TotalSeconds: c.total.Seconds(),
			MinSeconds:   c.min.Seconds(),
			MaxSeconds:   c.max.Seconds(),
		}
		c.mu.Unlock()
		s.Children = c.childStats()
		out = append(out, s)
	}
	return out
}

// Span is one live timed region. Spans form a hierarchy via Child; ending
// a span records its wall-clock duration into the aggregated tree. A nil
// *Span is a valid no-op (Child returns nil, End does nothing), so
// instrumented code never branches on whether observability is enabled.
type Span struct {
	node  *spanNode
	start time.Time
	done  bool
	mu    sync.Mutex
}

// StartSpan begins a top-level span. Returns nil on a nil registry.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{node: r.root.child(name), start: time.Now()}
}

// Child begins a nested span. Same-named children of the same parent
// aggregate into one stats node. Returns nil on a nil span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{node: s.node.child(name), start: time.Now()}
}

// End records the span's duration. Safe to call multiple times (only the
// first records) and on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	d := time.Since(s.start)
	s.mu.Unlock()
	s.node.record(d)
}
