package obs

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter and one per-goroutine
// counter from many goroutines; run under -race this doubles as the
// data-race check for the registry fast paths.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Counter("shared").Add(2)
				r.Gauge("gauge").Set(float64(w))
				r.Timer("timer").Observe(time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker*3 {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker*3)
	}
	ts := r.Timer("timer").Stats()
	if ts.Count != workers*perWorker {
		t.Fatalf("timer count = %d, want %d", ts.Count, workers*perWorker)
	}
	if ts.MinSeconds <= 0 || ts.MaxSeconds < ts.MinSeconds {
		t.Fatalf("timer min/max inconsistent: %+v", ts)
	}
	g := r.Gauge("gauge").Value()
	if g < 0 || g >= workers {
		t.Fatalf("gauge value %v out of range", g)
	}
}

// TestConcurrentSpans starts same-named spans from many goroutines and
// checks they aggregate into a single node with the right count.
func TestConcurrentSpans(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("dse")
	const workers = 8
	const per = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := root.Child("evaluate")
				inner := sp.Child("sched")
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "dse" {
		t.Fatalf("want single root span dse, got %+v", snap.Spans)
	}
	dse := snap.Spans[0]
	if dse.Count != 1 {
		t.Fatalf("dse span count = %d, want 1", dse.Count)
	}
	if len(dse.Children) != 1 || dse.Children[0].Name != "evaluate" {
		t.Fatalf("want one evaluate child, got %+v", dse.Children)
	}
	ev := dse.Children[0]
	if ev.Count != workers*per {
		t.Fatalf("evaluate span count = %d, want %d", ev.Count, workers*per)
	}
	if len(ev.Children) != 1 || ev.Children[0].Count != workers*per {
		t.Fatalf("sched child aggregation wrong: %+v", ev.Children)
	}
}

// TestSpanEndIdempotent checks double-End records exactly once.
func TestSpanEndIdempotent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("x")
	sp.End()
	sp.End()
	snap := r.Snapshot()
	if snap.Spans[0].Count != 1 {
		t.Fatalf("span recorded %d times, want 1", snap.Spans[0].Count)
	}
}

// TestNilRegistrySafety exercises every handle type on a nil registry.
func TestNilRegistrySafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	if v := r.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value %d", v)
	}
	r.Gauge("g").Set(3)
	if v := r.Gauge("g").Value(); v != 0 {
		t.Fatalf("nil gauge value %v", v)
	}
	r.Timer("t").Observe(time.Second)
	r.Timer("t").Start()()
	if s := r.Timer("t").Stats(); s.Count != 0 {
		t.Fatalf("nil timer stats %+v", s)
	}
	sp := r.StartSpan("root")
	child := sp.Child("child")
	child.End()
	sp.End()
	r.Subscribe(func(Event) {})
	r.Emit(Event{Kind: "x"})
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestEvents checks subscribers receive emitted events in order.
func TestEvents(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var got []Event
	r.Subscribe(func(ev Event) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	})
	for i := 1; i <= 3; i++ {
		r.Emit(Event{Kind: "candidate", N: i, Total: 3})
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 || got[2].N != 3 || got[0].Total != 3 {
		t.Fatalf("events = %+v", got)
	}
}

// TestTimerStart measures a real (short) interval.
func TestTimerStart(t *testing.T) {
	r := NewRegistry()
	stop := r.Timer("t").Start()
	time.Sleep(time.Millisecond)
	stop()
	s := r.Timer("t").Stats()
	if s.Count != 1 || s.TotalSeconds <= 0 {
		t.Fatalf("timer stats %+v", s)
	}
}
