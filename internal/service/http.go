package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/dse"
	"repro/internal/jobspec"
)

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(s.handleStatus))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.withJob(s.handleCancel))
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.withJob(s.handleEvents))
	s.mux.HandleFunc("GET /v1/jobs/{id}/front", s.withJob(s.handleFront))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.withJob(s.handleResult))
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// withJob resolves the {id} path value; unknown ids are 404.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
			return
		}
		h(w, r, job)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobspec.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrBusy):
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		w.Header().Set("Location", "/v1/jobs/"+job.ID)
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, job *Job) {
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, job *Job) {
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleFront(w http.ResponseWriter, r *http.Request, job *Job) {
	writeJSON(w, http.StatusOK, job.Front())
}

// handleResult serves the final report bytes verbatim (they are the
// deterministic report encoding — byte-identical across a drain/resume
// cycle). While the job is queued or running it answers 202 with the
// job status; a terminal job without any report answers 409.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request, job *Job) {
	switch st := job.State(); st {
	case StateQueued, StateRunning:
		writeJSON(w, http.StatusAccepted, job.Status())
		return
	}
	report := job.Report()
	if report == nil {
		writeJSON(w, http.StatusConflict, job.Status())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(report)
}

// handleEvents streams the job's typed events: history first, then live
// until the job finishes or the client goes away. NDJSON by default;
// Accept: text/event-stream switches to SSE ("event: <kind>" +
// "data: <json>").
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, job *Job) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	writeEv := func(ev dse.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Kind, data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	replay, live, cancel := job.hub.subscribe()
	defer cancel()
	for _, ev := range replay {
		if !writeEv(ev) {
			return
		}
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !writeEv(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// healthBody is the GET /v1/healthz response.
type healthBody struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Jobs     int    `json:"jobs"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := healthBody{Status: "ok", Draining: s.draining, Jobs: len(s.jobs)}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

// handleMetrics serves the server registry's snapshot with the per-job
// exploration metrics folded in: the streaming-front counters
// (pareto.stream.*) and the shard fan-out counters (dse.shard.*) live
// on each job's own registry, so the server-wide view sums them across
// jobs (counters and gauges alike — the workers gauge then reads as
// "live shard workers, all jobs").
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.reg.Snapshot()
	for _, job := range s.Jobs() {
		js := job.reg.Snapshot()
		for name, v := range js.Counters {
			if aggregatedMetric(name) {
				snap.Counters[name] += v
			}
		}
		for name, v := range js.Gauges {
			if aggregatedMetric(name) {
				snap.Gauges[name] += v
			}
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

func aggregatedMetric(name string) bool {
	return strings.HasPrefix(name, "pareto.stream.") || strings.HasPrefix(name, "dse.shard.") ||
		strings.HasPrefix(name, "durability.")
}
