package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/faultinject"
	"repro/internal/jobspec"
	"repro/internal/obs"
)

// smallSpec explores 1 bus x 1 ALU x 1 CMP x 6 RF sets x 2 assigns = 12
// candidates — enough structure for fronts, fast enough for tests.
func smallSpec() jobspec.Spec {
	return jobspec.Spec{Buses: []int{1}, ALUs: []int{1}, CMPs: []int{1}}
}

func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s did not finish (state %s)", j.ID, j.State())
	}
	return j.State()
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Bad submissions are rejected up front.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"doom"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad workload: status %d, want 400", resp.StatusCode)
	}

	body, _ := json.Marshal(smallSpec())
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" || st.State == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location %q", loc)
	}

	// The event stream replays history and follows the run to "done".
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content-type %q", ct)
	}
	var events []dse.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev dse.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	resp.Body.Close()
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	last := events[len(events)-1]
	if last.Kind != dse.EventDone {
		t.Fatalf("final event %q, want done", last.Kind)
	}
	nCand := 0
	for _, ev := range events {
		if ev.Kind == dse.EventCandidate {
			nCand++
		}
	}
	if nCand != 12 {
		t.Fatalf("streamed %d candidate events, want 12", nCand)
	}

	// Fronts are live (and final here, the stream just ended).
	var front dse.FrontSnapshot
	getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/front", http.StatusOK, &front)
	if front.Evaluated != 12 || len(front.Front2D) == 0 || len(front.Front3D) == 0 {
		t.Fatalf("front %+v", front)
	}

	// The result endpoint serves the deterministic report.
	job, _ := srv.Job(st.ID)
	if got := waitTerminal(t, job); got != StateDone {
		t.Fatalf("state %s, want done", got)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", resp.StatusCode)
	}
	if !bytes.Equal(rep, job.Report()) {
		t.Fatal("result endpoint bytes differ from the job's report")
	}
	var jr struct {
		Candidates []json.RawMessage `json:"candidates"`
		Selected   int               `json:"selected"`
	}
	if err := json.Unmarshal(rep, &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Candidates) != 12 || jr.Selected < 0 {
		t.Fatalf("report: %d candidates, selected %d", len(jr.Candidates), jr.Selected)
	}

	// Listing, status, health, metrics, 404.
	var list []JobStatus
	getJSON(t, ts.URL+"/v1/jobs", http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != st.ID || list[0].State != StateDone {
		t.Fatalf("list %+v", list)
	}
	var h healthBody
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, &h)
	if h.Status != "ok" || h.Draining || h.Jobs != 1 {
		t.Fatalf("health %+v", h)
	}
	var snap obs.Snapshot
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &snap)
	resp, err = http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var b bytes.Buffer
	_, err := b.ReadFrom(resp.Body)
	return b.Bytes(), err
}

func TestEventStreamSSE(t *testing.T) {
	srv := NewServer(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	job, err := srv.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, job)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+job.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content-type %q", ct)
	}
	if !strings.Contains(string(body), "event: candidate\ndata: {") ||
		!strings.Contains(string(body), "event: done\n") {
		t.Fatalf("not SSE-framed:\n%.300s", body)
	}
}

// TestConcurrentJobsShareWarmAnnotations is the shared-annotator race
// test: two explorations over the same space run concurrently against
// one process-wide annotator, and the second wave is served entirely
// from the first wave's annotations (hit counters rise, miss counter
// stays put). Run under -race this also proves the sharing is sound.
// TestSearchJobThroughDaemon: a guided-search spec submitted to the
// daemon runs the GA screen, evaluates only the survivors, and serves
// consistent progress and front snapshots for them.
func TestSearchJobThroughDaemon(t *testing.T) {
	srv := NewServer(Options{})
	spec := jobspec.Spec{
		Parallelism: 2,
		Search:      &jobspec.SearchSpec{Population: 8, Generations: 2, Eta: 4, Seed: 5},
	}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateDone {
		t.Fatalf("search job ended %s: %s", st, job.Status().Error)
	}
	st := job.Status()
	if st.Total == 0 || st.Total > 8*2 {
		t.Fatalf("total %d, want survivors in (0, %d]", st.Total, 8*2)
	}
	if st.Evaluated != st.Total {
		t.Fatalf("evaluated %d != total %d on a done job", st.Evaluated, st.Total)
	}
	snap := job.Front()
	if snap.Evaluated != st.Evaluated || len(snap.Front3D) == 0 {
		t.Fatalf("front snapshot %d evaluated / %d members", snap.Evaluated, len(snap.Front3D))
	}
	if job.Report() == nil {
		t.Fatal("search job produced no report")
	}
}

func TestConcurrentJobsShareWarmAnnotations(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewServer(Options{MaxConcurrent: 2, Obs: reg})

	warm, err := srv.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, warm); st != StateDone {
		t.Fatalf("warm-up job ended %s", st)
	}
	misses0 := reg.Counter("testcost.cache.miss").Value()
	hits0 := reg.Counter("testcost.cache.hit").Value()
	if misses0 == 0 {
		t.Fatal("warm-up job annotated nothing")
	}

	a, err := srv.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sa, sb := waitTerminal(t, a), waitTerminal(t, b); sa != StateDone || sb != StateDone {
		t.Fatalf("concurrent jobs ended %s/%s", sa, sb)
	}
	if got, want := a.Report(), warm.Report(); !bytes.Equal(got, want) {
		t.Fatal("concurrent job's report differs from the warm-up run")
	}
	if hits := reg.Counter("testcost.cache.hit").Value(); hits <= hits0 {
		t.Fatalf("cache hits did not rise: %d -> %d", hits0, hits)
	}
	if misses := reg.Counter("testcost.cache.miss").Value(); misses != misses0 {
		t.Fatalf("concurrent jobs re-annotated: misses %d -> %d", misses0, misses)
	}
	if n := len(srv.anns); n != 1 {
		t.Fatalf("%d annotators in the pool, want 1 shared", n)
	}
}

func TestAdmissionQueueAndOverflow(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: 20 * time.Millisecond})
	srv := NewServer(Options{MaxConcurrent: 1, QueueDepth: 1, Inject: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := smallSpec()
	spec.Parallelism = 1
	running, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}

	// Cancelling the queued job frees its slot without running it.
	queued.Cancel()
	if st := waitTerminal(t, queued); st != StateCancelled {
		t.Fatalf("queued job ended %s, want cancelled", st)
	}
	if st := waitTerminal(t, running); st != StateDone {
		t.Fatalf("running job ended %s", st)
	}

	// A result poll mid-run answers 202; after completion 200 (checked
	// in the lifecycle test). And 409 for a cancelled job with no report.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancelled job result: status %d, want 409", resp.StatusCode)
	}
}
