package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dse"
	"repro/internal/faultinject"
	"repro/internal/jobspec"
)

// TestDrainCheckpointsAndResumesByteIdentically is the graceful-drain
// contract: a SIGTERM-style Drain interrupts a running job, its
// checkpoint keeps the finished prefix and the warm annotation cache is
// flushed; a fresh daemon over the same state resumes the resubmitted
// spec — restoring instead of recomputing — and its final report is
// byte-identical to an uninterrupted run's.
func TestDrainCheckpointsAndResumesByteIdentically(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "anno.cache")
	spec := jobspec.Spec{Buses: []int{1, 2}, ALUs: []int{1}, CMPs: []int{1}, Parallelism: 1}

	// The reference: one uninterrupted run, no shared state.
	ref := NewServer(Options{})
	refJob, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, refJob); st != StateDone {
		t.Fatalf("reference job ended %s", st)
	}
	want := refJob.Report()
	if want == nil {
		t.Fatal("reference job has no report")
	}

	// Daemon #1: evaluations slowed so the drain reliably lands mid-run.
	inj := faultinject.New(1)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: 40 * time.Millisecond})
	srv1 := NewServer(Options{CheckpointDir: dir, CachePath: cache, Inject: inj})
	job, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let a few evaluations land (but nowhere near all 24).
	deadline := time.Now().Add(time.Minute)
	for {
		if st := job.Status(); st.Evaluated >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress: %+v", job.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if st := job.State(); st != StateInterrupted {
		t.Fatalf("drained job state %s, want interrupted", st)
	}
	interrupted := job.Status()
	if interrupted.Evaluated >= 24 {
		t.Skipf("job finished before the drain landed (%d/24); nothing to resume", interrupted.Evaluated)
	}

	// Drain left durable state behind.
	ckpt := filepath.Join(dir, "job-"+spec.Hash()+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after drain: %v", err)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("no warm cache after drain: %v", err)
	}

	// Intake is closed while draining.
	if _, err := srv1.Submit(spec); err != ErrDraining {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}

	// Daemon #2 over the same durable state (no injection): the same
	// spec resumes from the checkpoint and completes.
	srv2 := NewServer(Options{CheckpointDir: dir, CachePath: cache})
	resumed, err := srv2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, resumed); st != StateDone {
		t.Fatalf("resumed job ended %s", st)
	}

	// It actually restored the interrupted run's finished prefix.
	replay, _, _ := resumed.hub.subscribe()
	restored := 0
	for _, ev := range replay {
		if ev.Kind == dse.EventRestored {
			restored++
		}
	}
	if restored == 0 {
		t.Fatal("resumed job restored nothing from the checkpoint")
	}

	// The headline contract: byte-identical final report.
	if got := resumed.Report(); !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from the uninterrupted run:\n got: %.200s\nwant: %.200s", got, want)
	}
}

// TestResumeThenPollProgressAccounting is the accounting regression
// test: a resumed job re-announces its checkpoint prefix as "restored"
// events before evaluating the rest live. The status endpoint must count
// every candidate index exactly once — at every poll during the resumed
// run evaluated <= total, and at completion evaluated == total.
// (Previously the job counted raw candidate+restored event deliveries,
// so any index announced more than once pushed evaluated past total.)
func TestResumeThenPollProgressAccounting(t *testing.T) {
	dir := t.TempDir()
	spec := jobspec.Spec{Buses: []int{1, 2}, ALUs: []int{1}, CMPs: []int{1}, Parallelism: 1}
	const space = 24 // 2 buses x 6 RF sets x 2 assignment strategies

	// Daemon #1: slow evaluations, drained mid-run to seed the checkpoint.
	inj := faultinject.New(1)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: 40 * time.Millisecond})
	srv1 := NewServer(Options{CheckpointDir: dir, Inject: inj})
	job, err := srv1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for job.Status().Evaluated < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no progress: %+v", job.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if job.Status().Evaluated >= space {
		t.Skipf("job finished before the drain landed; nothing to resume")
	}

	// Daemon #2: resume, and poll the status continuously while the
	// restored prefix and the live remainder stream in.
	inj2 := faultinject.New(1)
	inj2.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: 10 * time.Millisecond})
	srv2 := NewServer(Options{CheckpointDir: dir, Inject: inj2})
	resumed, err := srv2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	polls := 0
	for done := false; !done; {
		select {
		case <-resumed.Done():
			done = true
		case <-time.After(2 * time.Millisecond):
		}
		st := resumed.Status()
		polls++
		if st.Total != 0 && st.Total != space {
			t.Fatalf("poll %d: total %d, want %d", polls, st.Total, space)
		}
		if st.Total != 0 && st.Evaluated > st.Total {
			t.Fatalf("poll %d: evaluated %d > total %d", polls, st.Evaluated, st.Total)
		}
	}
	if st := resumed.State(); st != StateDone {
		t.Fatalf("resumed job ended %s", st)
	}
	final := resumed.Status()
	if final.Evaluated != space || final.Total != space {
		t.Fatalf("final progress %d/%d, want %d/%d", final.Evaluated, final.Total, space, space)
	}
	// The run really was a resume: restored events are in the history.
	replay, _, _ := resumed.hub.subscribe()
	restored := 0
	for _, ev := range replay {
		if ev.Kind == dse.EventRestored {
			restored++
		}
	}
	if restored == 0 {
		t.Fatal("resumed job restored nothing; the poll loop exercised a cold run")
	}
}

// TestJobTimeoutFails pins the per-job deadline path: a spec whose
// Timeout cannot cover the space ends "failed" with a partial report.
func TestJobTimeoutFails(t *testing.T) {
	inj := faultinject.New(1)
	inj.Arm(faultinject.DSEEval, faultinject.Plan{Mode: faultinject.ModeSleep, Delay: 30 * time.Millisecond})
	srv := NewServer(Options{Inject: inj})
	spec := smallSpec()
	spec.Parallelism = 1
	spec.Timeout = jobspec.Duration(120 * time.Millisecond)
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateFailed {
		t.Fatalf("timed-out job ended %s, want failed", st)
	}
	st := job.Status()
	if st.Error == "" {
		t.Fatal("timed-out job carries no error")
	}
}
