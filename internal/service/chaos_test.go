package service

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobspec"
)

// chaosShardSpec is the supervision topology of the chaos drills: a
// stall timeout short enough to detect the deliberately hung worker in
// seconds but wide enough that healthy workers starved by an
// oversubscribed test machine (8 processes under -race) are never
// mistaken for stalls, and near-zero backoff so restarts do not
// dominate the test's wall clock.
func chaosShardSpec(shards int) *jobspec.ShardSpec {
	return &jobspec.ShardSpec{
		Shards:            shards,
		MaxRestarts:       2,
		StallTimeout:      jobspec.Duration(10 * time.Second),
		HeartbeatInterval: jobspec.Duration(250 * time.Millisecond),
		BackoffBase:       jobspec.Duration(10 * time.Millisecond),
		BackoffMax:        jobspec.Duration(50 * time.Millisecond),
	}
}

// TestShardedJobChaosTornAndStall is the acceptance drill for the
// durability + supervision layer: an 8-shard fan-out in which one
// worker's checkpoint writes are torn mid-record (every flush, until it
// dies and its restart runs clean against the damaged file) and a
// different worker hangs silently at birth (until the stall watchdog
// kills it). The job must converge to a report byte-identical to the
// undisturbed unsharded run, with both failure paths visible in the
// split restart counters and the durability incidents relayed from the
// worker processes into the job registry.
func TestShardedJobChaosTornAndStall(t *testing.T) {
	dir := t.TempDir()
	srv := shardServer(t,
		faultInjectOnceEnv+"_TORN="+filepath.Join(dir, "torn")+"|dse.checkpoint.write=torn:frac=0.9",
		faultInjectOnceEnv+"_STALL="+filepath.Join(dir, "stall")+"|shard.worker=stall",
	)
	spec := smallSpec()

	ref, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, ref); st != StateDone {
		t.Fatalf("unsharded job ended %s: %s", st, ref.Status().Error)
	}
	want := ref.Report()
	if want == nil {
		t.Fatal("unsharded job produced no report")
	}

	s := spec
	s.Shard = chaosShardSpec(8)
	job, err := srv.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateDone {
		t.Fatalf("chaos job ended %s: %s", st, job.Status().Error)
	}
	if got := job.Report(); !bytes.Equal(got, want) {
		t.Fatalf("chaos report differs from the unsharded run: sha256 %x vs %x",
			sha256.Sum256(got), sha256.Sum256(want))
	}

	// Both injected faults must actually have fired: the markers are
	// claimed, and each failure shows up under its own counter.
	for _, marker := range []string{"torn", "stall"} {
		if _, err := os.Stat(filepath.Join(dir, marker)); err != nil {
			t.Fatalf("no worker claimed the %s fault: %v", marker, err)
		}
	}
	stalls := job.reg.Counter("dse.shard.stall_kills").Value()
	crashes := job.reg.Counter("dse.shard.restarts_crash").Value()
	total := job.reg.Counter("dse.shard.restarts").Value()
	if stalls < 1 {
		t.Errorf("dse.shard.stall_kills = %d, want >= 1 (one worker hung at birth)", stalls)
	}
	if crashes < 1 {
		t.Errorf("dse.shard.restarts_crash = %d, want >= 1 (torn final flush fails its worker)", crashes)
	}
	if total != stalls+crashes {
		t.Errorf("dse.shard.restarts = %d, want stall_kills + restarts_crash = %d", total, stalls+crashes)
	}
	if job.reg.Counter("dse.shard.backoff_ns").Value() <= 0 {
		t.Error("dse.shard.backoff_ns = 0: restarts were not paced")
	}

	// The torn worker's restart faced a damaged checkpoint; however the
	// tear landed (recoverable prefix or quarantined file), the incident
	// must have crossed the process boundary into the job registry.
	durability := int64(0)
	for _, c := range []string{
		"durability.prefix_recovered", "durability.quarantined",
		"durability.crc_fail", "durability.legacy_loads", "durability.cold_restarts",
	} {
		durability += job.reg.Counter(c).Value()
	}
	if durability == 0 {
		t.Error("no durability.* incident reached the job registry despite torn checkpoint writes")
	}
}

// TestShardedJobStallRestartsExhausted pins the failure side of stall
// supervision: a fan-out whose every worker process hangs at birth must
// end failed with the stall watchdog's typed message once the restart
// budget runs out — never hang the job itself.
func TestShardedJobStallRestartsExhausted(t *testing.T) {
	srv := shardServer(t, faultInjectEnv+"=shard.worker=stall")
	spec := smallSpec()
	spec.Shard = &jobspec.ShardSpec{
		Shards:       2,
		MaxRestarts:  1,
		StallTimeout: jobspec.Duration(time.Second),
		BackoffBase:  jobspec.Duration(10 * time.Millisecond),
		BackoffMax:   jobspec.Duration(20 * time.Millisecond),
	}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateFailed {
		t.Fatalf("job with always-stalling workers ended %s, want failed", st)
	}
	if msg := job.Status().Error; !strings.Contains(msg, "stall watchdog") {
		t.Fatalf("failure message %q does not name the stall watchdog", msg)
	}
	if got := job.reg.Counter("dse.shard.stall_kills").Value(); got != 2 {
		t.Fatalf("dse.shard.stall_kills = %d, want 2 (2 workers x 1 restart)", got)
	}
	if got := job.reg.Counter("dse.shard.restarts_crash").Value(); got != 0 {
		t.Fatalf("dse.shard.restarts_crash = %d, want 0 (nothing crashed, everything hung)", got)
	}
}

// TestShardedJobRestartWindow pins the sliding-window budget plumbing:
// with a generous window every one of an always-crashing fan-out's
// restarts counts against the budget, so the job fails exactly as the
// lifetime budget would.
func TestShardedJobRestartWindow(t *testing.T) {
	srv := shardServer(t, "TTADSED_SHARD_CRASH_ALWAYS=1")
	spec := smallSpec()
	spec.Shard = &jobspec.ShardSpec{
		Shards:        2,
		MaxRestarts:   1,
		RestartWindow: jobspec.Duration(time.Hour),
		BackoffBase:   jobspec.Duration(time.Millisecond),
		BackoffMax:    jobspec.Duration(2 * time.Millisecond),
	}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateFailed {
		t.Fatalf("always-crashing fan-out ended %s, want failed", st)
	}
	if got := job.reg.Counter("dse.shard.restarts").Value(); got != 2 {
		t.Fatalf("dse.shard.restarts = %d, want 2 (2 workers x 1 windowed restart)", got)
	}
}

// TestArmWorkerFaultsOnceClaim pins the marker-file protocol directly:
// of many claimants only one arms each once-fault, a process claims at
// most one, and malformed values are loud errors.
func TestArmWorkerFaultsOnceClaim(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(faultInjectOnceEnv+"_A", filepath.Join(dir, "a")+"|dse.eval=error:limit=1")
	t.Setenv(faultInjectOnceEnv+"_B", filepath.Join(dir, "b")+"|atpg.pattern=error:limit=1")

	// First "process": claims exactly one fault (A, the first variable).
	inj1 := faultinject.New(1)
	if err := armWorkerFaults(inj1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "a")); err != nil {
		t.Fatalf("first claimant did not create marker a: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b")); err == nil {
		t.Fatal("first claimant took both faults; they must spread over workers")
	}
	if err := inj1.Hit(faultinject.DSEEval); err == nil {
		t.Fatal("claimed fault A is not armed")
	}
	if err := inj1.Hit(faultinject.ATPGPattern); err != nil {
		t.Fatalf("unclaimed fault B armed on the first claimant: %v", err)
	}

	// Second "process": A is taken, so it claims B.
	inj2 := faultinject.New(2)
	if err := armWorkerFaults(inj2); err != nil {
		t.Fatal(err)
	}
	if err := inj2.Hit(faultinject.ATPGPattern); err == nil {
		t.Fatal("claimed fault B is not armed on the second claimant")
	}

	// Third "process": everything claimed, nothing armed.
	inj3 := faultinject.New(3)
	if err := armWorkerFaults(inj3); err != nil {
		t.Fatal(err)
	}
	if err := inj3.Hit(faultinject.DSEEval); err != nil {
		t.Fatalf("third claimant armed A: %v", err)
	}

	t.Setenv(faultInjectOnceEnv+"_BAD", "no-separator-here")
	if err := armWorkerFaults(faultinject.New(4)); err == nil {
		t.Fatal("malformed once-fault value accepted silently")
	}
}
