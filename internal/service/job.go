package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/jobspec"
	"repro/internal/obs"
)

// State is a job's lifecycle position.
type State string

// The job states. Queued and running jobs are "active" for admission;
// every other state is terminal.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	// StateFailed: the exploration errored (or its per-job timeout
	// expired) before completing.
	StateFailed State = "failed"
	// StateCancelled: DELETE /v1/jobs/{id} stopped the job.
	StateCancelled State = "cancelled"
	// StateInterrupted: Drain stopped the job; its checkpoint holds the
	// finished prefix and the same spec resumes on a restarted daemon.
	StateInterrupted State = "interrupted"
)

// Job is one submitted exploration. All methods are safe for concurrent
// use; the HTTP layer and the exploration goroutine share it.
type Job struct {
	ID   string
	Spec jobspec.Spec

	ctx      context.Context
	cancelFn context.CancelCauseFunc
	hub      *hub
	tracker  *dse.FrontTracker
	reg      *obs.Registry
	done     chan struct{}

	mu     sync.Mutex
	state  State
	errMsg string
	report []byte
}

func newJob(id string, spec jobspec.Spec) *Job {
	ctx, cancel := context.WithCancelCause(context.Background())
	reg := obs.NewRegistry()
	return &Job{
		ID:       id,
		Spec:     spec,
		ctx:      ctx,
		cancelFn: cancel,
		hub:      newHub(),
		tracker:  dse.NewFrontTrackerObs(reg),
		reg:      reg,
		done:     make(chan struct{}),
		state:    StateQueued,
	}
}

// cancel stops the job with the given cause (ErrCancelled, ErrDraining).
func (j *Job) cancel(cause error) { j.cancelFn(cause) }

// Cancel stops the job on behalf of a client.
func (j *Job) Cancel() { j.cancel(ErrCancelled) }

// Done closes when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Report returns the encoded final report, or nil while none exists. An
// interrupted or failed job may still carry a partial report.
func (j *Job) Report() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report
}

// Front snapshots the Pareto fronts over the evaluations so far.
func (j *Job) Front() *dse.FrontSnapshot { return j.tracker.Snapshot() }

// JobStatus is the serialized job state the HTTP layer returns.
type JobStatus struct {
	ID        string       `json:"id"`
	State     State        `json:"state"`
	Error     string       `json:"error,omitempty"`
	Evaluated int          `json:"evaluated"`
	Total     int          `json:"total"`
	Events    int          `json:"events"`
	Spec      jobspec.Spec `json:"spec"`
}

// Status snapshots the job for listings and polls. Progress comes from
// the front tracker, which deduplicates by candidate index — a restored
// evaluation that is re-announced around a resume counts once, so
// Evaluated can never exceed Total.
func (j *Job) Status() JobStatus {
	evaluated, total := j.tracker.Progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.ID,
		State:     j.state,
		Error:     j.errMsg,
		Evaluated: evaluated,
		Total:     total,
		Events:    j.hub.len(),
		Spec:      j.Spec,
	}
}

// sink is the job's dse.Config.EventSink: it feeds the event hub (live
// streams + history replay) and the front tracker, which also owns the
// progress accounting. Called concurrently by the exploration's workers.
func (j *Job) sink(ev dse.Event) {
	j.tracker.Observe(ev)
	j.hub.publish(ev)
}

func (j *Job) setState(st State) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// finish records the terminal state and releases event streams.
func (j *Job) finish(st State, errMsg string, report []byte) {
	j.mu.Lock()
	j.state = st
	j.errMsg = errMsg
	if report != nil {
		j.report = report
	}
	j.mu.Unlock()
	j.hub.close()
	close(j.done)
}

// run is the job goroutine: admission, exploration, report.
func (s *Server) run(job *Job) {
	defer s.wg.Done()

	// Admission: wait for a running slot; cancellation while queued is
	// terminal (the queue does not outlive a DELETE or a drain).
	select {
	case s.sem <- struct{}{}:
	case <-job.ctx.Done():
		job.finish(terminalState(context.Cause(job.ctx)), causeMsg(job.ctx), nil)
		return
	}
	defer func() { <-s.sem }()
	job.setState(StateRunning)
	s.reg.Counter("service.jobs.started").Inc()

	if job.Spec.Shard != nil {
		s.runSharded(job)
		return
	}

	cfg, sel, err := dse.FromSpec(job.Spec)
	if err != nil {
		job.finish(StateFailed, err.Error(), nil)
		return
	}
	cfg.Obs = job.reg
	cfg.Inject = s.opts.Inject
	cfg.Annotator = s.annotator(&job.Spec)
	cfg.EventSink = job.sink
	if path := s.checkpointPath(job.Spec); path != "" {
		ck, ckErr := dse.OpenCheckpoint(path, cfg)
		if ckErr != nil {
			// Mismatched or corrupt files yield a fresh checkpoint; the
			// job proceeds cold and overwrites the file.
			s.reg.Counter("service.checkpoint.open_errors").Inc()
			job.reg.Counter("durability.cold_restarts").Inc()
			job.reg.Emit(obs.Event{Kind: "warning", Msg: ckErr.Error()})
		}
		cfg.Checkpoint = ck
	}

	runCtx := job.ctx
	if job.Spec.Timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(job.ctx, job.Spec.Timeout.Std())
		defer cancel()
	}

	study := core.NewStudyWithConfig(cfg)
	runErr := study.ExploreContext(runCtx)
	// The exploration flushes on completion; an interrupted one must
	// persist its tail explicitly or the drain loses up to 15 entries.
	// The durable form: a drained daemon's checkpoint is a deliverable
	// (the restart resumes from it), so its rename is dir-fsynced too.
	_ = cfg.Checkpoint.FlushErr()

	report := buildReport(study, sel)
	if runErr == nil {
		if sel != (dse.SelectionSpec{}) {
			if err := study.Reselect(sel); err != nil {
				job.finish(StateFailed, err.Error(), report)
				return
			}
			report = buildReport(study, sel)
		}
		s.reg.Counter("service.jobs.done").Inc()
		job.finish(StateDone, "", report)
		return
	}
	st := terminalState(context.Cause(job.ctx))
	if st == StateFailed && errors.Is(runErr, context.DeadlineExceeded) {
		runErr = fmt.Errorf("job timeout %v exceeded: %w", time.Duration(job.Spec.Timeout), runErr)
	}
	s.reg.Counter("service.jobs." + string(st)).Inc()
	job.finish(st, runErr.Error(), report)
}

// terminalState maps a cancellation cause to the job's final state.
func terminalState(cause error) State {
	switch {
	case errors.Is(cause, ErrCancelled):
		return StateCancelled
	case errors.Is(cause, ErrDraining):
		return StateInterrupted
	default:
		return StateFailed
	}
}

func causeMsg(ctx context.Context) string {
	if cause := context.Cause(ctx); cause != nil {
		return cause.Error()
	}
	return ""
}

// buildReport encodes the study's (possibly partial) result; nil when
// the study holds no usable result at all.
func buildReport(study *core.Study, sel dse.SelectionSpec) []byte {
	jr, err := study.JSONResult(sel)
	if err != nil {
		return nil
	}
	b, err := jr.Encode()
	if err != nil {
		return nil
	}
	return b
}

// hub fans one job's event stream out to any number of HTTP streams:
// the full history replays to a new subscriber before live delivery
// begins, so a late GET /events still sees every event. Slow consumers
// drop events rather than stall the exploration's worker pool (each
// subscriber channel buffers 256; the stream's final close is reliable).
type hub struct {
	mu      sync.Mutex
	history []dse.Event
	subs    map[int]chan dse.Event
	nextID  int
	closed  bool
}

func newHub() *hub {
	return &hub{subs: make(map[int]chan dse.Event)}
}

func (h *hub) publish(ev dse.Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.history = append(h.history, ev)
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow consumer: drop, the history keeps the record
		}
	}
}

func (h *hub) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.history)
}

// subscribe returns the history so far plus a live channel. The channel
// closes when the job finishes; cancel detaches early. Subscribing to a
// finished job replays the full history over an already-closed channel.
func (h *hub) subscribe() (replay []dse.Event, ch <-chan dse.Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = make([]dse.Event, len(h.history))
	copy(replay, h.history)
	c := make(chan dse.Event, 256)
	if h.closed {
		close(c)
		return replay, c, func() {}
	}
	id := h.nextID
	h.nextID++
	h.subs[id] = c
	return replay, c, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
		}
	}
}

func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		close(ch)
		delete(h.subs, id)
	}
}
