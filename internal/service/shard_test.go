package service

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jobspec"
	"repro/internal/obs"
)

// TestMain doubles as the shard worker helper process: the coordinator
// under test re-execs this test binary with TTADSED_SHARD_WORKER=1 in
// the environment (via Options.ShardWorkerCommand/ShardWorkerEnv), and
// the re-exec lands here before the testing framework parses any flags.
// TTADSED_SHARD_CRASH_ONCE names a directory whose marker file is
// claimed atomically by exactly one worker process across the whole
// fan-out — that worker simulates a crash by exiting before any work,
// which must cost the job nothing but a restart.
func TestMain(m *testing.M) {
	if os.Getenv("TTADSED_SHARD_WORKER") == "1" {
		if os.Getenv("TTADSED_SHARD_CRASH_ALWAYS") == "1" {
			os.Exit(3)
		}
		if dir := os.Getenv("TTADSED_SHARD_CRASH_ONCE"); dir != "" {
			marker := filepath.Join(dir, "crashed")
			if f, err := os.OpenFile(marker, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644); err == nil {
				f.Close()
				os.Exit(3)
			}
		}
		os.Exit(ShardWorkerMain(os.Args[1:]))
	}
	os.Exit(m.Run())
}

// shardServer builds a daemon whose shard workers re-exec this test
// binary, with extraEnv appended to the worker environment.
func shardServer(t *testing.T, extraEnv ...string) *Server {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(Options{
		MaxConcurrent:      2,
		ShardWorkerCommand: []string{exe},
		ShardWorkerEnv:     append([]string{"TTADSED_SHARD_WORKER=1"}, extraEnv...),
	})
}

// TestShardedJobMatchesUnsharded is the end-to-end determinism check at
// the daemon level: the same spec run unsharded and as a 2- and 3-shard
// process fan-out must produce byte-identical final reports, with
// progress and fronts aggregated across the worker processes.
func TestShardedJobMatchesUnsharded(t *testing.T) {
	srv := shardServer(t)
	spec := smallSpec()
	ref, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, ref); st != StateDone {
		t.Fatalf("unsharded job ended %s: %s", st, ref.Status().Error)
	}
	want := ref.Report()
	if want == nil {
		t.Fatal("unsharded job produced no report")
	}

	for _, shards := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := spec
			s.Shard = &jobspec.ShardSpec{Shards: shards}
			job, err := srv.Submit(s)
			if err != nil {
				t.Fatal(err)
			}
			if st := waitTerminal(t, job); st != StateDone {
				t.Fatalf("sharded job ended %s: %s", st, job.Status().Error)
			}
			if got := job.Report(); !bytes.Equal(got, want) {
				t.Fatalf("%d-shard report differs from the unsharded run (%d vs %d bytes)",
					shards, len(got), len(want))
			}
			// Worker progress aggregated across processes: every candidate
			// accounted once despite N event streams plus the merge replay.
			st := job.Status()
			if st.Evaluated != 12 || st.Total != 12 {
				t.Fatalf("progress %d/%d, want 12/12", st.Evaluated, st.Total)
			}
			if snap := job.Front(); len(snap.Front2D) == 0 || len(snap.Front3D) == 0 {
				t.Fatalf("sharded job has empty fronts: %+v", snap)
			}
			if got := job.reg.Counter("dse.shard.merged").Value(); got != int64(shards) {
				t.Fatalf("dse.shard.merged = %d, want %d", got, shards)
			}
		})
	}
}

// TestShardedJobWorkerCrashResumes kills one worker (it exits before
// any work the first time it is spawned) and checks the coordinator
// restarts it and the job still converges to the unsharded bytes.
func TestShardedJobWorkerCrashResumes(t *testing.T) {
	crashDir := t.TempDir()
	srv := shardServer(t, "TTADSED_SHARD_CRASH_ONCE="+crashDir)
	spec := smallSpec()

	ref, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, ref); st != StateDone {
		t.Fatalf("unsharded job ended %s: %s", st, ref.Status().Error)
	}
	// The unsharded path spawns no workers, so the crash marker is
	// still unclaimed when the fan-out starts.
	if _, err := os.Stat(filepath.Join(crashDir, "crashed")); err == nil {
		t.Fatal("crash marker claimed before any worker ran")
	}

	s := spec
	s.Shard = &jobspec.ShardSpec{Shards: 2}
	job, err := srv.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateDone {
		t.Fatalf("sharded job ended %s: %s", st, job.Status().Error)
	}
	if !bytes.Equal(job.Report(), ref.Report()) {
		t.Fatal("report after a worker crash + restart differs from the unsharded run")
	}
	if got := job.reg.Counter("dse.shard.restarts").Value(); got != 1 {
		t.Fatalf("dse.shard.restarts = %d, want 1 (one simulated crash)", got)
	}
	if _, err := os.Stat(filepath.Join(crashDir, "crashed")); err != nil {
		t.Fatalf("no worker claimed the crash marker: %v", err)
	}
}

// TestShardedJobRestartsExhausted drives every restart into the same
// immediate crash (the marker is never released) and checks the job
// fails with the worker's error instead of hanging or reporting.
func TestShardedJobRestartsExhausted(t *testing.T) {
	srv := shardServer(t, "TTADSED_SHARD_CRASH_ALWAYS=1")
	spec := smallSpec()
	spec.Shard = &jobspec.ShardSpec{Shards: 2, MaxRestarts: 1}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateFailed {
		t.Fatalf("job with always-crashing workers ended %s, want failed", st)
	}
	if job.Status().Error == "" {
		t.Fatal("failed fan-out carries no error message")
	}
	if got := job.reg.Counter("dse.shard.restarts").Value(); got != 2 {
		t.Fatalf("dse.shard.restarts = %d, want 2 (2 workers x 1 restart)", got)
	}
}

// TestMetricsAggregateJobRegistries checks /v1/metrics folds the
// per-job pareto.stream.* and dse.shard.* metrics into the server
// snapshot (they live on each job's own registry).
func TestMetricsAggregateJobRegistries(t *testing.T) {
	srv := shardServer(t)
	spec := smallSpec()
	spec.Shard = &jobspec.ShardSpec{Shards: 2}
	job, err := srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st != StateDone {
		t.Fatalf("job ended %s: %s", st, job.Status().Error)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var snap obs.Snapshot
	getJSON(t, ts.URL+"/v1/metrics", 200, &snap)
	if snap.Counters["dse.shard.merged"] != 2 {
		t.Fatalf("aggregated dse.shard.merged = %d, want 2", snap.Counters["dse.shard.merged"])
	}
	if snap.Counters["pareto.stream.inserts"] == 0 {
		t.Fatal("pareto.stream.inserts missing from the aggregated metrics")
	}
	if _, ok := snap.Gauges["dse.shard.workers"]; !ok {
		t.Fatal("dse.shard.workers gauge missing from the aggregated metrics")
	}
}
