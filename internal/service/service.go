// Package service implements the ttadsed exploration daemon: a design
// and test space exploration submitted as a job over HTTP/JSON,
// observed live through a typed event stream, and harvested through
// partial-front and final-report endpoints.
//
// The API (all under /v1):
//
//	POST   /v1/jobs              submit a jobspec.Spec; 202 + job status
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         one job's status
//	DELETE /v1/jobs/{id}         cancel the job
//	GET    /v1/jobs/{id}/events  stream typed progress events (NDJSON by
//	                             default, SSE with Accept: text/event-stream);
//	                             the full history replays first, then live
//	GET    /v1/jobs/{id}/front   the partial Pareto fronts so far
//	GET    /v1/jobs/{id}/result  the final report (202 while running)
//	GET    /v1/healthz           liveness + drain state
//	GET    /v1/metrics           the server metrics snapshot
//
// One process-wide testcost.Annotator pool is shared across jobs (keyed
// by width/seed/ATPG budget), so concurrent explorations of overlapping
// component spaces hit each other's warm annotations instead of
// re-running gate-level ATPG. Admission is a bounded queue: at most
// MaxConcurrent jobs explore at once, QueueDepth more may wait, and
// overflow is rejected with 429. Drain stops intake (503), interrupts
// running jobs — their checkpoints persist the finished prefix — and
// flushes the warm annotation cache, so a restarted daemon resumes
// byte-identically.
package service

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/jobspec"
	"repro/internal/obs"
	"repro/internal/testcost"
)

// Sentinel cancellation causes: they tell an interrupted exploration
// apart from a user-cancelled one when the job records its final state.
var (
	// ErrCancelled is the cancellation cause of DELETE /v1/jobs/{id}.
	ErrCancelled = errors.New("service: job cancelled")
	// ErrDraining is the cancellation cause of Server.Drain; a job cut
	// short by it ends "interrupted" rather than "cancelled".
	ErrDraining = errors.New("service: server draining")
)

// Options configures a Server. The zero value is usable: two concurrent
// jobs, a queue of eight, no warm cache, no checkpoints.
type Options struct {
	// MaxConcurrent bounds the explorations running at once (default 2).
	MaxConcurrent int
	// QueueDepth bounds the jobs waiting for a slot beyond the running
	// ones (default 8). A submit past running+queued is rejected 429.
	QueueDepth int
	// CachePath, when set, warm-starts every compatible annotator from
	// this file at creation and rewrites it on Drain, so annotation work
	// survives daemon restarts.
	CachePath string
	// CheckpointDir, when set, gives each job a checkpoint file named by
	// the hash of its normalized spec. A resubmitted spec restores the
	// finished prefix — the drain/restart/resume path.
	CheckpointDir string
	// DefaultLaneWidth is the fault-simulation lane width (64, 256 or
	// 512) applied to jobs that leave lane_width unset; 0 keeps the
	// per-netlist auto selection. Annotation results are identical at
	// any setting, so this only tunes wall time.
	DefaultLaneWidth int
	// Obs receives server-wide metrics and events; per-job registries
	// are separate. Defaults to a fresh registry. The annotator pool
	// reports its cache counters (testcost.cache.*) here.
	Obs *obs.Registry
	// Inject, when non-nil, arms chaos/test injection inside every job's
	// exploration (dse.Config.Inject) and the annotator pool.
	Inject *faultinject.Injector
	// ShardWorkerCommand is the argv prefix used to exec the worker
	// processes of a sharded job (Spec.Shard != nil). Empty means
	// re-exec this binary with "-shard-worker" prepended, which
	// cmd/ttadsed dispatches to ShardWorkerMain before flag parsing.
	// Tests point it at the test binary and gate on ShardWorkerEnv.
	ShardWorkerCommand []string
	// ShardWorkerEnv is appended to os.Environ() for every shard worker.
	ShardWorkerEnv []string
}

// Server is the exploration daemon. Construct with NewServer, expose
// Handler over HTTP, stop with Drain.
type Server struct {
	opts Options
	reg  *obs.Registry
	mux  *http.ServeMux
	sem  chan struct{} // running-slot tokens
	inj  *faultinject.Injector

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for stable listings
	nextID   int
	draining bool
	anns     map[string]*testcost.Annotator
	cacheAnn *testcost.Annotator // the annotator Drain persists to CachePath
	wg       sync.WaitGroup
}

// NewServer builds a daemon over opts.
func NewServer(opts Options) *Server {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 8
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	inj := opts.Inject
	if inj == nil {
		// A disarmed injector, so the shared annotators carry a non-nil
		// Inject from birth — per-job fillDefaults then never writes the
		// field, which would race with another job's reads.
		inj = faultinject.New(0)
	}
	s := &Server{
		opts: opts,
		reg:  opts.Obs,
		sem:  make(chan struct{}, opts.MaxConcurrent),
		inj:  inj,
		jobs: make(map[string]*Job),
		anns: make(map[string]*testcost.Annotator),
	}
	s.routes()
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// annotator returns the process-wide annotator for the spec's
// width/seed/budget key, creating (and warm-starting) it on first use.
// Everything per-job code would default onto the annotator (Obs,
// ATPGWorkers, Inject) is fixed here at creation, so concurrent
// explorations only ever read the shared fields.
func (s *Server) annotator(spec *jobspec.Spec) *testcost.Annotator {
	key := spec.AnnotatorKey()
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.anns[key]; ok {
		return a
	}
	w := spec.Width
	if w == 0 {
		w = 16
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 7
	}
	a := testcost.NewAnnotator(w, seed)
	a.Obs = s.reg
	a.Inject = s.inj
	a.ATPGDeadline = spec.ATPGDeadline.Std()
	if a.ATPGWorkers = spec.ATPGWorkers; a.ATPGWorkers <= 0 {
		a.ATPGWorkers = 1 // several jobs may run ATPG concurrently
	}
	// Annotation results are identical at every lane width, so the width
	// is not part of the sharing key: the first job to create this
	// annotator fixes it for everyone sharing the key.
	if a.LaneWidth = spec.LaneWidth; a.LaneWidth == 0 {
		a.LaneWidth = s.opts.DefaultLaneWidth
	}
	if s.opts.CachePath != "" {
		if err := a.LoadFile(s.opts.CachePath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			s.reg.Counter("service.cache.load_errors").Inc()
			s.reg.Emit(obs.Event{Kind: "warning",
				Msg: fmt.Sprintf("warm cache %s not loaded: %v", s.opts.CachePath, err)})
		}
	}
	s.anns[key] = a
	// Drain persists one annotator back to CachePath; prefer the first
	// unbudgeted one (its annotations are all exact), else the first.
	if s.cacheAnn == nil || (s.cacheAnn.ATPGDeadline != 0 && a.ATPGDeadline == 0) {
		s.cacheAnn = a
	}
	return a
}

// checkpointPath names a job's checkpoint file by its result identity
// (jobspec.Spec.Hash), so a resubmitted spec finds the interrupted
// run's finished prefix — and a sharded job's workers agree with its
// unsharded twin on the same hash.
func (s *Server) checkpointPath(spec jobspec.Spec) string {
	if s.opts.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(s.opts.CheckpointDir, "job-"+spec.Hash()+".ckpt")
}

// Submit validates and admits a job. It returns ErrDraining once Drain
// has started and ErrBusy when running+queued is at capacity.
func (s *Server) Submit(spec jobspec.Spec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.Normalize()
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	active := 0
	for _, j := range s.jobs {
		switch j.State() {
		case StateQueued, StateRunning:
			active++
		}
	}
	if active >= s.opts.MaxConcurrent+s.opts.QueueDepth {
		s.mu.Unlock()
		s.reg.Counter("service.jobs.rejected").Inc()
		return nil, ErrBusy
	}
	s.nextID++
	job := newJob(fmt.Sprintf("job-%d", s.nextID), spec)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.wg.Add(1)
	s.mu.Unlock()
	s.reg.Counter("service.jobs.submitted").Inc()
	go s.run(job)
	return job, nil
}

// ErrBusy rejects a submit when the running set and the queue are full.
var ErrBusy = errors.New("service: job queue full")

// Job returns the job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs lists every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Drain stops intake (submits fail with ErrDraining), interrupts every
// queued and running job, waits for them to settle (bounded by ctx) and
// persists the warm annotation cache to Options.CachePath. Interrupted
// jobs end in state "interrupted"; their checkpoint files keep the
// finished prefix, so resubmitting the same spec to a new daemon
// resumes instead of recomputing. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	cacheAnn := s.cacheAnn
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel(ErrDraining)
	}
	settled := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(settled)
	}()
	var err error
	select {
	case <-settled:
	case <-ctx.Done():
		err = fmt.Errorf("service: drain cut short: %w", context.Cause(ctx))
	}
	if s.opts.CachePath != "" && cacheAnn != nil {
		if serr := cacheAnn.SaveFile(s.opts.CachePath); serr != nil {
			s.reg.Counter("service.cache.save_errors").Inc()
			if err == nil {
				err = fmt.Errorf("service: saving warm cache: %w", serr)
			}
		}
	}
	return err
}
